// Command maficsearch runs the adversary-search harness: a deterministic
// seeded grid of attack shapes (rotation, pulsing, rate mixes, victim
// spreads) is executed against each defence configuration, and the worst-case
// accuracy / collateral point per defence is reported — maficbench for
// robustness instead of speed.
//
// Usage:
//
//	maficsearch [flags]
//
// Examples:
//
//	maficsearch                          # full grid, paper vs hardened, table to stdout
//	maficsearch -quick                   # tiny smoke grid (same one `make check` runs)
//	maficsearch -out ROBUST_current.json # also write the full JSON report
//	maficsearch -workers 4 -seed 7       # bounded parallelism, different seed
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"mafic/internal/experiment"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "maficsearch:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("maficsearch", flag.ContinueOnError)
	var (
		quick   = fs.Bool("quick", false, "run the tiny smoke grid on scaled-down scenarios")
		workers = fs.Int("workers", 0, "concurrent runs (0 = GOMAXPROCS, 1 = serial)")
		seed    = fs.Int64("seed", 1, "base seed; point i runs with seed+i")
		outPath = fs.String("out", "", "write the full JSON report to this file")
		asJSON  = fs.Bool("json", false, "print the full report as JSON instead of the table")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	spec := experiment.DefaultSearchSpec()
	if *quick {
		spec = experiment.QuickSearchSpec()
	}
	spec.Seed = *seed

	start := time.Now()
	report, err := experiment.Search(spec, experiment.SearchOptions{
		Quick:   *quick,
		Workers: *workers,
	})
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	if *outPath != "" {
		blob, err := json.MarshalIndent(report, "", "  ")
		if err != nil {
			return err
		}
		blob = append(blob, '\n')
		if err := os.WriteFile(*outPath, blob, 0o644); err != nil {
			return err
		}
	}

	if *asJSON {
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(report)
	}

	mode := "full"
	if report.Quick {
		mode = "quick"
	}
	fmt.Fprintf(out, "adversary search: %d attack points × %d defences (%s grid, seed %d, %v)\n",
		report.GridSize, len(report.Defences), mode, report.Seed, elapsed.Round(time.Millisecond))
	for _, d := range report.Defences {
		fmt.Fprintf(out, "\ndefence %q: mean accuracy %.2f%%\n", d.Defence, d.MeanAccuracy*100)
		wa := d.WorstAccuracy
		fmt.Fprintf(out, "  worst accuracy:   %6.2f%%  at %s/%s/%s/spread%.2f (Lr %.2f%%, %d ATRs, forgiven %d)\n",
			wa.Accuracy*100, wa.Fault, wa.Shape, wa.Mix, wa.Spread,
			wa.LegitimateDropRate*100, wa.ATRCount, wa.AttackForgiven)
		wc := d.WorstCollateral
		fmt.Fprintf(out, "  worst collateral: %6.2f%% Lr at %s/%s/%s/spread%.2f (accuracy %.2f%%, condemned %d)\n",
			wc.LegitimateDropRate*100, wc.Fault, wc.Shape, wc.Mix, wc.Spread,
			wc.Accuracy*100, wc.LegitCondemned)
		for _, f := range d.ByFault {
			fw := f.WorstAccuracy
			fmt.Fprintf(out, "  fault %-12s mean %6.2f%%  worst %6.2f%% at %s/%s/spread%.2f\n",
				f.Fault+":", f.MeanAccuracy*100, fw.Accuracy*100, fw.Shape, fw.Mix, fw.Spread)
		}
	}
	return nil
}
