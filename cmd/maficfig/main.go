// Command maficfig regenerates the data behind the figures of the MAFIC
// paper's evaluation section. For each requested figure it runs the full
// parameter sweep and prints the resulting series as aligned text tables (or
// JSON with -json), so the output can be compared panel by panel with the
// published plots.
//
// Usage:
//
//	maficfig -fig 3a            # one figure
//	maficfig -all               # every figure, full sweeps
//	maficfig -all -quick        # every figure, reduced sweeps (CI-sized)
//	maficfig -fig 7 -json       # machine-readable series
//	maficfig -list              # list available figure ids
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"sort"
	"time"

	"mafic/internal/experiment"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "maficfig:", err)
		os.Exit(1)
	}
}

func run(args []string, out io.Writer) error {
	fs := flag.NewFlagSet("maficfig", flag.ContinueOnError)
	var (
		figID   = fs.String("fig", "", "figure to regenerate (e.g. 3a, 4b, 7, ablation-baseline)")
		all     = fs.Bool("all", false, "regenerate every figure")
		quick   = fs.Bool("quick", false, "reduced sweeps for a fast pass")
		asJSON  = fs.Bool("json", false, "print JSON instead of text tables")
		list    = fs.Bool("list", false, "list available figure ids and exit")
		seed    = fs.Int64("seed", 1, "base random seed")
		workers = fs.Int("workers", 0, "sweep points run concurrently (0 = all cores, 1 = serial; results are identical)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *list {
		for _, id := range experiment.AllFigureIDs() {
			fmt.Fprintln(out, id)
		}
		return nil
	}

	var ids []experiment.FigureID
	switch {
	case *all:
		ids = experiment.AllFigureIDs()
	case *figID != "":
		ids = []experiment.FigureID{experiment.FigureID(*figID)}
	default:
		return fmt.Errorf("specify -fig <id> or -all (use -list to see ids)")
	}

	opts := experiment.SweepOptions{Quick: *quick, Seed: *seed, Workers: *workers}
	for _, id := range ids {
		start := time.Now()
		fig, err := experiment.Generate(id, opts)
		if err != nil {
			return fmt.Errorf("figure %s: %w", id, err)
		}
		if *asJSON {
			enc := json.NewEncoder(out)
			enc.SetIndent("", "  ")
			if err := enc.Encode(fig); err != nil {
				return err
			}
			continue
		}
		printFigure(out, fig, time.Since(start))
	}
	return nil
}

// printFigure renders one figure as an aligned text table: one row per x
// value, one column per series.
func printFigure(out io.Writer, fig experiment.Figure, elapsed time.Duration) {
	fmt.Fprintf(out, "\n=== Figure %s — %s (generated in %v)\n", fig.ID, fig.Title, elapsed.Round(time.Millisecond))
	fmt.Fprintf(out, "    x axis: %s | y axis: %s\n", fig.XLabel, fig.YLabel)

	// Collect the union of x values across series so ragged series (like
	// the time-series panel) still print sensibly.
	xOrder := make([]float64, 0)
	seenX := map[float64]bool{}
	for _, s := range fig.Series {
		for _, p := range s.Points {
			if !seenX[p.X] {
				seenX[p.X] = true
				xOrder = append(xOrder, p.X)
			}
		}
	}
	sort.Float64s(xOrder)

	fmt.Fprintf(out, "%12s", fig.XLabel)
	for _, s := range fig.Series {
		fmt.Fprintf(out, "%16s", s.Label)
	}
	fmt.Fprintln(out)
	for _, x := range xOrder {
		fmt.Fprintf(out, "%12.3g", x)
		for _, s := range fig.Series {
			y, ok := lookupY(s, x)
			if !ok {
				fmt.Fprintf(out, "%16s", "-")
				continue
			}
			fmt.Fprintf(out, "%16.4f", y)
		}
		fmt.Fprintln(out)
	}
}

func lookupY(s experiment.Series, x float64) (float64, bool) {
	for _, p := range s.Points {
		if p.X == x {
			return p.Y, true
		}
	}
	return 0, false
}
