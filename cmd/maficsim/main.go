// Command maficsim runs a single MAFIC defence scenario and prints its
// metrics. It is the quickest way to reproduce the paper's Table II default
// operating point or to explore a custom parameter combination.
//
// Usage:
//
//	maficsim [flags]
//
// Examples:
//
//	maficsim                          # paper defaults (Pd=90%, Vt=50, Γ=95%, N=40)
//	maficsim -pd 0.7 -flows 100       # lower drop probability, heavier traffic
//	maficsim -defense proportional    # the non-adaptive baseline for comparison
//	maficsim -json                    # machine-readable output
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"mafic/internal/experiment"
	"mafic/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "maficsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("maficsim", flag.ContinueOnError)
	var (
		pd       = fs.Float64("pd", 0.90, "MAFIC packet dropping probability Pd")
		flows    = fs.Int("flows", 50, "total traffic volume Vt (number of flows)")
		tcpShare = fs.Float64("tcp", 0.95, "fraction of TCP flows Γ")
		rate     = fs.Float64("rate", 1e6, "attack source rate R in packets/s (paper scale)")
		routers  = fs.Int("routers", 40, "domain size N (number of routers)")
		seconds  = fs.Float64("duration", 2.0, "simulated seconds")
		seed     = fs.Int64("seed", 1, "random seed")
		defense  = fs.String("defense", "mafic", "defense: mafic, proportional, or none")
		asJSON   = fs.Bool("json", false, "print the full result as JSON")
		series   = fs.Bool("series", false, "include the victim bandwidth time series in JSON output")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	s := experiment.DefaultScenario()
	s.Seed = *seed
	s.Duration = sim.Time(*seconds * float64(sim.Second))
	s.MAFIC.DropProbability = *pd
	s.Workload.TotalFlows = *flows
	s.Workload.TCPShare = *tcpShare
	s.Workload.AttackRate = *rate / experiment.RateScale
	s.Topology.NumRouters = *routers
	switch *defense {
	case "mafic":
		s.Defense = experiment.DefenseMAFIC
	case "proportional":
		s.Defense = experiment.DefenseBaseline
	case "none":
		s.Defense = experiment.DefenseNone
	default:
		return fmt.Errorf("unknown defense %q", *defense)
	}

	start := time.Now()
	res, err := experiment.Run(s)
	if err != nil {
		return err
	}
	elapsed := time.Since(start)

	if *asJSON {
		if !*series {
			res.Series = nil
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}

	fmt.Fprintf(out, "MAFIC scenario %q (defense=%s)\n", res.Name, res.Defense)
	fmt.Fprintf(out, "  parameters: Pd=%.0f%%  Vt=%d flows  Γ=%.0f%% TCP  R=%.0f pkt/s (scaled)  N=%d routers\n",
		res.Pd*100, res.Volume, res.TCPShare*100, res.AttackRate, res.Routers)
	if res.Activated {
		how := "pushback detection"
		if !res.DetectedByPushback {
			how = "scheduled fallback"
		}
		fmt.Fprintf(out, "  defense activated at t=%.3fs via %s on %d ATRs\n", res.ActivationSeconds, how, res.ATRCount)
	} else {
		fmt.Fprintf(out, "  defense was never activated\n")
	}
	fmt.Fprintf(out, "  attack dropping accuracy (α):     %6.2f%%\n", res.Accuracy*100)
	fmt.Fprintf(out, "  traffic reduction rate (β):       %6.2f%%\n", res.TrafficReduction*100)
	fmt.Fprintf(out, "  false positive rate (θp):         %6.3f%%\n", res.FalsePositiveRate*100)
	fmt.Fprintf(out, "  false negative rate (θn):         %6.3f%%\n", res.FalseNegativeRate*100)
	fmt.Fprintf(out, "  legitimate packet drop rate (Lr): %6.2f%%\n", res.LegitimateDropRate*100)
	fmt.Fprintf(out, "  flows probed=%d nice=%d condemned=%d illegal=%d (legit condemned=%d, attack forgiven=%d)\n",
		res.DefenseStats.FlowsProbed, res.DefenseStats.FlowsNice, res.DefenseStats.FlowsCondemned,
		res.DefenseStats.FlowsIllegal, res.LegitFlowsCondemned, res.AttackFlowsForgiven)
	fmt.Fprintf(out, "  events processed: %d  (wall time %v)\n", res.EventsProcessed, elapsed.Round(time.Millisecond))
	return nil
}
