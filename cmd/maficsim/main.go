// Command maficsim runs a single MAFIC defence scenario and prints its
// metrics. It is the quickest way to reproduce the paper's Table II default
// operating point or to explore a custom parameter combination.
//
// Usage:
//
//	maficsim [flags]
//
// Examples:
//
//	maficsim                          # paper defaults (Pd=90%, Vt=50, Γ=95%, N=40)
//	maficsim -list                    # show the registered scenario catalog
//	maficsim -scenario rolling-pulse  # run a registered adversarial workload
//	maficsim -scenario shrew -quick   # scaled-down variant of a catalog entry
//	maficsim -pd 0.7 -flows 100       # lower drop probability, heavier traffic
//	maficsim -defense proportional    # the non-adaptive baseline for comparison
//	maficsim -json                    # machine-readable output
//	maficsim -checkpoint-every 500ms  # snapshot the live run twice per simulated second
//	maficsim -resume checkpoint-500ms.snap  # resume a snapshot; bit-identical to the uninterrupted run
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"time"

	"mafic/internal/checkpoint"
	"mafic/internal/experiment"
	"mafic/internal/sim"
)

func main() {
	if err := run(os.Args[1:], os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, "maficsim:", err)
		os.Exit(1)
	}
}

func run(args []string, out *os.File) error {
	fs := flag.NewFlagSet("maficsim", flag.ContinueOnError)
	var (
		scenario = fs.String("scenario", "", "run a registered scenario from the catalog (see -list)")
		list     = fs.Bool("list", false, "list the registered scenario catalog and exit")
		quick    = fs.Bool("quick", false, "with -scenario: run the scaled-down variant (same variant the golden tests pin)")
		hardened = fs.Bool("hardened", false, "enable the robustness hardening (probing memory + ATR hysteresis)")
		pd       = fs.Float64("pd", 0.90, "MAFIC packet dropping probability Pd")
		flows    = fs.Int("flows", 50, "total traffic volume Vt (number of flows)")
		tcpShare = fs.Float64("tcp", 0.95, "fraction of TCP flows Γ")
		rate     = fs.Float64("rate", 1e6, "attack source rate R in packets/s (paper scale)")
		routers  = fs.Int("routers", 40, "domain size N (number of routers)")
		seconds  = fs.Float64("duration", 2.0, "simulated seconds")
		seed     = fs.Int64("seed", 1, "random seed")
		defense  = fs.String("defense", "mafic", "defense: mafic, proportional, or none")
		asJSON   = fs.Bool("json", false, "print the full result as JSON")
		series   = fs.Bool("series", false, "include the victim bandwidth time series in JSON output")

		ckptEvery = fs.Duration("checkpoint-every", 0, "write a snapshot every interval of simulated time (e.g. 500ms)")
		ckptAt    = fs.Duration("checkpoint-at", 0, "write one snapshot at this simulated time (e.g. 850ms)")
		ckptOut   = fs.String("checkpoint-out", "checkpoint", "snapshot filename prefix; files are written as <prefix>-<t>ms.snap")
		resume    = fs.String("resume", "", "resume from a snapshot file instead of starting a run (other flags are ignored)")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *resume != "" {
		if *scenario != "" || *ckptEvery != 0 || *ckptAt != 0 {
			return fmt.Errorf("-resume replays a snapshot; it cannot be combined with -scenario or checkpoint flags")
		}
		data, err := os.ReadFile(*resume)
		if err != nil {
			return err
		}
		start := time.Now()
		res, err := experiment.RunFromSnapshot(data)
		if err != nil {
			return err
		}
		return printResult(out, res, time.Since(start), *asJSON, *series)
	}

	if *list {
		entries := experiment.Entries()
		fmt.Fprintf(out, "registered scenarios (%d):\n", len(entries))
		for _, e := range entries {
			fmt.Fprintf(out, "  %-18s %s\n", e.Name, e.Description)
		}
		return nil
	}

	explicit := map[string]bool{}
	fs.Visit(func(f *flag.Flag) { explicit[f.Name] = true })
	// Without -scenario every flag applies, defaults included (the
	// original CLI contract). With -scenario, only flags the user set
	// explicitly override the catalog entry's own knobs.
	use := func(name string) bool { return *scenario == "" || explicit[name] }

	var s experiment.Scenario
	if *scenario != "" {
		e, ok := experiment.LookupScenario(*scenario)
		if !ok {
			return fmt.Errorf("unknown scenario %q (run maficsim -list for the catalog)", *scenario)
		}
		s = e.Build()
		if *quick {
			s = experiment.Quick(s)
		}
	} else {
		if *quick {
			return fmt.Errorf("-quick scales down a catalog entry; pair it with -scenario <name>")
		}
		s = experiment.DefaultScenario()
	}
	if use("seed") {
		s.Seed = *seed
	}
	if use("duration") {
		s.Duration = sim.Time(*seconds * float64(sim.Second))
	}
	if use("pd") {
		s.MAFIC.DropProbability = *pd
	}
	if use("flows") {
		s.Workload.TotalFlows = *flows
	}
	if use("tcp") {
		s.Workload.TCPShare = *tcpShare
	}
	if use("rate") {
		s.Workload.AttackRate = *rate / experiment.RateScale
	}
	if use("routers") {
		s.Topology.NumRouters = *routers
	}
	if *hardened {
		s = experiment.Harden(s)
	}
	if use("defense") {
		switch *defense {
		case "mafic":
			s.Defense = experiment.DefenseMAFIC
		case "proportional":
			s.Defense = experiment.DefenseBaseline
		case "none":
			s.Defense = experiment.DefenseNone
		default:
			return fmt.Errorf("unknown defense %q", *defense)
		}
	}

	times, err := checkpointTimes(*ckptEvery, *ckptAt, s.Duration)
	if err != nil {
		return err
	}

	start := time.Now()
	var res experiment.Result
	if len(times) > 0 {
		res, err = experiment.RunWithCheckpoints(s, times, func(at sim.Time, data []byte) error {
			name := fmt.Sprintf("%s-%dms.snap", *ckptOut, at/sim.Millisecond)
			// Atomic (temp + fsync + rename): a crash mid-write must never
			// leave a torn file where a resumable snapshot should be.
			if werr := checkpoint.WriteFileAtomic(name, data, 0o644); werr != nil {
				return werr
			}
			fmt.Fprintf(os.Stderr, "wrote %s (%d bytes at t=%v)\n", name, len(data), at)
			return nil
		})
	} else {
		res, err = experiment.Run(s)
	}
	if err != nil {
		return err
	}
	return printResult(out, res, time.Since(start), *asJSON, *series)
}

// checkpointTimes expands the -checkpoint-every / -checkpoint-at flags into
// the strictly ascending snapshot schedule RunWithCheckpoints expects.
func checkpointTimes(every, at time.Duration, duration sim.Time) ([]sim.Time, error) {
	if every < 0 || at < 0 {
		return nil, fmt.Errorf("checkpoint times must be positive")
	}
	if every != 0 && at != 0 {
		return nil, fmt.Errorf("use either -checkpoint-every or -checkpoint-at, not both")
	}
	if at != 0 {
		return []sim.Time{sim.FromDuration(at)}, nil
	}
	if every == 0 {
		return nil, nil
	}
	step := sim.FromDuration(every)
	var times []sim.Time
	for t := step; t < duration; t += step {
		times = append(times, t)
	}
	if len(times) == 0 {
		return nil, fmt.Errorf("-checkpoint-every %v produces no snapshots within the %v run", every, duration)
	}
	return times, nil
}

func printResult(out *os.File, res experiment.Result, elapsed time.Duration, asJSON, series bool) error {
	if asJSON {
		if !series {
			res.Series = nil
		}
		enc := json.NewEncoder(out)
		enc.SetIndent("", "  ")
		return enc.Encode(res)
	}

	fmt.Fprintf(out, "MAFIC scenario %q (defense=%s)\n", res.Name, res.Defense)
	fmt.Fprintf(out, "  parameters: Pd=%.0f%%  Vt=%d flows  Γ=%.0f%% TCP  R=%.0f pkt/s (scaled)  N=%d routers\n",
		res.Pd*100, res.Volume, res.TCPShare*100, res.AttackRate, res.Routers)
	if res.Activated {
		how := "pushback detection"
		if !res.DetectedByPushback {
			how = "scheduled fallback"
		}
		fmt.Fprintf(out, "  defense activated at t=%.3fs via %s on %d ATRs\n", res.ActivationSeconds, how, res.ATRCount)
	} else {
		fmt.Fprintf(out, "  defense was never activated\n")
	}
	fmt.Fprintf(out, "  attack dropping accuracy (α):     %6.2f%%\n", res.Accuracy*100)
	fmt.Fprintf(out, "  traffic reduction rate (β):       %6.2f%%\n", res.TrafficReduction*100)
	fmt.Fprintf(out, "  false positive rate (θp):         %6.3f%%\n", res.FalsePositiveRate*100)
	fmt.Fprintf(out, "  false negative rate (θn):         %6.3f%%\n", res.FalseNegativeRate*100)
	fmt.Fprintf(out, "  legitimate packet drop rate (Lr): %6.2f%%\n", res.LegitimateDropRate*100)
	fmt.Fprintf(out, "  flows probed=%d nice=%d condemned=%d illegal=%d (legit condemned=%d, attack forgiven=%d)\n",
		res.DefenseStats.FlowsProbed, res.DefenseStats.FlowsNice, res.DefenseStats.FlowsCondemned,
		res.DefenseStats.FlowsIllegal, res.LegitFlowsCondemned, res.AttackFlowsForgiven)
	if res.Counts.FaultDrops > 0 {
		fmt.Fprintf(out, "  fault drops: %d packets lost to link/router churn\n", res.Counts.FaultDrops)
	}
	fmt.Fprintf(out, "  events processed: %d  (wall time %v)\n", res.EventsProcessed, elapsed.Round(time.Millisecond))
	fmt.Fprintf(out, "  route state: %d next-hop entries resident (%d bytes, demand-driven)\n",
		res.RouteEntries, res.RouteBytes)
	return nil
}
