// Command maficbench measures the simulation engine's throughput and
// allocation behaviour and emits the results as JSON, one record per
// benchmark, mirroring the figure benchmarks in bench_test.go.
//
// It exists so the performance trajectory of the engine is tracked across
// PRs: BENCH_baseline.json at the repository root was produced by this tool
// and records the reference numbers future changes are compared against.
//
//	go run ./cmd/maficbench -out BENCH_current.json
//	go run ./cmd/maficbench -benchmarks table2,fig3a
//
// Each record reports B/op and allocs/op exactly as
// `go test -bench=. -benchmem` would, because the tool drives the same code
// through testing.Benchmark. ns/op is the median of -samples process-CPU-time
// measurements of the same loop (see BenchResult.NsPerOp): wall-clock on a
// shared host flaps ±15–30% on identical code from CPU the host steals, and
// a regression gate needs a measurement that holds still.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"sort"
	"strings"
	"syscall"
	"testing"

	"mafic/internal/experiment"
	"mafic/internal/sim"
)

// BenchResult is one benchmark's measurement in the emitted JSON. Route
// stats are reported for single-scenario benchmarks: demand-driven routing
// materializes next-hop state per active destination, so the resident entry
// count and bytes are a tracked property of each scenario, not a constant of
// the domain size.
type BenchResult struct {
	Name       string `json:"name"`
	Iterations int    `json:"iterations"`
	// NsPerOp is the median across the run's samples (see -samples) of
	// *process CPU time* per op, not wall-clock: time the host steals from
	// the process (noisy neighbours, cgroup throttling) inflates wall-clock
	// by ±15–30% on identical code but never shows up as CPU consumed, so
	// CPU time is the measurement a regression gate can hold still on. On a
	// quiet single-core host the two are equal; parallel sweep benchmarks
	// report total work across workers rather than elapsed time. Samples
	// records how many samples went into the median.
	NsPerOp      float64 `json:"nsPerOp"`
	Samples      int     `json:"samples,omitempty"`
	BytesPerOp   int64   `json:"bytesPerOp"`
	AllocsPerOp  int64   `json:"allocsPerOp"`
	RouteEntries int     `json:"routeEntries,omitempty"`
	RouteBytes   int64   `json:"routeBytes,omitempty"`
}

// BenchReport is the full emitted document.
type BenchReport struct {
	GoVersion string        `json:"goVersion"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	NumCPU    int           `json:"numCPU"`
	Results   []BenchResult `json:"results"`
}

// benchScenario mirrors benchBase in bench_test.go: the full pipeline on a
// smaller domain and a shorter timeline.
func benchScenario() experiment.Scenario {
	s := experiment.DefaultScenario()
	s.Topology.NumRouters = 20
	s.Topology.ExtraChords = 5
	s.Topology.BystanderHosts = 8
	s.Workload.TotalFlows = 30
	s.Duration = 1800 * sim.Millisecond
	s.Workload.AttackStart = 600 * sim.Millisecond
	s.DetectionFallback = 300 * sim.Millisecond
	return s
}

func benchOpts() experiment.SweepOptions {
	base := benchScenario()
	return experiment.SweepOptions{Quick: true, Seed: 1, Base: &base}
}

// benchEntry is one tracked benchmark. fn drives the workload through
// testing.Benchmark for the deterministic counters (allocs/op, B/op) and
// iteration calibration; prep performs the same setup and untimed warm-up
// once and returns the bare measured loop, which the main loop times with
// process CPU time for the ns/op samples. Scenario benchmarks carry a
// lastRun slot the loops fill, so the emitted record can report the run's
// resident route state without re-running the scenario.
type benchEntry struct {
	name    string
	fn      func(b *testing.B)
	prep    func() (func(n int) error, error)
	lastRun *experiment.Result
}

// cpuTimeNs reports the process's cumulative CPU time (user + system) in
// nanoseconds. Unlike wall-clock it is unaffected by CPU the host steals
// from the process, which is what makes the ns/op gate stable on shared
// machines.
func cpuTimeNs() float64 {
	var ru syscall.Rusage
	if err := syscall.Getrusage(syscall.RUSAGE_SELF, &ru); err != nil {
		return 0
	}
	return float64(ru.Utime.Sec+ru.Stime.Sec)*1e9 +
		float64(ru.Utime.Usec+ru.Stime.Usec)*1e3
}

// scenarioLoop runs n build-measure-defend iterations of an already warmed-up
// scenario, recording the final Result for route-stat reporting.
func scenarioLoop(s experiment.Scenario, last *experiment.Result) func(n int) error {
	return func(n int) error {
		for i := 0; i < n; i++ {
			res, err := experiment.Run(s)
			if err != nil {
				return err
			}
			if !res.Activated {
				return fmt.Errorf("defense never activated")
			}
			*last = res
		}
		return nil
	}
}

// scenarioBench builds a benchmark that runs one scenario per iteration. One
// untimed warm-up run precedes the measured loop so B/op and allocs/op
// report the pooled steady state instead of a cold-start cost amortized over
// an iteration count that varies run to run.
func scenarioBench(build func() (experiment.Scenario, error), last *experiment.Result) func(b *testing.B) {
	return func(b *testing.B) {
		s, err := build()
		if err != nil {
			b.Fatal(err)
		}
		if _, err := experiment.Run(s); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		if err := scenarioLoop(s, last)(b.N); err != nil {
			b.Fatal(err)
		}
	}
}

// scenarioPrep mirrors scenarioBench's setup and warm-up and hands back the
// bare measured loop for CPU-time sampling.
func scenarioPrep(build func() (experiment.Scenario, error), last *experiment.Result) func() (func(n int) error, error) {
	return func() (func(n int) error, error) {
		s, err := build()
		if err != nil {
			return nil, err
		}
		if _, err := experiment.Run(s); err != nil {
			return nil, err
		}
		return scenarioLoop(s, last), nil
	}
}

// registryQuick resolves a registered scenario's quick variant.
func registryQuick(name string) func() (experiment.Scenario, error) {
	return func() (experiment.Scenario, error) {
		e, ok := experiment.LookupScenario(name)
		if !ok {
			return experiment.Scenario{}, fmt.Errorf("%s scenario not registered", name)
		}
		return experiment.Quick(e.Build()), nil
	}
}

// benchmarks enumerates every tracked benchmark by short name.
var benchmarks = func() []benchEntry {
	entries := []benchEntry{
		newScenarioEntry("table2", func() (experiment.Scenario, error) { return benchScenario(), nil }),
		newScenarioEntry("stress-1k", registryQuick("stress-1k")),
		newScenarioEntry("stress-5k", registryQuick("stress-5k")),
		newScenarioEntry("stress-50k", registryQuick("stress-50k")),
	}
	for _, fig := range []struct {
		name string
		id   experiment.FigureID
	}{
		{"fig3a", experiment.FigureF3a},
		{"fig3b", experiment.FigureF3b},
		{"fig4a", experiment.FigureF4a},
		{"fig4b", experiment.FigureF4b},
		{"fig5a", experiment.FigureF5a},
		{"fig5b", experiment.FigureF5b},
		{"fig5c", experiment.FigureF5c},
		{"fig6a", experiment.FigureF6a},
		{"fig6b", experiment.FigureF6b},
		{"fig6c", experiment.FigureF6c},
		{"fig7", experiment.FigureF7},
		{"ablation-baseline", experiment.FigureAblationBase},
		{"ablation-probe", experiment.FigureAblationProbe},
		{"ablation-pulsing", experiment.FigureAblationPulsing},
	} {
		entries = append(entries, benchEntry{name: fig.name, fn: figureBench(fig.id), prep: figurePrep(fig.id)})
	}
	return entries
}()

func newScenarioEntry(name string, build func() (experiment.Scenario, error)) benchEntry {
	last := new(experiment.Result)
	return benchEntry{
		name:    name,
		fn:      scenarioBench(build, last),
		prep:    scenarioPrep(build, last),
		lastRun: last,
	}
}

// figureLoop runs n regenerations of one figure's sweep.
func figureLoop(id experiment.FigureID) func(n int) error {
	return func(n int) error {
		for i := 0; i < n; i++ {
			fig, err := experiment.Generate(id, benchOpts())
			if err != nil {
				return fmt.Errorf("figure %s: %w", id, err)
			}
			if len(fig.Series) == 0 {
				return fmt.Errorf("figure %s produced no series", id)
			}
		}
		return nil
	}
}

func figureBench(id experiment.FigureID) func(b *testing.B) {
	return func(b *testing.B) {
		// Untimed warm-up, as in scenarioBench: measure pooled steady
		// state, not amortized cold-start.
		if _, err := experiment.Generate(id, benchOpts()); err != nil {
			b.Fatalf("figure %s: %v", id, err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		if err := figureLoop(id)(b.N); err != nil {
			b.Fatal(err)
		}
	}
}

// figurePrep warms the figure sweep up and hands back the measured loop.
func figurePrep(id experiment.FigureID) func() (func(n int) error, error) {
	return func() (func(n int) error, error) {
		if _, err := experiment.Generate(id, benchOpts()); err != nil {
			return nil, fmt.Errorf("figure %s: %w", id, err)
		}
		return figureLoop(id), nil
	}
}

// allocTolerance is the fixed gate for allocs/op and B/op: both are exactly
// reproducible run to run (the engine's steady state is deterministic), so
// they stay on the strict 10% gate regardless of the -tolerance flag, which
// governs only the noisy wall-clock dimension.
const allocTolerance = 0.10

// compareAgainst checks the freshly measured report against a tracked
// baseline and returns the number of regressions: benchmarks whose median
// ns/op exceeds the baseline by more than nsTolerance (a fraction, e.g. 0.10
// for 10%), or whose allocs/op or B/op exceed it by more than the fixed
// allocTolerance. Benchmarks missing from the baseline (newly added) are
// reported but never count as regressions; benchmarks present only in the
// baseline are flagged so silent coverage loss is visible.
func compareAgainst(baselinePath string, report BenchReport, nsTolerance float64) (int, error) {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return 0, fmt.Errorf("read baseline: %w", err)
	}
	var baseline BenchReport
	if err := json.Unmarshal(data, &baseline); err != nil {
		return 0, fmt.Errorf("parse baseline %s: %w", baselinePath, err)
	}
	base := make(map[string]BenchResult, len(baseline.Results))
	for _, r := range baseline.Results {
		base[r.Name] = r
	}

	// ratioDelta is the fractional growth of got over base, treating a
	// zero baseline as regressed only when the measurement became nonzero.
	ratioDelta := func(got, base int64) float64 {
		if base > 0 {
			return float64(got)/float64(base) - 1
		}
		if got > 0 {
			return 1
		}
		return 0
	}

	regressions := 0
	seen := make(map[string]bool, len(report.Results))
	fmt.Fprintf(os.Stderr, "%-20s %14s %14s %9s %12s %12s %9s %12s %12s %9s\n",
		"benchmark", "base ns/op", "ns/op", "Δ", "base allocs", "allocs", "Δ", "base B/op", "B/op", "Δ")
	for _, r := range report.Results {
		seen[r.Name] = true
		b, ok := base[r.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "%-20s %14s %14.0f %9s %12s %12d %9s %12s %12d %9s  (new, no baseline)\n",
				r.Name, "-", r.NsPerOp, "-", "-", r.AllocsPerOp, "-", "-", r.BytesPerOp, "-")
			continue
		}
		nsDelta := r.NsPerOp/b.NsPerOp - 1
		allocDelta := ratioDelta(r.AllocsPerOp, b.AllocsPerOp)
		bytesDelta := ratioDelta(r.BytesPerOp, b.BytesPerOp)
		verdict := ""
		if nsDelta > nsTolerance || allocDelta > allocTolerance || bytesDelta > allocTolerance {
			verdict = "  REGRESSION"
			regressions++
		}
		fmt.Fprintf(os.Stderr, "%-20s %14.0f %14.0f %+8.1f%% %12d %12d %+8.1f%% %12d %12d %+8.1f%%%s\n",
			r.Name, b.NsPerOp, r.NsPerOp, nsDelta*100, b.AllocsPerOp, r.AllocsPerOp, allocDelta*100,
			b.BytesPerOp, r.BytesPerOp, bytesDelta*100, verdict)
	}
	for _, b := range baseline.Results {
		if !seen[b.Name] {
			fmt.Fprintf(os.Stderr, "%-20s: present in baseline but not measured\n", b.Name)
		}
	}
	return regressions, nil
}

// median returns the middle of the sorted samples (the mean of the middle
// two for even counts). The input is sorted in place.
func median(samples []float64) float64 {
	sort.Float64s(samples)
	n := len(samples)
	if n%2 == 1 {
		return samples[n/2]
	}
	return (samples[n/2-1] + samples[n/2]) / 2
}

// main defers to run so the profile writers run before the process exits
// (os.Exit would skip them).
func main() { os.Exit(run()) }

func run() int {
	out := flag.String("out", "", "write the JSON report to this file instead of stdout")
	only := flag.String("benchmarks", "", "comma-separated benchmark names to run (default: all)")
	diff := flag.String("diff", "", "compare against this baseline JSON and exit non-zero on regression")
	tolerance := flag.Float64("tolerance", 0.10, "with -diff: allowed fractional growth in median ns/op (allocs/op and B/op always use the strict 10% gate)")
	samples := flag.Int("samples", 3, "wall-clock samples per benchmark; the reported ns/op is their median")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the benchmark runs to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile of the benchmark runs to this file")
	flag.Parse()

	if *memprofile != "" {
		// Record every allocation, not one per half-megabyte: the hot
		// paths at stake allocate a few hundred small objects per run,
		// which the default sampling rate would mostly miss.
		runtime.MemProfileRate = 1
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "maficbench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush outstanding allocations into the profile
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "maficbench: write alloc profile:", err)
			}
		}()
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "maficbench:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "maficbench: start cpu profile:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	known := map[string]bool{}
	for _, bm := range benchmarks {
		known[bm.name] = true
	}
	selected := map[string]bool{}
	for _, name := range strings.Split(*only, ",") {
		if name = strings.TrimSpace(name); name != "" {
			if !known[name] {
				fmt.Fprintf(os.Stderr, "maficbench: unknown benchmark %q (known: table2, stress-1k, stress-5k, stress-50k, fig3a..fig7, ablation-*)\n", name)
				return 2
			}
			selected[name] = true
		}
	}

	report := BenchReport{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	for _, bm := range benchmarks {
		if len(selected) > 0 && !selected[bm.name] {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %s...\n", bm.name)
		n := *samples
		if n < 1 {
			n = 1
		}
		// One testing.Benchmark run supplies the deterministic counters
		// (allocs/op, B/op) and calibrates the per-sample iteration count;
		// the ns/op samples are then taken median-of-N over the bare
		// measured loop timed with process CPU time, which host CPU-steal
		// cannot inflate the way it inflates wall-clock.
		r := testing.Benchmark(bm.fn)
		loop, err := bm.prep()
		if err != nil {
			fmt.Fprintf(os.Stderr, "maficbench: %s: %v\n", bm.name, err)
			return 1
		}
		nsSamples := make([]float64, 0, n)
		for s := 0; s < n; s++ {
			start := cpuTimeNs()
			if err := loop(r.N); err != nil {
				fmt.Fprintf(os.Stderr, "maficbench: %s: %v\n", bm.name, err)
				return 1
			}
			nsSamples = append(nsSamples, (cpuTimeNs()-start)/float64(r.N))
		}
		res := BenchResult{
			Name:        bm.name,
			Iterations:  r.N,
			NsPerOp:     median(nsSamples),
			Samples:     n,
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if bm.lastRun != nil && bm.lastRun.Routers > 0 {
			res.RouteEntries = bm.lastRun.RouteEntries
			res.RouteBytes = bm.lastRun.RouteBytes
			fmt.Fprintf(os.Stderr, "  route state: %d entries, %d bytes resident\n",
				res.RouteEntries, res.RouteBytes)
		}
		report.Results = append(report.Results, res)
	}

	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "encode report:", err)
		return 1
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "write report:", err)
		return 1
	}

	if *diff != "" {
		regressions, err := compareAgainst(*diff, report, *tolerance)
		if err != nil {
			fmt.Fprintln(os.Stderr, "maficbench:", err)
			return 1
		}
		if regressions > 0 {
			fmt.Fprintf(os.Stderr, "maficbench: %d benchmark(s) regressed vs %s (ns/op tolerance %.0f%%, allocs/B gate %.0f%%)\n",
				regressions, *diff, *tolerance*100, allocTolerance*100)
			return 1
		}
		fmt.Fprintf(os.Stderr, "maficbench: no regressions vs %s (ns/op tolerance %.0f%%, allocs/B gate %.0f%%)\n",
			*diff, *tolerance*100, allocTolerance*100)
	}
	return 0
}
