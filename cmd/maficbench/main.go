// Command maficbench measures the simulation engine's throughput and
// allocation behaviour and emits the results as JSON, one record per
// benchmark, mirroring the figure benchmarks in bench_test.go.
//
// It exists so the performance trajectory of the engine is tracked across
// PRs: BENCH_baseline.json at the repository root was produced by this tool
// and records the reference numbers future changes are compared against.
//
//	go run ./cmd/maficbench -out BENCH_current.json
//	go run ./cmd/maficbench -benchmarks table2,fig3a
//
// Each record reports ns/op, B/op and allocs/op exactly as
// `go test -bench=. -benchmem` would, because the tool drives the same code
// through testing.Benchmark.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"strings"
	"testing"

	"mafic/internal/experiment"
	"mafic/internal/sim"
)

// BenchResult is one benchmark's measurement in the emitted JSON.
type BenchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"nsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
}

// BenchReport is the full emitted document.
type BenchReport struct {
	GoVersion string        `json:"goVersion"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	NumCPU    int           `json:"numCPU"`
	Results   []BenchResult `json:"results"`
}

// benchScenario mirrors benchBase in bench_test.go: the full pipeline on a
// smaller domain and a shorter timeline.
func benchScenario() experiment.Scenario {
	s := experiment.DefaultScenario()
	s.Topology.NumRouters = 20
	s.Topology.ExtraChords = 5
	s.Topology.BystanderHosts = 8
	s.Workload.TotalFlows = 30
	s.Duration = 1800 * sim.Millisecond
	s.Workload.AttackStart = 600 * sim.Millisecond
	s.DetectionFallback = 300 * sim.Millisecond
	return s
}

func benchOpts() experiment.SweepOptions {
	base := benchScenario()
	return experiment.SweepOptions{Quick: true, Seed: 1, Base: &base}
}

// benchmarks enumerates every tracked benchmark by short name.
var benchmarks = []struct {
	name string
	fn   func(b *testing.B)
}{
	{name: "table2", fn: func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := experiment.Run(benchScenario())
			if err != nil {
				b.Fatal(err)
			}
			if !res.Activated {
				b.Fatal("defense never activated")
			}
		}
	}},
	{name: "fig3a", fn: figureBench(experiment.FigureF3a)},
	{name: "fig3b", fn: figureBench(experiment.FigureF3b)},
	{name: "fig4a", fn: figureBench(experiment.FigureF4a)},
	{name: "fig4b", fn: figureBench(experiment.FigureF4b)},
	{name: "fig5a", fn: figureBench(experiment.FigureF5a)},
	{name: "fig5b", fn: figureBench(experiment.FigureF5b)},
	{name: "fig5c", fn: figureBench(experiment.FigureF5c)},
	{name: "fig6a", fn: figureBench(experiment.FigureF6a)},
	{name: "fig6b", fn: figureBench(experiment.FigureF6b)},
	{name: "fig6c", fn: figureBench(experiment.FigureF6c)},
	{name: "fig7", fn: figureBench(experiment.FigureF7)},
	{name: "ablation-baseline", fn: figureBench(experiment.FigureAblationBase)},
	{name: "ablation-probe", fn: figureBench(experiment.FigureAblationProbe)},
	{name: "ablation-pulsing", fn: figureBench(experiment.FigureAblationPulsing)},
}

func figureBench(id experiment.FigureID) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fig, err := experiment.Generate(id, benchOpts())
			if err != nil {
				b.Fatalf("figure %s: %v", id, err)
			}
			if len(fig.Series) == 0 {
				b.Fatalf("figure %s produced no series", id)
			}
		}
	}
}

func main() {
	out := flag.String("out", "", "write the JSON report to this file instead of stdout")
	only := flag.String("benchmarks", "", "comma-separated benchmark names to run (default: all)")
	flag.Parse()

	known := map[string]bool{}
	for _, bm := range benchmarks {
		known[bm.name] = true
	}
	selected := map[string]bool{}
	for _, name := range strings.Split(*only, ",") {
		if name = strings.TrimSpace(name); name != "" {
			if !known[name] {
				fmt.Fprintf(os.Stderr, "maficbench: unknown benchmark %q (known: table2, fig3a..fig7, ablation-*)\n", name)
				os.Exit(2)
			}
			selected[name] = true
		}
	}

	report := BenchReport{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	for _, bm := range benchmarks {
		if len(selected) > 0 && !selected[bm.name] {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %s...\n", bm.name)
		r := testing.Benchmark(bm.fn)
		report.Results = append(report.Results, BenchResult{
			Name:        bm.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
	}

	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "encode report:", err)
		os.Exit(1)
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
		return
	}
	if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "write report:", err)
		os.Exit(1)
	}
}
