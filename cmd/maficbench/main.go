// Command maficbench measures the simulation engine's throughput and
// allocation behaviour and emits the results as JSON, one record per
// benchmark, mirroring the figure benchmarks in bench_test.go.
//
// It exists so the performance trajectory of the engine is tracked across
// PRs: BENCH_baseline.json at the repository root was produced by this tool
// and records the reference numbers future changes are compared against.
//
//	go run ./cmd/maficbench -out BENCH_current.json
//	go run ./cmd/maficbench -benchmarks table2,fig3a
//
// Each record reports ns/op, B/op and allocs/op exactly as
// `go test -bench=. -benchmem` would, because the tool drives the same code
// through testing.Benchmark.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"

	"mafic/internal/experiment"
	"mafic/internal/sim"
)

// BenchResult is one benchmark's measurement in the emitted JSON.
type BenchResult struct {
	Name        string  `json:"name"`
	Iterations  int     `json:"iterations"`
	NsPerOp     float64 `json:"nsPerOp"`
	BytesPerOp  int64   `json:"bytesPerOp"`
	AllocsPerOp int64   `json:"allocsPerOp"`
}

// BenchReport is the full emitted document.
type BenchReport struct {
	GoVersion string        `json:"goVersion"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	NumCPU    int           `json:"numCPU"`
	Results   []BenchResult `json:"results"`
}

// benchScenario mirrors benchBase in bench_test.go: the full pipeline on a
// smaller domain and a shorter timeline.
func benchScenario() experiment.Scenario {
	s := experiment.DefaultScenario()
	s.Topology.NumRouters = 20
	s.Topology.ExtraChords = 5
	s.Topology.BystanderHosts = 8
	s.Workload.TotalFlows = 30
	s.Duration = 1800 * sim.Millisecond
	s.Workload.AttackStart = 600 * sim.Millisecond
	s.DetectionFallback = 300 * sim.Millisecond
	return s
}

func benchOpts() experiment.SweepOptions {
	base := benchScenario()
	return experiment.SweepOptions{Quick: true, Seed: 1, Base: &base}
}

// benchmarks enumerates every tracked benchmark by short name.
var benchmarks = []struct {
	name string
	fn   func(b *testing.B)
}{
	{name: "table2", fn: func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := experiment.Run(benchScenario())
			if err != nil {
				b.Fatal(err)
			}
			if !res.Activated {
				b.Fatal("defense never activated")
			}
		}
	}},
	{name: "stress-1k", fn: func(b *testing.B) {
		e, ok := experiment.LookupScenario("stress-1k")
		if !ok {
			b.Fatal("stress-1k scenario not registered")
		}
		s := experiment.Quick(e.Build())
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			res, err := experiment.Run(s)
			if err != nil {
				b.Fatal(err)
			}
			if !res.Activated {
				b.Fatal("defense never activated")
			}
		}
	}},
	{name: "fig3a", fn: figureBench(experiment.FigureF3a)},
	{name: "fig3b", fn: figureBench(experiment.FigureF3b)},
	{name: "fig4a", fn: figureBench(experiment.FigureF4a)},
	{name: "fig4b", fn: figureBench(experiment.FigureF4b)},
	{name: "fig5a", fn: figureBench(experiment.FigureF5a)},
	{name: "fig5b", fn: figureBench(experiment.FigureF5b)},
	{name: "fig5c", fn: figureBench(experiment.FigureF5c)},
	{name: "fig6a", fn: figureBench(experiment.FigureF6a)},
	{name: "fig6b", fn: figureBench(experiment.FigureF6b)},
	{name: "fig6c", fn: figureBench(experiment.FigureF6c)},
	{name: "fig7", fn: figureBench(experiment.FigureF7)},
	{name: "ablation-baseline", fn: figureBench(experiment.FigureAblationBase)},
	{name: "ablation-probe", fn: figureBench(experiment.FigureAblationProbe)},
	{name: "ablation-pulsing", fn: figureBench(experiment.FigureAblationPulsing)},
}

func figureBench(id experiment.FigureID) func(b *testing.B) {
	return func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			fig, err := experiment.Generate(id, benchOpts())
			if err != nil {
				b.Fatalf("figure %s: %v", id, err)
			}
			if len(fig.Series) == 0 {
				b.Fatalf("figure %s produced no series", id)
			}
		}
	}
}

// compareAgainst checks the freshly measured report against a tracked
// baseline and returns the number of regressions: benchmarks whose ns/op or
// allocs/op exceed the baseline by more than tolerance (a fraction, e.g.
// 0.10 for 10%). Benchmarks missing from the baseline (newly added) are
// reported but never count as regressions; benchmarks present only in the
// baseline are flagged so silent coverage loss is visible.
func compareAgainst(baselinePath string, report BenchReport, tolerance float64) (int, error) {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return 0, fmt.Errorf("read baseline: %w", err)
	}
	var baseline BenchReport
	if err := json.Unmarshal(data, &baseline); err != nil {
		return 0, fmt.Errorf("parse baseline %s: %w", baselinePath, err)
	}
	base := make(map[string]BenchResult, len(baseline.Results))
	for _, r := range baseline.Results {
		base[r.Name] = r
	}

	regressions := 0
	seen := make(map[string]bool, len(report.Results))
	fmt.Fprintf(os.Stderr, "%-20s %14s %14s %9s %12s %12s %9s\n",
		"benchmark", "base ns/op", "ns/op", "Δ", "base allocs", "allocs", "Δ")
	for _, r := range report.Results {
		seen[r.Name] = true
		b, ok := base[r.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "%-20s %14s %14.0f %9s %12s %12d %9s  (new, no baseline)\n",
				r.Name, "-", r.NsPerOp, "-", "-", r.AllocsPerOp, "-")
			continue
		}
		nsDelta := r.NsPerOp/b.NsPerOp - 1
		allocDelta := 0.0
		if b.AllocsPerOp > 0 {
			allocDelta = float64(r.AllocsPerOp)/float64(b.AllocsPerOp) - 1
		} else if r.AllocsPerOp > 0 {
			allocDelta = 1
		}
		verdict := ""
		if nsDelta > tolerance || allocDelta > tolerance {
			verdict = "  REGRESSION"
			regressions++
		}
		fmt.Fprintf(os.Stderr, "%-20s %14.0f %14.0f %+8.1f%% %12d %12d %+8.1f%%%s\n",
			r.Name, b.NsPerOp, r.NsPerOp, nsDelta*100, b.AllocsPerOp, r.AllocsPerOp, allocDelta*100, verdict)
	}
	for _, b := range baseline.Results {
		if !seen[b.Name] {
			fmt.Fprintf(os.Stderr, "%-20s: present in baseline but not measured\n", b.Name)
		}
	}
	return regressions, nil
}

// main defers to run so the profile writers run before the process exits
// (os.Exit would skip them).
func main() { os.Exit(run()) }

func run() int {
	out := flag.String("out", "", "write the JSON report to this file instead of stdout")
	only := flag.String("benchmarks", "", "comma-separated benchmark names to run (default: all)")
	diff := flag.String("diff", "", "compare against this baseline JSON and exit non-zero on regression")
	tolerance := flag.Float64("tolerance", 0.10, "with -diff: allowed fractional growth in ns/op or allocs/op")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the benchmark runs to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile of the benchmark runs to this file")
	flag.Parse()

	if *memprofile != "" {
		// Record every allocation, not one per half-megabyte: the hot
		// paths at stake allocate a few hundred small objects per run,
		// which the default sampling rate would mostly miss.
		runtime.MemProfileRate = 1
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "maficbench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush outstanding allocations into the profile
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "maficbench: write alloc profile:", err)
			}
		}()
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "maficbench:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "maficbench: start cpu profile:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	known := map[string]bool{}
	for _, bm := range benchmarks {
		known[bm.name] = true
	}
	selected := map[string]bool{}
	for _, name := range strings.Split(*only, ",") {
		if name = strings.TrimSpace(name); name != "" {
			if !known[name] {
				fmt.Fprintf(os.Stderr, "maficbench: unknown benchmark %q (known: table2, stress-1k, fig3a..fig7, ablation-*)\n", name)
				return 2
			}
			selected[name] = true
		}
	}

	report := BenchReport{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	for _, bm := range benchmarks {
		if len(selected) > 0 && !selected[bm.name] {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %s...\n", bm.name)
		r := testing.Benchmark(bm.fn)
		report.Results = append(report.Results, BenchResult{
			Name:        bm.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		})
	}

	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "encode report:", err)
		return 1
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "write report:", err)
		return 1
	}

	if *diff != "" {
		regressions, err := compareAgainst(*diff, report, *tolerance)
		if err != nil {
			fmt.Fprintln(os.Stderr, "maficbench:", err)
			return 1
		}
		if regressions > 0 {
			fmt.Fprintf(os.Stderr, "maficbench: %d benchmark(s) regressed beyond %.0f%% vs %s\n",
				regressions, *tolerance*100, *diff)
			return 1
		}
		fmt.Fprintf(os.Stderr, "maficbench: no regressions beyond %.0f%% vs %s\n", *tolerance*100, *diff)
	}
	return 0
}
