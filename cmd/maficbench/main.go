// Command maficbench measures the simulation engine's throughput and
// allocation behaviour and emits the results as JSON, one record per
// benchmark, mirroring the figure benchmarks in bench_test.go.
//
// It exists so the performance trajectory of the engine is tracked across
// PRs: BENCH_baseline.json at the repository root was produced by this tool
// and records the reference numbers future changes are compared against.
//
//	go run ./cmd/maficbench -out BENCH_current.json
//	go run ./cmd/maficbench -benchmarks table2,fig3a
//
// Each record reports ns/op, B/op and allocs/op exactly as
// `go test -bench=. -benchmem` would, because the tool drives the same code
// through testing.Benchmark.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"runtime"
	"runtime/pprof"
	"strings"
	"testing"

	"mafic/internal/experiment"
	"mafic/internal/sim"
)

// BenchResult is one benchmark's measurement in the emitted JSON. Route
// stats are reported for single-scenario benchmarks: demand-driven routing
// materializes next-hop state per active destination, so the resident entry
// count and bytes are a tracked property of each scenario, not a constant of
// the domain size.
type BenchResult struct {
	Name         string  `json:"name"`
	Iterations   int     `json:"iterations"`
	NsPerOp      float64 `json:"nsPerOp"`
	BytesPerOp   int64   `json:"bytesPerOp"`
	AllocsPerOp  int64   `json:"allocsPerOp"`
	RouteEntries int     `json:"routeEntries,omitempty"`
	RouteBytes   int64   `json:"routeBytes,omitempty"`
}

// BenchReport is the full emitted document.
type BenchReport struct {
	GoVersion string        `json:"goVersion"`
	GOOS      string        `json:"goos"`
	GOARCH    string        `json:"goarch"`
	NumCPU    int           `json:"numCPU"`
	Results   []BenchResult `json:"results"`
}

// benchScenario mirrors benchBase in bench_test.go: the full pipeline on a
// smaller domain and a shorter timeline.
func benchScenario() experiment.Scenario {
	s := experiment.DefaultScenario()
	s.Topology.NumRouters = 20
	s.Topology.ExtraChords = 5
	s.Topology.BystanderHosts = 8
	s.Workload.TotalFlows = 30
	s.Duration = 1800 * sim.Millisecond
	s.Workload.AttackStart = 600 * sim.Millisecond
	s.DetectionFallback = 300 * sim.Millisecond
	return s
}

func benchOpts() experiment.SweepOptions {
	base := benchScenario()
	return experiment.SweepOptions{Quick: true, Seed: 1, Base: &base}
}

// benchEntry is one tracked benchmark. Scenario benchmarks carry a lastRun
// slot the loop fills, so the emitted record can report the run's resident
// route state without re-running the scenario.
type benchEntry struct {
	name    string
	fn      func(b *testing.B)
	lastRun *experiment.Result
}

// scenarioBench builds a benchmark that runs one scenario per iteration and
// records the final iteration's Result for route-stat reporting. One untimed
// warm-up run precedes the measured loop so B/op and allocs/op report the
// pooled steady state instead of a cold-start cost amortized over an
// iteration count that varies run to run.
func scenarioBench(build func(b *testing.B) experiment.Scenario) (func(b *testing.B), *experiment.Result) {
	last := new(experiment.Result)
	return func(b *testing.B) {
		s := build(b)
		if _, err := experiment.Run(s); err != nil {
			b.Fatal(err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			res, err := experiment.Run(s)
			if err != nil {
				b.Fatal(err)
			}
			if !res.Activated {
				b.Fatal("defense never activated")
			}
			*last = res
		}
	}, last
}

// registryQuick resolves a registered scenario's quick variant.
func registryQuick(name string) func(b *testing.B) experiment.Scenario {
	return func(b *testing.B) experiment.Scenario {
		e, ok := experiment.LookupScenario(name)
		if !ok {
			b.Fatalf("%s scenario not registered", name)
		}
		return experiment.Quick(e.Build())
	}
}

// benchmarks enumerates every tracked benchmark by short name.
var benchmarks = func() []benchEntry {
	entries := []benchEntry{
		newScenarioEntry("table2", func(*testing.B) experiment.Scenario { return benchScenario() }),
		newScenarioEntry("stress-1k", registryQuick("stress-1k")),
		newScenarioEntry("stress-5k", registryQuick("stress-5k")),
	}
	for _, fig := range []struct {
		name string
		id   experiment.FigureID
	}{
		{"fig3a", experiment.FigureF3a},
		{"fig3b", experiment.FigureF3b},
		{"fig4a", experiment.FigureF4a},
		{"fig4b", experiment.FigureF4b},
		{"fig5a", experiment.FigureF5a},
		{"fig5b", experiment.FigureF5b},
		{"fig5c", experiment.FigureF5c},
		{"fig6a", experiment.FigureF6a},
		{"fig6b", experiment.FigureF6b},
		{"fig6c", experiment.FigureF6c},
		{"fig7", experiment.FigureF7},
		{"ablation-baseline", experiment.FigureAblationBase},
		{"ablation-probe", experiment.FigureAblationProbe},
		{"ablation-pulsing", experiment.FigureAblationPulsing},
	} {
		entries = append(entries, benchEntry{name: fig.name, fn: figureBench(fig.id)})
	}
	return entries
}()

func newScenarioEntry(name string, build func(b *testing.B) experiment.Scenario) benchEntry {
	fn, last := scenarioBench(build)
	return benchEntry{name: name, fn: fn, lastRun: last}
}
func figureBench(id experiment.FigureID) func(b *testing.B) {
	return func(b *testing.B) {
		// Untimed warm-up, as in scenarioBench: measure pooled steady
		// state, not amortized cold-start.
		if _, err := experiment.Generate(id, benchOpts()); err != nil {
			b.Fatalf("figure %s: %v", id, err)
		}
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			fig, err := experiment.Generate(id, benchOpts())
			if err != nil {
				b.Fatalf("figure %s: %v", id, err)
			}
			if len(fig.Series) == 0 {
				b.Fatalf("figure %s produced no series", id)
			}
		}
	}
}

// compareAgainst checks the freshly measured report against a tracked
// baseline and returns the number of regressions: benchmarks whose ns/op,
// allocs/op or B/op exceed the baseline by more than tolerance (a fraction,
// e.g. 0.10 for 10%). Benchmarks missing from the baseline (newly added) are
// reported but never count as regressions; benchmarks present only in the
// baseline are flagged so silent coverage loss is visible.
func compareAgainst(baselinePath string, report BenchReport, tolerance float64) (int, error) {
	data, err := os.ReadFile(baselinePath)
	if err != nil {
		return 0, fmt.Errorf("read baseline: %w", err)
	}
	var baseline BenchReport
	if err := json.Unmarshal(data, &baseline); err != nil {
		return 0, fmt.Errorf("parse baseline %s: %w", baselinePath, err)
	}
	base := make(map[string]BenchResult, len(baseline.Results))
	for _, r := range baseline.Results {
		base[r.Name] = r
	}

	// ratioDelta is the fractional growth of got over base, treating a
	// zero baseline as regressed only when the measurement became nonzero.
	ratioDelta := func(got, base int64) float64 {
		if base > 0 {
			return float64(got)/float64(base) - 1
		}
		if got > 0 {
			return 1
		}
		return 0
	}

	regressions := 0
	seen := make(map[string]bool, len(report.Results))
	fmt.Fprintf(os.Stderr, "%-20s %14s %14s %9s %12s %12s %9s %12s %12s %9s\n",
		"benchmark", "base ns/op", "ns/op", "Δ", "base allocs", "allocs", "Δ", "base B/op", "B/op", "Δ")
	for _, r := range report.Results {
		seen[r.Name] = true
		b, ok := base[r.Name]
		if !ok {
			fmt.Fprintf(os.Stderr, "%-20s %14s %14.0f %9s %12s %12d %9s %12s %12d %9s  (new, no baseline)\n",
				r.Name, "-", r.NsPerOp, "-", "-", r.AllocsPerOp, "-", "-", r.BytesPerOp, "-")
			continue
		}
		nsDelta := r.NsPerOp/b.NsPerOp - 1
		allocDelta := ratioDelta(r.AllocsPerOp, b.AllocsPerOp)
		bytesDelta := ratioDelta(r.BytesPerOp, b.BytesPerOp)
		verdict := ""
		if nsDelta > tolerance || allocDelta > tolerance || bytesDelta > tolerance {
			verdict = "  REGRESSION"
			regressions++
		}
		fmt.Fprintf(os.Stderr, "%-20s %14.0f %14.0f %+8.1f%% %12d %12d %+8.1f%% %12d %12d %+8.1f%%%s\n",
			r.Name, b.NsPerOp, r.NsPerOp, nsDelta*100, b.AllocsPerOp, r.AllocsPerOp, allocDelta*100,
			b.BytesPerOp, r.BytesPerOp, bytesDelta*100, verdict)
	}
	for _, b := range baseline.Results {
		if !seen[b.Name] {
			fmt.Fprintf(os.Stderr, "%-20s: present in baseline but not measured\n", b.Name)
		}
	}
	return regressions, nil
}

// main defers to run so the profile writers run before the process exits
// (os.Exit would skip them).
func main() { os.Exit(run()) }

func run() int {
	out := flag.String("out", "", "write the JSON report to this file instead of stdout")
	only := flag.String("benchmarks", "", "comma-separated benchmark names to run (default: all)")
	diff := flag.String("diff", "", "compare against this baseline JSON and exit non-zero on regression")
	tolerance := flag.Float64("tolerance", 0.10, "with -diff: allowed fractional growth in ns/op, allocs/op or B/op")
	cpuprofile := flag.String("cpuprofile", "", "write a CPU profile of the benchmark runs to this file")
	memprofile := flag.String("memprofile", "", "write an allocation profile of the benchmark runs to this file")
	flag.Parse()

	if *memprofile != "" {
		// Record every allocation, not one per half-megabyte: the hot
		// paths at stake allocate a few hundred small objects per run,
		// which the default sampling rate would mostly miss.
		runtime.MemProfileRate = 1
		defer func() {
			f, err := os.Create(*memprofile)
			if err != nil {
				fmt.Fprintln(os.Stderr, "maficbench:", err)
				return
			}
			defer f.Close()
			runtime.GC() // flush outstanding allocations into the profile
			if err := pprof.Lookup("allocs").WriteTo(f, 0); err != nil {
				fmt.Fprintln(os.Stderr, "maficbench: write alloc profile:", err)
			}
		}()
	}
	if *cpuprofile != "" {
		f, err := os.Create(*cpuprofile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "maficbench:", err)
			return 1
		}
		defer f.Close()
		if err := pprof.StartCPUProfile(f); err != nil {
			fmt.Fprintln(os.Stderr, "maficbench: start cpu profile:", err)
			return 1
		}
		defer pprof.StopCPUProfile()
	}

	known := map[string]bool{}
	for _, bm := range benchmarks {
		known[bm.name] = true
	}
	selected := map[string]bool{}
	for _, name := range strings.Split(*only, ",") {
		if name = strings.TrimSpace(name); name != "" {
			if !known[name] {
				fmt.Fprintf(os.Stderr, "maficbench: unknown benchmark %q (known: table2, stress-1k, stress-5k, fig3a..fig7, ablation-*)\n", name)
				return 2
			}
			selected[name] = true
		}
	}

	report := BenchReport{
		GoVersion: runtime.Version(),
		GOOS:      runtime.GOOS,
		GOARCH:    runtime.GOARCH,
		NumCPU:    runtime.NumCPU(),
	}
	for _, bm := range benchmarks {
		if len(selected) > 0 && !selected[bm.name] {
			continue
		}
		fmt.Fprintf(os.Stderr, "running %s...\n", bm.name)
		r := testing.Benchmark(bm.fn)
		res := BenchResult{
			Name:        bm.name,
			Iterations:  r.N,
			NsPerOp:     float64(r.T.Nanoseconds()) / float64(r.N),
			BytesPerOp:  r.AllocedBytesPerOp(),
			AllocsPerOp: r.AllocsPerOp(),
		}
		if bm.lastRun != nil && bm.lastRun.Routers > 0 {
			res.RouteEntries = bm.lastRun.RouteEntries
			res.RouteBytes = bm.lastRun.RouteBytes
			fmt.Fprintf(os.Stderr, "  route state: %d entries, %d bytes resident\n",
				res.RouteEntries, res.RouteBytes)
		}
		report.Results = append(report.Results, res)
	}

	enc, err := json.MarshalIndent(report, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "encode report:", err)
		return 1
	}
	enc = append(enc, '\n')
	if *out == "" {
		os.Stdout.Write(enc)
	} else if err := os.WriteFile(*out, enc, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "write report:", err)
		return 1
	}

	if *diff != "" {
		regressions, err := compareAgainst(*diff, report, *tolerance)
		if err != nil {
			fmt.Fprintln(os.Stderr, "maficbench:", err)
			return 1
		}
		if regressions > 0 {
			fmt.Fprintf(os.Stderr, "maficbench: %d benchmark(s) regressed beyond %.0f%% vs %s\n",
				regressions, *tolerance*100, *diff)
			return 1
		}
		fmt.Fprintf(os.Stderr, "maficbench: no regressions beyond %.0f%% vs %s\n", *tolerance*100, *diff)
	}
	return 0
}
