package main

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"os"
	"os/exec"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"mafic/internal/serve"
)

// TestMain doubles as the server process for the kill -9 smoke test: when
// re-executed with MAFICSERVE_SMOKE_CHILD set, the test binary runs the real
// maficserve main loop instead of the test suite.
func TestMain(m *testing.M) {
	if os.Getenv("MAFICSERVE_SMOKE_CHILD") == "1" {
		if err := run(strings.Fields(os.Getenv("MAFICSERVE_SMOKE_ARGS"))); err != nil {
			fmt.Fprintln(os.Stderr, "maficserve child:", err)
			os.Exit(1)
		}
		os.Exit(0)
	}
	os.Exit(m.Run())
}

// TestServeKillNineRecovery is the service-mode crash-recovery acceptance
// test: start the server, submit a long job, kill -9 the whole process
// mid-run, restart it over the same store, and require (a) the job resumes
// from a snapshot and completes, and (b) its result.json is bit-identical
// to an uninterrupted run of the same spec on the same server.
func TestServeKillNineRecovery(t *testing.T) {
	if testing.Short() {
		t.Skip("smoke test re-execs the test binary; skipped in -short")
	}
	store := t.TempDir()
	// checkpoint-every is simulated time: a 20-simulated-second job at
	// 10ms intervals writes ~2000 fsync'd snapshots, keeping the process
	// busy long enough for the kill to land mid-run.
	args := fmt.Sprintf("-addr 127.0.0.1:0 -store %s -checkpoint-every 10ms -keep 4 -workers 1", store)
	spec := `{"scenario":"table2","quick":true,"durationMs":20000}`

	child := startChild(t, args)
	base := waitAddr(t, store)

	var submitted serve.JobInfo
	postJSON(t, base+"/jobs", spec, http.StatusAccepted, &submitted)
	if submitted.ID != 1 {
		t.Fatalf("first job got ID %d", submitted.ID)
	}

	// Let the job make real progress, then kill the process without any
	// chance to clean up.
	deadline := time.Now().Add(2 * time.Minute)
	for {
		if time.Now().After(deadline) {
			t.Fatal("job never accumulated snapshots")
		}
		var info serve.JobInfo
		getJSON(t, base+"/jobs/1", &info)
		if info.State == serve.StateCompleted {
			t.Fatal("job finished before the kill; widen the window (longer durationMs)")
		}
		if info.State == serve.StateRunning && info.Snapshots >= 3 {
			break
		}
		time.Sleep(20 * time.Millisecond)
	}
	if err := child.Process.Kill(); err != nil { // SIGKILL: no handlers, no drain
		t.Fatalf("kill -9: %v", err)
	}
	child.Wait()
	if err := os.Remove(filepath.Join(store, "addr")); err != nil {
		t.Fatalf("remove stale addr file: %v", err)
	}

	// A fresh process over the same store must resume and finish the job.
	child2 := startChild(t, args)
	base = waitAddr(t, store)
	final := waitCompleted(t, base, 1)
	if final.ResumedFromMs == nil || *final.ResumedFromMs <= 0 {
		t.Error("job did not resume from a snapshot after the crash")
	}
	crashed := getBytes(t, base+"/jobs/1/result")

	// The same spec run uninterrupted on the same server must produce the
	// same bytes.
	var ref serve.JobInfo
	postJSON(t, base+"/jobs", spec, http.StatusAccepted, &ref)
	waitCompleted(t, base, ref.ID)
	uninterrupted := getBytes(t, base+fmt.Sprintf("/jobs/%d/result", ref.ID))

	if !bytes.Equal(crashed, uninterrupted) {
		t.Errorf("crash-recovered result differs from uninterrupted run:\n--- recovered ---\n%s\n--- reference ---\n%s",
			crashed, uninterrupted)
	}

	// Drain over HTTP and require a clean exit.
	postJSON(t, base+"/drain", "", http.StatusAccepted, nil)
	done := make(chan error, 1)
	go func() { done <- child2.Wait() }()
	select {
	case err := <-done:
		if err != nil {
			t.Errorf("drained server exited uncleanly: %v", err)
		}
	case <-time.After(2 * time.Minute):
		t.Error("drained server never exited")
	}
}

func startChild(t *testing.T, args string) *exec.Cmd {
	t.Helper()
	cmd := exec.Command(os.Args[0])
	cmd.Env = append(os.Environ(),
		"MAFICSERVE_SMOKE_CHILD=1",
		"MAFICSERVE_SMOKE_ARGS="+args,
	)
	cmd.Stdout = os.Stderr
	cmd.Stderr = os.Stderr
	if err := cmd.Start(); err != nil {
		t.Fatalf("start server child: %v", err)
	}
	t.Cleanup(func() {
		if cmd.ProcessState == nil {
			cmd.Process.Kill()
			cmd.Wait()
		}
	})
	return cmd
}

// waitAddr polls the store's addr file, written once the child is listening.
func waitAddr(t *testing.T, store string) string {
	t.Helper()
	deadline := time.Now().Add(time.Minute)
	for time.Now().Before(deadline) {
		data, err := os.ReadFile(filepath.Join(store, "addr"))
		if err == nil && len(bytes.TrimSpace(data)) > 0 {
			return "http://" + string(bytes.TrimSpace(data))
		}
		time.Sleep(10 * time.Millisecond)
	}
	t.Fatal("server never published its address")
	return ""
}

func waitCompleted(t *testing.T, base string, id uint64) serve.JobInfo {
	t.Helper()
	deadline := time.Now().Add(5 * time.Minute)
	for time.Now().Before(deadline) {
		var info serve.JobInfo
		getJSON(t, fmt.Sprintf("%s/jobs/%d", base, id), &info)
		switch info.State {
		case serve.StateCompleted:
			return info
		case serve.StateFailed, serve.StateCanceled:
			t.Fatalf("job %d reached %s (error %q)", id, info.State, info.Error)
		}
		time.Sleep(50 * time.Millisecond)
	}
	t.Fatalf("job %d never completed", id)
	return serve.JobInfo{}
}

func getJSON(t *testing.T, url string, v any) {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		t.Fatalf("GET %s: status %d: %s", url, resp.StatusCode, body)
	}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatalf("GET %s: decode: %v", url, err)
	}
}

func getBytes(t *testing.T, url string) []byte {
	t.Helper()
	resp, err := http.Get(url)
	if err != nil {
		t.Fatalf("GET %s: %v", url, err)
	}
	defer resp.Body.Close()
	data, err := io.ReadAll(resp.Body)
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("GET %s: status %d, err %v", url, resp.StatusCode, err)
	}
	return data
}

func postJSON(t *testing.T, url, body string, wantStatus int, v any) {
	t.Helper()
	resp, err := http.Post(url, "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatalf("POST %s: %v", url, err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != wantStatus {
		data, _ := io.ReadAll(resp.Body)
		t.Fatalf("POST %s: status %d, want %d: %s", url, resp.StatusCode, wantStatus, data)
	}
	if v != nil {
		if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
			t.Fatalf("POST %s: decode: %v", url, err)
		}
	}
}
