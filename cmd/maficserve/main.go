// Command maficserve runs the crash-tolerant simulation service: an HTTP
// server that accepts scenario submissions, runs them on a supervised job
// queue, and auto-checkpoints every running job into a rotated on-disk
// snapshot store so a crash — up to and including kill -9 — loses at most
// one checkpoint interval of simulated time. On restart it resumes every
// interrupted job from its newest valid snapshot and produces results
// bit-identical to an uninterrupted run.
//
// Usage:
//
//	maficserve -addr 127.0.0.1:8080 -store ./maficserve-data
//
// Submit and inspect jobs over HTTP:
//
//	curl -X POST localhost:8080/jobs -d '{"scenario":"table2","quick":true}'
//	curl localhost:8080/jobs/1
//	curl localhost:8080/jobs/1/result
//	curl -X POST localhost:8080/drain
//
// SIGTERM (or POST /drain) drains: every in-flight job saves a final
// snapshot and the process exits cleanly; the next process picks the jobs
// back up.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net"
	"net/http"
	"os"
	"os/signal"
	"path/filepath"
	"syscall"
	"time"

	"mafic/internal/checkpoint"
	"mafic/internal/serve"
	"mafic/internal/sim"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "maficserve:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("maficserve", flag.ContinueOnError)
	var (
		addr      = fs.String("addr", "127.0.0.1:8080", "listen address (use :0 for an ephemeral port; see the store's addr file)")
		store     = fs.String("store", "maficserve-data", "on-disk root for job manifests, snapshots and results")
		queueCap  = fs.Int("queue-cap", 16, "queued-job bound; submissions beyond it are shed with 503")
		workers   = fs.Int("workers", 2, "concurrent job runners")
		ckptEvery = fs.Duration("checkpoint-every", 100*time.Millisecond, "simulated-time interval between automatic snapshots of each running job")
		keep      = fs.Int("keep", 3, "snapshots kept per job (older ones rotate out)")
		timeout   = fs.Duration("job-timeout", 0, "wall-clock budget per job attempt; 0 disables")
		retries   = fs.Int("retries", 2, "max retries after a transient job failure")
		backoff   = fs.Duration("retry-backoff", 250*time.Millisecond, "first retry delay; doubles per retry")
		drainWait = fs.Duration("drain-timeout", 30*time.Second, "how long to wait for in-flight jobs to snapshot on shutdown")
	)
	if err := fs.Parse(args); err != nil {
		return err
	}
	logger := log.New(os.Stderr, "maficserve: ", log.LstdFlags|log.Lmicroseconds)

	sv, err := serve.New(serve.Config{
		Dir:             *store,
		QueueCap:        *queueCap,
		Workers:         *workers,
		CheckpointEvery: sim.FromDuration(*ckptEvery),
		Keep:            *keep,
		JobTimeout:      *timeout,
		MaxRetries:      *retries,
		RetryBackoff:    *backoff,
		Log:             logger,
	})
	if err != nil {
		return err
	}
	sv.Start()

	ln, err := net.Listen("tcp", *addr)
	if err != nil {
		return err
	}
	// Publish the bound address (meaningful with -addr :0) where clients
	// and the smoke harness can find it.
	if err := checkpoint.WriteFileAtomic(filepath.Join(*store, "addr"), []byte(ln.Addr().String()+"\n"), 0o644); err != nil {
		return fmt.Errorf("write addr file: %w", err)
	}
	httpSrv := &http.Server{Handler: sv.Handler()}
	serveErr := make(chan error, 1)
	go func() { serveErr <- httpSrv.Serve(ln) }()
	logger.Printf("listening on %s, store %s", ln.Addr(), *store)

	sigCh := make(chan os.Signal, 1)
	signal.Notify(sigCh, os.Interrupt, syscall.SIGTERM)
	select {
	case sig := <-sigCh:
		logger.Printf("%v: draining", sig)
	case <-sv.DrainRequested():
		logger.Printf("drain requested over HTTP")
	case err := <-serveErr:
		return fmt.Errorf("http server: %w", err)
	}

	drainCtx, cancel := context.WithTimeout(context.Background(), *drainWait)
	defer cancel()
	if err := sv.Shutdown(drainCtx); err != nil {
		// Jobs that missed the window stay marked running on disk; the
		// next process resumes them, so an overlong drain is not fatal.
		logger.Printf("shutdown: %v", err)
	}
	httpCtx, cancelHTTP := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancelHTTP()
	if err := httpSrv.Shutdown(httpCtx); err != nil {
		logger.Printf("http shutdown: %v", err)
	}
	logger.Printf("drained; exiting")
	return nil
}
