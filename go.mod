module mafic

go 1.24
