GO ?= go

.PHONY: all build test vet check golden bench bench-baseline bench-diff bench-smoke search search-baseline search-smoke chaos-smoke crash-smoke serve-smoke profile

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# check is the full pre-merge gate: static analysis, a clean build of every
# package (examples included, so they cannot rot), and the whole test suite —
# golden-run scenario regressions and fuzz seed corpora included — under the
# race detector. The explicit -timeout covers the experiment package, whose
# catalog-wide equivalence suites re-run every registered scenario several
# ways and outgrew go test's default 10m budget under the race detector.
check:
	$(GO) vet ./...
	$(GO) build ./...
	$(GO) test -race -timeout 30m ./...
	$(GO) run ./cmd/maficsearch -quick
	$(MAKE) chaos-smoke
	$(MAKE) crash-smoke
	$(MAKE) serve-smoke

# golden re-pins the scenario regression fixtures after an intentional
# behaviour change. Review the diff before committing it.
golden:
	$(GO) test ./internal/experiment -run TestGoldenScenarios -update

# bench measures the current engine (ns/op, B/op, allocs/op per figure
# benchmark) and writes BENCH_current.json; diff it against the tracked
# BENCH_baseline.json to see the performance trajectory.
bench:
	$(GO) run ./cmd/maficbench -out BENCH_current.json

# bench-baseline deliberately re-records the tracked baseline. Run it in the
# PR that changes engine performance so the next PR measures against it.
bench-baseline:
	$(GO) run ./cmd/maficbench -out BENCH_baseline.json

# bench-diff is the performance regression gate: it re-measures every figure
# benchmark (median-of-3 process-CPU-time samples, immune to host CPU-steal),
# prints a comparison table against the tracked baseline, and exits non-zero
# on regression. allocs/op and B/op carry the strict 10% gate — they are
# exactly reproducible, so any excursion is a real code change. The ns/op
# tolerance is 25% to absorb shared-host noise; the tracked baseline's ns
# rows are CPU-time recordings since the checkpoint PR's re-record, so both
# sides of the diff now measure the same clock.
bench-diff:
	$(GO) run ./cmd/maficbench -out BENCH_current.json -diff BENCH_baseline.json -tolerance 0.25

# bench-smoke is the quick-mode regression gate CI runs on a schedule: only
# the headline benchmarks, with a looser ns/op tolerance to absorb
# shared-runner noise (allocs/op and B/op stay on the strict gate). A failure
# here means a >25% wall-clock or >10% allocation regression slipped past
# review.
bench-smoke:
	$(GO) run ./cmd/maficbench -benchmarks table2,stress-1k,stress-5k,stress-50k -diff BENCH_baseline.json -tolerance 0.25

# search runs the full adversary-search grid (maficbench for robustness) and
# writes ROBUST_current.json; diff it against the tracked ROBUST_baseline.json
# to see how the worst-case accuracy per defence config moved.
search:
	$(GO) run ./cmd/maficsearch -out ROBUST_current.json

# search-baseline re-records the tracked robustness baseline. Run it in the
# PR that intentionally changes defence behaviour, and review the diff.
search-baseline:
	$(GO) run ./cmd/maficsearch -out ROBUST_baseline.json

# search-smoke is the tiny quick-mode grid `make check` runs: six scaled-down
# runs proving the harness end-to-end in well under a second.
search-smoke:
	$(GO) run ./cmd/maficsearch -quick

# chaos-smoke re-runs the chaos catalog — link flaps, a router crash window
# and the lossy control plane — in quick mode under the race detector, against
# the pinned golden fixtures. A failure means churn handling regressed or a
# fault schedule stopped biting.
chaos-smoke:
	$(GO) test -race -count=1 ./internal/experiment \
		-run 'TestGoldenScenarios/(flap-core|partition-heal|lossy-control)|TestChaosScenariosRun'

# crash-smoke is the kill-and-resume gate: every catalog scenario (chaos
# entries included) is snapshotted mid-run and resumed under the race
# detector, and the resumed result must be bit-identical to the
# uninterrupted run — mid-fault-window snapshots too. A failure means live
# state stopped round-tripping through the snapshot format.
crash-smoke:
	$(GO) test -race -count=1 ./internal/experiment \
		-run 'TestKillAndResumeEquivalence|TestCheckpointUnderActiveFaults|TestRestoreThenReuseInvariance'

# serve-smoke is the service-mode crash-recovery gate: it starts a real
# maficserve process, submits a long checkpointing job, kill -9s the process
# mid-run, restarts it over the same store, and requires the resumed job's
# result.json to be bit-identical to an uninterrupted run — all under the
# race detector. A failure means the service can lose or corrupt work across
# a crash.
serve-smoke:
	$(GO) test -race -count=1 -timeout 10m ./cmd/maficserve -run TestServeKillNineRecovery -v

# profile runs the headline benchmark under the CPU and allocation profilers
# so the next hotspot hunt starts from `go tool pprof cpu.pprof` instead of
# ad-hoc wiring. Override PROFILE_BENCH to profile a different benchmark.
PROFILE_BENCH ?= table2
profile:
	$(GO) run ./cmd/maficbench -benchmarks $(PROFILE_BENCH) -cpuprofile cpu.pprof -memprofile mem.pprof
	@echo "wrote cpu.pprof and mem.pprof (alloc profile); inspect with: go tool pprof -top cpu.pprof"
