GO ?= go

.PHONY: all build test vet bench bench-baseline

all: build test

build:
	$(GO) build ./...

test:
	$(GO) test ./...

vet:
	$(GO) vet ./...

# bench measures the current engine (ns/op, B/op, allocs/op per figure
# benchmark) and writes BENCH_current.json; diff it against the tracked
# BENCH_baseline.json to see the performance trajectory.
bench:
	$(GO) run ./cmd/maficbench -out BENCH_current.json

# bench-baseline deliberately re-records the tracked baseline. Run it in the
# PR that changes engine performance so the next PR measures against it.
bench-baseline:
	$(GO) run ./cmd/maficbench -out BENCH_baseline.json
