// Package baseline implements the non-adaptive comparator MAFIC is measured
// against: the proportionate packet dropping used by the authors' earlier
// set-union counting pushback work (paper Section II), in which every packet
// destined to the victim — legitimate or malicious — is dropped with the same
// probability at the attack-transit routers.
package baseline

import (
	"errors"
	"fmt"

	"mafic/internal/netsim"
	"mafic/internal/sim"
)

// FilterName is the name the dropper registers under in drop accounting.
const FilterName = "proportional"

// ErrConfig is returned for invalid configurations.
var ErrConfig = errors.New("baseline: invalid configuration")

// Stats aggregates the dropper's counters.
type Stats struct {
	// Examined counts victim-bound data packets inspected while active.
	Examined uint64
	// Dropped counts inspected packets discarded.
	Dropped uint64
	// Forwarded counts inspected packets passed on.
	Forwarded uint64
}

// Dropper drops every victim-bound data packet with a fixed probability,
// regardless of the flow it belongs to. It implements netsim.Filter.
type Dropper struct {
	probability float64
	router      *netsim.Router
	rng         *sim.RNG

	active   bool
	victimIP netsim.IP
	stats    Stats
	observer func(pkt *netsim.Packet, now sim.Time)
}

var _ netsim.Filter = (*Dropper)(nil)

// NewDropper creates a proportional dropper bound to a router.
func NewDropper(probability float64, router *netsim.Router, rng *sim.RNG) (*Dropper, error) {
	if probability < 0 || probability > 1 {
		return nil, fmt.Errorf("%w: probability %v", ErrConfig, probability)
	}
	if router == nil {
		return nil, fmt.Errorf("%w: nil router", ErrConfig)
	}
	if rng == nil {
		rng = router.Network().RNG().Fork()
	}
	return &Dropper{probability: probability, router: router, rng: rng}, nil
}

// Name implements netsim.Filter.
func (p *Dropper) Name() string { return FilterName }

// Stats returns a snapshot of the dropper's counters.
func (p *Dropper) Stats() Stats { return p.stats }

// Active reports whether the dropper is currently discarding packets.
func (p *Dropper) Active() bool { return p.active }

// Probability returns the configured drop probability.
func (p *Dropper) Probability() float64 { return p.probability }

// Activate starts dropping packets destined to victim.
func (p *Dropper) Activate(victim netsim.IP) {
	p.active = true
	p.victimIP = victim
}

// Deactivate stops dropping.
func (p *Dropper) Deactivate() { p.active = false }

// SetDropObserver installs a callback invoked on every drop (metrics).
func (p *Dropper) SetDropObserver(fn func(pkt *netsim.Packet, now sim.Time)) { p.observer = fn }

// Handle implements netsim.Filter.
func (p *Dropper) Handle(pkt *netsim.Packet, now sim.Time, _ *netsim.Router) netsim.Action {
	if !p.active || pkt.Kind != netsim.KindData || pkt.Label.DstIP != p.victimIP {
		return netsim.ActionForward
	}
	// Like the MAFIC defender, the proportional dropper polices only the
	// traffic entering the domain at this router.
	if pkt.Hops > 0 {
		return netsim.ActionForward
	}
	p.stats.Examined++
	if p.rng.Bool(p.probability) {
		p.stats.Dropped++
		if p.observer != nil {
			p.observer(pkt, now)
		}
		return netsim.ActionDrop
	}
	p.stats.Forwarded++
	return netsim.ActionForward
}
