package baseline

import "mafic/internal/netsim"

// DropperState is the dropper's dynamic state. The probability, router
// binding, RNG fork and observer wiring are rebuild-covered (the RNG stream
// position travels with the scheduler's RNG registry).
type DropperState struct {
	Active   bool
	VictimIP netsim.IP
	Stats    Stats
}

// CheckpointState captures the dropper's dynamic state.
func (p *Dropper) CheckpointState() DropperState {
	return DropperState{Active: p.active, VictimIP: p.victimIP, Stats: p.stats}
}

// RestoreState overlays captured dynamic state onto a rebuilt dropper.
func (p *Dropper) RestoreState(st DropperState) {
	p.active = st.Active
	p.victimIP = st.VictimIP
	p.stats = st.Stats
}

// CheckpointTypes lists this package's structs that carry snapshotted state.
var CheckpointTypes = []any{
	Dropper{},
	Stats{},
}
