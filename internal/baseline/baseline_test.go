package baseline

import (
	"errors"
	"math"
	"testing"

	"mafic/internal/netsim"
	"mafic/internal/sim"
)

func newEnv(t *testing.T) (*netsim.Network, *netsim.Router, netsim.IP) {
	t.Helper()
	sched := sim.NewScheduler()
	net := netsim.New(sched, sim.NewRNG(1))
	r := net.AddRouter("r")
	victim := net.AddHost("victim", netsim.IP(0x0a000001))
	victim.AttachTo(r.ID())
	if err := net.ConnectDuplex(victim.ID(), r.ID(), netsim.LinkConfig{BandwidthBps: 1e9, Delay: sim.Millisecond}); err != nil {
		t.Fatal(err)
	}
	return net, r, victim.PrimaryIP()
}

func packet(net *netsim.Network, dst netsim.IP, kind netsim.PacketKind) *netsim.Packet {
	return &netsim.Packet{
		ID:    net.NextPacketID(),
		Label: netsim.FlowLabel{SrcIP: netsim.IP(0xc0a80001), DstIP: dst, SrcPort: 1, DstPort: 80},
		Kind:  kind, Proto: netsim.ProtoTCP, Size: 500,
	}
}

func TestNewDropperValidation(t *testing.T) {
	net, r, _ := newEnv(t)
	_ = net
	if _, err := NewDropper(-0.1, r, nil); !errors.Is(err, ErrConfig) {
		t.Fatalf("want ErrConfig for negative probability, got %v", err)
	}
	if _, err := NewDropper(1.1, r, nil); !errors.Is(err, ErrConfig) {
		t.Fatalf("want ErrConfig for probability > 1, got %v", err)
	}
	if _, err := NewDropper(0.5, nil, nil); !errors.Is(err, ErrConfig) {
		t.Fatalf("want ErrConfig for nil router, got %v", err)
	}
	d, err := NewDropper(0.5, r, nil)
	if err != nil {
		t.Fatalf("NewDropper: %v", err)
	}
	if d.Name() != FilterName || d.Probability() != 0.5 {
		t.Fatal("accessors wrong")
	}
}

func TestInactiveForwardsEverything(t *testing.T) {
	net, r, victim := newEnv(t)
	d, err := NewDropper(1.0, r, sim.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	if d.Handle(packet(net, victim, netsim.KindData), 0, r) != netsim.ActionForward {
		t.Fatal("inactive dropper must forward")
	}
	if d.Active() {
		t.Fatal("should be inactive")
	}
}

func TestDropsAtConfiguredRate(t *testing.T) {
	net, r, victim := newEnv(t)
	d, err := NewDropper(0.7, r, sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	d.Activate(victim)
	const n = 20000
	for i := 0; i < n; i++ {
		d.Handle(packet(net, victim, netsim.KindData), 0, r)
	}
	st := d.Stats()
	if st.Examined != n || st.Dropped+st.Forwarded != n {
		t.Fatalf("counter mismatch: %+v", st)
	}
	ratio := float64(st.Dropped) / n
	if math.Abs(ratio-0.7) > 0.02 {
		t.Fatalf("drop ratio %.3f, want ~0.7", ratio)
	}
}

func TestOnlyVictimBoundDataAffected(t *testing.T) {
	net, r, victim := newEnv(t)
	d, err := NewDropper(1.0, r, sim.NewRNG(4))
	if err != nil {
		t.Fatal(err)
	}
	d.Activate(victim)
	if d.Handle(packet(net, netsim.IP(0x0b000001), netsim.KindData), 0, r) != netsim.ActionForward {
		t.Fatal("other destinations must be untouched")
	}
	if d.Handle(packet(net, victim, netsim.KindAck), 0, r) != netsim.ActionForward {
		t.Fatal("non-data packets must be untouched")
	}
	if d.Handle(packet(net, victim, netsim.KindData), 0, r) != netsim.ActionDrop {
		t.Fatal("victim-bound data must be dropped with p=1")
	}
	d.Deactivate()
	if d.Handle(packet(net, victim, netsim.KindData), 0, r) != netsim.ActionDrop && !d.Active() {
		// After deactivation nothing is dropped.
		return
	}
	t.Fatal("deactivated dropper must forward")
}
