package topology

import (
	"fmt"

	"mafic/internal/netsim"
)

// Arena holds the reusable backing arrays behind Domain construction: the
// domain's role slices (routers, ingress, hosts by kind), the dense
// host-to-ingress table, and the scratch space of the shortest-path route
// computation. Parameter sweeps rebuild the topology at every point; building
// through one arena per worker lets those rebuilds reuse storage instead of
// re-growing it from nothing each time.
//
// Ownership mirrors the netsim packet pool: a Domain built from an arena
// remains valid only until the next Build call on the same arena, which
// recycles the backing arrays. Builds that must outlive each other use
// separate arenas (or the package-level Build, which makes a fresh one). An
// Arena is not safe for concurrent use; give each goroutine its own.
type Arena struct {
	routers      []*netsim.Router
	ingress      []*netsim.Router
	victimHomes  []*netsim.Router
	extraVictims []*netsim.Host
	clients      []*netsim.Host
	zombies      []*netsim.Host
	bystanders   []*netsim.Host
	ingressOf    []*netsim.Router

	route routeScratch
	lazy  lazyRouter
	names nameCache
}

// nameCache memoises the generated node names ("r17", "client3", ...) so
// rebuilds through the same arena hand out the same strings instead of
// reformatting one per node per build.
type nameCache struct {
	routers    []string
	clients    []string
	zombies    []string
	bystanders []string
	victims    []string
}

// name returns prefix+i, generating and caching any missing entries.
func name(list *[]string, prefix string, i int) string {
	for len(*list) <= i {
		*list = append(*list, fmt.Sprintf("%s%d", prefix, len(*list)))
	}
	return (*list)[i]
}

// NewArena returns an empty arena ready for Build.
func NewArena() *Arena { return &Arena{} }

// recycle hands the arena's current backing arrays to a new Domain, truncated
// to zero length, and keeps the headers so the next recycle sees any growth.
func (a *Arena) recycle(d *Domain) {
	d.Routers = a.routers[:0]
	d.Ingress = a.ingress[:0]
	d.VictimHomes = a.victimHomes[:0]
	d.ExtraVictims = a.extraVictims[:0]
	d.Clients = a.clients[:0]
	d.Zombies = a.zombies[:0]
	d.Bystanders = a.bystanders[:0]
	d.ingressOf = a.ingressOf[:0]
}

// adopt records the (possibly re-grown) backing arrays after a successful
// build so the next Build reuses them at their new capacity.
func (a *Arena) adopt(d *Domain) {
	a.routers = d.Routers
	a.ingress = d.Ingress
	a.victimHomes = d.VictimHomes
	a.extraVictims = d.ExtraVictims
	a.clients = d.Clients
	a.zombies = d.Zombies
	a.bystanders = d.Bystanders
	a.ingressOf = d.ingressOf
}

// routeScratch is the slice-backed working set of the shortest-path route
// computation: a CSR adjacency snapshot of the network plus the BFS parent
// table and queue, all indexed directly by NodeID. It replaces the former
// map[NodeID][]NodeID adjacency and per-destination map[NodeID]NodeID parent
// maps, which dominated topology-build allocations.
type routeScratch struct {
	// offsets/targets form the CSR adjacency: node id's neighbours are
	// targets[offsets[id]:offsets[id+1]], ascending.
	offsets []int32
	targets []netsim.NodeID
	// parents[id] is id's BFS parent (the next hop from id toward the
	// current root); NoNode marks unvisited nodes.
	parents []netsim.NodeID
	queue   []netsim.NodeID
	// routerList collects the network's routers once, in id order, so the
	// per-destination install loop does not consult the router map.
	routerList []*netsim.Router
}

// snapshot rebuilds the CSR adjacency and router list from the network.
// Node IDs are dense (allocation order), so the tables are exactly sized.
func (rs *routeScratch) snapshot(net *netsim.Network) int {
	n := net.NodeCount()
	if cap(rs.offsets) < n+1 {
		rs.offsets = make([]int32, n+1)
	}
	rs.offsets = rs.offsets[:n+1]
	rs.targets = rs.targets[:0]
	rs.routerList = rs.routerList[:0]
	for id := 0; id < n; id++ {
		rs.offsets[id] = int32(len(rs.targets))
		rs.targets = net.AppendNeighbors(rs.targets, netsim.NodeID(id))
		if r := net.Router(netsim.NodeID(id)); r != nil {
			rs.routerList = append(rs.routerList, r)
		}
	}
	rs.offsets[n] = int32(len(rs.targets))
	if cap(rs.parents) < n {
		rs.parents = make([]netsim.NodeID, n)
	}
	rs.parents = rs.parents[:n]
	return n
}

// bfs fills parents with each reached node's parent on the shortest path
// back toward root. The root's own entry is set to itself (visited marker);
// unreached nodes keep NoNode.
func (rs *routeScratch) bfs(root netsim.NodeID) {
	parents := rs.parents
	for i := range parents {
		parents[i] = netsim.NoNode
	}
	queue := rs.queue[:0]
	queue = append(queue, root)
	parents[root] = root
	for qi := 0; qi < len(queue); qi++ {
		cur := queue[qi]
		for _, nb := range rs.targets[rs.offsets[cur]:rs.offsets[cur+1]] {
			if parents[nb] != netsim.NoNode {
				continue
			}
			parents[nb] = cur
			queue = append(queue, nb)
		}
	}
	rs.queue = queue
}

// install computes hop-count shortest paths over the full node graph and
// installs next-hop entries on every router for every destination, identical
// in outcome to the historical map-based implementation.
func (rs *routeScratch) install(net *netsim.Network) error {
	n := rs.snapshot(net)
	for dest := 0; dest < n; dest++ {
		destID := netsim.NodeID(dest)
		rs.bfs(destID)
		for _, r := range rs.routerList {
			id := r.ID()
			if id == destID {
				continue
			}
			if parent := rs.parents[id]; parent != netsim.NoNode {
				r.SetRoute(destID, parent)
			}
		}
	}
	return nil
}

// lazyRouter is the arena's netsim.RouteResolver: the demand-driven half of
// the two-level routing design. bind snapshots the finished domain into the
// arena's CSR scratch; NextHopColumn then materializes one column per
// requested destination by a single reverse BFS, copied into a column carved
// from the arena's recycled column pool. Columns handed to a network remain
// valid for that network's lifetime; the next bind (the next sweep point)
// reclaims their storage, exactly the ownership rule every other arena-backed
// slice follows.
type lazyRouter struct {
	rs *routeScratch
	// net and seenVersion track which graph state the CSR snapshot
	// reflects; a mutation after Build (TopoVersion moved) forces a
	// re-snapshot before the next column is computed.
	net         *netsim.Network
	seenVersion uint64
	// width is the snapshot's node count: every column this build hands
	// out has exactly this length.
	width int
	// handed are the columns given to the current network; colFree are
	// columns reclaimed from earlier builds, reused when wide enough.
	handed  [][]netsim.NodeID
	colFree [][]netsim.NodeID
	// carved counts column allocations ever made through this arena; the
	// reuse tests pin that rebuilds do not grow it.
	carved int
}

var _ netsim.RouteResolver = (*lazyRouter)(nil)

// bind points the resolver at a freshly built network: reclaim the previous
// build's columns, snapshot the CSR adjacency, and record the column width.
func (lz *lazyRouter) bind(rs *routeScratch, net *netsim.Network) {
	lz.rs = rs
	lz.net = net
	lz.colFree = append(lz.colFree, lz.handed...)
	for i := range lz.handed {
		lz.handed[i] = nil
	}
	lz.handed = lz.handed[:0]
	lz.width = rs.snapshot(net)
	lz.seenVersion = net.TopoVersion()
}

// NextHopColumn implements netsim.RouteResolver: one reverse BFS rooted at
// dest fills the scratch parent table, which is the column (parent of node X
// on the shortest path tree rooted at dest == X's next hop toward dest, with
// the historical BFS tie-breaking).
func (lz *lazyRouter) NextHopColumn(dest netsim.NodeID) []netsim.NodeID {
	// A graph mutation after Build invalidated the network's memo; it also
	// staled this snapshot, so refresh before computing. Untouched on the
	// normal build-then-run lifecycle.
	if v := lz.net.TopoVersion(); v != lz.seenVersion {
		lz.width = lz.rs.snapshot(lz.net)
		lz.seenVersion = v
	}
	lz.rs.bfs(dest)
	col := lz.takeColumn()
	copy(col, lz.rs.parents)
	lz.handed = append(lz.handed, col)
	return col
}

// takeColumn pops a recycled column wide enough for this build, allocating
// only when none fits.
func (lz *lazyRouter) takeColumn() []netsim.NodeID {
	for i := len(lz.colFree) - 1; i >= 0; i-- {
		if cap(lz.colFree[i]) < lz.width {
			continue
		}
		col := lz.colFree[i][:lz.width]
		last := len(lz.colFree) - 1
		lz.colFree[i] = lz.colFree[last]
		lz.colFree[last] = nil
		lz.colFree = lz.colFree[:last]
		return col
	}
	lz.carved++
	return make([]netsim.NodeID, lz.width)
}
