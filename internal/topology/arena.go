package topology

import (
	"fmt"

	"mafic/internal/netsim"
)

// Arena holds the reusable backing arrays behind Domain construction: the
// domain's role slices (routers, ingress, hosts by kind), the dense
// host-to-ingress table, and the scratch space of the shortest-path route
// computation. Parameter sweeps rebuild the topology at every point; building
// through one arena per worker lets those rebuilds reuse storage instead of
// re-growing it from nothing each time.
//
// Ownership mirrors the netsim packet pool: a Domain built from an arena
// remains valid only until the next Build call on the same arena, which
// recycles the backing arrays. Builds that must outlive each other use
// separate arenas (or the package-level Build, which makes a fresh one). An
// Arena is not safe for concurrent use; give each goroutine its own.
type Arena struct {
	routers      []*netsim.Router
	ingress      []*netsim.Router
	victimHomes  []*netsim.Router
	extraVictims []*netsim.Host
	clients      []*netsim.Host
	zombies      []*netsim.Host
	bystanders   []*netsim.Host
	ingressOf    []*netsim.Router

	route routeScratch
	names nameCache
}

// nameCache memoises the generated node names ("r17", "client3", ...) so
// rebuilds through the same arena hand out the same strings instead of
// reformatting one per node per build.
type nameCache struct {
	routers    []string
	clients    []string
	zombies    []string
	bystanders []string
	victims    []string
}

// name returns prefix+i, generating and caching any missing entries.
func name(list *[]string, prefix string, i int) string {
	for len(*list) <= i {
		*list = append(*list, fmt.Sprintf("%s%d", prefix, len(*list)))
	}
	return (*list)[i]
}

// NewArena returns an empty arena ready for Build.
func NewArena() *Arena { return &Arena{} }

// recycle hands the arena's current backing arrays to a new Domain, truncated
// to zero length, and keeps the headers so the next recycle sees any growth.
func (a *Arena) recycle(d *Domain) {
	d.Routers = a.routers[:0]
	d.Ingress = a.ingress[:0]
	d.VictimHomes = a.victimHomes[:0]
	d.ExtraVictims = a.extraVictims[:0]
	d.Clients = a.clients[:0]
	d.Zombies = a.zombies[:0]
	d.Bystanders = a.bystanders[:0]
	d.ingressOf = a.ingressOf[:0]
}

// adopt records the (possibly re-grown) backing arrays after a successful
// build so the next Build reuses them at their new capacity.
func (a *Arena) adopt(d *Domain) {
	a.routers = d.Routers
	a.ingress = d.Ingress
	a.victimHomes = d.VictimHomes
	a.extraVictims = d.ExtraVictims
	a.clients = d.Clients
	a.zombies = d.Zombies
	a.bystanders = d.Bystanders
	a.ingressOf = d.ingressOf
}

// routeScratch is the slice-backed working set of the shortest-path route
// computation: a CSR adjacency snapshot of the network plus the BFS parent
// table and queue, all indexed directly by NodeID. It replaces the former
// map[NodeID][]NodeID adjacency and per-destination map[NodeID]NodeID parent
// maps, which dominated topology-build allocations.
type routeScratch struct {
	// offsets/targets form the CSR adjacency: node id's neighbours are
	// targets[offsets[id]:offsets[id+1]], ascending.
	offsets []int32
	targets []netsim.NodeID
	// parents[id] is id's BFS parent (the next hop from id toward the
	// current root); NoNode marks unvisited nodes.
	parents []netsim.NodeID
	queue   []netsim.NodeID
	// routerList collects the network's routers once, in id order, so the
	// per-destination install loop does not consult the router map.
	routerList []*netsim.Router
}

// snapshot rebuilds the CSR adjacency and router list from the network.
// Node IDs are dense (allocation order), so the tables are exactly sized.
func (rs *routeScratch) snapshot(net *netsim.Network) int {
	n := net.NodeCount()
	if cap(rs.offsets) < n+1 {
		rs.offsets = make([]int32, n+1)
	}
	rs.offsets = rs.offsets[:n+1]
	rs.targets = rs.targets[:0]
	rs.routerList = rs.routerList[:0]
	for id := 0; id < n; id++ {
		rs.offsets[id] = int32(len(rs.targets))
		rs.targets = net.AppendNeighbors(rs.targets, netsim.NodeID(id))
		if r := net.Router(netsim.NodeID(id)); r != nil {
			rs.routerList = append(rs.routerList, r)
		}
	}
	rs.offsets[n] = int32(len(rs.targets))
	if cap(rs.parents) < n {
		rs.parents = make([]netsim.NodeID, n)
	}
	rs.parents = rs.parents[:n]
	return n
}

// bfs fills parents with each reached node's parent on the shortest path
// back toward root. The root's own entry is set to itself (visited marker);
// unreached nodes keep NoNode.
func (rs *routeScratch) bfs(root netsim.NodeID) {
	parents := rs.parents
	for i := range parents {
		parents[i] = netsim.NoNode
	}
	queue := rs.queue[:0]
	queue = append(queue, root)
	parents[root] = root
	for qi := 0; qi < len(queue); qi++ {
		cur := queue[qi]
		for _, nb := range rs.targets[rs.offsets[cur]:rs.offsets[cur+1]] {
			if parents[nb] != netsim.NoNode {
				continue
			}
			parents[nb] = cur
			queue = append(queue, nb)
		}
	}
	rs.queue = queue
}

// install computes hop-count shortest paths over the full node graph and
// installs next-hop entries on every router for every destination, identical
// in outcome to the historical map-based implementation.
func (rs *routeScratch) install(net *netsim.Network) error {
	n := rs.snapshot(net)
	for dest := 0; dest < n; dest++ {
		destID := netsim.NodeID(dest)
		rs.bfs(destID)
		for _, r := range rs.routerList {
			id := r.ID()
			if id == destID {
				continue
			}
			if parent := rs.parents[id]; parent != netsim.NoNode {
				r.SetRoute(destID, parent)
			}
		}
	}
	return nil
}
