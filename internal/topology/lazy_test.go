package topology

import (
	"testing"

	"mafic/internal/netsim"
	"mafic/internal/sim"
)

// lazyEagerPair builds the same configuration twice, once per routing mode,
// with identical seeds.
func lazyEagerPair(t *testing.T, cfg Config) (lazy, eager *Domain) {
	t.Helper()
	lazyCfg := cfg
	lazyCfg.Routing = RoutingLazy
	eagerCfg := cfg
	eagerCfg.Routing = RoutingEager
	lazy, err := Build(lazyCfg, sim.NewScheduler(), sim.NewRNG(7))
	if err != nil {
		t.Fatalf("lazy build: %v", err)
	}
	eager, err = Build(eagerCfg, sim.NewScheduler(), sim.NewRNG(7))
	if err != nil {
		t.Fatalf("eager build: %v", err)
	}
	return lazy, eager
}

// effectiveNextHop reproduces the router forwarding decision for a packet at
// router r addressed to node dest: direct link first, then the static table,
// then the demand-driven column lookup.
func effectiveNextHop(net *netsim.Network, r *netsim.Router, dest netsim.NodeID) netsim.NodeID {
	if net.LinkBetween(r.ID(), dest) != nil {
		return dest
	}
	if next := r.Route(dest); next != netsim.NoNode {
		return next
	}
	return net.NextHop(r.ID(), dest)
}

// TestLazyForwardingMatchesEager checks the tentpole invariant exhaustively:
// for every router and every host destination — single-homed, multi-homed
// victim, extra victims, bystanders — the demand-driven column lookup makes
// the same forwarding decision the eager all-pairs install would.
func TestLazyForwardingMatchesEager(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumRouters = 32
	cfg.ExtraVictims = 2
	cfg.MultiHomedVictim = true

	for _, style := range []Style{StyleRing, StyleTransitStub} {
		cfg := cfg
		cfg.Style = style
		lazy, eager := lazyEagerPair(t, cfg)

		n := lazy.Net.NodeCount()
		if n != eager.Net.NodeCount() {
			t.Fatalf("node counts differ: %d vs %d", n, eager.Net.NodeCount())
		}
		for _, lr := range lazy.Routers {
			er := eager.Net.Router(lr.ID())
			for dest := 0; dest < n; dest++ {
				id := netsim.NodeID(dest)
				if lazy.Net.Host(id) == nil {
					continue // routers never terminate traffic
				}
				if id == lr.ID() {
					continue
				}
				got := effectiveNextHop(lazy.Net, lr, id)
				want := effectiveNextHop(eager.Net, er, id)
				if got != want {
					t.Fatalf("style %v: router %d → dest %d: lazy next hop %d, eager %d",
						style, lr.ID(), dest, got, want)
				}
			}
		}
	}
}

// TestColumnMaterializedOncePerDestination pins the memoization contract: any
// number of lookups toward hosts behind the same router materialize exactly
// one column, and a second destination router costs exactly one more.
func TestColumnMaterializedOncePerDestination(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumRouters = 24
	d, err := Build(cfg, sim.NewScheduler(), sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	net := d.Net
	if net.RouteColumns() != 0 {
		t.Fatalf("fresh build already has %d columns", net.RouteColumns())
	}

	victim := d.Victim.ID()
	for _, r := range d.Routers {
		if r == d.LastHop {
			continue
		}
		if next := net.NextHop(r.ID(), victim); next == netsim.NoNode {
			t.Fatalf("router %d cannot reach the victim", r.ID())
		}
	}
	if got := net.RouteColumns(); got != 1 {
		t.Fatalf("victim lookups from every router materialized %d columns, want 1", got)
	}
	// The victim's attachment router itself resolves through the same
	// column (aliased, not re-materialized).
	net.NextHop(d.Routers[0].ID(), d.LastHop.ID())
	if got := net.RouteColumns(); got != 1 {
		t.Fatalf("attachment-router lookup materialized a second column (%d total)", got)
	}
	// A destination behind a different router costs exactly one more.
	client := d.Clients[0]
	net.NextHop(d.LastHop.ID(), client.ID())
	if got := net.RouteColumns(); got != 2 {
		t.Fatalf("second destination made column count %d, want 2", got)
	}

	entries, bytes := net.RouteStats()
	wantEntries := 2 * net.NodeCount()
	if entries != wantEntries || bytes != int64(entries)*8 {
		t.Fatalf("RouteStats = (%d, %d), want (%d, %d)", entries, bytes, wantEntries, int64(wantEntries)*8)
	}
}

// TestColumnStorageReusedAcrossSweepPoints pins the arena half of the memo:
// rebuilding the same domain through one arena and touching the same
// destinations must not carve any new column storage.
func TestColumnStorageReusedAcrossSweepPoints(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumRouters = 24

	arena := NewArena()
	touch := func() {
		d, err := arena.Build(cfg, sim.NewScheduler(), sim.NewRNG(3))
		if err != nil {
			t.Fatal(err)
		}
		d.Net.NextHop(d.Routers[0].ID(), d.Victim.ID())
		d.Net.NextHop(d.LastHop.ID(), d.Clients[0].ID())
		if d.Net.RouteColumns() != 2 {
			t.Fatalf("expected 2 columns, got %d", d.Net.RouteColumns())
		}
	}
	touch()
	carved := arena.lazy.carved
	if carved == 0 {
		t.Fatal("first build carved no columns; the test is not exercising the pool")
	}
	for i := 0; i < 3; i++ {
		touch()
	}
	if arena.lazy.carved != carved {
		t.Fatalf("rebuilds carved %d new columns (total %d, first build %d)",
			arena.lazy.carved-carved, arena.lazy.carved, carved)
	}
}

// TestLazyRouterRefreshesAfterPostBuildMutation verifies the resolver does
// not serve a stale CSR snapshot: mutating the graph after Build (new router,
// new links) both invalidates the memoized columns and forces the next
// materialization to see the new topology.
func TestLazyRouterRefreshesAfterPostBuildMutation(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumRouters = 24
	cfg.ExtraChords = 0 // plain ring: path lengths are predictable
	d, err := Build(cfg, sim.NewScheduler(), sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	net := d.Net
	far := d.Routers[11] // halfway around the ring from the last hop (23)
	if next := net.NextHop(far.ID(), d.Victim.ID()); next == netsim.NoNode {
		t.Fatal("victim unreachable before mutation")
	}

	// Shortcut from the far router straight to the last hop, plus a brand
	// new router beyond the snapshot's width.
	extra := net.AddRouter("post-build")
	link := cfg.CoreLink
	if err := net.ConnectDuplex(far.ID(), d.LastHop.ID(), link); err != nil {
		t.Fatal(err)
	}
	if err := net.ConnectDuplex(extra.ID(), far.ID(), link); err != nil {
		t.Fatal(err)
	}
	if net.RouteColumns() != 0 {
		t.Fatalf("mutation left %d stale columns", net.RouteColumns())
	}

	if next := net.NextHop(far.ID(), d.Victim.ID()); next != d.LastHop.ID() {
		t.Fatalf("far router ignores the new shortcut: next hop %d, want %d", next, d.LastHop.ID())
	}
	// The post-snapshot router must be routable both as origin and as
	// destination (this used to index past the stale parent table).
	if next := net.NextHop(extra.ID(), d.Victim.ID()); next != far.ID() {
		t.Fatalf("new router cannot reach the victim: next hop %d, want %d", next, far.ID())
	}
	if next := net.NextHop(d.LastHop.ID(), extra.ID()); next != far.ID() {
		t.Fatalf("no route toward the new router: next hop %d, want %d", next, far.ID())
	}
}

// TestMultiHomedHostGetsDedicatedColumn verifies level-1 aggregation treats a
// dual-homed victim as its own destination rather than folding it onto either
// home, which would bias the tie-break between its two access links.
func TestMultiHomedHostGetsDedicatedColumn(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumRouters = 24
	cfg.MultiHomedVictim = true
	d, err := Build(cfg, sim.NewScheduler(), sim.NewRNG(5))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.VictimHomes) != 2 {
		t.Fatalf("victim has %d homes, want 2", len(d.VictimHomes))
	}
	net := d.Net
	// Route toward one of the homes first, then toward the victim: the
	// victim must not alias the home's column.
	net.NextHop(d.Routers[2].ID(), d.VictimHomes[0].ID())
	if net.RouteColumns() != 1 {
		t.Fatalf("home lookup made %d columns", net.RouteColumns())
	}
	net.NextHop(d.Routers[2].ID(), d.Victim.ID())
	if net.RouteColumns() != 2 {
		t.Fatalf("multi-homed victim shared a home's column (%d columns total)", net.RouteColumns())
	}
}
