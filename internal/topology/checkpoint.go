package topology

// This package carries no snapshotted state of its own: a Domain and every
// arena behind it are rebuilt deterministically on restore, and the lazy
// route resolver re-snapshots itself whenever the network's topology version
// moves. The types are still registered with the checkpoint coverage guard so
// a future stateful field cannot ship without an explicit exemption.

// CheckpointTypes lists this package's structs the coverage guard watches.
var CheckpointTypes = []any{
	Domain{},
	Arena{},
	lazyRouter{},
	routeScratch{},
	nameCache{},
}
