package topology

import (
	"runtime"
	"testing"

	"mafic/internal/netsim"
	"mafic/internal/sim"
)

// TestArenaReuseMatchesFreshBuild dirties an arena with one domain shape and
// then rebuilds a different shape through it, asserting the result is
// structurally identical to a from-scratch build with the same seed: reused
// backing arrays must never leak state between sweep points.
func TestArenaReuseMatchesFreshBuild(t *testing.T) {
	// Eager routing so the route-table comparison below compares real
	// installed entries; lazy rebuild reuse is pinned by the tests in
	// lazy_test.go.
	big := DefaultConfig()
	big.NumRouters = 48
	big.ExtraVictims = 3
	big.MultiHomedVictim = true
	big.Routing = RoutingEager

	small := DefaultConfig()
	small.NumRouters = 14
	small.ExtraChords = 3
	small.BystanderHosts = 5
	small.Routing = RoutingEager

	for _, style := range []Style{StyleRing, StyleTransitStub} {
		arena := NewArena()
		bigCfg := big
		bigCfg.Style = style
		if _, err := arena.Build(bigCfg, sim.NewScheduler(), sim.NewRNG(9)); err != nil {
			t.Fatalf("dirtying build (%v): %v", style, err)
		}

		smallCfg := small
		smallCfg.Style = style
		got, err := arena.Build(smallCfg, sim.NewScheduler(), sim.NewRNG(5))
		if err != nil {
			t.Fatalf("arena build (%v): %v", style, err)
		}
		want, err := Build(smallCfg, sim.NewScheduler(), sim.NewRNG(5))
		if err != nil {
			t.Fatalf("fresh build (%v): %v", style, err)
		}

		if len(got.Routers) != len(want.Routers) {
			t.Fatalf("router count %d != %d", len(got.Routers), len(want.Routers))
		}
		if len(got.Ingress) != len(want.Ingress) {
			t.Fatalf("ingress count %d != %d", len(got.Ingress), len(want.Ingress))
		}
		for i := range got.Ingress {
			if got.Ingress[i].ID() != want.Ingress[i].ID() {
				t.Fatalf("ingress[%d] = %d != %d", i, got.Ingress[i].ID(), want.Ingress[i].ID())
			}
		}
		if got.LastHop.ID() != want.LastHop.ID() {
			t.Fatalf("last hop %d != %d", got.LastHop.ID(), want.LastHop.ID())
		}
		if len(got.Clients) != len(want.Clients) || len(got.Zombies) != len(want.Zombies) ||
			len(got.Bystanders) != len(want.Bystanders) {
			t.Fatalf("host populations differ: %d/%d/%d vs %d/%d/%d",
				len(got.Clients), len(got.Zombies), len(got.Bystanders),
				len(want.Clients), len(want.Zombies), len(want.Bystanders))
		}
		for i, c := range got.Clients {
			gi, wi := got.IngressOf(c), want.IngressOf(want.Clients[i])
			if (gi == nil) != (wi == nil) || (gi != nil && gi.ID() != wi.ID()) {
				t.Fatalf("client %d ingress mismatch", i)
			}
		}
		// Every route on every router must match the fresh build.
		nodes := got.Net.NodeCount()
		if nodes != want.Net.NodeCount() {
			t.Fatalf("node count %d != %d", nodes, want.Net.NodeCount())
		}
		for _, r := range got.Routers {
			ref := want.Net.Router(r.ID())
			for dest := 0; dest < nodes; dest++ {
				if g, w := r.Route(netsim.NodeID(dest)), ref.Route(netsim.NodeID(dest)); g != w {
					t.Fatalf("router %d route to %d: %d != %d (style %v)", r.ID(), dest, g, w, style)
				}
			}
		}
	}
}

// TestArenaBuildRouteScratchReused pins the allocation win: the second build
// through an arena must allocate substantially less than the first.
func TestArenaBuildRouteScratchReused(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumRouters = 24

	arena := NewArena()
	measure := func() uint64 {
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		if _, err := arena.Build(cfg, sim.NewScheduler(), sim.NewRNG(1)); err != nil {
			t.Fatal(err)
		}
		runtime.ReadMemStats(&after)
		return after.Mallocs - before.Mallocs
	}
	first := measure()
	second := measure()
	if second >= first {
		t.Fatalf("arena reuse saved nothing: first build %d mallocs, second %d", first, second)
	}
}
