// Package topology builds the simulated AS-level domain the MAFIC evaluation
// runs on: a connected core of routers, a designated last-hop router in front
// of the victim server, a set of ingress (edge) routers where attack and
// legitimate traffic enters the domain, and stub hosts attached to the edges.
//
// The generated domains mirror Figure 1 of the paper: legitimate clients and
// zombies inject traffic at ingress routers, everything converges on the
// last-hop router, and the victim sits behind it.
//
// # Two-level demand-driven routing
//
// The package is also the domain's routing authority. Routing state is
// two-level and produced on demand (Config.Routing = RoutingLazy, the
// default):
//
//   - Level 1 — host aggregation. Forwarding state is indexed by destination
//     *router*, never by host: a single-homed host is reached by routing to
//     its attachment router, which delivers locally over the direct access
//     link. This cuts the width of the routing state from nodes × nodes to
//     routers-worth of columns. A multi-homed host (e.g. the dual-homed
//     victim) keeps a dedicated column so the shortest-path tie-break among
//     its homes is decided exactly as a per-node BFS would.
//   - Level 2 — lazy columns. No routes exist after Build. When a
//     destination first appears in live traffic, the network asks the
//     arena's resolver for that destination's next-hop column: one reverse
//     BFS over the CSR adjacency snapshot, O(nodes + links), memoized for
//     the rest of the run. A MAFIC workload only ever routes toward the
//     victims, the edge sources (ACKs) and the spoof pool (probes), so a
//     5000-router domain materializes a few dozen columns instead of the
//     ~5000 × 5000 entries the eager install wrote.
//
// Invariants the equivalence tests pin:
//
//   - Paths are bit-identical to RoutingEager (the historical all-pairs
//     install, kept as the oracle): the same BFS with the same ascending
//     neighbour tie-breaking computes both, and host aggregation is exact
//     because a single-homed host's shortest-path tree minus the host itself
//     IS its attachment router's tree.
//   - A column is materialized at most once per destination router per run,
//     and hosts alias their router's column rather than copying it.
//   - Column storage is recycled across sweep points: rebuilding through the
//     same Arena reclaims every column the previous build handed out.
//
// Arena-built domains (and their routing columns) follow the arena ownership
// rule: valid until the next Build on the same arena.
package topology

import (
	"errors"
	"fmt"

	"mafic/internal/netsim"
	"mafic/internal/sim"
)

// Errors returned by Build.
var (
	// ErrTooFewRouters is returned when the requested domain has fewer
	// than two routers (a last-hop router plus at least one ingress).
	ErrTooFewRouters = errors.New("topology: domain needs at least 2 routers")
	// ErrNoIngress is returned when the configuration yields no ingress
	// routers.
	ErrNoIngress = errors.New("topology: domain needs at least 1 ingress router")
	// ErrConfig is returned by Validate for inconsistent configurations.
	ErrConfig = errors.New("topology: invalid config")
)

// Style selects the router-level graph shape of the generated domain.
type Style int

// Domain styles.
const (
	// StyleRing is the default intra-AS approximation: a ring of core
	// routers with random chord shortcuts.
	StyleRing Style = iota
	// StyleTransitStub is a two-level transit-stub graph: a small fully
	// meshed transit core with chains of stub routers hanging off it.
	// Ingress routers sit on the stub chains and the victim hangs behind
	// the deepest stub router, so attack paths have to cross the transit
	// core the way inter-domain traffic does.
	StyleTransitStub
)

// String implements fmt.Stringer.
func (s Style) String() string {
	switch s {
	case StyleRing:
		return "ring"
	case StyleTransitStub:
		return "transit-stub"
	default:
		return "unknown"
	}
}

// RoutingMode selects how the domain's next-hop state is produced.
type RoutingMode int

// Routing modes.
const (
	// RoutingLazy (the default) installs no routes at build time. The
	// network materializes one next-hop column per active destination
	// router on demand — a single reverse BFS over the arena's CSR
	// snapshot, memoized for the run and aggregated over hosts (see the
	// package comment). Forwarding paths are bit-identical to RoutingEager.
	RoutingLazy RoutingMode = iota
	// RoutingEager precomputes next hops for every destination on every
	// router at build time: O(routers × nodes) entries. It is the
	// historical behaviour, kept as the equivalence oracle for tests and
	// for callers that genuinely route to every destination.
	RoutingEager
)

// String implements fmt.Stringer.
func (m RoutingMode) String() string {
	switch m {
	case RoutingLazy:
		return "lazy"
	case RoutingEager:
		return "eager"
	default:
		return "unknown"
	}
}

// Config describes the domain to generate. The zero value is not usable;
// start from DefaultConfig.
type Config struct {
	// Style selects the router graph generator (ring by default).
	Style Style
	// NumRouters is the total number of routers in the domain (paper
	// parameter N, default 40).
	NumRouters int
	// NumIngress is the number of edge routers where traffic enters. If
	// zero, a quarter of the routers (at least one) become ingress.
	NumIngress int
	// ExtraChords adds this many random shortcut links to the core ring
	// so paths are not all forced through the same routers. It is ignored
	// by StyleTransitStub.
	ExtraChords int
	// TransitRouters is the transit-core size for StyleTransitStub; zero
	// derives NumRouters/6 (minimum 3). Ignored by StyleRing.
	TransitRouters int
	// Routing selects demand-driven (lazy, the default) or eager all-pairs
	// next-hop computation. Paths are identical either way; eager trades
	// O(routers × nodes) build time and memory for never running a BFS
	// after the build.
	Routing RoutingMode
	// Adjacency selects the network's link-table representation:
	// netsim.AdjacencySparse (the default, O(nodes+links)) or
	// netsim.AdjacencyDense (the historical O(nodes²) rows, kept as the
	// equivalence oracle). Simulation results are bit-identical either way.
	Adjacency netsim.AdjacencyMode

	// CoreLink, AccessLink and VictimLink configure the three classes of
	// links in the domain.
	CoreLink   netsim.LinkConfig
	AccessLink netsim.LinkConfig
	VictimLink netsim.LinkConfig

	// ClientsPerIngress is how many legitimate client hosts attach to
	// each ingress router.
	ClientsPerIngress int
	// ZombiesPerIngress is how many attack hosts attach to each ingress
	// router.
	ZombiesPerIngress int
	// BystanderHosts is the number of stub hosts whose addresses form
	// the pool of "legitimate but spoofed" source addresses. They accept
	// and ignore any packet sent to them (so probes to spoofed sources
	// are silently swallowed, as in the real Internet).
	BystanderHosts int

	// ExtraVictims attaches this many additional victim hosts, each
	// behind its own non-ingress router, for simultaneous multi-victim
	// flood scenarios. The primary victim keeps its role; extra victims
	// only absorb the part of the attack aimed at them.
	ExtraVictims int
	// MultiHomedVictim gives the primary victim a second access link to
	// another (non-ingress) router, so shortest-path routing splits its
	// inbound traffic across two last-hop routers and dilutes the
	// per-router load signal the detector watches.
	MultiHomedVictim bool
}

// Validate reports configuration problems before an expensive build.
func (c Config) Validate() error {
	if c.NumRouters < 2 {
		return fmt.Errorf("%w: need at least 2 routers, got %d", ErrConfig, c.NumRouters)
	}
	if c.Style != StyleRing && c.Style != StyleTransitStub {
		return fmt.Errorf("%w: unknown style %d", ErrConfig, c.Style)
	}
	if c.NumIngress < 0 || c.NumIngress > c.NumRouters-1 {
		return fmt.Errorf("%w: ingress count %d with %d routers", ErrConfig, c.NumIngress, c.NumRouters)
	}
	if c.ExtraChords < 0 {
		return fmt.Errorf("%w: negative chord count %d", ErrConfig, c.ExtraChords)
	}
	if c.TransitRouters < 0 || (c.Style == StyleTransitStub && c.TransitRouters > c.NumRouters-1) {
		return fmt.Errorf("%w: transit core %d with %d routers", ErrConfig, c.TransitRouters, c.NumRouters)
	}
	if c.Routing != RoutingLazy && c.Routing != RoutingEager {
		return fmt.Errorf("%w: unknown routing mode %d", ErrConfig, c.Routing)
	}
	if c.Adjacency != netsim.AdjacencySparse && c.Adjacency != netsim.AdjacencyDense {
		return fmt.Errorf("%w: unknown adjacency mode %d", ErrConfig, c.Adjacency)
	}
	if c.ClientsPerIngress < 0 || c.ZombiesPerIngress < 0 || c.BystanderHosts < 0 {
		return fmt.Errorf("%w: negative host counts", ErrConfig)
	}
	for _, lc := range []struct {
		name string
		cfg  netsim.LinkConfig
	}{{"core", c.CoreLink}, {"access", c.AccessLink}, {"victim", c.VictimLink}} {
		if lc.cfg.BandwidthBps <= 0 {
			return fmt.Errorf("%w: %s link bandwidth %v", ErrConfig, lc.name, lc.cfg.BandwidthBps)
		}
		if lc.cfg.Delay < 0 {
			return fmt.Errorf("%w: %s link delay %v", ErrConfig, lc.name, lc.cfg.Delay)
		}
		if lc.cfg.QueueLen <= 0 {
			return fmt.Errorf("%w: %s link queue length %d", ErrConfig, lc.name, lc.cfg.QueueLen)
		}
	}
	// The 250 cap keeps every extra victim inside the 10.0.0.0/24 block
	// the builder allocates, clear of the primary victim's 10.0.0.1.
	if c.ExtraVictims < 0 || c.ExtraVictims > 250 {
		return fmt.Errorf("%w: extra victim count %d outside [0,250]", ErrConfig, c.ExtraVictims)
	}
	if c.MultiHomedVictim && c.NumRouters < 3 {
		return fmt.Errorf("%w: multi-homed victim needs at least 3 routers", ErrConfig)
	}
	return nil
}

// DefaultConfig returns the domain configuration used throughout the paper's
// evaluation (Table II: N = 40 routers) with link parameters chosen so that
// edge-to-victim RTTs land in the tens of milliseconds.
func DefaultConfig() Config {
	return Config{
		NumRouters:  40,
		NumIngress:  0, // derived: NumRouters/4
		ExtraChords: 10,
		CoreLink: netsim.LinkConfig{
			BandwidthBps: 1e9,
			Delay:        2 * sim.Millisecond,
			QueueLen:     1024,
		},
		AccessLink: netsim.LinkConfig{
			BandwidthBps: 50e6,
			Delay:        1 * sim.Millisecond,
			QueueLen:     256,
		},
		VictimLink: netsim.LinkConfig{
			BandwidthBps: 200e6,
			Delay:        1 * sim.Millisecond,
			QueueLen:     512,
		},
		ClientsPerIngress: 4,
		ZombiesPerIngress: 2,
		BystanderHosts:    16,
	}
}

// Domain is a fully wired simulated network plus the structural roles the
// defence components need to know about.
type Domain struct {
	// Net is the underlying packet-level network.
	Net *netsim.Network

	// Routers is every router in the domain.
	Routers []*netsim.Router
	// Ingress is the subset of routers where external traffic enters;
	// these are the candidate attack-transit routers (ATRs).
	Ingress []*netsim.Router
	// LastHop is the router directly in front of the victim.
	LastHop *netsim.Router

	// Victim is the host under attack.
	Victim *netsim.Host
	// VictimHomes are the routers the primary victim attaches to: LastHop
	// first, plus a second home for multi-homed configurations.
	VictimHomes []*netsim.Router
	// ExtraVictims are additional victim hosts for multi-victim flood
	// scenarios, each behind its own router.
	ExtraVictims []*netsim.Host
	// Clients are the legitimate traffic sources, grouped per ingress.
	Clients []*netsim.Host
	// Zombies are the attack traffic sources, grouped per ingress.
	Zombies []*netsim.Host
	// Bystanders are stub hosts whose addresses attackers spoof.
	Bystanders []*netsim.Host

	// ingressOf records, densely indexed by host NodeID, which ingress
	// router each edge source (client or zombie) enters through; nil for
	// every other node.
	ingressOf []*netsim.Router
}

// IngressOf reports the ingress router a source host (client or zombie)
// attaches to, or nil if the host is not an edge source.
func (d *Domain) IngressOf(host *netsim.Host) *netsim.Router {
	id := host.ID()
	if id < 0 || int(id) >= len(d.ingressOf) {
		return nil
	}
	return d.ingressOf[id]
}

// setIngressOf records host → ingress in the dense table.
func (d *Domain) setIngressOf(host *netsim.Host, ing *netsim.Router) {
	id := int(host.ID())
	for id >= len(d.ingressOf) {
		d.ingressOf = append(d.ingressOf, nil)
	}
	d.ingressOf[id] = ing
}

// SpoofPool returns the addresses of the bystander hosts: valid, routable
// addresses that do not belong to the attackers, exactly the "legitimate"
// spoofed addresses described in Section III-A of the paper.
func (d *Domain) SpoofPool() []netsim.IP {
	pool := make([]netsim.IP, 0, len(d.Bystanders))
	for _, b := range d.Bystanders {
		pool = append(pool, b.PrimaryIP())
	}
	return pool
}

// VictimIP returns the victim server's address.
func (d *Domain) VictimIP() netsim.IP { return d.Victim.PrimaryIP() }

// Build generates a domain according to cfg, wiring links and installing
// shortest-path routes on every router. The supplied RNG drives every random
// choice so domains are reproducible. Each call uses a fresh arena; sweeps
// that rebuild topologies repeatedly should reuse one via Arena.Build.
func Build(cfg Config, sched *sim.Scheduler, rng *sim.RNG) (*Domain, error) {
	return NewArena().Build(cfg, sched, rng)
}

// Build generates a domain like the package-level Build, reusing the arena's
// backing arrays. The returned Domain is valid until the arena's next Build;
// see the Arena documentation for the ownership rules.
func (a *Arena) Build(cfg Config, sched *sim.Scheduler, rng *sim.RNG) (*Domain, error) {
	if cfg.NumRouters < 2 {
		return nil, ErrTooFewRouters
	}
	// Direct Build callers get the same invariants as the scenario path;
	// the NumRouters check above keeps its historical sentinel error.
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	numIngress := cfg.NumIngress
	if numIngress <= 0 {
		numIngress = cfg.NumRouters / 4
		if numIngress < 1 {
			numIngress = 1
		}
	}
	if numIngress > cfg.NumRouters-1 {
		numIngress = cfg.NumRouters - 1
	}
	if numIngress < 1 {
		return nil, ErrNoIngress
	}

	net := netsim.New(sched, rng)
	// The adjacency representation must be picked before any link exists;
	// sparse is the netsim default, so only the dense oracle needs a call.
	if cfg.Adjacency != netsim.AdjacencySparse {
		if err := net.SetAdjacencyMode(cfg.Adjacency); err != nil {
			return nil, err
		}
	}
	// The final node population is known up front; reserving it lets the
	// network allocate its per-node tables (dispatch, adjacency spine,
	// route columns) exactly once.
	net.Reserve(cfg.nodeBudget(numIngress))
	d := &Domain{Net: net}
	a.recycle(d)

	for i := 0; i < cfg.NumRouters; i++ {
		d.Routers = append(d.Routers, net.AddRouter(name(&a.names.routers, "r", i)))
	}

	// Wire the router graph and pick the ingress set per style.
	var err error
	switch cfg.Style {
	case StyleTransitStub:
		err = buildTransitStubCore(cfg, net, d, numIngress)
	default:
		err = buildRingCore(cfg, net, d, rng, numIngress)
	}
	if err != nil {
		return nil, err
	}
	if len(d.Ingress) == 0 {
		return nil, ErrNoIngress
	}

	// Victim server behind the last-hop router.
	d.Victim = net.AddHost("victim", ipFrom(10, 0, 0, 1))
	d.Victim.AttachTo(d.LastHop.ID())
	d.VictimHomes = append(d.VictimHomes, d.LastHop)
	if err := net.ConnectDuplex(d.Victim.ID(), d.LastHop.ID(), cfg.VictimLink); err != nil {
		return nil, fmt.Errorf("victim link: %w", err)
	}
	if cfg.MultiHomedVictim {
		second := d.pickQuietRouter(nil)
		if second == nil {
			return nil, fmt.Errorf("%w: no router available as second victim home", ErrConfig)
		}
		d.VictimHomes = append(d.VictimHomes, second)
		if err := net.ConnectDuplex(d.Victim.ID(), second.ID(), cfg.VictimLink); err != nil {
			return nil, fmt.Errorf("victim second home: %w", err)
		}
	}

	// Extra victims for multi-victim flood scenarios, each behind its own
	// router so their last-hop load shows up as a distinct hot row in the
	// traffic matrix.
	taken := make(map[netsim.NodeID]bool)
	for _, r := range d.VictimHomes {
		taken[r.ID()] = true
	}
	for k := 0; k < cfg.ExtraVictims; k++ {
		attach := d.pickQuietRouter(taken)
		if attach == nil {
			return nil, fmt.Errorf("%w: not enough routers for %d extra victims", ErrConfig, cfg.ExtraVictims)
		}
		taken[attach.ID()] = true
		h := net.AddHost(name(&a.names.victims, "victim", k+2), ipFrom(10, 0, 0, byte(2+k)))
		h.AttachTo(attach.ID())
		if err := net.ConnectDuplex(h.ID(), attach.ID(), cfg.VictimLink); err != nil {
			return nil, fmt.Errorf("extra victim link: %w", err)
		}
		// Swallow traffic by default; workload builders install a real
		// server when the scenario targets this victim.
		h.SetDefaultHandler(func(*netsim.Packet, sim.Time) {})
		d.ExtraVictims = append(d.ExtraVictims, h)
	}

	// Source hosts behind each ingress router.
	clientIdx, zombieIdx := 0, 0
	for gi, ing := range d.Ingress {
		for c := 0; c < cfg.ClientsPerIngress; c++ {
			h := net.AddHost(name(&a.names.clients, "client", clientIdx), ipFrom(192, 168, byte(gi), byte(10+c)))
			clientIdx++
			h.AttachTo(ing.ID())
			if err := net.ConnectDuplex(h.ID(), ing.ID(), cfg.AccessLink); err != nil {
				return nil, fmt.Errorf("client link: %w", err)
			}
			d.Clients = append(d.Clients, h)
			d.setIngressOf(h, ing)
		}
		for z := 0; z < cfg.ZombiesPerIngress; z++ {
			h := net.AddHost(name(&a.names.zombies, "zombie", zombieIdx), ipFrom(172, 16, byte(gi), byte(10+z)))
			zombieIdx++
			h.AttachTo(ing.ID())
			if err := net.ConnectDuplex(h.ID(), ing.ID(), cfg.AccessLink); err != nil {
				return nil, fmt.Errorf("zombie link: %w", err)
			}
			d.Zombies = append(d.Zombies, h)
			d.setIngressOf(h, ing)
		}
	}

	// Bystander stub hosts scattered across non-ingress routers; their
	// addresses form the spoof pool.
	for b := 0; b < cfg.BystanderHosts; b++ {
		attach := d.Routers[rng.Intn(cfg.NumRouters)]
		h := net.AddHost(name(&a.names.bystanders, "bystander", b), ipFrom(203, 0, byte(b/250), byte(b%250+1)))
		h.AttachTo(attach.ID())
		if err := net.ConnectDuplex(h.ID(), attach.ID(), cfg.AccessLink); err != nil {
			return nil, fmt.Errorf("bystander link: %w", err)
		}
		// Bystanders silently swallow whatever reaches them.
		h.SetDefaultHandler(func(*netsim.Packet, sim.Time) {})
		d.Bystanders = append(d.Bystanders, h)
	}

	// Routing: eager installs the historical all-pairs tables; lazy (the
	// default) just snapshots the finished graph and registers the arena's
	// resolver — columns materialize when traffic first needs them.
	if cfg.Routing == RoutingEager {
		if err := a.route.install(net); err != nil {
			return nil, err
		}
	} else {
		a.lazy.bind(&a.route, net)
		net.SetRouteResolver(&a.lazy)
	}
	a.adopt(d)
	return d, nil
}

// nodeBudget is the total node count (routers plus hosts) a build with the
// given effective ingress count creates, used to pre-size the network's
// dense per-node tables.
func (c Config) nodeBudget(numIngress int) int {
	return c.NumRouters + // routers
		1 + c.ExtraVictims + // victim hosts
		numIngress*(c.ClientsPerIngress+c.ZombiesPerIngress) + // edge sources
		c.BystanderHosts
}

// buildRingCore wires the default intra-AS approximation: a ring of core
// routers plus random chords, with the last router as the last hop and the
// ingress routers spread evenly around the rest of the ring.
func buildRingCore(cfg Config, net *netsim.Network, d *Domain, rng *sim.RNG, numIngress int) error {
	for i := 0; i < cfg.NumRouters; i++ {
		a := d.Routers[i]
		b := d.Routers[(i+1)%cfg.NumRouters]
		if cfg.NumRouters == 2 && i == 1 {
			break // avoid adding the 1->0 ring link twice for tiny domains
		}
		if err := net.ConnectDuplex(a.ID(), b.ID(), cfg.CoreLink); err != nil {
			return fmt.Errorf("core ring: %w", err)
		}
	}
	for c := 0; c < cfg.ExtraChords && cfg.NumRouters > 3; c++ {
		i := rng.Intn(cfg.NumRouters)
		j := rng.Intn(cfg.NumRouters)
		if i == j || net.LinkBetween(d.Routers[i].ID(), d.Routers[j].ID()) != nil {
			continue
		}
		if err := net.ConnectDuplex(d.Routers[i].ID(), d.Routers[j].ID(), cfg.CoreLink); err != nil {
			return fmt.Errorf("core chord: %w", err)
		}
	}

	d.LastHop = d.Routers[cfg.NumRouters-1]
	stride := (cfg.NumRouters - 1) / numIngress
	if stride < 1 {
		stride = 1
	}
	for k := 0; k < numIngress; k++ {
		idx := (k * stride) % (cfg.NumRouters - 1)
		r := d.Routers[idx]
		if containsRouter(d.Ingress, r) {
			continue
		}
		d.Ingress = append(d.Ingress, r)
	}
	return nil
}

// pickQuietRouter returns the first router that is neither an ingress nor the
// last hop nor already taken, falling back to any non-last-hop router. The
// deterministic scan keeps domain generation reproducible.
func (d *Domain) pickQuietRouter(taken map[netsim.NodeID]bool) *netsim.Router {
	for pass := 0; pass < 2; pass++ {
		for _, r := range d.Routers {
			if r == d.LastHop || taken[r.ID()] {
				continue
			}
			if pass == 0 && containsRouter(d.Ingress, r) {
				continue
			}
			return r
		}
	}
	return nil
}

func containsRouter(rs []*netsim.Router, r *netsim.Router) bool {
	for _, x := range rs {
		if x == r {
			return true
		}
	}
	return false
}

// ipFrom assembles an address from dotted-quad components.
func ipFrom(a, b, c, d byte) netsim.IP {
	return netsim.IP(uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d))
}

// InstallShortestPathRoutes computes hop-count shortest paths over the full
// node graph (routers and hosts) and installs next-hop entries on every
// router for every possible destination node. The computation runs entirely
// on slice-indexed tables (CSR adjacency, dense BFS parents); arena builds
// reuse that scratch across sweep points via routeScratch.install.
func InstallShortestPathRoutes(net *netsim.Network) error {
	var rs routeScratch
	return rs.install(net)
}

// PathLength returns the number of hops between two nodes, or -1 if they are
// disconnected. It is used by tests and by RTT estimation.
func PathLength(net *netsim.Network, from, to netsim.NodeID) int {
	if from == to {
		return 0
	}
	var rs routeScratch
	n := rs.snapshot(net)
	if int(from) >= n || int(to) >= n || from < 0 || to < 0 {
		return -1
	}
	rs.bfs(to)
	hops := 0
	cur := from
	for cur != to {
		next := rs.parents[cur]
		if next == netsim.NoNode || next == cur {
			return -1
		}
		cur = next
		hops++
		if hops > n+1 {
			return -1
		}
	}
	return hops
}
