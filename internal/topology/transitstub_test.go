package topology

import (
	"errors"
	"testing"

	"mafic/internal/netsim"
	"mafic/internal/sim"
)

func TestBuildTransitStubDomain(t *testing.T) {
	cfg := DefaultTransitStubConfig()
	d, err := Build(cfg, sim.NewScheduler(), sim.NewRNG(3))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if got := len(d.Routers); got != cfg.NumRouters {
		t.Fatalf("built %d routers, want %d", got, cfg.NumRouters)
	}
	if len(d.Ingress) == 0 {
		t.Fatal("no ingress routers")
	}
	for _, ing := range d.Ingress {
		if ing == d.LastHop {
			t.Fatal("last-hop router must not be an ingress")
		}
		if hops := PathLength(d.Net, ing.ID(), d.Victim.ID()); hops <= 0 {
			t.Fatalf("ingress %s cannot reach the victim", ing.Name())
		}
	}
	// Transit routers carry no direct hosts, so the transit core is pure
	// forwarding fabric: every source host attaches to a stub router.
	for _, h := range append(append([]*netsim.Host{}, d.Clients...), d.Zombies...) {
		if ing := d.IngressOf(h); ing == nil {
			t.Fatalf("host %s has no ingress", h.Name())
		}
	}
}

func TestBuildTransitStubTiny(t *testing.T) {
	cfg := DefaultTransitStubConfig()
	cfg.NumRouters = 5
	cfg.TransitRouters = 4
	d, err := Build(cfg, sim.NewScheduler(), sim.NewRNG(1))
	if err != nil {
		t.Fatalf("Build tiny transit-stub: %v", err)
	}
	if hops := PathLength(d.Net, d.Ingress[0].ID(), d.Victim.ID()); hops <= 0 {
		t.Fatal("ingress cannot reach victim in tiny transit-stub domain")
	}
}

func TestBuildMultiHomedVictim(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumRouters = 16
	cfg.ExtraChords = 4
	cfg.MultiHomedVictim = true
	d, err := Build(cfg, sim.NewScheduler(), sim.NewRNG(5))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if len(d.VictimHomes) != 2 {
		t.Fatalf("victim homes = %d, want 2", len(d.VictimHomes))
	}
	if d.VictimHomes[0] != d.LastHop {
		t.Fatal("first victim home must be the last-hop router")
	}
	if d.VictimHomes[0] == d.VictimHomes[1] {
		t.Fatal("victim homes must be distinct routers")
	}
	for _, home := range d.VictimHomes {
		if d.Net.LinkBetween(d.Victim.ID(), home.ID()) == nil {
			t.Fatalf("victim has no link to home %s", home.Name())
		}
	}
}

func TestBuildExtraVictims(t *testing.T) {
	cfg := DefaultConfig()
	cfg.NumRouters = 16
	cfg.ExtraChords = 4
	cfg.ExtraVictims = 2
	d, err := Build(cfg, sim.NewScheduler(), sim.NewRNG(5))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	if len(d.ExtraVictims) != 2 {
		t.Fatalf("extra victims = %d, want 2", len(d.ExtraVictims))
	}
	seen := map[netsim.IP]bool{d.Victim.PrimaryIP(): true}
	routers := map[netsim.NodeID]bool{d.LastHop.ID(): true}
	for _, v := range d.ExtraVictims {
		if seen[v.PrimaryIP()] {
			t.Fatalf("duplicate victim address %v", v.PrimaryIP())
		}
		seen[v.PrimaryIP()] = true
		if routers[v.AccessRouter()] {
			t.Fatalf("extra victim %s shares a last-hop router", v.Name())
		}
		routers[v.AccessRouter()] = true
		if hops := PathLength(d.Net, d.Ingress[0].ID(), v.ID()); hops <= 0 {
			t.Fatalf("ingress cannot reach extra victim %s", v.Name())
		}
	}
}

func TestBuildRejectsExtraVictimOverflow(t *testing.T) {
	// Build must enforce the address-block cap itself: direct callers do
	// not necessarily go through Config.Validate.
	cfg := DefaultConfig()
	cfg.ExtraVictims = 251
	if _, err := Build(cfg, sim.NewScheduler(), sim.NewRNG(1)); !errors.Is(err, ErrConfig) {
		t.Fatalf("want ErrConfig, got %v", err)
	}
}

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if err := DefaultTransitStubConfig().Validate(); err != nil {
		t.Fatalf("default transit-stub config invalid: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"too few routers", func(c *Config) { c.NumRouters = 1 }},
		{"unknown style", func(c *Config) { c.Style = Style(9) }},
		{"negative ingress", func(c *Config) { c.NumIngress = -1 }},
		{"too many ingress", func(c *Config) { c.NumIngress = c.NumRouters }},
		{"negative chords", func(c *Config) { c.ExtraChords = -1 }},
		{"negative transit", func(c *Config) { c.TransitRouters = -1 }},
		{"transit too large", func(c *Config) { c.Style = StyleTransitStub; c.TransitRouters = c.NumRouters }},
		{"negative clients", func(c *Config) { c.ClientsPerIngress = -1 }},
		{"zero core bandwidth", func(c *Config) { c.CoreLink.BandwidthBps = 0 }},
		{"negative access delay", func(c *Config) { c.AccessLink.Delay = -sim.Millisecond }},
		{"zero victim queue", func(c *Config) { c.VictimLink.QueueLen = 0 }},
		{"negative extra victims", func(c *Config) { c.ExtraVictims = -1 }},
		{"extra victims overflow address block", func(c *Config) { c.ExtraVictims = 251 }},
		{"multi-homed too small", func(c *Config) { c.NumRouters = 2; c.MultiHomedVictim = true }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); !errors.Is(err, ErrConfig) {
				t.Fatalf("want ErrConfig, got %v", err)
			}
		})
	}
}

func TestStyleString(t *testing.T) {
	if StyleRing.String() != "ring" || StyleTransitStub.String() != "transit-stub" || Style(7).String() != "unknown" {
		t.Fatal("Style.String mismatch")
	}
}
