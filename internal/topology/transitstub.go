package topology

import (
	"fmt"

	"mafic/internal/netsim"
)

// buildTransitStubCore wires a two-level transit-stub graph: the first
// TransitRouters routers form a full mesh (the transit core), and the
// remaining routers are dealt round-robin into per-transit stub chains. The
// deepest router of the last chain becomes the last hop, so victim-bound
// traffic from any other stub must cross the transit core, and the ingress
// routers are spread evenly over the other stub routers.
func buildTransitStubCore(cfg Config, net *netsim.Network, d *Domain, numIngress int) error {
	transit := cfg.TransitRouters
	if transit <= 0 {
		transit = cfg.NumRouters / 6
	}
	if transit < 3 {
		transit = 3
	}
	if transit > cfg.NumRouters-1 {
		transit = cfg.NumRouters - 1
	}

	// Full mesh over the transit core: with a handful of transit routers
	// this is a few dozen links and gives the core path diversity.
	for i := 0; i < transit; i++ {
		for j := i + 1; j < transit; j++ {
			if err := net.ConnectDuplex(d.Routers[i].ID(), d.Routers[j].ID(), cfg.CoreLink); err != nil {
				return fmt.Errorf("transit mesh: %w", err)
			}
		}
	}

	// Stub routers are dealt round-robin into chains, one chain per
	// transit router: stub s joins chain s%transit and connects either to
	// its transit router (chain head) or to the previous member of its
	// chain, giving multi-hop stub depth.
	chainTail := make([]*netsim.Router, transit)
	for s := transit; s < cfg.NumRouters; s++ {
		chain := (s - transit) % transit
		up := chainTail[chain]
		if up == nil {
			up = d.Routers[chain]
		}
		if err := net.ConnectDuplex(d.Routers[s].ID(), up.ID(), cfg.CoreLink); err != nil {
			return fmt.Errorf("stub chain: %w", err)
		}
		chainTail[chain] = d.Routers[s]
	}

	// The last stub router (deepest in its chain) fronts the victim.
	d.LastHop = d.Routers[cfg.NumRouters-1]

	// Ingress routers spread evenly over the other stub routers; tiny
	// domains with no spare stub routers fall back to transit routers.
	candidates := make([]*netsim.Router, 0, cfg.NumRouters)
	for s := transit; s < cfg.NumRouters-1; s++ {
		candidates = append(candidates, d.Routers[s])
	}
	if len(candidates) == 0 {
		for i := 0; i < transit && d.Routers[i] != d.LastHop; i++ {
			candidates = append(candidates, d.Routers[i])
		}
	}
	if numIngress > len(candidates) {
		numIngress = len(candidates)
	}
	stride := len(candidates) / numIngress
	if stride < 1 {
		stride = 1
	}
	for k := 0; k < numIngress; k++ {
		r := candidates[(k*stride)%len(candidates)]
		if containsRouter(d.Ingress, r) {
			continue
		}
		d.Ingress = append(d.Ingress, r)
	}
	return nil
}

// DefaultTransitStubConfig returns a transit-stub domain comparable in size
// to the paper's 40-router evaluation: a 5-router transit mesh with 35 stub
// routers in five chains.
func DefaultTransitStubConfig() Config {
	cfg := DefaultConfig()
	cfg.Style = StyleTransitStub
	cfg.TransitRouters = 5
	return cfg
}
