package topology

import (
	"errors"
	"testing"

	"mafic/internal/netsim"
	"mafic/internal/sim"
)

func buildDefault(t *testing.T, mutate func(*Config)) *Domain {
	t.Helper()
	cfg := DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	d, err := Build(cfg, sim.NewScheduler(), sim.NewRNG(42))
	if err != nil {
		t.Fatalf("Build: %v", err)
	}
	return d
}

func TestBuildDefaultDomain(t *testing.T) {
	d := buildDefault(t, nil)
	if len(d.Routers) != 40 {
		t.Fatalf("routers = %d, want 40", len(d.Routers))
	}
	if len(d.Ingress) == 0 {
		t.Fatal("no ingress routers")
	}
	if d.LastHop == nil || d.Victim == nil {
		t.Fatal("missing last-hop router or victim")
	}
	wantClients := len(d.Ingress) * DefaultConfig().ClientsPerIngress
	if len(d.Clients) != wantClients {
		t.Fatalf("clients = %d, want %d", len(d.Clients), wantClients)
	}
	wantZombies := len(d.Ingress) * DefaultConfig().ZombiesPerIngress
	if len(d.Zombies) != wantZombies {
		t.Fatalf("zombies = %d, want %d", len(d.Zombies), wantZombies)
	}
	if len(d.Bystanders) != DefaultConfig().BystanderHosts {
		t.Fatalf("bystanders = %d, want %d", len(d.Bystanders), DefaultConfig().BystanderHosts)
	}
	if len(d.SpoofPool()) != len(d.Bystanders) {
		t.Fatal("spoof pool size mismatch")
	}
	if d.VictimIP() != d.Victim.PrimaryIP() {
		t.Fatal("VictimIP mismatch")
	}
}

func TestBuildErrors(t *testing.T) {
	if _, err := Build(Config{NumRouters: 1}, sim.NewScheduler(), sim.NewRNG(1)); !errors.Is(err, ErrTooFewRouters) {
		t.Fatalf("want ErrTooFewRouters, got %v", err)
	}
}

func TestBuildSmallDomains(t *testing.T) {
	for _, n := range []int{2, 3, 4, 5, 8} {
		n := n
		d := buildDefault(t, func(c *Config) {
			c.NumRouters = n
			c.ExtraChords = 0
			c.ClientsPerIngress = 1
			c.ZombiesPerIngress = 1
			c.BystanderHosts = 2
		})
		if len(d.Routers) != n {
			t.Fatalf("N=%d: routers = %d", n, len(d.Routers))
		}
		if len(d.Ingress) < 1 {
			t.Fatalf("N=%d: no ingress routers", n)
		}
	}
}

func TestAllIngressReachVictim(t *testing.T) {
	d := buildDefault(t, nil)
	for _, ing := range d.Ingress {
		hops := PathLength(d.Net, ing.ID(), d.Victim.ID())
		if hops <= 0 {
			t.Fatalf("ingress %s cannot reach victim (hops=%d)", ing.Name(), hops)
		}
	}
}

func TestClientsCanReachVictimEndToEnd(t *testing.T) {
	d := buildDefault(t, func(c *Config) {
		c.NumRouters = 12
		c.ClientsPerIngress = 2
		c.ZombiesPerIngress = 1
		c.BystanderHosts = 4
	})
	delivered := 0
	d.Victim.SetDefaultHandler(func(*netsim.Packet, sim.Time) { delivered++ })
	for _, src := range append(append([]*netsim.Host(nil), d.Clients...), d.Zombies...) {
		pkt := &netsim.Packet{
			ID: d.Net.NextPacketID(),
			Label: netsim.FlowLabel{
				SrcIP: src.PrimaryIP(), DstIP: d.VictimIP(),
				SrcPort: 1234, DstPort: 80,
			},
			Kind: netsim.KindData, Proto: netsim.ProtoTCP, Size: 1000,
		}
		src.Send(pkt)
	}
	if err := d.Net.Scheduler().Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	want := len(d.Clients) + len(d.Zombies)
	if delivered != want {
		t.Fatalf("delivered %d packets, want %d", delivered, want)
	}
}

func TestVictimCanReachClientsReverse(t *testing.T) {
	d := buildDefault(t, func(c *Config) {
		c.NumRouters = 10
		c.ClientsPerIngress = 1
		c.ZombiesPerIngress = 1
		c.BystanderHosts = 2
	})
	got := 0
	for _, c := range d.Clients {
		c.SetDefaultHandler(func(*netsim.Packet, sim.Time) { got++ })
		ack := &netsim.Packet{
			ID: d.Net.NextPacketID(),
			Label: netsim.FlowLabel{
				SrcIP: d.VictimIP(), DstIP: c.PrimaryIP(),
				SrcPort: 80, DstPort: 1234,
			},
			Kind: netsim.KindAck, Proto: netsim.ProtoTCP, Size: 40,
		}
		d.Victim.Send(ack)
	}
	if err := d.Net.Scheduler().Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if got != len(d.Clients) {
		t.Fatalf("reverse delivery = %d, want %d", got, len(d.Clients))
	}
}

func TestIngressOf(t *testing.T) {
	d := buildDefault(t, func(c *Config) { c.NumRouters = 12 })
	for _, c := range d.Clients {
		if d.IngressOf(c) == nil {
			t.Fatalf("client %s has no ingress", c.Name())
		}
	}
	for _, z := range d.Zombies {
		if d.IngressOf(z) == nil {
			t.Fatalf("zombie %s has no ingress", z.Name())
		}
	}
	if d.IngressOf(d.Victim) != nil {
		t.Fatal("victim should not map to an ingress router")
	}
}

func TestSpoofPoolAddressesAreRoutable(t *testing.T) {
	d := buildDefault(t, nil)
	for _, ip := range d.SpoofPool() {
		if !d.Net.IsRoutable(ip) {
			t.Fatalf("spoof pool address %s is not routable", ip)
		}
	}
	// An address outside every allocated prefix must be unroutable: this
	// is the "illegal source" case MAFIC sends straight to the PDT.
	if d.Net.IsRoutable(netsim.IP(0x01020304)) {
		t.Fatal("unallocated address reported routable")
	}
}

func TestDomainSizeSweepBuilds(t *testing.T) {
	// Figure 5(c)/6(c) sweep domain sizes from 20 to 160 routers; every
	// size must build and keep ingress-victim connectivity.
	for _, n := range []int{20, 40, 80, 120, 160} {
		d := buildDefault(t, func(c *Config) {
			c.NumRouters = n
			c.ClientsPerIngress = 1
			c.ZombiesPerIngress = 1
			c.BystanderHosts = 4
		})
		if got := len(d.Routers); got != n {
			t.Fatalf("N=%d: built %d routers", n, got)
		}
		if hops := PathLength(d.Net, d.Ingress[0].ID(), d.Victim.ID()); hops <= 0 {
			t.Fatalf("N=%d: ingress cannot reach victim", n)
		}
	}
}

func TestDeterministicConstruction(t *testing.T) {
	build := func() *Domain {
		d, err := Build(DefaultConfig(), sim.NewScheduler(), sim.NewRNG(7))
		if err != nil {
			t.Fatalf("Build: %v", err)
		}
		return d
	}
	a, b := build(), build()
	if len(a.Ingress) != len(b.Ingress) || len(a.Clients) != len(b.Clients) {
		t.Fatal("identical seeds produced structurally different domains")
	}
	for i := range a.Clients {
		if a.Clients[i].PrimaryIP() != b.Clients[i].PrimaryIP() {
			t.Fatal("identical seeds produced different client addressing")
		}
	}
}

func TestPathLengthDisconnected(t *testing.T) {
	sched := sim.NewScheduler()
	net := netsim.New(sched, sim.NewRNG(1))
	a := net.AddHost("a", netsim.IP(1))
	b := net.AddHost("b", netsim.IP(2))
	if got := PathLength(net, a.ID(), b.ID()); got != -1 {
		t.Fatalf("disconnected path length = %d, want -1", got)
	}
	if got := PathLength(net, a.ID(), a.ID()); got != 0 {
		t.Fatalf("self path length = %d, want 0", got)
	}
}
