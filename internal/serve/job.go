package serve

import (
	"errors"
	"fmt"
	"time"

	"mafic/internal/experiment"
	"mafic/internal/sim"
)

// Sentinel errors for the submission and job-control surface. The HTTP layer
// maps them onto status codes; embedders can errors.Is against them directly.
var (
	// ErrBadRequest marks submissions rejected for their content: unknown
	// scenario or defence names, parameter combinations that fail scenario
	// validation.
	ErrBadRequest = errors.New("serve: invalid job spec")
	// ErrQueueFull is explicit load shedding: the bounded queue is at
	// capacity and the server refuses to buffer more.
	ErrQueueFull = errors.New("serve: job queue full")
	// ErrDraining rejects submissions after a drain began.
	ErrDraining = errors.New("serve: server is draining")
	// ErrUnknownJob reports a job ID the server has never seen.
	ErrUnknownJob = errors.New("serve: unknown job")
	// ErrConflict reports an operation invalid for the job's state, such
	// as cancelling a job that already finished.
	ErrConflict = errors.New("serve: job already finished")
)

// JobState is the lifecycle of one submitted job.
type JobState string

const (
	StateQueued    JobState = "queued"
	StateRunning   JobState = "running"
	StateCompleted JobState = "completed"
	StateFailed    JobState = "failed"
	StateCanceled  JobState = "canceled"
)

// terminal reports whether a job in this state will never run again.
func (s JobState) terminal() bool {
	return s == StateCompleted || s == StateFailed || s == StateCanceled
}

// JobSpec names a scenario and optional parameter overrides — the service
// equivalent of maficsim's flag set. Pointer fields distinguish "not set"
// (keep the catalog entry's own knob) from an explicit zero.
type JobSpec struct {
	// Scenario is a catalog name (see maficsim -list). Empty runs the
	// paper-default scenario.
	Scenario string `json:"scenario,omitempty"`
	// Quick runs the scaled-down variant of a catalog entry.
	Quick bool `json:"quick,omitempty"`
	// Hardened applies the robustness hardening after overrides.
	Hardened bool `json:"hardened,omitempty"`

	Seed       *int64   `json:"seed,omitempty"`
	DurationMs *float64 `json:"durationMs,omitempty"`
	Pd         *float64 `json:"pd,omitempty"`
	Flows      *int     `json:"flows,omitempty"`
	TCPShare   *float64 `json:"tcpShare,omitempty"`
	// Rate is the attack source rate in paper-scale packets/s; it is
	// divided by experiment.RateScale exactly as the CLI does.
	Rate    *float64 `json:"rate,omitempty"`
	Routers *int     `json:"routers,omitempty"`
	// Defense is "mafic", "proportional" or "none"; empty keeps the
	// scenario's own defence.
	Defense string `json:"defense,omitempty"`

	// CheckpointEveryMs overrides the server's snapshot interval for this
	// job, in simulated milliseconds. Zero disables checkpoints (and with
	// them interruptibility) for the job.
	CheckpointEveryMs *float64 `json:"checkpointEveryMs,omitempty"`
}

// BuildScenario materializes the spec into a validated Scenario, mirroring
// the maficsim flag pipeline: catalog lookup, Quick before overrides, Harden
// after. All rejections are wrapped in ErrBadRequest.
func (spec JobSpec) BuildScenario() (experiment.Scenario, error) {
	var s experiment.Scenario
	if spec.Scenario == "" {
		if spec.Quick {
			return s, fmt.Errorf("%w: quick scales down a catalog entry; name a scenario", ErrBadRequest)
		}
		s = experiment.DefaultScenario()
	} else {
		e, ok := experiment.LookupScenario(spec.Scenario)
		if !ok {
			return s, fmt.Errorf("%w: unknown scenario %q", ErrBadRequest, spec.Scenario)
		}
		s = e.Build()
		if spec.Quick {
			s = experiment.Quick(s)
		}
	}
	if spec.Seed != nil {
		s.Seed = *spec.Seed
	}
	if spec.DurationMs != nil {
		s.Duration = sim.Time(*spec.DurationMs * float64(sim.Millisecond))
	}
	if spec.Pd != nil {
		s.MAFIC.DropProbability = *spec.Pd
	}
	if spec.Flows != nil {
		s.Workload.TotalFlows = *spec.Flows
	}
	if spec.TCPShare != nil {
		s.Workload.TCPShare = *spec.TCPShare
	}
	if spec.Rate != nil {
		s.Workload.AttackRate = *spec.Rate / experiment.RateScale
	}
	if spec.Routers != nil {
		s.Topology.NumRouters = *spec.Routers
	}
	if spec.Hardened {
		s = experiment.Harden(s)
	}
	switch spec.Defense {
	case "":
	case "mafic":
		s.Defense = experiment.DefenseMAFIC
	case "proportional":
		s.Defense = experiment.DefenseBaseline
	case "none":
		s.Defense = experiment.DefenseNone
	default:
		return s, fmt.Errorf("%w: unknown defense %q", ErrBadRequest, spec.Defense)
	}
	if spec.CheckpointEveryMs != nil && *spec.CheckpointEveryMs < 0 {
		return s, fmt.Errorf("%w: checkpointEveryMs must not be negative", ErrBadRequest)
	}
	if err := s.Validate(); err != nil {
		return s, fmt.Errorf("%w: %v", ErrBadRequest, err)
	}
	return s, nil
}

// job is the server's mutable record of one submission. Every field after
// spec is guarded by Server.mu.
type job struct {
	id   uint64
	spec JobSpec

	state          JobState
	errMsg         string
	attempts       int
	snapshots      int
	lastCheckpoint sim.Time
	resumed        bool
	resumedFrom    sim.Time
	submitted      time.Time
	started        time.Time
	finished       time.Time
	result         *experiment.Result

	// cancel is closed (once) to interrupt a running job; canceled
	// remembers that so a second Cancel does not close it again.
	cancel   chan struct{}
	canceled bool
	// stopReason records why the control surface interrupted the current
	// attempt, set by the attempt's stopper just before it trips Interrupt.
	stopReason stopReason
}

type stopReason int

const (
	stopNone stopReason = iota
	stopDrain
	stopCancel
	stopTimeout
)

// manifest is the on-disk job record (job.json), written atomically on every
// state transition. It is what startup recovery rebuilds jobs from.
type manifest struct {
	ID          uint64    `json:"id"`
	Spec        JobSpec   `json:"spec"`
	State       JobState  `json:"state"`
	Error       string    `json:"error,omitempty"`
	Attempts    int       `json:"attempts"`
	SubmittedAt time.Time `json:"submittedAt"`
}

// JobInfo is the externally visible view of a job, served by /jobs.
type JobInfo struct {
	ID       uint64   `json:"id"`
	Spec     JobSpec  `json:"spec"`
	State    JobState `json:"state"`
	Error    string   `json:"error,omitempty"`
	Attempts int      `json:"attempts"`

	// Snapshots is the number of snapshot files currently on disk;
	// LastCheckpointMs is the simulated time of the newest one.
	Snapshots        int     `json:"snapshots"`
	LastCheckpointMs float64 `json:"lastCheckpointMs,omitempty"`
	// ResumedFromMs is set when the current (or final) attempt continued
	// from a snapshot rather than starting fresh.
	ResumedFromMs *float64 `json:"resumedFromMs,omitempty"`

	SubmittedAt time.Time  `json:"submittedAt"`
	StartedAt   *time.Time `json:"startedAt,omitempty"`
	FinishedAt  *time.Time `json:"finishedAt,omitempty"`

	Result *experiment.Result `json:"result,omitempty"`
}

// Metrics counts service-level events since process start. Snapshot it with
// Server.Metrics.
type Metrics struct {
	Submitted        uint64 `json:"submitted"`
	Shed             uint64 `json:"shed"`
	Completed        uint64 `json:"completed"`
	Failed           uint64 `json:"failed"`
	Canceled         uint64 `json:"canceled"`
	TimedOut         uint64 `json:"timedOut"`
	Retried          uint64 `json:"retried"`
	Resumed          uint64 `json:"resumed"`
	SnapshotsWritten uint64 `json:"snapshotsWritten"`
	SnapshotsCorrupt uint64 `json:"snapshotsCorrupt"`
	Recovered        uint64 `json:"recovered"`
	Drained          uint64 `json:"drained"`
}
