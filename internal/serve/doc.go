// Package serve is the crash-tolerant long-running simulation service built
// on the snapshot layer: a supervised job queue over the scenario catalog.
//
// A Server accepts JobSpec submissions (a catalog name plus parameter
// overrides, the same knobs `maficsim` exposes as flags), runs them on a
// bounded worker pool, and auto-checkpoints every running job on a
// configurable simulated-time interval into a rotated on-disk snapshot store
// (checkpoint.Store: atomic writes, keep-last-K). The durability contract:
//
//   - A full queue sheds new submissions explicitly (ErrQueueFull → 503)
//     rather than queueing unboundedly.
//   - A transient run failure is retried with bounded doubling backoff,
//     resuming from the newest snapshot, so progress is never lost to a
//     flaky attempt.
//   - A per-job wall-clock timeout fails the job terminally — timed out,
//     not hung, and not retried.
//   - Drain (SIGTERM or POST /drain) pauses every in-flight job at the next
//     checkpoint boundary, saves one final snapshot, and leaves the job's
//     manifest marked running so the next process resumes it.
//   - On startup the server scans its store, re-enqueues every queued or
//     running job, and resumes each from its newest snapshot that actually
//     validates — falling back loudly past torn or bit-flipped files.
//
// Because snapshots restore bit-identically (pinned by the experiment
// package's kill-and-resume suite and this package's recovery tests), a job
// that lived through any number of crashes, retries and restarts produces
// exactly the bytes an uninterrupted run would have written.
package serve
