package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"os"
	"path/filepath"
	"sort"
	"sync"
	"time"

	"mafic/internal/checkpoint"
	"mafic/internal/experiment"
	"mafic/internal/sim"
)

// Config shapes a Server. Zero values get conservative defaults; see New.
type Config struct {
	// Dir is the service's on-disk root: per-job directories (manifest,
	// snapshots, result) live under Dir/jobs.
	Dir string
	// QueueCap bounds how many submitted-but-not-running jobs the server
	// buffers before shedding with ErrQueueFull. Default 16.
	QueueCap int
	// Workers is the number of concurrent job runners. Default 2.
	Workers int
	// CheckpointEvery is the simulated-time interval between automatic
	// snapshots of each running job (per-job override via
	// JobSpec.CheckpointEveryMs). Default 100 simulated milliseconds.
	CheckpointEvery sim.Time
	// Keep bounds the snapshot store rotation per job. Default 3.
	Keep int
	// JobTimeout is the wall-clock budget for one attempt; a job that
	// exceeds it fails terminally (timed out, not retried). Zero disables.
	JobTimeout time.Duration
	// MaxRetries bounds retry attempts after a transient failure: a job
	// runs at most MaxRetries+1 times. Zero means no retries.
	MaxRetries int
	// RetryBackoff is the first retry delay; it doubles per retry.
	// Default 250ms.
	RetryBackoff time.Duration
	// Log receives service logs. Default log.Default().
	Log *log.Logger
}

// Server is the supervised job queue. Create with New, launch workers with
// Start, stop with Shutdown (drains: every in-flight job saves a final
// snapshot and is resumed by the next process).
type Server struct {
	cfg Config
	log *log.Logger

	mu      sync.Mutex
	jobs    map[uint64]*job
	order   []uint64 // ascending submission order
	nextID  uint64
	drained bool // draining state, guarded by mu (drainCh is the signal)
	m       Metrics

	queue   chan *job
	drainCh chan struct{}
	drainOn sync.Once
	wg      sync.WaitGroup

	// Test seams. Production values are set by New; package tests replace
	// them between New and Start to make time and run outcomes scripted.
	runner func(s experiment.Scenario, resume []byte, opts experiment.ControlOptions) (experiment.Result, error)
	sleep  func(d time.Duration) bool // false: drain interrupted the sleep
	now    func() time.Time
	after  func(d time.Duration) <-chan time.Time
	hooks  struct {
		beforeAttempt func(id uint64, attempt int)
		afterSave     func(id uint64, at sim.Time)
	}
}

// New builds a Server rooted at cfg.Dir and runs startup recovery: every
// job directory is scanned, corrupt manifests are skipped loudly, and jobs
// left queued or running by the previous process are re-enqueued (their
// runners resume from the newest valid snapshot). Workers do not start until
// Start is called.
func New(cfg Config) (*Server, error) {
	if cfg.QueueCap <= 0 {
		cfg.QueueCap = 16
	}
	if cfg.Workers <= 0 {
		cfg.Workers = 2
	}
	if cfg.CheckpointEvery <= 0 {
		cfg.CheckpointEvery = 100 * sim.Millisecond
	}
	if cfg.Keep <= 0 {
		cfg.Keep = 3
	}
	if cfg.MaxRetries < 0 {
		cfg.MaxRetries = 0
	}
	if cfg.RetryBackoff <= 0 {
		cfg.RetryBackoff = 250 * time.Millisecond
	}
	if cfg.Log == nil {
		cfg.Log = log.Default()
	}
	sv := &Server{
		cfg:     cfg,
		log:     cfg.Log,
		jobs:    make(map[uint64]*job),
		nextID:  1,
		drainCh: make(chan struct{}),
		now:     time.Now,
		after:   func(d time.Duration) <-chan time.Time { return time.After(d) },
	}
	sv.runner = func(s experiment.Scenario, resume []byte, opts experiment.ControlOptions) (experiment.Result, error) {
		if resume != nil {
			return experiment.ResumeControlled(resume, opts)
		}
		return experiment.RunControlled(s, opts)
	}
	sv.sleep = func(d time.Duration) bool {
		select {
		case <-time.After(d):
			return true
		case <-sv.drainCh:
			return false
		}
	}
	pending, err := sv.recover()
	if err != nil {
		return nil, err
	}
	// The queue must hold every recovered job on top of the configured
	// capacity, or recovery itself could shed work that was already accepted.
	sv.queue = make(chan *job, cfg.QueueCap+len(pending))
	for _, j := range pending {
		sv.queue <- j
	}
	return sv, nil
}

// Start launches the worker pool.
func (sv *Server) Start() {
	sv.wg.Add(sv.cfg.Workers)
	for i := 0; i < sv.cfg.Workers; i++ {
		go sv.worker()
	}
}

// Drain begins shutdown: no new submissions are accepted, sleeping retries
// wake up and park, and every in-flight job is interrupted at its next
// checkpoint boundary with a final snapshot saved. Idempotent.
func (sv *Server) Drain() {
	sv.drainOn.Do(func() {
		sv.mu.Lock()
		sv.drained = true
		sv.mu.Unlock()
		sv.log.Printf("drain: shedding new work, snapshotting in-flight jobs")
		close(sv.drainCh)
	})
}

// DrainRequested is closed once a drain has begun (via Drain, Shutdown, or
// the POST /drain endpoint); process mains select on it to know when to stop
// serving.
func (sv *Server) DrainRequested() <-chan struct{} { return sv.drainCh }

// Shutdown drains and waits for every worker to park, bounded by ctx.
func (sv *Server) Shutdown(ctx context.Context) error {
	sv.Drain()
	done := make(chan struct{})
	go func() {
		sv.wg.Wait()
		close(done)
	}()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		return fmt.Errorf("drain incomplete: %w", ctx.Err())
	}
}

// Submit validates a spec and enqueues it. The queue is bounded: a full
// queue returns ErrQueueFull (the HTTP layer's 503) instead of buffering.
func (sv *Server) Submit(spec JobSpec) (JobInfo, error) {
	if _, err := spec.BuildScenario(); err != nil {
		return JobInfo{}, err
	}
	sv.mu.Lock()
	defer sv.mu.Unlock()
	if sv.drained {
		return JobInfo{}, ErrDraining
	}
	if len(sv.queue) == cap(sv.queue) {
		sv.m.Shed++
		return JobInfo{}, ErrQueueFull
	}
	j := &job{
		id:        sv.nextID,
		spec:      spec,
		state:     StateQueued,
		submitted: sv.now(),
		cancel:    make(chan struct{}),
	}
	if err := os.MkdirAll(sv.jobDir(j.id), 0o755); err != nil {
		return JobInfo{}, err
	}
	if err := sv.persistLocked(j); err != nil {
		return JobInfo{}, err
	}
	sv.nextID++
	sv.jobs[j.id] = j
	sv.order = append(sv.order, j.id)
	sv.m.Submitted++
	// Cannot block: capacity was checked above and sends happen only under mu.
	sv.queue <- j
	return sv.infoLocked(j), nil
}

// Job returns the current view of one job.
func (sv *Server) Job(id uint64) (JobInfo, bool) {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	j, ok := sv.jobs[id]
	if !ok {
		return JobInfo{}, false
	}
	return sv.infoLocked(j), true
}

// Jobs returns every job in submission order.
func (sv *Server) Jobs() []JobInfo {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	out := make([]JobInfo, 0, len(sv.order))
	for _, id := range sv.order {
		out = append(out, sv.infoLocked(sv.jobs[id]))
	}
	return out
}

// Metrics returns a snapshot of the service counters.
func (sv *Server) Metrics() Metrics {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return sv.m
}

// Draining reports whether a drain has begun.
func (sv *Server) Draining() bool {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	return sv.drained
}

// Cancel stops a job: a queued job is canceled immediately, a running job is
// interrupted at its next checkpoint boundary. Finished jobs return
// ErrConflict.
func (sv *Server) Cancel(id uint64) (JobInfo, error) {
	sv.mu.Lock()
	defer sv.mu.Unlock()
	j, ok := sv.jobs[id]
	if !ok {
		return JobInfo{}, ErrUnknownJob
	}
	switch j.state {
	case StateQueued:
		j.canceled = true
		j.state = StateCanceled
		j.finished = sv.now()
		sv.m.Canceled++
		if err := sv.persistLocked(j); err != nil {
			return sv.infoLocked(j), err
		}
	case StateRunning:
		if !j.canceled {
			j.canceled = true
			close(j.cancel)
		}
	default:
		return sv.infoLocked(j), ErrConflict
	}
	return sv.infoLocked(j), nil
}

// ResultBytes returns the raw result.json of a completed job — the exact
// bytes on disk, so clients can bit-compare runs.
func (sv *Server) ResultBytes(id uint64) ([]byte, error) {
	sv.mu.Lock()
	j, ok := sv.jobs[id]
	var state JobState
	if ok {
		state = j.state
	}
	sv.mu.Unlock()
	if !ok {
		return nil, ErrUnknownJob
	}
	if state != StateCompleted {
		return nil, fmt.Errorf("%w: job %d is %s, not completed", ErrConflict, id, state)
	}
	return os.ReadFile(filepath.Join(sv.jobDir(id), "result.json"))
}

func (sv *Server) jobDir(id uint64) string {
	return filepath.Join(sv.cfg.Dir, "jobs", fmt.Sprintf("%06d", id))
}

// persistLocked writes the job's manifest atomically. Callers hold sv.mu.
func (sv *Server) persistLocked(j *job) error {
	m := manifest{
		ID:          j.id,
		Spec:        j.spec,
		State:       j.state,
		Error:       j.errMsg,
		Attempts:    j.attempts,
		SubmittedAt: j.submitted,
	}
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return err
	}
	return checkpoint.WriteFileAtomic(filepath.Join(sv.jobDir(j.id), "job.json"), append(data, '\n'), 0o644)
}

func (sv *Server) infoLocked(j *job) JobInfo {
	info := JobInfo{
		ID:          j.id,
		Spec:        j.spec,
		State:       j.state,
		Error:       j.errMsg,
		Attempts:    j.attempts,
		Snapshots:   j.snapshots,
		SubmittedAt: j.submitted,
		Result:      j.result,
	}
	if j.lastCheckpoint > 0 {
		info.LastCheckpointMs = float64(j.lastCheckpoint) / float64(sim.Millisecond)
	}
	if j.resumed {
		ms := float64(j.resumedFrom) / float64(sim.Millisecond)
		info.ResumedFromMs = &ms
	}
	if !j.started.IsZero() {
		t := j.started
		info.StartedAt = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		info.FinishedAt = &t
	}
	return info
}

// recover scans Dir/jobs and rebuilds the job table from manifests. Jobs the
// previous process left queued or running are returned for re-enqueueing, in
// submission order. Corrupt manifests are logged and skipped — recovery
// never refuses to start over one damaged record.
func (sv *Server) recover() ([]*job, error) {
	root := filepath.Join(sv.cfg.Dir, "jobs")
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("open job store: %w", err)
	}
	entries, err := os.ReadDir(root)
	if err != nil {
		return nil, fmt.Errorf("open job store: %w", err)
	}
	var pending []*job
	for _, e := range entries {
		if !e.IsDir() {
			continue
		}
		path := filepath.Join(root, e.Name(), "job.json")
		data, err := os.ReadFile(path)
		if err != nil {
			sv.log.Printf("recovery: skipping %s: %v", e.Name(), err)
			continue
		}
		var m manifest
		if err := json.Unmarshal(data, &m); err != nil || m.ID == 0 {
			sv.log.Printf("recovery: CORRUPT manifest %s; skipping", path)
			continue
		}
		j := &job{
			id:        m.ID,
			spec:      m.Spec,
			state:     m.State,
			errMsg:    m.Error,
			attempts:  m.Attempts,
			submitted: m.SubmittedAt,
			cancel:    make(chan struct{}),
		}
		if m.State == StateCompleted {
			if rb, rerr := os.ReadFile(filepath.Join(root, e.Name(), "result.json")); rerr == nil {
				var res experiment.Result
				if json.Unmarshal(rb, &res) == nil {
					j.result = &res
				}
			}
		}
		if !m.State.terminal() {
			j.state = StateQueued
			// Count the snapshots already on disk so status reflects what
			// the resume will work from (this also sweeps temp leftovers).
			if st, serr := checkpoint.OpenStore(filepath.Join(root, e.Name()), sv.cfg.Keep); serr == nil {
				j.snapshots = st.Count()
			}
			pending = append(pending, j)
		}
		sv.jobs[m.ID] = j
		if m.ID >= sv.nextID {
			sv.nextID = m.ID + 1
		}
	}
	for id := range sv.jobs {
		sv.order = append(sv.order, id)
	}
	sort.Slice(sv.order, func(i, k int) bool { return sv.order[i] < sv.order[k] })
	sort.Slice(pending, func(i, k int) bool { return pending[i].id < pending[k].id })
	for _, j := range pending {
		sv.m.Recovered++
		sv.log.Printf("recovery: job %d (%s) re-enqueued with %d snapshot(s)", j.id, j.spec.Scenario, j.snapshots)
	}
	return pending, nil
}

// worker drains the job queue until a drain begins. A job received in the
// same instant the drain fires is put back conceptually: it stays queued on
// disk, so the next process re-enqueues it.
func (sv *Server) worker() {
	defer sv.wg.Done()
	for {
		select {
		case <-sv.drainCh:
			return
		case j := <-sv.queue:
			select {
			case <-sv.drainCh:
				return
			default:
			}
			sv.runJob(j)
		}
	}
}

// runJob supervises one job end to end: attempts, retries with doubling
// backoff, timeout, cancellation, drain.
func (sv *Server) runJob(j *job) {
	sv.mu.Lock()
	if j.state == StateCanceled {
		sv.mu.Unlock()
		return
	}
	j.state = StateRunning
	j.started = sv.now()
	spec := j.spec
	if err := sv.persistLocked(j); err != nil {
		sv.mu.Unlock()
		sv.failJob(j, fmt.Sprintf("persist manifest: %v", err))
		return
	}
	sv.mu.Unlock()

	s, err := spec.BuildScenario()
	if err != nil {
		sv.failJob(j, err.Error())
		return
	}
	st, err := checkpoint.OpenStore(sv.jobDir(j.id), sv.cfg.Keep)
	if err != nil {
		sv.failJob(j, fmt.Sprintf("open snapshot store: %v", err))
		return
	}

	backoff := sv.cfg.RetryBackoff
	for attempt := 1; ; attempt++ {
		sv.mu.Lock()
		j.attempts = attempt
		j.stopReason = stopNone
		sv.mu.Unlock()
		if h := sv.hooks.beforeAttempt; h != nil {
			h(j.id, attempt)
		}

		res, err := sv.attempt(j, s, st)
		if err == nil {
			sv.completeJob(j, st, res)
			return
		}
		if errors.Is(err, experiment.ErrInterrupted) {
			sv.mu.Lock()
			reason := j.stopReason
			sv.mu.Unlock()
			switch reason {
			case stopCancel:
				sv.log.Printf("job %d: canceled (%v)", j.id, err)
				sv.mu.Lock()
				j.state = StateCanceled
				j.finished = sv.now()
				sv.m.Canceled++
				sv.persistLocked(j)
				sv.mu.Unlock()
				return
			case stopDrain:
				// The manifest stays "running": the next process resumes
				// this job from the final snapshot the interrupt saved.
				sv.log.Printf("job %d: drained with final snapshot; will resume on restart", j.id)
				sv.mu.Lock()
				sv.m.Drained++
				sv.mu.Unlock()
				return
			case stopTimeout:
				sv.mu.Lock()
				sv.m.TimedOut++
				sv.mu.Unlock()
				sv.failJob(j, fmt.Sprintf("timed out after %v (attempt %d)", sv.cfg.JobTimeout, attempt))
				return
			}
			// stopNone: an interrupt the supervisor did not order — fall
			// through and treat it as a transient failure.
		}
		if attempt > sv.cfg.MaxRetries {
			sv.failJob(j, fmt.Sprintf("giving up after %d attempt(s): %v", attempt, err))
			return
		}
		sv.log.Printf("job %d: attempt %d failed (%v); retrying in %v", j.id, attempt, err, backoff)
		sv.mu.Lock()
		sv.m.Retried++
		sv.mu.Unlock()
		if !sv.sleep(backoff) {
			// Drain interrupted the backoff; leave the manifest "running"
			// so the next process picks the job back up.
			sv.log.Printf("job %d: drain during retry backoff; will resume on restart", j.id)
			sv.mu.Lock()
			sv.m.Drained++
			sv.mu.Unlock()
			return
		}
		backoff *= 2
	}
}

// attempt executes one run attempt under the control surface: periodic
// snapshots into the job's store, interruption wired to cancel/drain/timeout,
// and resume from the newest valid snapshot with loud fallback past corrupt
// or unrestorable ones.
func (sv *Server) attempt(j *job, s experiment.Scenario, st *checkpoint.Store) (experiment.Result, error) {
	stop := make(chan struct{})
	attemptDone := make(chan struct{})
	defer close(attemptDone)
	var timeoutC <-chan time.Time
	if sv.cfg.JobTimeout > 0 {
		timeoutC = sv.after(sv.cfg.JobTimeout)
	}
	go func() {
		var reason stopReason
		select {
		case <-attemptDone:
			return
		case <-j.cancel:
			reason = stopCancel
		case <-sv.drainCh:
			reason = stopDrain
		case <-timeoutC:
			reason = stopTimeout
		}
		sv.mu.Lock()
		j.stopReason = reason
		sv.mu.Unlock()
		close(stop)
	}()

	every := sv.cfg.CheckpointEvery
	if j.spec.CheckpointEveryMs != nil {
		every = sim.Time(*j.spec.CheckpointEveryMs * float64(sim.Millisecond))
	}
	opts := experiment.ControlOptions{
		CheckpointEvery: every,
		Interrupt:       stop,
		Save: func(at sim.Time, data []byte) error {
			if err := st.Save(at, data); err != nil {
				return err
			}
			sv.mu.Lock()
			j.snapshots = st.Count()
			j.lastCheckpoint = at
			sv.m.SnapshotsWritten++
			sv.mu.Unlock()
			if h := sv.hooks.afterSave; h != nil {
				h(j.id, at)
			}
			return nil
		},
	}

	for {
		data, info, skipped, err := st.LatestValid()
		for _, sk := range skipped {
			sv.log.Printf("job %d: snapshot %s is CORRUPT; falling back past it", j.id, sk.Name)
			sv.mu.Lock()
			sv.m.SnapshotsCorrupt++
			sv.mu.Unlock()
		}
		if err != nil {
			if !errors.Is(err, checkpoint.ErrNoSnapshot) {
				return experiment.Result{}, err
			}
			if len(skipped) > 0 {
				sv.log.Printf("job %d: no valid snapshot survives; starting fresh", j.id)
			}
			return sv.runner(s, nil, opts)
		}
		sv.mu.Lock()
		j.resumed = true
		j.resumedFrom = info.At
		sv.m.Resumed++
		sv.mu.Unlock()
		sv.log.Printf("job %d: resuming from snapshot %s (t=%v)", j.id, info.Name, info.At)
		res, err := sv.runner(s, data, opts)
		if err != nil && errors.Is(err, experiment.ErrSnapshot) {
			// Decoded but did not restore: deeper corruption than the
			// store's validation can see. Drop the file and fall back.
			sv.log.Printf("job %d: snapshot %s FAILED to restore (%v); removing and falling back", j.id, info.Name, err)
			sv.mu.Lock()
			sv.m.SnapshotsCorrupt++
			sv.mu.Unlock()
			if rerr := st.Remove(info); rerr != nil {
				return experiment.Result{}, rerr
			}
			continue
		}
		return res, err
	}
}

// completeJob persists result.json atomically, clears the job's snapshots,
// and marks it completed.
func (sv *Server) completeJob(j *job, st *checkpoint.Store, res experiment.Result) {
	data, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		sv.failJob(j, fmt.Sprintf("encode result: %v", err))
		return
	}
	if err := checkpoint.WriteFileAtomic(filepath.Join(sv.jobDir(j.id), "result.json"), append(data, '\n'), 0o644); err != nil {
		sv.failJob(j, fmt.Sprintf("write result: %v", err))
		return
	}
	if err := st.Clear(); err != nil {
		sv.log.Printf("job %d: clearing snapshots: %v", j.id, err)
	}
	sv.mu.Lock()
	j.state = StateCompleted
	j.result = &res
	j.finished = sv.now()
	j.snapshots = 0
	sv.m.Completed++
	sv.persistLocked(j)
	sv.mu.Unlock()
	sv.log.Printf("job %d: completed after %d attempt(s)", j.id, j.attempts)
}

func (sv *Server) failJob(j *job, msg string) {
	sv.mu.Lock()
	j.state = StateFailed
	j.errMsg = msg
	j.finished = sv.now()
	sv.m.Failed++
	sv.persistLocked(j)
	sv.mu.Unlock()
	sv.log.Printf("job %d: FAILED: %s", j.id, msg)
}
