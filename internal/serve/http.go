package serve

import (
	"encoding/json"
	"errors"
	"net/http"
	"strconv"
)

// Handler returns the service's HTTP API:
//
//	GET  /healthz            liveness, queue depth, per-state counts, metrics
//	GET  /jobs               every job in submission order
//	POST /jobs               submit a JobSpec; 202 on accept, 503 on shed/drain
//	GET  /jobs/{id}          one job's status (includes the Result when done)
//	GET  /jobs/{id}/result   the raw result.json bytes, for bit-comparison
//	POST /jobs/{id}/cancel   cancel a queued or running job
//	POST /drain              begin shutdown: snapshot in-flight jobs and park
func (sv *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", sv.handleHealth)
	mux.HandleFunc("GET /jobs", sv.handleJobs)
	mux.HandleFunc("POST /jobs", sv.handleSubmit)
	mux.HandleFunc("GET /jobs/{id}", sv.handleJob)
	mux.HandleFunc("GET /jobs/{id}/result", sv.handleResult)
	mux.HandleFunc("POST /jobs/{id}/cancel", sv.handleCancel)
	mux.HandleFunc("POST /drain", sv.handleDrain)
	return mux
}

// Health is the GET /healthz response body.
type Health struct {
	Status     string           `json:"status"` // "ok" or "draining"
	QueueDepth int              `json:"queueDepth"`
	Jobs       map[JobState]int `json:"jobs"`
	Metrics    Metrics          `json:"metrics"`
}

func (sv *Server) handleHealth(w http.ResponseWriter, r *http.Request) {
	sv.mu.Lock()
	h := Health{
		Status:     "ok",
		QueueDepth: len(sv.queue),
		Jobs:       make(map[JobState]int),
		Metrics:    sv.m,
	}
	if sv.drained {
		h.Status = "draining"
	}
	for _, j := range sv.jobs {
		h.Jobs[j.state]++
	}
	sv.mu.Unlock()
	writeJSON(w, http.StatusOK, h)
}

func (sv *Server) handleJobs(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, sv.Jobs())
}

func (sv *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	var spec JobSpec
	dec := json.NewDecoder(r.Body)
	dec.DisallowUnknownFields()
	if err := dec.Decode(&spec); err != nil {
		http.Error(w, "invalid job spec: "+err.Error(), http.StatusBadRequest)
		return
	}
	info, err := sv.Submit(spec)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusAccepted, info)
}

func (sv *Server) handleJob(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	info, found := sv.Job(id)
	if !found {
		writeErr(w, ErrUnknownJob)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (sv *Server) handleResult(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	data, err := sv.ResultBytes(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	w.Header().Set("Content-Type", "application/json")
	w.Write(data)
}

func (sv *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	id, ok := pathID(w, r)
	if !ok {
		return
	}
	info, err := sv.Cancel(id)
	if err != nil {
		writeErr(w, err)
		return
	}
	writeJSON(w, http.StatusOK, info)
}

func (sv *Server) handleDrain(w http.ResponseWriter, r *http.Request) {
	sv.Drain()
	writeJSON(w, http.StatusAccepted, map[string]string{"status": "draining"})
}

func pathID(w http.ResponseWriter, r *http.Request) (uint64, bool) {
	id, err := strconv.ParseUint(r.PathValue("id"), 10, 64)
	if err != nil {
		http.Error(w, "invalid job id", http.StatusBadRequest)
		return 0, false
	}
	return id, true
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	enc.Encode(v)
}

// writeErr maps the package's sentinel errors onto HTTP status codes.
func writeErr(w http.ResponseWriter, err error) {
	status := http.StatusInternalServerError
	switch {
	case errors.Is(err, ErrBadRequest):
		status = http.StatusBadRequest
	case errors.Is(err, ErrQueueFull), errors.Is(err, ErrDraining):
		status = http.StatusServiceUnavailable
	case errors.Is(err, ErrUnknownJob):
		status = http.StatusNotFound
	case errors.Is(err, ErrConflict):
		status = http.StatusConflict
	}
	http.Error(w, err.Error(), status)
}
