package serve

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"mafic/internal/experiment"
)

func ptr[T any](v T) *T { return &v }

// quickSpec is a valid, cheap submission used throughout the tests. The
// duration must clear the scenario's 600ms attack start or validation
// rejects it.
func quickSpec() JobSpec {
	return JobSpec{Scenario: "table2", Quick: true, DurationMs: ptr(1000.0)}
}

// syncBuffer lets server goroutines and test assertions share a log sink.
type syncBuffer struct {
	mu  sync.Mutex
	buf bytes.Buffer
}

func (b *syncBuffer) Write(p []byte) (int, error) {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.Write(p)
}

func (b *syncBuffer) String() string {
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.buf.String()
}

func newTestServer(t *testing.T, cfg Config) (*Server, *syncBuffer) {
	t.Helper()
	logs := &syncBuffer{}
	if cfg.Dir == "" {
		cfg.Dir = t.TempDir()
	}
	if cfg.Log == nil {
		cfg.Log = log.New(logs, "", 0)
	}
	sv, err := New(cfg)
	if err != nil {
		t.Fatalf("New: %v", err)
	}
	return sv, logs
}

func shutdown(t *testing.T, sv *Server) {
	t.Helper()
	ctx, cancel := contextWithTimeout(30 * time.Second)
	defer cancel()
	if err := sv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown: %v", err)
	}
}

func waitJob(t *testing.T, sv *Server, id uint64, want JobState) JobInfo {
	t.Helper()
	deadline := time.Now().Add(60 * time.Second)
	for time.Now().Before(deadline) {
		info, ok := sv.Job(id)
		if ok && info.State == want {
			return info
		}
		if ok && info.State.terminal() && info.State != want {
			t.Fatalf("job %d reached %s (error %q), want %s", id, info.State, info.Error, want)
		}
		time.Sleep(2 * time.Millisecond)
	}
	t.Fatalf("job %d never reached %s", id, want)
	return JobInfo{}
}

func TestSubmitShedsWhenQueueFull(t *testing.T) {
	sv, _ := newTestServer(t, Config{QueueCap: 1, Workers: 1})
	gate := make(chan struct{})
	started := make(chan uint64, 4)
	sv.runner = func(experiment.Scenario, []byte, experiment.ControlOptions) (experiment.Result, error) {
		<-gate
		return experiment.Result{}, nil
	}
	sv.hooks.beforeAttempt = func(id uint64, attempt int) { started <- id }
	sv.Start()

	if _, err := sv.Submit(quickSpec()); err != nil {
		t.Fatalf("submit 1: %v", err)
	}
	// Job 1 must be out of the queue (running) before job 2 can fill it.
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("job 1 never started")
	}
	if _, err := sv.Submit(quickSpec()); err != nil {
		t.Fatalf("submit 2: %v", err)
	}
	if _, err := sv.Submit(quickSpec()); !errors.Is(err, ErrQueueFull) {
		t.Fatalf("submit 3: got %v, want ErrQueueFull", err)
	}
	if m := sv.Metrics(); m.Shed != 1 || m.Submitted != 2 {
		t.Errorf("metrics %+v, want Shed=1 Submitted=2", m)
	}

	close(gate)
	waitJob(t, sv, 1, StateCompleted)
	waitJob(t, sv, 2, StateCompleted)
	shutdown(t, sv)
}

func TestJobTimeoutFailsTerminally(t *testing.T) {
	timeoutC := make(chan time.Time, 1)
	sv, _ := newTestServer(t, Config{Workers: 1, JobTimeout: 5 * time.Second, MaxRetries: 3})
	sv.after = func(time.Duration) <-chan time.Time { return timeoutC }
	// The runner behaves like a run that never finishes: it only returns
	// once the control surface interrupts it.
	sv.runner = func(_ experiment.Scenario, _ []byte, opts experiment.ControlOptions) (experiment.Result, error) {
		<-opts.Interrupt
		return experiment.Result{}, fmt.Errorf("%w at t=1ms", experiment.ErrInterrupted)
	}
	sv.Start()

	timeoutC <- time.Time{}
	if _, err := sv.Submit(quickSpec()); err != nil {
		t.Fatalf("submit: %v", err)
	}
	info := waitJob(t, sv, 1, StateFailed)
	if !strings.Contains(info.Error, "timed out") {
		t.Errorf("error %q does not mention the timeout", info.Error)
	}
	if info.Attempts != 1 {
		t.Errorf("attempts = %d; a timeout must not be retried", info.Attempts)
	}
	if m := sv.Metrics(); m.TimedOut != 1 || m.Retried != 0 {
		t.Errorf("metrics %+v, want TimedOut=1 Retried=0", m)
	}
	shutdown(t, sv)
}

func TestRetryBackoffIsBoundedAndDeterministic(t *testing.T) {
	sv, _ := newTestServer(t, Config{Workers: 1, MaxRetries: 2, RetryBackoff: 250 * time.Millisecond})
	var mu sync.Mutex
	var sleeps []time.Duration
	sv.sleep = func(d time.Duration) bool {
		mu.Lock()
		sleeps = append(sleeps, d)
		mu.Unlock()
		return true
	}
	attempts := 0
	sv.runner = func(experiment.Scenario, []byte, experiment.ControlOptions) (experiment.Result, error) {
		attempts++ // single worker: no concurrent calls
		if attempts < 3 {
			return experiment.Result{}, errors.New("transient fault")
		}
		return experiment.Result{}, nil
	}
	sv.Start()

	if _, err := sv.Submit(quickSpec()); err != nil {
		t.Fatalf("submit: %v", err)
	}
	info := waitJob(t, sv, 1, StateCompleted)
	if info.Attempts != 3 {
		t.Errorf("attempts = %d, want 3", info.Attempts)
	}
	mu.Lock()
	defer mu.Unlock()
	want := []time.Duration{250 * time.Millisecond, 500 * time.Millisecond}
	if len(sleeps) != len(want) || sleeps[0] != want[0] || sleeps[1] != want[1] {
		t.Errorf("backoff sleeps %v, want %v", sleeps, want)
	}
	if m := sv.Metrics(); m.Retried != 2 {
		t.Errorf("Retried = %d, want 2", m.Retried)
	}
	shutdown(t, sv)
}

func TestRetriesExhaustedFailsJob(t *testing.T) {
	sv, _ := newTestServer(t, Config{Workers: 1, MaxRetries: 2})
	sv.sleep = func(time.Duration) bool { return true }
	sv.runner = func(experiment.Scenario, []byte, experiment.ControlOptions) (experiment.Result, error) {
		return experiment.Result{}, errors.New("persistent fault")
	}
	sv.Start()

	if _, err := sv.Submit(quickSpec()); err != nil {
		t.Fatalf("submit: %v", err)
	}
	info := waitJob(t, sv, 1, StateFailed)
	if info.Attempts != 3 {
		t.Errorf("attempts = %d, want MaxRetries+1 = 3", info.Attempts)
	}
	if !strings.Contains(info.Error, "giving up after 3") {
		t.Errorf("error %q does not report the bounded give-up", info.Error)
	}
	shutdown(t, sv)
}

func TestCancelQueuedAndRunning(t *testing.T) {
	sv, _ := newTestServer(t, Config{QueueCap: 2, Workers: 1})
	release := make(chan struct{})
	started := make(chan uint64, 4)
	sv.runner = func(_ experiment.Scenario, _ []byte, opts experiment.ControlOptions) (experiment.Result, error) {
		select {
		case <-release:
			return experiment.Result{}, nil
		case <-opts.Interrupt:
			return experiment.Result{}, fmt.Errorf("%w at t=1ms", experiment.ErrInterrupted)
		}
	}
	sv.hooks.beforeAttempt = func(id uint64, attempt int) { started <- id }
	sv.Start()

	if _, err := sv.Submit(quickSpec()); err != nil { // job 1: will be running
		t.Fatalf("submit 1: %v", err)
	}
	select {
	case <-started:
	case <-time.After(10 * time.Second):
		t.Fatal("job 1 never started")
	}
	if _, err := sv.Submit(quickSpec()); err != nil { // job 2: queued behind job 1
		t.Fatalf("submit 2: %v", err)
	}

	// Cancelling a queued job is immediate.
	if info, err := sv.Cancel(2); err != nil || info.State != StateCanceled {
		t.Fatalf("cancel queued: %v %v", info.State, err)
	}
	// Cancelling the running job interrupts it.
	if _, err := sv.Cancel(1); err != nil {
		t.Fatalf("cancel running: %v", err)
	}
	waitJob(t, sv, 1, StateCanceled)

	// The canceled queued job must never run.
	select {
	case id := <-started:
		t.Fatalf("job %d started after cancellation", id)
	case <-time.After(50 * time.Millisecond):
	}
	if _, err := sv.Cancel(1); !errors.Is(err, ErrConflict) {
		t.Errorf("cancel finished job: got %v, want ErrConflict", err)
	}
	if _, err := sv.Cancel(99); !errors.Is(err, ErrUnknownJob) {
		t.Errorf("cancel unknown job: got %v, want ErrUnknownJob", err)
	}
	if m := sv.Metrics(); m.Canceled != 2 {
		t.Errorf("Canceled = %d, want 2", m.Canceled)
	}
	shutdown(t, sv)
}

func TestBuildScenarioRejections(t *testing.T) {
	cases := []struct {
		name string
		spec JobSpec
	}{
		{"unknown scenario", JobSpec{Scenario: "no-such-scenario"}},
		{"quick without scenario", JobSpec{Quick: true}},
		{"unknown defense", JobSpec{Scenario: "table2", Defense: "magic"}},
		{"negative checkpoint interval", JobSpec{Scenario: "table2", CheckpointEveryMs: ptr(-1.0)}},
		{"invalid override", JobSpec{Scenario: "table2", DurationMs: ptr(-5.0)}},
	}
	for _, tc := range cases {
		if _, err := tc.spec.BuildScenario(); !errors.Is(err, ErrBadRequest) {
			t.Errorf("%s: got %v, want ErrBadRequest", tc.name, err)
		}
	}
}

func TestBuildScenarioScalesRateLikeCLI(t *testing.T) {
	s, err := JobSpec{Rate: ptr(1e6)}.BuildScenario()
	if err != nil {
		t.Fatalf("build: %v", err)
	}
	if got, want := s.Workload.AttackRate, 1e6/experiment.RateScale; got != want {
		t.Errorf("AttackRate = %v, want paper rate / RateScale = %v", got, want)
	}
}

func TestHTTPEndpoints(t *testing.T) {
	sv, _ := newTestServer(t, Config{Workers: 1})
	sv.runner = func(experiment.Scenario, []byte, experiment.ControlOptions) (experiment.Result, error) {
		return experiment.Result{Name: "scripted"}, nil
	}
	sv.Start()
	ts := httptest.NewServer(sv.Handler())
	defer ts.Close()

	post := func(path, body string) *http.Response {
		t.Helper()
		resp, err := http.Post(ts.URL+path, "application/json", strings.NewReader(body))
		if err != nil {
			t.Fatalf("POST %s: %v", path, err)
		}
		return resp
	}
	get := func(path string) *http.Response {
		t.Helper()
		resp, err := http.Get(ts.URL + path)
		if err != nil {
			t.Fatalf("GET %s: %v", path, err)
		}
		return resp
	}

	if resp := post("/jobs", `{"scenario":"no-such"}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("bad scenario: status %d, want 400", resp.StatusCode)
	}
	if resp := post("/jobs", `{"scenario":"table2","bogusField":1}`); resp.StatusCode != http.StatusBadRequest {
		t.Errorf("unknown field: status %d, want 400", resp.StatusCode)
	}

	resp := post("/jobs", `{"scenario":"table2","quick":true,"durationMs":1000}`)
	if resp.StatusCode != http.StatusAccepted {
		t.Fatalf("submit: status %d, want 202", resp.StatusCode)
	}
	var info JobInfo
	if err := json.NewDecoder(resp.Body).Decode(&info); err != nil {
		t.Fatalf("decode submit response: %v", err)
	}
	waitJob(t, sv, info.ID, StateCompleted)

	resp = get(fmt.Sprintf("/jobs/%d", info.ID))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("job status: %d", resp.StatusCode)
	}
	var got JobInfo
	json.NewDecoder(resp.Body).Decode(&got)
	if got.State != StateCompleted || got.Result == nil || got.Result.Name != "scripted" {
		t.Errorf("job view %+v lacks the completed result", got)
	}

	resp = get(fmt.Sprintf("/jobs/%d/result", info.ID))
	if resp.StatusCode != http.StatusOK {
		t.Errorf("result: status %d", resp.StatusCode)
	}
	var res experiment.Result
	if err := json.NewDecoder(resp.Body).Decode(&res); err != nil || res.Name != "scripted" {
		t.Errorf("result body: %v %v", res.Name, err)
	}

	if resp := get("/jobs/999"); resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
	}
	if resp := get("/healthz"); resp.StatusCode != http.StatusOK {
		t.Errorf("healthz: status %d", resp.StatusCode)
	}

	if resp := post("/drain", ""); resp.StatusCode != http.StatusAccepted {
		t.Errorf("drain: status %d, want 202", resp.StatusCode)
	}
	if resp := post("/jobs", `{"scenario":"table2","quick":true}`); resp.StatusCode != http.StatusServiceUnavailable {
		t.Errorf("submit while draining: status %d, want 503", resp.StatusCode)
	}
	var h Health
	resp = get("/healthz")
	json.NewDecoder(resp.Body).Decode(&h)
	if h.Status != "draining" {
		t.Errorf("health status %q, want draining", h.Status)
	}
	shutdown(t, sv)
}
