package serve

import (
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"reflect"
	"sort"
	"strings"
	"testing"
	"time"

	"mafic/internal/experiment"
	"mafic/internal/sim"
)

func contextWithTimeout(d time.Duration) (context.Context, context.CancelFunc) {
	return context.WithTimeout(context.Background(), d)
}

// resumableSpec checkpoints often enough that a drain mid-run leaves plenty
// of simulation still to do on resume.
func resumableSpec() JobSpec {
	spec := quickSpec()
	spec.CheckpointEveryMs = ptr(20.0)
	return spec
}

// referenceResult runs the spec's scenario uninterrupted, in-process.
func referenceResult(t *testing.T, spec JobSpec) experiment.Result {
	t.Helper()
	s, err := spec.BuildScenario()
	if err != nil {
		t.Fatalf("build reference scenario: %v", err)
	}
	want, err := experiment.Run(s)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	return want
}

func TestDrainSavesFinalSnapshotAndRestartResumes(t *testing.T) {
	spec := resumableSpec()
	want := referenceResult(t, spec)
	dir := t.TempDir()

	sv1, logs1 := newTestServer(t, Config{Dir: dir, Workers: 1})
	saves := 0
	sv1.hooks.afterSave = func(id uint64, at sim.Time) {
		saves++
		if saves == 2 {
			sv1.Drain()
		}
	}
	sv1.Start()
	if _, err := sv1.Submit(spec); err != nil {
		t.Fatalf("submit: %v", err)
	}
	// The afterSave hook drains mid-run; wait for that before shutting
	// down, or Shutdown's own drain would park the worker with the job
	// still queued.
	select {
	case <-sv1.DrainRequested():
	case <-time.After(30 * time.Second):
		t.Fatal("the checkpoint hook never triggered the drain")
	}
	shutdown(t, sv1)

	info, _ := sv1.Job(1)
	if info.State != StateRunning {
		t.Fatalf("drained job is %s, want still running (it resumes on restart); logs:\n%s", info.State, logs1.String())
	}
	if info.Snapshots == 0 {
		t.Fatal("drain left no snapshot behind")
	}
	if m := sv1.Metrics(); m.Drained != 1 {
		t.Errorf("Drained = %d, want 1", m.Drained)
	}

	// A fresh process over the same dir must pick the job up and finish it
	// bit-identically to the uninterrupted reference.
	sv2, _ := newTestServer(t, Config{Dir: dir, Workers: 1})
	if m := sv2.Metrics(); m.Recovered != 1 {
		t.Fatalf("Recovered = %d, want 1", m.Recovered)
	}
	sv2.Start()
	final := waitJob(t, sv2, 1, StateCompleted)
	if final.ResumedFromMs == nil || *final.ResumedFromMs <= 0 {
		t.Error("job did not record the snapshot time it resumed from")
	}
	if final.Result == nil || !reflect.DeepEqual(*final.Result, want) {
		t.Error("resumed result differs from the uninterrupted reference run")
	}
	if m := sv2.Metrics(); m.Resumed != 1 {
		t.Errorf("Resumed = %d, want 1", m.Resumed)
	}

	// The raw result.json must round-trip to the same result too.
	raw, err := sv2.ResultBytes(1)
	if err != nil {
		t.Fatalf("ResultBytes: %v", err)
	}
	var onDisk experiment.Result
	if err := json.Unmarshal(raw, &onDisk); err != nil {
		t.Fatalf("decode result.json: %v", err)
	}
	if !reflect.DeepEqual(onDisk, want) {
		t.Error("result.json differs from the reference run")
	}
	shutdown(t, sv2)
}

func TestRestartFallsBackPastCorruptNewestSnapshot(t *testing.T) {
	spec := resumableSpec()
	want := referenceResult(t, spec)
	dir := t.TempDir()

	sv1, _ := newTestServer(t, Config{Dir: dir, Workers: 1, Keep: 4})
	saves := 0
	sv1.hooks.afterSave = func(id uint64, at sim.Time) {
		saves++
		if saves == 3 {
			sv1.Drain()
		}
	}
	sv1.Start()
	if _, err := sv1.Submit(spec); err != nil {
		t.Fatalf("submit: %v", err)
	}
	select {
	case <-sv1.DrainRequested():
	case <-time.After(30 * time.Second):
		t.Fatal("the checkpoint hook never triggered the drain")
	}
	shutdown(t, sv1)

	// Tear the newest snapshot in place — the drain-time one.
	names := snapNames(t, filepath.Join(dir, "jobs", "000001"))
	if len(names) < 2 {
		t.Fatalf("need at least 2 snapshots to prove fallback, have %v", names)
	}
	newest := filepath.Join(dir, "jobs", "000001", names[len(names)-1])
	data, err := os.ReadFile(newest)
	if err != nil {
		t.Fatalf("read newest snapshot: %v", err)
	}
	if err := os.WriteFile(newest, data[:len(data)/2], 0o644); err != nil {
		t.Fatalf("truncate newest snapshot: %v", err)
	}

	sv2, logs2 := newTestServer(t, Config{Dir: dir, Workers: 1, Keep: 4})
	sv2.Start()
	final := waitJob(t, sv2, 1, StateCompleted)
	if final.Result == nil || !reflect.DeepEqual(*final.Result, want) {
		t.Error("result after corruption fallback differs from the reference run")
	}
	if m := sv2.Metrics(); m.SnapshotsCorrupt == 0 {
		t.Error("SnapshotsCorrupt = 0; the torn snapshot went unnoticed")
	}
	if !strings.Contains(logs2.String(), "CORRUPT") {
		t.Errorf("fallback was not logged loudly; logs:\n%s", logs2.String())
	}
	shutdown(t, sv2)
}

func TestRecoveryRunsManifestOnlyJobFresh(t *testing.T) {
	// A job that crashed before its first checkpoint: manifest says
	// running, no snapshots. Recovery must start it from scratch.
	dir := t.TempDir()
	jobDir := filepath.Join(dir, "jobs", "000007")
	if err := os.MkdirAll(jobDir, 0o755); err != nil {
		t.Fatal(err)
	}
	spec := quickSpec()
	m := manifest{ID: 7, Spec: spec, State: StateRunning, Attempts: 1, SubmittedAt: time.Now()}
	data, _ := json.Marshal(m)
	if err := os.WriteFile(filepath.Join(jobDir, "job.json"), data, 0o644); err != nil {
		t.Fatal(err)
	}
	want := referenceResult(t, spec)

	sv, _ := newTestServer(t, Config{Dir: dir, Workers: 1})
	if m := sv.Metrics(); m.Recovered != 1 {
		t.Fatalf("Recovered = %d, want 1", m.Recovered)
	}
	sv.Start()
	final := waitJob(t, sv, 7, StateCompleted)
	if final.ResumedFromMs != nil {
		t.Error("job claims to have resumed with no snapshot on disk")
	}
	if final.Result == nil || !reflect.DeepEqual(*final.Result, want) {
		t.Error("fresh recovery run differs from the reference")
	}
	if m := sv.Metrics(); m.Resumed != 0 {
		t.Errorf("Resumed = %d, want 0", m.Resumed)
	}
	// New submissions continue past the recovered ID space.
	info, err := sv.Submit(quickSpec())
	if err != nil {
		t.Fatalf("submit after recovery: %v", err)
	}
	if info.ID != 8 {
		t.Errorf("next job ID = %d, want 8", info.ID)
	}
	waitJob(t, sv, 8, StateCompleted)
	shutdown(t, sv)
}

func TestRecoverySkipsCorruptManifestLoudly(t *testing.T) {
	dir := t.TempDir()
	jobDir := filepath.Join(dir, "jobs", "000003")
	if err := os.MkdirAll(jobDir, 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(filepath.Join(jobDir, "job.json"), []byte("{torn"), 0o644); err != nil {
		t.Fatal(err)
	}
	sv, logs := newTestServer(t, Config{Dir: dir})
	if jobs := sv.Jobs(); len(jobs) != 0 {
		t.Errorf("corrupt manifest produced jobs: %v", jobs)
	}
	if !strings.Contains(logs.String(), "CORRUPT manifest") {
		t.Errorf("corrupt manifest was not logged; logs:\n%s", logs.String())
	}
}

func TestCompletedJobSurvivesRestart(t *testing.T) {
	dir := t.TempDir()
	sv1, _ := newTestServer(t, Config{Dir: dir, Workers: 1})
	sv1.Start()
	spec := quickSpec()
	if _, err := sv1.Submit(spec); err != nil {
		t.Fatalf("submit: %v", err)
	}
	done := waitJob(t, sv1, 1, StateCompleted)
	shutdown(t, sv1)

	sv2, _ := newTestServer(t, Config{Dir: dir, Workers: 1})
	info, ok := sv2.Job(1)
	if !ok || info.State != StateCompleted {
		t.Fatalf("completed job lost across restart: %+v", info)
	}
	if info.Result == nil || !reflect.DeepEqual(*info.Result, *done.Result) {
		t.Error("restart did not reload the completed result")
	}
	if m := sv2.Metrics(); m.Recovered != 0 {
		t.Errorf("completed job was re-enqueued: Recovered = %d", m.Recovered)
	}
}

func snapNames(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read %s: %v", dir, err)
	}
	var names []string
	for _, e := range entries {
		if strings.HasSuffix(e.Name(), ".snap") {
			names = append(names, e.Name())
		}
	}
	sort.Strings(names) // seq-prefixed: lexical order is write order
	return names
}
