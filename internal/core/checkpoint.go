package core

import (
	"fmt"

	"mafic/internal/flowtable"
	"mafic/internal/netsim"
	"mafic/internal/sim"
)

// ProbeMemoryEntry is one flow's probing-memory count in a snapshot.
type ProbeMemoryEntry struct {
	LabelHash uint64
	Count     uint16
}

// DefenderState is the dynamic state of one MAFIC defender: activation,
// counters, flow tables and the probing memory. Pending probe-cycle events
// are captured separately through CaptureProbeRecord, keyed off the
// scheduler's pending-event walk.
type DefenderState struct {
	Active      bool
	VictimIP    netsim.IP
	Stats       Stats
	ProbeSeqs   uint64
	ProbeMemory []ProbeMemoryEntry
	Tables      flowtable.TablesState
}

// CheckpointState captures the defender's dynamic state. The probing memory
// is emitted in ascending label-hash order so the snapshot does not depend on
// map iteration order.
func (d *Defender) CheckpointState() DefenderState {
	st := DefenderState{
		Active:    d.active,
		VictimIP:  d.victimIP,
		Stats:     d.stats,
		ProbeSeqs: d.probeSeqs,
		Tables:    d.tables.CheckpointState(),
	}
	if len(d.probeMemory) > 0 {
		st.ProbeMemory = make([]ProbeMemoryEntry, 0, len(d.probeMemory))
		for h, n := range d.probeMemory {
			st.ProbeMemory = append(st.ProbeMemory, ProbeMemoryEntry{LabelHash: h, Count: n})
		}
		for i := 1; i < len(st.ProbeMemory); i++ {
			for j := i; j > 0 && st.ProbeMemory[j].LabelHash < st.ProbeMemory[j-1].LabelHash; j-- {
				st.ProbeMemory[j], st.ProbeMemory[j-1] = st.ProbeMemory[j-1], st.ProbeMemory[j]
			}
		}
	}
	return st
}

// RestoreState overlays captured dynamic state onto a rebuilt defender.
func (d *Defender) RestoreState(st DefenderState) error {
	d.active = st.Active
	d.victimIP = st.VictimIP
	d.stats = st.Stats
	d.probeSeqs = st.ProbeSeqs
	clear(d.probeMemory)
	if len(st.ProbeMemory) > 0 && d.probeMemory == nil {
		d.probeMemory = make(map[uint64]uint16, len(st.ProbeMemory))
	}
	for _, pm := range st.ProbeMemory {
		d.probeMemory[pm.LabelHash] = pm.Count
	}
	return d.tables.RestoreState(st.Tables)
}

// ProbeHandlers returns the defender's two ArgHandler identities. A
// checkpoint capture matches them against pending events to recognise this
// defender's probe-injection and window-close events.
func (d *Defender) ProbeHandlers() (probeSend, windowEnd sim.ArgHandler) {
	return &d.probeSend, &d.windowEnd
}

// ProbeRecordState is the serializable form of one pending probe record. A
// live record (its flow-table entry still describes the same flow) re-binds
// to the restored entry by label hash; a dead one binds to a sentinel whose
// generation can never match, so the restored events no-op and recycle the
// record exactly as the original run's would have.
type ProbeRecordState struct {
	Live      bool
	EntryHash uint64
	Label     netsim.FlowLabel
	Proto     netsim.Protocol
	Seq       int64
}

// deadProbeEntry is the sentinel dead probe records bind to after a restore.
// Restored records carry gen = deadProbeEntry.Gen + 1, which never matches.
var deadProbeEntry flowtable.Entry

// CaptureProbeRecord describes the probe record a pending probe-cycle event
// carries as its payload.
func (d *Defender) CaptureProbeRecord(arg any) (ProbeRecordState, error) {
	rec, ok := arg.(*probeRecord)
	if !ok {
		return ProbeRecordState{}, fmt.Errorf("core: probe event payload is %T, not a probe record", arg)
	}
	st := ProbeRecordState{Label: rec.label, Proto: rec.proto, Seq: rec.seq}
	if rec.entry != nil && rec.entry.Gen == rec.gen {
		st.Live = true
		st.EntryHash = rec.entry.LabelHash
	}
	return st, nil
}

// RestoreProbeRecord materializes a probe record from its captured state,
// for use as the payload of the re-inserted probe-cycle events. The two
// events of one cycle share one record; the caller is responsible for
// passing the same returned value to both.
func (d *Defender) RestoreProbeRecord(st ProbeRecordState) (any, error) {
	rec := d.getProbeRecord()
	rec.label, rec.proto, rec.seq = st.Label, st.Proto, st.Seq
	if !st.Live {
		rec.entry = &deadProbeEntry
		rec.gen = deadProbeEntry.Gen + 1
		return rec, nil
	}
	e, state := d.tables.Lookup(st.EntryHash)
	if e == nil || state == flowtable.StateUnknown {
		return nil, fmt.Errorf("core: restore found no flow-table entry for live probe record %x", st.EntryHash)
	}
	rec.entry, rec.gen = e, e.Gen
	return rec, nil
}

// CheckpointTypes lists this package's structs that carry snapshotted state.
var CheckpointTypes = []any{
	Defender{},
	Stats{},
	probeRecord{},
}
