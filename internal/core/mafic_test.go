package core

import (
	"errors"
	"testing"

	"mafic/internal/flowtable"
	"mafic/internal/netsim"
	"mafic/internal/sim"
)

// testEnv is a hand-built micro-topology: source host -- atr -- victim host,
// with a bystander host also attached to the ATR so spoofed-legitimate
// probes have somewhere to go.
type testEnv struct {
	net       *netsim.Network
	sched     *sim.Scheduler
	atr       *netsim.Router
	source    *netsim.Host
	victim    *netsim.Host
	bystander *netsim.Host
}

func newTestEnv(t *testing.T) *testEnv {
	t.Helper()
	sched := sim.NewScheduler()
	net := netsim.New(sched, sim.NewRNG(1))
	atr := net.AddRouter("atr")
	source := net.AddHost("source", netsim.IP(0xc0a80001))
	victim := net.AddHost("victim", netsim.IP(0x0a000001))
	bystander := net.AddHost("bystander", netsim.IP(0xcb007101))
	cfg := netsim.LinkConfig{BandwidthBps: 100e6, Delay: sim.Millisecond, QueueLen: 64}
	for _, h := range []*netsim.Host{source, victim, bystander} {
		h.AttachTo(atr.ID())
		if err := net.ConnectDuplex(h.ID(), atr.ID(), cfg); err != nil {
			t.Fatalf("connect: %v", err)
		}
		h.SetDefaultHandler(func(*netsim.Packet, sim.Time) {})
	}
	return &testEnv{net: net, sched: sched, atr: atr, source: source, victim: victim, bystander: bystander}
}

func (e *testEnv) defender(t *testing.T, mutate func(*Config)) *Defender {
	t.Helper()
	cfg := DefaultConfig()
	if mutate != nil {
		mutate(&cfg)
	}
	d, err := NewDefender(cfg, e.atr, sim.NewRNG(7))
	if err != nil {
		t.Fatalf("NewDefender: %v", err)
	}
	e.atr.AttachFilter(d)
	return d
}

func (e *testEnv) dataPacket(src netsim.IP, srcPort uint16, seq int64, malicious bool) *netsim.Packet {
	return &netsim.Packet{
		ID: e.net.NextPacketID(),
		Label: netsim.FlowLabel{
			SrcIP: src, DstIP: e.victim.PrimaryIP(), SrcPort: srcPort, DstPort: 80,
		},
		Kind: netsim.KindData, Proto: netsim.ProtoTCP, Seq: seq, Size: 500, Malicious: malicious,
	}
}

func TestConfigValidate(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Config)
		ok     bool
	}{
		{name: "default", mutate: nil, ok: true},
		{name: "negative Pd", mutate: func(c *Config) { c.DropProbability = -0.1 }, ok: false},
		{name: "Pd above one", mutate: func(c *Config) { c.DropProbability = 1.5 }, ok: false},
		{name: "zero RTT", mutate: func(c *Config) { c.RTT = 0 }, ok: false},
		{name: "zero window", mutate: func(c *Config) { c.ProbeWindowRTTs = 0 }, ok: false},
		{name: "negative dup acks", mutate: func(c *Config) { c.DupAcks = -1 }, ok: false},
		{name: "hardened", mutate: func(c *Config) { *c = HardenedConfig() }, ok: true},
		{name: "negative reprobe idle", mutate: func(c *Config) { c.ReprobeAfterIdle = -sim.Millisecond }, ok: false},
		{name: "negative condemn probes", mutate: func(c *Config) { c.CondemnProbes = -1 }, ok: false},
		{name: "negative memory capacity", mutate: func(c *Config) { c.ProbeMemoryCapacity = -1 }, ok: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			if tt.mutate != nil {
				tt.mutate(&cfg)
			}
			err := cfg.Validate()
			if tt.ok && err != nil {
				t.Fatalf("unexpected error: %v", err)
			}
			if !tt.ok && !errors.Is(err, ErrConfig) {
				t.Fatalf("want ErrConfig, got %v", err)
			}
		})
	}
}

func TestNewDefenderRequiresRouter(t *testing.T) {
	if _, err := NewDefender(DefaultConfig(), nil, nil); !errors.Is(err, ErrConfig) {
		t.Fatalf("want ErrConfig for nil router, got %v", err)
	}
}

func TestInactiveDefenderForwards(t *testing.T) {
	e := newTestEnv(t)
	d := e.defender(t, nil)
	pkt := e.dataPacket(e.source.PrimaryIP(), 1000, 1, false)
	if got := d.Handle(pkt, 0, e.atr); got != netsim.ActionForward {
		t.Fatal("inactive defender must forward")
	}
	if d.Stats().Examined != 0 {
		t.Fatal("inactive defender must not count packets")
	}
}

func TestNonVictimTrafficAndNonDataForwarded(t *testing.T) {
	e := newTestEnv(t)
	d := e.defender(t, nil)
	d.Activate(e.victim.PrimaryIP())

	other := e.dataPacket(e.source.PrimaryIP(), 1000, 1, false)
	other.Label.DstIP = e.bystander.PrimaryIP()
	if d.Handle(other, 0, e.atr) != netsim.ActionForward {
		t.Fatal("traffic to other destinations must pass")
	}
	for _, kind := range []netsim.PacketKind{netsim.KindAck, netsim.KindDupAck, netsim.KindProbe, netsim.KindControl} {
		pkt := e.dataPacket(e.source.PrimaryIP(), 1000, 1, false)
		pkt.Kind = kind
		if d.Handle(pkt, 0, e.atr) != netsim.ActionForward {
			t.Fatalf("%v packets must pass", kind)
		}
	}
	if d.Stats().Examined != 0 {
		t.Fatal("pass-through traffic must not be counted as examined")
	}
}

func TestIllegalSourceGoesToPDT(t *testing.T) {
	e := newTestEnv(t)
	d := e.defender(t, nil)
	d.Activate(e.victim.PrimaryIP())

	unroutable := netsim.IP(0x01020304)
	for i := int64(1); i <= 5; i++ {
		pkt := e.dataPacket(unroutable, 7777, i, true)
		if d.Handle(pkt, sim.Time(i)*sim.Millisecond, e.atr) != netsim.ActionDrop {
			t.Fatal("illegal-source packet must be dropped")
		}
	}
	st := d.Stats()
	if st.DroppedIllegal != 5 || st.Dropped != 5 {
		t.Fatalf("illegal drops = %d/%d, want 5/5", st.DroppedIllegal, st.Dropped)
	}
	if st.FlowsIllegal != 1 {
		t.Fatalf("illegal flows = %d, want 1 (same flow label)", st.FlowsIllegal)
	}
	if _, state := d.Tables().Lookup((netsim.FlowLabel{SrcIP: unroutable, DstIP: e.victim.PrimaryIP(), SrcPort: 7777, DstPort: 80}).Hash()); state != flowtable.StatePermanentDrop {
		t.Fatal("illegal flow should be in the PDT")
	}
	if st.ProbesSent != 0 {
		t.Fatal("no probes should be sent for illegal-source flows")
	}
}

func TestFirstSightDropStartsProbe(t *testing.T) {
	e := newTestEnv(t)
	d := e.defender(t, func(c *Config) { c.DropProbability = 1.0 })
	d.Activate(e.victim.PrimaryIP())

	pkt := e.dataPacket(e.source.PrimaryIP(), 1000, 1, false)
	if d.Handle(pkt, 0, e.atr) != netsim.ActionDrop {
		t.Fatal("with Pd=1 the first packet must be dropped")
	}
	st := d.Stats()
	if st.FlowsProbed != 1 {
		t.Fatalf("flows probed = %d, want 1", st.FlowsProbed)
	}
	if _, state := d.Tables().Lookup(pkt.Label.Hash()); state != flowtable.StateSuspicious {
		t.Fatal("flow should be in the SFT after the first drop")
	}
	// The duplicated ACK probes are injected one RTT into the window and
	// must reach the claimed source.
	probes := 0
	e.source.Register(pkt.Label.Reverse(), func(p *netsim.Packet, _ sim.Time) {
		if p.Kind == netsim.KindDupAck {
			probes++
		}
	})
	if err := e.sched.RunUntil(d.Config().RTT + 50*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if got := d.Stats().ProbesSent; got != uint64(d.Config().DupAcks) {
		t.Fatalf("probes sent = %d, want %d", got, d.Config().DupAcks)
	}
	if probes != d.Config().DupAcks {
		t.Fatalf("probes delivered = %d, want %d", probes, d.Config().DupAcks)
	}
}

func TestZeroDropProbabilityNeverProbes(t *testing.T) {
	e := newTestEnv(t)
	d := e.defender(t, func(c *Config) { c.DropProbability = 0 })
	d.Activate(e.victim.PrimaryIP())
	for i := int64(1); i <= 100; i++ {
		pkt := e.dataPacket(e.source.PrimaryIP(), 1000, i, false)
		if d.Handle(pkt, sim.Time(i)*sim.Millisecond, e.atr) != netsim.ActionForward {
			t.Fatal("with Pd=0 every packet must be forwarded")
		}
	}
	if d.Stats().FlowsProbed != 0 {
		t.Fatal("no flow should enter the SFT with Pd=0")
	}
}

// driveFlow pushes packets of one flow through the defender: `first` packets
// spread over the first half of the probing window and `second` packets over
// the second half, then runs the scheduler past the classification deadline.
func driveFlow(t *testing.T, e *testEnv, d *Defender, src netsim.IP, srcPort uint16, first, second int, malicious bool) netsim.FlowLabel {
	t.Helper()
	window := sim.Time(float64(d.Config().RTT) * d.Config().ProbeWindowRTTs)
	half := window / 2
	label := netsim.FlowLabel{SrcIP: src, DstIP: e.victim.PrimaryIP(), SrcPort: srcPort, DstPort: 80}

	seq := int64(0)
	emit := func(at sim.Time) {
		seq++
		pkt := e.dataPacket(src, srcPort, seq, malicious)
		d.Handle(pkt, at, e.atr)
	}
	// First packet at t=0 opens the SFT entry (Pd must be 1 in tests
	// using this helper so the flow enters the SFT deterministically).
	emit(0)
	for i := 0; i < first; i++ {
		emit(sim.Time(i+1) * half / sim.Time(first+1))
	}
	for i := 0; i < second; i++ {
		emit(half + sim.Time(i+1)*half/sim.Time(second+1))
	}
	if err := e.sched.RunUntil(window + sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	return label
}

func TestUnresponsiveFlowCondemned(t *testing.T) {
	e := newTestEnv(t)
	d := e.defender(t, func(c *Config) { c.DropProbability = 1.0 })
	d.Activate(e.victim.PrimaryIP())

	// Constant arrivals through both halves of the window: not responsive.
	label := driveFlow(t, e, d, e.bystander.PrimaryIP(), 5555, 10, 10, true)

	if _, state := d.Tables().Lookup(label.Hash()); state != flowtable.StatePermanentDrop {
		t.Fatalf("unresponsive flow in %v, want PDT", state)
	}
	if d.Stats().FlowsCondemned != 1 {
		t.Fatalf("condemned = %d, want 1", d.Stats().FlowsCondemned)
	}
	// Every later packet of the flow is dropped unconditionally.
	pkt := e.dataPacket(e.bystander.PrimaryIP(), 5555, 99, true)
	if d.Handle(pkt, e.sched.Now()+sim.Millisecond, e.atr) != netsim.ActionDrop {
		t.Fatal("packets of a condemned flow must be dropped")
	}
	if d.Stats().DroppedPDT == 0 {
		t.Fatal("PDT drop counter not updated")
	}
}

func TestResponsiveFlowPromoted(t *testing.T) {
	e := newTestEnv(t)
	d := e.defender(t, func(c *Config) { c.DropProbability = 1.0 })
	d.Activate(e.victim.PrimaryIP())

	// Many arrivals in the first half, almost none in the second: the
	// source backed off after the probe.
	label := driveFlow(t, e, d, e.source.PrimaryIP(), 1000, 12, 1, false)

	if _, state := d.Tables().Lookup(label.Hash()); state != flowtable.StateNice {
		t.Fatalf("responsive flow in %v, want NFT", state)
	}
	if d.Stats().FlowsNice != 1 {
		t.Fatalf("nice flows = %d, want 1", d.Stats().FlowsNice)
	}
	// Later packets of a nice flow are never dropped again.
	pkt := e.dataPacket(e.source.PrimaryIP(), 1000, 99, false)
	if d.Handle(pkt, e.sched.Now()+sim.Millisecond, e.atr) != netsim.ActionForward {
		t.Fatal("packets of a nice flow must be forwarded")
	}
}

func TestSparseFlowGetsBenefitOfDoubt(t *testing.T) {
	e := newTestEnv(t)
	d := e.defender(t, func(c *Config) {
		c.DropProbability = 1.0
		c.MinProbePackets = 4
	})
	d.Activate(e.victim.PrimaryIP())

	// Only two packets inside the window: below MinProbePackets.
	label := driveFlow(t, e, d, e.source.PrimaryIP(), 2000, 1, 1, false)
	if _, state := d.Tables().Lookup(label.Hash()); state != flowtable.StateNice {
		t.Fatalf("sparse flow in %v, want NFT", state)
	}
}

func TestLateOnlyFlowCondemned(t *testing.T) {
	e := newTestEnv(t)
	d := e.defender(t, func(c *Config) {
		c.DropProbability = 1.0
		c.MinProbePackets = 4
	})
	d.Activate(e.victim.PrimaryIP())

	// Nothing in the first half and a burst in the second half: the flow
	// ramped up after the probe instead of backing off.
	label := driveFlow(t, e, d, e.bystander.PrimaryIP(), 3000, 0, 10, true)
	if _, state := d.Tables().Lookup(label.Hash()); state != flowtable.StatePermanentDrop {
		t.Fatalf("late-ramp flow in %v, want PDT", state)
	}
}

func TestDeactivateFlushesTables(t *testing.T) {
	e := newTestEnv(t)
	d := e.defender(t, func(c *Config) { c.DropProbability = 1.0 })
	d.Activate(e.victim.PrimaryIP())

	label := driveFlow(t, e, d, e.bystander.PrimaryIP(), 5555, 10, 10, true)
	if _, state := d.Tables().Lookup(label.Hash()); state != flowtable.StatePermanentDrop {
		t.Fatal("setup: flow should be condemned")
	}
	d.Deactivate()
	if d.Active() {
		t.Fatal("defender still active after Deactivate")
	}
	if _, state := d.Tables().Lookup(label.Hash()); state != flowtable.StateUnknown {
		t.Fatal("Deactivate must flush all tables")
	}
	pkt := e.dataPacket(e.bystander.PrimaryIP(), 5555, 100, true)
	if d.Handle(pkt, e.sched.Now(), e.atr) != netsim.ActionForward {
		t.Fatal("deactivated defender must forward")
	}
}

func TestActivateIdempotentAndRetarget(t *testing.T) {
	e := newTestEnv(t)
	d := e.defender(t, func(c *Config) { c.DropProbability = 1.0 })
	d.Activate(e.victim.PrimaryIP())

	pkt := e.dataPacket(e.source.PrimaryIP(), 1000, 1, false)
	d.Handle(pkt, 0, e.atr)
	if _, state := d.Tables().Lookup(pkt.Label.Hash()); state != flowtable.StateSuspicious {
		t.Fatal("setup: flow should be suspicious")
	}
	// Re-activating with the same victim keeps state.
	d.Activate(e.victim.PrimaryIP())
	if _, state := d.Tables().Lookup(pkt.Label.Hash()); state != flowtable.StateSuspicious {
		t.Fatal("re-activation with the same victim must keep tables")
	}
	// Switching victims flushes state.
	d.Activate(e.bystander.PrimaryIP())
	if _, state := d.Tables().Lookup(pkt.Label.Hash()); state != flowtable.StateUnknown {
		t.Fatal("switching victims must flush tables")
	}
	if d.VictimIP() != e.bystander.PrimaryIP() {
		t.Fatal("victim address not updated")
	}
}

func TestClassificationSkippedAfterDeactivate(t *testing.T) {
	e := newTestEnv(t)
	d := e.defender(t, func(c *Config) { c.DropProbability = 1.0 })
	d.Activate(e.victim.PrimaryIP())
	pkt := e.dataPacket(e.bystander.PrimaryIP(), 4000, 1, true)
	d.Handle(pkt, 0, e.atr)
	d.Deactivate()
	// Running past the probe deadline must not classify anything.
	if err := e.sched.RunUntil(sim.Second); err != nil {
		t.Fatal(err)
	}
	st := d.Stats()
	if st.FlowsNice != 0 || st.FlowsCondemned != 0 {
		t.Fatal("classification must not run after deactivation")
	}
}

func TestStatsAccounting(t *testing.T) {
	e := newTestEnv(t)
	d := e.defender(t, func(c *Config) { c.DropProbability = 0.5 })
	d.Activate(e.victim.PrimaryIP())
	const n = 2000
	for i := int64(0); i < n; i++ {
		pkt := e.dataPacket(e.source.PrimaryIP(), uint16(1000+i%8), i, false)
		d.Handle(pkt, sim.Time(i)*100*sim.Microsecond, e.atr)
	}
	st := d.Stats()
	if st.Examined != n {
		t.Fatalf("examined = %d, want %d", st.Examined, n)
	}
	if st.Dropped+st.Forwarded != st.Examined {
		t.Fatalf("dropped(%d)+forwarded(%d) != examined(%d)", st.Dropped, st.Forwarded, st.Examined)
	}
	if st.Dropped != st.DroppedIllegal+st.DroppedPDT+st.DroppedProbing {
		t.Fatal("drop reason counters do not sum to total drops")
	}
	ratio := float64(st.Dropped) / float64(st.Examined)
	if ratio < 0.35 || ratio > 0.65 {
		t.Fatalf("drop ratio %.2f too far from Pd=0.5 during probing", ratio)
	}
}

func TestIdleNiceFlowReprobedAndCondemnedByMemory(t *testing.T) {
	e := newTestEnv(t)
	d := e.defender(t, func(c *Config) {
		c.DropProbability = 1.0
		c.ReprobeAfterIdle = 100 * sim.Millisecond
		c.CondemnProbes = 2
	})
	d.Activate(e.victim.PrimaryIP())

	// Probe 1: the flow backs off inside the window and earns the NFT.
	label := driveFlow(t, e, d, e.source.PrimaryIP(), 1000, 12, 1, false)
	if _, state := d.Tables().Lookup(label.Hash()); state != flowtable.StateNice {
		t.Fatalf("setup: flow in %v, want NFT", state)
	}
	if d.ProbeMemorySize() != 1 {
		t.Fatalf("probe memory tracks %d flows, want 1", d.ProbeMemorySize())
	}

	// The source goes silent for a rotation slot, then returns: its nice
	// classification must be revoked and a second probe cycle must open.
	window := sim.Time(float64(d.Config().RTT) * d.Config().ProbeWindowRTTs)
	back := e.sched.Now() + 150*sim.Millisecond
	seq := int64(100)
	emit := func(at sim.Time) {
		seq++
		d.Handle(e.dataPacket(e.source.PrimaryIP(), 1000, seq, false), at, e.atr)
	}
	emit(back)
	if got := d.Stats().FlowsReprobed; got != 1 {
		t.Fatalf("flows reprobed = %d, want 1", got)
	}
	if _, state := d.Tables().Lookup(label.Hash()); state != flowtable.StateSuspicious {
		t.Fatalf("returned flow in %v, want SFT", state)
	}

	// Probe 2: the flow fakes responsiveness again — but the probing memory
	// has now seen it twice, so classification condemns it anyway.
	half := window / 2
	for i := 0; i < 10; i++ {
		emit(back + sim.Time(i+1)*half/12)
	}
	if err := e.sched.RunUntil(back + window + sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if _, state := d.Tables().Lookup(label.Hash()); state != flowtable.StatePermanentDrop {
		t.Fatalf("twice-probed flow in %v, want PDT", state)
	}
	if got := d.Stats().FlowsRepeatCondemned; got != 1 {
		t.Fatalf("repeat-condemned = %d, want 1", got)
	}
}

func TestContinuousNiceFlowNeverReprobed(t *testing.T) {
	e := newTestEnv(t)
	d := e.defender(t, func(c *Config) {
		c.DropProbability = 1.0
		c.ReprobeAfterIdle = 100 * sim.Millisecond
		c.CondemnProbes = 2
	})
	d.Activate(e.victim.PrimaryIP())

	label := driveFlow(t, e, d, e.source.PrimaryIP(), 1000, 12, 1, false)
	if _, state := d.Tables().Lookup(label.Hash()); state != flowtable.StateNice {
		t.Fatalf("setup: flow in %v, want NFT", state)
	}
	// Steady pacing well under the idle threshold, for several thresholds'
	// worth of time: the hardened defender must leave the flow alone.
	seq := int64(100)
	for at := e.sched.Now(); at < e.sched.Now()+400*sim.Millisecond; at += 10 * sim.Millisecond {
		seq++
		if d.Handle(e.dataPacket(e.source.PrimaryIP(), 1000, seq, false), at, e.atr) != netsim.ActionForward {
			t.Fatal("steadily pacing nice flow must be forwarded")
		}
	}
	if got := d.Stats().FlowsReprobed; got != 0 {
		t.Fatalf("flows reprobed = %d, want 0", got)
	}
}

func TestProbeMemoryCapacityStopsAdmitting(t *testing.T) {
	e := newTestEnv(t)
	d := e.defender(t, func(c *Config) {
		c.DropProbability = 1.0
		c.CondemnProbes = 1
		c.ProbeMemoryCapacity = 1
	})
	d.Activate(e.victim.PrimaryIP())

	d.Handle(e.dataPacket(e.source.PrimaryIP(), 1000, 1, false), 0, e.atr)
	d.Handle(e.dataPacket(e.source.PrimaryIP(), 2000, 1, false), 0, e.atr)
	if d.Stats().FlowsProbed != 2 {
		t.Fatalf("flows probed = %d, want 2", d.Stats().FlowsProbed)
	}
	if d.ProbeMemorySize() != 1 {
		t.Fatalf("probe memory tracks %d flows, want capacity-bounded 1", d.ProbeMemorySize())
	}
}

func TestPaperConfigHasNoProbeMemory(t *testing.T) {
	e := newTestEnv(t)
	d := e.defender(t, func(c *Config) { c.DropProbability = 1.0 })
	d.Activate(e.victim.PrimaryIP())
	d.Handle(e.dataPacket(e.source.PrimaryIP(), 1000, 1, false), 0, e.atr)
	if d.ProbeMemorySize() != 0 {
		t.Fatal("paper-faithful config must not build a probing memory")
	}
}

func TestDefenderAccessors(t *testing.T) {
	e := newTestEnv(t)
	d := e.defender(t, nil)
	if d.Name() != FilterName {
		t.Fatal("Name mismatch")
	}
	if d.Router() != e.atr {
		t.Fatal("Router mismatch")
	}
	if d.Active() {
		t.Fatal("new defender should be inactive")
	}
	if d.Config().DropProbability != DefaultConfig().DropProbability {
		t.Fatal("Config accessor mismatch")
	}
}
