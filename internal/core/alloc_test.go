package core

import (
	"testing"

	"mafic/internal/flowtable"
	"mafic/internal/netsim"
	"mafic/internal/sim"
)

// TestProbeCycleSteadyStateDoesNotAllocate pins the slab-backed probing
// path: once the flow tables, probe-record slabs, packet pool and scheduler
// arena are warm, a complete probe cycle — first sight, SFT insert, dup-ACK
// injection, window-close classification, table flush — performs no heap
// allocation.
func TestProbeCycleSteadyStateDoesNotAllocate(t *testing.T) {
	e := newTestEnv(t)
	d := e.defender(t, func(c *Config) { c.DropProbability = 1 })
	victimIP := e.victim.PrimaryIP()

	label := netsim.FlowLabel{
		SrcIP: e.source.PrimaryIP(), DstIP: victimIP, SrcPort: 4242, DstPort: 80,
	}
	pkt := &netsim.Packet{
		Label: label, Kind: netsim.KindData, Proto: netsim.ProtoTCP, Seq: 1, Size: 500,
	}
	pkt.SetFlowHash(label.Hash())

	cycle := func() {
		d.Activate(victimIP)
		if got := d.Handle(pkt, e.sched.Now(), e.atr); got != netsim.ActionDrop {
			t.Fatalf("first-sight packet not dropped into probing: %v", got)
		}
		// Drain the probe injection and the window-close classification.
		if err := e.sched.Run(); err != nil {
			t.Fatalf("drain: %v", err)
		}
		d.Deactivate()
	}
	for i := 0; i < 4; i++ {
		cycle()
	}

	if allocs := testing.AllocsPerRun(100, cycle); allocs != 0 {
		t.Fatalf("steady-state probe cycle allocated %.1f times per cycle", allocs)
	}
}

// TestDefenderReleaseReuse guards defender pooling hygiene: a released
// defender reused by NewDefender must come back with zeroed stats, empty
// tables and the new run's wiring.
func TestDefenderReleaseReuse(t *testing.T) {
	e := newTestEnv(t)
	d := e.defender(t, func(c *Config) { c.DropProbability = 1 })
	d.Activate(e.victim.PrimaryIP())
	pkt := e.dataPacket(e.source.PrimaryIP(), 999, 1, true)
	pkt.SetFlowHash(pkt.Label.Hash())
	d.Handle(pkt, 0, e.atr)
	if d.Stats().FlowsProbed != 1 {
		t.Fatalf("setup: expected one probed flow, got %+v", d.Stats())
	}
	d.Release()

	d2, err := NewDefender(DefaultConfig(), e.atr, sim.NewRNG(3))
	if err != nil {
		t.Fatalf("NewDefender after release: %v", err)
	}
	if d2 != d {
		t.Skip("pool handed out a different object; reset not observable")
	}
	if d2.Active() {
		t.Fatal("reused defender still active")
	}
	if s := d2.Stats(); s != (Stats{}) {
		t.Fatalf("reused defender kept stats: %+v", s)
	}
	if sft, nft, pdt := d2.Tables().Sizes(); sft+nft+pdt != 0 {
		t.Fatalf("reused defender kept table entries: %d/%d/%d", sft, nft, pdt)
	}
	if _, state := d2.Tables().Lookup(pkt.FlowHash()); state != flowtable.StateUnknown {
		t.Fatalf("old flow still tracked after reuse: %v", state)
	}
}
