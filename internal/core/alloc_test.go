package core

import (
	"testing"

	"mafic/internal/flowtable"
	"mafic/internal/netsim"
	"mafic/internal/sim"
)

// TestProbeCycleSteadyStateDoesNotAllocate pins the slab-backed probing
// path: once the flow tables, probe-record slabs, packet pool and scheduler
// arena are warm, a complete probe cycle — first sight, SFT insert, dup-ACK
// injection, window-close classification, table flush — performs no heap
// allocation.
func TestProbeCycleSteadyStateDoesNotAllocate(t *testing.T) {
	e := newTestEnv(t)
	d := e.defender(t, func(c *Config) { c.DropProbability = 1 })
	victimIP := e.victim.PrimaryIP()

	label := netsim.FlowLabel{
		SrcIP: e.source.PrimaryIP(), DstIP: victimIP, SrcPort: 4242, DstPort: 80,
	}
	pkt := &netsim.Packet{
		Label: label, Kind: netsim.KindData, Proto: netsim.ProtoTCP, Seq: 1, Size: 500,
	}
	pkt.SetFlowHash(label.Hash())

	cycle := func() {
		d.Activate(victimIP)
		if got := d.Handle(pkt, e.sched.Now(), e.atr); got != netsim.ActionDrop {
			t.Fatalf("first-sight packet not dropped into probing: %v", got)
		}
		// Drain the probe injection and the window-close classification.
		if err := e.sched.Run(); err != nil {
			t.Fatalf("drain: %v", err)
		}
		d.Deactivate()
	}
	for i := 0; i < 4; i++ {
		cycle()
	}

	if allocs := testing.AllocsPerRun(100, cycle); allocs != 0 {
		t.Fatalf("steady-state probe cycle allocated %.1f times per cycle", allocs)
	}
}

// TestHardenedProbeCycleSteadyStateDoesNotAllocate is the hardened twin of
// the pin above: with probing memory enabled, the steady-state cycle walks
// the repeat-condemnation path (memory lookup, saturating increment,
// classification override into the PDT) and must still not allocate.
func TestHardenedProbeCycleSteadyStateDoesNotAllocate(t *testing.T) {
	e := newTestEnv(t)
	d := e.defender(t, func(c *Config) {
		h := HardenedConfig()
		c.ReprobeAfterIdle = h.ReprobeAfterIdle
		c.CondemnProbes = h.CondemnProbes
		c.ProbeMemoryCapacity = h.ProbeMemoryCapacity
		c.DropProbability = 1
	})
	victimIP := e.victim.PrimaryIP()

	label := netsim.FlowLabel{
		SrcIP: e.source.PrimaryIP(), DstIP: victimIP, SrcPort: 4242, DstPort: 80,
	}
	pkt := &netsim.Packet{
		Label: label, Kind: netsim.KindData, Proto: netsim.ProtoTCP, Seq: 1, Size: 500,
	}
	pkt.SetFlowHash(label.Hash())

	cycle := func() {
		d.Activate(victimIP)
		if got := d.Handle(pkt, e.sched.Now(), e.atr); got != netsim.ActionDrop {
			t.Fatalf("first-sight packet not dropped into probing: %v", got)
		}
		if err := e.sched.Run(); err != nil {
			t.Fatalf("drain: %v", err)
		}
		d.Deactivate()
	}
	// Warm past CondemnProbes so steady-state cycles condemn via memory.
	for i := 0; i < 4; i++ {
		cycle()
	}
	if got := d.Stats().FlowsRepeatCondemned; got == 0 {
		t.Fatal("warmup never hit the repeat-condemnation path")
	}

	if allocs := testing.AllocsPerRun(100, cycle); allocs != 0 {
		t.Fatalf("hardened steady-state probe cycle allocated %.1f times per cycle", allocs)
	}
	if d.ProbeMemorySize() != 1 {
		t.Fatalf("probing memory tracks %d flows, want 1", d.ProbeMemorySize())
	}
}

// TestHardenedReprobeSteadyStateDoesNotAllocate pins the other hardened hot
// path: an established NFT flow that goes idle past ReprobeAfterIdle is
// demoted and re-probed on its next packet. Once warm, a full idle→reprobe→
// re-promotion cycle (packet handling, memory bump, probe injection,
// window-close classification) performs no heap allocation.
func TestHardenedReprobeSteadyStateDoesNotAllocate(t *testing.T) {
	e := newTestEnv(t)
	d := e.defender(t, func(c *Config) {
		c.ReprobeAfterIdle = 100 * sim.Millisecond
		// High enough that the flow is re-promoted every cycle instead of
		// landing in the PDT, so the reprobe path stays hot.
		c.CondemnProbes = 1 << 14
		c.DropProbability = 1
	})
	victimIP := e.victim.PrimaryIP()
	d.Activate(victimIP)

	label := netsim.FlowLabel{
		SrcIP: e.source.PrimaryIP(), DstIP: victimIP, SrcPort: 4243, DstPort: 80,
	}
	pkt := &netsim.Packet{
		Label: label, Kind: netsim.KindData, Proto: netsim.ProtoTCP, Seq: 1, Size: 500,
	}
	pkt.SetFlowHash(label.Hash())

	window := d.Config().probeWindow()
	idle := d.Config().ReprobeAfterIdle
	now := sim.Time(0)

	cycle := func() {
		now += idle + window
		d.Handle(pkt, now, e.atr)
		if err := e.sched.RunUntil(now + window + sim.Millisecond); err != nil {
			t.Fatalf("drain: %v", err)
		}
	}
	for i := 0; i < 4; i++ {
		cycle()
	}
	if got := d.Stats().FlowsReprobed; got < 3 {
		t.Fatalf("warmup reprobed %d times, want >= 3", got)
	}

	if allocs := testing.AllocsPerRun(100, cycle); allocs != 0 {
		t.Fatalf("hardened reprobe cycle allocated %.1f times per cycle", allocs)
	}
}

// TestDefenderReleaseReuse guards defender pooling hygiene: a released
// defender reused by NewDefender must come back with zeroed stats, empty
// tables, empty probing memory and the new run's wiring.
func TestDefenderReleaseReuse(t *testing.T) {
	e := newTestEnv(t)
	d := e.defender(t, func(c *Config) {
		c.DropProbability = 1
		c.CondemnProbes = 1
	})
	d.Activate(e.victim.PrimaryIP())
	pkt := e.dataPacket(e.source.PrimaryIP(), 999, 1, true)
	pkt.SetFlowHash(pkt.Label.Hash())
	d.Handle(pkt, 0, e.atr)
	if d.Stats().FlowsProbed != 1 {
		t.Fatalf("setup: expected one probed flow, got %+v", d.Stats())
	}
	if d.ProbeMemorySize() != 1 {
		t.Fatalf("setup: probing memory tracks %d flows, want 1", d.ProbeMemorySize())
	}
	d.Release()

	d2, err := NewDefender(DefaultConfig(), e.atr, sim.NewRNG(3))
	if err != nil {
		t.Fatalf("NewDefender after release: %v", err)
	}
	if d2 != d {
		t.Skip("pool handed out a different object; reset not observable")
	}
	if d2.Active() {
		t.Fatal("reused defender still active")
	}
	if s := d2.Stats(); s != (Stats{}) {
		t.Fatalf("reused defender kept stats: %+v", s)
	}
	if sft, nft, pdt := d2.Tables().Sizes(); sft+nft+pdt != 0 {
		t.Fatalf("reused defender kept table entries: %d/%d/%d", sft, nft, pdt)
	}
	if _, state := d2.Tables().Lookup(pkt.FlowHash()); state != flowtable.StateUnknown {
		t.Fatalf("old flow still tracked after reuse: %v", state)
	}
	if d2.ProbeMemorySize() != 0 {
		t.Fatalf("reused defender kept %d probing-memory entries", d2.ProbeMemorySize())
	}
}
