// Package core implements the MAFIC algorithm itself — MAlicious Flow
// Identification and Cutoff (paper Section III): adaptive probabilistic
// dropping of victim-bound packets at an attack-transit router, duplicated
// ACK probing of flow sources, and classification of each flow into the
// Nice Flow Table or Permanently Drop Table depending on whether its arrival
// rate backs off within the 2×RTT probing window.
//
// The Defender type attaches to a router as a packet filter and mirrors the
// control flow of the paper's Figure 2 exactly; see Handle.
package core

import (
	"errors"
	"fmt"

	"mafic/internal/flowtable"
	"mafic/internal/netsim"
	"mafic/internal/pool"
	"mafic/internal/sim"
)

// FilterName is the name the defender registers under in drop accounting.
const FilterName = "mafic"

// Config tunes a MAFIC defender. The zero value is not usable; start from
// DefaultConfig.
type Config struct {
	// DropProbability is P_d, the probability with which packets of
	// unclassified and suspicious flows are dropped (paper default 0.9).
	DropProbability float64
	// RTT is the round-trip-time estimate used to size the probing
	// window. The paper reads it from TCP timestamps; the simulator uses
	// a configured estimate derived from the topology.
	RTT sim.Time
	// ProbeWindowRTTs is the probing window length in RTTs (paper: 2).
	ProbeWindowRTTs float64
	// ProbeDelayRTTs is how long after a flow enters the SFT the
	// duplicated-ACK probe is injected, in RTTs. The interval before the
	// probe measures the flow's undisturbed arrival rate; the interval
	// after it measures the reaction. The default of 1 RTT splits the
	// paper's 2×RTT window evenly.
	ProbeDelayRTTs float64
	// ResponseFactor is the maximum ratio of second-half to first-half
	// arrivals for a flow to be considered responsive (it backed off).
	ResponseFactor float64
	// MinProbePackets is the minimum number of packets that must arrive
	// during the probing window before a flow can be condemned; sparser
	// flows get the benefit of the doubt and are promoted. This keeps
	// low-rate legitimate flows out of the PDT.
	MinProbePackets int
	// DupAcks is how many duplicated ACK probes are sent toward a flow's
	// source when it enters the SFT (3 triggers TCP fast retransmit).
	DupAcks int
	// ProbeSize is the wire size of each probe packet in bytes.
	ProbeSize int
	// TableCapacity bounds each of the SFT/NFT/PDT; zero is unbounded.
	TableCapacity int

	// ReprobeAfterIdle, when positive, hardens the defender against
	// source-rotation attacks: an NFT flow whose inter-packet gap exceeds
	// this duration is demoted back to the SFT and re-probed instead of
	// keeping its nice classification forever. Legitimate TCP flows pace
	// continuously at cwnd/RTT even after a timeout, so only sources that
	// go silent for whole rotation slots trip the demotion. Zero keeps the
	// paper's behavior: promotion to the NFT is permanent.
	ReprobeAfterIdle sim.Time
	// CondemnProbes, when positive, is the probing-memory threshold: a
	// flow that has entered the SFT this many times is condemned at its
	// next classification regardless of how responsive it appears. The
	// defender remembers probe counts per flow across table flushes, so a
	// rotating source cannot reset suspicion by going quiet. Zero disables
	// the memory (paper behavior: each probe window judges in isolation).
	CondemnProbes int
	// ProbeMemoryCapacity bounds the probing-memory table used by
	// CondemnProbes; once full, new flows are no longer tracked (existing
	// suspicion is never evicted). Zero is unbounded.
	ProbeMemoryCapacity int
}

// DefaultConfig returns the paper's default parameters (Table II: P_d = 90%,
// probing window = 2×RTT) with simulator-appropriate auxiliary settings.
func DefaultConfig() Config {
	return Config{
		DropProbability: 0.90,
		RTT:             40 * sim.Millisecond,
		ProbeWindowRTTs: 2,
		ProbeDelayRTTs:  1,
		ResponseFactor:  0.70,
		MinProbePackets: 4,
		DupAcks:         3,
		ProbeSize:       40,
		TableCapacity:   0,
	}
}

// Validate reports configuration errors.
func (c Config) Validate() error {
	if c.DropProbability < 0 || c.DropProbability > 1 {
		return fmt.Errorf("%w: drop probability %v", ErrConfig, c.DropProbability)
	}
	if c.RTT <= 0 {
		return fmt.Errorf("%w: RTT must be positive", ErrConfig)
	}
	if c.ProbeWindowRTTs <= 0 {
		return fmt.Errorf("%w: probe window must be positive", ErrConfig)
	}
	if c.DupAcks < 0 {
		return fmt.Errorf("%w: dup-ACK count must be non-negative", ErrConfig)
	}
	if c.ReprobeAfterIdle < 0 {
		return fmt.Errorf("%w: re-probe idle threshold must be non-negative", ErrConfig)
	}
	if c.CondemnProbes < 0 {
		return fmt.Errorf("%w: condemn-probes threshold must be non-negative", ErrConfig)
	}
	if c.ProbeMemoryCapacity < 0 {
		return fmt.Errorf("%w: probe-memory capacity must be non-negative", ErrConfig)
	}
	return nil
}

// HardenedConfig returns DefaultConfig with the anti-rotation hardening
// enabled: NFT flows idle for three RTTs are re-probed, and a flow probed
// three times is condemned outright. Legitimate TCP sources pace continuously
// (their inter-packet gap is bounded by cwnd/RTT pacing, well under an RTT
// even after a timeout collapse), so in practice only sources that fall
// silent for whole rotation slots are demoted and re-counted.
func HardenedConfig() Config {
	c := DefaultConfig()
	c.ReprobeAfterIdle = 3 * c.RTT
	c.CondemnProbes = 3
	c.ProbeMemoryCapacity = 1 << 16
	return c
}

// ErrConfig is returned for invalid configurations.
var ErrConfig = errors.New("mafic: invalid configuration")

// probeWindow returns the length of the probing window.
func (c Config) probeWindow() sim.Time {
	return sim.Time(float64(c.RTT) * c.ProbeWindowRTTs)
}

// probeDelay returns how long after SFT insertion the probe is injected,
// clamped inside the probing window.
func (c Config) probeDelay() sim.Time {
	delayRTTs := c.ProbeDelayRTTs
	if delayRTTs <= 0 || delayRTTs >= c.ProbeWindowRTTs {
		delayRTTs = c.ProbeWindowRTTs / 2
	}
	return sim.Time(float64(c.RTT) * delayRTTs)
}

// DropReason explains why the defender discarded a packet.
type DropReason int

// Drop reasons.
const (
	// DropIllegalSource marks drops of packets with unroutable sources.
	DropIllegalSource DropReason = iota + 1
	// DropPermanent marks drops of flows already condemned to the PDT.
	DropPermanent
	// DropProbing marks probabilistic drops during the probing phase
	// (first-sight and SFT packets).
	DropProbing
)

// String implements fmt.Stringer.
func (r DropReason) String() string {
	switch r {
	case DropIllegalSource:
		return "illegal-source"
	case DropPermanent:
		return "pdt"
	case DropProbing:
		return "probing"
	default:
		return "unknown"
	}
}

// DropObserver receives a callback for every packet the defender drops,
// with the reason. Metrics collection uses it to attribute collateral damage
// (the packet's ground-truth fields are visible to the observer but never to
// the defender's own decisions).
type DropObserver func(pkt *netsim.Packet, reason DropReason, now sim.Time)

// Stats aggregates a defender's packet- and flow-level counters.
type Stats struct {
	// Examined counts victim-bound data packets inspected while active.
	Examined uint64
	// Forwarded counts inspected packets passed on toward the victim.
	Forwarded uint64
	// Dropped counts inspected packets discarded, split by reason below.
	Dropped uint64
	// DroppedIllegal counts drops due to unroutable source addresses.
	DroppedIllegal uint64
	// DroppedPDT counts drops of flows already in the PDT.
	DroppedPDT uint64
	// DroppedProbing counts probabilistic drops of SFT / first-sight
	// packets during the probing phase.
	DroppedProbing uint64
	// ProbesSent counts duplicated-ACK probe packets injected.
	ProbesSent uint64
	// FlowsProbed counts flows that entered the SFT.
	FlowsProbed uint64
	// FlowsNice counts flows promoted to the NFT.
	FlowsNice uint64
	// FlowsCondemned counts flows moved to the PDT after probing.
	FlowsCondemned uint64
	// FlowsIllegal counts flows sent straight to the PDT for illegal
	// source addresses.
	FlowsIllegal uint64
	// FlowsReprobed counts NFT demotions back to the SFT after an idle
	// gap exceeded ReprobeAfterIdle (hardened configurations only).
	FlowsReprobed uint64
	// FlowsRepeatCondemned counts flows condemned by the probing memory:
	// they looked responsive in their final window but had been probed
	// CondemnProbes times (hardened configurations only).
	FlowsRepeatCondemned uint64
}

// Defender is a per-ATR MAFIC engine. It implements netsim.Filter; attach it
// to the router identified as an attack-transit router and call Activate
// when the pushback request arrives.
type Defender struct {
	cfg    Config
	router *netsim.Router
	rng    *sim.RNG
	tables *flowtable.Tables

	active    bool
	victimIP  netsim.IP
	stats     Stats
	probeSeqs uint64
	observer  DropObserver

	// probeSend and windowEnd are the defender's ArgHandler faces for the
	// two events a probing cycle schedules; probeFree heads the free list
	// of slab-allocated probe records they carry as payload, and
	// probeChunks tracks every slab so Release can rebuild the free list
	// (records still referenced by never-fired events included).
	probeSend   probeSender
	windowEnd   windowCloser
	probeFree   *probeRecord
	probeChunks [][]probeRecord

	// probeMemory counts, per flow-label hash, how many times the flow has
	// entered the SFT. Unlike the flow tables it survives Activate /
	// Deactivate flushes within a run — that persistence is the whole
	// point: a rotating source that re-appears after a quiet slot picks up
	// its suspicion where it left off. Only maintained when
	// cfg.CondemnProbes > 0; cleared by Release.
	probeMemory map[uint64]uint16
}

var _ netsim.Filter = (*Defender)(nil)

// probeRecord carries one probing cycle's state through its two scheduled
// events: the duplicated-ACK injection and the window-close classification.
// Records are slab-allocated in chunks and recycled onto a free list when
// the window closes, so steady-state flow churn probes without allocating.
// gen snapshots entry.Gen at scheduling time: a mismatch when an event fires
// means the entry was recycled (the tables were flushed) and the slot may
// describe a different flow, so the event must do nothing.
type probeRecord struct {
	entry *flowtable.Entry
	gen   uint32
	label netsim.FlowLabel
	proto netsim.Protocol
	seq   int64
	next  *probeRecord
}

// probeChunk is how many probe records one slab allocation carves.
const probeChunk = 32

// probeSender injects the duplicated-ACK probes when the probe delay
// elapses. It exists as a named type so the Defender can offer two distinct
// sim.ArgHandler implementations without per-event closures.
type probeSender struct{ d *Defender }

// OnEventArg implements sim.ArgHandler.
func (p probeSender) OnEventArg(_ sim.Time, arg any) { p.d.fireProbe(arg.(*probeRecord)) }

// windowCloser classifies the flow when its probing window closes and
// recycles the probe record.
type windowCloser struct{ d *Defender }

// OnEventArg implements sim.ArgHandler.
func (c windowCloser) OnEventArg(now sim.Time, arg any) { c.d.closeWindow(arg.(*probeRecord), now) }

// getProbeRecord pops a record off the free list, carving a new slab chunk
// when it is empty.
func (d *Defender) getProbeRecord() *probeRecord {
	if r := d.probeFree; r != nil {
		d.probeFree = r.next
		return r
	}
	chunk := make([]probeRecord, probeChunk)
	d.probeChunks = append(d.probeChunks, chunk)
	for i := 1; i < len(chunk); i++ {
		chunk[i].next = d.probeFree
		d.probeFree = &chunk[i]
	}
	return &chunk[0]
}

// putProbeRecord recycles a record, dropping its entry reference so the free
// list does not pin dead flow state.
func (d *Defender) putProbeRecord(r *probeRecord) {
	r.entry = nil
	r.next = d.probeFree
	d.probeFree = r
}

// defenderPool recycles released defenders (with their tables and probe
// slabs) across runs; see Release.
var defenderPool = pool.FreeList[Defender]{Cap: 256}

// NewDefender creates a defender bound to the given router. The router's
// network supplies the scheduler, the routability oracle and packet IDs.
// The object (tables and probe slabs included) comes from the package pool
// when a released defender is available.
func NewDefender(cfg Config, router *netsim.Router, rng *sim.RNG) (*Defender, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if router == nil {
		return nil, fmt.Errorf("%w: nil router", ErrConfig)
	}
	if rng == nil {
		rng = router.Network().RNG().Fork()
	}
	d := defenderPool.Get()
	if d == nil {
		d = &Defender{tables: flowtable.New(cfg.TableCapacity)}
		d.probeSend = probeSender{d: d}
		d.windowEnd = windowCloser{d: d}
	} else {
		d.tables.SetCapacity(cfg.TableCapacity)
	}
	d.cfg, d.router, d.rng = cfg, router, rng
	return d, nil
}

// Release flushes the defender and returns it to the package pool for reuse
// by a later run. Call it only after the simulation that owns the defender
// has finished — no scheduled probe or classification event may fire
// afterwards — and do not use the defender again.
func (d *Defender) Release() {
	d.tables.Reset()
	// Rebuild the probe-record free list from the slabs wholesale: records
	// held by events that never fired (the run ended inside their probing
	// window) are reclaimed here too.
	d.probeFree = nil
	for _, chunk := range d.probeChunks {
		for i := range chunk {
			chunk[i].entry = nil
			chunk[i].next = d.probeFree
			d.probeFree = &chunk[i]
		}
	}
	clear(d.probeMemory)
	d.active = false
	d.victimIP = 0
	d.stats = Stats{}
	d.probeSeqs = 0
	d.observer = nil
	d.router, d.rng = nil, nil
	defenderPool.Put(d)
}

// Name implements netsim.Filter.
func (d *Defender) Name() string { return FilterName }

// Router returns the router the defender protects.
func (d *Defender) Router() *netsim.Router { return d.router }

// Config returns the defender's configuration.
func (d *Defender) Config() Config { return d.cfg }

// Stats returns a snapshot of the defender's counters.
func (d *Defender) Stats() Stats { return d.stats }

// Tables exposes the flow tables for inspection (tests, diagnostics).
func (d *Defender) Tables() *flowtable.Tables { return d.tables }

// ProbeMemorySize reports how many flows the probing memory currently tracks
// (tests, diagnostics). It is zero unless CondemnProbes is enabled.
func (d *Defender) ProbeMemorySize() int { return len(d.probeMemory) }

// Active reports whether adaptive dropping is currently enabled.
func (d *Defender) Active() bool { return d.active }

// SetDropObserver installs a callback invoked on every drop. Pass nil to
// remove it.
func (d *Defender) SetDropObserver(fn DropObserver) { d.observer = fn }

// drop records a drop of the given reason and notifies the observer.
func (d *Defender) drop(pkt *netsim.Packet, reason DropReason, now sim.Time) netsim.Action {
	d.stats.Dropped++
	switch reason {
	case DropIllegalSource:
		d.stats.DroppedIllegal++
	case DropPermanent:
		d.stats.DroppedPDT++
	case DropProbing:
		d.stats.DroppedProbing++
	}
	if d.observer != nil {
		d.observer(pkt, reason, now)
	}
	return netsim.ActionDrop
}

// VictimIP reports the destination address currently protected.
func (d *Defender) VictimIP() netsim.IP { return d.victimIP }

// Activate starts adaptive dropping of packets destined to victim. Calling
// it again with a different victim switches targets and flushes state.
func (d *Defender) Activate(victim netsim.IP) {
	if d.active && victim == d.victimIP {
		return
	}
	d.active = true
	d.victimIP = victim
	d.tables.Flush()
}

// Deactivate ends dropping and flushes all tables, as the paper specifies
// for pushback withdrawal ("End dropping & Flush all tables").
func (d *Defender) Deactivate() {
	d.active = false
	d.tables.Flush()
}

// Handle implements the per-packet control flow of the paper's Figure 2.
func (d *Defender) Handle(pkt *netsim.Packet, now sim.Time, at *netsim.Router) netsim.Action {
	if !d.active {
		return netsim.ActionForward
	}
	// Only victim-bound data traffic is subject to adaptive dropping;
	// reverse-path ACKs, probes and control traffic pass through.
	if pkt.Kind != netsim.KindData || pkt.Label.DstIP != d.victimIP {
		return netsim.ActionForward
	}
	// An ATR polices the traffic that enters the domain through it
	// (paper Figure 1); packets merely transiting from another ingress
	// are left to that ingress's own defender.
	if pkt.Hops > 0 {
		return netsim.ActionForward
	}
	d.stats.Examined++

	// Traffic sources stamp the label hash once per flow, so this is a
	// plain field read on the hot path rather than a per-packet rehash.
	labelHash := pkt.FlowHash()

	// Illegal or unreachable source addresses go straight to the PDT:
	// they belong to no legitimate application (Section III-A).
	if !at.Network().IsRoutable(pkt.Label.SrcIP) {
		if _, state := d.tables.Lookup(labelHash); state != flowtable.StatePermanentDrop {
			d.stats.FlowsIllegal++
		}
		e := d.tables.InsertPermanent(labelHash, now)
		e.Packets++
		e.Dropped++
		e.LastSeen = now
		return d.drop(pkt, DropIllegalSource, now)
	}

	entry, state := d.tables.Lookup(labelHash)
	switch state {
	case flowtable.StatePermanentDrop:
		entry.Packets++
		entry.Dropped++
		entry.LastSeen = now
		return d.drop(pkt, DropPermanent, now)

	case flowtable.StateNice:
		if idle := d.cfg.ReprobeAfterIdle; idle > 0 && now-entry.LastSeen >= idle {
			// The flow went silent far longer than a paced TCP source
			// ever does — the signature of a rotating attack group
			// between slots. Its nice classification is revoked and a
			// fresh probing cycle starts with this arrival.
			entry.Packets++
			entry.LastSeen = now
			d.reprobe(entry, pkt, now)
			if d.rng.Bool(d.cfg.DropProbability) {
				entry.Dropped++
				return d.drop(pkt, DropProbing, now)
			}
			d.stats.Forwarded++
			return netsim.ActionForward
		}
		entry.Packets++
		entry.LastSeen = now
		d.stats.Forwarded++
		return netsim.ActionForward

	case flowtable.StateSuspicious:
		entry.Packets++
		entry.LastSeen = now
		d.recordProbeSample(entry, now)
		if d.rng.Bool(d.cfg.DropProbability) {
			entry.Dropped++
			return d.drop(pkt, DropProbing, now)
		}
		d.stats.Forwarded++
		return netsim.ActionForward

	default: // first sight of this flow
		if !d.rng.Bool(d.cfg.DropProbability) {
			d.stats.Forwarded++
			return netsim.ActionForward
		}
		d.beginProbe(pkt, labelHash, now)
		return d.drop(pkt, DropProbing, now)
	}
}

// beginProbe inserts the flow into the SFT, schedules the duplicated-ACK
// probes toward the claimed source, and schedules the classification timer
// at the end of the probing window. The probe is injected ProbeDelayRTTs
// after insertion so the interval before it captures the flow's undisturbed
// arrival rate and the interval after it captures the reaction.
//
// One recycled probeRecord carries the payload through both events via the
// allocation-free ArgHandler path, so starting a probe cycle performs no
// heap allocation in steady state.
func (d *Defender) beginProbe(pkt *netsim.Packet, labelHash uint64, now sim.Time) {
	window := d.cfg.probeWindow()
	entry := d.tables.InsertSuspicious(labelHash, now, now+window)
	entry.Packets++
	entry.Dropped++
	entry.BaselineCount++
	d.stats.FlowsProbed++
	d.rememberProbe(labelHash)
	d.scheduleProbeCycle(entry, pkt, now)
}

// reprobe demotes an NFT flow back to the SFT and starts a fresh probing
// cycle on it (hardened configurations only; see Config.ReprobeAfterIdle).
// The triggering arrival seeds the new window's baseline count, mirroring
// beginProbe.
func (d *Defender) reprobe(entry *flowtable.Entry, pkt *netsim.Packet, now sim.Time) {
	d.tables.Demote(entry, now, now+d.cfg.probeWindow())
	entry.BaselineCount++
	d.stats.FlowsProbed++
	d.stats.FlowsReprobed++
	d.rememberProbe(entry.LabelHash)
	d.scheduleProbeCycle(entry, pkt, now)
}

// scheduleProbeCycle arms the two events of one probing cycle — the
// duplicated-ACK injection and the window-close classification — carrying a
// recycled probeRecord through the allocation-free ArgHandler path.
func (d *Defender) scheduleProbeCycle(entry *flowtable.Entry, pkt *netsim.Packet, now sim.Time) {
	rec := d.getProbeRecord()
	rec.entry, rec.gen = entry, entry.Gen
	rec.label, rec.proto, rec.seq = pkt.Label, pkt.Proto, pkt.Seq

	sched := d.router.Network().Scheduler()
	sched.ScheduleArgAt(now+d.cfg.probeDelay(), &d.probeSend, rec)
	sched.ScheduleArgAt(entry.ProbeDeadline, &d.windowEnd, rec)
}

// rememberProbe bumps the flow's probing-memory count. No-op unless the
// CondemnProbes hardening is enabled.
func (d *Defender) rememberProbe(labelHash uint64) {
	if d.cfg.CondemnProbes <= 0 {
		return
	}
	if d.probeMemory == nil {
		d.probeMemory = make(map[uint64]uint16)
	}
	n, tracked := d.probeMemory[labelHash]
	if !tracked && d.cfg.ProbeMemoryCapacity > 0 && len(d.probeMemory) >= d.cfg.ProbeMemoryCapacity {
		// Table full: stop admitting new flows rather than evict
		// accumulated suspicion an attacker could then rebuild from zero.
		return
	}
	if n < ^uint16(0) {
		d.probeMemory[labelHash] = n + 1
	}
}

// fireProbe injects the duplicated ACKs if the flow is still under probing.
// A generation mismatch means the entry was recycled by a table flush.
func (d *Defender) fireProbe(rec *probeRecord) {
	if !d.active || rec.entry.Gen != rec.gen || rec.entry.State != flowtable.StateSuspicious {
		return
	}
	d.sendDupAcks(rec.label, rec.proto, rec.seq)
}

// closeWindow classifies the probed flow when its window ends and recycles
// the probe record. The window-close event always fires after the probe
// injection (probeDelay is strictly inside the window), so the record is
// free for reuse the moment classification runs.
func (d *Defender) closeWindow(rec *probeRecord, now sim.Time) {
	if rec.entry.Gen == rec.gen {
		d.classify(rec.entry, now)
	}
	d.putProbeRecord(rec)
}

// recordProbeSample counts an arrival into the pre-probe (baseline) or
// post-probe (response) interval of the flow's probing window. The two
// counts are compared at classification time: a source that reacted to the
// probe shows a clear drop in the response interval.
func (d *Defender) recordProbeSample(entry *flowtable.Entry, now sim.Time) {
	probeAt := entry.ProbeStart + d.cfg.probeDelay()
	if now < probeAt {
		entry.BaselineCount++
	} else if now < entry.ProbeDeadline {
		entry.ResponseCount++
	}
}

// classify decides the fate of a probed flow when its window closes.
func (d *Defender) classify(entry *flowtable.Entry, _ sim.Time) {
	if !d.active || entry.State != flowtable.StateSuspicious {
		return
	}
	total := entry.BaselineCount + entry.ResponseCount
	responsive := false
	switch {
	case total < d.cfg.MinProbePackets:
		// Too few packets to judge: a flow this sparse is not part of
		// a flooding attack, so give it the benefit of the doubt.
		responsive = true
	case entry.BaselineCount == 0:
		// Everything arrived late in the window: the flow did not back
		// off after the probe.
		responsive = false
	default:
		responsive = float64(entry.ResponseCount) <= d.cfg.ResponseFactor*float64(entry.BaselineCount)
	}
	if responsive && d.cfg.CondemnProbes > 0 &&
		int(d.probeMemory[entry.LabelHash]) >= d.cfg.CondemnProbes {
		// The flow passes each window in isolation, but the probing memory
		// says it keeps landing back in the SFT — the signature of a source
		// that games the window (rotation, pulsing) rather than backs off.
		responsive = false
		d.stats.FlowsRepeatCondemned++
	}
	if responsive {
		d.tables.Promote(entry)
		d.stats.FlowsNice++
		return
	}
	d.tables.Condemn(entry)
	d.stats.FlowsCondemned++
}

// sendDupAcks injects the configured number of duplicated ACK probes toward
// the flow's claimed source. The probes are addressed from the victim so
// that, at a genuine TCP sender, they are indistinguishable from real
// duplicate acknowledgements and trigger fast-retransmit rate reduction.
func (d *Defender) sendDupAcks(label netsim.FlowLabel, proto netsim.Protocol, seq int64) {
	net := d.router.Network()
	for i := 0; i < d.cfg.DupAcks; i++ {
		d.probeSeqs++
		probe := net.NewPacket()
		probe.ID = net.NextPacketID()
		probe.Label = label.Reverse()
		probe.Kind = netsim.KindDupAck
		probe.Proto = proto
		probe.Seq = seq
		probe.Size = d.cfg.ProbeSize
		d.router.Inject(probe)
		d.stats.ProbesSent++
	}
}
