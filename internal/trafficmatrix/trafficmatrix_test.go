package trafficmatrix

import (
	"math"
	"testing"

	"mafic/internal/netsim"
	"mafic/internal/sim"
	"mafic/internal/topology"
)

func smallDomain(t *testing.T) *topology.Domain {
	t.Helper()
	cfg := topology.DefaultConfig()
	cfg.NumRouters = 12
	cfg.ClientsPerIngress = 2
	cfg.ZombiesPerIngress = 1
	cfg.BystanderHosts = 4
	d, err := topology.Build(cfg, sim.NewScheduler(), sim.NewRNG(3))
	if err != nil {
		t.Fatalf("build domain: %v", err)
	}
	return d
}

// floodFrom schedules count packets from src to the victim, spread over the
// given window.
func floodFrom(d *topology.Domain, src *netsim.Host, count int, window sim.Time) {
	interval := window / sim.Time(count)
	for i := 0; i < count; i++ {
		i := i
		d.Net.Scheduler().ScheduleAt(sim.Time(i)*interval, func(sim.Time) {
			pkt := &netsim.Packet{
				ID: d.Net.NextPacketID(),
				Label: netsim.FlowLabel{
					SrcIP: src.PrimaryIP(), DstIP: d.VictimIP(),
					SrcPort: 5000, DstPort: 80,
				},
				Kind: netsim.KindData, Proto: netsim.ProtoTCP, Size: 500,
			}
			src.Send(pkt)
		})
	}
}

func TestCounterTracksSourceAndDest(t *testing.T) {
	d := smallDomain(t)
	d.Victim.SetDefaultHandler(func(*netsim.Packet, sim.Time) {})
	mon, err := NewMonitor(d.Net, MonitorConfig{Epoch: 100 * sim.Millisecond}, nil)
	if err != nil {
		t.Fatalf("NewMonitor: %v", err)
	}

	client := d.Clients[0]
	ingress := d.IngressOf(client)
	const pkts = 400
	floodFrom(d, client, pkts, 90*sim.Millisecond)
	if err := d.Net.Scheduler().Run(); err != nil {
		t.Fatalf("run: %v", err)
	}

	ingressCounter := mon.Counter(ingress.ID())
	if ingressCounter == nil {
		t.Fatal("no counter on ingress router")
	}
	if got := ingressCounter.SourcePackets(); got != pkts {
		t.Fatalf("ingress S_i packet count = %d, want %d", got, pkts)
	}
	if est := ingressCounter.SourceEstimate(); math.Abs(est-pkts)/pkts > 0.25 {
		t.Fatalf("ingress S_i estimate = %.0f, want ~%d", est, pkts)
	}

	lastHop := mon.Counter(d.LastHop.ID())
	if got := lastHop.DestPackets(); got != pkts {
		t.Fatalf("last-hop D_j packet count = %d, want %d", got, pkts)
	}
	if est := lastHop.DestEstimate(); math.Abs(est-pkts)/pkts > 0.25 {
		t.Fatalf("last-hop D_j estimate = %.0f, want ~%d", est, pkts)
	}
	if ingressCounter.Router() != ingress {
		t.Fatal("counter router back-reference wrong")
	}
	if ingressCounter.Name() != CounterName {
		t.Fatal("counter name mismatch")
	}
}

func TestCounterIgnoresControlAndProbes(t *testing.T) {
	d := smallDomain(t)
	mon, err := NewMonitor(d.Net, MonitorConfig{Epoch: sim.Second}, nil)
	if err != nil {
		t.Fatal(err)
	}
	client := d.Clients[0]
	ingress := d.IngressOf(client)
	for _, kind := range []netsim.PacketKind{netsim.KindControl, netsim.KindProbe} {
		pkt := &netsim.Packet{
			ID: d.Net.NextPacketID(),
			Label: netsim.FlowLabel{
				SrcIP: client.PrimaryIP(), DstIP: d.VictimIP(), SrcPort: 1, DstPort: 2,
			},
			Kind: kind, Size: 40,
		}
		client.Send(pkt)
	}
	d.Victim.SetDefaultHandler(func(*netsim.Packet, sim.Time) {})
	if err := d.Net.Scheduler().Run(); err != nil {
		t.Fatal(err)
	}
	if got := mon.Counter(ingress.ID()).SourcePackets(); got != 0 {
		t.Fatalf("control/probe packets were counted: %d", got)
	}
}

func TestMonitorEpochReports(t *testing.T) {
	d := smallDomain(t)
	d.Victim.SetDefaultHandler(func(*netsim.Packet, sim.Time) {})

	var reports []EpochReport
	mon, err := NewMonitor(d.Net, MonitorConfig{Epoch: 50 * sim.Millisecond}, func(r EpochReport) {
		// Callback reports share the monitor's pooled buffers; retaining
		// them across epochs requires a deep copy.
		reports = append(reports, r.Clone())
	})
	if err != nil {
		t.Fatal(err)
	}
	mon.Start()

	// Flood from one zombie for the first epoch only.
	zombie := d.Zombies[0]
	floodFrom(d, zombie, 600, 45*sim.Millisecond)
	if err := d.Net.Scheduler().RunUntil(160 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	mon.Stop()
	if err := d.Net.Scheduler().RunUntil(300 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}

	if len(reports) < 2 {
		t.Fatalf("got %d epoch reports, want >= 2", len(reports))
	}
	first := reports[0]
	if first.Epoch != 1 {
		t.Fatalf("first report epoch = %d, want 1", first.Epoch)
	}
	// The access link (20 Mbps) bottlenecks the 600-packet burst, so only
	// part of it reaches the last hop within the first epoch.
	lastHopLoad := first.DestEstimate(d.LastHop.ID())
	if lastHopLoad < 150 {
		t.Fatalf("last-hop D_j estimate = %.0f, want >= 150", lastHopLoad)
	}
	// The zombie's ingress must dominate the matrix column toward the
	// last-hop router.
	top := first.TopSources(d.LastHop.ID())
	if len(top) == 0 {
		t.Fatal("no matrix cells toward the last-hop router")
	}
	if top[0].Source != d.IngressOf(zombie).ID() {
		t.Fatalf("top source router = %d, want zombie ingress %d", top[0].Source, d.IngressOf(zombie).ID())
	}
	// A later epoch (after the flood stopped) must show the load subsiding.
	last := reports[len(reports)-1]
	if last.DestEstimate(d.LastHop.ID()) > lastHopLoad/2 {
		t.Fatalf("load did not subside after flood: %.0f", last.DestEstimate(d.LastHop.ID()))
	}
	if mon.Epoch() != 50*sim.Millisecond {
		t.Fatal("Epoch() accessor mismatch")
	}
}

func TestMonitorStartIdempotent(t *testing.T) {
	d := smallDomain(t)
	count := 0
	mon, err := NewMonitor(d.Net, MonitorConfig{Epoch: 10 * sim.Millisecond}, func(EpochReport) { count++ })
	if err != nil {
		t.Fatal(err)
	}
	mon.Start()
	mon.Start() // second call must not double the tick rate
	if err := d.Net.Scheduler().RunUntil(35 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	mon.Stop()
	if err := d.Net.Scheduler().RunUntil(100 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if count < 3 || count > 5 {
		t.Fatalf("epoch callbacks = %d, want 3..5 for a single ticker", count)
	}
}

func TestMatrixIntersectionMatchesGroundTruth(t *testing.T) {
	d := smallDomain(t)
	d.Victim.SetDefaultHandler(func(*netsim.Packet, sim.Time) {})
	mon, err := NewMonitor(d.Net, MonitorConfig{Epoch: sim.Second, Buckets: 4096}, nil)
	if err != nil {
		t.Fatal(err)
	}

	// Two clients on (usually) different ingress routers send known
	// volumes; a_ij for each ingress must approximate its volume.
	c0, c1 := d.Clients[0], d.Clients[len(d.Clients)-1]
	floodFrom(d, c0, 800, 400*sim.Millisecond)
	floodFrom(d, c1, 300, 400*sim.Millisecond)
	if err := d.Net.Scheduler().Run(); err != nil {
		t.Fatal(err)
	}
	report := mon.Compute(d.Net.Now())

	wantPerIngress := map[netsim.NodeID]float64{}
	wantPerIngress[d.IngressOf(c0).ID()] += 800
	wantPerIngress[d.IngressOf(c1).ID()] += 300
	for ing, want := range wantPerIngress {
		var got float64
		for _, cell := range report.Matrix {
			if cell.Source == ing && cell.Dest == d.LastHop.ID() {
				got = cell.Packets
			}
		}
		if math.Abs(got-want)/want > 0.35 {
			t.Fatalf("a_ij for ingress %d = %.0f, want ~%.0f", ing, got, want)
		}
	}
}
