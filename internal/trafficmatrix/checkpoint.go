package trafficmatrix

import (
	"fmt"

	"mafic/internal/loglog"
	"mafic/internal/netsim"
	"mafic/internal/sim"
)

// CounterState is the dynamic state of one per-router counter: both sketch
// pairs and the exact packet tallies for the epoch in progress. The router
// binding and bucket geometry are rebuild-covered.
type CounterState struct {
	Source     loglog.PairState
	Dest       loglog.PairState
	SourcePkts uint64
	DestPkts   uint64
	Transit    uint64
}

// MonitorState is the monitor's dynamic state. Counters are listed in
// routerIDs order (ascending router ID), which a deterministic rebuild
// reproduces exactly. The pooled report buffers (estimate tables, matrix,
// union scratch) are not captured: every epoch computation overwrites them
// from scratch, so their content between epochs is dead state.
type MonitorState struct {
	EpochIndex int64
	EpochStart sim.Time
	Stop       bool
	Running    bool
	Counters   []CounterState
}

// CheckpointState captures the monitor's dynamic state.
func (m *Monitor) CheckpointState() MonitorState {
	st := MonitorState{
		EpochIndex: int64(m.epochIndex),
		EpochStart: m.epochStart,
		Stop:       m.stop,
		Running:    m.running,
		Counters:   make([]CounterState, 0, len(m.routerIDs)),
	}
	for _, id := range m.routerIDs {
		c := m.counters[id]
		st.Counters = append(st.Counters, CounterState{
			Source:     c.source.CheckpointState(),
			Dest:       c.dest.CheckpointState(),
			SourcePkts: c.sourcePkts,
			DestPkts:   c.destPkts,
			Transit:    c.transit,
		})
	}
	return st
}

// RestoreState overlays captured dynamic state onto a rebuilt monitor with
// the same monitored set.
func (m *Monitor) RestoreState(st MonitorState) error {
	if len(st.Counters) != len(m.routerIDs) {
		return fmt.Errorf("trafficmatrix: restore has %d counters, rebuilt monitor has %d",
			len(st.Counters), len(m.routerIDs))
	}
	m.epochIndex = int(st.EpochIndex)
	m.epochStart = st.EpochStart
	m.stop = st.Stop
	m.running = st.Running
	for i, id := range m.routerIDs {
		c := m.counters[id]
		rec := &st.Counters[i]
		if err := c.source.RestoreState(rec.Source); err != nil {
			return fmt.Errorf("trafficmatrix: router %d source pair: %w", id, err)
		}
		if err := c.dest.RestoreState(rec.Dest); err != nil {
			return fmt.Errorf("trafficmatrix: router %d dest pair: %w", id, err)
		}
		c.sourcePkts = rec.SourcePkts
		c.destPkts = rec.DestPkts
		c.transit = rec.Transit
	}
	return nil
}

// EpochReportState is the serializable form of a delayed epoch report in
// flight on the control channel. Delayed reports are owned deep copies, so
// the full contents travel in the snapshot.
type EpochReportState struct {
	Epoch      int64
	Start, End sim.Time
	Routers    []netsim.NodeID
	SourceEst  []float64
	DestEst    []float64
	Matrix     []Cell
}

// CaptureEpochReport describes the report a pending delayed-delivery event
// carries as its payload.
func (m *Monitor) CaptureEpochReport(arg any) (EpochReportState, error) {
	r, ok := arg.(*EpochReport)
	if !ok {
		return EpochReportState{}, fmt.Errorf("trafficmatrix: delayed-report payload is %T, not an epoch report", arg)
	}
	return EpochReportState{
		Epoch:     int64(r.Epoch),
		Start:     r.Start,
		End:       r.End,
		Routers:   append([]netsim.NodeID(nil), r.Routers...),
		SourceEst: append([]float64(nil), r.SourceEst...),
		DestEst:   append([]float64(nil), r.DestEst...),
		Matrix:    append([]Cell(nil), r.Matrix...),
	}, nil
}

// RestoreEpochReport materializes a delayed report from its captured state,
// for use as the payload of the re-inserted delivery event. Like the original
// delayed copy, the restored report owns its backing.
func (m *Monitor) RestoreEpochReport(st EpochReportState) any {
	return &EpochReport{
		Epoch:     int(st.Epoch),
		Start:     st.Start,
		End:       st.End,
		Routers:   st.Routers,
		SourceEst: st.SourceEst,
		DestEst:   st.DestEst,
		Matrix:    st.Matrix,
	}
}

// CheckpointTypes lists this package's structs that carry snapshotted state.
var CheckpointTypes = []any{
	Monitor{},
	Counter{},
	EpochReport{},
	Cell{},
}
