package trafficmatrix

import (
	"errors"
	"testing"

	"mafic/internal/sim"
)

func TestMonitorConfigValidate(t *testing.T) {
	good := MonitorConfig{Epoch: 100 * sim.Millisecond}
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	good.Buckets = 256
	if err := good.Validate(); err != nil {
		t.Fatalf("valid bucket count rejected: %v", err)
	}
	// The zero value selects the package defaults, as NewMonitor does.
	if err := (MonitorConfig{}).Validate(); err != nil {
		t.Fatalf("zero config must be valid: %v", err)
	}
	good.ReportLoss = 0.2
	good.ReportDelayProb = 0.1
	good.ReportDelay = 20 * sim.Millisecond
	if err := good.Validate(); err != nil {
		t.Fatalf("valid lossy-channel config rejected: %v", err)
	}
	tests := []struct {
		name string
		cfg  MonitorConfig
	}{
		{"negative epoch", MonitorConfig{Epoch: -sim.Second}},
		{"non-power-of-two buckets", MonitorConfig{Epoch: sim.Second, Buckets: 100}},
		{"buckets too small", MonitorConfig{Epoch: sim.Second, Buckets: 8}},
		{"buckets too large", MonitorConfig{Epoch: sim.Second, Buckets: 1 << 20}},
		{"negative report loss", MonitorConfig{ReportLoss: -0.1}},
		{"report loss above one", MonitorConfig{ReportLoss: 1.1}},
		{"negative delay probability", MonitorConfig{ReportDelayProb: -0.5}},
		{"delay probability above one", MonitorConfig{ReportDelayProb: 2}},
		{"negative report delay", MonitorConfig{ReportDelay: -sim.Millisecond}},
		{"delay probability without delay", MonitorConfig{ReportDelayProb: 0.5}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.cfg.Validate(); !errors.Is(err, ErrMonitorConfig) {
				t.Fatalf("want ErrMonitorConfig, got %v", err)
			}
		})
	}
}
