package trafficmatrix

import (
	"testing"

	"mafic/internal/netsim"
	"mafic/internal/sim"
	"mafic/internal/topology"
)

// hostAdjacentRouters computes the expected automatic monitored set the slow
// way, straight from the topology.
func hostAdjacentRouters(net *netsim.Network) map[netsim.NodeID]bool {
	set := make(map[netsim.NodeID]bool)
	for hid := range net.Hosts() {
		for _, nb := range net.Neighbors(hid) {
			if _, ok := net.Routers()[nb]; ok {
				set[nb] = true
			}
		}
	}
	return set
}

// TestMonitoredSetDefault pins the automatic monitored set: exactly the
// host-adjacent routers, ascending, strictly fewer than the full router set
// on a transit-stub topology (core routers carry no hosts).
func TestMonitoredSetDefault(t *testing.T) {
	d := smallDomain(t)
	mon, err := NewMonitor(d.Net, MonitorConfig{Epoch: 100 * sim.Millisecond}, nil)
	if err != nil {
		t.Fatalf("NewMonitor: %v", err)
	}
	want := hostAdjacentRouters(d.Net)
	if len(mon.routerIDs) != len(want) {
		t.Fatalf("monitored %d routers %v, want the %d host-adjacent ones", len(mon.routerIDs), mon.routerIDs, len(want))
	}
	for i, id := range mon.routerIDs {
		if !want[id] {
			t.Fatalf("router %d monitored but has no attached host", id)
		}
		if i > 0 && id <= mon.routerIDs[i-1] {
			t.Fatalf("monitored set not strictly ascending: %v", mon.routerIDs)
		}
	}
	if len(want) >= len(d.Net.Routers()) {
		t.Fatalf("test topology has no host-free routers (monitored %d of %d)", len(want), len(d.Net.Routers()))
	}
	for id := range d.Net.Routers() {
		c := mon.Counter(id)
		if want[id] && c == nil {
			t.Fatalf("host-adjacent router %d has no counter", id)
		}
		if !want[id] && c != nil {
			t.Fatalf("host-free router %d has a counter", id)
		}
	}
}

// TestMonitoredSetExplicitAndErrors pins the explicit-set plumbing: the list
// is sorted and deduplicated, non-router IDs are rejected, and MonitorAll
// conflicts with an explicit set.
func TestMonitoredSetExplicitAndErrors(t *testing.T) {
	d := smallDomain(t)
	ing := d.Ingress[0].ID()
	last := d.LastHop.ID()

	mon, err := NewMonitor(d.Net, MonitorConfig{Monitored: []netsim.NodeID{last, ing, last}}, nil)
	if err != nil {
		t.Fatalf("explicit set: %v", err)
	}
	wantIDs := []netsim.NodeID{ing, last}
	if last < ing {
		wantIDs = []netsim.NodeID{last, ing}
	}
	if len(mon.routerIDs) != 2 || mon.routerIDs[0] != wantIDs[0] || mon.routerIDs[1] != wantIDs[1] {
		t.Fatalf("explicit set = %v, want sorted dedup %v", mon.routerIDs, wantIDs)
	}
	if mon.Counter(d.Ingress[1].ID()) != nil {
		t.Fatal("router outside the explicit set has a counter")
	}
	mon.Release()

	hostID := d.Clients[0].ID()
	if _, err := NewMonitor(d.Net, MonitorConfig{Monitored: []netsim.NodeID{hostID}}, nil); err == nil {
		t.Fatal("host ID accepted as a monitored router")
	}
	bad := MonitorConfig{MonitorAll: true, Monitored: []netsim.NodeID{ing}}
	if err := bad.Validate(); err == nil {
		t.Fatal("Validate accepted MonitorAll plus an explicit set")
	}
	if _, err := NewMonitor(d.Net, bad, nil); err == nil {
		t.Fatal("NewMonitor accepted MonitorAll plus an explicit set")
	}
	if err := (MonitorConfig{Monitored: []netsim.NodeID{-3}}).Validate(); err == nil {
		t.Fatal("Validate accepted a negative monitored ID")
	}
}

// TestMonitoredReportsMatchMonitorAll is the observational-equivalence pin
// behind the monitored-only default: the same workload on two identical
// domains, one monitored automatically and one with a counter on every
// router, produces bit-identical epoch reports (estimates and matrix cells);
// the every-router run's extra rows are all zero.
func TestMonitoredReportsMatchMonitorAll(t *testing.T) {
	run := func(all bool) []EpochReport {
		d := smallDomain(t)
		d.Victim.SetDefaultHandler(func(*netsim.Packet, sim.Time) {})
		var reports []EpochReport
		mon, err := NewMonitor(d.Net, MonitorConfig{Epoch: 100 * sim.Millisecond, MonitorAll: all},
			func(r EpochReport) { reports = append(reports, r.Clone()) })
		if err != nil {
			t.Fatalf("NewMonitor(all=%v): %v", all, err)
		}
		mon.Start()
		floodFrom(d, d.Clients[0], 400, 250*sim.Millisecond)
		floodFrom(d, d.Zombies[0], 300, 250*sim.Millisecond)
		if err := d.Net.Scheduler().RunUntil(400 * sim.Millisecond); err != nil {
			t.Fatalf("run: %v", err)
		}
		mon.Release()
		return reports
	}
	monitored := run(false)
	oracle := run(true)

	if len(monitored) == 0 || len(monitored) != len(oracle) {
		t.Fatalf("epoch counts diverge: monitored %d, oracle %d", len(monitored), len(oracle))
	}
	for e := range oracle {
		mr, or := monitored[e], oracle[e]
		if mr.Epoch != or.Epoch || mr.Start != or.Start || mr.End != or.End {
			t.Fatalf("epoch %d bounds diverge: %+v vs %+v", e, mr, or)
		}
		if len(mr.Routers) >= len(or.Routers) {
			t.Fatalf("epoch %d: monitored set %d not smaller than oracle %d", e, len(mr.Routers), len(or.Routers))
		}
		inMonitored := make(map[netsim.NodeID]bool, len(mr.Routers))
		for _, id := range mr.Routers {
			inMonitored[id] = true
		}
		for _, id := range or.Routers {
			if or.SourceEstimate(id) != mr.SourceEstimate(id) {
				t.Fatalf("epoch %d router %d: S_i %v vs %v", e, id, mr.SourceEstimate(id), or.SourceEstimate(id))
			}
			if or.DestEstimate(id) != mr.DestEstimate(id) {
				t.Fatalf("epoch %d router %d: D_j %v vs %v", e, id, mr.DestEstimate(id), or.DestEstimate(id))
			}
			if !inMonitored[id] && (or.SourceEstimate(id) != 0 || or.DestEstimate(id) != 0) {
				t.Fatalf("epoch %d: unmonitored router %d recorded traffic in the oracle", e, id)
			}
		}
		if len(mr.Matrix) != len(or.Matrix) {
			t.Fatalf("epoch %d: matrix sizes diverge: %d vs %d", e, len(mr.Matrix), len(or.Matrix))
		}
		for i := range or.Matrix {
			if mr.Matrix[i] != or.Matrix[i] {
				t.Fatalf("epoch %d cell %d: %+v vs %+v", e, i, mr.Matrix[i], or.Matrix[i])
			}
		}
	}
}

// dirtyCounters pushes synthetic packet IDs straight into every counter's
// active sketches so a released monitor carries non-trivial sketch state.
func dirtyCounters(m *Monitor) {
	for _, id := range m.routerIDs {
		c := m.counters[id]
		for p := uint64(1); p <= 64; p++ {
			c.source.Active().Add(p)
			c.dest.Active().Add(p * 31)
		}
	}
}

// TestMonitorReuseBucketChange pins pooled-monitor reuse across a bucket-count
// change: the recycled slab's geometry no longer matches, so the counters must
// come up on fresh sketches of the new size with zero estimates.
func TestMonitorReuseBucketChange(t *testing.T) {
	d := smallDomain(t)
	m1, err := NewMonitor(d.Net, MonitorConfig{Buckets: 64}, nil)
	if err != nil {
		t.Fatalf("NewMonitor: %v", err)
	}
	dirtyCounters(m1)
	if est := m1.Counter(m1.routerIDs[0]).SourceEstimate(); est <= 0 {
		t.Fatalf("dirtying left estimate %v, want > 0", est)
	}
	m1.Release()

	d2 := smallDomain(t)
	m2, err := NewMonitor(d2.Net, MonitorConfig{Buckets: 128}, nil)
	if err != nil {
		t.Fatalf("NewMonitor after bucket change: %v", err)
	}
	for _, id := range m2.routerIDs {
		c := m2.Counter(id)
		if c.buckets != 128 || c.source.Active().Buckets() != 128 {
			t.Fatalf("router %d counter kept stale geometry: %d buckets", id, c.source.Active().Buckets())
		}
		if c.SourceEstimate() != 0 || c.DestEstimate() != 0 {
			t.Fatalf("router %d counter serves stale sketch state after bucket change", id)
		}
	}
	m2.Release()
}

// TestMonitorReuseWidthShrink pins pooled-monitor reuse when the router-ID
// range shrinks: counters for the old domain's high IDs must be unreachable,
// not stale pointers left in the recycled dense table.
func TestMonitorReuseWidthShrink(t *testing.T) {
	cfg := topology.DefaultConfig()
	cfg.NumRouters = 40
	big, err := topology.Build(cfg, sim.NewScheduler(), sim.NewRNG(3))
	if err != nil {
		t.Fatalf("build big domain: %v", err)
	}
	m1, err := NewMonitor(big.Net, MonitorConfig{MonitorAll: true}, nil)
	if err != nil {
		t.Fatalf("NewMonitor big: %v", err)
	}
	dirtyCounters(m1)
	highID := m1.routerIDs[len(m1.routerIDs)-1]
	m1.Release()

	small := smallDomain(t) // 12 routers: IDs far below highID
	m2, err := NewMonitor(small.Net, MonitorConfig{MonitorAll: true}, nil)
	if err != nil {
		t.Fatalf("NewMonitor small: %v", err)
	}
	if int(highID) < len(m2.counters) && m2.counters[highID] != nil {
		t.Fatalf("stale counter for router %d survived the width shrink", highID)
	}
	if c := m2.Counter(highID); c != nil {
		t.Fatalf("Counter(%d) = %v on the shrunk domain, want nil", highID, c)
	}
	report := m2.Compute(0)
	if got := report.Routers[len(report.Routers)-1]; int(got) >= len(small.Net.Routers())+len(small.Net.Hosts()) {
		t.Fatalf("report covers router %d outside the shrunk domain", got)
	}
	for _, id := range report.Routers {
		if report.SourceEstimate(id) != 0 || report.DestEstimate(id) != 0 {
			t.Fatalf("router %d inherited sketch state from the released big-domain monitor", id)
		}
	}
	m2.Release()
}

// TestMonitorReuseAfterFailedConstruction pins the error path that returns a
// half-updated monitor to the pool: a NewMonitor call that fails after the
// pool Get (illegal bucket count, so the slab rebuild errors) must recycle
// the object, and the next successful construction on it must not serve the
// previous owner's sketch contents.
func TestMonitorReuseAfterFailedConstruction(t *testing.T) {
	d := smallDomain(t)
	m1, err := NewMonitor(d.Net, MonitorConfig{Buckets: 64}, nil)
	if err != nil {
		t.Fatalf("NewMonitor: %v", err)
	}
	dirtyCounters(m1)
	m1.Release()

	if _, err := NewMonitor(d.Net, MonitorConfig{Buckets: 24}, nil); err == nil {
		t.Fatal("illegal bucket count accepted")
	}

	d2 := smallDomain(t)
	m2, err := NewMonitor(d2.Net, MonitorConfig{Buckets: 64}, nil)
	if err != nil {
		t.Fatalf("NewMonitor after failed construction: %v", err)
	}
	if m2 != m1 {
		t.Fatal("failed construction dropped the pooled monitor instead of recycling it")
	}
	for _, id := range m2.routerIDs {
		c := m2.Counter(id)
		if c.SourceEstimate() != 0 || c.DestEstimate() != 0 {
			t.Fatalf("router %d counter serves the previous owner's sketch state", id)
		}
	}
	m2.Release()
}

// TestMonitoredEpochRotationZeroAlloc pins that a monitored-only epoch tick —
// rotating every instrumented counter and computing the report from pooled
// buffers — allocates nothing in steady state.
func TestMonitoredEpochRotationZeroAlloc(t *testing.T) {
	d := smallDomain(t)
	d.Victim.SetDefaultHandler(func(*netsim.Packet, sim.Time) {})
	mon, err := NewMonitor(d.Net, MonitorConfig{Epoch: 100 * sim.Millisecond}, nil)
	if err != nil {
		t.Fatalf("NewMonitor: %v", err)
	}
	mon.Start()
	floodFrom(d, d.Clients[0], 300, 250*sim.Millisecond)
	if err := d.Net.Scheduler().RunUntil(400 * sim.Millisecond); err != nil {
		t.Fatalf("run: %v", err)
	}
	// Stop keeps OnEvent from rescheduling, so the measured body is exactly
	// one rotation plus one report computation over the pooled buffers.
	mon.Stop()
	now := d.Net.Scheduler().Now()
	allocs := testing.AllocsPerRun(50, func() { mon.OnEvent(now) })
	if allocs != 0 {
		t.Fatalf("monitored epoch rotation allocated %.1f times per tick, want 0", allocs)
	}
	mon.Release()
}
