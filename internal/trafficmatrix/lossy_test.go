package trafficmatrix

import (
	"testing"

	"mafic/internal/netsim"
	"mafic/internal/sim"
)

// TestReportLossDropsEpochs verifies a fully lossy control channel delivers
// nothing while the epochs themselves keep ending: the next surviving window
// (none here) would carry the advanced epoch index, so consumers see gaps
// rather than renumbered history.
func TestReportLossDropsEpochs(t *testing.T) {
	d := smallDomain(t)
	d.Victim.SetDefaultHandler(func(*netsim.Packet, sim.Time) {})
	delivered := 0
	mon, err := NewMonitor(d.Net, MonitorConfig{
		Epoch:      50 * sim.Millisecond,
		ReportLoss: 1,
	}, func(EpochReport) { delivered++ })
	if err != nil {
		t.Fatalf("NewMonitor: %v", err)
	}
	mon.Start()
	if err := d.Net.Scheduler().RunUntil(260 * sim.Millisecond); err != nil {
		t.Fatalf("run: %v", err)
	}
	if delivered != 0 {
		t.Fatalf("fully lossy channel delivered %d reports, want 0", delivered)
	}
	// Five epochs ended and were consumed; the next computed report carries
	// index 6, exposing the gap to consumers.
	if rep := mon.Compute(d.Net.Now()); rep.Epoch != 6 {
		t.Fatalf("epoch index after 5 lost epochs = %d, want 6", rep.Epoch)
	}
}

// TestPartialReportLossLeavesNumberingGaps verifies surviving reports keep
// their original epoch numbers: the delivered sequence is strictly increasing
// with holes where reports were lost.
func TestPartialReportLossLeavesNumberingGaps(t *testing.T) {
	d := smallDomain(t)
	d.Victim.SetDefaultHandler(func(*netsim.Packet, sim.Time) {})
	var epochs []int
	mon, err := NewMonitor(d.Net, MonitorConfig{
		Epoch:      10 * sim.Millisecond,
		ReportLoss: 0.5,
	}, func(r EpochReport) { epochs = append(epochs, r.Epoch) })
	if err != nil {
		t.Fatalf("NewMonitor: %v", err)
	}
	mon.Start()
	const ticks = 40
	if err := d.Net.Scheduler().RunUntil(ticks*10*sim.Millisecond + sim.Millisecond); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(epochs) == 0 || len(epochs) >= ticks {
		t.Fatalf("50%% loss delivered %d of %d reports; expected some but not all", len(epochs), ticks)
	}
	for i := 1; i < len(epochs); i++ {
		if epochs[i] <= epochs[i-1] {
			t.Fatalf("delivered epochs not strictly increasing: %v", epochs)
		}
	}
	if epochs[len(epochs)-1] > ticks {
		t.Fatalf("delivered epoch %d beyond the %d epochs that ended", epochs[len(epochs)-1], ticks)
	}
}

// TestDelayedReportsArriveLateAndOwned verifies delayed reports are delivered
// ReportDelay after their epoch boundary as deep copies that stay valid while
// the pooled buffers roll on underneath.
func TestDelayedReportsArriveLateAndOwned(t *testing.T) {
	d := smallDomain(t)
	d.Victim.SetDefaultHandler(func(*netsim.Packet, sim.Time) {})
	const (
		epoch = 50 * sim.Millisecond
		delay = 5 * sim.Millisecond
	)
	type arrival struct {
		epoch int
		at    sim.Time
		end   sim.Time
	}
	var got []arrival
	var retained []EpochReport
	mon, err := NewMonitor(d.Net, MonitorConfig{
		Epoch:           epoch,
		ReportDelayProb: 1,
		ReportDelay:     delay,
	}, func(r EpochReport) {
		got = append(got, arrival{epoch: r.Epoch, at: d.Net.Now(), end: r.End})
		retained = append(retained, r)
	})
	if err != nil {
		t.Fatalf("NewMonitor: %v", err)
	}
	mon.Start()
	if err := d.Net.Scheduler().RunUntil(4*epoch + 2*delay); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(got) != 4 {
		t.Fatalf("received %d delayed reports, want 4", len(got))
	}
	for i, a := range got {
		if a.epoch != i+1 {
			t.Fatalf("report %d has epoch %d, want %d", i, a.epoch, i+1)
		}
		if a.at != a.end+delay {
			t.Fatalf("report %d arrived at %v, want %v (boundary %v + delay %v)", i, a.at, a.end+delay, a.end, delay)
		}
	}
	// The retained copies must own their backing: each report's window is
	// still its own, untouched by the epochs computed after it.
	for i, r := range retained {
		if r.End != sim.Time(i+1)*epoch {
			t.Fatalf("retained report %d End mutated to %v", i, r.End)
		}
	}
}

// TestLossyMonitorPooledReuseClearsChannelState verifies a recycled monitor
// whose previous owner used the lossy channel comes back clean: no stale RNG,
// no stale loss knobs, so a fault-free reuse draws no randomness.
func TestLossyMonitorPooledReuseClearsChannelState(t *testing.T) {
	d := smallDomain(t)
	mon, err := NewMonitor(d.Net, MonitorConfig{
		Epoch:           20 * sim.Millisecond,
		ReportLoss:      0.5,
		ReportDelayProb: 0.5,
		ReportDelay:     sim.Millisecond,
	}, nil)
	if err != nil {
		t.Fatalf("NewMonitor: %v", err)
	}
	if mon.ctrlRNG == nil {
		t.Fatal("lossy monitor did not fork a control RNG")
	}
	mon.Release()

	d2 := smallDomain(t)
	mon2, err := NewMonitor(d2.Net, MonitorConfig{Epoch: 20 * sim.Millisecond}, nil)
	if err != nil {
		t.Fatalf("NewMonitor (reuse): %v", err)
	}
	defer mon2.Release()
	if mon2.ctrlRNG != nil || mon2.reportLoss != 0 || mon2.delayProb != 0 || mon2.reportDelay != 0 {
		t.Fatalf("recycled monitor kept lossy-channel state: rng=%v loss=%v delayProb=%v delay=%v",
			mon2.ctrlRNG, mon2.reportLoss, mon2.delayProb, mon2.reportDelay)
	}
}
