package trafficmatrix

import (
	"runtime"
	"testing"

	"mafic/internal/netsim"
	"mafic/internal/sim"
)

// TestCounterHandleZeroAlloc pins the per-packet measurement path at zero
// allocations: recording a packet into the epoch sketches must be free of
// heap traffic no matter how many packets flow.
func TestCounterHandleZeroAlloc(t *testing.T) {
	d := smallDomain(t)
	mon, err := NewMonitor(d.Net, MonitorConfig{Epoch: sim.Second}, nil)
	if err != nil {
		t.Fatal(err)
	}
	ingress := d.Ingress[0]
	c := mon.Counter(ingress.ID())
	if c == nil {
		t.Fatal("no counter on ingress router")
	}

	pkt := &netsim.Packet{
		ID:    1,
		Label: netsim.FlowLabel{SrcIP: d.Clients[0].PrimaryIP(), DstIP: d.VictimIP(), SrcPort: 9, DstPort: 80},
		Kind:  netsim.KindData,
		Proto: netsim.ProtoUDP,
		Size:  500,
	}
	// Resolve and cache the destination owner up front, as the forwarding
	// path does before the counter runs.
	pkt.DestOwner(d.Net)

	allocs := testing.AllocsPerRun(1000, func() {
		pkt.ID++
		if c.Handle(pkt, 0, ingress) != netsim.ActionForward {
			t.Fatal("counter must never drop")
		}
	})
	if allocs != 0 {
		t.Fatalf("Counter.Handle allocates %v per packet, want 0", allocs)
	}
}

// TestEpochProcessingZeroAlloc pins the monitor's per-epoch pipeline —
// counter rotation, estimate tables, matrix intersection, report delivery —
// at zero steady-state allocations.
func TestEpochProcessingZeroAlloc(t *testing.T) {
	d := smallDomain(t)
	d.Victim.SetDefaultHandler(func(*netsim.Packet, sim.Time) {})

	var sink float64
	mon, err := NewMonitor(d.Net, MonitorConfig{Epoch: 50 * sim.Millisecond}, func(r EpochReport) {
		for _, id := range r.Routers {
			sink += r.DestEstimate(id) + r.SourceEstimate(id)
		}
		for _, cell := range r.Matrix {
			sink += cell.Packets
		}
	})
	if err != nil {
		t.Fatal(err)
	}
	mon.Start()

	// Push real traffic through so the matrix has non-trivial cells, then
	// let a few epochs run to warm the pooled buffers.
	floodFrom(d, d.Zombies[0], 400, 120*sim.Millisecond)
	if err := d.Net.Scheduler().RunUntil(200 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}

	now := d.Net.Now()
	allocs := testing.AllocsPerRun(20, func() {
		mon.OnEvent(now)
	})
	if allocs != 0 {
		t.Fatalf("epoch processing allocates %v per epoch, want 0", allocs)
	}
	if sink == 0 {
		t.Fatal("callback never saw traffic; the zero-alloc run proved nothing")
	}
}

// TestMonitorReuseRecyclesSketchSlab pins the monitor pool: building a
// monitor on a fresh same-shaped domain after releasing one must cost a
// small fraction of the first build's allocations, because the sketch slab —
// the dominant construction cost — is recycled rather than reallocated.
func TestMonitorReuseRecyclesSketchSlab(t *testing.T) {
	measure := func() uint64 {
		d := smallDomain(t)
		var before, after runtime.MemStats
		runtime.ReadMemStats(&before)
		mon, err := NewMonitor(d.Net, MonitorConfig{Epoch: sim.Second}, nil)
		if err != nil {
			t.Fatal(err)
		}
		runtime.ReadMemStats(&after)
		mon.Release()
		return after.Mallocs - before.Mallocs
	}
	first := measure()
	second := measure()
	if second*4 >= first {
		t.Fatalf("monitor reuse saved too little: first build %d mallocs, second %d", first, second)
	}
}

// TestMonitorReuseLeaksNoCounts verifies recycled sketches are reset: a
// reused monitor must estimate zero traffic before any packet flows.
func TestMonitorReuseLeaksNoCounts(t *testing.T) {
	d := smallDomain(t)
	mon, err := NewMonitor(d.Net, MonitorConfig{Epoch: 50 * sim.Millisecond}, nil)
	if err != nil {
		t.Fatal(err)
	}
	floodFrom(d, d.Zombies[0], 200, 60*sim.Millisecond)
	if err := d.Net.Scheduler().RunUntil(100 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	warm := mon.Compute(d.Net.Now())
	if warm.DestEstimate(d.LastHop.ID()) == 0 {
		t.Fatal("setup monitor saw no traffic; the reuse check would prove nothing")
	}
	mon.Release()

	d2 := smallDomain(t)
	mon2, err := NewMonitor(d2.Net, MonitorConfig{Epoch: 50 * sim.Millisecond}, nil)
	if err != nil {
		t.Fatal(err)
	}
	report := mon2.Compute(d2.Net.Now())
	for _, id := range report.Routers {
		if report.DestEstimate(id) != 0 || report.SourceEstimate(id) != 0 {
			t.Fatalf("recycled monitor leaked counts at router %d: dest %v src %v",
				id, report.DestEstimate(id), report.SourceEstimate(id))
		}
	}
}

// TestFreshBuffersReportsAreIndependent verifies the FreshBuffers escape
// hatch: consecutive reports must not share backing arrays.
func TestFreshBuffersReportsAreIndependent(t *testing.T) {
	d := smallDomain(t)
	d.Victim.SetDefaultHandler(func(*netsim.Packet, sim.Time) {})

	var reports []EpochReport
	mon, err := NewMonitor(d.Net, MonitorConfig{Epoch: 50 * sim.Millisecond, FreshBuffers: true},
		func(r EpochReport) { reports = append(reports, r) }) // deliberately no Clone
	if err != nil {
		t.Fatal(err)
	}
	mon.Start()
	floodFrom(d, d.Zombies[0], 300, 40*sim.Millisecond)
	if err := d.Net.Scheduler().RunUntil(160 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if len(reports) < 2 {
		t.Fatalf("got %d reports, want >= 2", len(reports))
	}
	if &reports[0].DestEst[0] == &reports[1].DestEst[0] {
		t.Fatal("FreshBuffers reports share estimate backing")
	}
	// The first epoch saw the burst; later epochs must still show it even
	// though newer reports were produced since (no pooled overwrite).
	if reports[0].DestEstimate(d.LastHop.ID()) < 100 {
		t.Fatalf("first retained report lost its data: %v", reports[0].DestEstimate(d.LastHop.ID()))
	}
}
