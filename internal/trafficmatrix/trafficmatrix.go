// Package trafficmatrix implements the set-union counting measurement layer
// of the paper (Section II): every router keeps two LogLog sketches per
// measurement epoch — S_i, the identities of packets injected into the domain
// at that router, and D_j, the identities of packets terminating there — and
// a monitor periodically estimates the traffic matrix
//
//	a_ij = |S_i ∩ D_j| = |S_i| + |D_j| − |S_i ∪ D_j|
//
// from which the pushback layer detects victims (abnormally large |D_j|) and
// identifies the attack-transit routers (large a_ij toward the victim).
package trafficmatrix

import (
	"errors"
	"fmt"
	"sort"

	"mafic/internal/loglog"
	"mafic/internal/netsim"
	"mafic/internal/sim"
)

// CounterName is the filter name router-attached counters register under.
const CounterName = "loglog-counter"

// Counter is the per-router measurement element, the analogue of the
// LogLogCounter Connector subclass the paper adds to NS-2. It implements
// netsim.Filter and never drops packets.
type Counter struct {
	router  *netsim.Router
	buckets int

	source *loglog.Sketch // S_i: packets entering the domain here
	dest   *loglog.Sketch // D_j: packets terminating here

	sourcePkts uint64
	destPkts   uint64
	transit    uint64
}

var _ netsim.Filter = (*Counter)(nil)

// NewCounter creates a counter for the given router using LogLog sketches
// with the given bucket count.
func NewCounter(router *netsim.Router, buckets int) (*Counter, error) {
	src, err := loglog.New(buckets)
	if err != nil {
		return nil, fmt.Errorf("source sketch: %w", err)
	}
	dst, err := loglog.New(buckets)
	if err != nil {
		return nil, fmt.Errorf("dest sketch: %w", err)
	}
	return &Counter{router: router, buckets: buckets, source: src, dest: dst}, nil
}

// Name implements netsim.Filter.
func (c *Counter) Name() string { return CounterName }

// Router returns the router the counter observes.
func (c *Counter) Router() *netsim.Router { return c.router }

// Handle records the packet into the appropriate sketches and always lets it
// continue: the measurement layer is purely passive.
func (c *Counter) Handle(pkt *netsim.Packet, _ sim.Time, at *netsim.Router) netsim.Action {
	// Control traffic (pushback signalling, probes) is not user traffic
	// and is excluded from the matrix.
	if pkt.Kind == netsim.KindControl || pkt.Kind == netsim.KindProbe {
		return netsim.ActionForward
	}
	if pkt.Hops == 0 {
		c.source.Add(pkt.ID)
		c.sourcePkts++
	} else {
		c.transit++
	}
	destNode := pkt.DestOwner(at.Network())
	if destNode != netsim.NoNode && at.Network().LinkBetween(at.ID(), destNode) != nil {
		c.dest.Add(pkt.ID)
		c.destPkts++
	}
	return netsim.ActionForward
}

// SourceEstimate returns the current-epoch estimate of |S_i|.
func (c *Counter) SourceEstimate() float64 { return c.source.Estimate() }

// DestEstimate returns the current-epoch estimate of |D_j|.
func (c *Counter) DestEstimate() float64 { return c.dest.Estimate() }

// SourcePackets returns the exact number of packets counted into S_i this
// epoch (used by tests to validate the sketches).
func (c *Counter) SourcePackets() uint64 { return c.sourcePkts }

// DestPackets returns the exact number of packets counted into D_j.
func (c *Counter) DestPackets() uint64 { return c.destPkts }

// snapshot clones the sketches for epoch processing.
func (c *Counter) snapshot() (src, dst *loglog.Sketch) {
	return c.source.Clone(), c.dest.Clone()
}

// reset clears the per-epoch state.
func (c *Counter) reset() {
	c.source.Reset()
	c.dest.Reset()
	c.sourcePkts = 0
	c.destPkts = 0
	c.transit = 0
}

// Cell is one traffic-matrix entry: the estimated number of distinct packets
// entering at Source and terminating at Dest during the epoch.
type Cell struct {
	Source netsim.NodeID
	Dest   netsim.NodeID
	// Packets is the a_ij estimate.
	Packets float64
}

// EpochReport is the monitor's per-epoch output.
type EpochReport struct {
	// Epoch is the index of the measurement period, starting at 1.
	Epoch int
	// Start and End bound the measurement period.
	Start, End sim.Time
	// DestEstimates maps each router to its |D_j| estimate.
	DestEstimates map[netsim.NodeID]float64
	// SourceEstimates maps each router to its |S_i| estimate.
	SourceEstimates map[netsim.NodeID]float64
	// Matrix holds the a_ij estimates for every (source, dest) pair with
	// non-trivial traffic.
	Matrix []Cell
}

// TopSources returns the source routers ranked by their estimated
// contribution a_ij toward the given destination router, largest first.
func (r *EpochReport) TopSources(dest netsim.NodeID) []Cell {
	var cells []Cell
	for _, c := range r.Matrix {
		if c.Dest == dest {
			cells = append(cells, c)
		}
	}
	sort.Slice(cells, func(i, j int) bool { return cells[i].Packets > cells[j].Packets })
	return cells
}

// Monitor aggregates the per-router counters and computes the traffic matrix
// once per epoch, the role the TrafficMonitor object plays in the paper's
// NS-2 implementation.
type Monitor struct {
	sched    *sim.Scheduler
	counters map[netsim.NodeID]*Counter
	epoch    sim.Time

	epochIndex int
	epochStart sim.Time
	onReport   func(EpochReport)

	stop    bool
	running bool
}

// MonitorConfig configures a Monitor.
type MonitorConfig struct {
	// Epoch is the measurement period length.
	Epoch sim.Time
	// Buckets is the LogLog bucket count for every counter; zero means
	// loglog.DefaultBuckets.
	Buckets int
}

// Validate reports configuration problems. Zero values are valid — they
// select the package defaults, exactly as NewMonitor treats them; anything
// else must be a positive epoch and a legal LogLog bucket count.
func (c MonitorConfig) Validate() error {
	if c.Epoch < 0 {
		return fmt.Errorf("%w: epoch %v must not be negative", ErrMonitorConfig, c.Epoch)
	}
	if c.Buckets != 0 {
		if _, err := loglog.New(c.Buckets); err != nil {
			return fmt.Errorf("%w: %v", ErrMonitorConfig, err)
		}
	}
	return nil
}

// ErrMonitorConfig is returned by MonitorConfig.Validate.
var ErrMonitorConfig = errors.New("trafficmatrix: invalid monitor config")

// NewMonitor creates a monitor and attaches a counter to every router of the
// network. The onReport callback receives each epoch's traffic matrix.
func NewMonitor(net *netsim.Network, cfg MonitorConfig, onReport func(EpochReport)) (*Monitor, error) {
	if cfg.Buckets <= 0 {
		cfg.Buckets = loglog.DefaultBuckets
	}
	if cfg.Epoch <= 0 {
		cfg.Epoch = 100 * sim.Millisecond
	}
	m := &Monitor{
		sched:    net.Scheduler(),
		counters: make(map[netsim.NodeID]*Counter, len(net.Routers())),
		epoch:    cfg.Epoch,
		onReport: onReport,
	}
	for id, r := range net.Routers() {
		c, err := NewCounter(r, cfg.Buckets)
		if err != nil {
			return nil, err
		}
		r.AttachFilter(c)
		m.counters[id] = c
	}
	return m, nil
}

// Counter returns the counter attached to the given router, or nil.
func (m *Monitor) Counter(id netsim.NodeID) *Counter { return m.counters[id] }

// Epoch returns the measurement period length.
func (m *Monitor) Epoch() sim.Time { return m.epoch }

// Start schedules periodic epoch processing beginning one epoch from now.
func (m *Monitor) Start() {
	if m.running {
		return
	}
	m.running = true
	m.stop = false
	m.epochStart = m.sched.Now()
	m.sched.ScheduleAfter(m.epoch, m.tick)
}

// Stop halts epoch processing after the current epoch completes.
func (m *Monitor) Stop() { m.stop = true }

func (m *Monitor) tick(now sim.Time) {
	report := m.Compute(now)
	if m.onReport != nil {
		m.onReport(report)
	}
	for _, c := range m.counters {
		c.reset()
	}
	m.epochStart = now
	if m.stop {
		m.running = false
		return
	}
	m.sched.ScheduleAfter(m.epoch, m.tick)
}

// Compute builds an EpochReport from the counters' current state without
// resetting them. The periodic tick uses it; tests and on-demand diagnostics
// may call it directly.
func (m *Monitor) Compute(now sim.Time) EpochReport {
	m.epochIndex++
	report := EpochReport{
		Epoch:           m.epochIndex,
		Start:           m.epochStart,
		End:             now,
		DestEstimates:   make(map[netsim.NodeID]float64, len(m.counters)),
		SourceEstimates: make(map[netsim.NodeID]float64, len(m.counters)),
	}

	type snap struct {
		id       netsim.NodeID
		src, dst *loglog.Sketch
	}
	snaps := make([]snap, 0, len(m.counters))
	for id, c := range m.counters {
		s, d := c.snapshot()
		snaps = append(snaps, snap{id: id, src: s, dst: d})
		report.SourceEstimates[id] = s.Estimate()
		report.DestEstimates[id] = d.Estimate()
	}
	sort.Slice(snaps, func(i, j int) bool { return snaps[i].id < snaps[j].id })

	for _, si := range snaps {
		if report.SourceEstimates[si.id] < 1 {
			continue
		}
		for _, dj := range snaps {
			if report.DestEstimates[dj.id] < 1 {
				continue
			}
			aij, err := loglog.IntersectionEstimate(si.src, dj.dst)
			if err != nil || aij < 1 {
				continue
			}
			report.Matrix = append(report.Matrix, Cell{Source: si.id, Dest: dj.id, Packets: aij})
		}
	}
	return report
}
