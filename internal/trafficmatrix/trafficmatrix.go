// Package trafficmatrix implements the set-union counting measurement layer
// of the paper (Section II): every router keeps two LogLog sketches per
// measurement epoch — S_i, the identities of packets injected into the domain
// at that router, and D_j, the identities of packets terminating there — and
// a monitor periodically estimates the traffic matrix
//
//	a_ij = |S_i ∩ D_j| = |S_i| + |D_j| − |S_i ∪ D_j|
//
// from which the pushback layer detects victims (abnormally large |D_j|) and
// identifies the attack-transit routers (large a_ij toward the victim).
//
// # Epoch pipeline and buffer ownership
//
// The layer is allocation-free in steady state. Each counter records into the
// active half of a double-buffered sketch pair; at an epoch boundary the pair
// is swapped (the epoch freezes into the shadow half, the active half is
// cleared) instead of cloned. The monitor owns one set of report buffers —
// dense NodeID-indexed estimate tables, the matrix cell slice, and a scratch
// union sketch — reused across epochs, mirroring the netsim packet pool's
// ownership rules: an EpochReport handed to the onReport callback is valid
// only for the duration of the callback, because the next epoch overwrites
// the shared backing arrays. Callbacks that need to retain a report keep a
// deep copy via EpochReport.Clone. Setting MonitorConfig.FreshBuffers makes
// the monitor allocate fresh backing per epoch instead (the historical
// behaviour); the golden invariance tests use it to prove buffer reuse never
// changes results.
//
// # Monitored set
//
// By default the monitor instruments only the routers that can ever record
// traffic: those with at least one attached host. A counter's S_i sketch
// fills only at a packet's first router (Hops == 0, the sending host's access
// router) and its D_j sketch only at a router directly linked to the
// destination host, so a router with no host neighbour contributes nothing to
// any epoch report — attaching 4 sketches × every router, as the layer
// historically did, spends almost all of its memory and rotation work on
// counters that stay empty for the whole run. Reports from the monitored set
// are bit-identical to the historical ones apart from EpochReport.Routers
// shrinking to the instrumented routers; MonitorConfig.MonitorAll restores
// the historical every-router behaviour as the equivalence oracle, and
// MonitorConfig.Monitored pins an explicit set. The catalog-wide invariance
// tests run whole scenarios under both settings to prove the equivalence.
package trafficmatrix

import (
	"errors"
	"fmt"
	"slices"
	"sort"

	"mafic/internal/loglog"
	"mafic/internal/netsim"
	"mafic/internal/pool"
	"mafic/internal/sim"
)

// CounterName is the filter name router-attached counters register under.
const CounterName = "loglog-counter"

// Counter is the per-router measurement element, the analogue of the
// LogLogCounter Connector subclass the paper adds to NS-2. It implements
// netsim.Filter and never drops packets.
type Counter struct {
	router  *netsim.Router
	buckets int

	source loglog.Pair // S_i: packets entering the domain here
	dest   loglog.Pair // D_j: packets terminating here

	sourcePkts uint64
	destPkts   uint64
	transit    uint64
}

var _ netsim.Filter = (*Counter)(nil)

// NewCounter creates a counter for the given router using LogLog sketches
// with the given bucket count.
func NewCounter(router *netsim.Router, buckets int) (*Counter, error) {
	c := &Counter{}
	if err := c.init(router, buckets, nil); err != nil {
		return nil, err
	}
	return c, nil
}

// init wires a counter in place. When slab is non-nil it must hold at least
// four sketches, which become the counter's two double-buffered pairs; the
// monitor uses this to build every counter of a domain from one allocation.
func (c *Counter) init(router *netsim.Router, buckets int, slab []loglog.Sketch) error {
	var src, dst loglog.Pair
	var err error
	if slab != nil {
		if src, err = loglog.PairOf(&slab[0], &slab[1]); err != nil {
			return fmt.Errorf("source sketch: %w", err)
		}
		if dst, err = loglog.PairOf(&slab[2], &slab[3]); err != nil {
			return fmt.Errorf("dest sketch: %w", err)
		}
	} else {
		if src, err = loglog.NewPair(buckets); err != nil {
			return fmt.Errorf("source sketch: %w", err)
		}
		if dst, err = loglog.NewPair(buckets); err != nil {
			return fmt.Errorf("dest sketch: %w", err)
		}
	}
	*c = Counter{router: router, buckets: buckets, source: src, dest: dst}
	return nil
}

// Name implements netsim.Filter.
func (c *Counter) Name() string { return CounterName }

// Router returns the router the counter observes.
func (c *Counter) Router() *netsim.Router { return c.router }

// Handle records the packet into the appropriate sketches and always lets it
// continue: the measurement layer is purely passive.
func (c *Counter) Handle(pkt *netsim.Packet, _ sim.Time, at *netsim.Router) netsim.Action {
	// Control traffic (pushback signalling, probes) is not user traffic
	// and is excluded from the matrix.
	if pkt.Kind == netsim.KindControl || pkt.Kind == netsim.KindProbe {
		return netsim.ActionForward
	}
	if pkt.Hops == 0 {
		c.source.Active().Add(pkt.ID)
		c.sourcePkts++
	} else {
		c.transit++
	}
	// D_j fills at the destination's attachment routers. AttachmentLink
	// reads the host's inline attachment record (and is nil for NoNode),
	// where a LinkBetween probe would be a per-packet adjacency search that
	// misses almost everywhere.
	destNode := pkt.DestOwner(at.Network())
	if at.Network().AttachmentLink(at.ID(), destNode) != nil {
		c.dest.Active().Add(pkt.ID)
		c.destPkts++
	}
	return netsim.ActionForward
}

// SourceEstimate returns the running estimate of |S_i| for the epoch in
// progress.
func (c *Counter) SourceEstimate() float64 { return c.source.Active().Estimate() }

// DestEstimate returns the running estimate of |D_j| for the epoch in
// progress.
func (c *Counter) DestEstimate() float64 { return c.dest.Active().Estimate() }

// SourcePackets returns the exact number of packets counted into S_i this
// epoch (used by tests to validate the sketches).
func (c *Counter) SourcePackets() uint64 { return c.sourcePkts }

// DestPackets returns the exact number of packets counted into D_j.
func (c *Counter) DestPackets() uint64 { return c.destPkts }

// epochSketches returns the sketches to compute an epoch report from: the
// frozen shadow halves after a rotate, or the live active halves for
// mid-epoch diagnostics.
func (c *Counter) epochSketches(frozen bool) (src, dst *loglog.Sketch) {
	if frozen {
		return c.source.Shadow(), c.dest.Shadow()
	}
	return c.source.Active(), c.dest.Active()
}

// rotate ends the counter's epoch: both pairs swap, freezing the finished
// epoch in their shadow halves and clearing the active halves for the next
// one. Nothing is cloned and nothing allocates.
func (c *Counter) rotate() {
	c.source.Swap()
	c.dest.Swap()
	c.sourcePkts = 0
	c.destPkts = 0
	c.transit = 0
}

// Cell is one traffic-matrix entry: the estimated number of distinct packets
// entering at Source and terminating at Dest during the epoch.
type Cell struct {
	Source netsim.NodeID
	Dest   netsim.NodeID
	// Packets is the a_ij estimate.
	Packets float64
}

// cellByPacketsDesc orders cells by descending contribution. A named
// top-level function keeps the sort closure-free.
func cellByPacketsDesc(a, b Cell) int {
	switch {
	case a.Packets > b.Packets:
		return -1
	case a.Packets < b.Packets:
		return 1
	default:
		return 0
	}
}

// EpochReport is the monitor's per-epoch output. Estimates live in dense
// NodeID-indexed tables rather than maps so readers index instead of hash
// and iteration order is deterministic (ascending router ID).
//
// Reports delivered through the monitor's onReport callback share the
// monitor's pooled buffers: they are valid only during the callback unless
// copied with Clone. Reports obtained from a FreshBuffers monitor, from
// Clone, or built by hand own their backing and stay valid indefinitely.
type EpochReport struct {
	// Epoch is the index of the measurement period, starting at 1.
	Epoch int
	// Start and End bound the measurement period.
	Start, End sim.Time
	// Routers lists every router carrying a counter (the monitored set),
	// ascending by ID.
	Routers []netsim.NodeID
	// SourceEst and DestEst are the |S_i| and |D_j| estimate tables,
	// indexed by NodeID; entries for IDs outside Routers are zero. Use
	// SourceEstimate/DestEstimate for bounds-checked access.
	SourceEst, DestEst []float64
	// Matrix holds the a_ij estimates for every (source, dest) pair with
	// non-trivial traffic, ordered by ascending (source, dest).
	Matrix []Cell
}

// SourceEstimate returns the |S_i| estimate for the given router, or zero.
func (r *EpochReport) SourceEstimate(id netsim.NodeID) float64 {
	if id < 0 || int(id) >= len(r.SourceEst) {
		return 0
	}
	return r.SourceEst[id]
}

// DestEstimate returns the |D_j| estimate for the given router, or zero.
func (r *EpochReport) DestEstimate(id netsim.NodeID) float64 {
	if id < 0 || int(id) >= len(r.DestEst) {
		return 0
	}
	return r.DestEst[id]
}

// TopSources returns the source routers ranked by their estimated
// contribution a_ij toward the given destination router, largest first.
func (r *EpochReport) TopSources(dest netsim.NodeID) []Cell {
	return r.AppendTopSources(nil, dest)
}

// AppendTopSources appends the ranked sources for dest to dst and returns
// the extended slice; passing a reused buffer makes the ranking
// allocation-free.
func (r *EpochReport) AppendTopSources(dst []Cell, dest netsim.NodeID) []Cell {
	start := len(dst)
	for _, c := range r.Matrix {
		if c.Dest == dest {
			dst = append(dst, c)
		}
	}
	slices.SortFunc(dst[start:], cellByPacketsDesc)
	return dst
}

// Clone returns a deep copy of the report that owns its backing arrays,
// for callers that retain reports beyond the onReport callback.
func (r *EpochReport) Clone() EpochReport {
	cp := *r
	cp.Routers = append([]netsim.NodeID(nil), r.Routers...)
	cp.SourceEst = append([]float64(nil), r.SourceEst...)
	cp.DestEst = append([]float64(nil), r.DestEst...)
	cp.Matrix = append([]Cell(nil), r.Matrix...)
	return cp
}

// Monitor aggregates the per-router counters and computes the traffic matrix
// once per epoch, the role the TrafficMonitor object plays in the paper's
// NS-2 implementation.
type Monitor struct {
	sched *sim.Scheduler
	// counters is the dense NodeID-indexed counter table (nil for hosts
	// and for routers outside the monitored set); counterSlab is its
	// backing, one allocation for the whole monitored set.
	counters    []*Counter
	counterSlab []Counter
	// sketchSlab backs every counter's four sketches (see NewMonitor); it
	// is retained across Release/NewMonitor cycles so a pooled monitor's
	// dominant construction cost — the sketch memory — is paid once.
	sketchSlab []loglog.Sketch
	// routerIDs lists the instrumented routers ascending; every per-epoch
	// loop walks this, never a map.
	routerIDs []netsim.NodeID
	buckets   int
	epoch     sim.Time

	epochIndex int
	epochStart sim.Time
	onReport   func(EpochReport)

	// Lossy control channel (see MonitorConfig). ctrlRNG is non-nil only
	// when a loss or delay probability is configured: a monitor with both
	// knobs zero draws no randomness at all, which is what keeps fault-free
	// runs bit-identical to builds without the lossy channel.
	reportLoss  float64
	delayProb   float64
	reportDelay sim.Time
	ctrlRNG     *sim.RNG

	// Pooled report backing (see the package comment). scratch holds the
	// union sketch reused by every intersection estimate.
	srcEst, dstEst []float64
	matrix         []Cell
	scratch        *loglog.Sketch
	fresh          bool
	// nbScratch is the reusable neighbour buffer behind the automatic
	// monitored-set derivation.
	nbScratch []netsim.NodeID

	stop    bool
	running bool
}

var (
	_ sim.EventHandler = (*Monitor)(nil)
	_ sim.ArgHandler   = (*Monitor)(nil)
)

// MonitorConfig configures a Monitor.
type MonitorConfig struct {
	// Epoch is the measurement period length.
	Epoch sim.Time
	// Buckets is the LogLog bucket count for every counter; zero means
	// loglog.DefaultBuckets.
	Buckets int
	// FreshBuffers disables report-buffer pooling: every epoch allocates
	// its own estimate tables and matrix, so reports may be retained
	// without Clone. Measurement results are bit-identical either way —
	// the golden invariance tests run the whole scenario catalog under
	// both settings to prove it.
	FreshBuffers bool
	// Monitored restricts instrumentation to the given routers (order and
	// duplicates are irrelevant; NewMonitor rejects IDs that are not
	// routers of the network). Empty selects the automatic set: every
	// router with at least one attached host, which the package comment
	// shows is report-equivalent to monitoring all of them.
	Monitored []netsim.NodeID
	// MonitorAll attaches a counter to every router of the network — the
	// historical behaviour, kept as the oracle for the monitored-set
	// default. Mutually exclusive with Monitored.
	MonitorAll bool
	// ReportLoss is the probability, drawn once per epoch, that the epoch's
	// report is lost: counters still rotate and the epoch index advances
	// (downstream consumers see a numbering gap), but no report reaches the
	// onReport callback. Zero (the default) disables loss and draws no
	// randomness.
	ReportLoss float64
	// ReportDelayProb is the probability that a surviving report is
	// delivered ReportDelay late instead of at the epoch boundary. Delayed
	// reports are deep copies (the pooled buffers roll on underneath) and
	// may arrive after newer epochs' reports — consumers must tolerate
	// out-of-order delivery. Zero disables delay and draws no randomness.
	ReportDelayProb float64
	// ReportDelay is how late a delayed report arrives. Required positive
	// when ReportDelayProb is set.
	ReportDelay sim.Time
}

// Validate reports configuration problems. Zero values are valid — they
// select the package defaults, exactly as NewMonitor treats them; anything
// else must be a positive epoch and a legal LogLog bucket count.
func (c MonitorConfig) Validate() error {
	if c.Epoch < 0 {
		return fmt.Errorf("%w: epoch %v must not be negative", ErrMonitorConfig, c.Epoch)
	}
	if c.Buckets != 0 {
		if _, err := loglog.New(c.Buckets); err != nil {
			return fmt.Errorf("%w: %v", ErrMonitorConfig, err)
		}
	}
	if c.MonitorAll && len(c.Monitored) > 0 {
		return fmt.Errorf("%w: MonitorAll and an explicit Monitored set are mutually exclusive", ErrMonitorConfig)
	}
	for _, id := range c.Monitored {
		if id < 0 {
			return fmt.Errorf("%w: monitored node %d is negative", ErrMonitorConfig, id)
		}
	}
	if c.ReportLoss < 0 || c.ReportLoss > 1 {
		return fmt.Errorf("%w: report loss %v must be in [0,1]", ErrMonitorConfig, c.ReportLoss)
	}
	if c.ReportDelayProb < 0 || c.ReportDelayProb > 1 {
		return fmt.Errorf("%w: report delay probability %v must be in [0,1]", ErrMonitorConfig, c.ReportDelayProb)
	}
	if c.ReportDelay < 0 {
		return fmt.Errorf("%w: report delay %v must not be negative", ErrMonitorConfig, c.ReportDelay)
	}
	if c.ReportDelayProb > 0 && c.ReportDelay <= 0 {
		return fmt.Errorf("%w: report delay probability %v needs a positive ReportDelay", ErrMonitorConfig, c.ReportDelayProb)
	}
	return nil
}

// ErrMonitorConfig is returned by MonitorConfig.Validate.
var ErrMonitorConfig = errors.New("trafficmatrix: invalid monitor config")

// monitorPool recycles released monitors across runs. The retained sketch
// slab is the prize: at stress scale it is tens of megabytes of counter
// state that would otherwise be reallocated (and re-zeroed by the allocator)
// for every sweep point.
var monitorPool = pool.FreeList[Monitor]{Cap: 64}

// monitoredSet resolves the configured monitored set into the sorted,
// deduplicated router-ID list the monitor instruments, appending into ids
// (the recycled routerIDs backing). nb is a reusable neighbour buffer for the
// automatic host-adjacency walk; the possibly-grown buffer is returned so the
// pooled monitor keeps its capacity.
func monitoredSet(net *netsim.Network, cfg MonitorConfig, ids, nb []netsim.NodeID) ([]netsim.NodeID, []netsim.NodeID, error) {
	routers := net.Routers()
	switch {
	case len(cfg.Monitored) > 0:
		for _, id := range cfg.Monitored {
			if _, ok := routers[id]; !ok {
				return nil, nb, fmt.Errorf("%w: monitored node %d is not a router of the network", ErrMonitorConfig, id)
			}
			ids = append(ids, id)
		}
	case cfg.MonitorAll:
		for id := range routers {
			ids = append(ids, id)
		}
	default:
		// Automatic set: routers adjacent to at least one host — the only
		// routers whose counters can record anything (see the package
		// comment). Host maps iterate in arbitrary order; the sort below
		// makes the result deterministic.
		for hid := range net.Hosts() {
			nb = net.AppendNeighbors(nb[:0], hid)
			for _, r := range nb {
				if _, ok := routers[r]; ok {
					ids = append(ids, r)
				}
			}
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return slices.Compact(ids), nb, nil
}

// NewMonitor creates a monitor and attaches a counter to each router of the
// configured monitored set — by default every router with an attached host,
// which yields the same reports as instrumenting all of them (see the package
// comment; MonitorConfig.MonitorAll restores that historical behaviour). The
// onReport callback receives each epoch's traffic matrix; see the package
// comment for the report's lifetime rules. The monitor (sketch slab included)
// comes from the package pool when a released one with compatible geometry is
// available.
func NewMonitor(net *netsim.Network, cfg MonitorConfig, onReport func(EpochReport)) (*Monitor, error) {
	if cfg.Buckets <= 0 {
		cfg.Buckets = loglog.DefaultBuckets
	}
	if cfg.Epoch <= 0 {
		cfg.Epoch = 100 * sim.Millisecond
	}
	if cfg.MonitorAll && len(cfg.Monitored) > 0 {
		return nil, fmt.Errorf("%w: MonitorAll and an explicit Monitored set are mutually exclusive", ErrMonitorConfig)
	}
	routers := net.Routers()

	m := monitorPool.Get()
	if m == nil {
		m = &Monitor{}
	}
	ids, nb, err := monitoredSet(net, cfg, m.routerIDs[:0], m.nbScratch[:0])
	if err != nil {
		// Recycle rather than drop, as with the slab failure below.
		m.nbScratch = nb
		monitorPool.Put(m)
		return nil, err
	}
	width := 0
	if len(ids) > 0 {
		width = int(ids[len(ids)-1]) + 1
	}

	counters := m.counters
	if cap(counters) >= width {
		counters = counters[:cap(counters)]
		for i := range counters {
			counters[i] = nil
		}
		counters = counters[:width]
	} else {
		counters = make([]*Counter, width)
	}

	// One sketch slab and one counter slab cover every router: counter
	// construction is O(1) allocations regardless of domain size, and a
	// recycled slab with matching bucket geometry is simply reset.
	need := 4 * len(ids)
	sketches := m.sketchSlab
	if len(sketches) >= need && (need == 0 || sketches[0].Buckets() == cfg.Buckets) {
		for i := range sketches[:need] {
			sketches[i].Reset()
		}
	} else {
		var err error
		if sketches, err = loglog.NewSlab(need, cfg.Buckets); err != nil {
			// Failed constructions must not drain the pool of its
			// warmed slabs; the next NewMonitor re-initialises every
			// field, so the half-updated object is safe to recycle.
			monitorPool.Put(m)
			return nil, err
		}
	}
	counterSlab := m.counterSlab
	if cap(counterSlab) >= len(ids) {
		counterSlab = counterSlab[:len(ids)]
	} else {
		counterSlab = make([]Counter, len(ids))
	}

	srcEst, dstEst, scratch := m.srcEst, m.dstEst, m.scratch
	if cfg.FreshBuffers {
		srcEst, dstEst, scratch = nil, nil, nil
	} else {
		if cap(srcEst) >= width {
			srcEst = srcEst[:width]
			dstEst = dstEst[:width]
		} else {
			srcEst = make([]float64, width)
			dstEst = make([]float64, width)
		}
		if scratch == nil || scratch.Buckets() != cfg.Buckets {
			scratch = loglog.MustNew(cfg.Buckets)
		}
	}

	// The control-channel RNG is forked only when a loss/delay knob is
	// actually set: a fault-free monitor consumes no draw from the
	// network's stream, preserving bit-identity with the pre-fault-layer
	// engine. The full-literal reinit below also guarantees pooled reuse
	// cannot carry a previous run's lossy-channel state into this one.
	var ctrlRNG *sim.RNG
	if cfg.ReportLoss > 0 || cfg.ReportDelayProb > 0 {
		ctrlRNG = net.RNG().Fork()
	}
	*m = Monitor{
		sched:       net.Scheduler(),
		counters:    counters,
		counterSlab: counterSlab,
		sketchSlab:  sketches,
		routerIDs:   ids,
		buckets:     cfg.Buckets,
		epoch:       cfg.Epoch,
		onReport:    onReport,
		fresh:       cfg.FreshBuffers,
		srcEst:      srcEst,
		dstEst:      dstEst,
		matrix:      m.matrix[:0],
		scratch:     scratch,
		nbScratch:   nb,
		reportLoss:  cfg.ReportLoss,
		delayProb:   cfg.ReportDelayProb,
		reportDelay: cfg.ReportDelay,
		ctrlRNG:     ctrlRNG,
	}
	for i, id := range ids {
		c := &m.counterSlab[i]
		if err := c.init(routers[id], cfg.Buckets, sketches[4*i:4*i+4]); err != nil {
			m.Release()
			return nil, err
		}
		routers[id].AttachFilter(c)
		m.counters[id] = c
	}
	return m, nil
}

// Release returns the monitor to the package pool for reuse by a later run.
// Call it only after the simulation that owns the monitor has finished — no
// epoch tick may fire afterwards — and do not use the monitor again. The
// sketch slab and report buffers stay with the pooled object; references
// into the dead domain are dropped so the pool cannot pin a network.
func (m *Monitor) Release() {
	m.sched = nil
	m.onReport = nil
	m.running = false
	m.stop = false
	m.epochIndex = 0
	m.epochStart = 0
	m.ctrlRNG = nil
	m.reportLoss = 0
	m.delayProb = 0
	m.reportDelay = 0
	for i := range m.counters {
		m.counters[i] = nil
	}
	for i := range m.counterSlab {
		m.counterSlab[i].router = nil
	}
	monitorPool.Put(m)
}

// Counter returns the counter attached to the given router, or nil when the
// router is outside the monitored set (or the ID is not a router at all).
func (m *Monitor) Counter(id netsim.NodeID) *Counter {
	if id < 0 || int(id) >= len(m.counters) {
		return nil
	}
	return m.counters[id]
}

// Epoch returns the measurement period length.
func (m *Monitor) Epoch() sim.Time { return m.epoch }

// Start schedules periodic epoch processing beginning one epoch from now.
func (m *Monitor) Start() {
	if m.running {
		return
	}
	m.running = true
	m.stop = false
	m.epochStart = m.sched.Now()
	m.sched.ScheduleHandlerAfter(m.epoch, m)
}

// Stop halts epoch processing after the current epoch completes.
func (m *Monitor) Stop() { m.stop = true }

// OnEvent implements sim.EventHandler: it is the epoch tick. Scheduling the
// monitor itself (rather than a bound method value) keeps the periodic
// rescheduling allocation-free.
func (m *Monitor) OnEvent(now sim.Time) {
	for _, id := range m.routerIDs {
		m.counters[id].rotate()
	}
	if m.ctrlRNG != nil && m.ctrlRNG.Bool(m.reportLoss) {
		// The report is lost on the control channel: the epoch still ends
		// (counters rotated above) and its index is still consumed, so
		// consumers observe a numbering gap — but nothing is computed or
		// delivered.
		m.epochIndex++
		m.finishEpoch(now)
		return
	}
	report := m.compute(now, true)
	if m.onReport != nil {
		if m.ctrlRNG != nil && m.ctrlRNG.Bool(m.delayProb) {
			// Delayed delivery: the pooled report buffers roll on with the
			// next epoch, so the late copy must own its backing. The
			// allocation is confined to the lossy-channel path.
			late := report.Clone()
			m.sched.ScheduleArgAfter(m.reportDelay, m, &late)
		} else {
			m.onReport(report)
		}
	}
	m.finishEpoch(now)
}

// finishEpoch advances the epoch window and reschedules the tick.
func (m *Monitor) finishEpoch(now sim.Time) {
	m.epochStart = now
	if m.stop {
		m.running = false
		return
	}
	m.sched.ScheduleHandlerAfter(m.epoch, m)
}

// OnEventArg implements sim.ArgHandler: a delayed epoch report reaches the
// consumer. The argument is the owned deep copy made at the epoch boundary.
func (m *Monitor) OnEventArg(_ sim.Time, arg any) {
	late := arg.(*EpochReport)
	if m.onReport != nil {
		m.onReport(*late)
	}
}

// Compute builds an EpochReport from the counters' current in-progress state
// without ending the epoch. The periodic tick instead freezes the epoch via
// the pair swap and computes from the frozen halves; tests and on-demand
// diagnostics call Compute directly. The returned report follows the same
// lifetime rules as callback reports (see the package comment).
func (m *Monitor) Compute(now sim.Time) EpochReport {
	return m.compute(now, false)
}

// compute assembles the epoch report from either the frozen or the live
// sketch halves, reusing the monitor's pooled buffers unless FreshBuffers
// is set.
func (m *Monitor) compute(now sim.Time, frozen bool) EpochReport {
	m.epochIndex++
	srcEst, dstEst, matrix, scratch := m.srcEst, m.dstEst, m.matrix[:0], m.scratch
	if m.fresh {
		srcEst = make([]float64, len(m.counters))
		dstEst = make([]float64, len(m.counters))
		matrix = nil
		scratch = loglog.MustNew(m.buckets)
	} else {
		for i := range srcEst {
			srcEst[i] = 0
			dstEst[i] = 0
		}
	}

	for _, id := range m.routerIDs {
		src, dst := m.counters[id].epochSketches(frozen)
		srcEst[id] = src.Estimate()
		dstEst[id] = dst.Estimate()
	}
	for _, i := range m.routerIDs {
		if srcEst[i] < 1 {
			continue
		}
		si, _ := m.counters[i].epochSketches(frozen)
		for _, j := range m.routerIDs {
			if dstEst[j] < 1 {
				continue
			}
			_, dj := m.counters[j].epochSketches(frozen)
			union, err := loglog.UnionEstimateInto(scratch, si, dj)
			if err != nil {
				continue
			}
			aij := srcEst[i] + dstEst[j] - union
			if aij < 1 {
				continue
			}
			matrix = append(matrix, Cell{Source: i, Dest: j, Packets: aij})
		}
	}
	if !m.fresh {
		m.matrix = matrix
	}
	return EpochReport{
		Epoch:     m.epochIndex,
		Start:     m.epochStart,
		End:       now,
		Routers:   m.routerIDs,
		SourceEst: srcEst,
		DestEst:   dstEst,
		Matrix:    matrix,
	}
}
