// Package flowtable implements the three per-ATR flow tables MAFIC keeps
// (paper Section III-B): the Suspicious Flow Table (SFT) for flows under
// probing, the Nice Flow Table (NFT) for flows that backed off after the
// probe, and the Permanently Drop Table (PDT) for flows whose packets are
// dropped unconditionally.
//
// To minimise storage overhead the tables store only a 64-bit hash of each
// flow's 4-tuple label, exactly as the paper describes, plus the small amount
// of per-flow state the probing logic needs.
package flowtable

import (
	"sort"

	"mafic/internal/sim"
)

// State identifies which table a flow currently lives in.
type State int

// Flow states. A flow not present in any table is Unknown.
const (
	StateUnknown State = iota
	StateSuspicious
	StateNice
	StatePermanentDrop
)

// String implements fmt.Stringer.
func (s State) String() string {
	switch s {
	case StateSuspicious:
		return "SFT"
	case StateNice:
		return "NFT"
	case StatePermanentDrop:
		return "PDT"
	default:
		return "unknown"
	}
}

// Entry is the per-flow record kept while a flow is tracked. All fields are
// maintained by the owning table; the MAFIC engine reads and updates the
// probing counters directly.
type Entry struct {
	// LabelHash is the hashed 4-tuple identifying the flow.
	LabelHash uint64
	// State is the table the entry currently belongs to.
	State State
	// Gen counts how many times this slab slot has been recycled. Holders
	// of long-lived *Entry references (the MAFIC engine's scheduled probe
	// and classification events) capture Gen at reference time and treat a
	// mismatch as "this flow is gone": the slot may already describe a
	// different flow.
	Gen uint32

	// FirstSeen is when the flow was first inserted.
	FirstSeen sim.Time
	// LastSeen is the arrival time of the flow's most recent packet.
	LastSeen sim.Time
	// ProbeStart is when the probing window opened (SFT entries only).
	ProbeStart sim.Time
	// ProbeDeadline is when the probing window closes (2×RTT after
	// ProbeStart for the default configuration).
	ProbeDeadline sim.Time

	// BaselineCount counts packet arrivals in the first half of the
	// probing window; ResponseCount counts arrivals in the second half.
	// Comparing the two tells MAFIC whether the source backed off.
	BaselineCount int
	// ResponseCount counts packet arrivals in the second half of the
	// probing window.
	ResponseCount int
	// Packets counts every arrival attributed to the flow while tracked.
	Packets uint64
	// Dropped counts the flow's packets this ATR has dropped.
	Dropped uint64
}

// entryChunk is how many entries one slab allocation carves.
const entryChunk = 64

// Tables bundles the SFT, NFT and PDT with capacity bounds and statistics.
// It is a passive data structure: timing decisions belong to the caller.
//
// Entries are slab-allocated in chunks and recycled through a free list when
// a flow is evicted or the tables are flushed, so steady-state flow churn
// inserts without allocating. Recycling bumps Entry.Gen; see Entry.
type Tables struct {
	sft map[uint64]*Entry
	nft map[uint64]*Entry
	pdt map[uint64]*Entry

	// capacity bounds each table; zero means unbounded.
	capacity int

	// slab is the tail of the current chunk still to be carved; free holds
	// recycled entries, reused LIFO.
	slab []Entry
	free []*Entry

	// evictions counts entries discarded because a table was full.
	evictions uint64
	// transitions counts state moves, indexed by destination state.
	transitions [statePermanentDropIdx + 1]uint64
}

// statePermanentDropIdx bounds the transitions array.
const statePermanentDropIdx = int(StatePermanentDrop)

// New returns empty tables. capacity bounds each individual table; zero or
// negative means unbounded.
func New(capacity int) *Tables {
	if capacity < 0 {
		capacity = 0
	}
	return &Tables{
		sft:      make(map[uint64]*Entry),
		nft:      make(map[uint64]*Entry),
		pdt:      make(map[uint64]*Entry),
		capacity: capacity,
	}
}

// SetCapacity adjusts the per-table bound for subsequent inserts; zero or
// negative means unbounded. Existing entries are never evicted eagerly.
func (t *Tables) SetCapacity(capacity int) {
	if capacity < 0 {
		capacity = 0
	}
	t.capacity = capacity
}

// get returns a blank entry from the free list or the slab. Every field
// except Gen is zero.
func (t *Tables) get() *Entry {
	if n := len(t.free); n > 0 {
		e := t.free[n-1]
		t.free = t.free[:n-1]
		return e
	}
	if len(t.slab) == 0 {
		t.slab = make([]Entry, entryChunk)
	}
	e := &t.slab[0]
	t.slab = t.slab[1:]
	return e
}

// put recycles an entry. The generation bump invalidates every outstanding
// reference to the old occupant.
func (t *Tables) put(e *Entry) {
	*e = Entry{Gen: e.Gen + 1}
	t.free = append(t.free, e)
}

// Lookup returns the entry for the hashed label and the table it lives in.
// It returns (nil, StateUnknown) for untracked flows.
func (t *Tables) Lookup(labelHash uint64) (*Entry, State) {
	if e, ok := t.pdt[labelHash]; ok {
		return e, StatePermanentDrop
	}
	if e, ok := t.nft[labelHash]; ok {
		return e, StateNice
	}
	if e, ok := t.sft[labelHash]; ok {
		return e, StateSuspicious
	}
	return nil, StateUnknown
}

// InsertSuspicious creates an SFT entry for a newly probed flow. If the flow
// is already tracked anywhere the existing entry is returned unchanged.
func (t *Tables) InsertSuspicious(labelHash uint64, now, deadline sim.Time) *Entry {
	if e, state := t.Lookup(labelHash); state != StateUnknown {
		return e
	}
	t.makeRoom(t.sft)
	e := t.get()
	e.LabelHash = labelHash
	e.State = StateSuspicious
	e.FirstSeen, e.LastSeen = now, now
	e.ProbeStart, e.ProbeDeadline = now, deadline
	t.sft[labelHash] = e
	t.transitions[StateSuspicious]++
	return e
}

// InsertPermanent places a flow directly into the PDT (used for illegal or
// unreachable source addresses). If the flow is tracked elsewhere it is
// moved.
func (t *Tables) InsertPermanent(labelHash uint64, now sim.Time) *Entry {
	if e, state := t.Lookup(labelHash); state != StateUnknown {
		if state != StatePermanentDrop {
			t.move(e, StatePermanentDrop)
		}
		return e
	}
	t.makeRoom(t.pdt)
	e := t.get()
	e.LabelHash = labelHash
	e.State = StatePermanentDrop
	e.FirstSeen, e.LastSeen = now, now
	t.pdt[labelHash] = e
	t.transitions[StatePermanentDrop]++
	return e
}

// Promote moves an SFT entry to the NFT (the flow responded to the probe).
func (t *Tables) Promote(e *Entry) {
	if e == nil || e.State != StateSuspicious {
		return
	}
	t.move(e, StateNice)
}

// Condemn moves an SFT entry to the PDT (the flow ignored the probe).
func (t *Tables) Condemn(e *Entry) {
	if e == nil || e.State != StateSuspicious {
		return
	}
	t.move(e, StatePermanentDrop)
}

// Demote returns an NFT entry to the SFT for a fresh probing cycle, resetting
// the probe-window bookkeeping while keeping the flow's lifetime counters.
// The hardened defender uses it to re-probe a "nice" flow whose arrival
// pattern has turned suspicious again (e.g. a long silent gap consistent with
// a rotating attack source).
func (t *Tables) Demote(e *Entry, now, deadline sim.Time) {
	if e == nil || e.State != StateNice {
		return
	}
	e.ProbeStart, e.ProbeDeadline = now, deadline
	e.BaselineCount, e.ResponseCount = 0, 0
	t.move(e, StateSuspicious)
}

// move transfers an entry between tables and updates its state.
func (t *Tables) move(e *Entry, to State) {
	switch e.State {
	case StateSuspicious:
		delete(t.sft, e.LabelHash)
	case StateNice:
		delete(t.nft, e.LabelHash)
	case StatePermanentDrop:
		delete(t.pdt, e.LabelHash)
	}
	e.State = to
	switch to {
	case StateSuspicious:
		t.makeRoom(t.sft)
		t.sft[e.LabelHash] = e
	case StateNice:
		t.makeRoom(t.nft)
		t.nft[e.LabelHash] = e
	case StatePermanentDrop:
		t.makeRoom(t.pdt)
		t.pdt[e.LabelHash] = e
	}
	t.transitions[to]++
}

// makeRoom evicts the least recently seen entry when a table is at capacity.
func (t *Tables) makeRoom(table map[uint64]*Entry) {
	if t.capacity <= 0 || len(table) < t.capacity {
		return
	}
	var victim *Entry
	for _, e := range table {
		if victim == nil || e.LastSeen < victim.LastSeen {
			victim = e
		}
	}
	if victim != nil {
		delete(table, victim.LabelHash)
		t.put(victim)
		t.evictions++
	}
}

// Reset returns the tables to their just-constructed state: every entry is
// flushed and the cumulative eviction and transition counters are zeroed.
// Pools that recycle a Tables across owners use it so the next owner cannot
// observe a previous run's statistics.
func (t *Tables) Reset() {
	t.Flush()
	t.evictions = 0
	t.transitions = [statePermanentDropIdx + 1]uint64{}
}

// Flush clears every table, as MAFIC does when the victim withdraws the
// pushback request. Entries return to the free list; the maps keep their
// storage so reactivation does not reallocate.
func (t *Tables) Flush() {
	for _, e := range t.sft {
		t.put(e)
	}
	for _, e := range t.nft {
		t.put(e)
	}
	for _, e := range t.pdt {
		t.put(e)
	}
	clear(t.sft)
	clear(t.nft)
	clear(t.pdt)
}

// ExpiredSuspicious returns the SFT entries whose probing window has closed
// as of now, ordered by deadline. The MAFIC engine classifies them.
func (t *Tables) ExpiredSuspicious(now sim.Time) []*Entry {
	var out []*Entry
	for _, e := range t.sft {
		if now >= e.ProbeDeadline {
			out = append(out, e)
		}
	}
	sort.Slice(out, func(i, j int) bool { return out[i].ProbeDeadline < out[j].ProbeDeadline })
	return out
}

// Range calls fn for every tracked flow with the table it lives in.
// Iteration order is unspecified. It is the allocation-free alternative to
// Snapshot for end-of-run accounting.
func (t *Tables) Range(fn func(labelHash uint64, state State)) {
	for h := range t.sft {
		fn(h, StateSuspicious)
	}
	for h := range t.nft {
		fn(h, StateNice)
	}
	for h := range t.pdt {
		fn(h, StatePermanentDrop)
	}
}

// Snapshot returns the state of every tracked flow keyed by label hash.
// It is used for end-of-run flow-level accounting (which legitimate flows
// were condemned, which attack flows slipped into the NFT).
func (t *Tables) Snapshot() map[uint64]State {
	out := make(map[uint64]State, len(t.sft)+len(t.nft)+len(t.pdt))
	for h := range t.sft {
		out[h] = StateSuspicious
	}
	for h := range t.nft {
		out[h] = StateNice
	}
	for h := range t.pdt {
		out[h] = StatePermanentDrop
	}
	return out
}

// Sizes reports the number of entries in the SFT, NFT and PDT.
func (t *Tables) Sizes() (sft, nft, pdt int) {
	return len(t.sft), len(t.nft), len(t.pdt)
}

// Evictions reports how many entries were discarded due to capacity limits.
func (t *Tables) Evictions() uint64 { return t.evictions }

// Transitions reports how many entries have entered the given state.
func (t *Tables) Transitions(to State) uint64 {
	if to < 0 || int(to) > statePermanentDropIdx {
		return 0
	}
	return t.transitions[to]
}
