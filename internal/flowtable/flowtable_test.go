package flowtable

import (
	"testing"
	"testing/quick"

	"mafic/internal/sim"
)

func TestStateString(t *testing.T) {
	tests := []struct {
		state State
		want  string
	}{
		{StateSuspicious, "SFT"},
		{StateNice, "NFT"},
		{StatePermanentDrop, "PDT"},
		{StateUnknown, "unknown"},
	}
	for _, tt := range tests {
		if got := tt.state.String(); got != tt.want {
			t.Fatalf("State(%d).String() = %q, want %q", tt.state, got, tt.want)
		}
	}
}

func TestLookupUnknown(t *testing.T) {
	tb := New(0)
	if e, state := tb.Lookup(42); e != nil || state != StateUnknown {
		t.Fatal("untracked flow should be unknown")
	}
}

func TestInsertSuspiciousAndLookup(t *testing.T) {
	tb := New(0)
	e := tb.InsertSuspicious(1, 100, 300)
	if e == nil || e.State != StateSuspicious {
		t.Fatal("InsertSuspicious did not create an SFT entry")
	}
	if e.ProbeStart != 100 || e.ProbeDeadline != 300 {
		t.Fatalf("probe window = [%v,%v], want [100,300]", e.ProbeStart, e.ProbeDeadline)
	}
	got, state := tb.Lookup(1)
	if got != e || state != StateSuspicious {
		t.Fatal("Lookup did not find the SFT entry")
	}
	// Re-inserting must not reset the existing entry.
	again := tb.InsertSuspicious(1, 999, 9999)
	if again != e || again.ProbeStart != 100 {
		t.Fatal("re-insertion must return the existing entry unchanged")
	}
	if tb.Transitions(StateSuspicious) != 1 {
		t.Fatalf("SFT transitions = %d, want 1", tb.Transitions(StateSuspicious))
	}
}

func TestPromoteAndCondemn(t *testing.T) {
	tb := New(0)
	nice := tb.InsertSuspicious(1, 0, 10)
	bad := tb.InsertSuspicious(2, 0, 10)

	tb.Promote(nice)
	tb.Condemn(bad)

	if _, state := tb.Lookup(1); state != StateNice {
		t.Fatal("promoted flow not in NFT")
	}
	if _, state := tb.Lookup(2); state != StatePermanentDrop {
		t.Fatal("condemned flow not in PDT")
	}
	sft, nft, pdt := tb.Sizes()
	if sft != 0 || nft != 1 || pdt != 1 {
		t.Fatalf("sizes = %d/%d/%d, want 0/1/1", sft, nft, pdt)
	}
	// Promote/Condemn only apply to SFT entries.
	tb.Promote(bad)
	if _, state := tb.Lookup(2); state != StatePermanentDrop {
		t.Fatal("Promote must not move a PDT entry")
	}
	tb.Condemn(nice)
	if _, state := tb.Lookup(1); state != StateNice {
		t.Fatal("Condemn must not move an NFT entry")
	}
	tb.Promote(nil)
	tb.Condemn(nil) // must not panic
}

func TestInsertPermanentDirect(t *testing.T) {
	tb := New(0)
	e := tb.InsertPermanent(7, 50)
	if e.State != StatePermanentDrop {
		t.Fatal("InsertPermanent did not create a PDT entry")
	}
	// Inserting a flow that is currently suspicious moves it.
	s := tb.InsertSuspicious(8, 0, 10)
	moved := tb.InsertPermanent(8, 60)
	if moved != s || moved.State != StatePermanentDrop {
		t.Fatal("InsertPermanent should move an existing SFT entry to the PDT")
	}
	// Idempotent for already-permanent flows.
	again := tb.InsertPermanent(7, 70)
	if again != e {
		t.Fatal("InsertPermanent should return the existing PDT entry")
	}
}

func TestExpiredSuspicious(t *testing.T) {
	tb := New(0)
	tb.InsertSuspicious(1, 0, 100)
	tb.InsertSuspicious(2, 0, 200)
	tb.InsertSuspicious(3, 0, 300)

	expired := tb.ExpiredSuspicious(250)
	if len(expired) != 2 {
		t.Fatalf("expired = %d entries, want 2", len(expired))
	}
	if expired[0].LabelHash != 1 || expired[1].LabelHash != 2 {
		t.Fatalf("expired entries out of order: %v, %v", expired[0].LabelHash, expired[1].LabelHash)
	}
	if got := tb.ExpiredSuspicious(50); len(got) != 0 {
		t.Fatalf("nothing should be expired at t=50, got %d", len(got))
	}
}

func TestFlush(t *testing.T) {
	tb := New(0)
	tb.InsertSuspicious(1, 0, 10)
	tb.Promote(tb.InsertSuspicious(2, 0, 10))
	tb.InsertPermanent(3, 0)
	tb.Flush()
	sft, nft, pdt := tb.Sizes()
	if sft+nft+pdt != 0 {
		t.Fatalf("Flush left %d/%d/%d entries", sft, nft, pdt)
	}
	if _, state := tb.Lookup(1); state != StateUnknown {
		t.Fatal("flushed flow still tracked")
	}
}

func TestCapacityEviction(t *testing.T) {
	tb := New(3)
	tb.InsertSuspicious(1, 10, 100)
	tb.InsertSuspicious(2, 20, 100)
	tb.InsertSuspicious(3, 30, 100)
	// Table full: inserting a fourth evicts the least recently seen (1).
	tb.InsertSuspicious(4, 40, 100)
	sft, _, _ := tb.Sizes()
	if sft != 3 {
		t.Fatalf("SFT size = %d, want 3", sft)
	}
	if _, state := tb.Lookup(1); state != StateUnknown {
		t.Fatal("oldest entry should have been evicted")
	}
	if tb.Evictions() != 1 {
		t.Fatalf("evictions = %d, want 1", tb.Evictions())
	}
}

func TestNegativeCapacityMeansUnbounded(t *testing.T) {
	tb := New(-5)
	for i := uint64(0); i < 100; i++ {
		tb.InsertSuspicious(i, sim.Time(i), 1000)
	}
	sft, _, _ := tb.Sizes()
	if sft != 100 {
		t.Fatalf("SFT size = %d, want 100 (unbounded)", sft)
	}
	if tb.Evictions() != 0 {
		t.Fatal("unbounded table should not evict")
	}
}

// TestSingleResidencyProperty checks the core invariant that a flow is never
// present in more than one table, whatever sequence of operations runs.
func TestSingleResidencyProperty(t *testing.T) {
	type op struct {
		Kind  uint8
		Label uint64
	}
	prop := func(ops []op) bool {
		tb := New(8)
		now := sim.Time(0)
		for _, o := range ops {
			now += 10
			label := o.Label % 16 // force collisions between operations
			switch o.Kind % 4 {
			case 0:
				tb.InsertSuspicious(label, now, now+100)
			case 1:
				tb.InsertPermanent(label, now)
			case 2:
				if e, state := tb.Lookup(label); state == StateSuspicious {
					tb.Promote(e)
				}
			case 3:
				if e, state := tb.Lookup(label); state == StateSuspicious {
					tb.Condemn(e)
				}
			}
			// Invariant: lookup state matches the entry's own state.
			if e, state := tb.Lookup(label); e != nil && e.State != state {
				return false
			}
		}
		return true
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}
