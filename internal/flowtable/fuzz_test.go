package flowtable

import (
	"encoding/binary"
	"testing"

	"mafic/internal/sim"
)

// FuzzTablesOps drives the SFT/NFT/PDT state machine with an arbitrary
// operation stream under a tiny capacity bound and checks the structural
// invariants the MAFIC engine relies on: a flow lives in at most one table,
// Lookup agrees with the entry's own State, and no table ever exceeds its
// capacity.
func FuzzTablesOps(f *testing.F) {
	f.Add([]byte{0, 1, 0, 0, 0, 0, 0, 0, 0})
	f.Add([]byte{
		0, 1, 0, 0, 0, 0, 0, 0, 0, // insert suspicious #1
		2, 1, 0, 0, 0, 0, 0, 0, 0, // promote #1
		1, 1, 0, 0, 0, 0, 0, 0, 0, // force #1 into the PDT
		4, 0, 0, 0, 0, 0, 0, 0, 0, // flush
	})
	f.Add([]byte{
		0, 1, 0, 0, 0, 0, 0, 0, 0,
		0, 2, 0, 0, 0, 0, 0, 0, 0,
		0, 3, 0, 0, 0, 0, 0, 0, 0,
		0, 4, 0, 0, 0, 0, 0, 0, 0, // overflows capacity 3: evicts
		3, 2, 0, 0, 0, 0, 0, 0, 0, // condemn #2
	})
	f.Fuzz(func(t *testing.T, ops []byte) {
		const capacity = 3
		tables := New(capacity)
		now := sim.Time(0)

		checkInvariants := func() {
			t.Helper()
			sft, nft, pdt := tables.Sizes()
			if sft > capacity || nft > capacity || pdt > capacity {
				t.Fatalf("capacity exceeded: sft=%d nft=%d pdt=%d cap=%d", sft, nft, pdt, capacity)
			}
			snap := tables.Snapshot()
			if len(snap) != sft+nft+pdt {
				t.Fatalf("a flow lives in more than one table: snapshot=%d, sizes=%d",
					len(snap), sft+nft+pdt)
			}
			for hash, state := range snap {
				entry, got := tables.Lookup(hash)
				if got != state {
					t.Fatalf("Lookup(%#x) state %v != snapshot state %v", hash, got, state)
				}
				if entry == nil {
					t.Fatalf("Lookup(%#x) returned a nil entry for a tracked flow", hash)
				}
				if entry.State != state {
					t.Fatalf("entry.State %v != table membership %v", entry.State, state)
				}
			}
		}

		for len(ops) >= 9 {
			op := ops[0]
			hash := binary.LittleEndian.Uint64(ops[1:9])
			ops = ops[9:]
			now += sim.Millisecond

			switch op % 6 {
			case 0:
				e := tables.InsertSuspicious(hash, now, now+10*sim.Millisecond)
				if e == nil {
					t.Fatal("InsertSuspicious returned nil")
				}
			case 1:
				e := tables.InsertPermanent(hash, now)
				if e == nil {
					t.Fatal("InsertPermanent returned nil")
				}
				if e.State != StatePermanentDrop {
					t.Fatalf("InsertPermanent left state %v", e.State)
				}
			case 2:
				if e, state := tables.Lookup(hash); state == StateSuspicious {
					tables.Promote(e)
					if e.State != StateNice {
						t.Fatalf("Promote left state %v", e.State)
					}
				} else {
					tables.Promote(e) // no-op on non-SFT entries, must not corrupt
				}
			case 3:
				if e, state := tables.Lookup(hash); state == StateSuspicious {
					tables.Condemn(e)
					if e.State != StatePermanentDrop {
						t.Fatalf("Condemn left state %v", e.State)
					}
				} else {
					tables.Condemn(e)
				}
			case 4:
				tables.Flush()
				if sft, nft, pdt := tables.Sizes(); sft+nft+pdt != 0 {
					t.Fatal("Flush left entries behind")
				}
			case 5:
				expired := tables.ExpiredSuspicious(now)
				for i := 1; i < len(expired); i++ {
					if expired[i-1].ProbeDeadline > expired[i].ProbeDeadline {
						t.Fatal("ExpiredSuspicious not sorted by deadline")
					}
				}
			}
			checkInvariants()
		}
	})
}
