package flowtable

import (
	"fmt"
	"sort"
)

// TablesState is the dynamic state of one Tables: every tracked entry
// verbatim (generation counters included, so outstanding probe-record
// liveness checks keep working across a restore) plus the cumulative
// statistics. Capacity is rebuild-covered.
type TablesState struct {
	Entries     []Entry
	Evictions   uint64
	Transitions [statePermanentDropIdx + 1]uint64
}

// ForEachEntry visits every tracked entry in deterministic order — SFT, NFT,
// PDT, each ascending by label hash — so capture output does not depend on
// map iteration order.
func (t *Tables) ForEachEntry(fn func(e *Entry)) {
	scratch := make([]uint64, 0, len(t.sft)+len(t.nft)+len(t.pdt))
	for _, m := range [3]map[uint64]*Entry{t.sft, t.nft, t.pdt} {
		hashes := scratch[:0]
		for h := range m {
			hashes = append(hashes, h)
		}
		sort.Slice(hashes, func(i, j int) bool { return hashes[i] < hashes[j] })
		for _, h := range hashes {
			fn(m[h])
		}
		scratch = hashes
	}
}

// CheckpointState captures the tables' dynamic state.
func (t *Tables) CheckpointState() TablesState {
	st := TablesState{
		Evictions:   t.evictions,
		Transitions: t.transitions,
	}
	t.ForEachEntry(func(e *Entry) { st.Entries = append(st.Entries, *e) })
	return st
}

// RestoreState flushes the rebuilt tables and re-inserts the captured
// entries verbatim, Gen included: a probe record captured as live binds to
// its restored entry with matching generations, and the next flush or
// eviction still invalidates it through the usual bump.
func (t *Tables) RestoreState(st TablesState) error {
	t.Flush()
	for i := range st.Entries {
		rec := &st.Entries[i]
		e := t.get()
		*e = *rec
		switch rec.State {
		case StateSuspicious:
			t.sft[rec.LabelHash] = e
		case StateNice:
			t.nft[rec.LabelHash] = e
		case StatePermanentDrop:
			t.pdt[rec.LabelHash] = e
		default:
			t.put(e)
			return fmt.Errorf("flowtable: restore entry %x has invalid state %d", rec.LabelHash, rec.State)
		}
	}
	t.evictions = st.Evictions
	t.transitions = st.Transitions
	return nil
}

// CheckpointTypes lists this package's structs that carry snapshotted state.
var CheckpointTypes = []any{
	Tables{},
	Entry{},
}
