// Package traffic provides the flow-level workload the MAFIC evaluation
// needs: TCP-friendly adaptive sources that react to loss and duplicated
// ACKs, constant-rate UDP sources, unresponsive DDoS attack sources with
// spoofed addresses, a victim server that acknowledges TCP data, and a
// workload builder that assembles the mixes used in the paper's figures
// (traffic volume V_t, TCP share Γ, source rate R).
package traffic

import (
	"mafic/internal/netsim"
	"mafic/internal/sim"
)

// Flow is the common interface of every traffic source.
type Flow interface {
	// ID is the ground-truth flow identifier carried by every packet the
	// flow emits.
	ID() int
	// Label is the flow's 4-tuple.
	Label() netsim.FlowLabel
	// Malicious reports whether the flow is part of the attack.
	Malicious() bool
	// Start schedules the flow's first transmission at the given time.
	Start(at sim.Time)
	// Stop halts the flow; queued transmissions are cancelled lazily.
	Stop()
	// PacketsSent reports how many data packets the flow has emitted.
	PacketsSent() uint64
	// CurrentRate reports the flow's present sending rate in packets per
	// second (the congestion-controlled rate for TCP sources, the
	// configured rate for constant-rate sources).
	CurrentRate() float64
}

// DefaultDataSize is the payload packet size in bytes used by every source
// unless overridden.
const DefaultDataSize = 500

// DefaultAckSize is the acknowledgement packet size in bytes.
const DefaultAckSize = 40

// victimPort is the destination port every flow targets on the victim.
const victimPort = 80
