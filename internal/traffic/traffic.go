// Package traffic provides the flow-level workload the MAFIC evaluation
// needs: TCP-friendly adaptive sources that react to loss and duplicated
// ACKs, constant-rate UDP sources, unresponsive DDoS attack sources with
// spoofed addresses, a victim server that acknowledges TCP data, and a
// workload builder that assembles the mixes used in the paper's figures
// (traffic volume V_t, TCP share Γ, source rate R).
package traffic

import (
	"mafic/internal/netsim"
	"mafic/internal/sim"
)

// Flow is the common interface of every traffic source.
type Flow interface {
	// ID is the ground-truth flow identifier carried by every packet the
	// flow emits.
	ID() int
	// Label is the flow's 4-tuple.
	Label() netsim.FlowLabel
	// Malicious reports whether the flow is part of the attack.
	Malicious() bool
	// Start schedules the flow's first transmission at the given time.
	Start(at sim.Time)
	// Stop halts the flow; queued transmissions are cancelled lazily.
	Stop()
	// PacketsSent reports how many data packets the flow has emitted.
	PacketsSent() uint64
	// CurrentRate reports the flow's present sending rate in packets per
	// second (the congestion-controlled rate for TCP sources, the
	// configured rate for constant-rate sources).
	CurrentRate() float64
}

// DefaultDataSize is the payload packet size in bytes used by every source
// unless overridden.
const DefaultDataSize = 500

// DefaultAckSize is the acknowledgement packet size in bytes.
const DefaultAckSize = 40

// victimPort is the destination port every flow targets on the victim.
const victimPort = 80

// attackSourceLabel returns the 4-tuple an attack flow stamps on its packets,
// honouring the spoofing mode: forged addresses replace the zombie's own for
// SpoofLegitimate and SpoofIllegal, SpoofNone keeps the real address.
func attackSourceLabel(zombie *netsim.Host, victim netsim.IP, srcPort uint16, spoof SpoofMode, spoofedIP netsim.IP) netsim.FlowLabel {
	src := zombie.PrimaryIP()
	if (spoof == SpoofLegitimate || spoof == SpoofIllegal) && spoofedIP != 0 {
		src = spoofedIP
	}
	return netsim.FlowLabel{
		SrcIP:   src,
		DstIP:   victim,
		SrcPort: srcPort,
		DstPort: victimPort,
	}
}

// emitAttackPacket builds and sends one TCP-marked attack data packet. The
// pulsing and rotating sources share it so their wire format cannot diverge.
func emitAttackPacket(net *netsim.Network, host *netsim.Host, label netsim.FlowLabel, labelHash uint64, flowID int, seq int64, size int) {
	pkt := net.NewPacket()
	pkt.ID = net.NextPacketID()
	pkt.Label = label
	pkt.Kind = netsim.KindData
	pkt.Proto = netsim.ProtoTCP
	pkt.Seq = seq
	pkt.Size = size
	pkt.FlowID = flowID
	pkt.Malicious = true
	pkt.SetFlowHash(labelHash)
	host.Send(pkt)
}
