package traffic

import (
	"testing"

	"mafic/internal/sim"
)

// TestFlowLifecycleSteadyStateDoesNotAllocate pins the pooled flow
// lifecycle: once each pool holds a released object, a full
// construct/start/stop/release cycle — TCP and rolling-pulse sources alike —
// performs no heap allocation. This is what lets sweeps churn through
// thousands of flow starts without touching the allocator.
func TestFlowLifecycleSteadyStateDoesNotAllocate(t *testing.T) {
	d := testDomain(t)
	sched := d.Net.Scheduler()
	victim := d.VictimIP()
	client := d.Clients[0]
	zombie := d.Zombies[0]
	tcpCfg := DefaultTCPConfig()
	rotCfg := RotatingConfig{PeakRate: 100, SlotLength: 10 * sim.Millisecond, Groups: 2}
	rng := sim.NewRNG(9)

	cycle := func() {
		tcp := NewTCPSource(1, tcpCfg, client, victim, 10001)
		rot := NewRotatingSource(2, rotCfg, zombie, victim, 10002, rng)
		tcp.Start(sched.Now())
		rot.Start(sched.Now())
		tcp.Stop()
		rot.Stop()
		// Drain the cancelled start events so the scheduler arena stays
		// at its steady-state size.
		if err := sched.Run(); err != nil {
			t.Fatalf("drain: %v", err)
		}
		tcp.Release()
		rot.Release()
	}
	// Warm-up: populate the pools and the scheduler arena.
	for i := 0; i < 4; i++ {
		cycle()
	}

	if allocs := testing.AllocsPerRun(100, cycle); allocs != 0 {
		t.Fatalf("steady-state flow lifecycle allocated %.1f times per cycle", allocs)
	}
}

// TestReleasedTCPSourceIsFullyReset guards pooling hygiene: a source reused
// from the pool must behave exactly like a freshly allocated one — counters
// zeroed, window back at the initial value, handler re-registered on the new
// host.
func TestReleasedTCPSourceIsFullyReset(t *testing.T) {
	d := testDomain(t)
	NewVictimServer(d.Victim, 0)
	cfg := DefaultTCPConfig()

	first := NewTCPSource(1, cfg, d.Clients[0], d.VictimIP(), 10001)
	first.Start(0)
	if err := d.Net.Scheduler().RunUntil(1 * sim.Second); err != nil {
		t.Fatal(err)
	}
	first.Stop()
	if first.PacketsSent() == 0 || first.AcksReceived() == 0 {
		t.Fatal("first lifetime saw no traffic")
	}
	first.Release()

	second := NewTCPSource(2, cfg, d.Clients[1], d.VictimIP(), 10002)
	if second != first {
		t.Skip("pool handed out a different object; reset not observable")
	}
	if second.PacketsSent() != 0 || second.AcksReceived() != 0 || second.Window() != cfg.InitialWindow {
		t.Fatalf("reused source kept state: sent %d acked %d window %v",
			second.PacketsSent(), second.AcksReceived(), second.Window())
	}
	second.Start(d.Net.Scheduler().Now())
	if err := d.Net.Scheduler().RunUntil(d.Net.Scheduler().Now() + 1*sim.Second); err != nil {
		t.Fatal(err)
	}
	second.Stop()
	if second.PacketsSent() == 0 || second.AcksReceived() == 0 {
		t.Fatal("reused source did not function after reset")
	}
	if second.Label().SrcIP != d.Clients[1].PrimaryIP() {
		t.Fatal("reused source kept the previous host's label")
	}
}
