package traffic

import (
	"errors"
	"fmt"
	"math"

	"mafic/internal/netsim"
	"mafic/internal/sim"
	"mafic/internal/topology"
)

// Errors returned by BuildWorkload.
var (
	// ErrNoSources is returned when the domain has no client or zombie
	// hosts to place flows on.
	ErrNoSources = errors.New("traffic: domain has no source hosts")
	// ErrBadSpec is returned for inconsistent workload specifications.
	ErrBadSpec = errors.New("traffic: invalid workload spec")
)

// WorkloadSpec describes the traffic mix of one experiment in the paper's
// terms: total traffic volume V_t (number of flows), TCP share Γ, and source
// rate R for the attack flows.
type WorkloadSpec struct {
	// TotalFlows is V_t, the total number of flows.
	TotalFlows int
	// TCPShare is Γ, the fraction of flows that are legitimate TCP
	// (responsive) flows.
	TCPShare float64
	// UDPShare is the fraction of flows that are legitimate but
	// unresponsive constant-rate flows. The remainder
	// (1 − TCPShare − UDPShare) are attack flows.
	UDPShare float64

	// AttackRate is R: each attack flow's sending rate in packets/s.
	AttackRate float64
	// LegitRate caps each legitimate TCP flow's rate in packets/s.
	LegitRate float64
	// UDPRate is each legitimate UDP flow's rate in packets/s.
	UDPRate float64
	// PacketSize is the data packet size in bytes for every flow.
	PacketSize int
	// RTT is the RTT estimate given to TCP sources for pacing.
	RTT sim.Time

	// AttackPulsePeriod, when positive, turns every attack flow into an
	// on-off (pulsing) source with this cycle length instead of a
	// constant-rate flood.
	AttackPulsePeriod sim.Time
	// AttackDutyCycle is the fraction of each pulse period spent
	// flooding when AttackPulsePeriod is set. Zero means 0.2.
	AttackDutyCycle float64

	// AttackGroups, when greater than one, turns the attack into a
	// rolling pulse: attack flows are partitioned into this many groups
	// and exactly one group floods at a time, handing off every
	// AttackRotationPeriod. Rolling pulses shift the hot source routers
	// between measurement epochs, attacking per-router baseline
	// detectors directly. Takes precedence over AttackPulsePeriod.
	AttackGroups int
	// AttackRotationPeriod is the slot length of the rolling pulse; it
	// must be positive when AttackGroups > 1.
	AttackRotationPeriod sim.Time

	// AttackRateMix, when non-empty, makes the attack heterogeneous:
	// attack flow i sends at AttackRate × AttackRateMix[i mod len]. Every
	// multiplier must be positive. An empty mix keeps the uniform rate.
	AttackRateMix []float64

	// ExtraVictimShare is the fraction of attack flows aimed at the
	// domain's extra victims (round-robin) instead of the primary victim,
	// enabling simultaneous multi-victim floods. The domain must provide
	// extra victims when the share is positive.
	ExtraVictimShare float64

	// CoremeltShare is the fraction of attack flows aimed at bystander
	// hosts (round-robin) instead of any victim — a coremelt-style attack
	// that congests the transit links the victim's traffic crosses while
	// never addressing the victim itself, so victim-destination filters
	// cannot see it. The domain must provide bystander hosts when the
	// share is positive.
	CoremeltShare float64

	// FlashCrowdFlows adds this many extra legitimate TCP flows that all
	// start inside FlashCrowdWindow after FlashCrowdStart — a flash crowd
	// with no spoofing that a good defence must tell apart from an
	// attack.
	FlashCrowdFlows int
	// FlashCrowdRate caps each flash-crowd flow's rate in packets/s;
	// zero means LegitRate.
	FlashCrowdRate float64
	// FlashCrowdStart is when the flash crowd begins.
	FlashCrowdStart sim.Time
	// FlashCrowdWindow spreads the flash-crowd starts; zero means all
	// flows start at FlashCrowdStart exactly.
	FlashCrowdWindow sim.Time

	// SpoofIllegalFraction is the fraction of attack flows that forge
	// unroutable source addresses (dropped by MAFIC's PDT fast path).
	SpoofIllegalFraction float64
	// SpoofLegitFraction is the fraction of attack flows that forge
	// valid addresses belonging to bystander hosts. Any remainder uses
	// the zombies' own addresses.
	SpoofLegitFraction float64

	// LegitStart is when legitimate flows begin, spread uniformly over
	// StartWindow.
	LegitStart sim.Time
	// StartWindow spreads legitimate flow starts so they do not
	// synchronise.
	StartWindow sim.Time
	// AttackStart is when every attack flow begins flooding.
	AttackStart sim.Time
}

// DefaultWorkloadSpec returns the paper's default traffic mix (Table II:
// V_t = 50 flows, Γ = 95%, R = 10⁶ packets/s) with the packet rate scaled
// down by 1000× so a software simulation completes quickly; see DESIGN.md
// for the substitution note.
func DefaultWorkloadSpec() WorkloadSpec {
	return WorkloadSpec{
		TotalFlows:           50,
		TCPShare:             0.95,
		UDPShare:             0,
		AttackRate:           5000, // R = 1e6 pkt/s scaled by 1/200
		LegitRate:            250,
		UDPRate:              100,
		PacketSize:           DefaultDataSize,
		RTT:                  40 * sim.Millisecond,
		SpoofIllegalFraction: 0.2,
		SpoofLegitFraction:   0.5,
		LegitStart:           0,
		StartWindow:          200 * sim.Millisecond,
		AttackStart:          500 * sim.Millisecond,
	}
}

// Counts returns the number of TCP, UDP and attack flows the spec yields.
// The attack always gets at least one flow so every scenario exercises the
// defence.
func (s WorkloadSpec) Counts() (tcp, udp, attack int) {
	tcp = int(math.Round(float64(s.TotalFlows) * s.TCPShare))
	udp = int(math.Round(float64(s.TotalFlows) * s.UDPShare))
	if tcp+udp > s.TotalFlows {
		udp = s.TotalFlows - tcp
		if udp < 0 {
			udp = 0
			tcp = s.TotalFlows
		}
	}
	attack = s.TotalFlows - tcp - udp
	if attack < 1 && s.TotalFlows > 0 {
		attack = 1
		if tcp > 0 {
			tcp--
		} else if udp > 0 {
			udp--
		}
	}
	return tcp, udp, attack
}

// Validate reports specification errors.
func (s WorkloadSpec) Validate() error {
	if s.TotalFlows <= 0 {
		return fmt.Errorf("%w: total flows %d", ErrBadSpec, s.TotalFlows)
	}
	if s.TCPShare < 0 || s.TCPShare > 1 || s.UDPShare < 0 || s.UDPShare > 1 || s.TCPShare+s.UDPShare > 1.0+1e-9 {
		return fmt.Errorf("%w: shares tcp=%v udp=%v", ErrBadSpec, s.TCPShare, s.UDPShare)
	}
	if s.AttackRate <= 0 || s.LegitRate <= 0 {
		return fmt.Errorf("%w: rates must be positive", ErrBadSpec)
	}
	frac := s.SpoofIllegalFraction + s.SpoofLegitFraction
	if s.SpoofIllegalFraction < 0 || s.SpoofLegitFraction < 0 || frac > 1.0+1e-9 {
		return fmt.Errorf("%w: spoof fractions", ErrBadSpec)
	}
	if s.AttackGroups < 0 {
		return fmt.Errorf("%w: attack groups %d", ErrBadSpec, s.AttackGroups)
	}
	if s.AttackRotationPeriod < 0 || (s.AttackGroups > 1 && s.AttackRotationPeriod == 0) {
		return fmt.Errorf("%w: rotation period %v with %d groups", ErrBadSpec, s.AttackRotationPeriod, s.AttackGroups)
	}
	for _, m := range s.AttackRateMix {
		if m <= 0 {
			return fmt.Errorf("%w: rate-mix multiplier %v", ErrBadSpec, m)
		}
	}
	if s.ExtraVictimShare < 0 || s.ExtraVictimShare > 1 {
		return fmt.Errorf("%w: extra victim share %v", ErrBadSpec, s.ExtraVictimShare)
	}
	if s.CoremeltShare < 0 || s.CoremeltShare > 1 {
		return fmt.Errorf("%w: coremelt share %v", ErrBadSpec, s.CoremeltShare)
	}
	if s.CoremeltShare+s.ExtraVictimShare > 1.0+1e-9 {
		return fmt.Errorf("%w: coremelt share %v + extra victim share %v exceed 1",
			ErrBadSpec, s.CoremeltShare, s.ExtraVictimShare)
	}
	if s.FlashCrowdFlows < 0 || s.FlashCrowdRate < 0 || s.FlashCrowdStart < 0 || s.FlashCrowdWindow < 0 {
		return fmt.Errorf("%w: flash crowd parameters", ErrBadSpec)
	}
	return nil
}

// Workload is the instantiated traffic of one scenario.
type Workload struct {
	// Victim is the server installed on the victim host.
	Victim *VictimServer
	// ExtraServers are the servers installed on extra victim hosts when
	// the spec aims part of the attack at them.
	ExtraServers []*VictimServer
	// Flows is every flow, legitimate and attack.
	Flows []Flow
	// Legitimate and Attack partition Flows. Flash-crowd flows count as
	// legitimate.
	Legitimate []Flow
	Attack     []Flow
	// Flash is the subset of Legitimate that belongs to the flash crowd;
	// these flows start at the flash-crowd instant rather than inside the
	// regular start window.
	Flash []Flow
}

// StartAll schedules every flow: legitimate flows spread over the spec's
// start window, flash-crowd flows inside the flash-crowd window, and attack
// flows at the attack start time.
func (w *Workload) StartAll(spec WorkloadSpec, rng *sim.RNG) {
	flash := make(map[Flow]bool, len(w.Flash))
	for _, f := range w.Flash {
		flash[f] = true
	}
	for _, f := range w.Legitimate {
		if flash[f] {
			continue
		}
		offset := sim.Time(0)
		if spec.StartWindow > 0 {
			offset = sim.Time(rng.Intn(int(spec.StartWindow)))
		}
		f.Start(spec.LegitStart + offset)
	}
	for _, f := range w.Flash {
		offset := sim.Time(0)
		if spec.FlashCrowdWindow > 0 {
			offset = sim.Time(rng.Intn(int(spec.FlashCrowdWindow)))
		}
		f.Start(spec.FlashCrowdStart + offset)
	}
	for _, f := range w.Attack {
		f.Start(spec.AttackStart)
	}
}

// StopAll halts every flow.
func (w *Workload) StopAll() {
	for _, f := range w.Flows {
		f.Stop()
	}
}

// Release returns every pooled flow object to its package pool. Call it once
// the run's metrics have been extracted; the workload and its flows must not
// be used afterwards.
func (w *Workload) Release() {
	for _, f := range w.Flows {
		if r, ok := f.(Releasable); ok {
			r.Release()
		}
	}
	w.Flows, w.Legitimate, w.Attack, w.Flash = nil, nil, nil, nil
}

// PacketsSent sums the data packets emitted by legitimate and attack flows.
func (w *Workload) PacketsSent() (legit, attack uint64) {
	for _, f := range w.Legitimate {
		legit += f.PacketsSent()
	}
	for _, f := range w.Attack {
		attack += f.PacketsSent()
	}
	return legit, attack
}

// BuildWorkload instantiates the spec's flows on the domain: legitimate
// flows on client hosts (round-robin), attack flows on zombie hosts
// (round-robin), and a victim server on the victim host.
func BuildWorkload(spec WorkloadSpec, d *topology.Domain, rng *sim.RNG) (*Workload, error) {
	if err := spec.Validate(); err != nil {
		return nil, err
	}
	if len(d.Clients) == 0 || len(d.Zombies) == 0 {
		return nil, ErrNoSources
	}
	tcpCount, udpCount, attackCount := spec.Counts()

	w := &Workload{Victim: NewVictimServer(d.Victim, DefaultAckSize)}
	victimIP := d.VictimIP()
	flowID := 0
	nextPort := func() uint16 { return uint16(10000 + flowID) }

	// newLegitTCP builds one legitimate responsive flow; baseline and
	// flash-crowd flows share it so their TCP behaviour cannot diverge.
	newLegitTCP := func(host *netsim.Host, maxRate float64) Flow {
		cfg := TCPConfig{
			RTT:                spec.RTT,
			MaxRate:            maxRate,
			InitialWindow:      2,
			SlowStartThreshold: 16,
			PacketSize:         spec.PacketSize,
		}
		f := NewTCPSource(flowID, cfg, host, victimIP, nextPort())
		flowID++
		w.Flows = append(w.Flows, f)
		w.Legitimate = append(w.Legitimate, f)
		return f
	}

	for i := 0; i < tcpCount; i++ {
		newLegitTCP(d.Clients[i%len(d.Clients)], spec.LegitRate)
	}

	for i := 0; i < udpCount; i++ {
		host := d.Clients[i%len(d.Clients)]
		cfg := CBRConfig{Rate: spec.UDPRate, PacketSize: spec.PacketSize, Jitter: 0.1}
		f := NewCBRSource(flowID, cfg, host, victimIP, nextPort(), rng.Fork())
		flowID++
		w.Flows = append(w.Flows, f)
		w.Legitimate = append(w.Legitimate, f)
	}

	// Flash-crowd flows: extra legitimate TCP sources that all arrive in
	// a burst. They use client hosts round-robin like the baseline TCP
	// flows and are tracked separately so StartAll can release them at
	// the flash-crowd instant.
	for i := 0; i < spec.FlashCrowdFlows; i++ {
		rate := spec.FlashCrowdRate
		if rate <= 0 {
			rate = spec.LegitRate
		}
		f := newLegitTCP(d.Clients[(tcpCount+i)%len(d.Clients)], rate)
		w.Flash = append(w.Flash, f)
	}

	// Multi-victim floods: the trailing share of attack flows aims at the
	// domain's extra victims instead of the primary one. Each targeted
	// extra victim gets its own server so the flood it absorbs behaves
	// like real victim traffic.
	extraAim := int(math.Round(spec.ExtraVictimShare * float64(attackCount)))
	var extraIPs []netsim.IP
	if extraAim > 0 {
		if len(d.ExtraVictims) == 0 {
			return nil, fmt.Errorf("%w: extra victim share %v but domain has no extra victims",
				ErrBadSpec, spec.ExtraVictimShare)
		}
		for _, v := range d.ExtraVictims {
			w.ExtraServers = append(w.ExtraServers, NewVictimServer(v, DefaultAckSize))
			extraIPs = append(extraIPs, v.PrimaryIP())
		}
	}

	// Coremelt-style flows: the leading share of attack flows floods
	// bystander hosts across the transit core, never addressing a victim.
	coremeltAim := int(math.Round(spec.CoremeltShare * float64(attackCount)))
	if coremeltAim > attackCount-extraAim {
		coremeltAim = attackCount - extraAim
	}
	var bystanderIPs []netsim.IP
	if coremeltAim > 0 {
		if len(d.Bystanders) == 0 {
			return nil, fmt.Errorf("%w: coremelt share %v but domain has no bystander hosts",
				ErrBadSpec, spec.CoremeltShare)
		}
		for _, b := range d.Bystanders {
			bystanderIPs = append(bystanderIPs, b.PrimaryIP())
		}
	}

	spoofPool := d.SpoofPool()
	illegalFlows := int(math.Round(spec.SpoofIllegalFraction * float64(attackCount)))
	legitSpoofFlows := int(math.Round(spec.SpoofLegitFraction * float64(attackCount)))
	for i := 0; i < attackCount; i++ {
		zombie := d.Zombies[i%len(d.Zombies)]
		spoof := SpoofNone
		var spoofedIP netsim.IP
		switch {
		case i < illegalFlows:
			spoof = SpoofIllegal
			// Addresses under 1.0.0.0/8 are never allocated by the
			// topology builder, so they are unroutable by construction.
			spoofedIP = netsim.IP(0x01000000 | uint32(flowID+1))
		case i < illegalFlows+legitSpoofFlows && len(spoofPool) > 0:
			spoof = SpoofLegitimate
			spoofedIP = spoofPool[i%len(spoofPool)]
		}

		target := victimIP
		switch {
		case i < coremeltAim:
			target = bystanderIPs[i%len(bystanderIPs)]
		case i >= attackCount-extraAim && len(extraIPs) > 0:
			target = extraIPs[(i-(attackCount-extraAim))%len(extraIPs)]
		}
		rate := spec.AttackRate
		if len(spec.AttackRateMix) > 0 {
			rate *= spec.AttackRateMix[i%len(spec.AttackRateMix)]
		}

		var f Flow
		switch {
		case spec.AttackGroups > 1:
			rcfg := RotatingConfig{
				PeakRate:   rate,
				SlotLength: spec.AttackRotationPeriod,
				Groups:     spec.AttackGroups,
				Group:      i % spec.AttackGroups,
				PacketSize: spec.PacketSize,
				Spoof:      spoof,
				SpoofedIP:  spoofedIP,
			}
			f = NewRotatingSource(flowID, rcfg, zombie, target, nextPort(), rng.Fork())
		case spec.AttackPulsePeriod > 0:
			pcfg := PulsingConfig{
				PeakRate:   rate,
				Period:     spec.AttackPulsePeriod,
				DutyCycle:  spec.AttackDutyCycle,
				PacketSize: spec.PacketSize,
				Spoof:      spoof,
				SpoofedIP:  spoofedIP,
			}
			f = NewPulsingSource(flowID, pcfg, zombie, target, nextPort(), rng.Fork())
		default:
			cfg := AttackConfig{
				Rate:       rate,
				PacketSize: spec.PacketSize,
				Jitter:     0.05,
				Spoof:      spoof,
				SpoofedIP:  spoofedIP,
			}
			f = NewAttackSource(flowID, cfg, zombie, target, nextPort(), rng.Fork())
		}
		flowID++
		w.Flows = append(w.Flows, f)
		w.Attack = append(w.Attack, f)
	}
	return w, nil
}
