package traffic

import (
	"errors"
	"math"
	"testing"

	"mafic/internal/sim"
	"mafic/internal/topology"
)

// adversarialDomain builds a small domain with extra victims for the
// multi-victim workload tests.
func adversarialDomain(t *testing.T) *topology.Domain {
	t.Helper()
	cfg := topology.DefaultConfig()
	cfg.NumRouters = 12
	cfg.ClientsPerIngress = 3
	cfg.ZombiesPerIngress = 2
	cfg.BystanderHosts = 4
	cfg.ExtraVictims = 2
	d, err := topology.Build(cfg, sim.NewScheduler(), sim.NewRNG(5))
	if err != nil {
		t.Fatalf("build domain: %v", err)
	}
	return d
}

func TestRotatingSourceHandsOff(t *testing.T) {
	d := testDomain(t)
	NewVictimServer(d.Victim, 0)
	slot := 100 * sim.Millisecond
	groups := 3
	sources := make([]*RotatingSource, groups)
	for g := 0; g < groups; g++ {
		cfg := RotatingConfig{
			PeakRate:   400,
			SlotLength: slot,
			Groups:     groups,
			Group:      g,
		}
		sources[g] = NewRotatingSource(g+1, cfg, d.Zombies[g%len(d.Zombies)], d.VictimIP(), uint16(20000+g), sim.NewRNG(int64(g)))
		sources[g].Start(0)
	}
	// Run for two full rotation cycles, stopping just before the boundary
	// so the third cycle's first slot does not fire.
	if err := d.Net.Scheduler().RunUntil(sim.Time(int64(slot)*int64(groups)*2) - sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	for g, s := range sources {
		s.Stop()
		if s.Slots() != 2 {
			t.Fatalf("group %d held %d slots, want 2", g, s.Slots())
		}
		if s.PacketsSent() == 0 {
			t.Fatalf("group %d sent no packets", g)
		}
		if !s.Malicious() {
			t.Fatal("rotating source must be malicious")
		}
	}
	// Every group floods at the same per-slot rate, so totals must be
	// close to one another: the baton really travels.
	low, high := sources[0].PacketsSent(), sources[0].PacketsSent()
	for _, s := range sources[1:] {
		if n := s.PacketsSent(); n < low {
			low = n
		} else if n > high {
			high = n
		}
	}
	if float64(low) < 0.5*float64(high) {
		t.Fatalf("rotation is unbalanced: min %d max %d packets", low, high)
	}
}

func TestRotatingSourceSlowRateDoesNotCompound(t *testing.T) {
	// A send gap longer than the off-period used to leave the previous
	// slot's timer alive into a later slot, stacking send chains so the
	// effective rate grew every cycle. With one packet per slot at this
	// rate, total packets must equal slots held exactly.
	d := testDomain(t)
	NewVictimServer(d.Victim, 0)
	slot := 100 * sim.Millisecond
	cfg := RotatingConfig{
		PeakRate:   3, // gap ≈ 333 ms: longer than the 200 ms off-period
		SlotLength: slot,
		Groups:     3,
		Group:      0,
	}
	s := NewRotatingSource(1, cfg, d.Zombies[0], d.VictimIP(), 20001, sim.NewRNG(1))
	s.Start(0)
	cycles := 10
	if err := d.Net.Scheduler().RunUntil(sim.Time(int64(slot)*3*int64(cycles)) - sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	s.Stop()
	if s.Slots() != uint64(cycles) {
		t.Fatalf("held %d slots, want %d", s.Slots(), cycles)
	}
	if s.PacketsSent() != uint64(cycles) {
		t.Fatalf("sent %d packets over %d slots, want exactly %d (send chains compounded)",
			s.PacketsSent(), cycles, cycles)
	}
}

func TestRotatingSourceConfigClamps(t *testing.T) {
	d := testDomain(t)
	s := NewRotatingSource(1, RotatingConfig{Group: -3}, d.Zombies[0], d.VictimIP(), 20001, sim.NewRNG(1))
	if s.cfg.PeakRate <= 0 || s.cfg.SlotLength <= 0 || s.cfg.Groups < 1 || s.cfg.Group != 0 {
		t.Fatalf("config not clamped: %+v", s.cfg)
	}
	if s.CurrentRate() != 0 {
		t.Fatal("idle rotating source should report zero rate")
	}
}

func TestBuildWorkloadRollingPulse(t *testing.T) {
	d := testDomain(t)
	spec := DefaultWorkloadSpec()
	spec.TotalFlows = 30
	spec.TCPShare = 0.6
	spec.AttackGroups = 3
	spec.AttackRotationPeriod = 100 * sim.Millisecond
	w, err := BuildWorkload(spec, d, sim.NewRNG(1))
	if err != nil {
		t.Fatalf("BuildWorkload: %v", err)
	}
	groups := map[int]int{}
	for _, f := range w.Attack {
		rs, ok := f.(*RotatingSource)
		if !ok {
			t.Fatalf("attack flow %d is %T, want *RotatingSource", f.ID(), f)
		}
		groups[rs.cfg.Group]++
	}
	if len(groups) != 3 {
		t.Fatalf("attack flows span %d groups, want 3", len(groups))
	}
}

func TestBuildWorkloadRateMix(t *testing.T) {
	d := testDomain(t)
	spec := DefaultWorkloadSpec()
	spec.TotalFlows = 20
	spec.TCPShare = 0.5
	spec.AttackRateMix = []float64{0.1, 1, 4}
	w, err := BuildWorkload(spec, d, sim.NewRNG(1))
	if err != nil {
		t.Fatalf("BuildWorkload: %v", err)
	}
	rates := map[float64]bool{}
	for _, f := range w.Attack {
		rates[f.CurrentRate()] = true
	}
	if len(rates) < 3 {
		t.Fatalf("attack rates %v, want at least 3 distinct tiers", rates)
	}
	for _, f := range w.Attack {
		want := false
		for _, m := range spec.AttackRateMix {
			if math.Abs(f.CurrentRate()-spec.AttackRate*m) < 1e-9 {
				want = true
			}
		}
		if !want {
			t.Fatalf("attack rate %.1f matches no mix tier", f.CurrentRate())
		}
	}
}

func TestBuildWorkloadFlashCrowd(t *testing.T) {
	d := testDomain(t)
	spec := DefaultWorkloadSpec()
	spec.TotalFlows = 20
	spec.FlashCrowdFlows = 8
	spec.FlashCrowdStart = 700 * sim.Millisecond
	spec.FlashCrowdWindow = 100 * sim.Millisecond
	w, err := BuildWorkload(spec, d, sim.NewRNG(1))
	if err != nil {
		t.Fatalf("BuildWorkload: %v", err)
	}
	if len(w.Flash) != 8 {
		t.Fatalf("flash flows = %d, want 8", len(w.Flash))
	}
	for _, f := range w.Flash {
		if f.Malicious() {
			t.Fatal("flash-crowd flows must be legitimate")
		}
	}
	// Flash flows are part of the legitimate ground truth.
	inLegit := 0
	for _, lf := range w.Legitimate {
		for _, ff := range w.Flash {
			if lf == ff {
				inLegit++
			}
		}
	}
	if inLegit != len(w.Flash) {
		t.Fatalf("only %d of %d flash flows counted legitimate", inLegit, len(w.Flash))
	}
	// Starting the workload must not start flash flows before their time.
	w.StartAll(spec, sim.NewRNG(2))
	if err := d.Net.Scheduler().RunUntil(spec.FlashCrowdStart - 50*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	for _, f := range w.Flash {
		if f.PacketsSent() != 0 {
			t.Fatal("flash flow sent before the flash-crowd start")
		}
	}
	if err := d.Net.Scheduler().RunUntil(spec.FlashCrowdStart + 400*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	sent := uint64(0)
	for _, f := range w.Flash {
		sent += f.PacketsSent()
	}
	if sent == 0 {
		t.Fatal("flash crowd never sent")
	}
	w.StopAll()
}

func TestBuildWorkloadMultiVictim(t *testing.T) {
	d := adversarialDomain(t)
	spec := DefaultWorkloadSpec()
	spec.TotalFlows = 30
	spec.TCPShare = 0.6
	spec.ExtraVictimShare = 0.5
	spec.SpoofIllegalFraction = 0
	spec.SpoofLegitFraction = 0
	w, err := BuildWorkload(spec, d, sim.NewRNG(1))
	if err != nil {
		t.Fatalf("BuildWorkload: %v", err)
	}
	if len(w.ExtraServers) != len(d.ExtraVictims) {
		t.Fatalf("extra servers = %d, want %d", len(w.ExtraServers), len(d.ExtraVictims))
	}
	targets := map[bool]int{} // primary? -> count
	extraIPs := map[uint32]bool{}
	for _, v := range d.ExtraVictims {
		extraIPs[uint32(v.PrimaryIP())] = true
	}
	for _, f := range w.Attack {
		dst := f.Label().DstIP
		if dst == d.VictimIP() {
			targets[true]++
		} else if extraIPs[uint32(dst)] {
			targets[false]++
		} else {
			t.Fatalf("attack flow targets unknown address %v", dst)
		}
	}
	if targets[true] == 0 || targets[false] == 0 {
		t.Fatalf("attack split primary=%d extra=%d, want both non-zero", targets[true], targets[false])
	}
}

func TestBuildWorkloadExtraVictimShareWithoutVictims(t *testing.T) {
	d := testDomain(t) // no extra victims in this domain
	spec := DefaultWorkloadSpec()
	spec.ExtraVictimShare = 1
	spec.TCPShare = 0.5
	if _, err := BuildWorkload(spec, d, sim.NewRNG(1)); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("want ErrBadSpec, got %v", err)
	}
}

func TestWorkloadSpecValidateAdversarial(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*WorkloadSpec)
	}{
		{"negative groups", func(s *WorkloadSpec) { s.AttackGroups = -1 }},
		{"groups without period", func(s *WorkloadSpec) { s.AttackGroups = 3 }},
		{"negative rotation period", func(s *WorkloadSpec) { s.AttackRotationPeriod = -sim.Second }},
		{"zero rate-mix tier", func(s *WorkloadSpec) { s.AttackRateMix = []float64{1, 0} }},
		{"negative rate-mix tier", func(s *WorkloadSpec) { s.AttackRateMix = []float64{-2} }},
		{"extra victim share too big", func(s *WorkloadSpec) { s.ExtraVictimShare = 1.5 }},
		{"negative extra victim share", func(s *WorkloadSpec) { s.ExtraVictimShare = -0.1 }},
		{"negative flash flows", func(s *WorkloadSpec) { s.FlashCrowdFlows = -1 }},
		{"negative flash rate", func(s *WorkloadSpec) { s.FlashCrowdRate = -5 }},
		{"negative flash window", func(s *WorkloadSpec) { s.FlashCrowdWindow = -sim.Second }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			spec := DefaultWorkloadSpec()
			tt.mutate(&spec)
			if err := spec.Validate(); !errors.Is(err, ErrBadSpec) {
				t.Fatalf("want ErrBadSpec, got %v", err)
			}
		})
	}
}
