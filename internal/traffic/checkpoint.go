package traffic

import (
	"fmt"

	"mafic/internal/sim"
)

// FlowKind tags the concrete type of a flow in a snapshot, so a restore can
// verify the deterministic rebuild produced the same flow sequence before
// overlaying state.
type FlowKind uint8

// Flow kinds, in the order BuildWorkload can emit them.
const (
	FlowTCP FlowKind = iota + 1
	FlowCBR
	FlowAttack
	FlowPulsing
	FlowRotating
)

// FlowState is the dynamic state of one flow, a superset across the flow
// kinds: a TCP source uses the congestion fields, the unresponsive kinds use
// only the counters and phase flags. Configuration, labels and host bindings
// are rebuild-covered.
type FlowState struct {
	Kind      FlowKind
	Running   bool
	InBurst   bool
	Cwnd      float64
	Ssthresh  float64
	Seq       int64
	LastAcked int64
	DupAcks   int64
	LastAckAt sim.Time
	Sent      uint64
	Acked     uint64
	Timeouts  uint64
	FastRetx  uint64
	ProbeSeen uint64
	Bursts    uint64
}

// CaptureFlowState captures the dynamic state of one flow. Pending send and
// phase events are captured separately through the scheduler walk; the
// EventRef fields themselves do not travel (a stale ref is a safe no-op and
// live ones are re-bound by the restore).
func CaptureFlowState(f Flow) (FlowState, error) {
	switch s := f.(type) {
	case *TCPSource:
		return FlowState{
			Kind:      FlowTCP,
			Running:   s.running,
			Cwnd:      s.cwnd,
			Ssthresh:  s.ssthresh,
			Seq:       s.seq,
			LastAcked: s.lastAcked,
			DupAcks:   int64(s.dupAcks),
			LastAckAt: s.lastAckAt,
			Sent:      s.sent,
			Acked:     s.acked,
			Timeouts:  s.timeouts,
			FastRetx:  s.fastRetx,
			ProbeSeen: s.probeSeen,
		}, nil
	case *CBRSource:
		return FlowState{Kind: FlowCBR, Running: s.running, Seq: s.seq, Sent: s.sent}, nil
	case *AttackSource:
		return FlowState{Kind: FlowAttack, Running: s.cbr.running, Seq: s.cbr.seq, Sent: s.cbr.sent}, nil
	case *PulsingSource:
		return FlowState{
			Kind: FlowPulsing, Running: s.running, InBurst: s.inBurst,
			Seq: s.seq, Sent: s.sent, Bursts: s.bursts,
		}, nil
	case *RotatingSource:
		return FlowState{
			Kind: FlowRotating, Running: s.running, InBurst: s.inSlot,
			Seq: s.seq, Sent: s.sent, Bursts: s.slots,
		}, nil
	default:
		return FlowState{}, fmt.Errorf("traffic: cannot checkpoint flow of type %T", f)
	}
}

// RestoreFlowState overlays captured state onto the corresponding rebuilt
// flow. The kind tag must match the rebuilt flow's concrete type: a mismatch
// means the snapshot and the rebuild disagree about the workload.
func RestoreFlowState(f Flow, st FlowState) error {
	switch s := f.(type) {
	case *TCPSource:
		if st.Kind != FlowTCP {
			break
		}
		s.running = st.Running
		s.cwnd = st.Cwnd
		s.ssthresh = st.Ssthresh
		s.seq = st.Seq
		s.lastAcked = st.LastAcked
		s.dupAcks = int(st.DupAcks)
		s.lastAckAt = st.LastAckAt
		s.sent = st.Sent
		s.acked = st.Acked
		s.timeouts = st.Timeouts
		s.fastRetx = st.FastRetx
		s.probeSeen = st.ProbeSeen
		return nil
	case *CBRSource:
		if st.Kind != FlowCBR {
			break
		}
		s.running = st.Running
		s.seq = st.Seq
		s.sent = st.Sent
		return nil
	case *AttackSource:
		if st.Kind != FlowAttack {
			break
		}
		s.cbr.running = st.Running
		s.cbr.seq = st.Seq
		s.cbr.sent = st.Sent
		return nil
	case *PulsingSource:
		if st.Kind != FlowPulsing {
			break
		}
		s.running = st.Running
		s.inBurst = st.InBurst
		s.seq = st.Seq
		s.sent = st.Sent
		s.bursts = st.Bursts
		return nil
	case *RotatingSource:
		if st.Kind != FlowRotating {
			break
		}
		s.running = st.Running
		s.inSlot = st.InBurst
		s.seq = st.Seq
		s.sent = st.Sent
		s.slots = st.Bursts
		return nil
	default:
		return fmt.Errorf("traffic: cannot restore flow of type %T", f)
	}
	return fmt.Errorf("traffic: snapshot flow kind %d does not match rebuilt %T", st.Kind, f)
}

// SendHandler returns the event-handler identity a flow's send timer is
// scheduled with — the source itself for direct senders, the embedded CBR
// core for an attack source. Checkpoint capture matches pending events
// against it; restore re-binds the re-inserted event through SetSendEvent.
func SendHandler(f Flow) sim.EventHandler {
	switch s := f.(type) {
	case *TCPSource:
		return s
	case *CBRSource:
		return s
	case *AttackSource:
		return s.cbr
	case *PulsingSource:
		return s
	case *RotatingSource:
		return s
	default:
		return nil
	}
}

// PhaseHandlers returns the burst/slot boundary handler identities of a
// pulsing or rotating flow (phase = begin, end = hand-off), or nils for the
// kinds without phases.
func PhaseHandlers(f Flow) (phase, end sim.EventHandler) {
	switch s := f.(type) {
	case *PulsingSource:
		return &s.phase, &s.end
	case *RotatingSource:
		return &s.phase, &s.end
	default:
		return nil, nil
	}
}

// SetSendEvent re-binds a flow's send-timer EventRef after a restore
// re-inserted the pending event.
func SetSendEvent(f Flow, ref sim.EventRef) {
	switch s := f.(type) {
	case *TCPSource:
		s.sendEvent = ref
	case *CBRSource:
		s.sendEvent = ref
	case *AttackSource:
		s.cbr.sendEvent = ref
	case *PulsingSource:
		s.sendEvent = ref
	case *RotatingSource:
		s.sendEvent = ref
	}
}

// SetPhaseEvent re-binds a pulsing or rotating flow's next-phase EventRef
// after a restore re-inserted the pending event. The end-of-burst event is
// fire-and-forget (no ref is kept), so only the phase ref needs re-binding.
func SetPhaseEvent(f Flow, ref sim.EventRef) {
	switch s := f.(type) {
	case *PulsingSource:
		s.phaseEvent = ref
	case *RotatingSource:
		s.phaseEvent = ref
	}
}

// VictimServerState is the dynamic state of a victim server: its arrival and
// acknowledgement counters. The host binding and handler wiring are
// rebuild-covered.
type VictimServerState struct {
	Received      uint64
	ReceivedBad   uint64
	ReceivedGood  uint64
	AcksGenerated uint64
}

// CheckpointState captures the server's counters.
func (v *VictimServer) CheckpointState() VictimServerState {
	return VictimServerState{
		Received:      v.received,
		ReceivedBad:   v.receivedBad,
		ReceivedGood:  v.receivedGood,
		AcksGenerated: v.acksGenerated,
	}
}

// RestoreState overlays captured counters onto a rebuilt server.
func (v *VictimServer) RestoreState(st VictimServerState) {
	v.received = st.Received
	v.receivedBad = st.ReceivedBad
	v.receivedGood = st.ReceivedGood
	v.acksGenerated = st.AcksGenerated
}

// CheckpointTypes lists this package's structs that carry snapshotted state.
var CheckpointTypes = []any{
	TCPSource{},
	CBRSource{},
	AttackSource{},
	PulsingSource{},
	RotatingSource{},
	pulsePhase{},
	pulseEnd{},
	rotatePhase{},
	rotateEnd{},
	VictimServer{},
	Workload{},
}
