package traffic

import (
	"testing"

	"mafic/internal/netsim"
	"mafic/internal/sim"
)

// FuzzRotatingSource throws arbitrary rotation schedules at RotatingSource
// and checks the invariants the workload builder relies on: a flow is never
// double-activated (double Start, or a stale send chain surviving into the
// next slot, would blow the slot and packet bounds), every slot the clamped
// schedule owes inside the horizon is actually held (no orphaned group), and
// Stop really silences the flow.
func FuzzRotatingSource(f *testing.F) {
	f.Add(int64(150), 3, 1, 500.0)
	f.Add(int64(0), 0, -1, 0.0)
	f.Add(int64(-20), 17, 40, 123.0)
	f.Add(int64(1), 1, 0, 2000.0)
	f.Add(int64(333), 2, 1, 1.5)
	f.Add(int64(1000), 64, 63, 7.0)
	// Found by fuzzing: a send timer cancelled by a slot hand-off used to
	// make Scheduler.RunUntil overshoot its deadline (see the RunUntil
	// cancelled-event regression test in internal/sim).
	f.Add(int64(-9), 4, 119, -12.444444444444443)
	f.Fuzz(func(t *testing.T, slotMs int64, groups, group int, peak float64) {
		// Bound the schedule so one iteration stays small. The clamping
		// paths all stay reachable: zero and negative values pass through.
		if slotMs > 1000 || slotMs < -1000 || groups > 64 || groups < -64 ||
			group > 128 || group < -128 {
			t.Skip()
		}
		// Cap the event rate; sub-0.5 pps positive rates would push the
		// send gap toward float->sim.Time overflow, which is the rate
		// clamp's concern, not the rotation schedule's.
		if peak != peak || peak > 2000 || (peak > 0 && peak < 0.5) {
			t.Skip()
		}

		sched := sim.NewScheduler()
		net := netsim.New(sched, sim.NewRNG(1))
		router := net.AddRouter("r")
		zombie := net.AddHost("z", netsim.IP(0xc0a80001))
		victim := net.AddHost("v", netsim.IP(0x0a000001))
		link := netsim.LinkConfig{BandwidthBps: 100e6, Delay: sim.Millisecond, QueueLen: 64}
		for _, h := range []*netsim.Host{zombie, victim} {
			h.AttachTo(router.ID())
			if err := net.ConnectDuplex(h.ID(), router.ID(), link); err != nil {
				t.Fatalf("connect: %v", err)
			}
			h.SetDefaultHandler(func(*netsim.Packet, sim.Time) {})
		}

		cfg := RotatingConfig{
			PeakRate:   peak,
			SlotLength: sim.Time(slotMs) * sim.Millisecond,
			Groups:     groups,
			Group:      group,
		}
		s := NewRotatingSource(1, cfg, zombie, victim.PrimaryIP(), 1000, nil)
		defer s.Release()

		// Mirror of the constructor's clamps, the schedule actually in force.
		cSlot := cfg.SlotLength
		if cSlot <= 0 {
			cSlot = 100 * sim.Millisecond
		}
		cGroups := cfg.Groups
		if cGroups < 1 {
			cGroups = 1
		}
		cGroup := cfg.Group
		if cGroup < 0 || cGroup >= cGroups {
			cGroup = 0
		}
		cPeak := cfg.PeakRate
		if cPeak <= 0 {
			cPeak = 1
		}
		offset := sim.Time(int64(cSlot) * int64(cGroup))
		cycle := sim.Time(int64(cSlot) * int64(cGroups))

		const horizon = 1 * sim.Second
		s.Start(0)
		s.Start(0) // must be a no-op, not a second rotation schedule
		if err := sched.RunUntil(horizon); err != nil {
			t.Fatalf("run: %v", err)
		}

		// Slots owed inside the horizon: one at offset, then one per cycle.
		var want uint64
		if horizon >= offset {
			want = uint64((horizon-offset)/cycle) + 1
		}
		slots := s.Slots()
		if slots > want {
			t.Fatalf("double-activation: held %d slots, schedule owes at most %d (slot=%v groups=%d group=%d)",
				slots, want, cSlot, cGroups, cGroup)
		}
		if want > 0 && slots < want-1 {
			t.Fatalf("orphaned group: held %d slots, schedule owes %d (slot=%v groups=%d group=%d)",
				slots, want, cSlot, cGroups, cGroup)
		}

		// Exactly one send chain per slot: the packet count is bounded by
		// rate x slot length (+slack for the slot-start and slot-end sends).
		maxPerSlot := float64(cSlot)/float64(sim.Second)*cPeak + 2
		if got := float64(s.PacketsSent()); got > float64(slots)*maxPerSlot+1 {
			t.Fatalf("send chain compounded: %v packets over %d slots, want <= %v per slot",
				got, slots, maxPerSlot)
		}

		// Stop must silence the flow even with events still queued.
		sent, held := s.PacketsSent(), s.Slots()
		s.Stop()
		if err := sched.RunUntil(horizon + 4*cycle + 4*cSlot); err != nil {
			t.Fatalf("run after stop: %v", err)
		}
		if s.PacketsSent() != sent || s.Slots() != held {
			t.Fatalf("flow lived past Stop: packets %d -> %d, slots %d -> %d",
				sent, s.PacketsSent(), held, s.Slots())
		}
	})
}
