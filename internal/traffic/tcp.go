package traffic

import (
	"mafic/internal/netsim"
	"mafic/internal/sim"
)

// TCPConfig tunes a TCP-friendly source.
type TCPConfig struct {
	// RTT is the source's round-trip-time estimate, used for pacing and
	// the retransmission timeout.
	RTT sim.Time
	// MaxRate caps the source's sending rate in packets per second.
	MaxRate float64
	// InitialWindow is the starting congestion window in packets.
	InitialWindow float64
	// SlowStartThreshold is the initial ssthresh in packets.
	SlowStartThreshold float64
	// PacketSize is the data packet size in bytes.
	PacketSize int
}

// DefaultTCPConfig returns a source configuration representative of a
// well-behaved application flow.
func DefaultTCPConfig() TCPConfig {
	return TCPConfig{
		RTT:                40 * sim.Millisecond,
		MaxRate:            200,
		InitialWindow:      2,
		SlowStartThreshold: 16,
		PacketSize:         DefaultDataSize,
	}
}

// TCPSource is a TCP-Reno-like adaptive sender. It paces data packets at
// cwnd/RTT, grows the window on acknowledgements (slow start, then additive
// increase) and halves it on triple duplicate ACKs — which is exactly the
// reaction MAFIC's duplicated-ACK probes are designed to elicit. A
// retransmission timeout collapses the window to one packet.
type TCPSource struct {
	id        int
	cfg       TCPConfig
	host      *netsim.Host
	net       *netsim.Network
	label     netsim.FlowLabel
	labelHash uint64

	cwnd     float64
	ssthresh float64

	seq        int64
	lastAcked  int64
	dupAcks    int
	lastAckAt  sim.Time
	running    bool
	sent       uint64
	acked      uint64
	timeouts   uint64
	fastRetx   uint64
	probeSeen  uint64
	sendEvent  sim.EventRef
	packetSize int

	// reverseFn is the onReverse method value, materialised once per
	// pooled object so re-registering a reused source allocates nothing.
	reverseFn netsim.PacketHandler
}

var (
	_ Flow       = (*TCPSource)(nil)
	_ Releasable = (*TCPSource)(nil)
)

// NewTCPSource creates a TCP-friendly source on the given host targeting the
// victim address. srcPort disambiguates multiple flows from one host. The
// object comes from a package pool when a released source is available.
func NewTCPSource(id int, cfg TCPConfig, host *netsim.Host, victim netsim.IP, srcPort uint16) *TCPSource {
	if cfg.PacketSize <= 0 {
		cfg.PacketSize = DefaultDataSize
	}
	if cfg.InitialWindow <= 0 {
		cfg.InitialWindow = 2
	}
	if cfg.SlowStartThreshold <= 0 {
		cfg.SlowStartThreshold = 16
	}
	s := tcpPool.Get()
	if s == nil {
		s = &TCPSource{}
		s.reverseFn = s.onReverse
	}
	*s = TCPSource{
		reverseFn: s.reverseFn,
		id:        id,
		cfg:       cfg,
		host:      host,
		net:       host.Network(),
		label: netsim.FlowLabel{
			SrcIP:   host.PrimaryIP(),
			DstIP:   victim,
			SrcPort: srcPort,
			DstPort: victimPort,
		},
		cwnd:       cfg.InitialWindow,
		ssthresh:   cfg.SlowStartThreshold,
		packetSize: cfg.PacketSize,
	}
	s.labelHash = s.label.Hash()
	// Receive ACKs, duplicate ACKs and probes addressed to this flow.
	host.Register(s.label.Reverse(), s.reverseFn)
	return s
}

// Release implements Releasable: the source detaches from its host and
// returns to the package pool for reuse by a later workload build. The
// source must not be used afterwards.
func (s *TCPSource) Release() {
	s.Stop()
	s.host.Unregister(s.label.Reverse())
	// Drop every external reference so the pool pins neither the finished
	// run's network nor its scheduler.
	s.host, s.net = nil, nil
	s.sendEvent = sim.EventRef{}
	tcpPool.Put(s)
}

// ID implements Flow.
func (s *TCPSource) ID() int { return s.id }

// Label implements Flow.
func (s *TCPSource) Label() netsim.FlowLabel { return s.label }

// Malicious implements Flow; TCP sources are always legitimate.
func (s *TCPSource) Malicious() bool { return false }

// PacketsSent implements Flow.
func (s *TCPSource) PacketsSent() uint64 { return s.sent }

// AcksReceived reports how many new-data acknowledgements arrived.
func (s *TCPSource) AcksReceived() uint64 { return s.acked }

// Timeouts reports how many retransmission timeouts fired.
func (s *TCPSource) Timeouts() uint64 { return s.timeouts }

// FastRetransmits reports how many triple-duplicate-ACK reductions occurred.
func (s *TCPSource) FastRetransmits() uint64 { return s.fastRetx }

// ProbesSeen reports how many MAFIC duplicated-ACK probes reached the source.
func (s *TCPSource) ProbesSeen() uint64 { return s.probeSeen }

// Window returns the current congestion window in packets.
func (s *TCPSource) Window() float64 { return s.cwnd }

// CurrentRate implements Flow: the congestion-controlled rate cwnd/RTT,
// capped at MaxRate.
func (s *TCPSource) CurrentRate() float64 {
	rate := s.cwnd / s.cfg.RTT.Seconds()
	if s.cfg.MaxRate > 0 && rate > s.cfg.MaxRate {
		rate = s.cfg.MaxRate
	}
	return rate
}

// Start implements Flow.
func (s *TCPSource) Start(at sim.Time) {
	if s.running {
		return
	}
	s.running = true
	s.lastAckAt = at
	s.sendEvent = s.net.Scheduler().ScheduleHandlerAt(at, s)
}

// OnEvent implements sim.EventHandler: the pacing timer fired. Scheduling the
// source itself (rather than a closure) keeps the per-packet path
// allocation-free.
func (s *TCPSource) OnEvent(now sim.Time) { s.sendNext(now) }

// Stop implements Flow.
func (s *TCPSource) Stop() {
	s.running = false
	s.sendEvent.Cancel()
}

// sendNext emits one data packet and schedules the next transmission after
// the current pacing interval.
func (s *TCPSource) sendNext(now sim.Time) {
	if !s.running {
		return
	}
	s.maybeTimeout(now)

	s.seq++
	s.sent++
	pkt := s.net.NewPacket()
	pkt.ID = s.net.NextPacketID()
	pkt.Label = s.label
	pkt.Kind = netsim.KindData
	pkt.Proto = netsim.ProtoTCP
	pkt.Seq = s.seq
	pkt.Size = s.packetSize
	pkt.FlowID = s.id
	pkt.SetFlowHash(s.labelHash)
	s.host.Send(pkt)

	interval := s.pacingInterval()
	s.sendEvent = s.net.Scheduler().ScheduleHandlerAfter(interval, s)
}

// pacingInterval converts the current rate into an inter-packet gap.
func (s *TCPSource) pacingInterval() sim.Time {
	rate := s.CurrentRate()
	if rate <= 0 {
		rate = 1
	}
	return sim.Time(float64(sim.Second) / rate)
}

// maybeTimeout collapses the window if no acknowledgement has arrived for a
// full retransmission timeout (2×RTT, floored at 200 ms like common stacks).
func (s *TCPSource) maybeTimeout(now sim.Time) {
	rto := 2 * s.cfg.RTT
	if rto < 200*sim.Millisecond {
		rto = 200 * sim.Millisecond
	}
	if s.sent == 0 || now-s.lastAckAt < rto {
		return
	}
	s.timeouts++
	s.ssthresh = s.cwnd / 2
	if s.ssthresh < 2 {
		s.ssthresh = 2
	}
	s.cwnd = 1
	s.lastAckAt = now
}

// onReverse processes packets flowing back to the source: acknowledgements
// from the victim and duplicated-ACK probes injected by MAFIC.
func (s *TCPSource) onReverse(pkt *netsim.Packet, now sim.Time) {
	switch pkt.Kind {
	case netsim.KindAck:
		if pkt.Seq > s.lastAcked {
			s.lastAcked = pkt.Seq
			s.acked++
			s.dupAcks = 0
			s.lastAckAt = now
			s.growWindow()
			return
		}
		s.countDuplicate()
	case netsim.KindDupAck:
		s.probeSeen++
		s.countDuplicate()
	default:
		// Data or control packets addressed to the source are ignored.
	}
}

// growWindow applies slow start or additive increase.
func (s *TCPSource) growWindow() {
	if s.cwnd < s.ssthresh {
		s.cwnd++
	} else {
		s.cwnd += 1 / s.cwnd
	}
	maxWindow := s.maxWindow()
	if maxWindow > 0 && s.cwnd > maxWindow {
		s.cwnd = maxWindow
	}
}

// maxWindow converts the rate cap into a window cap.
func (s *TCPSource) maxWindow() float64 {
	if s.cfg.MaxRate <= 0 {
		return 0
	}
	return s.cfg.MaxRate * s.cfg.RTT.Seconds()
}

// countDuplicate registers a duplicate acknowledgement and performs the
// multiplicative decrease once three have accumulated.
func (s *TCPSource) countDuplicate() {
	s.dupAcks++
	if s.dupAcks < 3 {
		return
	}
	s.dupAcks = 0
	s.fastRetx++
	s.ssthresh = s.cwnd / 2
	if s.ssthresh < 2 {
		s.ssthresh = 2
	}
	s.cwnd = s.ssthresh
}
