package traffic

import (
	"errors"
	"math"
	"testing"

	"mafic/internal/netsim"
	"mafic/internal/sim"
	"mafic/internal/topology"
)

func testDomain(t *testing.T) *topology.Domain {
	t.Helper()
	cfg := topology.DefaultConfig()
	cfg.NumRouters = 10
	cfg.ClientsPerIngress = 3
	cfg.ZombiesPerIngress = 2
	cfg.BystanderHosts = 4
	d, err := topology.Build(cfg, sim.NewScheduler(), sim.NewRNG(5))
	if err != nil {
		t.Fatalf("build domain: %v", err)
	}
	return d
}

func TestTCPSourceDeliversAndGrows(t *testing.T) {
	d := testDomain(t)
	NewVictimServer(d.Victim, 0)
	cfg := DefaultTCPConfig()
	src := NewTCPSource(1, cfg, d.Clients[0], d.VictimIP(), 10001)
	src.Start(0)
	if err := d.Net.Scheduler().RunUntil(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	src.Stop()
	if src.PacketsSent() < 100 {
		t.Fatalf("TCP source sent only %d packets in 2s", src.PacketsSent())
	}
	if src.AcksReceived() == 0 {
		t.Fatal("no acknowledgements received")
	}
	if src.Window() <= cfg.InitialWindow {
		t.Fatalf("window did not grow: %.2f", src.Window())
	}
	if src.CurrentRate() > cfg.MaxRate+1e-9 {
		t.Fatalf("rate %.1f exceeds cap %.1f", src.CurrentRate(), cfg.MaxRate)
	}
	if src.Malicious() {
		t.Fatal("TCP source must be legitimate")
	}
}

func TestTCPSourceReactsToDupAckProbes(t *testing.T) {
	d := testDomain(t)
	NewVictimServer(d.Victim, 0)
	client := d.Clients[0]
	src := NewTCPSource(1, DefaultTCPConfig(), client, d.VictimIP(), 10001)
	src.Start(0)
	// Let the window open up first.
	if err := d.Net.Scheduler().RunUntil(1 * sim.Second); err != nil {
		t.Fatal(err)
	}
	before := src.Window()
	// Inject three duplicate ACKs as a MAFIC probe would.
	ingress := d.IngressOf(client)
	for i := 0; i < 3; i++ {
		probe := &netsim.Packet{
			ID:    d.Net.NextPacketID(),
			Label: src.Label().Reverse(),
			Kind:  netsim.KindDupAck,
			Proto: netsim.ProtoTCP,
			Size:  DefaultAckSize,
		}
		ingress.Inject(probe)
	}
	if err := d.Net.Scheduler().RunUntil(1*sim.Second + 100*sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	after := src.Window()
	if src.ProbesSeen() != 3 {
		t.Fatalf("probes seen = %d, want 3", src.ProbesSeen())
	}
	if src.FastRetransmits() == 0 {
		t.Fatal("triple duplicate ACKs did not trigger a rate reduction")
	}
	// The window halves on the probe and then partially regrows from the
	// ACK stream, so it must still be below its pre-probe value.
	if after >= before {
		t.Fatalf("window did not shrink after probes: before=%.2f after=%.2f", before, after)
	}
	src.Stop()
}

func TestTCPSourceTimeoutCollapsesWindow(t *testing.T) {
	d := testDomain(t)
	// No victim server: data is swallowed, no ACKs ever return.
	d.Victim.SetDefaultHandler(func(*netsim.Packet, sim.Time) {})
	src := NewTCPSource(1, DefaultTCPConfig(), d.Clients[0], d.VictimIP(), 10001)
	src.Start(0)
	if err := d.Net.Scheduler().RunUntil(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	src.Stop()
	if src.Timeouts() == 0 {
		t.Fatal("source without ACKs should have timed out")
	}
	if src.Window() > 2 {
		t.Fatalf("window = %.2f after persistent loss, want collapsed", src.Window())
	}
}

func TestCBRSourceRate(t *testing.T) {
	d := testDomain(t)
	NewVictimServer(d.Victim, 0)
	cbr := NewCBRSource(2, CBRConfig{Rate: 200, PacketSize: 400}, d.Clients[1], d.VictimIP(), 10002, sim.NewRNG(9))
	cbr.Start(0)
	if err := d.Net.Scheduler().RunUntil(1 * sim.Second); err != nil {
		t.Fatal(err)
	}
	cbr.Stop()
	sent := float64(cbr.PacketsSent())
	if math.Abs(sent-200) > 10 {
		t.Fatalf("CBR sent %.0f packets in 1s at 200 pkt/s", sent)
	}
	if cbr.Malicious() {
		t.Fatal("CBR source must be legitimate")
	}
	if cbr.CurrentRate() != 200 {
		t.Fatal("CurrentRate mismatch")
	}
}

func TestAttackSourceSpoofingModes(t *testing.T) {
	d := testDomain(t)
	NewVictimServer(d.Victim, 0)
	zombie := d.Zombies[0]
	bystander := d.SpoofPool()[0]

	tests := []struct {
		name    string
		cfg     AttackConfig
		wantSrc netsim.IP
	}{
		{
			name:    "no spoofing",
			cfg:     AttackConfig{Rate: 100, Spoof: SpoofNone},
			wantSrc: zombie.PrimaryIP(),
		},
		{
			name:    "legitimate spoof",
			cfg:     AttackConfig{Rate: 100, Spoof: SpoofLegitimate, SpoofedIP: bystander},
			wantSrc: bystander,
		},
		{
			name:    "illegal spoof",
			cfg:     AttackConfig{Rate: 100, Spoof: SpoofIllegal, SpoofedIP: netsim.IP(0x01000099)},
			wantSrc: netsim.IP(0x01000099),
		},
	}
	for i, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			a := NewAttackSource(10+i, tt.cfg, zombie, d.VictimIP(), uint16(20000+i), sim.NewRNG(3))
			if a.Label().SrcIP != tt.wantSrc {
				t.Fatalf("source IP = %v, want %v", a.Label().SrcIP, tt.wantSrc)
			}
			if !a.Malicious() {
				t.Fatal("attack source must be malicious")
			}
		})
	}
}

func TestAttackSourceFloodsUnresponsively(t *testing.T) {
	d := testDomain(t)
	v := NewVictimServer(d.Victim, 0)
	a := NewAttackSource(7, AttackConfig{Rate: 500, Spoof: SpoofNone}, d.Zombies[0], d.VictimIP(), 30000, sim.NewRNG(4))
	a.Start(0)
	if err := d.Net.Scheduler().RunUntil(1 * sim.Second); err != nil {
		t.Fatal(err)
	}
	firstSecond := a.PacketsSent()
	if err := d.Net.Scheduler().RunUntil(2 * sim.Second); err != nil {
		t.Fatal(err)
	}
	a.Stop()
	secondSecond := a.PacketsSent() - firstSecond
	// Despite the victim ACKing everything (TCP-marked attack), the rate
	// never adapts.
	if math.Abs(float64(firstSecond)-float64(secondSecond)) > 0.15*float64(firstSecond) {
		t.Fatalf("attack rate changed: %d then %d pkt/s", firstSecond, secondSecond)
	}
	if v.ReceivedMalicious() == 0 {
		t.Fatal("victim saw no attack packets")
	}
	if a.CurrentRate() != 500 {
		t.Fatal("CurrentRate mismatch")
	}
}

func TestVictimServerCounters(t *testing.T) {
	d := testDomain(t)
	v := NewVictimServer(d.Victim, 0)
	good := &netsim.Packet{
		ID:    d.Net.NextPacketID(),
		Label: netsim.FlowLabel{SrcIP: d.Clients[0].PrimaryIP(), DstIP: d.VictimIP(), SrcPort: 1, DstPort: 80},
		Kind:  netsim.KindData, Proto: netsim.ProtoTCP, Seq: 1, Size: 500,
	}
	bad := &netsim.Packet{
		ID:    d.Net.NextPacketID(),
		Label: netsim.FlowLabel{SrcIP: d.Zombies[0].PrimaryIP(), DstIP: d.VictimIP(), SrcPort: 2, DstPort: 80},
		Kind:  netsim.KindData, Proto: netsim.ProtoUDP, Seq: 1, Size: 500, Malicious: true,
	}
	ack := &netsim.Packet{
		ID:    d.Net.NextPacketID(),
		Label: good.Label,
		Kind:  netsim.KindAck, Proto: netsim.ProtoTCP, Size: 40,
	}
	d.Clients[0].Send(good)
	d.Zombies[0].Send(bad)
	d.Clients[0].Send(ack)
	if err := d.Net.Scheduler().Run(); err != nil {
		t.Fatal(err)
	}
	if v.Received() != 2 || v.ReceivedLegitimate() != 1 || v.ReceivedMalicious() != 1 {
		t.Fatalf("victim counters: total=%d good=%d bad=%d", v.Received(), v.ReceivedLegitimate(), v.ReceivedMalicious())
	}
	// Only the TCP data packet is acknowledged; UDP and ACKs are not.
	if v.AcksGenerated() != 1 {
		t.Fatalf("acks generated = %d, want 1", v.AcksGenerated())
	}
	if v.Host() != d.Victim {
		t.Fatal("Host accessor mismatch")
	}
}

func TestWorkloadSpecCounts(t *testing.T) {
	tests := []struct {
		name                 string
		spec                 WorkloadSpec
		wantTCP, wantUDP     int
		wantAttackAtLeastOne bool
	}{
		{
			name:                 "paper default",
			spec:                 WorkloadSpec{TotalFlows: 50, TCPShare: 0.95},
			wantTCP:              48, // round(47.5) rounds half away from zero
			wantUDP:              0,
			wantAttackAtLeastOne: true,
		},
		{
			name:                 "all tcp still yields one attacker",
			spec:                 WorkloadSpec{TotalFlows: 10, TCPShare: 1.0},
			wantTCP:              9,
			wantUDP:              0,
			wantAttackAtLeastOne: true,
		},
		{
			name:                 "mixed with udp",
			spec:                 WorkloadSpec{TotalFlows: 20, TCPShare: 0.5, UDPShare: 0.2},
			wantTCP:              10,
			wantUDP:              4,
			wantAttackAtLeastOne: true,
		},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			tcp, udp, attack := tt.spec.Counts()
			if tcp+udp+attack != tt.spec.TotalFlows {
				t.Fatalf("counts do not sum to V_t: %d+%d+%d != %d", tcp, udp, attack, tt.spec.TotalFlows)
			}
			if tcp != tt.wantTCP || udp != tt.wantUDP {
				t.Fatalf("counts = %d/%d/%d, want tcp=%d udp=%d", tcp, udp, attack, tt.wantTCP, tt.wantUDP)
			}
			if tt.wantAttackAtLeastOne && attack < 1 {
				t.Fatal("expected at least one attack flow")
			}
		})
	}
}

func TestWorkloadSpecValidate(t *testing.T) {
	good := DefaultWorkloadSpec()
	if err := good.Validate(); err != nil {
		t.Fatalf("default spec invalid: %v", err)
	}
	bad := []WorkloadSpec{
		{TotalFlows: 0, TCPShare: 0.5, AttackRate: 1, LegitRate: 1},
		{TotalFlows: 10, TCPShare: 1.5, AttackRate: 1, LegitRate: 1},
		{TotalFlows: 10, TCPShare: 0.5, UDPShare: 0.6, AttackRate: 1, LegitRate: 1},
		{TotalFlows: 10, TCPShare: 0.5, AttackRate: 0, LegitRate: 1},
		{TotalFlows: 10, TCPShare: 0.5, AttackRate: 1, LegitRate: 1, SpoofIllegalFraction: 0.8, SpoofLegitFraction: 0.4},
		{TotalFlows: 10, TCPShare: 0.5, AttackRate: 1, LegitRate: 1, CoremeltShare: -0.1},
		{TotalFlows: 10, TCPShare: 0.5, AttackRate: 1, LegitRate: 1, CoremeltShare: 1.2},
		{TotalFlows: 10, TCPShare: 0.5, AttackRate: 1, LegitRate: 1, CoremeltShare: 0.6, ExtraVictimShare: 0.6},
	}
	for i, spec := range bad {
		if err := spec.Validate(); !errors.Is(err, ErrBadSpec) {
			t.Fatalf("spec %d: want ErrBadSpec, got %v", i, err)
		}
	}
}

func TestBuildWorkload(t *testing.T) {
	d := testDomain(t)
	spec := DefaultWorkloadSpec()
	spec.TotalFlows = 30
	rng := sim.NewRNG(11)
	w, err := BuildWorkload(spec, d, rng)
	if err != nil {
		t.Fatalf("BuildWorkload: %v", err)
	}
	if len(w.Flows) != 30 {
		t.Fatalf("built %d flows, want 30", len(w.Flows))
	}
	if len(w.Legitimate)+len(w.Attack) != len(w.Flows) {
		t.Fatal("legitimate+attack does not cover all flows")
	}
	if len(w.Attack) < 1 {
		t.Fatal("no attack flows built")
	}
	// Labels must be unique across flows.
	seen := make(map[uint64]bool, len(w.Flows))
	for _, f := range w.Flows {
		h := f.Label().Hash()
		if seen[h] {
			t.Fatalf("duplicate flow label %v", f.Label())
		}
		seen[h] = true
	}
	// Attack flows must target the victim and be marked malicious.
	for _, f := range w.Attack {
		if f.Label().DstIP != d.VictimIP() || !f.Malicious() {
			t.Fatal("attack flow misconfigured")
		}
	}
	// Run the whole workload briefly and check traffic arrives.
	w.StartAll(spec, rng)
	if err := d.Net.Scheduler().RunUntil(1 * sim.Second); err != nil {
		t.Fatal(err)
	}
	w.StopAll()
	legit, attack := w.PacketsSent()
	if legit == 0 || attack == 0 {
		t.Fatalf("packets sent legit=%d attack=%d, want both > 0", legit, attack)
	}
	if w.Victim.Received() == 0 {
		t.Fatal("victim received nothing")
	}
}

func TestBuildWorkloadErrors(t *testing.T) {
	d := testDomain(t)
	if _, err := BuildWorkload(WorkloadSpec{}, d, sim.NewRNG(1)); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("want ErrBadSpec, got %v", err)
	}
	// A domain without zombies cannot host attack flows.
	empty, err := topology.Build(topology.Config{
		NumRouters:        4,
		CoreLink:          topology.DefaultConfig().CoreLink,
		AccessLink:        topology.DefaultConfig().AccessLink,
		VictimLink:        topology.DefaultConfig().VictimLink,
		ClientsPerIngress: 0,
		ZombiesPerIngress: 0,
	}, sim.NewScheduler(), sim.NewRNG(1))
	if err != nil {
		t.Fatalf("build empty domain: %v", err)
	}
	if _, err := BuildWorkload(DefaultWorkloadSpec(), empty, sim.NewRNG(1)); !errors.Is(err, ErrNoSources) {
		t.Fatalf("want ErrNoSources, got %v", err)
	}
}

// TestWorkloadCoremeltTargetsBystanders checks the coremelt split: the
// configured share of attack flows must flood bystander hosts instead of the
// victim, stay marked malicious, and fail loudly on a bystander-less domain.
func TestWorkloadCoremeltTargetsBystanders(t *testing.T) {
	d := testDomain(t)
	spec := DefaultWorkloadSpec()
	spec.TotalFlows = 40
	spec.TCPShare = 0.5 // 20 attack flows
	spec.CoremeltShare = 0.5
	w, err := BuildWorkload(spec, d, sim.NewRNG(3))
	if err != nil {
		t.Fatal(err)
	}
	bystanderIPs := make(map[netsim.IP]bool)
	for _, b := range d.Bystanders {
		bystanderIPs[b.PrimaryIP()] = true
	}
	coremelt := 0
	for _, f := range w.Attack {
		if !bystanderIPs[f.Label().DstIP] {
			continue
		}
		coremelt++
		if !f.Malicious() {
			t.Fatal("coremelt flow not marked malicious")
		}
	}
	if want := 10; coremelt != want {
		t.Fatalf("coremelt flows = %d, want %d (half of 20 attack flows)", coremelt, want)
	}

	// Without bystander hosts the same spec must be rejected at build time.
	cfg := topology.DefaultConfig()
	cfg.NumRouters = 10
	cfg.ClientsPerIngress = 3
	cfg.ZombiesPerIngress = 2
	cfg.BystanderHosts = 0
	bare, err := topology.Build(cfg, sim.NewScheduler(), sim.NewRNG(5))
	if err != nil {
		t.Fatalf("build bystander-less domain: %v", err)
	}
	if _, err := BuildWorkload(spec, bare, sim.NewRNG(3)); !errors.Is(err, ErrBadSpec) {
		t.Fatalf("want ErrBadSpec for coremelt without bystanders, got %v", err)
	}
}

func TestWorkloadSpoofMix(t *testing.T) {
	d := testDomain(t)
	spec := DefaultWorkloadSpec()
	spec.TotalFlows = 40
	spec.TCPShare = 0.5 // 20 attack flows
	spec.SpoofIllegalFraction = 0.25
	spec.SpoofLegitFraction = 0.5
	w, err := BuildWorkload(spec, d, sim.NewRNG(2))
	if err != nil {
		t.Fatal(err)
	}
	var illegal, legitSpoof, own int
	zombieIPs := make(map[netsim.IP]bool)
	for _, z := range d.Zombies {
		zombieIPs[z.PrimaryIP()] = true
	}
	for _, f := range w.Attack {
		src := f.Label().SrcIP
		switch {
		case !d.Net.IsRoutable(src):
			illegal++
		case zombieIPs[src]:
			own++
		default:
			legitSpoof++
		}
	}
	if illegal == 0 || legitSpoof == 0 || own == 0 {
		t.Fatalf("spoof mix: illegal=%d legit=%d own=%d, want all > 0", illegal, legitSpoof, own)
	}
	if illegal+legitSpoof+own != len(w.Attack) {
		t.Fatal("spoof categories do not cover all attack flows")
	}
}
