package traffic

import (
	"mafic/internal/netsim"
	"mafic/internal/sim"
)

// CBRConfig tunes a constant-bit-rate source.
type CBRConfig struct {
	// Rate is the sending rate in packets per second.
	Rate float64
	// PacketSize is the data packet size in bytes.
	PacketSize int
	// Jitter randomises each inter-packet gap by ±Jitter fraction so
	// that concurrent sources do not stay phase-locked.
	Jitter float64
}

// CBRSource sends data packets at a constant rate and never reacts to loss,
// acknowledgements or probes. With Malicious unset it models legitimate
// unresponsive traffic (e.g. UDP media); attack sources are built on top of
// it by AttackSource.
type CBRSource struct {
	id        int
	cfg       CBRConfig
	host      *netsim.Host
	net       *netsim.Network
	rng       *sim.RNG
	label     netsim.FlowLabel
	labelHash uint64
	malicious bool
	proto     netsim.Protocol

	running   bool
	seq       int64
	sent      uint64
	sendEvent sim.EventRef
}

var _ Flow = (*CBRSource)(nil)

// NewCBRSource creates a legitimate constant-rate (UDP-like) source on the
// given host targeting the victim address.
func NewCBRSource(id int, cfg CBRConfig, host *netsim.Host, victim netsim.IP, srcPort uint16, rng *sim.RNG) *CBRSource {
	return newCBR(id, cfg, host, rng, netsim.FlowLabel{
		SrcIP:   host.PrimaryIP(),
		DstIP:   victim,
		SrcPort: srcPort,
		DstPort: victimPort,
	}, false, netsim.ProtoUDP)
}

func newCBR(id int, cfg CBRConfig, host *netsim.Host, rng *sim.RNG, label netsim.FlowLabel, malicious bool, proto netsim.Protocol) *CBRSource {
	if cfg.PacketSize <= 0 {
		cfg.PacketSize = DefaultDataSize
	}
	if cfg.Rate <= 0 {
		cfg.Rate = 1
	}
	return &CBRSource{
		id:        id,
		cfg:       cfg,
		host:      host,
		net:       host.Network(),
		rng:       rng,
		label:     label,
		labelHash: label.Hash(),
		malicious: malicious,
		proto:     proto,
	}
}

// ID implements Flow.
func (s *CBRSource) ID() int { return s.id }

// Label implements Flow.
func (s *CBRSource) Label() netsim.FlowLabel { return s.label }

// Malicious implements Flow.
func (s *CBRSource) Malicious() bool { return s.malicious }

// PacketsSent implements Flow.
func (s *CBRSource) PacketsSent() uint64 { return s.sent }

// CurrentRate implements Flow.
func (s *CBRSource) CurrentRate() float64 { return s.cfg.Rate }

// Start implements Flow.
func (s *CBRSource) Start(at sim.Time) {
	if s.running {
		return
	}
	s.running = true
	s.sendEvent = s.net.Scheduler().ScheduleHandlerAt(at, s)
}

// Stop implements Flow.
func (s *CBRSource) Stop() {
	s.running = false
	s.sendEvent.Cancel()
}

// OnEvent implements sim.EventHandler: the send timer fired. Scheduling the
// source itself (rather than a closure) keeps the per-packet path
// allocation-free.
func (s *CBRSource) OnEvent(now sim.Time) { s.sendNext(now) }

func (s *CBRSource) sendNext(sim.Time) {
	if !s.running {
		return
	}
	s.seq++
	s.sent++
	pkt := s.net.NewPacket()
	pkt.ID = s.net.NextPacketID()
	pkt.Label = s.label
	pkt.Kind = netsim.KindData
	pkt.Proto = s.proto
	pkt.Seq = s.seq
	pkt.Size = s.cfg.PacketSize
	pkt.FlowID = s.id
	pkt.Malicious = s.malicious
	pkt.SetFlowHash(s.labelHash)
	s.host.Send(pkt)

	gap := float64(sim.Second) / s.cfg.Rate
	if s.rng != nil && s.cfg.Jitter > 0 {
		gap = s.rng.Jitter(gap, s.cfg.Jitter)
	}
	s.sendEvent = s.net.Scheduler().ScheduleHandlerAfter(sim.Time(gap), s)
}

// SpoofMode selects how an attack flow forges its source address.
type SpoofMode int

// Spoofing modes, covering the spectrum described in Section III-A of the
// paper.
const (
	// SpoofNone uses the zombie's real address. The flow is still
	// unresponsive, so MAFIC condemns it after probing.
	SpoofNone SpoofMode = iota + 1
	// SpoofLegitimate uses a valid address belonging to some other host
	// (a bystander). Probes reach that host and are ignored.
	SpoofLegitimate
	// SpoofIllegal uses an address routable nowhere; MAFIC's PDT fast
	// path drops such flows immediately.
	SpoofIllegal
)

// AttackConfig tunes a DDoS attack source.
type AttackConfig struct {
	// Rate is the flooding rate in packets per second (the paper's R).
	Rate float64
	// PacketSize is the attack packet size in bytes.
	PacketSize int
	// Jitter randomises inter-packet gaps by ±Jitter fraction.
	Jitter float64
	// Spoof selects the source-address forging strategy.
	Spoof SpoofMode
	// SpoofedIP is the forged source address for SpoofLegitimate and
	// SpoofIllegal modes.
	SpoofedIP netsim.IP
}

// AttackSource is an unresponsive flooding source run by a zombie. It is a
// constant-rate sender whose packets are marked malicious (ground truth for
// metrics only) and whose source address may be spoofed.
type AttackSource struct {
	cbr *CBRSource
}

var _ Flow = (*AttackSource)(nil)

// NewAttackSource creates an attack flow on the given zombie host.
func NewAttackSource(id int, cfg AttackConfig, zombie *netsim.Host, victim netsim.IP, srcPort uint16, rng *sim.RNG) *AttackSource {
	label := attackSourceLabel(zombie, victim, srcPort, cfg.Spoof, cfg.SpoofedIP)
	// The paper notes most attack traffic claims to be TCP, so attack
	// packets carry the TCP protocol marker while ignoring all feedback.
	cbr := newCBR(id, CBRConfig{Rate: cfg.Rate, PacketSize: cfg.PacketSize, Jitter: cfg.Jitter},
		zombie, rng, label, true, netsim.ProtoTCP)
	return &AttackSource{cbr: cbr}
}

// ID implements Flow.
func (a *AttackSource) ID() int { return a.cbr.ID() }

// Label implements Flow.
func (a *AttackSource) Label() netsim.FlowLabel { return a.cbr.Label() }

// Malicious implements Flow.
func (a *AttackSource) Malicious() bool { return true }

// PacketsSent implements Flow.
func (a *AttackSource) PacketsSent() uint64 { return a.cbr.PacketsSent() }

// CurrentRate implements Flow.
func (a *AttackSource) CurrentRate() float64 { return a.cbr.CurrentRate() }

// Start implements Flow.
func (a *AttackSource) Start(at sim.Time) { a.cbr.Start(at) }

// Stop implements Flow.
func (a *AttackSource) Stop() { a.cbr.Stop() }
