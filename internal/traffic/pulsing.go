package traffic

import (
	"mafic/internal/netsim"
	"mafic/internal/sim"
)

// PulsingConfig tunes an on-off (pulsing) attack source. Pulsing attacks —
// the shrew-style attacks referenced in the paper's related work — flood at
// full rate for a short burst, stay silent for the rest of the period, and
// are specifically designed to evade rate-based detectors while still
// degrading TCP traffic.
type PulsingConfig struct {
	// PeakRate is the flooding rate during the on-phase in packets/s.
	PeakRate float64
	// Period is the full on+off cycle length.
	Period sim.Time
	// DutyCycle is the fraction of each period spent flooding (0,1].
	DutyCycle float64
	// PacketSize is the attack packet size in bytes.
	PacketSize int
	// Spoof selects the source-address forging strategy.
	Spoof SpoofMode
	// SpoofedIP is the forged source address for SpoofLegitimate and
	// SpoofIllegal modes.
	SpoofedIP netsim.IP
}

// DefaultPulsingConfig returns a classic low-duty-cycle pulse: 200 ms bursts
// once per second at the full attack rate.
func DefaultPulsingConfig(peakRate float64) PulsingConfig {
	return PulsingConfig{
		PeakRate:   peakRate,
		Period:     sim.Second,
		DutyCycle:  0.2,
		PacketSize: DefaultDataSize,
		Spoof:      SpoofNone,
	}
}

// PulsingSource is an on-off attack flow. During on-phases it behaves like an
// AttackSource at PeakRate; during off-phases it is silent. It never reacts
// to probes or loss.
type PulsingSource struct {
	id        int
	cfg       PulsingConfig
	host      *netsim.Host
	net       *netsim.Network
	rng       *sim.RNG
	label     netsim.FlowLabel
	labelHash uint64

	running    bool
	inBurst    bool
	seq        int64
	sent       uint64
	bursts     uint64
	sendEvent  sim.EventRef
	phaseEvent sim.EventRef

	// phase and end are the flow's burst-boundary event handlers. They are
	// addressable struct fields rather than closures so scheduling them
	// never allocates and a checkpoint can identify a pending phase event
	// by comparing its handler against &s.phase / &s.end.
	phase pulsePhase
	end   pulseEnd
}

// pulsePhase dispatches the start of an on-phase.
type pulsePhase struct{ s *PulsingSource }

func (p *pulsePhase) OnEvent(now sim.Time) { p.s.beginBurst(now) }

// pulseEnd dispatches the end of an on-phase.
type pulseEnd struct{ s *PulsingSource }

func (p *pulseEnd) OnEvent(sim.Time) { p.s.inBurst = false }

var _ Flow = (*PulsingSource)(nil)

// NewPulsingSource creates a pulsing attack flow on the given zombie host.
func NewPulsingSource(id int, cfg PulsingConfig, zombie *netsim.Host, victim netsim.IP, srcPort uint16, rng *sim.RNG) *PulsingSource {
	if cfg.PacketSize <= 0 {
		cfg.PacketSize = DefaultDataSize
	}
	if cfg.PeakRate <= 0 {
		cfg.PeakRate = 1
	}
	if cfg.Period <= 0 {
		cfg.Period = sim.Second
	}
	if cfg.DutyCycle <= 0 || cfg.DutyCycle > 1 {
		cfg.DutyCycle = 0.2
	}
	label := attackSourceLabel(zombie, victim, srcPort, cfg.Spoof, cfg.SpoofedIP)
	s := &PulsingSource{
		id:        id,
		cfg:       cfg,
		host:      zombie,
		net:       zombie.Network(),
		rng:       rng,
		label:     label,
		labelHash: label.Hash(),
	}
	s.phase.s = s
	s.end.s = s
	return s
}

// ID implements Flow.
func (s *PulsingSource) ID() int { return s.id }

// Label implements Flow.
func (s *PulsingSource) Label() netsim.FlowLabel { return s.label }

// Malicious implements Flow.
func (s *PulsingSource) Malicious() bool { return true }

// PacketsSent implements Flow.
func (s *PulsingSource) PacketsSent() uint64 { return s.sent }

// Bursts reports how many on-phases have started.
func (s *PulsingSource) Bursts() uint64 { return s.bursts }

// CurrentRate implements Flow: the peak rate during a burst, zero otherwise.
func (s *PulsingSource) CurrentRate() float64 {
	if s.inBurst {
		return s.cfg.PeakRate
	}
	return 0
}

// Start implements Flow.
func (s *PulsingSource) Start(at sim.Time) {
	if s.running {
		return
	}
	s.running = true
	s.phaseEvent = s.net.Scheduler().ScheduleHandlerAt(at, &s.phase)
}

// OnEvent implements sim.EventHandler: the send timer fired. The per-packet
// path schedules the source itself; the per-burst phase events go through
// the phase/end handler fields.
func (s *PulsingSource) OnEvent(now sim.Time) { s.sendNext(now) }

// Stop implements Flow.
func (s *PulsingSource) Stop() {
	s.running = false
	s.inBurst = false
	s.sendEvent.Cancel()
	s.phaseEvent.Cancel()
}

// beginBurst starts an on-phase and schedules its end and the next burst.
func (s *PulsingSource) beginBurst(now sim.Time) {
	if !s.running {
		return
	}
	s.inBurst = true
	s.bursts++
	onTime := sim.Time(float64(s.cfg.Period) * s.cfg.DutyCycle)
	s.net.Scheduler().ScheduleHandlerAt(now+onTime, &s.end)
	s.phaseEvent = s.net.Scheduler().ScheduleHandlerAt(now+s.cfg.Period, &s.phase)
	// A send gap longer than the off-phase leaves the previous burst's
	// timer pending into this burst; cancel it so exactly one send chain
	// is ever live and the rate cannot compound across periods.
	s.sendEvent.Cancel()
	s.sendEvent = s.net.Scheduler().ScheduleHandlerAt(now, s)
}

// sendNext emits packets while the burst lasts.
func (s *PulsingSource) sendNext(sim.Time) {
	if !s.running || !s.inBurst {
		return
	}
	s.seq++
	s.sent++
	emitAttackPacket(s.net, s.host, s.label, s.labelHash, s.id, s.seq, s.cfg.PacketSize)

	gap := float64(sim.Second) / s.cfg.PeakRate
	if s.rng != nil {
		gap = s.rng.Jitter(gap, 0.05)
	}
	s.sendEvent = s.net.Scheduler().ScheduleHandlerAfter(sim.Time(gap), s)
}
