package traffic

import (
	"mafic/internal/netsim"
	"mafic/internal/sim"
)

// VictimServer is the host under attack. It accepts every incoming flow,
// acknowledges TCP data so legitimate senders' congestion control keeps
// working, and keeps simple arrival counters.
type VictimServer struct {
	host *netsim.Host
	net  *netsim.Network

	ackSize int

	received      uint64
	receivedBad   uint64
	receivedGood  uint64
	acksGenerated uint64
}

// NewVictimServer installs a server on the given host. ackSize is the size
// of generated acknowledgements in bytes; zero means DefaultAckSize.
func NewVictimServer(host *netsim.Host, ackSize int) *VictimServer {
	if ackSize <= 0 {
		ackSize = DefaultAckSize
	}
	v := &VictimServer{host: host, net: host.Network(), ackSize: ackSize}
	host.SetDefaultHandler(v.onPacket)
	return v
}

// Host returns the underlying host.
func (v *VictimServer) Host() *netsim.Host { return v.host }

// Received reports the total number of data packets that reached the victim.
func (v *VictimServer) Received() uint64 { return v.received }

// ReceivedMalicious reports how many attack packets reached the victim.
func (v *VictimServer) ReceivedMalicious() uint64 { return v.receivedBad }

// ReceivedLegitimate reports how many legitimate packets reached the victim.
func (v *VictimServer) ReceivedLegitimate() uint64 { return v.receivedGood }

// AcksGenerated reports how many acknowledgements the server sent.
func (v *VictimServer) AcksGenerated() uint64 { return v.acksGenerated }

// onPacket handles every packet delivered to the victim host.
func (v *VictimServer) onPacket(pkt *netsim.Packet, _ sim.Time) {
	if pkt.Kind != netsim.KindData {
		return
	}
	v.received++
	if pkt.Malicious {
		v.receivedBad++
	} else {
		v.receivedGood++
	}
	if pkt.Proto != netsim.ProtoTCP {
		return
	}
	// Acknowledge TCP data back toward the claimed source. For spoofed
	// flows the acknowledgement goes to the spoofed owner (or nowhere),
	// exactly as on the real Internet.
	ack := v.net.NewPacket()
	ack.ID = v.net.NextPacketID()
	ack.Label = pkt.Label.Reverse()
	ack.Kind = netsim.KindAck
	ack.Proto = netsim.ProtoTCP
	ack.Seq = pkt.Seq
	ack.Size = v.ackSize
	ack.FlowID = pkt.FlowID
	v.acksGenerated++
	v.host.Send(ack)
}
