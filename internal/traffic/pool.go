package traffic

import "mafic/internal/pool"

// Releasable is implemented by pooled flow types. Release returns the flow
// object to its package pool so a later workload build can reuse it instead
// of allocating; the flow must already be stopped and must not be touched
// afterwards. Workload.Release releases every pooled flow of a finished run.
//
// Pooled objects are fully reinitialised on reuse, so reuse can never leak
// state between runs — the experiment invariance suite pins this by
// comparing pooled and fresh runs bit-for-bit.
type Releasable interface{ Release() }

// tcpPool and rotatingPool recycle flow objects across workload builds,
// including across the workers of a parallel sweep. The caps bound retained
// memory against a pathological burst of releases.
var (
	tcpPool      = pool.FreeList[TCPSource]{Cap: 1 << 14}
	rotatingPool = pool.FreeList[RotatingSource]{Cap: 1 << 14}
)
