package traffic

import (
	"mafic/internal/netsim"
	"mafic/internal/sim"
)

// RotatingConfig tunes one flow of a rolling (rotating) pulse attack: the
// attack flows are partitioned into groups, and at any instant exactly one
// group floods while the others stay silent. Each measurement epoch the
// flooding role hands off to the next group, so the set of hot source routers
// keeps shifting under the detector — an adversary strategy aimed directly at
// per-router baseline tests.
type RotatingConfig struct {
	// PeakRate is the flooding rate while the flow's group holds the
	// baton, in packets/s.
	PeakRate float64
	// SlotLength is how long each group floods before handing off.
	SlotLength sim.Time
	// Groups is the number of rotation groups; the full rotation cycle is
	// Groups × SlotLength.
	Groups int
	// Group is this flow's group index in [0, Groups).
	Group int
	// PacketSize is the attack packet size in bytes.
	PacketSize int
	// Spoof selects the source-address forging strategy.
	Spoof SpoofMode
	// SpoofedIP is the forged source address for SpoofLegitimate and
	// SpoofIllegal modes.
	SpoofedIP netsim.IP
}

// RotatingSource is one flow of a rolling pulse attack. It floods at PeakRate
// during its group's slot of every rotation cycle and is silent otherwise. It
// never reacts to probes or loss.
type RotatingSource struct {
	id        int
	cfg       RotatingConfig
	host      *netsim.Host
	net       *netsim.Network
	rng       *sim.RNG
	label     netsim.FlowLabel
	labelHash uint64

	running    bool
	inSlot     bool
	seq        int64
	sent       uint64
	slots      uint64
	sendEvent  sim.EventRef
	phaseEvent sim.EventRef

	// phase and end are the flow's slot-boundary event handlers. They are
	// addressable struct fields rather than per-object closures so the
	// per-slot scheduling path never allocates and a checkpoint can
	// identify a pending phase event by comparing its handler against
	// &s.phase / &s.end.
	phase rotatePhase
	end   rotateEnd
}

// rotatePhase dispatches the start of the flow's flooding slot.
type rotatePhase struct{ s *RotatingSource }

func (p *rotatePhase) OnEvent(now sim.Time) { p.s.beginSlot(now) }

// rotateEnd dispatches the hand-off at the end of the flooding slot.
type rotateEnd struct{ s *RotatingSource }

func (p *rotateEnd) OnEvent(sim.Time) { p.s.inSlot = false }

var (
	_ Flow       = (*RotatingSource)(nil)
	_ Releasable = (*RotatingSource)(nil)
)

// NewRotatingSource creates one rolling-pulse attack flow on the given zombie
// host. Invalid configuration fields are clamped to usable values so a
// workload builder can always construct a runnable flow. The object comes
// from a package pool when a released source is available.
func NewRotatingSource(id int, cfg RotatingConfig, zombie *netsim.Host, victim netsim.IP, srcPort uint16, rng *sim.RNG) *RotatingSource {
	if cfg.PacketSize <= 0 {
		cfg.PacketSize = DefaultDataSize
	}
	if cfg.PeakRate <= 0 {
		cfg.PeakRate = 1
	}
	if cfg.SlotLength <= 0 {
		cfg.SlotLength = 100 * sim.Millisecond
	}
	if cfg.Groups < 1 {
		cfg.Groups = 1
	}
	if cfg.Group < 0 || cfg.Group >= cfg.Groups {
		cfg.Group = 0
	}
	label := attackSourceLabel(zombie, victim, srcPort, cfg.Spoof, cfg.SpoofedIP)
	s := rotatingPool.Get()
	if s == nil {
		s = &RotatingSource{}
	}
	*s = RotatingSource{
		id:        id,
		cfg:       cfg,
		host:      zombie,
		net:       zombie.Network(),
		rng:       rng,
		label:     label,
		labelHash: label.Hash(),
	}
	s.phase.s = s
	s.end.s = s
	return s
}

// Release implements Releasable: the source returns to the package pool for
// reuse by a later workload build and must not be used afterwards.
func (s *RotatingSource) Release() {
	s.Stop()
	s.host, s.net, s.rng = nil, nil, nil
	s.sendEvent = sim.EventRef{}
	s.phaseEvent = sim.EventRef{}
	rotatingPool.Put(s)
}

// ID implements Flow.
func (s *RotatingSource) ID() int { return s.id }

// Label implements Flow.
func (s *RotatingSource) Label() netsim.FlowLabel { return s.label }

// Malicious implements Flow.
func (s *RotatingSource) Malicious() bool { return true }

// PacketsSent implements Flow.
func (s *RotatingSource) PacketsSent() uint64 { return s.sent }

// Slots reports how many flooding slots this flow has held.
func (s *RotatingSource) Slots() uint64 { return s.slots }

// CurrentRate implements Flow: the peak rate while the flow's group holds the
// flooding slot, zero otherwise.
func (s *RotatingSource) CurrentRate() float64 {
	if s.inSlot {
		return s.cfg.PeakRate
	}
	return 0
}

// Start implements Flow. The flow's first slot begins Group slot-lengths
// after the attack start, so group 0 floods first and the baton then travels
// group by group.
func (s *RotatingSource) Start(at sim.Time) {
	if s.running {
		return
	}
	s.running = true
	offset := sim.Time(int64(s.cfg.SlotLength) * int64(s.cfg.Group))
	s.phaseEvent = s.net.Scheduler().ScheduleHandlerAt(at+offset, &s.phase)
}

// OnEvent implements sim.EventHandler: the send timer fired.
func (s *RotatingSource) OnEvent(now sim.Time) { s.sendNext(now) }

// Stop implements Flow.
func (s *RotatingSource) Stop() {
	s.running = false
	s.inSlot = false
	s.sendEvent.Cancel()
	s.phaseEvent.Cancel()
}

// beginSlot starts the flow's flooding slot and schedules the hand-off and
// the next turn a full rotation cycle later.
func (s *RotatingSource) beginSlot(now sim.Time) {
	if !s.running {
		return
	}
	s.inSlot = true
	s.slots++
	cycle := sim.Time(int64(s.cfg.SlotLength) * int64(s.cfg.Groups))
	s.net.Scheduler().ScheduleHandlerAt(now+s.cfg.SlotLength, &s.end)
	s.phaseEvent = s.net.Scheduler().ScheduleHandlerAt(now+cycle, &s.phase)
	// A send gap longer than the off-period leaves the previous chain's
	// timer pending into this slot; cancel it so exactly one send chain is
	// ever live and the rate cannot compound across cycles.
	s.sendEvent.Cancel()
	s.sendEvent = s.net.Scheduler().ScheduleHandlerAt(now, s)
}

// sendNext emits packets while the flow's slot lasts.
func (s *RotatingSource) sendNext(sim.Time) {
	if !s.running || !s.inSlot {
		return
	}
	s.seq++
	s.sent++
	emitAttackPacket(s.net, s.host, s.label, s.labelHash, s.id, s.seq, s.cfg.PacketSize)

	gap := float64(sim.Second) / s.cfg.PeakRate
	if s.rng != nil {
		gap = s.rng.Jitter(gap, 0.05)
	}
	s.sendEvent = s.net.Scheduler().ScheduleHandlerAfter(sim.Time(gap), s)
}
