package traffic

import (
	"testing"

	"mafic/internal/sim"
)

func TestPulsingSourceDutyCycle(t *testing.T) {
	d := testDomain(t)
	NewVictimServer(d.Victim, 0)
	cfg := PulsingConfig{
		PeakRate:  1000,
		Period:    500 * sim.Millisecond,
		DutyCycle: 0.2,
	}
	p := NewPulsingSource(1, cfg, d.Zombies[0], d.VictimIP(), 40000, sim.NewRNG(3))
	p.Start(0)
	if err := d.Net.Scheduler().RunUntil(1900 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	p.Stop()

	// Four periods of 500 ms with a 20% duty cycle at 1000 pkt/s ≈ 400
	// packets in total; allow generous slack for jitter and edge effects.
	sent := p.PacketsSent()
	if sent < 300 || sent > 500 {
		t.Fatalf("pulsing source sent %d packets, want ~400", sent)
	}
	if p.Bursts() != 4 {
		t.Fatalf("bursts = %d, want 4", p.Bursts())
	}
	if !p.Malicious() {
		t.Fatal("pulsing source must be malicious")
	}
}

func TestPulsingSourceSilentBetweenBursts(t *testing.T) {
	d := testDomain(t)
	NewVictimServer(d.Victim, 0)
	cfg := PulsingConfig{
		PeakRate:  1000,
		Period:    sim.Second,
		DutyCycle: 0.1,
	}
	p := NewPulsingSource(2, cfg, d.Zombies[0], d.VictimIP(), 40001, sim.NewRNG(4))
	p.Start(0)

	// During the burst the rate is the peak rate; between bursts it is 0.
	if err := d.Net.Scheduler().RunUntil(50 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if p.CurrentRate() != cfg.PeakRate {
		t.Fatalf("rate during burst = %v, want %v", p.CurrentRate(), cfg.PeakRate)
	}
	// The burst ends at 100 ms (10% duty cycle of a 1 s period); nothing
	// more may be sent until the next period starts at 1 s.
	if err := d.Net.Scheduler().RunUntil(150 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	atBurstEnd := p.PacketsSent()
	if err := d.Net.Scheduler().RunUntil(900 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	if p.CurrentRate() != 0 {
		t.Fatalf("rate between bursts = %v, want 0", p.CurrentRate())
	}
	if p.PacketsSent() != atBurstEnd {
		t.Fatal("packets were sent during the silent phase")
	}
	p.Stop()
}

func TestPulsingSourceSpoofing(t *testing.T) {
	d := testDomain(t)
	spoofed := d.SpoofPool()[0]
	cfg := DefaultPulsingConfig(500)
	cfg.Spoof = SpoofLegitimate
	cfg.SpoofedIP = spoofed
	p := NewPulsingSource(3, cfg, d.Zombies[0], d.VictimIP(), 40002, sim.NewRNG(5))
	if p.Label().SrcIP != spoofed {
		t.Fatalf("spoofed source = %v, want %v", p.Label().SrcIP, spoofed)
	}
	if p.ID() != 3 {
		t.Fatal("ID accessor mismatch")
	}
}

func TestPulsingConfigDefaults(t *testing.T) {
	cfg := DefaultPulsingConfig(2000)
	if cfg.PeakRate != 2000 || cfg.DutyCycle != 0.2 || cfg.Period != sim.Second {
		t.Fatalf("unexpected defaults: %+v", cfg)
	}
	// Invalid values are normalised by the constructor.
	d := testDomain(t)
	p := NewPulsingSource(4, PulsingConfig{}, d.Zombies[0], d.VictimIP(), 40003, sim.NewRNG(1))
	if p.cfg.PeakRate <= 0 || p.cfg.Period <= 0 || p.cfg.DutyCycle <= 0 || p.cfg.PacketSize <= 0 {
		t.Fatalf("constructor did not normalise config: %+v", p.cfg)
	}
}

func TestWorkloadWithPulsingAttack(t *testing.T) {
	d := testDomain(t)
	spec := DefaultWorkloadSpec()
	spec.TotalFlows = 20
	spec.TCPShare = 0.8
	spec.AttackPulsePeriod = 500 * sim.Millisecond
	spec.AttackDutyCycle = 0.3
	rng := sim.NewRNG(8)
	w, err := BuildWorkload(spec, d, rng)
	if err != nil {
		t.Fatalf("BuildWorkload: %v", err)
	}
	if len(w.Attack) == 0 {
		t.Fatal("no attack flows built")
	}
	for _, f := range w.Attack {
		if _, ok := f.(*PulsingSource); !ok {
			t.Fatalf("attack flow is %T, want *PulsingSource", f)
		}
	}
	w.StartAll(spec, rng)
	if err := d.Net.Scheduler().RunUntil(1200 * sim.Millisecond); err != nil {
		t.Fatal(err)
	}
	w.StopAll()
	_, attackSent := w.PacketsSent()
	if attackSent == 0 {
		t.Fatal("pulsing attack sent nothing")
	}
	// With a 30% duty cycle the attack volume must stay well below what a
	// constant flood at the same rate would have produced.
	constantEquivalent := uint64(float64(len(w.Attack)) * spec.AttackRate * 1.2)
	if attackSent >= constantEquivalent/2 {
		t.Fatalf("pulsing attack sent %d packets, expected well under %d", attackSent, constantEquivalent)
	}
}
