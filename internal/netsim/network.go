package netsim

import (
	"errors"
	"fmt"

	"mafic/internal/sim"
)

// Errors reported by network construction.
var (
	// ErrUnknownNode is returned when an operation references a node ID
	// that has not been added to the network.
	ErrUnknownNode = errors.New("netsim: unknown node")
	// ErrDuplicateLink is returned when a simplex link between the same
	// pair of nodes is added twice.
	ErrDuplicateLink = errors.New("netsim: duplicate link")
)

// Hooks collects optional callbacks that observation components (metrics,
// tests) register on a network. Nil members are simply skipped, so hot paths
// pay nothing for unused hooks. Hook callbacks must not retain the *Packet
// they receive: pooled packets are recycled as soon as the hook returns.
type Hooks struct {
	// OnQueueDrop fires when a drop-tail queue rejects a packet.
	OnQueueDrop func(pkt *Packet, link *Link, now sim.Time)
	// OnFilterDrop fires when a router filter (MAFIC, baseline dropper,
	// ...) discards a packet. filter is the filter's Name().
	OnFilterDrop func(pkt *Packet, router *Router, filter string, now sim.Time)
	// OnDeliver fires when a packet reaches the host owning its
	// destination address.
	OnDeliver func(pkt *Packet, host *Host, now sim.Time)
	// OnUnroutable fires when no route exists for a packet's destination;
	// the packet is discarded. Probes addressed to spoofed, unreachable
	// sources end up here.
	OnUnroutable func(pkt *Packet, at NodeID, now sim.Time)
	// OnFaultDrop fires when a down link or crashed router kills a packet
	// (see faults.go); at is the node where it died. The packet is
	// discarded.
	OnFaultDrop func(pkt *Packet, at NodeID, now sim.Time)
}

// nodeSlot is the dense per-NodeID dispatch record: exactly one of router or
// host is non-nil for an allocated ID.
type nodeSlot struct {
	router *Router
	host   *Host
}

// AdjacencyMode selects how the network stores its adjacency (link) state.
type AdjacencyMode int

// Adjacency modes.
const (
	// AdjacencySparse (the default) stores each node's outgoing links as a
	// neighbour list sorted by target ID: O(nodes + links) memory overall,
	// with per-hop lookups a short binary search over a row whose length is
	// the node's degree (2–10 in the generated domains). It is what makes
	// 50k-router domains tractable: the dense layout's rows alone would be
	// ~20 GB there.
	AdjacencySparse AdjacencyMode = iota
	// AdjacencyDense keeps the historical representation — one node-count
	// wide row per node, lookup by direct index — as the ordering-and-result
	// oracle, exactly as sim.BackendHeap and topology.RoutingEager were
	// kept. Both modes yield bit-identical simulations; the invariance tests
	// pin that.
	AdjacencyDense
)

// String implements fmt.Stringer.
func (m AdjacencyMode) String() string {
	switch m {
	case AdjacencySparse:
		return "sparse"
	case AdjacencyDense:
		return "dense"
	default:
		return "unknown"
	}
}

// adjEntry is one outgoing link in a sparse adjacency row, keyed by its
// target node. Rows are kept sorted by target so lookups binary-search and
// neighbour iteration is ascending — the same order the dense rows yield,
// which is what keeps BFS tie-breaking (and therefore every forwarding
// decision) identical across modes.
type adjEntry struct {
	to   NodeID
	link *Link
}

// Network owns every simulated node and link and bridges them to the
// discrete-event scheduler.
type Network struct {
	scheduler *sim.Scheduler
	rng       *sim.RNG

	routers map[NodeID]*Router
	hosts   map[NodeID]*Host
	// nodes is the dense NodeID-indexed dispatch table used on the
	// forwarding path instead of the registry maps above.
	nodes []nodeSlot
	// adjMode selects the adjacency representation below; exactly one of
	// the two tables is populated. See SetAdjacencyMode.
	adjMode AdjacencyMode
	// sparse[from] is the sorted-by-target neighbour list holding from's
	// outgoing links (AdjacencySparse, the default). A nil or short spine
	// entry means no outgoing links from that node yet.
	sparse [][]adjEntry
	// adj[from][to] is the simplex link from->to, or nil (AdjacencyDense).
	// Rows are node-count-wide NodeID-indexed slices grown on demand.
	adj     [][]*Link
	// links counts Connect calls; the adjacency mode is frozen once the
	// first link exists.
	links   int
	ipOwner map[IP]NodeID

	nextNodeID NodeID
	nextPktID  uint64

	// sizeHint is the expected final node count set by Reserve; dense
	// per-node tables (adjacency rows, route tables) are allocated at this
	// size up front when it is known.
	sizeHint int

	// pktFree is the packet free list; see NewPacket / FreePacket.
	pktFree []*Packet

	// Object slabs: nodes, links and pool packets are carved out of
	// chunk-allocated arrays instead of being allocated one by one, so
	// domain construction costs O(objects/chunk) allocations. Chunks are
	// never reallocated, keeping every handed-out pointer stable.
	routerSlab []Router
	routerUsed int
	hostSlab   []Host
	hostUsed   int
	linkSlab   []Link
	linkUsed   int

	// Dense-row slabs: dense-mode adjacency rows and per-router route
	// tables are carved from multi-row chunks so reserved domain
	// construction costs O(rows/denseRowChunk) allocations for them
	// instead of one each. Row widths are validated against the actual
	// node count at carve time (see denseRowWidth), never trusted to a
	// possibly stale sizeHint.
	adjSlab   []*Link
	routeSlab []NodeID

	// adjEntrySlab backs the sparse adjacency rows: rows are carved with a
	// few entries of headroom and re-carved at doubled capacity when a
	// node's degree outgrows them, so sparse domain construction costs
	// O(links/adjEntryChunk) allocations for adjacency storage.
	adjEntrySlab []adjEntry

	// filterSlab backs the routers' filter chains; chains are tiny (tap
	// plus at most one defence), so carving them avoids a per-router
	// allocation.
	filterSlab []Filter

	// ipSlab backs the hosts' address slices; nearly every host owns
	// exactly one address, so carving them avoids a per-host allocation.
	ipSlab []IP

	// handlers dispatches host-received packets by (host, label). One
	// network-wide map replaces a lazily allocated map per host; hosts
	// flag whether they registered anything so pure sinks skip the lookup.
	handlers map[handlerKey]PacketHandler

	// Demand-driven routing state (see routing.go): the installed column
	// resolver, the dense per-destination column table (host slots alias
	// their attachment router's column), and the materialization counters
	// behind RouteColumns/RouteStats.
	resolver         RouteResolver
	routeCols        [][]NodeID
	colsMaterialized int
	colEntries       int
	// topoVersion counts graph mutations (nodes added, links connected,
	// fault state flipped) so resolvers can detect a stale snapshot; see
	// TopoVersion.
	topoVersion uint64

	// Fault bookkeeping (see faults.go): counts of currently-down links and
	// routers — AppendNeighbors only takes its fault-aware path while either
	// is nonzero — and the network-wide fault-drop total.
	downLinks   int
	downRouters int
	faultDrops  uint64

	hooks Hooks
}

// handlerKey identifies one host's per-label packet handler.
type handlerKey struct {
	host  NodeID
	label FlowLabel
}

// Slab chunk sizes. Packets churn fastest and get the largest chunk.
const (
	pktChunk      = 256
	nodeChunk     = 64
	linkChunk     = 128
	denseRowChunk = 64
	filterChunk   = 64
	ipChunk       = 64
	// sparseRowCap is the initial capacity of a sparse adjacency row. Core
	// routers in the generated domains have degree 2 (ring) plus a chord or
	// two, so most rows never re-carve.
	sparseRowCap = 4
	// adjEntryChunk caps the sparse-slab chunk size in entries. Chunks are
	// sized proportionally to the domain (see adjEntrySlabSize), so small
	// networks never pay for a full chunk they will not fill.
	adjEntryChunk = 4096
)

// nodeSlabSize picks the chunk size for a node slab: at least nodeChunk, at
// most the nodes the reservation still expects. Routers are added before
// hosts, so sizing by the remaining budget keeps each slab close to its
// kind's actual population instead of the whole domain's.
func (n *Network) nodeSlabSize() int {
	size := nodeChunk
	if remaining := n.sizeHint - len(n.nodes); remaining > size {
		size = remaining
	}
	return size
}

// routerSlot carves a zeroed Router from the slab.
func (n *Network) routerSlot() *Router {
	if n.routerUsed == len(n.routerSlab) {
		n.routerSlab = make([]Router, n.nodeSlabSize())
		n.routerUsed = 0
	}
	r := &n.routerSlab[n.routerUsed]
	n.routerUsed++
	return r
}

// hostSlot carves a zeroed Host from the slab.
func (n *Network) hostSlot() *Host {
	if n.hostUsed == len(n.hostSlab) {
		n.hostSlab = make([]Host, n.nodeSlabSize())
		n.hostUsed = 0
	}
	h := &n.hostSlab[n.hostUsed]
	n.hostUsed++
	return h
}

// linkSlot carves a zeroed Link from the slab.
func (n *Network) linkSlot() *Link {
	if n.linkUsed == len(n.linkSlab) {
		n.linkSlab = make([]Link, linkChunk)
		n.linkUsed = 0
	}
	l := &n.linkSlab[n.linkUsed]
	n.linkUsed++
	return l
}

// denseRowWidth validates-and-grows the width of a dense per-node row: the
// Reserve hint when it is still accurate, but never narrower than the actual
// node count or the slot the caller is about to index. Rows used to be sized
// at n.sizeHint unconditionally, which made every caller responsible for
// compensating when nodes were added past the Reserve budget (or with
// Reserve never called, where sizeHint is 0) — get it wrong and a row comes
// out narrower than the final node count, silently missing links or routes
// for high NodeIDs. Centralizing the floor here makes stale hints harmless.
func (n *Network) denseRowWidth(need int) int {
	w := n.sizeHint
	if nc := len(n.nodes); nc > w {
		w = nc
	}
	if need > w {
		w = need
	}
	return w
}

// carveAdjRow carves one dense adjacency row covering at least need slots
// from the slab.
func (n *Network) carveAdjRow(need int) []*Link {
	w := n.denseRowWidth(need)
	if len(n.adjSlab) < w {
		n.adjSlab = make([]*Link, denseRowChunk*w)
	}
	row := n.adjSlab[:w:w]
	n.adjSlab = n.adjSlab[w:]
	return row
}

// carveRouteRow carves one dense route table covering at least need slots,
// filled with NoNode.
func (n *Network) carveRouteRow(need int) []NodeID {
	w := n.denseRowWidth(need)
	if len(n.routeSlab) < w {
		n.routeSlab = make([]NodeID, denseRowChunk*w)
	}
	row := n.routeSlab[:w:w]
	n.routeSlab = n.routeSlab[w:]
	for i := range row {
		row[i] = NoNode
	}
	return row
}

// adjEntrySlabSize picks the chunk size for the sparse-entry slab: roughly
// one initial row per expected node, so small domains allocate a chunk they
// actually fill, capped at adjEntryChunk so huge domains amortize in
// fixed-size chunks, and never smaller than the row being carved.
func (n *Network) adjEntrySlabSize(capWant int) int {
	size := sparseRowCap * n.denseRowWidth(0)
	if size > adjEntryChunk {
		size = adjEntryChunk
	}
	if size < capWant {
		size = capWant
	}
	return size
}

// carveAdjEntries carves a zero-length sparse row with the given capacity.
func (n *Network) carveAdjEntries(capWant int) []adjEntry {
	if len(n.adjEntrySlab) < capWant {
		n.adjEntrySlab = make([]adjEntry, n.adjEntrySlabSize(capWant))
	}
	row := n.adjEntrySlab[:0:capWant]
	n.adjEntrySlab = n.adjEntrySlab[capWant:]
	return row
}

// sparseFind returns the position of target to in the sorted row, or the
// position it would be inserted at (the lower bound).
func sparseFind(row []adjEntry, to NodeID) int {
	lo, hi := 0, len(row)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if row[mid].to < to {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo
}

// growFilters returns a filter slice with room for two more entries, carved
// from the filter slab, with old's contents copied in.
func (n *Network) growFilters(old []Filter) []Filter {
	want := len(old) + 2
	if len(n.filterSlab) < want {
		size := filterChunk
		if want > size {
			size = want
		}
		n.filterSlab = make([]Filter, size)
	}
	grown := n.filterSlab[:len(old):want]
	n.filterSlab = n.filterSlab[want:]
	copy(grown, old)
	return grown
}

// carveIPs copies ips into slab-backed storage with one slot of headroom,
// so RegisterIP of a second address stays in place.
func (n *Network) carveIPs(ips []IP) []IP {
	want := len(ips) + 1
	if len(n.ipSlab) < want {
		size := ipChunk
		if want > size {
			size = want
		}
		n.ipSlab = make([]IP, size)
	}
	s := n.ipSlab[:len(ips):want]
	n.ipSlab = n.ipSlab[want:]
	copy(s, ips)
	return s
}

// registerHandler installs fn for packets carrying label at the given host.
func (n *Network) registerHandler(host NodeID, label FlowLabel, fn PacketHandler) {
	if n.handlers == nil {
		n.handlers = make(map[handlerKey]PacketHandler)
	}
	n.handlers[handlerKey{host: host, label: label}] = fn
}

// unregisterHandler removes the handler for (host, label).
func (n *Network) unregisterHandler(host NodeID, label FlowLabel) {
	delete(n.handlers, handlerKey{host: host, label: label})
}

// handlerFor returns the handler registered for (host, label), or nil.
func (n *Network) handlerFor(host NodeID, label FlowLabel) PacketHandler {
	return n.handlers[handlerKey{host: host, label: label}]
}

// New creates an empty network bound to the given scheduler and RNG.
func New(scheduler *sim.Scheduler, rng *sim.RNG) *Network {
	return &Network{
		scheduler: scheduler,
		rng:       rng,
		routers:   make(map[NodeID]*Router),
		hosts:     make(map[NodeID]*Host),
		ipOwner:   make(map[IP]NodeID),
	}
}

// SetHooks installs observation callbacks. It must be called before the
// simulation starts; installing hooks mid-run is not supported.
func (n *Network) SetHooks(h Hooks) { n.hooks = h }

// Scheduler exposes the underlying event scheduler.
func (n *Network) Scheduler() *sim.Scheduler { return n.scheduler }

// RNG exposes the network's random source.
func (n *Network) RNG() *sim.RNG { return n.rng }

// Now reports the current virtual time.
func (n *Network) Now() sim.Time { return n.scheduler.Now() }

// NextPacketID allocates a unique packet identifier.
func (n *Network) NextPacketID() uint64 {
	n.nextPktID++
	return n.nextPktID
}

// NewPacket returns a zeroed packet from the network's pool, allocating only
// when the free list is empty. The packet is owned by the caller until it is
// handed to the network (Send, Deliver, Inject); the network recycles it at
// its terminal point. See the package documentation for the ownership rules.
func (n *Network) NewPacket() *Packet {
	if len(n.pktFree) == 0 {
		// Refill the free list from a fresh chunk: one allocation buys
		// pktChunk packets. Chunk packets enter the list in the same
		// state FreePacket leaves recycled ones in.
		chunk := make([]Packet, pktChunk)
		if cap(n.pktFree) < pktChunk {
			n.pktFree = make([]*Packet, 0, pktChunk)
		}
		for i := range chunk {
			chunk[i].pooled = true
			chunk[i].freed = true
			n.pktFree = append(n.pktFree, &chunk[i])
		}
	}
	last := len(n.pktFree) - 1
	p := n.pktFree[last]
	n.pktFree[last] = nil
	n.pktFree = n.pktFree[:last]
	*p = Packet{pooled: true}
	return p
}

// FreePacket returns a pooled packet to the free list. Packets not obtained
// from NewPacket are ignored, so externally constructed packets may flow
// through the network safely. Releasing the same pooled packet twice is a
// programming error; it panics when the packet still sits in the free list.
// The check is best-effort: a stale release that lands after the slot has
// been reissued by NewPacket is indistinguishable from a legitimate one,
// which is why holders must drop their reference at the terminal point.
func (n *Network) FreePacket(p *Packet) {
	if p == nil || !p.pooled {
		return
	}
	if p.freed {
		panic(fmt.Sprintf("netsim: double release of packet %d (%s)", p.ID, p.Label))
	}
	p.freed = true
	n.pktFree = append(n.pktFree, p)
}

// allocateNodeID hands out the next node identifier.
func (n *Network) allocateNodeID() NodeID {
	id := n.nextNodeID
	n.nextNodeID++
	n.nodes = append(n.nodes, nodeSlot{})
	n.topoVersion++
	return id
}

// SetAdjacencyMode selects the adjacency representation. It must be called
// before any link is added — the tables are not converted in place — and is
// typically the first call after New. The zero-value default is
// AdjacencySparse; AdjacencyDense retains the historical layout as the
// equivalence oracle.
func (n *Network) SetAdjacencyMode(m AdjacencyMode) error {
	if m != AdjacencySparse && m != AdjacencyDense {
		return fmt.Errorf("netsim: unknown adjacency mode %d", m)
	}
	if n.links > 0 {
		return errors.New("netsim: adjacency mode must be selected before links are added")
	}
	n.adjMode = m
	n.reserveAdjSpine(n.sizeHint)
	return nil
}

// AdjacencyMode reports the active adjacency representation.
func (n *Network) AdjacencyMode() AdjacencyMode { return n.adjMode }

// reserveAdjSpine pre-sizes the active mode's adjacency spine.
func (n *Network) reserveAdjSpine(nodes int) {
	if n.adjMode == AdjacencySparse {
		if cap(n.sparse) < nodes {
			grown := make([][]adjEntry, len(n.sparse), nodes)
			copy(grown, n.sparse)
			n.sparse = grown
		}
		return
	}
	if cap(n.adj) < nodes {
		grown := make([][]*Link, len(n.adj), nodes)
		copy(grown, n.adj)
		n.adj = grown
	}
}

// Reserve pre-sizes the node and adjacency tables for a domain of the given
// node count. Topology builders that know their final size call it once so
// the dense per-node tables are allocated at full size up front instead of
// growing piecemeal. Reserving is purely an optimisation; the network works
// identically without it — in particular, nodes added past the reserved
// budget still get full-width rows (see denseRowWidth).
func (n *Network) Reserve(nodes int) {
	if nodes <= len(n.nodes) {
		return
	}
	grownNodes := make([]nodeSlot, len(n.nodes), nodes)
	copy(grownNodes, n.nodes)
	n.nodes = grownNodes
	if nodes > n.sizeHint {
		n.sizeHint = nodes
	}
	n.reserveAdjSpine(nodes)
	if nodes > len(n.routeCols) {
		grownCols := make([][]NodeID, nodes)
		copy(grownCols, n.routeCols)
		n.routeCols = grownCols
	}
}

// AddRouter creates a router with the given human-readable name. Its static
// route table starts empty — demand-driven forwarding needs none, and the
// eager install path carves a dense slab row on the first SetRoute.
func (n *Network) AddRouter(name string) *Router {
	r := n.routerSlot()
	*r = Router{
		net:  n,
		id:   n.allocateNodeID(),
		name: name,
	}
	n.routers[r.id] = r
	n.nodes[r.id].router = r
	return r
}

// AddHost creates a host owning the given addresses. The per-label handler
// table is created lazily on first Register, so pure-sink hosts (bystanders,
// extra victims) never allocate one.
func (n *Network) AddHost(name string, ips ...IP) *Host {
	h := n.hostSlot()
	*h = Host{
		net:  n,
		id:   n.allocateNodeID(),
		name: name,
		ips:  n.carveIPs(ips),
	}
	n.hosts[h.id] = h
	n.nodes[h.id].host = h
	for _, ip := range ips {
		n.ipOwner[ip] = h.id
	}
	return h
}

// RegisterIP assigns an additional address to an existing host.
func (n *Network) RegisterIP(host *Host, ip IP) {
	host.ips = append(host.ips, ip)
	n.ipOwner[ip] = host.id
}

// Router returns the router with the given ID, or nil.
func (n *Network) Router(id NodeID) *Router { return n.routers[id] }

// Host returns the host with the given ID, or nil.
func (n *Network) Host(id NodeID) *Host { return n.hosts[id] }

// Routers returns all routers keyed by node ID. The map is the live internal
// map and must not be mutated by callers; it is exposed for iteration only.
func (n *Network) Routers() map[NodeID]*Router { return n.routers }

// Hosts returns all hosts keyed by node ID (iteration only, do not mutate).
func (n *Network) Hosts() map[NodeID]*Host { return n.hosts }

// NodeCount reports the number of nodes (routers plus hosts).
func (n *Network) NodeCount() int { return len(n.routers) + len(n.hosts) }

// Owner resolves an address to the node owning it, or NoNode when the
// address is not allocated anywhere in the simulated internetwork. MAFIC
// treats packets whose source resolves to NoNode as carrying illegal or
// unreachable addresses.
func (n *Network) Owner(ip IP) NodeID {
	if id, ok := n.ipOwner[ip]; ok {
		return id
	}
	return NoNode
}

// IsRoutable reports whether an address belongs to some host in the
// simulated internetwork.
func (n *Network) IsRoutable(ip IP) bool {
	_, ok := n.ipOwner[ip]
	return ok
}

// Connect adds a simplex link from a to b. Use ConnectDuplex for the common
// bidirectional case.
func (n *Network) Connect(from, to NodeID, cfg LinkConfig) (*Link, error) {
	if !n.nodeExists(from) || !n.nodeExists(to) {
		return nil, fmt.Errorf("connect %d->%d: %w", from, to, ErrUnknownNode)
	}
	if cfg.QueueLen <= 0 {
		cfg.QueueLen = DefaultQueueLen
	}
	if n.LinkBetween(from, to) != nil {
		return nil, fmt.Errorf("connect %d->%d: %w", from, to, ErrDuplicateLink)
	}
	// A new link can change shortest paths; memoized next-hop columns from
	// before it existed are stale. On the build-then-run lifecycle nothing
	// has materialized yet and this is free.
	n.invalidateRouteColumns()
	n.topoVersion++
	l := n.linkSlot()
	*l = Link{net: n, from: from, to: to, cfg: cfg}
	n.links++
	if n.adjMode == AdjacencySparse {
		n.sparseInsert(from, to, l)
	} else {
		n.denseInsert(from, to, l)
	}
	if h := n.nodes[to].host; h != nil {
		h.noteHome(from, l)
	}
	return l, nil
}

// sparseInsert places l into from's sorted neighbour row, re-carving the row
// at doubled capacity when its degree outgrows the current segment.
func (n *Network) sparseInsert(from, to NodeID, l *Link) {
	for int(from) >= len(n.sparse) {
		n.sparse = append(n.sparse, nil)
	}
	row := n.sparse[from]
	i := sparseFind(row, to)
	// Connect rejected duplicates already, so the slot at i is either past
	// the end or holds a larger target.
	if len(row) == cap(row) {
		capWant := sparseRowCap
		if c := 2 * cap(row); c > capWant {
			capWant = c
		}
		grown := n.carveAdjEntries(capWant)[:len(row)+1]
		copy(grown, row[:i])
		copy(grown[i+1:], row[i:])
		grown[i] = adjEntry{to: to, link: l}
		n.sparse[from] = grown
		return
	}
	row = row[:len(row)+1]
	copy(row[i+1:], row[i:])
	row[i] = adjEntry{to: to, link: l}
	n.sparse[from] = row
}

// denseInsert places l into from's dense row, growing the row once to the
// validated width (never narrower than the node count) rather than element
// by element. All rows come from the row slab, including rows grown for
// nodes added past the Reserve budget.
func (n *Network) denseInsert(from, to NodeID, l *Link) {
	for int(from) >= len(n.adj) {
		n.adj = append(n.adj, nil)
	}
	row := n.adj[from]
	if int(to) >= len(row) {
		grown := n.carveAdjRow(int(to) + 1)
		copy(grown, row)
		row = grown
	}
	row[to] = l
	n.adj[from] = row
}

// ConnectDuplex adds two simplex links (a->b and b->a) with the same
// configuration. Both directions are validated before either is installed:
// a rejected pair leaves no half-installed duplex link behind and does not
// move TopoVersion.
func (n *Network) ConnectDuplex(a, b NodeID, cfg LinkConfig) error {
	if !n.nodeExists(a) || !n.nodeExists(b) {
		return fmt.Errorf("connect %d<->%d: %w", a, b, ErrUnknownNode)
	}
	if n.LinkBetween(a, b) != nil || n.LinkBetween(b, a) != nil {
		return fmt.Errorf("connect %d<->%d: %w", a, b, ErrDuplicateLink)
	}
	if _, err := n.Connect(a, b, cfg); err != nil {
		return err
	}
	if _, err := n.Connect(b, a, cfg); err != nil {
		return err
	}
	return nil
}

// AttachmentLink returns the direct link from node r to the host with ID h,
// or nil. It answers the per-hop forwarding question "is this packet's
// destination attached to me?" from the attachment record Connect keeps on
// each host — an O(homes) scan of one or two inline entries — instead of an
// adjacency search that misses at every hop but the last. The answer is
// exactly LinkBetween(r, h) whenever h is a host; non-host IDs (which no
// destination owner ever is) fall back to the search.
func (n *Network) AttachmentLink(r, h NodeID) *Link {
	if h < 0 || int(h) >= len(n.nodes) {
		return nil
	}
	host := n.nodes[h].host
	if host == nil || host.homeCount > maxHostHomes {
		// Not a host, or a pathologically many-homed one whose inline
		// record overflowed: preserve the adjacency answer.
		return n.LinkBetween(r, h)
	}
	for i := 0; i < host.homeCount; i++ {
		if host.homeRouters[i] == r {
			return host.homeLinks[i]
		}
	}
	return nil
}

// LinkBetween returns the simplex link from a to b, or nil. This sits on the
// per-hop forwarding path: sparse mode binary-searches a's neighbour row (a
// handful of entries in the generated domains), dense mode is a pair of
// bounds-checked slice indexes. Neither allocates.
func (n *Network) LinkBetween(a, b NodeID) *Link {
	if n.adjMode == AdjacencySparse {
		if a < 0 || int(a) >= len(n.sparse) {
			return nil
		}
		row := n.sparse[a]
		if i := sparseFind(row, b); i < len(row) && row[i].to == b {
			return row[i].link
		}
		return nil
	}
	if a < 0 || int(a) >= len(n.adj) {
		return nil
	}
	row := n.adj[a]
	if b < 0 || int(b) >= len(row) {
		return nil
	}
	return row[b]
}

// Neighbors returns the node IDs reachable over one outgoing link from id,
// in ascending order.
func (n *Network) Neighbors(id NodeID) []NodeID {
	return n.AppendNeighbors(nil, id)
}

// AppendNeighbors appends id's neighbours (ascending) to dst and returns the
// extended slice. Passing a reused buffer makes adjacency iteration
// allocation-free; route computation over large domains depends on this.
// While any link or router is down, down links and links into crashed
// routers are skipped (in the same ascending order), so route recomputation
// converges around the fault; with no fault active the historical loop runs
// untouched.
func (n *Network) AppendNeighbors(dst []NodeID, id NodeID) []NodeID {
	if n.faultsActive() {
		return n.appendLiveNeighbors(dst, id)
	}
	if n.adjMode == AdjacencySparse {
		if id < 0 || int(id) >= len(n.sparse) {
			return dst
		}
		for _, e := range n.sparse[id] {
			dst = append(dst, e.to)
		}
		return dst
	}
	if id < 0 || int(id) >= len(n.adj) {
		return dst
	}
	for to, l := range n.adj[id] {
		if l != nil {
			dst = append(dst, NodeID(to))
		}
	}
	return dst
}

func (n *Network) nodeExists(id NodeID) bool {
	if id < 0 || int(id) >= len(n.nodes) {
		return false
	}
	slot := n.nodes[id]
	return slot.router != nil || slot.host != nil
}

// deliverTo hands a packet arriving over a link to its destination node.
func (n *Network) deliverTo(id NodeID, pkt *Packet, from NodeID) {
	if id >= 0 && int(id) < len(n.nodes) {
		slot := n.nodes[id]
		if slot.router != nil {
			slot.router.Deliver(pkt, from)
			return
		}
		if slot.host != nil {
			slot.host.Deliver(pkt, from)
			return
		}
	}
	n.dropUnroutable(pkt, from)
}

// SendFrom launches a packet from the given node: hosts hand it to their
// access router, routers route it directly. It is the entry point traffic
// sources and probe injectors use. Ownership of the packet transfers to the
// network.
func (n *Network) SendFrom(origin NodeID, pkt *Packet) {
	if origin >= 0 && int(origin) < len(n.nodes) {
		slot := n.nodes[origin]
		if slot.router != nil {
			slot.router.forward(pkt, origin)
			return
		}
		if slot.host != nil {
			slot.host.send(pkt)
			return
		}
	}
	n.dropUnroutable(pkt, origin)
}

func (n *Network) noteQueueDrop(pkt *Packet, l *Link, now sim.Time) {
	if n.hooks.OnQueueDrop != nil {
		n.hooks.OnQueueDrop(pkt, l, now)
	}
}

func (n *Network) noteFilterDrop(pkt *Packet, r *Router, filter string, now sim.Time) {
	if n.hooks.OnFilterDrop != nil {
		n.hooks.OnFilterDrop(pkt, r, filter, now)
	}
}

func (n *Network) noteDeliver(pkt *Packet, h *Host, now sim.Time) {
	if n.hooks.OnDeliver != nil {
		n.hooks.OnDeliver(pkt, h, now)
	}
}

// dropUnroutable reports an unroutable packet and recycles it: it has
// reached a terminal point.
func (n *Network) dropUnroutable(pkt *Packet, at NodeID) {
	if n.hooks.OnUnroutable != nil {
		n.hooks.OnUnroutable(pkt, at, n.Now())
	}
	n.FreePacket(pkt)
}
