package netsim

import (
	"runtime"
	"testing"

	"mafic/internal/sim"
)

// buildAdjNet wires a small random-ish graph in the given mode: a ring of
// routers with a few chords plus a host hanging off router 0. Reserve is
// called with the given budget (which tests deliberately under-shoot).
func buildAdjNet(t *testing.T, mode AdjacencyMode, routers, reserve int) (*Network, []*Router) {
	t.Helper()
	n := New(sim.NewScheduler(), sim.NewRNG(7))
	if err := n.SetAdjacencyMode(mode); err != nil {
		t.Fatalf("set mode: %v", err)
	}
	n.Reserve(reserve)
	cfg := LinkConfig{BandwidthBps: 1e9, Delay: sim.Millisecond, QueueLen: 16}
	rs := make([]*Router, routers)
	for i := range rs {
		rs[i] = n.AddRouter("r")
	}
	for i := range rs {
		if err := n.ConnectDuplex(rs[i].ID(), rs[(i+1)%routers].ID(), cfg); err != nil {
			t.Fatalf("ring: %v", err)
		}
	}
	// A few chords, inserted out of ascending order so sparse insertion has
	// to shift within rows.
	for _, c := range [][2]int{{0, routers / 2}, {1, routers - 2}, {3, routers/2 + 2}} {
		if c[0] == c[1] || n.LinkBetween(rs[c[0]].ID(), rs[c[1]].ID()) != nil {
			continue
		}
		if err := n.ConnectDuplex(rs[c[0]].ID(), rs[c[1]].ID(), cfg); err != nil {
			t.Fatalf("chord: %v", err)
		}
	}
	return n, rs
}

// TestSparseDenseAdjacencyEquivalent pins the structural contract behind the
// sparse default: for every node pair, LinkBetween agrees with the dense
// oracle (same presence, same endpoints and config), and AppendNeighbors
// yields the same ascending neighbour lists — the property that keeps BFS
// tie-breaking, and therefore the whole simulation, bit-identical.
func TestSparseDenseAdjacencyEquivalent(t *testing.T) {
	const routers = 24
	sparse, srs := buildAdjNet(t, AdjacencySparse, routers, routers)
	dense, drs := buildAdjNet(t, AdjacencyDense, routers, routers)

	for a := 0; a < routers; a++ {
		for b := -1; b <= routers; b++ {
			sl := sparse.LinkBetween(srs[a].ID(), NodeID(b))
			dl := dense.LinkBetween(drs[a].ID(), NodeID(b))
			if (sl == nil) != (dl == nil) {
				t.Fatalf("LinkBetween(%d,%d): sparse %v, dense %v", a, b, sl, dl)
			}
			if sl != nil && (sl.From() != dl.From() || sl.To() != dl.To()) {
				t.Fatalf("LinkBetween(%d,%d): endpoints diverge", a, b)
			}
		}
		sn := sparse.Neighbors(srs[a].ID())
		dn := dense.Neighbors(drs[a].ID())
		if len(sn) != len(dn) {
			t.Fatalf("Neighbors(%d): sparse %v, dense %v", a, sn, dn)
		}
		for i := range sn {
			if sn[i] != dn[i] {
				t.Fatalf("Neighbors(%d): order diverges at %d: sparse %v, dense %v", a, i, sn, dn)
			}
			if i > 0 && sn[i] <= sn[i-1] {
				t.Fatalf("Neighbors(%d) not ascending: %v", a, sn)
			}
		}
	}
}

// TestAdjacencyModeFrozenAfterLinks pins that the representation cannot be
// switched once links exist (the tables are not converted in place).
func TestAdjacencyModeFrozenAfterLinks(t *testing.T) {
	n := New(sim.NewScheduler(), sim.NewRNG(1))
	if err := n.SetAdjacencyMode(AdjacencyDense); err != nil {
		t.Fatalf("set mode on empty network: %v", err)
	}
	if err := n.SetAdjacencyMode(AdjacencyMode(99)); err == nil {
		t.Fatal("unknown mode accepted")
	}
	a, b := n.AddRouter("a"), n.AddRouter("b")
	cfg := LinkConfig{BandwidthBps: 1e9, Delay: sim.Millisecond, QueueLen: 16}
	if err := n.ConnectDuplex(a.ID(), b.ID(), cfg); err != nil {
		t.Fatalf("connect: %v", err)
	}
	if err := n.SetAdjacencyMode(AdjacencySparse); err == nil {
		t.Fatal("mode switch accepted after links were added")
	}
	if n.AdjacencyMode() != AdjacencyDense {
		t.Fatalf("mode changed despite error: %v", n.AdjacencyMode())
	}
}

// TestCarvingPastReservation is the stale-sizeHint regression test: rows for
// nodes added after the Reserve budget is exhausted must still come out
// full-width and slab-carved. The historical carve helpers sized rows at
// n.sizeHint unconditionally and bailed out to one heap allocation per row
// the moment a node ID exceeded the stale hint, so each caller had to
// compensate individually; the alloc pin below fails on that code. The
// link/route sweep guards the sharper edge of the same bug: a row narrower
// than the final node count silently missing links or routes for high IDs.
func TestCarvingPastReservation(t *testing.T) {
	const reserve, final = 4, 96
	cfg := LinkConfig{BandwidthBps: 1e9, Delay: sim.Millisecond, QueueLen: 16}

	for _, mode := range []AdjacencyMode{AdjacencySparse, AdjacencyDense} {
		n := New(sim.NewScheduler(), sim.NewRNG(1))
		if err := n.SetAdjacencyMode(mode); err != nil {
			t.Fatalf("set mode: %v", err)
		}
		n.Reserve(reserve)
		rs := make([]*Router, 0, final)
		for i := 0; i < reserve; i++ {
			rs = append(rs, n.AddRouter("r"))
		}
		// Carve rows at the reserved width before the budget is exhausted.
		for i := 0; i+1 < reserve; i++ {
			if err := n.ConnectDuplex(rs[i].ID(), rs[i+1].ID(), cfg); err != nil {
				t.Fatalf("%v reserved connect: %v", mode, err)
			}
		}
		rs[0].SetRoute(rs[2].ID(), rs[1].ID())

		// Exhaust the budget, then wire and route the over-budget routers.
		for i := reserve; i < final; i++ {
			rs = append(rs, n.AddRouter("r"))
		}
		// Wiring past the budget is not idempotent, so AllocsPerRun (which
		// re-runs its body as a warm-up) cannot measure it; count mallocs
		// around the single pass instead.
		var before, after runtime.MemStats
		runtime.GC()
		runtime.ReadMemStats(&before)
		for i := reserve - 1; i+1 < final; i++ {
			if err := n.ConnectDuplex(rs[i].ID(), rs[i+1].ID(), cfg); err != nil {
				t.Fatalf("%v over-budget connect: %v", mode, err)
			}
		}
		for i := reserve; i < final; i++ {
			rs[0].SetRoute(rs[i].ID(), rs[1].ID())
		}
		runtime.ReadMemStats(&after)
		allocs := after.Mallocs - before.Mallocs
		// Rows past the reservation must keep amortizing through the slabs:
		// the historical helpers allocated one row per over-budget node here
		// (~180 allocations in dense mode for this sweep).
		if allocs > 32 {
			t.Errorf("%v: over-budget wiring cost %d allocations; rows are not slab-carved", mode, allocs)
		}
		for i := 0; i+1 < final; i++ {
			if n.LinkBetween(rs[i].ID(), rs[i+1].ID()) == nil {
				t.Fatalf("%v: link %d->%d missing after over-budget growth", mode, i, i+1)
			}
			if n.LinkBetween(rs[i+1].ID(), rs[i].ID()) == nil {
				t.Fatalf("%v: link %d->%d missing after over-budget growth", mode, i+1, i)
			}
		}
		for i := reserve; i < final; i++ {
			if got := rs[0].Route(rs[i].ID()); got != rs[1].ID() {
				t.Fatalf("%v: route to over-budget router %d = %v, want %v", mode, i, got, rs[1].ID())
			}
		}
		if got := rs[0].Route(rs[2].ID()); got != rs[1].ID() {
			t.Fatalf("%v: pre-growth route lost: %v", mode, got)
		}
	}
}

// TestSparseLookupZeroAlloc pins that the per-hop adjacency lookups never
// allocate in sparse mode: LinkBetween and a buffer-reusing AppendNeighbors
// both run on the forwarding path.
func TestSparseLookupZeroAlloc(t *testing.T) {
	n, rs := buildAdjNet(t, AdjacencySparse, 24, 24)
	buf := make([]NodeID, 0, 8)
	allocs := testing.AllocsPerRun(100, func() {
		for i := range rs {
			if n.LinkBetween(rs[i].ID(), rs[(i+1)%len(rs)].ID()) == nil {
				t.Fatal("ring link missing")
			}
			buf = n.AppendNeighbors(buf[:0], rs[i].ID())
			if len(buf) < 2 {
				t.Fatal("ring router has fewer than 2 neighbours")
			}
		}
	})
	if allocs != 0 {
		t.Fatalf("sparse per-hop lookups allocated %.1f times per run, want 0", allocs)
	}
}
