package netsim

import "unsafe"

// Demand-driven two-level routing.
//
// Historically every router carried a dense next-hop row covering every node
// in the domain, installed eagerly at build time: O(routers × nodes) entries,
// of which a DDoS-style workload ever touches a vanishing fraction (traffic
// converges on a handful of victims, ACKs and probes fan back to the edge).
// The network now keeps forwarding state as per-destination next-hop
// *columns*, materialized lazily the first time a destination is routed to:
//
//   - Level 1 (aggregation): a single-homed host shares the column of its
//     attachment router — the column is computed once for the router and the
//     host's slot simply aliases it. Delivery at the attachment router uses
//     the direct host link, so no per-host state is ever needed. Multi-homed
//     hosts (and routers themselves) get a dedicated column, which keeps
//     their paths bit-identical to a per-node shortest-path computation.
//   - Level 2 (demand): a column is produced by the installed RouteResolver
//     (one reverse BFS in the topology arena) only when its destination first
//     appears in live traffic, then memoized for the lifetime of the network.
//
// Routers still honour next hops installed explicitly via Router.SetRoute
// (hand-built networks, the eager install path); the column lookup is the
// fallback when no static entry exists.
type RouteResolver interface {
	// NextHopColumn returns the next-hop column for dest: a dense
	// NodeID-indexed table where column[at] is the next hop from node at
	// toward dest, or NoNode where dest is unreachable. The network
	// memoizes the returned slice until its routes are invalidated, so the
	// resolver must hand over ownership (no later mutation).
	NextHopColumn(dest NodeID) []NodeID
}

// SetRouteResolver installs the demand-driven column resolver and drops any
// previously materialized columns. Topology builders call it once the domain
// graph is final.
func (n *Network) SetRouteResolver(r RouteResolver) {
	n.resolver = r
	n.invalidateRouteColumns()
}

// invalidateRouteColumns forgets every memoized column. Adding a link after
// columns have materialized invalidates them (shortest paths may change), so
// Connect calls this; on the usual build-then-run lifecycle it never fires
// with materialized state.
func (n *Network) invalidateRouteColumns() {
	if n.colsMaterialized == 0 {
		return
	}
	for i := range n.routeCols {
		n.routeCols[i] = nil
	}
	n.colsMaterialized = 0
	n.colEntries = 0
}

// NextHop returns the next hop from node at toward dest according to the
// demand-driven column table, materializing the column on first use. NoNode
// means no route (no resolver installed, unknown destination, or dest
// unreachable from at).
func (n *Network) NextHop(at, dest NodeID) NodeID {
	if at < 0 || dest < 0 {
		return NoNode
	}
	if int(dest) < len(n.routeCols) {
		if col := n.routeCols[dest]; col != nil {
			if int(at) < len(col) {
				return col[at]
			}
			return NoNode
		}
	}
	col := n.materializeColumn(dest)
	if col == nil || int(at) >= len(col) {
		return NoNode
	}
	return col[at]
}

// materializeColumn resolves and memoizes the column serving dest: the
// aggregate's column is computed (or found already materialized) and dest's
// slot set to alias it, so later lookups are a single indexed load.
func (n *Network) materializeColumn(dest NodeID) []NodeID {
	if n.resolver == nil || !n.nodeExists(dest) {
		return nil
	}
	agg := n.aggregateOf(dest)
	n.growRouteCols(agg)
	col := n.routeCols[agg]
	if col == nil {
		col = n.resolver.NextHopColumn(agg)
		if col == nil {
			return nil
		}
		n.routeCols[agg] = col
		n.colsMaterialized++
		n.colEntries += len(col)
	}
	n.growRouteCols(dest)
	n.routeCols[dest] = col
	return col
}

// growRouteCols extends the column table to cover id. Reserved networks size
// it once up front (see Reserve).
func (n *Network) growRouteCols(id NodeID) {
	want := int(id) + 1
	if nc := len(n.nodes); nc > want {
		want = nc
	}
	for len(n.routeCols) < want {
		n.routeCols = append(n.routeCols, nil)
	}
}

// aggregateOf maps a destination to the node whose column serves it: routers
// route by their own column, a single-homed host aggregates to its attachment
// router, and a multi-homed host keeps a dedicated column so shortest-path
// tie-breaking among its homes matches a per-node computation exactly.
func (n *Network) aggregateOf(dest NodeID) NodeID {
	if n.nodes[dest].router != nil {
		return dest
	}
	agg := NoNode
	if n.adjMode == AdjacencySparse {
		if int(dest) < len(n.sparse) {
			row := n.sparse[dest]
			if len(row) > 1 {
				return dest // multi-homed: own column
			}
			if len(row) == 1 {
				agg = row[0].to
			}
		}
	} else if int(dest) < len(n.adj) {
		for to, l := range n.adj[dest] {
			if l == nil {
				continue
			}
			if agg != NoNode {
				return dest // multi-homed: own column
			}
			agg = NodeID(to)
		}
	}
	if agg == NoNode || n.nodes[agg].router == nil {
		return dest
	}
	return agg
}

// RouteColumns reports how many distinct next-hop columns have been
// materialized on demand (aliased host slots are not counted).
func (n *Network) RouteColumns() int { return n.colsMaterialized }

// TopoVersion identifies the current state of the node/link graph; it
// changes whenever a node is added or a link connected. Resolvers that
// snapshot the graph compare it on each column request so a mutation after
// the snapshot (which also invalidates the memoized columns) triggers a
// re-snapshot instead of serving stale shortest paths.
func (n *Network) TopoVersion() uint64 { return n.topoVersion }

// RouteStats reports the resident routing state: the total number of
// next-hop entries held live (materialized demand-driven columns plus any
// per-router static tables) and the bytes they occupy. Under eager routing
// this is O(routers × nodes); under demand-driven routing it is
// O(active destinations × nodes).
func (n *Network) RouteStats() (entries int, bytes int64) {
	entries = n.colEntries
	for _, r := range n.routers {
		entries += len(r.routes)
	}
	return entries, int64(entries) * int64(unsafe.Sizeof(NoNode))
}
