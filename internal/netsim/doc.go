// Package netsim models the packet-level network substrate the MAFIC
// evaluation runs on: addresses, packets, simplex links with drop-tail
// queues, routers with attachable per-packet filters (the role NS-2
// Connectors play in the original paper), and end hosts.
//
// # Packet ownership and pooling
//
// Packets obtained from Network.NewPacket are pooled: the network recycles
// them once they reach a terminal point — delivery to a host, a queue or
// filter drop, or an unroutable destination. Ownership transfers to the
// network the moment a packet is handed to Host.Send, Network.SendFrom,
// Router.Inject, Link.Send or a Deliver method; after that the producer must
// not touch it again. Observation hooks (Hooks, Filter.Handle, PacketHandler)
// may read a packet only for the duration of the callback and must not retain
// the pointer — the slot is reused for a future packet as soon as the
// callback returns. Packets built directly with &Packet{} are never pooled
// and remain valid indefinitely; releasing one is a no-op.
//
// # Adjacency representation
//
// The node/link graph answers two per-hop questions on the forwarding fast
// path: LinkBetween (is there a direct link from a to b, and which one) and
// AppendNeighbors (a's neighbours in ascending ID order, the order BFS route
// computation depends on). Two interchangeable representations back them:
//
//   - AdjacencySparse (the default): one sorted row of (neighbour, link)
//     entries per node, carved from a shared slab. LinkBetween is a binary
//     search over the row — simulated degrees are single digits, so the
//     search is two or three probes — and total adjacency state is
//     O(nodes + links). A 50000-router domain's adjacency fits in a few
//     megabytes.
//   - AdjacencyDense: the historical full row per node, NodeID-indexed, so
//     LinkBetween is one bounds-checked load. O(nodes²) pointers: ~20 GB at
//     50000 routers, which is why it is no longer the default. It is kept,
//     behind Network.SetAdjacencyMode and topology.Config.Adjacency, as the
//     ordering-and-result oracle — exactly as sim.BackendHeap and
//     topology.RoutingEager are kept for the scheduler and routing layers.
//
// Both representations iterate neighbours in the same ascending order, so
// BFS tie-breaking — and therefore every simulation result — is bit-identical
// between them; the catalog-wide equivalence tests in internal/experiment
// pin that. The mode must be chosen before the first link is connected: rows
// are not converted in place.
//
// # Reservation and slab carving
//
// Reserve(nodes) sizes the internal spines and slabs for a known domain size
// so construction is O(1) allocations per chunk instead of per node. The
// reservation is a hint, not a cap: nodes added past it stay correct and keep
// carving from the slabs — row widths are validated against the live node
// count (see denseRowWidth), never against the stale hint alone.
//
// # Link and router failure
//
// Links and routers carry runtime up/down state for fault injection
// (Link.SetDown, Network.FailRouter / RestoreRouter). A down link admits no
// packets and kills packets already in flight on it at their arrival instant;
// a crashed router drops everything addressed through it without running its
// filter chain. Every such drop is accounted (Hooks.OnFaultDrop, the
// FaultDropped counters) and the packet is recycled through the pool like any
// other terminal point. Each state flip bumps TopoVersion and invalidates the
// memoized next-hop columns, and AppendNeighbors skips down links and links
// into crashed routers while any fault is active — so demand-driven (lazy)
// routing re-converges around the fault, while eagerly installed static
// tables intentionally do not (packets on the stale path die at the fault,
// making eager mode an oracle only for fault-free runs). With every link and
// router up, none of this exists on the hot path: AppendNeighbors takes the
// historical loop, no RNG is consulted, nothing allocates, and simulations
// are bit-identical to builds without the fault layer.
package netsim
