package netsim

import (
	"fmt"

	"mafic/internal/sim"
)

// PacketHandler receives packets addressed to a host. Traffic agents (TCP
// senders, the victim server) register handlers keyed by the flow label of
// the traffic they expect to receive.
type PacketHandler func(pkt *Packet, now sim.Time)

// maxHostHomes bounds the attachment links recorded inline on a Host. Hosts
// are single-homed except the optionally multi-homed victim (two homes);
// anything past the bound falls back to the adjacency search.
const maxHostHomes = 4

// Host is an end system: a traffic source (client or zombie) or sink (the
// victim server). Hosts attach to exactly one access router.
type Host struct {
	net  *Network
	id   NodeID
	name string
	ips  []IP

	accessRouter NodeID

	// homeRouters/homeLinks record every router holding a direct link *to*
	// this host — the final-hop links forwarding needs — filled by Connect.
	// Keeping them inline on the host makes "is this destination attached
	// to me?" an O(homes) scan of one or two entries instead of a per-hop
	// adjacency search that misses everywhere but the last router.
	// homeCount may exceed maxHostHomes; the surplus entries are not
	// recorded and Network.AttachmentLink falls back to the full search.
	homeRouters [maxHostHomes]NodeID
	homeLinks   [maxHostHomes]*Link
	homeCount   int

	// nHandlers counts the labels registered for this host in the
	// network's shared handler registry; zero lets pure-sink hosts skip
	// the registry lookup entirely on delivery.
	nHandlers int
	// defaultHandler receives packets with no registered label handler.
	defaultHandler PacketHandler

	received uint64
	sent     uint64
}

var _ Deliverable = (*Host)(nil)

// ID reports the host's node identifier.
func (h *Host) ID() NodeID { return h.id }

// Name reports the host's human-readable name.
func (h *Host) Name() string { return h.name }

// Network returns the network the host belongs to.
func (h *Host) Network() *Network { return h.net }

// IPs returns a copy of the addresses owned by the host.
func (h *Host) IPs() []IP { return append([]IP(nil), h.ips...) }

// PrimaryIP returns the host's first address, or zero if it has none.
func (h *Host) PrimaryIP() IP {
	if len(h.ips) == 0 {
		return 0
	}
	return h.ips[0]
}

// Received reports how many packets the host has accepted.
func (h *Host) Received() uint64 { return h.received }

// Sent reports how many packets the host has emitted.
func (h *Host) Sent() uint64 { return h.sent }

// AttachTo records the host's access router. The caller is responsible for
// creating the duplex link separately (topology builders do both).
func (h *Host) AttachTo(router NodeID) { h.accessRouter = router }

// AccessRouter reports the router the host is attached to.
func (h *Host) AccessRouter() NodeID { return h.accessRouter }

// noteHome records a router→host attachment link as it is connected.
func (h *Host) noteHome(router NodeID, l *Link) {
	if h.homeCount < maxHostHomes {
		h.homeRouters[h.homeCount] = router
		h.homeLinks[h.homeCount] = l
	}
	// Count past the bound when overflowing so AttachmentLink knows the
	// inline record is incomplete.
	h.homeCount++
}

// Register installs a handler for packets carrying the given label.
// Handlers live in a network-wide registry keyed by (host, label), so
// registering costs no per-host allocation.
func (h *Host) Register(label FlowLabel, fn PacketHandler) {
	if h.net.handlerFor(h.id, label) == nil {
		h.nHandlers++
	}
	h.net.registerHandler(h.id, label, fn)
}

// Unregister removes the handler for the given label.
func (h *Host) Unregister(label FlowLabel) {
	if h.net.handlerFor(h.id, label) != nil {
		h.nHandlers--
	}
	h.net.unregisterHandler(h.id, label)
}

// SetDefaultHandler installs the handler used when no per-label handler
// matches (the victim server uses this to accept every incoming flow).
func (h *Host) SetDefaultHandler(fn PacketHandler) { h.defaultHandler = fn }

// Deliver accepts a packet addressed to this host. Delivery is the packet's
// terminal point: once the handler returns, the packet is recycled, so
// handlers must not retain it.
func (h *Host) Deliver(pkt *Packet, _ NodeID) {
	now := h.net.Now()
	h.received++
	h.net.noteDeliver(pkt, h, now)
	if fn := h.labelHandler(pkt.Label); fn != nil {
		fn(pkt, now)
	} else if h.defaultHandler != nil {
		h.defaultHandler(pkt, now)
	}
	h.net.FreePacket(pkt)
}

// labelHandler resolves the per-label handler for a received packet, if any.
func (h *Host) labelHandler(label FlowLabel) PacketHandler {
	if h.nHandlers == 0 {
		return nil
	}
	return h.net.handlerFor(h.id, label)
}

// Send emits a packet from this host toward its destination via the host's
// access link. Ownership of the packet transfers to the network.
func (h *Host) Send(pkt *Packet) { h.send(pkt) }

func (h *Host) send(pkt *Packet) {
	h.sent++
	pkt.SentAt = int64(h.net.Now())
	link := h.net.LinkBetween(h.id, h.accessRouter)
	if link == nil {
		h.net.dropUnroutable(pkt, h.id)
		return
	}
	link.Send(pkt)
}

// String renders the host for diagnostics.
func (h *Host) String() string {
	return fmt.Sprintf("host(%s/%d)", h.name, h.id)
}
