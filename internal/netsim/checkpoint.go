package netsim

import (
	"fmt"

	"mafic/internal/sim"
)

// This file is the network's checkpoint surface. A snapshot never serializes
// the graph: the restore path rebuilds the topology deterministically and
// then overlays the dynamic state captured here — per-link transmitter and
// queue occupancy, per-node counters, fault flags, the packet-ID allocator
// and the set of materialized route columns. Fault flags are restored by
// writing the fields directly rather than through SetDown / FailRouter: the
// fault API bumps TopoVersion per flip, and the restore must land on the
// checkpointed version exactly.

// LinkState is the dynamic state of one link.
type LinkState struct {
	NextFree   sim.Time
	Queued     int64
	Down       bool
	Sent       uint64
	Dropped    uint64
	FaultDrops uint64
}

// CheckpointState captures the link's dynamic state.
func (l *Link) CheckpointState() LinkState {
	return LinkState{
		NextFree:   l.nextFree,
		Queued:     int64(l.queued),
		Down:       l.down,
		Sent:       l.sent,
		Dropped:    l.dropped,
		FaultDrops: l.faultDrops,
	}
}

// RestoreState overlays captured dynamic state onto a rebuilt link. The
// caller finishes with Network.RestoreState, which recounts the network-wide
// fault bookkeeping from the restored flags.
func (l *Link) RestoreState(st LinkState) {
	l.nextFree = st.NextFree
	l.queued = int(st.Queued)
	l.down = st.Down
	l.sent = st.Sent
	l.dropped = st.Dropped
	l.faultDrops = st.FaultDrops
}

// RouterState is the dynamic state of one router.
type RouterState struct {
	Down       bool
	Forwarded  uint64
	Dropped    uint64
	FaultDrops uint64
}

// CheckpointState captures the router's dynamic state. The route table and
// filter chain are rebuild-covered.
func (r *Router) CheckpointState() RouterState {
	return RouterState{
		Down:       r.down,
		Forwarded:  r.forwarded,
		Dropped:    r.dropped,
		FaultDrops: r.faultDrops,
	}
}

// RestoreState overlays captured dynamic state onto a rebuilt router.
func (r *Router) RestoreState(st RouterState) {
	r.down = st.Down
	r.forwarded = st.Forwarded
	r.dropped = st.Dropped
	r.faultDrops = st.FaultDrops
}

// HostState is the dynamic state of one host. Addresses, attachment records
// and packet handlers are rebuild-covered.
type HostState struct {
	Received uint64
	Sent     uint64
}

// CheckpointState captures the host's dynamic counters.
func (h *Host) CheckpointState() HostState {
	return HostState{Received: h.received, Sent: h.sent}
}

// RestoreState overlays captured counters onto a rebuilt host.
func (h *Host) RestoreState(st HostState) {
	h.received = st.Received
	h.sent = st.Sent
}

// ForEachLink visits every link in deterministic order — ascending source
// node, then ascending target node — identically across the sparse and dense
// adjacency modes. Checkpoint capture and restore both rely on this order, so
// a snapshot taken under one mode restores under the other.
func (n *Network) ForEachLink(fn func(l *Link)) {
	if n.adjMode == AdjacencySparse {
		for from := range n.sparse {
			row := n.sparse[from]
			for i := range row {
				fn(row[i].link)
			}
		}
		return
	}
	for from := range n.adj {
		row := n.adj[from]
		for to := range row {
			if l := row[to]; l != nil {
				fn(l)
			}
		}
	}
}

// LinkTotal reports the number of links in the network.
func (n *Network) LinkTotal() int { return n.links }

// ForEachNode visits every allocated node in ascending NodeID order; exactly
// one of r and h is non-nil per call.
func (n *Network) ForEachNode(fn func(id NodeID, r *Router, h *Host)) {
	for id := range n.nodes {
		slot := n.nodes[id]
		if slot.router != nil || slot.host != nil {
			fn(NodeID(id), slot.router, slot.host)
		}
	}
}

// NetworkState is the network-level dynamic state. RouteDests lists every
// node whose route-column slot was materialized at capture time (ascending);
// the restore replays the materializations after fault state is in place, so
// the resident routing state — and the RouteStats the final Result reports —
// reproduces exactly.
type NetworkState struct {
	NextPktID   uint64
	TopoVersion uint64
	FaultDrops  uint64
	RouteDests  []NodeID
}

// CheckpointState captures the network-level dynamic state. Per-link and
// per-node state is captured separately via ForEachLink / ForEachNode.
func (n *Network) CheckpointState() NetworkState {
	st := NetworkState{
		NextPktID:   n.nextPktID,
		TopoVersion: n.topoVersion,
		FaultDrops:  n.faultDrops,
	}
	for id := range n.routeCols {
		if n.routeCols[id] != nil {
			st.RouteDests = append(st.RouteDests, NodeID(id))
		}
	}
	return st
}

// RestoreState overlays network-level dynamic state onto a rebuilt network.
// It must run after every link and router has had its own state restored: it
// recounts the down-link/down-router totals from the restored flags, lands
// TopoVersion on the checkpointed value, and then rematerializes the
// captured route columns. Every column currently resident was materialized
// after the last fault flip (a flip invalidates them all), so replaying the
// materializations under the restored fault state reproduces the columns the
// running simulation actually held.
func (n *Network) RestoreState(st NetworkState) error {
	n.nextPktID = st.NextPktID
	n.faultDrops = st.FaultDrops
	n.downLinks, n.downRouters = 0, 0
	n.ForEachLink(func(l *Link) {
		if l.down {
			n.downLinks++
		}
	})
	for _, r := range n.routers {
		if r.down {
			n.downRouters++
		}
	}
	n.topoVersion = st.TopoVersion
	n.invalidateRouteColumns()
	for _, dest := range st.RouteDests {
		if n.materializeColumn(dest) == nil {
			return fmt.Errorf("netsim: restore could not rematerialize route column for node %d", dest)
		}
	}
	return nil
}

// CheckpointTypes lists this package's structs that carry snapshotted state.
// The checkpoint coverage guard reflects over them so a new field cannot ship
// without either joining the snapshot or being exempted explicitly.
var CheckpointTypes = []any{
	Network{},
	Link{},
	Router{},
	Host{},
	Packet{},
}

// PacketState is the serializable form of one in-flight packet (the payload
// of a pending link-arrival event). Only the header and ground-truth fields
// travel: the flow-hash and destination-owner caches are value-deterministic
// and are recomputed or restamped on restore.
type PacketState struct {
	ID        uint64
	Label     FlowLabel
	Kind      int32
	Proto     int32
	Seq       int64
	Size      int64
	SentAt    int64
	Hops      int64
	FlowID    int64
	Malicious bool
}

// CapturePacket describes an in-flight packet.
func CapturePacket(p *Packet) PacketState {
	return PacketState{
		ID:        p.ID,
		Label:     p.Label,
		Kind:      int32(p.Kind),
		Proto:     int32(p.Proto),
		Seq:       p.Seq,
		Size:      int64(p.Size),
		SentAt:    p.SentAt,
		Hops:      int64(p.Hops),
		FlowID:    int64(p.FlowID),
		Malicious: p.Malicious,
	}
}

// RestorePacket materializes an in-flight packet from the network's pool,
// for use as the payload of a re-inserted link-arrival event.
func (n *Network) RestorePacket(st PacketState) *Packet {
	p := n.NewPacket()
	p.ID = st.ID
	p.Label = st.Label
	p.Kind = PacketKind(st.Kind)
	p.Proto = Protocol(st.Proto)
	p.Seq = st.Seq
	p.Size = int(st.Size)
	p.SentAt = st.SentAt
	p.Hops = int(st.Hops)
	p.FlowID = int(st.FlowID)
	p.Malicious = st.Malicious
	p.SetFlowHash(st.Label.Hash())
	return p
}
