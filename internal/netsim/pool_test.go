package netsim

import (
	"testing"

	"mafic/internal/sim"
)

// TestPacketPoolDoubleReleasePanics pins the double-release detector: the
// second release of the same pooled packet must panic instead of corrupting
// an unrelated in-flight packet.
func TestPacketPoolDoubleReleasePanics(t *testing.T) {
	n := New(sim.NewScheduler(), sim.NewRNG(1))
	p := n.NewPacket()
	n.FreePacket(p)

	defer func() {
		if recover() == nil {
			t.Fatal("double release did not panic")
		}
	}()
	n.FreePacket(p)
}

// TestPacketPoolReuse verifies released packets are recycled and handed back
// fully zeroed.
func TestPacketPoolReuse(t *testing.T) {
	n := New(sim.NewScheduler(), sim.NewRNG(1))
	p := n.NewPacket()
	p.ID = 77
	p.Label = FlowLabel{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4}
	p.Malicious = true
	p.Hops = 9
	p.SetFlowHash(12345)
	n.FreePacket(p)

	q := n.NewPacket()
	if q != p {
		t.Fatal("pool did not recycle the released packet")
	}
	if q.ID != 0 || q.Label != (FlowLabel{}) || q.Malicious || q.Hops != 0 {
		t.Fatalf("recycled packet not zeroed: %+v", q)
	}
	if q.FlowHash() != (FlowLabel{}).Hash() {
		t.Fatal("recycled packet kept the previous flow-hash cache")
	}
	// And it is live again: releasing once more must not panic.
	n.FreePacket(q)
}

// TestExternalPacketReleaseIsNoop verifies directly constructed packets pass
// through terminal points without entering the pool.
func TestExternalPacketReleaseIsNoop(t *testing.T) {
	n := New(sim.NewScheduler(), sim.NewRNG(1))
	p := &Packet{ID: 1}
	n.FreePacket(p)
	n.FreePacket(p) // must not panic: the packet was never pooled
	if len(n.pktFree) != 0 {
		t.Fatal("external packet entered the pool")
	}
}

// TestPooledPacketRoundTrip drives a pooled packet through a link, a router
// and a host delivery, and verifies it lands back in the free list exactly
// once.
func TestPooledPacketRoundTrip(t *testing.T) {
	sched := sim.NewScheduler()
	n := New(sched, sim.NewRNG(1))
	r := n.AddRouter("core")
	src := n.AddHost("src", IP(0x0a000001))
	dst := n.AddHost("dst", IP(0x0a000002))
	src.AttachTo(r.ID())
	dst.AttachTo(r.ID())
	cfg := LinkConfig{BandwidthBps: 1e9, Delay: sim.Millisecond}
	if err := n.ConnectDuplex(src.ID(), r.ID(), cfg); err != nil {
		t.Fatal(err)
	}
	if err := n.ConnectDuplex(r.ID(), dst.ID(), cfg); err != nil {
		t.Fatal(err)
	}

	delivered := 0
	dst.SetDefaultHandler(func(pkt *Packet, _ sim.Time) {
		delivered++
		if pkt.freed {
			t.Fatal("handler saw an already-released packet")
		}
	})

	pkt := n.NewPacket()
	// The pool refills in chunks; what matters is that delivery returns
	// exactly this packet to the free list on top of whatever the chunk
	// refill left there.
	baseline := len(n.pktFree)
	pkt.ID = n.NextPacketID()
	pkt.Label = FlowLabel{SrcIP: src.PrimaryIP(), DstIP: dst.PrimaryIP(), SrcPort: 1000, DstPort: 80}
	pkt.Kind = KindData
	pkt.Size = 1000
	src.Send(pkt)

	if err := sched.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if delivered != 1 {
		t.Fatalf("delivered %d packets, want 1", delivered)
	}
	if len(n.pktFree) != baseline+1 {
		t.Fatalf("free list has %d packets after delivery, want %d", len(n.pktFree), baseline+1)
	}
	if got := n.NewPacket(); got != pkt {
		t.Fatal("delivered packet was not recycled for the next allocation")
	}
}

// TestFlowLabelHashMatchesFNV pins the inlined FNV-1a loop to the reference
// implementation's constants via known values.
func TestFlowLabelHashMatchesFNV(t *testing.T) {
	// Reference digests computed with hash/fnv over the label's 12-byte
	// big-endian encoding prior to the inlining.
	cases := []struct {
		label FlowLabel
		want  uint64
	}{
		{FlowLabel{}, 0x5467b0da1d106495},
		{FlowLabel{SrcIP: 0x0a000001, DstIP: 0x0a000002, SrcPort: 1000, DstPort: 80}, 0xdd77cb4bdcaa4c2b},
	}
	for _, c := range cases {
		if got := c.label.Hash(); got != c.want {
			t.Fatalf("Hash(%v) = %#x, want %#x", c.label, got, c.want)
		}
	}
}
