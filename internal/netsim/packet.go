package netsim

import (
	"fmt"
	"strconv"
)

// IP is an IPv4-style 32-bit address. The simulator does not parse dotted
// quads; topology builders allocate addresses from synthetic prefixes.
type IP uint32

// String renders the address in dotted-quad form for logs and debugging.
func (ip IP) String() string {
	return strconv.Itoa(int(ip>>24&0xff)) + "." + strconv.Itoa(int(ip>>16&0xff)) + "." +
		strconv.Itoa(int(ip>>8&0xff)) + "." + strconv.Itoa(int(ip&0xff))
}

// FlowLabel is the 4-tuple {source IP, destination IP, source port,
// destination port} the paper uses to mark each flow (Section III-B). Two
// flows from the same (possibly spoofed) sender still get distinct labels if
// their ports differ.
type FlowLabel struct {
	SrcIP   IP
	DstIP   IP
	SrcPort uint16
	DstPort uint16
}

// FNV-1a parameters (matching hash/fnv's 64-bit variant).
const (
	fnvOffset64 = 0xcbf29ce484222325
	fnvPrime64  = 0x100000001b3
)

// Hash returns a 64-bit FNV-1a hash of the label. Flow tables store only this
// hash rather than the label itself to bound their storage overhead, exactly
// as described in the paper. The loop is inlined byte-for-byte compatible
// with hash/fnv over the label's 12-byte big-endian encoding, but performs no
// allocation.
func (l FlowLabel) Hash() uint64 {
	h := uint64(fnvOffset64)
	h = (h ^ uint64(l.SrcIP>>24&0xff)) * fnvPrime64
	h = (h ^ uint64(l.SrcIP>>16&0xff)) * fnvPrime64
	h = (h ^ uint64(l.SrcIP>>8&0xff)) * fnvPrime64
	h = (h ^ uint64(l.SrcIP&0xff)) * fnvPrime64
	h = (h ^ uint64(l.DstIP>>24&0xff)) * fnvPrime64
	h = (h ^ uint64(l.DstIP>>16&0xff)) * fnvPrime64
	h = (h ^ uint64(l.DstIP>>8&0xff)) * fnvPrime64
	h = (h ^ uint64(l.DstIP&0xff)) * fnvPrime64
	h = (h ^ uint64(l.SrcPort>>8)) * fnvPrime64
	h = (h ^ uint64(l.SrcPort&0xff)) * fnvPrime64
	h = (h ^ uint64(l.DstPort>>8)) * fnvPrime64
	h = (h ^ uint64(l.DstPort&0xff)) * fnvPrime64
	return h
}

// Reverse returns the label of the reverse direction of the conversation,
// used to route ACKs and probe packets back toward a flow's claimed source.
func (l FlowLabel) Reverse() FlowLabel {
	return FlowLabel{SrcIP: l.DstIP, DstIP: l.SrcIP, SrcPort: l.DstPort, DstPort: l.SrcPort}
}

// String renders the label as "src:port->dst:port".
func (l FlowLabel) String() string {
	return fmt.Sprintf("%s:%d->%s:%d", l.SrcIP, l.SrcPort, l.DstIP, l.DstPort)
}

// PacketKind distinguishes the packet types the simulation forwards.
type PacketKind int

// Packet kinds. Data carries flow payload toward the victim; Ack and DupAck
// travel in the reverse direction; Probe is the duplicated-ACK probe MAFIC
// injects at an ATR; Control carries pushback signalling between routers.
const (
	KindData PacketKind = iota + 1
	KindAck
	KindDupAck
	KindProbe
	KindControl
)

// String implements fmt.Stringer for readable traces.
func (k PacketKind) String() string {
	switch k {
	case KindData:
		return "data"
	case KindAck:
		return "ack"
	case KindDupAck:
		return "dupack"
	case KindProbe:
		return "probe"
	case KindControl:
		return "control"
	default:
		return "unknown(" + strconv.Itoa(int(k)) + ")"
	}
}

// Protocol identifies the transport behaviour of the flow that emitted a
// packet. MAFIC itself never trusts this field; it is carried for workload
// accounting and so receivers know whether to generate ACKs.
type Protocol int

// Supported protocols.
const (
	ProtoTCP Protocol = iota + 1
	ProtoUDP
)

// String implements fmt.Stringer.
func (p Protocol) String() string {
	switch p {
	case ProtoTCP:
		return "tcp"
	case ProtoUDP:
		return "udp"
	default:
		return "proto(" + strconv.Itoa(int(p)) + ")"
	}
}

// Packet is the unit of forwarding. Ground-truth fields (FlowID, Malicious)
// exist only for measurement; no defence component reads them when making
// decisions.
type Packet struct {
	// ID is unique per packet within a simulation and doubles as the
	// distinct-element identity the LogLog counters sketch.
	ID uint64
	// Label is the flow 4-tuple carried in the header.
	Label FlowLabel
	// Kind is the packet type.
	Kind PacketKind
	// Proto is the transport protocol of the emitting flow.
	Proto Protocol
	// Seq is the transport sequence number (data) or the acknowledged
	// sequence number (ACK/dup-ACK/probe).
	Seq int64
	// Size is the wire size in bytes used for serialisation delay.
	Size int
	// SentAt is the virtual time the packet left its source, used to
	// derive RTT samples.
	SentAt int64
	// Hops counts how many routers have forwarded the packet so far. A
	// router-attached counter sees Hops == 0 exactly when it is the
	// packet's ingress router.
	Hops int

	// FlowID is the ground-truth identifier of the generating flow.
	FlowID int
	// Malicious is the ground-truth attack marker used only by metrics.
	Malicious bool

	// flowHash caches Label.Hash(); hashOK marks it valid. Traffic sources
	// stamp the hash once per flow via SetFlowHash so the per-packet
	// classification path never rehashes.
	flowHash uint64
	hashOK   bool
	// dstNode caches the owner of Label.DstIP so multi-hop forwarding
	// resolves the destination once per packet rather than once per hop.
	dstNode   NodeID
	dstNodeOK bool
	// pooled marks packets obtained from a network's pool; freed flags a
	// pooled packet currently sitting in the free list (double-release
	// detection).
	pooled bool
	freed  bool
}

// FlowHash returns Label.Hash(), computing it at most once per packet.
// Sources that know the flow label ahead of time should stamp the hash with
// SetFlowHash instead, making this a plain field read.
func (p *Packet) FlowHash() uint64 {
	if !p.hashOK {
		p.flowHash = p.Label.Hash()
		p.hashOK = true
	}
	return p.flowHash
}

// SetFlowHash stores a precomputed Label.Hash() value, sparing every
// downstream consumer the recomputation. The caller is responsible for the
// hash actually matching the label.
func (p *Packet) SetFlowHash(h uint64) {
	p.flowHash = h
	p.hashOK = true
}

// DestOwner resolves the node owning the packet's destination address,
// caching the answer on the packet so multi-hop forwarding and per-router
// measurement resolve it once per packet instead of once per hop.
func (p *Packet) DestOwner(n *Network) NodeID {
	if !p.dstNodeOK {
		p.dstNode = n.Owner(p.Label.DstIP)
		p.dstNodeOK = true
	}
	return p.dstNode
}

// NodeID identifies a node (router or host) in the simulated domain.
type NodeID int

// NoNode is the sentinel for "no such node".
const NoNode NodeID = -1

// Deliverable is implemented by anything that can accept a packet at a point
// in virtual time: hosts, routers, and links all satisfy it.
type Deliverable interface {
	// Deliver hands the packet to the component. from identifies the
	// upstream node for routers that care about ingress interfaces.
	Deliver(pkt *Packet, from NodeID)
}
