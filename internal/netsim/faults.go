package netsim

import (
	"fmt"

	"mafic/internal/sim"
)

// Runtime link/router fault state.
//
// Links and routers can be taken down and restored mid-run (Link.SetDown,
// Network.FailRouter / Network.RestoreRouter). The rules are:
//
//   - A down link accepts no packets: Link.Send drops and accounts them, and
//     packets already in flight on the link when it goes down are dropped on
//     arrival — recycled through the pool like every other terminal point,
//     never leaked.
//   - A down router forwards nothing: packets arriving at it (and packets it
//     would inject itself) are dropped and accounted. Its filter chain does
//     not run — a dead router neither measures nor defends.
//   - Every fault-state change bumps TopoVersion and invalidates the
//     memoized next-hop columns, so the demand-driven route resolver
//     re-snapshots the graph and shortest paths re-converge around the
//     fault. AppendNeighbors skips down links and links into down routers
//     while any fault is active, which is what the resolver's BFS sees.
//     Static tables installed eagerly (Router.SetRoute, topology
//     RoutingEager) are not recomputed: under eager routing packets keep
//     following the stale path and die at the fault.
//
// With no fault active none of this costs anything on the hot path beyond a
// handful of predictable branches: AppendNeighbors takes its historical loop,
// no RNG is consulted, and no allocation happens — simulations with all fault
// state untouched are bit-identical to builds without this layer (the no-fault
// allocation pin and the golden catalog hold this).

// SetDown changes the link's up/down state. Taking a link down (or bringing
// it back) changes shortest paths, so the network's memoized route columns
// are invalidated and TopoVersion is bumped; setting the current state again
// is a no-op. Note that each direction of a duplex pair is its own simplex
// link: route re-convergence treats a down link as unusable in its forward
// direction only, so callers modelling a cable cut should take both
// directions down together (the experiment layer's fault scheduler does).
func (l *Link) SetDown(down bool) {
	if l.down == down {
		return
	}
	l.down = down
	if down {
		l.net.downLinks++
	} else {
		l.net.downLinks--
	}
	l.net.noteFaultStateChange()
}

// Down reports whether the link is currently down.
func (l *Link) Down() bool { return l.down }

// FaultDropped reports how many packets this link dropped because it was
// down (at admission or in flight).
func (l *Link) FaultDropped() uint64 { return l.faultDrops }

// FailRouter marks a router as crashed: it stops forwarding, measuring and
// injecting until restored. Failing an already-down router is a no-op; the
// id must name a router of the network.
func (n *Network) FailRouter(id NodeID) error {
	r := n.routers[id]
	if r == nil {
		return fmt.Errorf("fail router %d: %w", id, ErrUnknownNode)
	}
	if r.down {
		return nil
	}
	r.down = true
	n.downRouters++
	n.noteFaultStateChange()
	return nil
}

// RestoreRouter brings a crashed router back. Restoring a live router is a
// no-op; the id must name a router of the network.
func (n *Network) RestoreRouter(id NodeID) error {
	r := n.routers[id]
	if r == nil {
		return fmt.Errorf("restore router %d: %w", id, ErrUnknownNode)
	}
	if !r.down {
		return nil
	}
	r.down = false
	n.downRouters--
	n.noteFaultStateChange()
	return nil
}

// RouterDown reports whether the given node is a currently-failed router.
func (n *Network) RouterDown(id NodeID) bool {
	r := n.routers[id]
	return r != nil && r.down
}

// FaultDropped reports how many packets the network dropped on down links
// and down routers.
func (n *Network) FaultDropped() uint64 { return n.faultDrops }

// faultsActive reports whether any link or router is currently down, i.e.
// whether adjacency iteration must take the fault-aware path.
func (n *Network) faultsActive() bool {
	return n.downLinks > 0 || n.downRouters > 0
}

// noteFaultStateChange records a link/router state flip: memoized next-hop
// columns are stale (shortest paths changed) and TopoVersion moves so
// snapshotting resolvers re-read the graph.
func (n *Network) noteFaultStateChange() {
	n.invalidateRouteColumns()
	n.topoVersion++
}

// noteFaultDrop accounts one packet dropped by a down link or router and
// reports it through the OnFaultDrop hook. The caller recycles the packet.
func (n *Network) noteFaultDrop(pkt *Packet, at NodeID, now sim.Time) {
	n.faultDrops++
	if n.hooks.OnFaultDrop != nil {
		n.hooks.OnFaultDrop(pkt, at, now)
	}
}

// appendLiveNeighbors is the fault-aware AppendNeighbors loop: it skips down
// links and links whose target is a down router (and yields nothing for a
// down router itself), preserving the ascending order the BFS tie-breaking
// depends on. Split from the fast path so fault-free simulations never pay
// the per-entry checks.
func (n *Network) appendLiveNeighbors(dst []NodeID, id NodeID) []NodeID {
	if n.RouterDown(id) {
		return dst
	}
	if n.adjMode == AdjacencySparse {
		if id < 0 || int(id) >= len(n.sparse) {
			return dst
		}
		for _, e := range n.sparse[id] {
			if e.link.down || n.RouterDown(e.to) {
				continue
			}
			dst = append(dst, e.to)
		}
		return dst
	}
	if id < 0 || int(id) >= len(n.adj) {
		return dst
	}
	for to, l := range n.adj[id] {
		if l == nil || l.down || n.RouterDown(NodeID(to)) {
			continue
		}
		dst = append(dst, NodeID(to))
	}
	return dst
}
