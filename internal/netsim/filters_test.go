package netsim

import (
	"fmt"
	"testing"

	"mafic/internal/sim"
)

type nopFilter struct{ name string }

func (f nopFilter) Name() string                             { return f.name }
func (f nopFilter) Handle(*Packet, sim.Time, *Router) Action { return ActionForward }

// TestAttachManyFilters guards the slab-carved filter chains: attaching more
// filters than one slab chunk holds must keep working (an early version
// panicked once a single chain outgrew the chunk), and the chain must keep
// its attachment order.
func TestAttachManyFilters(t *testing.T) {
	net := New(sim.NewScheduler(), sim.NewRNG(1))
	r := net.AddRouter("r")
	const n = 200
	for i := 0; i < n; i++ {
		r.AttachFilter(nopFilter{name: fmt.Sprintf("f%d", i)})
	}
	fs := r.Filters()
	if len(fs) != n {
		t.Fatalf("attached %d filters, chain has %d", n, len(fs))
	}
	for i, f := range fs {
		if f.Name() != fmt.Sprintf("f%d", i) {
			t.Fatalf("filter %d is %q, order lost", i, f.Name())
		}
	}
	if !r.DetachFilter("f7") || r.DetachFilter("f7") {
		t.Fatal("detach of existing filter failed or double-detached")
	}
	if len(r.Filters()) != n-1 {
		t.Fatalf("detach left %d filters", len(r.Filters()))
	}
}
