package netsim

import (
	"testing"

	"mafic/internal/sim"
)

// countingResolver returns a fixed next hop for every node and counts how
// many columns it was asked to produce.
type countingResolver struct {
	net   *Network
	calls int
}

func (cr *countingResolver) NextHopColumn(dest NodeID) []NodeID {
	cr.calls++
	col := make([]NodeID, len(cr.net.nodes))
	for i := range col {
		col[i] = dest // every node hops straight toward dest
	}
	return col
}

// chainNet builds r0 - r1 - host with duplex links and no static routes.
func chainNet(t *testing.T) (*Network, *Router, *Router, *Host) {
	t.Helper()
	net := New(sim.NewScheduler(), sim.NewRNG(1))
	r0 := net.AddRouter("r0")
	r1 := net.AddRouter("r1")
	h := net.AddHost("h", IP(0x0a000001))
	h.AttachTo(r1.ID())
	cfg := LinkConfig{BandwidthBps: 1e9, Delay: sim.Millisecond, QueueLen: 8}
	if err := net.ConnectDuplex(r0.ID(), r1.ID(), cfg); err != nil {
		t.Fatal(err)
	}
	if err := net.ConnectDuplex(r1.ID(), h.ID(), cfg); err != nil {
		t.Fatal(err)
	}
	return net, r0, r1, h
}

// TestNextHopMaterializesOnceAndAliasesHosts pins the demand-driven core: a
// host lookup and its attachment-router lookup share one resolver call, and
// repeated lookups hit the memo.
func TestNextHopMaterializesOnceAndAliasesHosts(t *testing.T) {
	net, r0, r1, h := chainNet(t)
	cr := &countingResolver{net: net}
	net.SetRouteResolver(cr)

	if got := net.NextHop(r0.ID(), h.ID()); got != r1.ID() {
		t.Fatalf("NextHop(r0, h) = %d, want %d", got, r1.ID())
	}
	if got := net.NextHop(r0.ID(), r1.ID()); got != r1.ID() {
		t.Fatalf("NextHop(r0, r1) = %d, want %d", got, r1.ID())
	}
	for i := 0; i < 10; i++ {
		net.NextHop(r0.ID(), h.ID())
	}
	if cr.calls != 1 {
		t.Fatalf("resolver ran %d times, want 1 (host aliases its router's column)", cr.calls)
	}
	if net.RouteColumns() != 1 {
		t.Fatalf("RouteColumns = %d, want 1", net.RouteColumns())
	}
	entries, bytes := net.RouteStats()
	if entries != net.NodeCount() || bytes != int64(entries)*8 {
		t.Fatalf("RouteStats = (%d, %d)", entries, bytes)
	}
}

// TestNextHopWithoutResolver verifies the no-resolver fallback: no columns,
// no routes, NoNode.
func TestNextHopWithoutResolver(t *testing.T) {
	net, r0, _, h := chainNet(t)
	if got := net.NextHop(r0.ID(), h.ID()); got != NoNode {
		t.Fatalf("NextHop without resolver = %d, want NoNode", got)
	}
	if got := net.NextHop(NodeID(-1), h.ID()); got != NoNode {
		t.Fatalf("NextHop from invalid node = %d, want NoNode", got)
	}
	if got := net.NextHop(r0.ID(), NodeID(999)); got != NoNode {
		t.Fatalf("NextHop to unknown node = %d, want NoNode", got)
	}
}

// TestConnectInvalidatesColumns pins the safety rule for dynamic graphs:
// adding a link after columns materialized drops the memo so stale shortest
// paths cannot be served.
func TestConnectInvalidatesColumns(t *testing.T) {
	net, r0, _, h := chainNet(t)
	cr := &countingResolver{net: net}
	net.SetRouteResolver(cr)

	net.NextHop(r0.ID(), h.ID())
	if net.RouteColumns() != 1 {
		t.Fatalf("RouteColumns = %d, want 1", net.RouteColumns())
	}
	r2 := net.AddRouter("r2")
	cfg := LinkConfig{BandwidthBps: 1e9, Delay: sim.Millisecond, QueueLen: 8}
	if err := net.ConnectDuplex(r0.ID(), r2.ID(), cfg); err != nil {
		t.Fatal(err)
	}
	if net.RouteColumns() != 0 {
		t.Fatalf("Connect left %d stale columns", net.RouteColumns())
	}
	net.NextHop(r0.ID(), h.ID())
	if cr.calls != 2 {
		t.Fatalf("resolver ran %d times, want 2 (re-materialized after invalidation)", cr.calls)
	}
}

// TestAggregateOfMultiHomedHost verifies a host with two attachment links
// routes by its own column rather than either router's.
func TestAggregateOfMultiHomedHost(t *testing.T) {
	net, r0, r1, h := chainNet(t)
	cfg := LinkConfig{BandwidthBps: 1e9, Delay: sim.Millisecond, QueueLen: 8}
	if err := net.ConnectDuplex(h.ID(), r0.ID(), cfg); err != nil {
		t.Fatal(err)
	}
	cr := &countingResolver{net: net}
	net.SetRouteResolver(cr)

	net.NextHop(r0.ID(), r1.ID())
	net.NextHop(r0.ID(), h.ID())
	if cr.calls != 2 {
		t.Fatalf("resolver ran %d times, want 2 (multi-homed host needs its own column)", cr.calls)
	}
}
