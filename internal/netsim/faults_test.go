package netsim

import (
	"errors"
	"testing"

	"mafic/internal/sim"
)

// faultChainNet builds host src -> router core -> host dst with duplex links and
// returns the pieces fault tests poke at.
func faultChainNet(t *testing.T) (*sim.Scheduler, *Network, *Router, *Host, *Host) {
	t.Helper()
	sched := sim.NewScheduler()
	n := New(sched, sim.NewRNG(1))
	core := n.AddRouter("core")
	src := n.AddHost("src", IP(0x0a000001))
	dst := n.AddHost("dst", IP(0x0a000002))
	src.AttachTo(core.ID())
	dst.AttachTo(core.ID())
	cfg := LinkConfig{BandwidthBps: 1e9, Delay: sim.Millisecond}
	if err := n.ConnectDuplex(src.ID(), core.ID(), cfg); err != nil {
		t.Fatal(err)
	}
	if err := n.ConnectDuplex(core.ID(), dst.ID(), cfg); err != nil {
		t.Fatal(err)
	}
	return sched, n, core, src, dst
}

func newDataPacket(n *Network, src, dst *Host) *Packet {
	pkt := n.NewPacket()
	pkt.ID = n.NextPacketID()
	pkt.Label = FlowLabel{SrcIP: src.PrimaryIP(), DstIP: dst.PrimaryIP(), SrcPort: 1000, DstPort: 80}
	pkt.Kind = KindData
	pkt.Size = 1000
	return pkt
}

func sendDataPacket(n *Network, src, dst *Host) *Packet {
	pkt := newDataPacket(n, src, dst)
	src.Send(pkt)
	return pkt
}

// TestDownLinkDropsAtAdmission verifies a down link admits nothing: the
// packet is dropped, accounted on the link, the network and the OnFaultDrop
// hook, and recycled back to the pool.
func TestDownLinkDropsAtAdmission(t *testing.T) {
	sched, n, core, src, dst := faultChainNet(t)

	delivered := 0
	dst.SetDefaultHandler(func(*Packet, sim.Time) { delivered++ })
	var hookAt NodeID = NoNode
	hookFired := 0
	n.SetHooks(Hooks{OnFaultDrop: func(_ *Packet, at NodeID, _ sim.Time) {
		hookFired++
		hookAt = at
	}})

	out := n.LinkBetween(core.ID(), dst.ID())
	out.SetDown(true)
	if !out.Down() {
		t.Fatal("SetDown(true) did not mark the link down")
	}

	// The pool refills in chunks; take the baseline after allocation so the
	// check is "this packet came back", not "the chunk arrived".
	pkt := newDataPacket(n, src, dst)
	baseline := len(n.pktFree)
	src.Send(pkt)
	if err := sched.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if delivered != 0 {
		t.Fatalf("delivered %d packets over a down link, want 0", delivered)
	}
	if got := out.FaultDropped(); got != 1 {
		t.Fatalf("link fault drops = %d, want 1", got)
	}
	if got := n.FaultDropped(); got != 1 {
		t.Fatalf("network fault drops = %d, want 1", got)
	}
	if hookFired != 1 || hookAt != core.ID() {
		t.Fatalf("OnFaultDrop fired %d times at node %d, want once at %d", hookFired, hookAt, core.ID())
	}
	if len(n.pktFree) != baseline+1 {
		t.Fatalf("free list has %d packets, want %d (fault drop must recycle)", len(n.pktFree), baseline+1)
	}
	if got := n.NewPacket(); got != pkt {
		t.Fatal("fault-dropped packet was not recycled for the next allocation")
	}
}

// TestDownLinkDropsInFlight verifies a packet already propagating on a link
// that goes down mid-flight is dropped at its arrival instant and returned to
// the pool exactly once — not leaked, not delivered.
func TestDownLinkDropsInFlight(t *testing.T) {
	sched, n, core, src, dst := faultChainNet(t)

	delivered := 0
	dst.SetDefaultHandler(func(*Packet, sim.Time) { delivered++ })

	out := n.LinkBetween(core.ID(), dst.ID())
	// The packet needs src->core (1 ms) then core->dst (1 ms); kill the
	// second link while the packet is in flight on it.
	sched.ScheduleAt(1500*sim.Microsecond, func(sim.Time) { out.SetDown(true) })

	pkt := newDataPacket(n, src, dst)
	baseline := len(n.pktFree)
	src.Send(pkt)
	if err := sched.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if delivered != 0 {
		t.Fatalf("delivered %d packets through a mid-flight failure, want 0", delivered)
	}
	if got := out.FaultDropped(); got != 1 {
		t.Fatalf("link fault drops = %d, want 1", got)
	}
	if len(n.pktFree) != baseline+1 {
		t.Fatalf("free list has %d packets, want %d (in-flight drop must recycle exactly once)", len(n.pktFree), baseline+1)
	}
}

// TestFailRouterDropsAndRestoreResumes verifies a crashed router drops
// arriving traffic without running filters, and that restoring it resumes
// normal forwarding.
func TestFailRouterDropsAndRestoreResumes(t *testing.T) {
	sched, n, core, src, dst := faultChainNet(t)

	delivered := 0
	dst.SetDefaultHandler(func(*Packet, sim.Time) { delivered++ })
	filterRan := 0
	core.AttachFilter(filterFunc{name: "tap", fn: func(*Packet, sim.Time, *Router) Action {
		filterRan++
		return ActionForward
	}})

	if err := n.FailRouter(core.ID()); err != nil {
		t.Fatalf("FailRouter: %v", err)
	}
	if !n.RouterDown(core.ID()) || !core.Down() {
		t.Fatal("FailRouter did not mark the router down")
	}
	sendDataPacket(n, src, dst)
	if err := sched.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if delivered != 0 || filterRan != 0 {
		t.Fatalf("crashed router delivered=%d filterRan=%d, want 0/0", delivered, filterRan)
	}
	if got := core.FaultDropped(); got != 1 {
		t.Fatalf("router fault drops = %d, want 1", got)
	}

	if err := n.RestoreRouter(core.ID()); err != nil {
		t.Fatalf("RestoreRouter: %v", err)
	}
	if n.RouterDown(core.ID()) {
		t.Fatal("RestoreRouter did not clear the down state")
	}
	sendDataPacket(n, src, dst)
	if err := sched.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if delivered != 1 || filterRan != 1 {
		t.Fatalf("restored router delivered=%d filterRan=%d, want 1/1", delivered, filterRan)
	}
}

// filterFunc adapts a closure to the Filter interface for tests.
type filterFunc struct {
	name string
	fn   func(*Packet, sim.Time, *Router) Action
}

func (f filterFunc) Name() string { return f.name }
func (f filterFunc) Handle(pkt *Packet, now sim.Time, at *Router) Action {
	return f.fn(pkt, now, at)
}

// TestCrashedRouterInjectsNothing verifies Inject on a down router is a
// terminal point (probes from a dead router die there), with the packet
// recycled.
func TestCrashedRouterInjectsNothing(t *testing.T) {
	_, n, core, _, dst := faultChainNet(t)
	if err := n.FailRouter(core.ID()); err != nil {
		t.Fatal(err)
	}
	pkt := n.NewPacket()
	baseline := len(n.pktFree)
	pkt.Label = FlowLabel{DstIP: dst.PrimaryIP()}
	pkt.Kind = KindProbe
	core.Inject(pkt)
	if got := core.FaultDropped(); got != 1 {
		t.Fatalf("router fault drops = %d, want 1", got)
	}
	if len(n.pktFree) != baseline+1 {
		t.Fatal("injected packet was not recycled by the crashed router")
	}
}

// TestFaultStateBumpsTopoVersion pins the re-convergence contract: every
// effective fault-state change moves TopoVersion (so snapshotting resolvers
// re-read the graph), and redundant changes move nothing.
func TestFaultStateBumpsTopoVersion(t *testing.T) {
	_, n, core, src, dst := faultChainNet(t)
	l := n.LinkBetween(core.ID(), dst.ID())

	v := n.TopoVersion()
	l.SetDown(true)
	if n.TopoVersion() != v+1 {
		t.Fatal("SetDown(true) did not bump TopoVersion")
	}
	l.SetDown(true) // redundant: no-op
	if n.TopoVersion() != v+1 {
		t.Fatal("redundant SetDown(true) bumped TopoVersion")
	}
	l.SetDown(false)
	if n.TopoVersion() != v+2 {
		t.Fatal("SetDown(false) did not bump TopoVersion")
	}

	if err := n.FailRouter(core.ID()); err != nil {
		t.Fatal(err)
	}
	if n.TopoVersion() != v+3 {
		t.Fatal("FailRouter did not bump TopoVersion")
	}
	if err := n.FailRouter(core.ID()); err != nil { // idempotent
		t.Fatal(err)
	}
	if n.TopoVersion() != v+3 {
		t.Fatal("redundant FailRouter bumped TopoVersion")
	}
	if err := n.RestoreRouter(core.ID()); err != nil {
		t.Fatal(err)
	}
	if n.TopoVersion() != v+4 {
		t.Fatal("RestoreRouter did not bump TopoVersion")
	}
	if n.faultsActive() {
		t.Fatal("fault bookkeeping nonzero after all faults cleared")
	}

	// Unknown IDs and non-router nodes are rejected.
	if err := n.FailRouter(src.ID()); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("FailRouter(host) = %v, want ErrUnknownNode", err)
	}
	if err := n.RestoreRouter(NodeID(9999)); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("RestoreRouter(unknown) = %v, want ErrUnknownNode", err)
	}
	_ = dst
}

// bfsResolver is a minimal demand-driven column resolver: one BFS from the
// destination over AppendNeighbors per request. Because it recomputes on
// every call (the network memoizes), it sees exactly what AppendNeighbors
// exposes — which is what makes it a fault re-convergence probe.
type bfsResolver struct{ net *Network }

func (r *bfsResolver) NextHopColumn(dest NodeID) []NodeID {
	n := len(r.net.nodes)
	col := make([]NodeID, n)
	visited := make([]bool, n)
	for i := range col {
		col[i] = NoNode
	}
	queue := []NodeID{dest}
	visited[dest] = true
	var nbuf []NodeID
	for len(queue) > 0 {
		u := queue[0]
		queue = queue[1:]
		nbuf = r.net.AppendNeighbors(nbuf[:0], u)
		for _, v := range nbuf {
			if visited[v] {
				continue
			}
			visited[v] = true
			col[v] = u
			queue = append(queue, v)
		}
	}
	return col
}

// TestRoutingReconvergesAroundFaults drives a packet across a diamond
// (src-A, A-B-D, A-C-D, D-dst), fails the preferred B path — first the
// router, then the links — and verifies demand-driven routing re-converges
// onto C instead of blackholing, then returns to B once the fault heals.
func TestRoutingReconvergesAroundFaults(t *testing.T) {
	sched := sim.NewScheduler()
	n := New(sched, sim.NewRNG(1))
	ra := n.AddRouter("A")
	rb := n.AddRouter("B")
	rc := n.AddRouter("C")
	rd := n.AddRouter("D")
	src := n.AddHost("src", IP(0x0a000001))
	dst := n.AddHost("dst", IP(0x0a000002))
	src.AttachTo(ra.ID())
	dst.AttachTo(rd.ID())
	cfg := LinkConfig{BandwidthBps: 1e9, Delay: sim.Millisecond}
	for _, pair := range [][2]NodeID{
		{src.ID(), ra.ID()},
		{ra.ID(), rb.ID()},
		{ra.ID(), rc.ID()},
		{rb.ID(), rd.ID()},
		{rc.ID(), rd.ID()},
		{rd.ID(), dst.ID()},
	} {
		if err := n.ConnectDuplex(pair[0], pair[1], cfg); err != nil {
			t.Fatal(err)
		}
	}
	n.SetRouteResolver(&bfsResolver{net: n})

	delivered := 0
	dst.SetDefaultHandler(func(*Packet, sim.Time) { delivered++ })

	deliverVia := func(wantVia *Router) {
		t.Helper()
		before := wantVia.Forwarded()
		wantDelivered := delivered + 1
		sendDataPacket(n, src, dst)
		if err := sched.Run(); err != nil {
			t.Fatalf("run: %v", err)
		}
		if delivered != wantDelivered {
			t.Fatalf("delivered = %d, want %d", delivered, wantDelivered)
		}
		if wantVia.Forwarded() != before+1 {
			t.Fatalf("packet did not transit %s", wantVia.Name())
		}
	}

	// Healthy: ascending BFS tie-break prefers B (lower ID than C).
	deliverVia(rb)

	// Router B crashes: the next packet must re-converge through C.
	if err := n.FailRouter(rb.ID()); err != nil {
		t.Fatal(err)
	}
	deliverVia(rc)

	// B heals: the preferred path comes back.
	if err := n.RestoreRouter(rb.ID()); err != nil {
		t.Fatal(err)
	}
	deliverVia(rb)

	// Now the A<->B cable is cut (both simplex directions, as the fault
	// scheduler does): C again.
	n.LinkBetween(ra.ID(), rb.ID()).SetDown(true)
	n.LinkBetween(rb.ID(), ra.ID()).SetDown(true)
	deliverVia(rc)

	n.LinkBetween(ra.ID(), rb.ID()).SetDown(false)
	n.LinkBetween(rb.ID(), ra.ID()).SetDown(false)
	deliverVia(rb)
}

// TestConnectDuplexFailureLeavesNoHalfLink is the regression test for the
// duplex error path: a rejected ConnectDuplex must install neither direction
// and must not move TopoVersion.
func TestConnectDuplexFailureLeavesNoHalfLink(t *testing.T) {
	n := New(sim.NewScheduler(), sim.NewRNG(1))
	a := n.AddRouter("a")
	b := n.AddRouter("b")
	cfg := LinkConfig{BandwidthBps: 1e9, Delay: sim.Millisecond}

	// A pre-existing reverse simplex link used to let ConnectDuplex install
	// a->b, fail on b->a, and walk away leaving the half-installed pair.
	if _, err := n.Connect(b.ID(), a.ID(), cfg); err != nil {
		t.Fatal(err)
	}
	v := n.TopoVersion()
	err := n.ConnectDuplex(a.ID(), b.ID(), cfg)
	if !errors.Is(err, ErrDuplicateLink) {
		t.Fatalf("ConnectDuplex over existing reverse link = %v, want ErrDuplicateLink", err)
	}
	if n.LinkBetween(a.ID(), b.ID()) != nil {
		t.Fatal("failed ConnectDuplex left a half-installed forward link")
	}
	if n.TopoVersion() != v {
		t.Fatal("failed ConnectDuplex moved TopoVersion")
	}

	// Unknown endpoints are rejected before anything is installed too.
	err = n.ConnectDuplex(a.ID(), NodeID(9999), cfg)
	if !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("ConnectDuplex to unknown node = %v, want ErrUnknownNode", err)
	}
	if n.TopoVersion() != v {
		t.Fatal("rejected ConnectDuplex moved TopoVersion")
	}
}

// TestNoFaultPacketPathZeroAlloc pins the fault layer's cost when disabled:
// the full send->link->router->link->deliver round trip of a pooled packet
// allocates nothing with every link and router up.
func TestNoFaultPacketPathZeroAlloc(t *testing.T) {
	sched, n, _, src, dst := faultChainNet(t)
	dst.SetDefaultHandler(func(*Packet, sim.Time) {})

	roundTrip := func() {
		sendDataPacket(n, src, dst)
		if err := sched.Run(); err != nil {
			t.Fatalf("run: %v", err)
		}
	}
	// Warm the packet pool and the scheduler's event arena.
	for i := 0; i < 3; i++ {
		roundTrip()
	}
	if avg := testing.AllocsPerRun(100, roundTrip); avg != 0 {
		t.Fatalf("no-fault packet path allocates %.1f per round trip, want 0", avg)
	}
}
