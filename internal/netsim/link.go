package netsim

import (
	"fmt"

	"mafic/internal/sim"
)

// LinkConfig describes one simplex link.
type LinkConfig struct {
	// BandwidthBps is the link capacity in bits per second.
	BandwidthBps float64
	// Delay is the one-way propagation delay.
	Delay sim.Time
	// QueueLen is the maximum number of packets that may be queued waiting
	// for transmission (drop-tail). Zero means DefaultQueueLen.
	QueueLen int
}

// DefaultQueueLen is used when a link is configured with a zero queue length.
const DefaultQueueLen = 128

// Link is a unidirectional channel between two nodes with a serialisation
// delay derived from its bandwidth, a fixed propagation delay, and a
// drop-tail queue. It mirrors the SimplexLink abstraction of NS-2 that the
// paper's LogLogCounter objects attach to.
type Link struct {
	net  *Network
	from NodeID
	to   NodeID
	cfg  LinkConfig

	// nextFree is the virtual time at which the transmitter becomes idle.
	nextFree sim.Time
	// queued counts packets accepted but not yet fully transmitted.
	queued int

	// down marks the link failed: it admits nothing and in-flight packets
	// die on arrival. Flipped only through SetDown (see faults.go), which
	// keeps the network's fault bookkeeping and TopoVersion in step.
	down bool

	// Counters for instrumentation.
	sent       uint64
	dropped    uint64
	faultDrops uint64
}

// From reports the upstream node of the link.
func (l *Link) From() NodeID { return l.from }

// To reports the downstream node of the link.
func (l *Link) To() NodeID { return l.to }

// Config returns the link configuration.
func (l *Link) Config() LinkConfig { return l.cfg }

// Sent reports how many packets the link accepted for transmission.
func (l *Link) Sent() uint64 { return l.sent }

// Dropped reports how many packets the drop-tail queue rejected.
func (l *Link) Dropped() uint64 { return l.dropped }

// QueueLen reports the instantaneous number of packets waiting on the link.
func (l *Link) QueueLen() int { return l.queued }

// transmissionTime returns the serialisation delay of a packet of the given
// size on this link.
func (l *Link) transmissionTime(sizeBytes int) sim.Time {
	if l.cfg.BandwidthBps <= 0 {
		return 0
	}
	seconds := float64(sizeBytes*8) / l.cfg.BandwidthBps
	return sim.Time(seconds * float64(sim.Second))
}

// Send enqueues a packet for transmission toward the link's downstream node.
// Packets beyond the queue limit are dropped, reported through the network's
// OnQueueDrop hook, and recycled. Ownership of the packet transfers to the
// link.
func (l *Link) Send(pkt *Packet) {
	now := l.net.Now()
	if l.down {
		l.faultDrops++
		l.net.noteFaultDrop(pkt, l.from, now)
		l.net.FreePacket(pkt)
		return
	}
	if l.queued >= l.cfg.QueueLen {
		l.dropped++
		l.net.noteQueueDrop(pkt, l, now)
		l.net.FreePacket(pkt)
		return
	}
	l.queued++
	l.sent++

	start := now
	if l.nextFree > start {
		start = l.nextFree
	}
	tx := l.transmissionTime(pkt.Size)
	l.nextFree = start + tx

	txDone := l.nextFree
	arrive := txDone + l.cfg.Delay

	// Both events dispatch through the link itself (sim.EventHandler /
	// sim.ArgHandler), so the per-packet forwarding path schedules without
	// allocating closures.
	l.net.scheduler.ScheduleHandlerAt(txDone, l)
	l.net.scheduler.ScheduleArgAt(arrive, l, pkt)
}

// OnEvent implements sim.EventHandler: the transmitter finished serialising
// one packet, freeing a queue slot.
func (l *Link) OnEvent(sim.Time) { l.queued-- }

// OnEventArg implements sim.ArgHandler: the packet carried as arg has
// propagated to the downstream node.
func (l *Link) OnEventArg(now sim.Time, arg any) {
	pkt := arg.(*Packet)
	if l.down {
		// The link died while the packet was in flight: it is dropped and
		// accounted here, not leaked — the pool gets it back like any other
		// terminal point.
		l.faultDrops++
		l.net.noteFaultDrop(pkt, l.to, now)
		l.net.FreePacket(pkt)
		return
	}
	l.net.deliverTo(l.to, pkt, l.from)
}

// String renders the link endpoints for diagnostics.
func (l *Link) String() string {
	return fmt.Sprintf("link(%d->%d)", l.from, l.to)
}
