package netsim

import (
	"fmt"

	"mafic/internal/sim"
)

// Action is a filter's verdict on a packet.
type Action int

// Filter verdicts.
const (
	// ActionForward lets the packet continue toward its destination.
	ActionForward Action = iota + 1
	// ActionDrop discards the packet at this router.
	ActionDrop
)

// Filter is a per-packet hook attached to a router, playing the role the
// NS-2 Connector subclasses play in the paper (the LogLogCounter, the
// proportional dropper, and the MAFIC agent are all filters). Filters run in
// attachment order; the first ActionDrop wins.
type Filter interface {
	// Name identifies the filter in drop accounting.
	Name() string
	// Handle inspects a packet traversing the router and decides its fate.
	Handle(pkt *Packet, now sim.Time, at *Router) Action
}

// Router forwards packets by destination-owner lookup and a static next-hop
// table, invoking its attached filters on every traversing packet.
type Router struct {
	net  *Network
	id   NodeID
	name string

	// routes is the dense next-hop table indexed by destination NodeID;
	// NoNode marks destinations without an installed route. A flat slice
	// replaces the former map: route installation on a 1000-router domain
	// writes millions of entries, and the per-hop lookup is bounds-check
	// plus load.
	routes     []NodeID
	routeCount int

	filters []Filter

	// down marks the router crashed: arriving and self-injected packets are
	// dropped without running the filter chain. Flipped only through
	// Network.FailRouter / RestoreRouter (see faults.go).
	down bool

	forwarded  uint64
	dropped    uint64
	faultDrops uint64
}

var _ Deliverable = (*Router)(nil)

// ID reports the router's node identifier.
func (r *Router) ID() NodeID { return r.id }

// Name reports the router's human-readable name.
func (r *Router) Name() string { return r.name }

// Network returns the network the router belongs to.
func (r *Router) Network() *Network { return r.net }

// Forwarded reports how many packets the router has forwarded.
func (r *Router) Forwarded() uint64 { return r.forwarded }

// FilterDropped reports how many packets the router's filters discarded.
func (r *Router) FilterDropped() uint64 { return r.dropped }

// FaultDropped reports how many packets died at this router while it was
// crashed.
func (r *Router) FaultDropped() uint64 { return r.faultDrops }

// Down reports whether the router is currently crashed.
func (r *Router) Down() bool { return r.down }

// SetRoute installs the next hop used to reach dest.
func (r *Router) SetRoute(dest, nextHop NodeID) {
	if dest < 0 {
		return
	}
	if int(dest) >= len(r.routes) {
		r.growRoutes(int(dest) + 1)
	}
	if r.routes[dest] == NoNode && nextHop != NoNode {
		r.routeCount++
	} else if r.routes[dest] != NoNode && nextHop == NoNode {
		r.routeCount--
	}
	r.routes[dest] = nextHop
}

// growRoutes extends the dense table to at least n entries. The row is
// carved from the shared dense-row slab at a width the network validates
// against its actual node count (see denseRowWidth), so a route sweep over
// the whole domain grows the table once — including on routers added past
// the Reserve budget, which used to fall back to one heap allocation each.
func (r *Router) growRoutes(n int) {
	grown := r.net.carveRouteRow(n) // pre-filled with NoNode
	copy(grown, r.routes)
	r.routes = grown
}

// Route returns the next hop toward dest, or NoNode if none is installed.
func (r *Router) Route(dest NodeID) NodeID {
	if dest < 0 || int(dest) >= len(r.routes) {
		return NoNode
	}
	return r.routes[dest]
}

// RouteCount reports how many destinations the router can reach.
func (r *Router) RouteCount() int { return r.routeCount }

// AttachFilter appends a filter to the router's processing chain. Chain
// storage is carved from a network-level slab: chains are tiny (an arrival
// tap plus at most one defence), so per-router allocations would dominate
// domain construction.
func (r *Router) AttachFilter(f Filter) {
	if f == nil {
		return
	}
	if len(r.filters) == cap(r.filters) {
		r.filters = r.net.growFilters(r.filters)
	}
	r.filters = append(r.filters, f)
}

// DetachFilter removes the first filter with the given name. It reports
// whether a filter was removed.
func (r *Router) DetachFilter(name string) bool {
	for i, f := range r.filters {
		if f.Name() == name {
			r.filters = append(r.filters[:i], r.filters[i+1:]...)
			return true
		}
	}
	return false
}

// Filters returns the attached filters in processing order (do not mutate).
func (r *Router) Filters() []Filter { return r.filters }

// Deliver processes a packet arriving from an upstream node.
func (r *Router) Deliver(pkt *Packet, from NodeID) {
	r.forward(pkt, from)
}

// Inject routes a packet that originates at this router itself, bypassing
// the filter chain exactly once (the router should not drop its own probes).
// A crashed router injects nothing.
func (r *Router) Inject(pkt *Packet) {
	if r.down {
		r.faultDrops++
		r.net.noteFaultDrop(pkt, r.id, r.net.Now())
		r.net.FreePacket(pkt)
		return
	}
	r.route(pkt)
}

// forward runs the filter chain and then routes the packet. A filter drop is
// a terminal point: the packet is reported and recycled. A crashed router is
// terminal too — its filters do not run, so a dead router neither measures
// nor defends.
func (r *Router) forward(pkt *Packet, _ NodeID) {
	now := r.net.Now()
	if r.down {
		r.faultDrops++
		r.net.noteFaultDrop(pkt, r.id, now)
		r.net.FreePacket(pkt)
		return
	}
	for _, f := range r.filters {
		if f.Handle(pkt, now, r) == ActionDrop {
			r.dropped++
			r.net.noteFilterDrop(pkt, r, f.Name(), now)
			r.net.FreePacket(pkt)
			return
		}
	}
	r.forwarded++
	pkt.Hops++
	r.route(pkt)
}

// route picks the outgoing link for the packet's destination and transmits.
func (r *Router) route(pkt *Packet) {
	// Resolve the destination owner once per packet; later hops reuse the
	// cached node instead of repeating the address lookup.
	destNode := pkt.DestOwner(r.net)
	if destNode == NoNode || destNode == r.id {
		// Routers never terminate data traffic in this model.
		r.net.dropUnroutable(pkt, r.id)
		return
	}
	link := r.net.AttachmentLink(r.id, destNode)
	if link == nil {
		// A static entry (SetRoute / eager install) wins; otherwise fall
		// through to the network's demand-driven column table. Under lazy
		// routing the static table is empty, so the first lookup is a
		// single failed bounds check.
		next := r.Route(destNode)
		if next == NoNode {
			next = r.net.NextHop(r.id, destNode)
		}
		if next == NoNode {
			r.net.dropUnroutable(pkt, r.id)
			return
		}
		link = r.net.LinkBetween(r.id, next)
		if link == nil {
			r.net.dropUnroutable(pkt, r.id)
			return
		}
	}
	link.Send(pkt)
}

// String renders the router for diagnostics.
func (r *Router) String() string {
	return fmt.Sprintf("router(%s/%d)", r.name, r.id)
}
