package netsim

import (
	"errors"
	"testing"
	"testing/quick"

	"mafic/internal/sim"
)

// testNet builds a minimal topology: client host -- r1 -- r2 -- server host.
func testNet(t *testing.T) (*Network, *Host, *Router, *Router, *Host) {
	t.Helper()
	sched := sim.NewScheduler()
	n := New(sched, sim.NewRNG(1))
	client := n.AddHost("client", IP(0x0a000001))
	r1 := n.AddRouter("r1")
	r2 := n.AddRouter("r2")
	server := n.AddHost("server", IP(0x0a000002))

	cfg := LinkConfig{BandwidthBps: 10e6, Delay: sim.Millisecond, QueueLen: 16}
	for _, pair := range [][2]NodeID{{client.ID(), r1.ID()}, {r1.ID(), r2.ID()}, {r2.ID(), server.ID()}} {
		if err := n.ConnectDuplex(pair[0], pair[1], cfg); err != nil {
			t.Fatalf("connect: %v", err)
		}
	}
	client.AttachTo(r1.ID())
	server.AttachTo(r2.ID())
	// Static routes.
	r1.SetRoute(server.ID(), r2.ID())
	r2.SetRoute(client.ID(), r1.ID())
	return n, client, r1, r2, server
}

func dataPacket(n *Network, src, dst IP, size int) *Packet {
	return &Packet{
		ID:    n.NextPacketID(),
		Label: FlowLabel{SrcIP: src, DstIP: dst, SrcPort: 1000, DstPort: 80},
		Kind:  KindData,
		Proto: ProtoTCP,
		Size:  size,
	}
}

func TestIPString(t *testing.T) {
	if got := IP(0x0a010203).String(); got != "10.1.2.3" {
		t.Fatalf("IP string = %q, want 10.1.2.3", got)
	}
}

func TestFlowLabelHashStableAndDistinct(t *testing.T) {
	a := FlowLabel{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4}
	b := FlowLabel{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4}
	c := FlowLabel{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 5}
	if a.Hash() != b.Hash() {
		t.Fatal("identical labels hash differently")
	}
	if a.Hash() == c.Hash() {
		t.Fatal("distinct labels collided (extremely unlikely with FNV-64)")
	}
}

func TestFlowLabelHashProperty(t *testing.T) {
	prop := func(srcIP, dstIP uint32, srcPort, dstPort uint16) bool {
		l := FlowLabel{SrcIP: IP(srcIP), DstIP: IP(dstIP), SrcPort: srcPort, DstPort: dstPort}
		// Hash must be deterministic and the reverse label must map back.
		return l.Hash() == l.Hash() && l.Reverse().Reverse() == l
	}
	if err := quick.Check(prop, nil); err != nil {
		t.Fatal(err)
	}
}

func TestFlowLabelReverse(t *testing.T) {
	l := FlowLabel{SrcIP: 1, DstIP: 2, SrcPort: 3, DstPort: 4}
	r := l.Reverse()
	if r.SrcIP != 2 || r.DstIP != 1 || r.SrcPort != 4 || r.DstPort != 3 {
		t.Fatalf("Reverse = %+v", r)
	}
}

func TestPacketKindStrings(t *testing.T) {
	tests := []struct {
		kind PacketKind
		want string
	}{
		{KindData, "data"}, {KindAck, "ack"}, {KindDupAck, "dupack"},
		{KindProbe, "probe"}, {KindControl, "control"}, {PacketKind(99), "unknown(99)"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Fatalf("PacketKind(%d).String() = %q, want %q", tt.kind, got, tt.want)
		}
	}
	if ProtoTCP.String() != "tcp" || ProtoUDP.String() != "udp" || Protocol(9).String() != "proto(9)" {
		t.Fatal("Protocol.String mismatch")
	}
}

func TestEndToEndDelivery(t *testing.T) {
	n, client, _, _, server := testNet(t)
	var delivered []*Packet
	server.SetDefaultHandler(func(pkt *Packet, _ sim.Time) {
		delivered = append(delivered, pkt)
	})
	pkt := dataPacket(n, client.PrimaryIP(), server.PrimaryIP(), 1000)
	client.Send(pkt)
	if err := n.Scheduler().Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(delivered) != 1 {
		t.Fatalf("delivered %d packets, want 1", len(delivered))
	}
	if delivered[0].ID != pkt.ID {
		t.Fatal("wrong packet delivered")
	}
	// 3 hops of 1ms propagation plus 3 serialisation delays of 0.8ms each.
	wantMin := 3 * sim.Millisecond
	if n.Now() < wantMin {
		t.Fatalf("delivery finished at %v, want >= %v", n.Now(), wantMin)
	}
	if server.Received() != 1 || client.Sent() != 1 {
		t.Fatal("host counters not updated")
	}
}

func TestLabelHandlerDispatch(t *testing.T) {
	n, client, _, _, server := testNet(t)
	label := FlowLabel{SrcIP: client.PrimaryIP(), DstIP: server.PrimaryIP(), SrcPort: 1000, DstPort: 80}
	var viaLabel, viaDefault int
	server.Register(label, func(*Packet, sim.Time) { viaLabel++ })
	server.SetDefaultHandler(func(*Packet, sim.Time) { viaDefault++ })

	match := &Packet{ID: n.NextPacketID(), Label: label, Kind: KindData, Size: 100}
	other := &Packet{
		ID:    n.NextPacketID(),
		Label: FlowLabel{SrcIP: client.PrimaryIP(), DstIP: server.PrimaryIP(), SrcPort: 2000, DstPort: 80},
		Kind:  KindData, Size: 100,
	}
	client.Send(match)
	client.Send(other)
	if err := n.Scheduler().Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if viaLabel != 1 || viaDefault != 1 {
		t.Fatalf("dispatch: label=%d default=%d, want 1/1", viaLabel, viaDefault)
	}
	server.Unregister(label)
	client.Send(&Packet{ID: n.NextPacketID(), Label: label, Kind: KindData, Size: 100})
	if err := n.Scheduler().Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if viaDefault != 2 {
		t.Fatal("unregistered label should fall back to default handler")
	}
}

func TestQueueDropTail(t *testing.T) {
	sched := sim.NewScheduler()
	n := New(sched, sim.NewRNG(1))
	a := n.AddHost("a", IP(1))
	b := n.AddHost("b", IP(2))
	r := n.AddRouter("r")
	// Slow link with a tiny queue so a burst overflows it.
	slow := LinkConfig{BandwidthBps: 8000, Delay: sim.Millisecond, QueueLen: 2}
	fast := LinkConfig{BandwidthBps: 1e9, Delay: sim.Millisecond, QueueLen: 64}
	if err := n.ConnectDuplex(a.ID(), r.ID(), fast); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Connect(r.ID(), b.ID(), slow); err != nil {
		t.Fatal(err)
	}
	if _, err := n.Connect(b.ID(), r.ID(), fast); err != nil {
		t.Fatal(err)
	}
	a.AttachTo(r.ID())
	b.AttachTo(r.ID())

	drops := 0
	delivered := 0
	n.SetHooks(Hooks{
		OnQueueDrop: func(*Packet, *Link, sim.Time) { drops++ },
		OnDeliver:   func(*Packet, *Host, sim.Time) { delivered++ },
	})
	// Send a burst of 10 packets back-to-back; queue holds 2.
	for i := 0; i < 10; i++ {
		a.Send(dataPacket(n, a.PrimaryIP(), b.PrimaryIP(), 1000))
	}
	if err := sched.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if drops == 0 {
		t.Fatal("expected drop-tail drops on the bottleneck link")
	}
	if delivered == 0 {
		t.Fatal("expected at least some deliveries")
	}
	if delivered+drops != 10 {
		t.Fatalf("delivered(%d)+dropped(%d) != 10", delivered, drops)
	}
	if n.LinkBetween(r.ID(), b.ID()).Dropped() == 0 {
		t.Fatal("link drop counter not incremented")
	}
}

type dropAllFilter struct{ hits int }

func (f *dropAllFilter) Name() string { return "drop-all" }
func (f *dropAllFilter) Handle(*Packet, sim.Time, *Router) Action {
	f.hits++
	return ActionDrop
}

type countFilter struct{ hits int }

func (f *countFilter) Name() string { return "count" }
func (f *countFilter) Handle(*Packet, sim.Time, *Router) Action {
	f.hits++
	return ActionForward
}

func TestRouterFilterChain(t *testing.T) {
	n, client, r1, _, server := testNet(t)
	counter := &countFilter{}
	dropper := &dropAllFilter{}
	r1.AttachFilter(counter)
	r1.AttachFilter(dropper)

	var filterDrops int
	var lastFilter string
	n.SetHooks(Hooks{OnFilterDrop: func(_ *Packet, _ *Router, name string, _ sim.Time) {
		filterDrops++
		lastFilter = name
	}})
	delivered := 0
	server.SetDefaultHandler(func(*Packet, sim.Time) { delivered++ })

	client.Send(dataPacket(n, client.PrimaryIP(), server.PrimaryIP(), 500))
	if err := n.Scheduler().Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if counter.hits != 1 || dropper.hits != 1 {
		t.Fatalf("filter hits = %d/%d, want 1/1", counter.hits, dropper.hits)
	}
	if delivered != 0 {
		t.Fatal("packet should have been dropped by filter")
	}
	if filterDrops != 1 || lastFilter != "drop-all" {
		t.Fatalf("filter drop hook: count=%d name=%q", filterDrops, lastFilter)
	}
	if r1.FilterDropped() != 1 {
		t.Fatal("router filter-drop counter not updated")
	}

	if !r1.DetachFilter("drop-all") {
		t.Fatal("DetachFilter failed")
	}
	if r1.DetachFilter("missing") {
		t.Fatal("DetachFilter of unknown filter should report false")
	}
	client.Send(dataPacket(n, client.PrimaryIP(), server.PrimaryIP(), 500))
	if err := n.Scheduler().Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if delivered != 1 {
		t.Fatal("packet should be delivered after detaching the dropper")
	}
}

func TestUnroutableDestination(t *testing.T) {
	n, client, _, _, _ := testNet(t)
	unroutable := 0
	n.SetHooks(Hooks{OnUnroutable: func(*Packet, NodeID, sim.Time) { unroutable++ }})
	client.Send(dataPacket(n, client.PrimaryIP(), IP(0xdeadbeef), 500))
	if err := n.Scheduler().Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if unroutable != 1 {
		t.Fatalf("unroutable count = %d, want 1", unroutable)
	}
}

func TestRouterInjectBypassesFilters(t *testing.T) {
	n, _, r1, _, server := testNet(t)
	dropper := &dropAllFilter{}
	r1.AttachFilter(dropper)
	delivered := 0
	server.SetDefaultHandler(func(*Packet, sim.Time) { delivered++ })

	probe := &Packet{
		ID:    n.NextPacketID(),
		Label: FlowLabel{SrcIP: IP(0x01010101), DstIP: server.PrimaryIP(), SrcPort: 9, DstPort: 9},
		Kind:  KindProbe,
		Size:  40,
	}
	r1.Inject(probe)
	if err := n.Scheduler().Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if dropper.hits != 0 {
		t.Fatal("Inject must bypass the local filter chain")
	}
	if delivered != 1 {
		t.Fatal("injected packet not delivered")
	}
}

func TestConnectErrors(t *testing.T) {
	sched := sim.NewScheduler()
	n := New(sched, sim.NewRNG(1))
	a := n.AddHost("a", IP(1))
	b := n.AddHost("b", IP(2))
	if _, err := n.Connect(a.ID(), NodeID(99), LinkConfig{BandwidthBps: 1}); !errors.Is(err, ErrUnknownNode) {
		t.Fatalf("want ErrUnknownNode, got %v", err)
	}
	if _, err := n.Connect(a.ID(), b.ID(), LinkConfig{BandwidthBps: 1}); err != nil {
		t.Fatalf("first connect: %v", err)
	}
	if _, err := n.Connect(a.ID(), b.ID(), LinkConfig{BandwidthBps: 1}); !errors.Is(err, ErrDuplicateLink) {
		t.Fatalf("want ErrDuplicateLink, got %v", err)
	}
}

func TestOwnerAndRoutable(t *testing.T) {
	sched := sim.NewScheduler()
	n := New(sched, sim.NewRNG(1))
	h := n.AddHost("h", IP(7))
	if n.Owner(IP(7)) != h.ID() {
		t.Fatal("Owner lookup failed")
	}
	if n.Owner(IP(8)) != NoNode {
		t.Fatal("unknown address should map to NoNode")
	}
	if !n.IsRoutable(IP(7)) || n.IsRoutable(IP(8)) {
		t.Fatal("IsRoutable mismatch")
	}
	n.RegisterIP(h, IP(9))
	if n.Owner(IP(9)) != h.ID() {
		t.Fatal("RegisterIP did not take effect")
	}
	if len(h.IPs()) != 2 || h.PrimaryIP() != IP(7) {
		t.Fatal("host IP bookkeeping wrong")
	}
}

func TestLinkTransmissionTiming(t *testing.T) {
	sched := sim.NewScheduler()
	n := New(sched, sim.NewRNG(1))
	a := n.AddHost("a", IP(1))
	b := n.AddHost("b", IP(2))
	r := n.AddRouter("r")
	// 1 Mbps, 10 ms delay: a 1250-byte packet serialises in exactly 10 ms.
	cfg := LinkConfig{BandwidthBps: 1e6, Delay: 10 * sim.Millisecond, QueueLen: 10}
	if err := n.ConnectDuplex(a.ID(), r.ID(), cfg); err != nil {
		t.Fatal(err)
	}
	if err := n.ConnectDuplex(r.ID(), b.ID(), cfg); err != nil {
		t.Fatal(err)
	}
	a.AttachTo(r.ID())
	b.AttachTo(r.ID())

	var arrival sim.Time
	b.SetDefaultHandler(func(_ *Packet, now sim.Time) { arrival = now })
	a.Send(dataPacket(n, IP(1), IP(2), 1250))
	if err := sched.Run(); err != nil {
		t.Fatal(err)
	}
	want := 2 * (10*sim.Millisecond + 10*sim.Millisecond) // two hops, each tx+prop
	if arrival != want {
		t.Fatalf("arrival at %v, want %v", arrival, want)
	}
}

func TestNetworkCounters(t *testing.T) {
	n, client, r1, r2, server := testNet(t)
	server.SetDefaultHandler(func(*Packet, sim.Time) {})
	for i := 0; i < 5; i++ {
		client.Send(dataPacket(n, client.PrimaryIP(), server.PrimaryIP(), 100))
	}
	if err := n.Scheduler().Run(); err != nil {
		t.Fatal(err)
	}
	if r1.Forwarded() != 5 || r2.Forwarded() != 5 {
		t.Fatalf("router forwarded = %d/%d, want 5/5", r1.Forwarded(), r2.Forwarded())
	}
	if n.NodeCount() != 4 {
		t.Fatalf("NodeCount = %d, want 4", n.NodeCount())
	}
	if len(n.Neighbors(r1.ID())) != 2 {
		t.Fatalf("r1 neighbours = %d, want 2", len(n.Neighbors(r1.ID())))
	}
	if n.Router(r1.ID()) != r1 || n.Host(client.ID()) != client {
		t.Fatal("lookup by ID failed")
	}
	if r1.Route(server.ID()) != r2.ID() || r1.Route(NodeID(999)) != NoNode {
		t.Fatal("route lookup mismatch")
	}
	if r1.RouteCount() == 0 {
		t.Fatal("route count should be positive")
	}
}

func TestSendFromRouterAndUnknownOrigin(t *testing.T) {
	n, _, r1, _, server := testNet(t)
	delivered := 0
	server.SetDefaultHandler(func(*Packet, sim.Time) { delivered++ })
	pkt := dataPacket(n, IP(0x7f000001), server.PrimaryIP(), 64)
	n.SendFrom(r1.ID(), pkt)

	unroutable := 0
	n.SetHooks(Hooks{OnUnroutable: func(*Packet, NodeID, sim.Time) { unroutable++ }})
	n.SendFrom(NodeID(4242), dataPacket(n, IP(1), server.PrimaryIP(), 64))

	if err := n.Scheduler().Run(); err != nil {
		t.Fatal(err)
	}
	if delivered != 1 {
		t.Fatalf("delivered = %d, want 1", delivered)
	}
	if unroutable != 1 {
		t.Fatalf("unroutable = %d, want 1", unroutable)
	}
}
