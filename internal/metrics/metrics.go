// Package metrics measures a scenario the way the paper's evaluation does
// (Section IV, Table I): attack-packet dropping accuracy α, traffic
// reduction rate β, false-positive rate θp, false-negative rate θn, and the
// legitimate-packet dropping rate L_r, plus the victim-side bandwidth time
// series behind Figure 4(b).
//
// The collector observes the simulation through ground-truth packet tags
// (Packet.Malicious) that no defence component ever reads, a per-ATR arrival
// tap, the defenders' drop observers, and the network delivery hook.
package metrics

import (
	"mafic/internal/core"
	"mafic/internal/netsim"
	"mafic/internal/sim"
)

// ArrivalTapName is the filter name of the per-ATR arrival tap.
const ArrivalTapName = "metrics-arrival-tap"

// BandwidthPoint is one bin of the victim arrival time series.
type BandwidthPoint struct {
	// Time is the start of the bin.
	Time sim.Time
	// LegitPackets and AttackPackets count data packets delivered to the
	// victim during the bin.
	LegitPackets  uint64
	AttackPackets uint64
	// Bytes is the total data volume delivered during the bin.
	Bytes uint64
}

// Total returns the bin's total packet count.
func (p BandwidthPoint) Total() uint64 { return p.LegitPackets + p.AttackPackets }

// Collector accumulates the per-packet observations of one scenario run.
type Collector struct {
	binWidth sim.Time

	activated    bool
	activationAt sim.Time

	// Arrivals at ATRs (victim-bound data), split by ground truth and by
	// whether the defence was active at arrival time.
	atrLegitPre   uint64
	atrLegitPost  uint64
	atrAttackPre  uint64
	atrAttackPost uint64

	// Defence drops split by ground truth and reason.
	dropLegitProbing uint64
	dropLegitPDT     uint64
	dropLegitIllegal uint64
	dropAttack       uint64
	dropAttackPDT    uint64

	// Victim deliveries split by ground truth and activation phase.
	victimLegitPre   uint64
	victimLegitPost  uint64
	victimAttackPre  uint64
	victimAttackPost uint64

	// Queue drops anywhere in the network (not attributable to MAFIC).
	queueDrops uint64

	// Fault drops: packets killed by down links or crashed routers during
	// injected-failure runs (not attributable to MAFIC either).
	faultDrops uint64

	// bins is the victim bandwidth time series, indexed densely by bin
	// number (Time/binWidth). Quiet bins stay zero and are skipped by
	// Series, so the dense layout is invisible in the reported output; it
	// exists because a map of pointers allocated one BandwidthPoint per
	// bin per run and put a hash lookup on the per-delivery hot path.
	bins []BandwidthPoint

	// tap is the arrival counter shared by every tapped router; the same
	// filter instance can sit on many routers because its only state is
	// the collector itself.
	tap *arrivalTap
}

// NewCollector creates a collector with the given time-series bin width.
// A zero bin width defaults to 50 ms.
func NewCollector(binWidth sim.Time) *Collector {
	if binWidth <= 0 {
		binWidth = 50 * sim.Millisecond
	}
	return &Collector{binWidth: binWidth}
}

// MarkActivation records the instant the defence was activated. Arrivals and
// deliveries before this instant are excluded from the defence-quality
// metrics (the defence cannot drop what it was not yet asked to drop).
func (c *Collector) MarkActivation(now sim.Time) {
	if c.activated {
		return
	}
	c.activated = true
	c.activationAt = now
}

// Activated reports whether MarkActivation has been called, and when.
func (c *Collector) Activated() (sim.Time, bool) { return c.activationAt, c.activated }

// arrivalTap is the passive filter installed on each ATR.
type arrivalTap struct {
	collector *Collector
	victimIP  netsim.IP
}

var _ netsim.Filter = (*arrivalTap)(nil)

func (t *arrivalTap) Name() string { return ArrivalTapName }

func (t *arrivalTap) Handle(pkt *netsim.Packet, now sim.Time, _ *netsim.Router) netsim.Action {
	// Only the packet's first router counts it (Hops is still zero
	// there); transit through other tapped routers must not double count.
	if pkt.Kind == netsim.KindData && pkt.Label.DstIP == t.victimIP && pkt.Hops == 0 {
		t.collector.noteATRArrival(pkt, now)
	}
	return netsim.ActionForward
}

// TapRouter installs a passive arrival counter on the given router. It must
// be attached before the defence filter so it sees packets the defence later
// drops. All taps for the same victim share one filter instance.
func (c *Collector) TapRouter(r *netsim.Router, victim netsim.IP) {
	if c.tap == nil || c.tap.victimIP != victim {
		c.tap = &arrivalTap{collector: c, victimIP: victim}
	}
	r.AttachFilter(c.tap)
}

// ReserveSeries presizes the bandwidth time series for a run of the given
// duration, so recording deliveries never grows the series mid-run.
func (c *Collector) ReserveSeries(duration sim.Time) {
	want := int(duration/c.binWidth) + 1
	if duration <= 0 || cap(c.bins) >= want {
		return
	}
	grown := make([]BandwidthPoint, len(c.bins), want)
	copy(grown, c.bins)
	c.bins = grown
}

func (c *Collector) noteATRArrival(pkt *netsim.Packet, now sim.Time) {
	post := c.activated && now >= c.activationAt
	if pkt.Malicious {
		if post {
			c.atrAttackPost++
		} else {
			c.atrAttackPre++
		}
		return
	}
	if post {
		c.atrLegitPost++
	} else {
		c.atrLegitPre++
	}
}

// ObserveMAFICDrop is wired as each MAFIC defender's drop observer.
func (c *Collector) ObserveMAFICDrop(pkt *netsim.Packet, reason core.DropReason, _ sim.Time) {
	if pkt.Malicious {
		c.dropAttack++
		if reason == core.DropPermanent || reason == core.DropIllegalSource {
			c.dropAttackPDT++
		}
		return
	}
	switch reason {
	case core.DropProbing:
		c.dropLegitProbing++
	case core.DropPermanent:
		c.dropLegitPDT++
	case core.DropIllegalSource:
		c.dropLegitIllegal++
	}
}

// ObserveBaselineDrop is wired as the proportional dropper's observer. All
// baseline drops of legitimate packets count as wrong drops: the baseline
// has no notion of probing.
func (c *Collector) ObserveBaselineDrop(pkt *netsim.Packet, _ sim.Time) {
	if pkt.Malicious {
		c.dropAttack++
		return
	}
	c.dropLegitPDT++
}

// InstallHooks registers the collector's network hooks: victim deliveries
// and queue drops. Call it once per scenario after building the network.
func (c *Collector) InstallHooks(net *netsim.Network, victimHost netsim.NodeID) {
	net.SetHooks(netsim.Hooks{
		OnDeliver: func(pkt *netsim.Packet, host *netsim.Host, now sim.Time) {
			if host.ID() != victimHost || pkt.Kind != netsim.KindData {
				return
			}
			c.noteVictimDelivery(pkt, now)
		},
		OnQueueDrop: func(*netsim.Packet, *netsim.Link, sim.Time) {
			c.queueDrops++
		},
		OnFaultDrop: func(*netsim.Packet, netsim.NodeID, sim.Time) {
			c.faultDrops++
		},
	})
}

func (c *Collector) noteVictimDelivery(pkt *netsim.Packet, now sim.Time) {
	post := c.activated && now >= c.activationAt
	if pkt.Malicious {
		if post {
			c.victimAttackPost++
		} else {
			c.victimAttackPre++
		}
	} else {
		if post {
			c.victimLegitPost++
		} else {
			c.victimLegitPre++
		}
	}
	idx := int(now / c.binWidth)
	for len(c.bins) <= idx {
		c.bins = append(c.bins, BandwidthPoint{Time: sim.Time(len(c.bins)) * c.binWidth})
	}
	bin := &c.bins[idx]
	if pkt.Malicious {
		bin.AttackPackets++
	} else {
		bin.LegitPackets++
	}
	bin.Bytes += uint64(pkt.Size)
}

// ratio returns num/den guarding against empty denominators.
func ratio(num, den uint64) float64 {
	if den == 0 {
		return 0
	}
	return float64(num) / float64(den)
}

// Accuracy returns α: the fraction of attack packets arriving at the ATRs
// after activation that the defence dropped.
func (c *Collector) Accuracy() float64 {
	return ratio(c.dropAttack, c.atrAttackPost)
}

// FalseNegativeRate returns θn: the fraction of attack packets arriving at
// the ATRs after activation that still reached the victim.
func (c *Collector) FalseNegativeRate() float64 {
	return ratio(c.victimAttackPost, c.atrAttackPost)
}

// FalsePositiveRate returns θp: legitimate packets dropped because their
// flow was classified as malicious (PDT or illegal-source drops), as a
// fraction of all victim-bound packets arriving at the ATRs after
// activation. This matches the paper's "percentage of legitimate packets
// wrongly dropped as malicious attacking packets out of the total traffic
// packets".
func (c *Collector) FalsePositiveRate() float64 {
	total := c.atrLegitPost + c.atrAttackPost
	return ratio(c.dropLegitPDT+c.dropLegitIllegal, total)
}

// LegitimateDropRate returns L_r: every legitimate packet the defence
// dropped (probing losses included) as a fraction of legitimate packets
// arriving at the ATRs after activation.
func (c *Collector) LegitimateDropRate() float64 {
	return ratio(c.dropLegitProbing+c.dropLegitPDT+c.dropLegitIllegal, c.atrLegitPost)
}

// TrafficReduction returns β: one minus the ratio of the victim's arrival
// rate in the window of the given length immediately after activation to the
// arrival rate in the window of the same length immediately before it.
func (c *Collector) TrafficReduction(window sim.Time) float64 {
	if !c.activated || window <= 0 {
		return 0
	}
	before := c.rateIn(c.activationAt-window, c.activationAt)
	after := c.rateIn(c.activationAt, c.activationAt+window)
	if before <= 0 {
		return 0
	}
	reduction := 1 - after/before
	if reduction < 0 {
		reduction = 0
	}
	return reduction
}

// rateIn sums delivered packets whose bins overlap [from, to) and converts
// to packets per second.
func (c *Collector) rateIn(from, to sim.Time) float64 {
	if to <= from {
		return 0
	}
	var count uint64
	for i := range c.bins {
		start := c.bins[i].Time
		if start >= from && start < to {
			count += c.bins[i].Total()
		}
	}
	return sim.Rate(float64(count), from, to)
}

// Series returns the victim bandwidth time series in chronological order.
// Bins in which nothing was delivered are omitted, exactly as when the
// series was stored sparsely.
func (c *Collector) Series() []BandwidthPoint {
	out := make([]BandwidthPoint, 0, len(c.bins))
	for _, bin := range c.bins {
		if bin.Total() > 0 {
			out = append(out, bin)
		}
	}
	return out
}

// Counts exposes the raw counters for reporting and tests.
type Counts struct {
	ATRLegitPre      uint64 `json:"atrLegitPre"`
	ATRLegitPost     uint64 `json:"atrLegitPost"`
	ATRAttackPre     uint64 `json:"atrAttackPre"`
	ATRAttackPost    uint64 `json:"atrAttackPost"`
	DropLegitProbing uint64 `json:"dropLegitProbing"`
	DropLegitPDT     uint64 `json:"dropLegitPdt"`
	DropLegitIllegal uint64 `json:"dropLegitIllegal"`
	DropAttack       uint64 `json:"dropAttack"`
	DropAttackPDT    uint64 `json:"dropAttackPdt"`
	VictimLegitPre   uint64 `json:"victimLegitPre"`
	VictimLegit      uint64 `json:"victimLegitPost"`
	VictimAttackPre  uint64 `json:"victimAttackPre"`
	VictimAttack     uint64 `json:"victimAttackPost"`
	QueueDrops       uint64 `json:"queueDrops"`
	FaultDrops       uint64 `json:"faultDrops"`
}

// Counts returns a snapshot of the raw counters.
func (c *Collector) Counts() Counts {
	return Counts{
		ATRLegitPre:      c.atrLegitPre,
		ATRLegitPost:     c.atrLegitPost,
		ATRAttackPre:     c.atrAttackPre,
		ATRAttackPost:    c.atrAttackPost,
		DropLegitProbing: c.dropLegitProbing,
		DropLegitPDT:     c.dropLegitPDT,
		DropLegitIllegal: c.dropLegitIllegal,
		DropAttack:       c.dropAttack,
		DropAttackPDT:    c.dropAttackPDT,
		VictimLegitPre:   c.victimLegitPre,
		VictimLegit:      c.victimLegitPost,
		VictimAttackPre:  c.victimAttackPre,
		VictimAttack:     c.victimAttackPost,
		QueueDrops:       c.queueDrops,
		FaultDrops:       c.faultDrops,
	}
}
