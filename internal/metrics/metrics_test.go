package metrics

import (
	"math"
	"testing"

	"mafic/internal/core"
	"mafic/internal/netsim"
	"mafic/internal/sim"
)

func testNet(t *testing.T) (*netsim.Network, *netsim.Router, *netsim.Host, *netsim.Host) {
	t.Helper()
	sched := sim.NewScheduler()
	net := netsim.New(sched, sim.NewRNG(1))
	atr := net.AddRouter("atr")
	src := net.AddHost("src", netsim.IP(0xc0a80001))
	victim := net.AddHost("victim", netsim.IP(0x0a000001))
	cfg := netsim.LinkConfig{BandwidthBps: 1e9, Delay: sim.Millisecond, QueueLen: 64}
	for _, h := range []*netsim.Host{src, victim} {
		h.AttachTo(atr.ID())
		if err := net.ConnectDuplex(h.ID(), atr.ID(), cfg); err != nil {
			t.Fatal(err)
		}
		h.SetDefaultHandler(func(*netsim.Packet, sim.Time) {})
	}
	return net, atr, src, victim
}

func mkPacket(net *netsim.Network, src, dst netsim.IP, malicious bool) *netsim.Packet {
	return &netsim.Packet{
		ID:        net.NextPacketID(),
		Label:     netsim.FlowLabel{SrcIP: src, DstIP: dst, SrcPort: 9, DstPort: 80},
		Kind:      netsim.KindData,
		Proto:     netsim.ProtoTCP,
		Size:      500,
		Malicious: malicious,
	}
}

func TestCollectorArrivalPhases(t *testing.T) {
	net, atr, src, victim := testNet(t)
	c := NewCollector(50 * sim.Millisecond)
	c.TapRouter(atr, victim.PrimaryIP())
	c.InstallHooks(net, victim.ID())

	send := func(at sim.Time, malicious bool) {
		net.Scheduler().ScheduleAt(at, func(sim.Time) {
			src.Send(mkPacket(net, src.PrimaryIP(), victim.PrimaryIP(), malicious))
		})
	}
	// Two packets before activation, three after.
	send(10*sim.Millisecond, false)
	send(20*sim.Millisecond, true)
	net.Scheduler().ScheduleAt(100*sim.Millisecond, func(now sim.Time) { c.MarkActivation(now) })
	send(110*sim.Millisecond, false)
	send(120*sim.Millisecond, true)
	send(130*sim.Millisecond, true)
	if err := net.Scheduler().Run(); err != nil {
		t.Fatal(err)
	}

	counts := c.Counts()
	if counts.ATRLegitPre != 1 || counts.ATRAttackPre != 1 {
		t.Fatalf("pre-activation arrivals = %d/%d, want 1/1", counts.ATRLegitPre, counts.ATRAttackPre)
	}
	if counts.ATRLegitPost != 1 || counts.ATRAttackPost != 2 {
		t.Fatalf("post-activation arrivals = %d/%d, want 1/2", counts.ATRLegitPost, counts.ATRAttackPost)
	}
	if counts.VictimAttack != 2 || counts.VictimLegit != 1 {
		t.Fatalf("victim deliveries post = %d/%d, want legit=1 attack=2", counts.VictimLegit, counts.VictimAttack)
	}
	if at, ok := c.Activated(); !ok || at != 100*sim.Millisecond {
		t.Fatal("activation mark lost")
	}
	// Nothing was dropped, so accuracy is zero and θn is 100%.
	if c.Accuracy() != 0 {
		t.Fatal("accuracy should be 0 without drops")
	}
	if math.Abs(c.FalseNegativeRate()-1.0) > 1e-9 {
		t.Fatalf("θn = %v, want 1.0", c.FalseNegativeRate())
	}
}

func TestCollectorTapCountsOnlyFirstHop(t *testing.T) {
	net, atr, src, victim := testNet(t)
	c := NewCollector(0)
	c.TapRouter(atr, victim.PrimaryIP())
	c.MarkActivation(0)

	pkt := mkPacket(net, src.PrimaryIP(), victim.PrimaryIP(), false)
	pkt.Hops = 3 // pretend the packet already crossed other routers
	src.Send(pkt)
	if err := net.Scheduler().Run(); err != nil {
		t.Fatal(err)
	}
	if got := c.Counts().ATRLegitPost; got != 0 {
		t.Fatalf("transit packet was counted: %d", got)
	}
}

func TestCollectorDropObserversAndRates(t *testing.T) {
	c := NewCollector(0)
	c.MarkActivation(0)
	legit := &netsim.Packet{Malicious: false}
	attack := &netsim.Packet{Malicious: true}

	// Simulate ATR arrivals: 100 legit and 100 attack packets.
	for i := 0; i < 100; i++ {
		c.noteATRArrival(legit, sim.Time(i))
		c.noteATRArrival(attack, sim.Time(i))
	}
	// The defence drops 95 attack packets, 5 legit during probing, and 2
	// legit through misclassification.
	for i := 0; i < 95; i++ {
		c.ObserveMAFICDrop(attack, core.DropPermanent, 0)
	}
	for i := 0; i < 5; i++ {
		c.ObserveMAFICDrop(legit, core.DropProbing, 0)
	}
	c.ObserveMAFICDrop(legit, core.DropPermanent, 0)
	c.ObserveMAFICDrop(legit, core.DropIllegalSource, 0)

	if got := c.Accuracy(); math.Abs(got-0.95) > 1e-9 {
		t.Fatalf("accuracy = %v, want 0.95", got)
	}
	if got := c.FalsePositiveRate(); math.Abs(got-2.0/200.0) > 1e-9 {
		t.Fatalf("θp = %v, want 0.01", got)
	}
	if got := c.LegitimateDropRate(); math.Abs(got-7.0/100.0) > 1e-9 {
		t.Fatalf("Lr = %v, want 0.07", got)
	}
	counts := c.Counts()
	if counts.DropAttack != 95 || counts.DropLegitProbing != 5 || counts.DropLegitPDT != 1 || counts.DropLegitIllegal != 1 {
		t.Fatalf("drop counters wrong: %+v", counts)
	}
}

func TestCollectorBaselineObserver(t *testing.T) {
	c := NewCollector(0)
	c.MarkActivation(0)
	for i := 0; i < 10; i++ {
		c.noteATRArrival(&netsim.Packet{Malicious: false}, 0)
	}
	c.ObserveBaselineDrop(&netsim.Packet{Malicious: false}, 0)
	c.ObserveBaselineDrop(&netsim.Packet{Malicious: true}, 0)
	counts := c.Counts()
	if counts.DropLegitPDT != 1 || counts.DropAttack != 1 {
		t.Fatalf("baseline observer counts wrong: %+v", counts)
	}
}

func TestCollectorSeriesAndReduction(t *testing.T) {
	net, atr, src, victim := testNet(t)
	c := NewCollector(50 * sim.Millisecond)
	c.TapRouter(atr, victim.PrimaryIP())
	c.InstallHooks(net, victim.ID())

	// 10 packets per 50 ms bin before activation, 1 per bin after.
	for bin := 0; bin < 4; bin++ {
		for i := 0; i < 10; i++ {
			at := sim.Time(bin)*50*sim.Millisecond + sim.Time(i+1)*sim.Millisecond
			net.Scheduler().ScheduleAt(at, func(sim.Time) {
				src.Send(mkPacket(net, src.PrimaryIP(), victim.PrimaryIP(), true))
			})
		}
	}
	net.Scheduler().ScheduleAt(200*sim.Millisecond, func(now sim.Time) { c.MarkActivation(now) })
	for bin := 4; bin < 8; bin++ {
		at := sim.Time(bin)*50*sim.Millisecond + sim.Millisecond
		net.Scheduler().ScheduleAt(at, func(sim.Time) {
			src.Send(mkPacket(net, src.PrimaryIP(), victim.PrimaryIP(), true))
		})
	}
	if err := net.Scheduler().Run(); err != nil {
		t.Fatal(err)
	}

	series := c.Series()
	if len(series) < 6 {
		t.Fatalf("series has %d bins, want >= 6", len(series))
	}
	for i := 1; i < len(series); i++ {
		if series[i].Time <= series[i-1].Time {
			t.Fatal("series not in chronological order")
		}
	}
	red := c.TrafficReduction(100 * sim.Millisecond)
	if red < 0.80 || red > 0.95 {
		t.Fatalf("traffic reduction = %v, want ~0.9", red)
	}
	if c.TrafficReduction(0) != 0 {
		t.Fatal("zero window should yield zero reduction")
	}
}

func TestCollectorNoActivationDefaults(t *testing.T) {
	c := NewCollector(0)
	if c.Accuracy() != 0 || c.FalsePositiveRate() != 0 || c.LegitimateDropRate() != 0 {
		t.Fatal("metrics without traffic should be zero")
	}
	if c.TrafficReduction(100*sim.Millisecond) != 0 {
		t.Fatal("reduction without activation should be zero")
	}
	if _, ok := c.Activated(); ok {
		t.Fatal("collector should not report activation")
	}
	// Double activation keeps the first timestamp.
	c.MarkActivation(10)
	c.MarkActivation(20)
	if at, _ := c.Activated(); at != 10 {
		t.Fatal("second MarkActivation must not move the activation time")
	}
}

func TestBandwidthPointTotal(t *testing.T) {
	p := BandwidthPoint{LegitPackets: 3, AttackPackets: 4}
	if p.Total() != 7 {
		t.Fatalf("Total = %d, want 7", p.Total())
	}
}
