package metrics

import (
	"fmt"

	"mafic/internal/sim"
)

// CollectorState is the collector's dynamic state: the activation record,
// every raw counter, and the dense bandwidth time series. The bin width and
// the tap/hook wiring are rebuild-covered.
type CollectorState struct {
	Activated    bool
	ActivationAt sim.Time
	Counts       Counts
	Bins         []BandwidthPoint
}

// CheckpointState captures the collector's dynamic state.
func (c *Collector) CheckpointState() CollectorState {
	return CollectorState{
		Activated:    c.activated,
		ActivationAt: c.activationAt,
		Counts:       c.Counts(),
		Bins:         append([]BandwidthPoint(nil), c.bins...),
	}
}

// RestoreState overlays captured dynamic state onto a rebuilt collector. The
// series keeps its reserved backing when it is large enough.
func (c *Collector) RestoreState(st CollectorState) error {
	for i := range st.Bins {
		if want := sim.Time(i) * c.binWidth; st.Bins[i].Time != want {
			return fmt.Errorf("metrics: restore bin %d starts at %v, rebuilt bin width implies %v",
				i, st.Bins[i].Time, want)
		}
	}
	c.activated = st.Activated
	c.activationAt = st.ActivationAt
	c.atrLegitPre = st.Counts.ATRLegitPre
	c.atrLegitPost = st.Counts.ATRLegitPost
	c.atrAttackPre = st.Counts.ATRAttackPre
	c.atrAttackPost = st.Counts.ATRAttackPost
	c.dropLegitProbing = st.Counts.DropLegitProbing
	c.dropLegitPDT = st.Counts.DropLegitPDT
	c.dropLegitIllegal = st.Counts.DropLegitIllegal
	c.dropAttack = st.Counts.DropAttack
	c.dropAttackPDT = st.Counts.DropAttackPDT
	c.victimLegitPre = st.Counts.VictimLegitPre
	c.victimLegitPost = st.Counts.VictimLegit
	c.victimAttackPre = st.Counts.VictimAttackPre
	c.victimAttackPost = st.Counts.VictimAttack
	c.queueDrops = st.Counts.QueueDrops
	c.faultDrops = st.Counts.FaultDrops
	c.bins = append(c.bins[:0], st.Bins...)
	return nil
}

// CheckpointTypes lists this package's structs that carry snapshotted state.
var CheckpointTypes = []any{
	Collector{},
	BandwidthPoint{},
	Counts{},
}
