package sim

import "slices"

// Calendar-queue tuning constants.
const (
	// calMinBuckets is the smallest bucket count; the queue never shrinks
	// below it, so tiny queues stay cheap to scan and to rebuild.
	calMinBuckets = 16
	// calInitialWidth is the bucket width before any spacing has been
	// observed. The first retune replaces it with a measured value.
	calInitialWidth = Millisecond
	// calRetunePops is how many dequeues pass between width-retune checks.
	calRetunePops = 4096
	// calMinGapSamples is the minimum number of observed inter-event gaps
	// required before the measured average is trusted for retuning.
	calMinGapSamples = 64
	// calWidthFactor scales the average observed inter-event gap into a
	// bucket width (Brown's classic calendar-queue rule of thumb).
	calWidthFactor = 3
)

// calNil terminates bucket chains.
const calNil int32 = -1

// calNode is the calendar's per-event chain node. Nodes live in one slab
// indexed by the owning event's arena slot, so bucket membership costs no
// allocation: inserting an event links its node into the destination
// bucket's chain, which is kept sorted ascending by (time, seq).
type calNode struct {
	at   Time
	seq  uint64
	next int32
}

// calendarQueue is a calendar-queue priority queue over (Time, seq) keys
// (R. Brown, CACM 1988). Virtual time is divided into fixed-width windows
// mapped round-robin onto a power-of-two number of buckets (window w goes to
// bucket w mod nbuckets — one "year" is nbuckets consecutive windows). Each
// bucket is a sorted intrusive chain through the node slab. Inserting links
// into the destination bucket (usually at or near its tail) and popping
// scans forward from the current window, so both are O(1) amortized while
// the bucket width matches the observed event spacing.
//
// The queue retunes itself: bucket count follows the pending-event count
// (doubling/halving with hysteresis) and bucket width follows the average
// inter-event spacing observed at dequeue, checked every calRetunePops pops
// and rebuilt only on at least 2x drift. All resizing decisions are pure
// functions of the operation sequence, so a run is deterministic and
// dispatch order is identical to the binary-heap backend: the scan always
// yields the globally minimal (time, seq) entry.
type calendarQueue struct {
	nodes   []calNode // parallel to the scheduler's event arena
	buckets []int32   // head of each bucket's chain, calNil when empty
	mask    int       // len(buckets)-1; len is a power of two
	width   Time      // window width in virtual time, >= 1
	count   int       // pending entries, including lazily cancelled ones

	// cur is the bucket whose window [curTop-width, curTop) the dequeue
	// scan has reached. Every pending event has at >= curTop-width.
	cur    int
	curTop Time

	// Inter-event spacing observation for width retuning.
	havePop         bool
	lastPopAt       Time
	gapSum          Time
	gapPops         int
	popsSinceRetune int

	// scratch holds all pending entries during a rebuild so redistribution
	// reuses one sorted buffer instead of allocating per resize.
	scratch []timedEnt
}

// reset empties the queue while keeping its storage and tuned width, so a
// recycled scheduler starts from a geometry that already fits the workload.
func (q *calendarQueue) reset() {
	for i := range q.buckets {
		q.buckets[i] = calNil
	}
	q.count = 0
	q.cur, q.curTop = 0, 0
	q.havePop, q.lastPopAt = false, 0
	q.resetObservation()
}

// bucketOf maps a timestamp to its bucket index under the current geometry.
func (q *calendarQueue) bucketOf(at Time) int {
	return int(at/q.width) & q.mask
}

// anchor points the dequeue scan at the window containing at.
func (q *calendarQueue) anchor(at Time) {
	q.cur = q.bucketOf(at)
	q.curTop = (at/q.width + 1) * q.width
}

// insert adds the entry, anchoring or re-anchoring the dequeue scan when
// needed and growing the calendar once occupancy exceeds two entries per
// bucket. e.idx must be a live arena slot; its node slab entry is (re)used.
func (q *calendarQueue) insert(e timedEnt) {
	if q.buckets == nil {
		q.buckets = make([]int32, calMinBuckets)
		for i := range q.buckets {
			q.buckets[i] = calNil
		}
		q.mask = calMinBuckets - 1
		q.width = calInitialWidth
	}
	for int(e.idx) >= len(q.nodes) {
		q.nodes = append(q.nodes, calNode{})
	}
	if q.count == 0 || e.at < q.curTop-q.width {
		// The queue was empty, or the event lands before the window the
		// scan has reached (possible after RunUntil advanced the clock
		// past a gap). Pull the scan back so nothing is skipped.
		q.anchor(e.at)
	}
	q.link(e)
	q.count++
	if q.count > 2*len(q.buckets) {
		q.resize()
	}
}

// link places the entry's node into its bucket chain, keeping the chain
// sorted ascending by (time, seq). Timestamps mostly arrive in near-monotone
// order inside a window, so the walk is short.
func (q *calendarQueue) link(e timedEnt) {
	n := &q.nodes[e.idx]
	n.at, n.seq = e.at, e.seq
	b := q.bucketOf(e.at)
	head := q.buckets[b]
	if head == calNil || entLess(e, timedEnt{at: q.nodes[head].at, seq: q.nodes[head].seq}) {
		n.next = head
		q.buckets[b] = e.idx
		return
	}
	prev := head
	for {
		nx := q.nodes[prev].next
		if nx == calNil || entLess(e, timedEnt{at: q.nodes[nx].at, seq: q.nodes[nx].seq}) {
			n.next = nx
			q.nodes[prev].next = e.idx
			return
		}
		prev = nx
	}
}

// peek returns the minimal pending entry without removing it, advancing the
// window scan as a side effect. A full fruitless lap (every pending event
// lies beyond the current year) falls back to a direct minimum search that
// jumps the scan to the earliest event's window.
func (q *calendarQueue) peek() (timedEnt, bool) {
	if q.count == 0 {
		return timedEnt{}, false
	}
	for scanned := 0; scanned < len(q.buckets); scanned++ {
		if head := q.buckets[q.cur]; head != calNil {
			n := &q.nodes[head]
			if n.at < q.curTop {
				return timedEnt{at: n.at, seq: n.seq, idx: head}, true
			}
		}
		q.cur = (q.cur + 1) & q.mask
		q.curTop += q.width
	}
	return q.jumpToMin(), true
}

// jumpToMin finds the globally minimal entry by comparing bucket heads (each
// chain is sorted, so its head is its minimum) and re-anchors the scan at
// that entry's window.
func (q *calendarQueue) jumpToMin() timedEnt {
	var best timedEnt
	found := false
	for _, head := range q.buckets {
		if head == calNil {
			continue
		}
		n := &q.nodes[head]
		e := timedEnt{at: n.at, seq: n.seq, idx: head}
		if !found || entLess(e, best) {
			best, found = e, true
		}
	}
	q.anchor(best.at)
	return best
}

// pop removes and returns the minimal pending entry. The caller must have
// checked count > 0.
func (q *calendarQueue) pop() timedEnt {
	e, _ := q.peek()
	q.buckets[q.cur] = q.nodes[e.idx].next
	q.count--

	if q.havePop {
		q.gapSum += e.at - q.lastPopAt
		q.gapPops++
	}
	q.havePop = true
	q.lastPopAt = e.at
	if q.popsSinceRetune++; q.popsSinceRetune >= calRetunePops {
		q.maybeRetune()
	}
	if q.count < len(q.buckets)/4 && len(q.buckets) > calMinBuckets {
		q.resize()
	}
	return e
}

// idealWidth converts the spacing observed since the last retune into a
// bucket width, or returns 0 when too few gaps have accumulated to trust.
func (q *calendarQueue) idealWidth() Time {
	if q.gapPops < calMinGapSamples {
		return 0
	}
	w := calWidthFactor * q.gapSum / Time(q.gapPops)
	if w < 1 {
		w = 1
	}
	return w
}

// maybeRetune rebuilds with a freshly measured width when the current one
// has drifted at least 2x from the observed spacing. Steady-state workloads
// settle after the first retune and never rebuild again.
func (q *calendarQueue) maybeRetune() {
	w := q.idealWidth()
	q.resetObservation()
	if w == 0 || (w < 2*q.width && q.width < 2*w) {
		return
	}
	q.rebuild(len(q.buckets), w)
}

// resize follows the pending-event count: the bucket count becomes the
// smallest power of two >= count (floored at calMinBuckets), keeping average
// occupancy near one entry per bucket. Width is refreshed opportunistically
// from whatever spacing has been observed.
func (q *calendarQueue) resize() {
	n := calMinBuckets
	for n < q.count {
		n *= 2
	}
	w := q.idealWidth()
	if w == 0 {
		w = q.width
	}
	q.resetObservation()
	q.rebuild(n, w)
}

func (q *calendarQueue) resetObservation() {
	q.gapSum, q.gapPops, q.popsSinceRetune = 0, 0, 0
}

// rebuild redistributes every pending entry into a calendar with n buckets
// of width w. Entries are collected into the reusable scratch buffer and
// sorted globally descending-to-front, so refilling is a push-front per
// entry that leaves every chain sorted; the only allocation is the bucket
// head array itself, and only when the bucket count actually changes.
func (q *calendarQueue) rebuild(n int, w Time) {
	q.scratch = q.scratch[:0]
	for _, head := range q.buckets {
		for idx := head; idx != calNil; idx = q.nodes[idx].next {
			nd := &q.nodes[idx]
			q.scratch = append(q.scratch, timedEnt{at: nd.at, seq: nd.seq, idx: idx})
		}
	}
	if n != len(q.buckets) {
		q.buckets = make([]int32, n)
		q.mask = n - 1
	}
	for i := range q.buckets {
		q.buckets[i] = calNil
	}
	q.width = w
	slices.SortFunc(q.scratch, func(a, b timedEnt) int {
		switch {
		case entLess(a, b):
			return -1
		case entLess(b, a):
			return 1
		default:
			return 0
		}
	})
	// Prepend in reverse sorted order: each chain comes out ascending.
	for i := len(q.scratch) - 1; i >= 0; i-- {
		e := q.scratch[i]
		b := q.bucketOf(e.at)
		q.nodes[e.idx].next = q.buckets[b]
		q.buckets[b] = e.idx
	}
	if len(q.scratch) > 0 {
		q.anchor(q.scratch[0].at)
	}
}
