package sim

import (
	"container/heap"
	"errors"
)

// ErrStopped is returned by Run when the scheduler is halted via Stop before
// the event queue drains.
var ErrStopped = errors.New("sim: scheduler stopped")

// Handler is the callback invoked when an event fires. The scheduler passes
// the current virtual time so handlers never need to capture the scheduler
// just to read the clock.
type Handler func(now Time)

// event is a single queued callback.
type event struct {
	at      Time
	seq     uint64 // tie-breaker: FIFO among events scheduled for the same instant
	fn      Handler
	stopped bool
	index   int
}

// EventRef identifies a scheduled event so it can be cancelled. The zero
// value is inert: cancelling it is a no-op.
type EventRef struct {
	ev *event
}

// Cancel prevents the referenced event from firing. Cancelling an event that
// already fired, or a zero EventRef, is safe and does nothing.
func (r EventRef) Cancel() {
	if r.ev != nil {
		r.ev.stopped = true
	}
}

// Pending reports whether the referenced event is still queued and will fire.
func (r EventRef) Pending() bool {
	return r.ev != nil && !r.ev.stopped && r.ev.index >= 0
}

// eventQueue is a min-heap ordered by (time, sequence number).
type eventQueue []*event

func (q eventQueue) Len() int { return len(q) }

func (q eventQueue) Less(i, j int) bool {
	if q[i].at != q[j].at {
		return q[i].at < q[j].at
	}
	return q[i].seq < q[j].seq
}

func (q eventQueue) Swap(i, j int) {
	q[i], q[j] = q[j], q[i]
	q[i].index = i
	q[j].index = j
}

func (q *eventQueue) Push(x any) {
	ev, ok := x.(*event)
	if !ok {
		return
	}
	ev.index = len(*q)
	*q = append(*q, ev)
}

func (q *eventQueue) Pop() any {
	old := *q
	n := len(old)
	ev := old[n-1]
	old[n-1] = nil
	ev.index = -1
	*q = old[:n-1]
	return ev
}

// Scheduler is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; the simulation model is single-threaded by design,
// which keeps runs deterministic.
type Scheduler struct {
	now     Time
	queue   eventQueue
	seq     uint64
	stopped bool

	// processed counts events that have fired, for instrumentation.
	processed uint64
}

// NewScheduler returns a scheduler with its clock at zero and an empty queue.
func NewScheduler() *Scheduler {
	return &Scheduler{}
}

// Now reports the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Len reports the number of pending events (including cancelled ones that
// have not yet been discarded).
func (s *Scheduler) Len() int { return len(s.queue) }

// Processed reports how many events have fired so far.
func (s *Scheduler) Processed() uint64 { return s.processed }

// ScheduleAt queues fn to run at the absolute virtual time at. Events
// scheduled in the past run at the current time instead; the clock never
// moves backwards.
func (s *Scheduler) ScheduleAt(at Time, fn Handler) EventRef {
	if fn == nil {
		return EventRef{}
	}
	if at < s.now {
		at = s.now
	}
	ev := &event{at: at, seq: s.seq, fn: fn}
	s.seq++
	heap.Push(&s.queue, ev)
	return EventRef{ev: ev}
}

// ScheduleAfter queues fn to run delay after the current virtual time.
func (s *Scheduler) ScheduleAfter(delay Time, fn Handler) EventRef {
	if delay < 0 {
		delay = 0
	}
	return s.ScheduleAt(s.now+delay, fn)
}

// Stop halts the run loop after the currently executing event returns.
func (s *Scheduler) Stop() { s.stopped = true }

// step pops and runs the next event. It reports false when the queue is empty.
func (s *Scheduler) step() bool {
	for len(s.queue) > 0 {
		next, ok := heap.Pop(&s.queue).(*event)
		if !ok {
			return false
		}
		if next.stopped {
			continue
		}
		s.now = next.at
		s.processed++
		next.fn(s.now)
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called. It returns
// ErrStopped in the latter case so callers can distinguish the two.
func (s *Scheduler) Run() error {
	s.stopped = false
	for !s.stopped {
		if !s.step() {
			return nil
		}
	}
	return ErrStopped
}

// RunUntil executes events with timestamps up to and including deadline and
// then advances the clock to the deadline. Later events stay queued so the
// simulation can be resumed.
func (s *Scheduler) RunUntil(deadline Time) error {
	s.stopped = false
	for !s.stopped {
		if len(s.queue) == 0 {
			break
		}
		if s.queue[0].at > deadline {
			break
		}
		if !s.step() {
			break
		}
	}
	if s.stopped {
		return ErrStopped
	}
	if s.now < deadline {
		s.now = deadline
	}
	return nil
}
