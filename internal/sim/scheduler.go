package sim

import (
	"errors"
)

// ErrStopped is returned by Run when the scheduler is halted via Stop before
// the event queue drains.
var ErrStopped = errors.New("sim: scheduler stopped")

// Handler is the callback invoked when an event fires. The scheduler passes
// the current virtual time so handlers never need to capture the scheduler
// just to read the clock.
type Handler func(now Time)

// EventHandler is the allocation-free alternative to Handler: a component
// implements OnEvent once and schedules itself via ScheduleHandlerAt, so the
// hot path never materialises a closure per event.
type EventHandler interface {
	OnEvent(now Time)
}

// ArgHandler is the allocation-free variant for events that need to carry a
// payload (for example a link delivering a specific packet). Storing a
// pointer-shaped payload in the event's arg slot does not allocate.
type ArgHandler interface {
	OnEventArg(now Time, arg any)
}

// event slot states.
const (
	eventFree uint8 = iota
	eventQueued
	eventStopped
)

// event is one slot of the scheduler's pooled event arena. Slots are recycled
// through a free list; gen increments on every release so that stale
// EventRefs can never cancel or observe a slot's next occupant.
type event struct {
	at  Time
	seq uint64 // tie-breaker: FIFO among events scheduled for the same instant

	// Exactly one of fn / ah / h is set; fn wins, then ah, then h.
	fn  Handler
	ah  ArgHandler
	arg any
	h   EventHandler

	gen      uint32
	state    uint8
	nextFree int32 // next slot in the free list when state == eventFree
}

// EventRef identifies a scheduled event so it can be cancelled. The zero
// value is inert: cancelling it is a no-op. A ref to an event that already
// fired (or whose slot has been recycled) is detected via the slot's
// generation counter and ignored.
type EventRef struct {
	s   *Scheduler
	idx int32
	gen uint32
}

// Cancel prevents the referenced event from firing. Cancelling an event that
// already fired, a recycled slot, or a zero EventRef is safe and does nothing.
func (r EventRef) Cancel() {
	if r.s == nil {
		return
	}
	ev := &r.s.events[r.idx]
	if ev.gen != r.gen || ev.state != eventQueued {
		return
	}
	ev.state = eventStopped
}

// Pending reports whether the referenced event is still queued and will fire.
func (r EventRef) Pending() bool {
	if r.s == nil {
		return false
	}
	ev := &r.s.events[r.idx]
	return ev.gen == r.gen && ev.state == eventQueued
}

// timedEnt is one priority-queue entry, shared by both queue backends. The
// sort key (at, seq) is stored inline so comparisons never chase into the
// event arena.
type timedEnt struct {
	at  Time
	seq uint64
	idx int32
}

// entLess orders queue entries by (time, sequence number).
func entLess(a, b timedEnt) bool {
	return a.at < b.at || (a.at == b.at && a.seq < b.seq)
}

// Backend selects the scheduler's priority-queue implementation. Both
// backends dispatch events in exactly the same (time, seq) order, so results
// are bit-identical; they differ only in cost profile.
type Backend uint8

// Queue backends.
const (
	// BackendCalendar is the default: a self-resizing calendar queue with
	// O(1) amortized insert and pop. See calendarQueue.
	BackendCalendar Backend = iota
	// BackendHeap is the 4-ary min-heap the engine used before the
	// calendar queue landed. It is kept as the ordering oracle for
	// equivalence and invariance tests.
	BackendHeap
)

// SchedulerConfig tunes a Scheduler. The zero value selects the calendar
// queue; setting Backend to BackendHeap is the escape hatch invariance tests
// use to prove both backends dispatch identically.
type SchedulerConfig struct {
	Backend Backend
}

// Scheduler is a single-threaded discrete-event scheduler. It is not safe
// for concurrent use; the simulation model is single-threaded by design,
// which keeps runs deterministic.
//
// Events live in a pooled arena and are recycled through a free list, so a
// steady-state simulation schedules and fires events without allocating.
type Scheduler struct {
	now Time

	events   []event
	freeHead int32

	backend Backend
	heap    []timedEnt
	cal     calendarQueue

	seq     uint64
	stopped bool

	// processed counts events that have fired, for instrumentation.
	processed uint64
}

// NewScheduler returns a scheduler with its clock at zero, an empty queue
// and the default (calendar-queue) backend.
func NewScheduler() *Scheduler {
	return NewSchedulerWith(SchedulerConfig{})
}

// NewSchedulerWith returns a scheduler using the configured queue backend.
func NewSchedulerWith(cfg SchedulerConfig) *Scheduler {
	return &Scheduler{freeHead: -1, backend: cfg.Backend}
}

// Backend reports which queue backend the scheduler runs on.
func (s *Scheduler) Backend() Backend { return s.backend }

// Reset returns the scheduler to its initial state — clock at zero, empty
// queue, sequence counter restarted — while keeping the event arena and
// queue storage (and the calendar queue's tuned geometry) for reuse. Any
// still-pending events are discarded; every outstanding EventRef is
// invalidated via the usual generation bump. Callers that recycle
// schedulers across simulation runs use this to amortise the arena away.
func (s *Scheduler) Reset() {
	s.freeHead = -1
	for i := len(s.events) - 1; i >= 0; i-- {
		ev := &s.events[i]
		if ev.state != eventFree {
			ev.gen++
		}
		ev.state = eventFree
		ev.fn, ev.ah, ev.arg, ev.h = nil, nil, nil, nil
		ev.nextFree = s.freeHead
		s.freeHead = int32(i)
	}
	s.heap = s.heap[:0]
	s.cal.reset()
	s.now = 0
	s.seq = 0
	s.stopped = false
	s.processed = 0
}

// Now reports the current virtual time.
func (s *Scheduler) Now() Time { return s.now }

// Len reports the number of pending events (including cancelled ones that
// have not yet been discarded).
func (s *Scheduler) Len() int {
	if s.backend == BackendHeap {
		return len(s.heap)
	}
	return s.cal.count
}

// push inserts an entry into the configured queue backend.
func (s *Scheduler) push(e timedEnt) {
	if s.backend == BackendHeap {
		s.heapPush(e)
	} else {
		s.cal.insert(e)
	}
}

// peekMin returns the minimal live pending entry without removing it,
// discarding any cancelled entries in front of it. A cancelled timestamp
// must not be reported as pending: RunUntil bounds its deadline check on
// this peek, and treating a cancelled slot as runnable work would let step
// fire the next live event even when that event lies past the deadline.
func (s *Scheduler) peekMin() (timedEnt, bool) {
	for s.Len() > 0 {
		var top timedEnt
		if s.backend == BackendHeap {
			top = s.heap[0]
		} else {
			top, _ = s.cal.peek()
		}
		if s.events[top.idx].state == eventQueued {
			return top, true
		}
		s.popMin()
		s.release(top.idx)
	}
	return timedEnt{}, false
}

// popMin removes and returns the minimal pending entry. The caller must
// have checked Len() > 0.
func (s *Scheduler) popMin() timedEnt {
	if s.backend == BackendHeap {
		top := s.heap[0]
		s.heapPop()
		return top
	}
	return s.cal.pop()
}

// Processed reports how many events have fired so far.
func (s *Scheduler) Processed() uint64 { return s.processed }

// alloc pops a slot off the free list, growing the arena when it is empty.
func (s *Scheduler) alloc() int32 {
	if s.freeHead >= 0 {
		idx := s.freeHead
		s.freeHead = s.events[idx].nextFree
		return idx
	}
	s.events = append(s.events, event{})
	return int32(len(s.events) - 1)
}

// release recycles a slot. The generation bump invalidates every outstanding
// EventRef to the old occupant; clearing the handler fields drops any closure
// or payload reference so the arena does not pin garbage.
func (s *Scheduler) release(idx int32) {
	ev := &s.events[idx]
	ev.gen++
	ev.state = eventFree
	ev.fn, ev.ah, ev.arg, ev.h = nil, nil, nil, nil
	ev.nextFree = s.freeHead
	s.freeHead = idx
}

// schedule inserts one event with the given dispatch target.
func (s *Scheduler) schedule(at Time, fn Handler, ah ArgHandler, arg any, h EventHandler) EventRef {
	if at < s.now {
		at = s.now
	}
	idx := s.alloc()
	ev := &s.events[idx]
	ev.at = at
	ev.seq = s.seq
	ev.fn, ev.ah, ev.arg, ev.h = fn, ah, arg, h
	ev.state = eventQueued
	s.push(timedEnt{at: at, seq: s.seq, idx: idx})
	s.seq++
	return EventRef{s: s, idx: idx, gen: ev.gen}
}

// ScheduleAt queues fn to run at the absolute virtual time at. Events
// scheduled in the past run at the current time instead; the clock never
// moves backwards.
func (s *Scheduler) ScheduleAt(at Time, fn Handler) EventRef {
	if fn == nil {
		return EventRef{}
	}
	return s.schedule(at, fn, nil, nil, nil)
}

// ScheduleAfter queues fn to run delay after the current virtual time.
func (s *Scheduler) ScheduleAfter(delay Time, fn Handler) EventRef {
	if delay < 0 {
		delay = 0
	}
	return s.ScheduleAt(s.now+delay, fn)
}

// ScheduleHandlerAt queues h.OnEvent to run at the absolute virtual time at
// without allocating a closure.
func (s *Scheduler) ScheduleHandlerAt(at Time, h EventHandler) EventRef {
	if h == nil {
		return EventRef{}
	}
	return s.schedule(at, nil, nil, nil, h)
}

// ScheduleHandlerAfter queues h.OnEvent to run delay after the current
// virtual time.
func (s *Scheduler) ScheduleHandlerAfter(delay Time, h EventHandler) EventRef {
	if delay < 0 {
		delay = 0
	}
	return s.ScheduleHandlerAt(s.now+delay, h)
}

// ScheduleArgAt queues h.OnEventArg(now, arg) to run at the absolute virtual
// time at. Passing a pointer as arg does not allocate, so hot callers can
// attach a payload to the event for free.
func (s *Scheduler) ScheduleArgAt(at Time, h ArgHandler, arg any) EventRef {
	if h == nil {
		return EventRef{}
	}
	return s.schedule(at, nil, h, arg, nil)
}

// ScheduleArgAfter queues h.OnEventArg(now, arg) to run delay after the
// current virtual time.
func (s *Scheduler) ScheduleArgAfter(delay Time, h ArgHandler, arg any) EventRef {
	if delay < 0 {
		delay = 0
	}
	return s.ScheduleArgAt(s.now+delay, h, arg)
}

// heapPush inserts an entry into the 4-ary min-heap.
func (s *Scheduler) heapPush(e timedEnt) {
	h := append(s.heap, e)
	i := len(h) - 1
	for i > 0 {
		p := (i - 1) / 4
		if !entLess(h[i], h[p]) {
			break
		}
		h[i], h[p] = h[p], h[i]
		i = p
	}
	s.heap = h
}

// heapPop removes the minimum entry (the caller reads s.heap[0] first).
func (s *Scheduler) heapPop() {
	h := s.heap
	n := len(h) - 1
	h[0] = h[n]
	s.heap = h[:n]
	if n == 0 {
		return
	}
	h = h[:n]
	i := 0
	for {
		first := 4*i + 1
		if first >= n {
			break
		}
		min := first
		last := first + 4
		if last > n {
			last = n
		}
		for c := first + 1; c < last; c++ {
			if entLess(h[c], h[min]) {
				min = c
			}
		}
		if !entLess(h[min], h[i]) {
			break
		}
		h[i], h[min] = h[min], h[i]
		i = min
	}
}

// Stop halts the run loop after the currently executing event returns.
func (s *Scheduler) Stop() { s.stopped = true }

// step pops and runs the next event. It reports false when the queue is empty.
func (s *Scheduler) step() bool {
	for s.Len() > 0 {
		top := s.popMin()
		ev := &s.events[top.idx]
		if ev.state != eventQueued {
			// Cancelled while queued: recycle the slot and keep going.
			s.release(top.idx)
			continue
		}
		// Copy the dispatch target before releasing: the handler may
		// schedule new events, reusing (or growing) the arena.
		fn, ah, arg, h := ev.fn, ev.ah, ev.arg, ev.h
		s.release(top.idx)
		s.now = top.at
		s.processed++
		switch {
		case fn != nil:
			fn(s.now)
		case ah != nil:
			ah.OnEventArg(s.now, arg)
		default:
			h.OnEvent(s.now)
		}
		return true
	}
	return false
}

// Run executes events until the queue drains or Stop is called. It returns
// ErrStopped in the latter case so callers can distinguish the two.
func (s *Scheduler) Run() error {
	s.stopped = false
	for !s.stopped {
		if !s.step() {
			return nil
		}
	}
	return ErrStopped
}

// RunUntil executes events with timestamps up to and including deadline and
// then advances the clock to the deadline. Later events stay queued so the
// simulation can be resumed.
func (s *Scheduler) RunUntil(deadline Time) error {
	s.stopped = false
	for !s.stopped {
		top, ok := s.peekMin()
		if !ok || top.at > deadline {
			break
		}
		if !s.step() {
			break
		}
	}
	if s.stopped {
		return ErrStopped
	}
	if s.now < deadline {
		s.now = deadline
	}
	return nil
}
