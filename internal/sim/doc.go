// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine replaces the role NS-2 plays in the original MAFIC evaluation:
// it maintains a virtual clock, an ordered event queue, and a seeded source
// of randomness so that every experiment in this repository is reproducible
// bit-for-bit from its configuration.
//
// # Event pooling
//
// Events live in a pooled arena and are recycled through a free list the
// moment an event fires or a cancelled event is discarded, so a steady-state
// simulation schedules without allocating. Every slot carries a generation
// counter: an EventRef captures the generation at scheduling time, which
// makes cancelling an already-fired (and possibly re-occupied) slot a
// detectable no-op rather than a use-after-free on the next occupant.
//
// Hot callers should prefer the EventHandler / ArgHandler interface variants
// (ScheduleHandlerAt, ScheduleArgAt) over closure Handlers: a component
// implements the interface once and schedules itself with zero per-event
// allocations, attaching a pointer payload through the arg slot for free.
//
// # Calendar-queue scheduling
//
// The default priority queue is a calendar queue (R. Brown, CACM 1988):
// virtual time is divided into fixed-width windows mapped round-robin onto a
// power-of-two number of buckets, each bucket holding its events sorted by
// (time, sequence). Inserting indexes straight into the destination bucket
// and popping scans forward from the current window, so both operations are
// O(1) amortized — unlike a binary heap's O(log n) — which matters because
// event dispatch itself was the dominant CPU cost of large runs.
//
// Bucket sizing is self-tuning. The bucket count tracks the pending-event
// count (growing past two entries per bucket, shrinking below a quarter,
// with a power-of-two floor), keeping average occupancy near one. The bucket
// width tracks the average inter-event spacing observed at dequeue, checked
// every few thousand pops and rebuilt only when it has drifted at least 2x,
// so a workload with stable spacing settles after one retune and never
// rebuilds again. Both decisions are pure functions of the operation
// sequence — no wall clock, no randomness — so runs stay deterministic.
//
// # Determinism rules
//
// Dispatch order is total: events fire in ascending (time, sequence) order,
// where the sequence number is assigned at scheduling time. Ties at the same
// instant therefore fire in FIFO scheduling order, on every backend. The
// previous 4-ary min-heap is retained behind SchedulerConfig{Backend:
// BackendHeap} as the ordering oracle: equivalence tests drive identical
// event sequences through both backends and require identical dispatch, and
// the experiment layer's invariance suite reruns the whole scenario catalog
// on the heap to prove results are bit-identical.
package sim
