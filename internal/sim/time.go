package sim

import (
	"fmt"
	"time"
)

// Time is a virtual simulation timestamp measured in nanoseconds since the
// start of the simulation. It is deliberately distinct from time.Time: the
// simulator never consults the wall clock.
type Time int64

// Common time unit constants expressed as sim.Time deltas.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// FromDuration converts a time.Duration into a simulation time delta.
func FromDuration(d time.Duration) Time {
	return Time(d.Nanoseconds())
}

// Duration converts a simulation time delta into a time.Duration.
func (t Time) Duration() time.Duration {
	return time.Duration(int64(t))
}

// Seconds reports the timestamp as a floating-point number of seconds.
func (t Time) Seconds() float64 {
	return float64(t) / float64(Second)
}

// Add returns the timestamp shifted forward by d.
func (t Time) Add(d Time) Time {
	return t + d
}

// Sub returns the delta t-u.
func (t Time) Sub(u Time) Time {
	return t - u
}

// Before reports whether t occurs strictly before u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t occurs strictly after u.
func (t Time) After(u Time) bool { return t > u }

// String renders the timestamp with second precision for logs and test
// failure messages.
func (t Time) String() string {
	return fmt.Sprintf("%.6fs", t.Seconds())
}

// Rate converts a count accumulated over the window ending at t and starting
// at start into a per-second rate. It returns zero for empty or inverted
// windows so callers do not have to special-case division by zero.
func Rate(count float64, start, end Time) float64 {
	if end <= start {
		return 0
	}
	return count / (end - start).Seconds()
}
