// Package sim provides a deterministic discrete-event simulation engine.
//
// The engine replaces the role NS-2 plays in the original MAFIC evaluation:
// it maintains a virtual clock, an ordered event queue, and a seeded source
// of randomness so that every experiment in this repository is reproducible
// bit-for-bit from its configuration.
//
// # Event pooling and scheduling
//
// The scheduler stores events in a pooled arena ordered by a 4-ary min-heap
// specialised to (Time, sequence) keys. Slots are recycled through a free
// list the moment an event fires or a cancelled event is discarded, so a
// steady-state simulation schedules without allocating. Every slot carries a
// generation counter: an EventRef captures the generation at scheduling time,
// which makes cancelling an already-fired (and possibly re-occupied) slot a
// detectable no-op rather than a use-after-free on the next occupant.
//
// Hot callers should prefer the EventHandler / ArgHandler interface variants
// (ScheduleHandlerAt, ScheduleArgAt) over closure Handlers: a component
// implements the interface once and schedules itself with zero per-event
// allocations, attaching a pointer payload through the arg slot for free.
package sim

import (
	"fmt"
	"time"
)

// Time is a virtual simulation timestamp measured in nanoseconds since the
// start of the simulation. It is deliberately distinct from time.Time: the
// simulator never consults the wall clock.
type Time int64

// Common time unit constants expressed as sim.Time deltas.
const (
	Nanosecond  Time = 1
	Microsecond      = 1000 * Nanosecond
	Millisecond      = 1000 * Microsecond
	Second           = 1000 * Millisecond
)

// FromDuration converts a time.Duration into a simulation time delta.
func FromDuration(d time.Duration) Time {
	return Time(d.Nanoseconds())
}

// Duration converts a simulation time delta into a time.Duration.
func (t Time) Duration() time.Duration {
	return time.Duration(int64(t))
}

// Seconds reports the timestamp as a floating-point number of seconds.
func (t Time) Seconds() float64 {
	return float64(t) / float64(Second)
}

// Add returns the timestamp shifted forward by d.
func (t Time) Add(d Time) Time {
	return t + d
}

// Sub returns the delta t-u.
func (t Time) Sub(u Time) Time {
	return t - u
}

// Before reports whether t occurs strictly before u.
func (t Time) Before(u Time) bool { return t < u }

// After reports whether t occurs strictly after u.
func (t Time) After(u Time) bool { return t > u }

// String renders the timestamp with second precision for logs and test
// failure messages.
func (t Time) String() string {
	return fmt.Sprintf("%.6fs", t.Seconds())
}

// Rate converts a count accumulated over the window ending at t and starting
// at start into a per-second rate. It returns zero for empty or inverted
// windows so callers do not have to special-case division by zero.
func Rate(count float64, start, end Time) float64 {
	if end <= start {
		return 0
	}
	return count / (end - start).Seconds()
}
