package sim

// This file is the scheduler's checkpoint surface. A snapshot never
// serializes the event arena or queue geometry directly: the restore path
// rebuilds the scenario deterministically (recreating every build-time event
// with its original sequence number), then uses ReconcilePending to cancel
// build-time events that had already fired before the snapshot, RestoreEvent
// to re-insert events that were scheduled at runtime, and RestoreClock to
// land the clock, sequence counter and processed-event count on the
// checkpointed values. Queue geometry may differ after a restore, but both
// backends always dispatch the globally minimal (time, seq) entry, so the
// difference is unobservable.

// PendingEvent describes one queued event to a checkpoint capture. Exactly
// one of Closure, ArgH or H identifies the dispatch target; Arg carries the
// payload when ArgH is set.
type PendingEvent struct {
	At      Time
	Seq     uint64
	Closure bool // the event dispatches a func literal (build-time only)
	ArgH    ArgHandler
	Arg     any
	H       EventHandler
}

// Seq reports the sequence number the next scheduled event will receive.
// Recording it at the build/run boundary lets a checkpoint distinguish
// build-time events (recreated by rebuilding the scenario) from runtime
// events (re-inserted explicitly).
func (s *Scheduler) Seq() uint64 { return s.seq }

// ForEachPending calls fn for every queued, non-cancelled event, in arena
// order. Callers needing a deterministic order sort by Seq afterwards.
func (s *Scheduler) ForEachPending(fn func(PendingEvent)) {
	for i := range s.events {
		ev := &s.events[i]
		if ev.state != eventQueued {
			continue
		}
		fn(PendingEvent{
			At:      ev.at,
			Seq:     ev.seq,
			Closure: ev.fn != nil,
			ArgH:    ev.ah,
			Arg:     ev.arg,
			H:       ev.h,
		})
	}
}

// ReconcilePending cancels every queued event whose sequence number is below
// bound and for which keep reports false. A rebuild schedules every
// build-time event again; the ones the original run had already dispatched
// before the snapshot must not fire twice, so the restore cancels them. The
// queue backends discard cancelled entries silently, without touching the
// processed-event count.
func (s *Scheduler) ReconcilePending(bound uint64, keep func(seq uint64) bool) {
	for i := range s.events {
		ev := &s.events[i]
		if ev.state == eventQueued && ev.seq < bound && !keep(ev.seq) {
			ev.state = eventStopped
		}
	}
}

// RestoreEvent re-inserts a checkpointed event with an explicit dispatch time
// and sequence number. Unlike the Schedule methods it never clamps at to the
// current clock and never consumes a sequence number of its own; the caller
// finishes the restore with RestoreClock.
func (s *Scheduler) RestoreEvent(at Time, seq uint64, fn Handler, ah ArgHandler, arg any, h EventHandler) EventRef {
	idx := s.alloc()
	ev := &s.events[idx]
	ev.at = at
	ev.seq = seq
	ev.fn, ev.ah, ev.arg, ev.h = fn, ah, arg, h
	ev.state = eventQueued
	s.push(timedEnt{at: at, seq: seq, idx: idx})
	return EventRef{s: s, idx: idx, gen: ev.gen}
}

// RestoreClock force-sets the clock, the next sequence number and the
// processed-event count to checkpointed values. Every pending event must lie
// at or after now.
func (s *Scheduler) RestoreClock(now Time, nextSeq, processed uint64) {
	s.now = now
	s.seq = nextSeq
	s.processed = processed
}

// CheckpointTypes lists this package's structs that carry snapshotted state.
// The checkpoint coverage guard reflects over them so a new field cannot ship
// without either joining the snapshot or being exempted explicitly.
var CheckpointTypes = []any{
	Scheduler{},
	event{},
	RNG{},
	countingSource{},
}
