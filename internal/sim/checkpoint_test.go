package sim

import (
	"testing"
)

// TestRNGDrawDoesNotAllocate pins that the draw-counting wrapper behind the
// checkpoint layer adds no allocation to the RNG hot path: every simulation
// draw funnels through countingSource.Uint64, which must stay free.
func TestRNGDrawDoesNotAllocate(t *testing.T) {
	rng := NewRNG(7)
	fork := rng.Fork()
	allocs := testing.AllocsPerRun(200, func() {
		_ = rng.Float64()
		_ = rng.Intn(17)
		_ = rng.Uint64()
		_ = fork.Exponential(2.0)
		_ = fork.Bool(0.5)
	})
	if allocs != 0 {
		t.Fatalf("rng draws allocated %.1f times per op with the counting wrapper", allocs)
	}
}

// TestCheckpointSurfaceDoesNotDisturbHotPath pins that merely having the
// checkpoint read API available changes nothing: walking pending events and
// reading the clock allocates nothing and leaves dispatch untouched.
func TestCheckpointSurfaceDoesNotDisturbHotPath(t *testing.T) {
	s := NewScheduler()
	h := &schedulingHandler{s: s, left: 64}
	s.ScheduleHandlerAt(1, h)
	if err := s.Run(); err != nil {
		t.Fatalf("warmup run: %v", err)
	}
	s.ScheduleHandlerAt(s.Now()+1, &schedulingHandler{s: s, left: 1})
	allocs := testing.AllocsPerRun(100, func() {
		n := 0
		s.ForEachPending(func(PendingEvent) { n++ })
		_ = s.Seq()
		_ = s.Processed()
	})
	if allocs != 0 {
		t.Fatalf("checkpoint read surface allocated %.1f times per walk", allocs)
	}
}

// TestReconcileAndRestoreRoundTrip exercises the checkpoint scheduler
// surface end to end at unit scale: schedule build-time events, drop the one
// a snapshot says was already consumed, land the clock, re-insert a runtime
// event with an explicit sequence number, and verify (time, seq) dispatch
// order across the mix.
func TestReconcileAndRestoreRoundTrip(t *testing.T) {
	s := NewScheduler()
	var fired []int
	mk := func(id int) Handler { return func(Time) { fired = append(fired, id) } }

	// Build-time events receive seqs 0, 1, 2 in schedule order.
	s.ScheduleAt(10, mk(1)) // kept
	s.ScheduleAt(20, mk(2)) // consumed before the snapshot: cancelled below
	s.ScheduleAt(30, mk(3)) // kept
	bound := s.Seq()

	s.ReconcilePending(bound, func(seq uint64) bool { return seq != 1 })
	s.RestoreClock(5, bound+10, 7)

	if got := s.Now(); got != 5 {
		t.Fatalf("restored clock at %v, want 5", got)
	}
	if got := s.Processed(); got != 7 {
		t.Fatalf("restored processed %d, want 7", got)
	}

	// A runtime event restored at the same timestamp as a kept build event:
	// the build event carries the lower sequence number and must fire first.
	s.RestoreEvent(30, bound+1, mk(4), nil, nil, nil)

	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(fired) != 3 || fired[0] != 1 || fired[1] != 3 || fired[2] != 4 {
		t.Fatalf("dispatched %v, want [1 3 4] (cancelled event skipped, tie at t=30 broken by seq)", fired)
	}
	if s.Seq() <= bound {
		t.Fatalf("sequence counter went backwards: %d <= %d", s.Seq(), bound)
	}
	if got := s.Processed(); got != 7+3 {
		t.Fatalf("processed %d after run, want %d", got, 7+3)
	}
}

// TestFastForwardStreamValidation pins the RNG restore error paths: a seed
// mismatch, a draw-count regression and an out-of-range stream index must all
// fail loudly instead of silently desynchronizing the resumed run.
func TestFastForwardStreamValidation(t *testing.T) {
	rng := NewRNG(42)
	fork := rng.Fork()
	for i := 0; i < 5; i++ {
		_ = fork.Uint64()
	}
	seed, draws := rng.StreamState(1)
	if draws != 5 {
		t.Fatalf("fork recorded %d draws, want 5", draws)
	}
	if err := rng.FastForwardStream(1, seed+1, draws); err == nil {
		t.Error("seed mismatch accepted")
	}
	if err := rng.FastForwardStream(1, seed, draws-1); err == nil {
		t.Error("draw-count regression accepted")
	}
	if err := rng.FastForwardStream(rng.StreamCount(), seed, draws); err == nil {
		t.Error("out-of-range stream index accepted")
	}
	if err := rng.FastForwardStream(1, seed, draws+3); err != nil {
		t.Fatalf("legitimate fast-forward rejected: %v", err)
	}
	if _, got := rng.StreamState(1); got != draws+3 {
		t.Fatalf("fast-forward landed on %d draws, want %d", got, draws+3)
	}
}
