package sim

import (
	"math"
	"math/rand"
)

// RNG wraps a seeded pseudo-random source with the distributions the traffic
// generators and the MAFIC dropper need. Each simulation owns exactly one RNG
// so that a scenario's seed fully determines its outcome.
type RNG struct {
	r *rand.Rand
}

// NewRNG returns a generator seeded with seed.
func NewRNG(seed int64) *RNG {
	return &RNG{r: rand.New(rand.NewSource(seed))}
}

// Fork derives an independent generator from this one. Substreams keep
// component behaviour stable when unrelated components are added or removed
// from a scenario.
func (g *RNG) Fork() *RNG {
	return NewRNG(g.r.Int63())
}

// Float64 returns a uniform value in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform integer in [0,n). It returns 0 when n <= 0.
func (g *RNG) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return g.r.Intn(n)
}

// Int63 returns a non-negative uniform 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Uint64 returns a uniform 64-bit value.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.r.Float64() < p
}

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Exponential returns a sample from an exponential distribution with the
// given mean. It returns 0 for non-positive means.
func (g *RNG) Exponential(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return g.r.ExpFloat64() * mean
}

// Normal returns a sample from a normal distribution with the given mean and
// standard deviation.
func (g *RNG) Normal(mean, stddev float64) float64 {
	return g.r.NormFloat64()*stddev + mean
}

// Pareto returns a sample from a bounded Pareto distribution with shape
// alpha and minimum xm. Heavy-tailed flow sizes use this.
func (g *RNG) Pareto(xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		return 0
	}
	u := g.r.Float64()
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	return xm / math.Pow(u, 1/alpha)
}

// Jitter returns base scaled by a uniform factor in [1-frac, 1+frac]. It is
// used to desynchronise flow start times and sending intervals.
func (g *RNG) Jitter(base float64, frac float64) float64 {
	if frac <= 0 {
		return base
	}
	return base * (1 + (g.r.Float64()*2-1)*frac)
}
