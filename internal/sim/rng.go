package sim

import (
	"fmt"
	"math"
	"math/rand"
)

// countingSource wraps the standard library generator and counts every draw
// so a checkpoint can record how far each stream has advanced. Int63 and
// Uint64 both advance the underlying generator by exactly one step, so the
// (seed, draws) pair alone pins the stream state.
type countingSource struct {
	src   rand.Source64
	seed  int64
	draws uint64
}

func (c *countingSource) Int63() int64 {
	c.draws++
	return c.src.Int63()
}

func (c *countingSource) Uint64() uint64 {
	c.draws++
	return c.src.Uint64()
}

func (c *countingSource) Seed(seed int64) {
	c.src.Seed(seed)
	c.seed = seed
	c.draws = 0
}

// rngRegistry tracks every stream forked from one root, in creation order.
// Rebuilding a scenario deterministically recreates the same streams in the
// same order, so a checkpoint only needs each stream's seed and draw count.
type rngRegistry struct {
	streams []*RNG
}

// RNG wraps a seeded pseudo-random source with the distributions the traffic
// generators and the MAFIC dropper need. Each simulation owns exactly one RNG
// so that a scenario's seed fully determines its outcome.
type RNG struct {
	r   *rand.Rand
	cs  countingSource // embedded by value: one allocation per stream, not two
	reg *rngRegistry
}

// NewRNG returns a generator seeded with seed, rooting a fresh stream
// registry.
func NewRNG(seed int64) *RNG {
	return newRNGIn(&rngRegistry{}, seed)
}

func newRNGIn(reg *rngRegistry, seed int64) *RNG {
	g := &RNG{reg: reg, cs: countingSource{src: rand.NewSource(seed).(rand.Source64), seed: seed}}
	g.r = rand.New(&g.cs)
	reg.streams = append(reg.streams, g)
	return g
}

// Fork derives an independent generator from this one. Substreams keep
// component behaviour stable when unrelated components are added or removed
// from a scenario. The fork joins the parent's stream registry.
func (g *RNG) Fork() *RNG {
	return newRNGIn(g.reg, g.r.Int63())
}

// StreamCount reports how many streams (the root plus every fork, forks of
// forks included) exist in this generator's registry.
func (g *RNG) StreamCount() int { return len(g.reg.streams) }

// StreamState returns the seed and draw count of stream i in creation order.
func (g *RNG) StreamState(i int) (seed int64, draws uint64) {
	cs := &g.reg.streams[i].cs
	return cs.seed, cs.draws
}

// FastForwardStream advances stream i to the checkpointed draw count after
// verifying that the rebuilt stream matches the snapshot: same seed, and not
// already past the target. Both conditions fail only when the rebuild
// diverged from the run that took the snapshot.
func (g *RNG) FastForwardStream(i int, seed int64, draws uint64) error {
	if i < 0 || i >= len(g.reg.streams) {
		return fmt.Errorf("sim: rng stream %d out of range (have %d)", i, len(g.reg.streams))
	}
	cs := &g.reg.streams[i].cs
	if cs.seed != seed {
		return fmt.Errorf("sim: rng stream %d seed mismatch: rebuilt %d, snapshot %d", i, cs.seed, seed)
	}
	if draws < cs.draws {
		return fmt.Errorf("sim: rng stream %d already at %d draws, snapshot has %d", i, cs.draws, draws)
	}
	for cs.draws < draws {
		cs.src.Uint64()
		cs.draws++
	}
	return nil
}

// Float64 returns a uniform value in [0,1).
func (g *RNG) Float64() float64 { return g.r.Float64() }

// Intn returns a uniform integer in [0,n). It returns 0 when n <= 0.
func (g *RNG) Intn(n int) int {
	if n <= 0 {
		return 0
	}
	return g.r.Intn(n)
}

// Int63 returns a non-negative uniform 63-bit integer.
func (g *RNG) Int63() int64 { return g.r.Int63() }

// Uint64 returns a uniform 64-bit value.
func (g *RNG) Uint64() uint64 { return g.r.Uint64() }

// Bool returns true with probability p.
func (g *RNG) Bool(p float64) bool {
	if p <= 0 {
		return false
	}
	if p >= 1 {
		return true
	}
	return g.r.Float64() < p
}

// Perm returns a random permutation of [0,n).
func (g *RNG) Perm(n int) []int { return g.r.Perm(n) }

// Exponential returns a sample from an exponential distribution with the
// given mean. It returns 0 for non-positive means.
func (g *RNG) Exponential(mean float64) float64 {
	if mean <= 0 {
		return 0
	}
	return g.r.ExpFloat64() * mean
}

// Normal returns a sample from a normal distribution with the given mean and
// standard deviation.
func (g *RNG) Normal(mean, stddev float64) float64 {
	return g.r.NormFloat64()*stddev + mean
}

// Pareto returns a sample from a bounded Pareto distribution with shape
// alpha and minimum xm. Heavy-tailed flow sizes use this.
func (g *RNG) Pareto(xm, alpha float64) float64 {
	if xm <= 0 || alpha <= 0 {
		return 0
	}
	u := g.r.Float64()
	if u == 0 {
		u = math.SmallestNonzeroFloat64
	}
	return xm / math.Pow(u, 1/alpha)
}

// Jitter returns base scaled by a uniform factor in [1-frac, 1+frac]. It is
// used to desynchronise flow start times and sending intervals.
func (g *RNG) Jitter(base float64, frac float64) float64 {
	if frac <= 0 {
		return base
	}
	return base * (1 + (g.r.Float64()*2-1)*frac)
}
