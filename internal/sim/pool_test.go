package sim

import (
	"testing"
)

// TestStaleRefCannotCancelRecycledSlot guards the generation counter: after
// an event fires, its arena slot is recycled; a ref to the fired event must
// not be able to cancel the slot's next occupant.
func TestStaleRefCannotCancelRecycledSlot(t *testing.T) {
	s := NewScheduler()

	fired1 := false
	ref1 := s.ScheduleAt(1, func(Time) { fired1 = true })
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !fired1 {
		t.Fatal("first event did not fire")
	}
	if ref1.Pending() {
		t.Fatal("ref to fired event still pending")
	}

	fired2 := false
	ref2 := s.ScheduleAt(2, func(Time) { fired2 = true })
	if ref2.idx != ref1.idx {
		t.Fatalf("expected slot reuse: first %d, second %d", ref1.idx, ref2.idx)
	}
	// The stale ref addresses the same slot but an older generation.
	ref1.Cancel()
	if !ref2.Pending() {
		t.Fatal("stale Cancel cancelled the slot's new occupant")
	}
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if !fired2 {
		t.Fatal("second event did not fire")
	}
}

// TestCancelledSlotRecycled verifies a cancelled event's slot returns to the
// free list once the queue discards it, and that cancelling twice is safe.
func TestCancelledSlotRecycled(t *testing.T) {
	s := NewScheduler()
	fired := false
	ref := s.ScheduleAt(5, func(Time) { fired = true })
	ref.Cancel()
	ref.Cancel() // idempotent
	if ref.Pending() {
		t.Fatal("cancelled event still pending")
	}
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
	if s.freeHead < 0 {
		t.Fatal("cancelled event's slot was not recycled")
	}
}

// schedulingHandler reschedules itself a fixed number of times, modelling a
// periodic timer driven through the allocation-free EventHandler interface.
type schedulingHandler struct {
	s     *Scheduler
	left  int
	fired int
}

func (h *schedulingHandler) OnEvent(now Time) {
	h.fired++
	if h.left--; h.left > 0 {
		h.s.ScheduleHandlerAt(now+1, h)
	}
}

// TestScheduleHandlerSteadyStateDoesNotAllocate pins the zero-allocation
// claim on every backend: once the arena and queue storage are warm (the
// calendar queue's first width retune included), an interface-based
// schedule/fire cycle performs no heap allocation.
func TestScheduleHandlerSteadyStateDoesNotAllocate(t *testing.T) {
	for _, b := range backends {
		t.Run(b.name, func(t *testing.T) {
			s := NewSchedulerWith(SchedulerConfig{Backend: b.backend})
			// Warm up the arena and queue storage; running past
			// calRetunePops settles the calendar width for the uniform
			// spacing the measured loop uses.
			warm := &schedulingHandler{s: s, left: calRetunePops + 64}
			s.ScheduleHandlerAt(1, warm)
			if err := s.Run(); err != nil {
				t.Fatalf("warmup run: %v", err)
			}

			h := &schedulingHandler{s: s, left: 1}
			allocs := testing.AllocsPerRun(100, func() {
				h.left = 1
				s.ScheduleHandlerAt(s.Now()+1, h)
				if err := s.Run(); err != nil {
					t.Fatalf("run: %v", err)
				}
			})
			if allocs != 0 {
				t.Fatalf("steady-state schedule/fire allocated %.1f times per op", allocs)
			}
		})
	}
}

// TestOrderingStress verifies every queue backend yields events in
// (time, FIFO) order under a large interleaved workload. It replaces the
// heap-specific stress test so the guarantee keeps being checked against
// whichever backend is configured.
func TestOrderingStress(t *testing.T) {
	for _, b := range backends {
		t.Run(b.name, func(t *testing.T) {
			s := NewSchedulerWith(SchedulerConfig{Backend: b.backend})
			rng := NewRNG(42)
			const n = 5000

			type stamp struct {
				at  Time
				seq int
			}
			var fired []stamp
			for i := 0; i < n; i++ {
				at := Time(rng.Intn(100))
				seq := i
				s.ScheduleAt(at, func(now Time) {
					fired = append(fired, stamp{at: now, seq: seq})
				})
			}
			if err := s.Run(); err != nil {
				t.Fatalf("run: %v", err)
			}
			if len(fired) != n {
				t.Fatalf("fired %d of %d events", len(fired), n)
			}
			for i := 1; i < len(fired); i++ {
				prev, cur := fired[i-1], fired[i]
				if cur.at < prev.at {
					t.Fatalf("event %d fired at %v after %v", i, cur.at, prev.at)
				}
				if cur.at == prev.at && cur.seq < prev.seq {
					t.Fatalf("FIFO violated at %v: seq %d before %d", cur.at, prev.seq, cur.seq)
				}
			}
		})
	}
}

// TestArgHandlerPayload verifies ScheduleArgAt delivers the payload pointer
// unchanged.
type payloadRecorder struct{ got []any }

func (r *payloadRecorder) OnEventArg(_ Time, arg any) { r.got = append(r.got, arg) }

func TestArgHandlerPayload(t *testing.T) {
	s := NewScheduler()
	r := &payloadRecorder{}
	a, b := new(int), new(int)
	s.ScheduleArgAt(2, r, b)
	s.ScheduleArgAt(1, r, a)
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	if len(r.got) != 2 || r.got[0] != a || r.got[1] != b {
		t.Fatalf("payloads delivered wrong: %v", r.got)
	}
}
