package sim

import (
	"fmt"
	"testing"
)

// backends lists every queue backend under test, calendar (the default)
// first. Equivalence tests compare the others against BackendHeap, the
// ordering oracle.
var backends = []struct {
	name    string
	backend Backend
}{
	{name: "calendar", backend: BackendCalendar},
	{name: "heap", backend: BackendHeap},
}

// eqRec is one dispatched event of an equivalence script: the virtual time
// it fired at and its creation-order identity.
type eqRec struct {
	at Time
	id int
}

// runEquivScript drives a pseudo-random event workload — initial burst,
// events scheduling further events, same-timestamp bursts, and random
// cancellations — through a scheduler with the given backend and returns
// the dispatch sequence. Every random choice is drawn from a scheduler-local
// RNG consumed in dispatch order, so two backends produce identical scripts
// exactly as long as they dispatch identically; the first divergence
// cascades into the recorded sequences and fails the comparison.
func runEquivScript(t *testing.T, backend Backend, seed int64, spread int) []eqRec {
	t.Helper()
	s := NewSchedulerWith(SchedulerConfig{Backend: backend})
	rng := NewRNG(seed)

	var fired []eqRec
	var refs []EventRef
	nextID := 0
	budget := 20000

	var newEvent func(at Time)
	newEvent = func(at Time) {
		id := nextID
		nextID++
		refs = append(refs, s.ScheduleAt(at, func(now Time) {
			fired = append(fired, eqRec{at: now, id: id})
			// Chain: most events schedule successors, stressing inserts
			// into an actively draining queue.
			for k := rng.Intn(3); k > 0 && budget > 0; k-- {
				budget--
				newEvent(now + Time(rng.Intn(spread)))
			}
			// Same-timestamp burst: FIFO tie-breaking must hold.
			if rng.Intn(4) == 0 && budget > 0 {
				budget--
				newEvent(now)
			}
			// Random cancellation, including of already-fired refs
			// (which must be a no-op on every backend).
			if rng.Intn(3) == 0 {
				refs[rng.Intn(len(refs))].Cancel()
			}
		}))
	}
	for i := 0; i < 500; i++ {
		newEvent(Time(rng.Intn(spread)))
	}
	if err := s.Run(); err != nil {
		t.Fatalf("run: %v", err)
	}
	return fired
}

// TestBackendEquivalence is the scheduler-level property test: identical
// random event sequences (inserts, cancellations, same-timestamp bursts,
// dynamic rescheduling) dispatched through the heap and the calendar queue
// must yield identical order. The dense spread keeps many events per bucket;
// the sparse spread forces empty-window scans, direct-search jumps and
// width retunes.
func TestBackendEquivalence(t *testing.T) {
	for _, seed := range []int64{1, 7, 42} {
		for _, spread := range []int{50, 200_000} {
			t.Run(fmt.Sprintf("seed%d_spread%d", seed, spread), func(t *testing.T) {
				oracle := runEquivScript(t, BackendHeap, seed, spread)
				got := runEquivScript(t, BackendCalendar, seed, spread)
				if len(got) != len(oracle) {
					t.Fatalf("calendar fired %d events, heap fired %d", len(got), len(oracle))
				}
				for i := range oracle {
					if got[i] != oracle[i] {
						t.Fatalf("dispatch %d diverges: calendar %+v, heap %+v", i, got[i], oracle[i])
					}
				}
			})
		}
	}
}

// TestScanRewindAfterRunUntil pins the calendar queue's re-anchoring path:
// peeking at a far-future event advances the window scan; an event scheduled
// afterwards at an earlier time must still fire first.
func TestScanRewindAfterRunUntil(t *testing.T) {
	for _, b := range backends {
		t.Run(b.name, func(t *testing.T) {
			s := NewSchedulerWith(SchedulerConfig{Backend: b.backend})
			var fired []Time
			record := func(now Time) { fired = append(fired, now) }
			s.ScheduleAt(10*Second, record)
			if err := s.RunUntil(1 * Second); err != nil {
				t.Fatalf("run until: %v", err)
			}
			if len(fired) != 0 || s.Now() != 1*Second {
				t.Fatalf("after RunUntil: fired %v, now %v", fired, s.Now())
			}
			s.ScheduleAt(1500*Millisecond, record)
			if err := s.Run(); err != nil {
				t.Fatalf("run: %v", err)
			}
			want := []Time{1500 * Millisecond, 10 * Second}
			if len(fired) != 2 || fired[0] != want[0] || fired[1] != want[1] {
				t.Fatalf("fired %v, want %v", fired, want)
			}
		})
	}
}

// TestResetRecyclesScheduler verifies Reset discards pending events,
// invalidates outstanding refs, restarts the clock, and leaves the scheduler
// fully usable.
func TestResetRecyclesScheduler(t *testing.T) {
	for _, b := range backends {
		t.Run(b.name, func(t *testing.T) {
			s := NewSchedulerWith(SchedulerConfig{Backend: b.backend})
			stale := false
			ref := s.ScheduleAt(5, func(Time) { stale = true })
			s.ScheduleAt(1, func(Time) {})
			if err := s.RunUntil(2); err != nil {
				t.Fatalf("run until: %v", err)
			}

			s.Reset()
			if s.Now() != 0 || s.Len() != 0 || s.Processed() != 0 {
				t.Fatalf("after reset: now %v len %d processed %d", s.Now(), s.Len(), s.Processed())
			}
			if ref.Pending() {
				t.Fatal("ref to discarded event still pending")
			}
			ref.Cancel() // must be a detected-stale no-op

			fired := false
			s.ScheduleAt(3, func(Time) { fired = true })
			if err := s.Run(); err != nil {
				t.Fatalf("run after reset: %v", err)
			}
			if stale {
				t.Fatal("event discarded by Reset fired anyway")
			}
			if !fired || s.Now() != 3 {
				t.Fatalf("post-reset event: fired %v now %v", fired, s.Now())
			}
		})
	}
}
