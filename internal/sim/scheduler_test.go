package sim

import (
	"errors"
	"math"
	"sort"
	"testing"
	"testing/quick"
	"time"
)

func TestTimeConversions(t *testing.T) {
	tests := []struct {
		name string
		give time.Duration
		want Time
	}{
		{name: "zero", give: 0, want: 0},
		{name: "one millisecond", give: time.Millisecond, want: Millisecond},
		{name: "one second", give: time.Second, want: Second},
		{name: "composite", give: 2*time.Second + 500*time.Millisecond, want: 2*Second + 500*Millisecond},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			got := FromDuration(tt.give)
			if got != tt.want {
				t.Fatalf("FromDuration(%v) = %v, want %v", tt.give, got, tt.want)
			}
			if got.Duration() != tt.give {
				t.Fatalf("round trip mismatch: %v != %v", got.Duration(), tt.give)
			}
		})
	}
}

func TestTimeSeconds(t *testing.T) {
	if got := (2*Second + 500*Millisecond).Seconds(); math.Abs(got-2.5) > 1e-12 {
		t.Fatalf("Seconds() = %v, want 2.5", got)
	}
}

func TestTimeComparisons(t *testing.T) {
	a, b := Time(10), Time(20)
	if !a.Before(b) || b.Before(a) {
		t.Fatal("Before comparison wrong")
	}
	if !b.After(a) || a.After(b) {
		t.Fatal("After comparison wrong")
	}
	if a.Add(10) != b {
		t.Fatal("Add wrong")
	}
	if b.Sub(a) != 10 {
		t.Fatal("Sub wrong")
	}
}

func TestRate(t *testing.T) {
	tests := []struct {
		name       string
		count      float64
		start, end Time
		want       float64
	}{
		{name: "simple", count: 100, start: 0, end: Second, want: 100},
		{name: "half second", count: 50, start: 0, end: 500 * Millisecond, want: 100},
		{name: "empty window", count: 50, start: Second, end: Second, want: 0},
		{name: "inverted window", count: 50, start: 2 * Second, end: Second, want: 0},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if got := Rate(tt.count, tt.start, tt.end); math.Abs(got-tt.want) > 1e-9 {
				t.Fatalf("Rate = %v, want %v", got, tt.want)
			}
		})
	}
}

func TestSchedulerOrdersEventsByTime(t *testing.T) {
	s := NewScheduler()
	var fired []Time
	s.ScheduleAt(30, func(now Time) { fired = append(fired, now) })
	s.ScheduleAt(10, func(now Time) { fired = append(fired, now) })
	s.ScheduleAt(20, func(now Time) { fired = append(fired, now) })

	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	want := []Time{10, 20, 30}
	if len(fired) != len(want) {
		t.Fatalf("fired %d events, want %d", len(fired), len(want))
	}
	for i := range want {
		if fired[i] != want[i] {
			t.Fatalf("event %d fired at %v, want %v", i, fired[i], want[i])
		}
	}
}

func TestSchedulerFIFOWithinSameInstant(t *testing.T) {
	s := NewScheduler()
	var order []int
	for i := 0; i < 10; i++ {
		i := i
		s.ScheduleAt(5, func(Time) { order = append(order, i) })
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !sort.IntsAreSorted(order) {
		t.Fatalf("same-instant events fired out of order: %v", order)
	}
}

func TestSchedulerScheduleAfter(t *testing.T) {
	s := NewScheduler()
	var at Time
	s.ScheduleAt(100, func(now Time) {
		s.ScheduleAfter(50, func(inner Time) { at = inner })
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if at != 150 {
		t.Fatalf("nested event fired at %v, want 150", at)
	}
}

func TestSchedulerPastEventsClampToNow(t *testing.T) {
	s := NewScheduler()
	var at Time
	s.ScheduleAt(100, func(now Time) {
		s.ScheduleAt(10, func(inner Time) { at = inner })
	})
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if at != 100 {
		t.Fatalf("past-dated event fired at %v, want clamp to 100", at)
	}
	if s.Now() != 100 {
		t.Fatalf("clock = %v, want 100", s.Now())
	}
}

func TestSchedulerCancel(t *testing.T) {
	s := NewScheduler()
	fired := false
	ref := s.ScheduleAt(10, func(Time) { fired = true })
	if !ref.Pending() {
		t.Fatal("event should be pending before run")
	}
	ref.Cancel()
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if fired {
		t.Fatal("cancelled event fired")
	}
	if ref.Pending() {
		t.Fatal("cancelled event still reports pending")
	}
}

func TestSchedulerCancelZeroRef(t *testing.T) {
	var ref EventRef
	ref.Cancel() // must not panic
	if ref.Pending() {
		t.Fatal("zero ref reports pending")
	}
}

func TestSchedulerStop(t *testing.T) {
	s := NewScheduler()
	count := 0
	for i := 0; i < 10; i++ {
		s.ScheduleAt(Time(i), func(Time) {
			count++
			if count == 3 {
				s.Stop()
			}
		})
	}
	err := s.Run()
	if !errors.Is(err, ErrStopped) {
		t.Fatalf("Run returned %v, want ErrStopped", err)
	}
	if count != 3 {
		t.Fatalf("processed %d events before stop, want 3", count)
	}
}

func TestSchedulerRunUntil(t *testing.T) {
	s := NewScheduler()
	var fired []Time
	for _, at := range []Time{10, 20, 30, 40} {
		at := at
		s.ScheduleAt(at, func(now Time) { fired = append(fired, now) })
	}
	if err := s.RunUntil(25); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if len(fired) != 2 {
		t.Fatalf("fired %d events, want 2", len(fired))
	}
	if s.Now() != 25 {
		t.Fatalf("clock = %v, want 25", s.Now())
	}
	// Resume and drain the rest.
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(fired) != 4 {
		t.Fatalf("fired %d events total, want 4", len(fired))
	}
	if s.Processed() != 4 {
		t.Fatalf("Processed() = %d, want 4", s.Processed())
	}
}

// TestSchedulerRunUntilCancelledEventDoesNotOvershoot pins a fixed bug: a
// cancelled event sitting before the deadline must not be mistaken for
// runnable work. RunUntil used to see its timestamp, call step, and step —
// which skips cancelled slots but always fires one live event — would then
// execute an event PAST the deadline, overshooting the clock.
func TestSchedulerRunUntilCancelledEventDoesNotOvershoot(t *testing.T) {
	for _, backend := range []Backend{BackendHeap, BackendCalendar} {
		s := NewSchedulerWith(SchedulerConfig{Backend: backend})
		fired := false
		ref := s.ScheduleAt(20, func(Time) { t.Error("cancelled event fired") })
		s.ScheduleAt(40, func(Time) { fired = true })
		ref.Cancel()

		if err := s.RunUntil(30); err != nil {
			t.Fatalf("backend %v: RunUntil: %v", backend, err)
		}
		if fired {
			t.Fatalf("backend %v: event at t=40 fired during RunUntil(30)", backend)
		}
		if s.Now() != 30 {
			t.Fatalf("backend %v: clock = %v, want 30", backend, s.Now())
		}
		if err := s.Run(); err != nil {
			t.Fatalf("backend %v: Run: %v", backend, err)
		}
		if !fired {
			t.Fatalf("backend %v: event at t=40 lost", backend)
		}
	}
}

func TestSchedulerRunUntilAdvancesIdleClock(t *testing.T) {
	s := NewScheduler()
	if err := s.RunUntil(5 * Second); err != nil {
		t.Fatalf("RunUntil: %v", err)
	}
	if s.Now() != 5*Second {
		t.Fatalf("clock = %v, want 5s", s.Now())
	}
}

func TestSchedulerNilHandlerIgnored(t *testing.T) {
	s := NewScheduler()
	ref := s.ScheduleAt(10, nil)
	if ref.Pending() {
		t.Fatal("nil handler should not be queued")
	}
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
}

func TestSchedulerNegativeDelayClamps(t *testing.T) {
	s := NewScheduler()
	var at Time = -1
	s.ScheduleAfter(-5*Second, func(now Time) { at = now })
	if err := s.Run(); err != nil {
		t.Fatalf("Run: %v", err)
	}
	if at != 0 {
		t.Fatalf("event fired at %v, want 0", at)
	}
}

// TestSchedulerMonotonicClockProperty checks that no matter what mixture of
// event times is scheduled, events always fire in non-decreasing time order.
func TestSchedulerMonotonicClockProperty(t *testing.T) {
	prop := func(offsets []uint16) bool {
		s := NewScheduler()
		var fired []Time
		for _, off := range offsets {
			at := Time(off)
			s.ScheduleAt(at, func(now Time) { fired = append(fired, now) })
		}
		if err := s.Run(); err != nil {
			return false
		}
		for i := 1; i < len(fired); i++ {
			if fired[i] < fired[i-1] {
				return false
			}
		}
		return len(fired) == len(offsets)
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 200}); err != nil {
		t.Fatal(err)
	}
}

func TestRNGDeterminism(t *testing.T) {
	a, b := NewRNG(42), NewRNG(42)
	for i := 0; i < 1000; i++ {
		if a.Float64() != b.Float64() {
			t.Fatal("same seed produced diverging streams")
		}
	}
	c := NewRNG(43)
	same := true
	a2 := NewRNG(42)
	for i := 0; i < 10; i++ {
		if a2.Float64() != c.Float64() {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}

func TestRNGBoolEdges(t *testing.T) {
	g := NewRNG(1)
	for i := 0; i < 100; i++ {
		if g.Bool(0) {
			t.Fatal("Bool(0) returned true")
		}
		if !g.Bool(1) {
			t.Fatal("Bool(1) returned false")
		}
	}
}

func TestRNGBoolFrequency(t *testing.T) {
	g := NewRNG(7)
	const n = 200000
	hits := 0
	for i := 0; i < n; i++ {
		if g.Bool(0.3) {
			hits++
		}
	}
	freq := float64(hits) / n
	if math.Abs(freq-0.3) > 0.01 {
		t.Fatalf("Bool(0.3) frequency = %v, want ~0.3", freq)
	}
}

func TestRNGIntnNonPositive(t *testing.T) {
	g := NewRNG(1)
	if g.Intn(0) != 0 || g.Intn(-3) != 0 {
		t.Fatal("Intn of non-positive bound should be 0")
	}
}

func TestRNGExponentialMean(t *testing.T) {
	g := NewRNG(11)
	const n = 100000
	sum := 0.0
	for i := 0; i < n; i++ {
		sum += g.Exponential(2.0)
	}
	mean := sum / n
	if math.Abs(mean-2.0) > 0.05 {
		t.Fatalf("exponential sample mean = %v, want ~2.0", mean)
	}
	if g.Exponential(-1) != 0 {
		t.Fatal("Exponential with non-positive mean should be 0")
	}
}

func TestRNGParetoLowerBound(t *testing.T) {
	g := NewRNG(5)
	for i := 0; i < 10000; i++ {
		v := g.Pareto(3.0, 1.5)
		if v < 3.0 {
			t.Fatalf("Pareto sample %v below xm", v)
		}
	}
	if g.Pareto(0, 1) != 0 || g.Pareto(1, 0) != 0 {
		t.Fatal("Pareto with invalid parameters should be 0")
	}
}

func TestRNGJitterBounds(t *testing.T) {
	g := NewRNG(9)
	for i := 0; i < 10000; i++ {
		v := g.Jitter(100, 0.1)
		if v < 90 || v > 110 {
			t.Fatalf("Jitter sample %v outside [90,110]", v)
		}
	}
	if g.Jitter(100, 0) != 100 {
		t.Fatal("Jitter with zero fraction should return base")
	}
}

func TestRNGForkIndependence(t *testing.T) {
	parent := NewRNG(123)
	child := parent.Fork()
	// The child must be usable and deterministic given the parent's seed.
	p1, p2 := NewRNG(123), NewRNG(123)
	c1, c2 := p1.Fork(), p2.Fork()
	for i := 0; i < 100; i++ {
		if c1.Float64() != c2.Float64() {
			t.Fatal("forked streams from identical parents diverged")
		}
	}
	_ = child.Float64()
}

func TestRNGNormalMoments(t *testing.T) {
	g := NewRNG(17)
	const n = 200000
	sum, sumSq := 0.0, 0.0
	for i := 0; i < n; i++ {
		v := g.Normal(5, 2)
		sum += v
		sumSq += v * v
	}
	mean := sum / n
	variance := sumSq/n - mean*mean
	if math.Abs(mean-5) > 0.05 {
		t.Fatalf("normal mean = %v, want ~5", mean)
	}
	if math.Abs(math.Sqrt(variance)-2) > 0.05 {
		t.Fatalf("normal stddev = %v, want ~2", math.Sqrt(variance))
	}
}
