package loglog

import (
	"encoding/binary"
	"testing"
)

// itemsFrom decodes the fuzz payload into 64-bit items.
func itemsFrom(data []byte) []uint64 {
	items := make([]uint64, 0, len(data)/8+1)
	for len(data) >= 8 {
		items = append(items, binary.LittleEndian.Uint64(data))
		data = data[8:]
	}
	if len(data) > 0 {
		var tail [8]byte
		copy(tail[:], data)
		items = append(items, binary.LittleEndian.Uint64(tail[:]))
	}
	return items
}

// FuzzSketchMerge checks the algebraic properties the set-union counting
// layer depends on: max-merge must be commutative, idempotent, and exactly
// equivalent to having added both item sets into a single sketch — that
// equivalence is what lets the paper compute |Si ∪ Dj| across routers
// without exchanging packet lists.
func FuzzSketchMerge(f *testing.F) {
	f.Add([]byte{}, []byte{})
	f.Add([]byte{1, 2, 3, 4, 5, 6, 7, 8}, []byte{8, 7, 6, 5, 4, 3, 2, 1})
	f.Add(
		[]byte{0, 0, 0, 0, 0, 0, 0, 0, 1, 0, 0, 0, 0, 0, 0, 0},
		[]byte{0xff, 0xee, 0xdd, 0xcc, 0xbb, 0xaa, 0x99, 0x88},
	)
	f.Fuzz(func(t *testing.T, rawA, rawB []byte) {
		const m = 64
		itemsA := itemsFrom(rawA)
		itemsB := itemsFrom(rawB)

		a := MustNew(m)
		b := MustNew(m)
		combined := MustNew(m)
		for _, it := range itemsA {
			a.Add(it)
			combined.Add(it)
		}
		for _, it := range itemsB {
			b.Add(it)
			combined.Add(it)
		}

		// Commutativity: A max-merge B must equal B max-merge A exactly.
		ab := a.Clone()
		if err := ab.Merge(b); err != nil {
			t.Fatalf("merge a<-b: %v", err)
		}
		ba := b.Clone()
		if err := ba.Merge(a); err != nil {
			t.Fatalf("merge b<-a: %v", err)
		}
		if ab.Estimate() != ba.Estimate() {
			t.Fatalf("merge is not commutative: %v vs %v", ab.Estimate(), ba.Estimate())
		}

		// Union equivalence: merging two sketches that saw disjoint parts
		// of the stream must reproduce the single-sketch state exactly.
		if ab.Estimate() != combined.Estimate() {
			t.Fatalf("merged estimate %v != combined estimate %v", ab.Estimate(), combined.Estimate())
		}

		// Idempotence: merging a sketch into itself changes nothing.
		before := ab.Estimate()
		self := ab.Clone()
		if err := ab.Merge(self); err != nil {
			t.Fatalf("self merge: %v", err)
		}
		if ab.Estimate() != before {
			t.Fatalf("self merge changed estimate: %v -> %v", before, ab.Estimate())
		}

		// UnionEstimate must not mutate its operands.
		estA, estB := a.Estimate(), b.Estimate()
		union, err := UnionEstimate(a, b)
		if err != nil {
			t.Fatalf("UnionEstimate: %v", err)
		}
		if a.Estimate() != estA || b.Estimate() != estB {
			t.Fatal("UnionEstimate mutated an operand")
		}
		if union != ba.Estimate() {
			t.Fatalf("UnionEstimate %v disagrees with merge %v", union, ba.Estimate())
		}

		// Intersection by inclusion-exclusion must never go negative.
		inter, err := IntersectionEstimate(a, b)
		if err != nil {
			t.Fatalf("IntersectionEstimate: %v", err)
		}
		if inter < 0 {
			t.Fatalf("negative intersection estimate %v", inter)
		}

		// Incompatible bucket counts must be rejected, not mangled.
		other := MustNew(2 * m)
		if err := a.Merge(other); err == nil {
			t.Fatal("merge with incompatible sketch succeeded")
		}
	})
}
