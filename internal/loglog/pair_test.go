package loglog

import (
	"testing"
)

func TestCopyFrom(t *testing.T) {
	a := MustNew(64)
	for i := uint64(0); i < 500; i++ {
		a.Add(i)
	}
	b := MustNew(64)
	if err := b.CopyFrom(a); err != nil {
		t.Fatalf("CopyFrom: %v", err)
	}
	if b.Estimate() != a.Estimate() {
		t.Fatalf("copy estimate %v != source %v", b.Estimate(), a.Estimate())
	}
	if b.Adds() != a.Adds() {
		t.Fatalf("copy adds %d != source %d", b.Adds(), a.Adds())
	}
	// The copy must be independent of the source.
	b.Add(1 << 40)
	if b.Adds() == a.Adds() {
		t.Fatal("copy shares state with source")
	}
	if err := MustNew(128).CopyFrom(a); err == nil {
		t.Fatal("CopyFrom across bucket counts must fail")
	}
	if err := b.CopyFrom(nil); err == nil {
		t.Fatal("CopyFrom(nil) must fail")
	}
}

func TestMergeIntoMatchesCloneMerge(t *testing.T) {
	a, b := MustNew(256), MustNew(256)
	for i := uint64(0); i < 1000; i++ {
		a.Add(i)
	}
	for i := uint64(500); i < 1500; i++ {
		b.Add(i)
	}
	want := a.Clone()
	if err := want.Merge(b); err != nil {
		t.Fatal(err)
	}
	dst := MustNew(256)
	if err := MergeInto(dst, a, b); err != nil {
		t.Fatalf("MergeInto: %v", err)
	}
	if dst.Estimate() != want.Estimate() {
		t.Fatalf("MergeInto estimate %v != Clone+Merge %v", dst.Estimate(), want.Estimate())
	}
	if dst.Adds() != want.Adds() {
		t.Fatalf("MergeInto adds %d != Clone+Merge %d", dst.Adds(), want.Adds())
	}
	if err := MergeInto(MustNew(64), a, b); err == nil {
		t.Fatal("MergeInto with incompatible dst must fail")
	}
	if err := MergeInto(dst, nil, b); err == nil {
		t.Fatal("MergeInto with nil input must fail")
	}
}

func TestIntoEstimatorsMatchAllocatingOnes(t *testing.T) {
	a, b := MustNew(512), MustNew(512)
	for i := uint64(0); i < 2000; i++ {
		a.Add(i * 3)
	}
	for i := uint64(0); i < 2000; i++ {
		b.Add(i * 5)
	}
	scratch := MustNew(512)

	wantU, err := UnionEstimate(a, b)
	if err != nil {
		t.Fatal(err)
	}
	gotU, err := UnionEstimateInto(scratch, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if gotU != wantU {
		t.Fatalf("UnionEstimateInto %v != UnionEstimate %v", gotU, wantU)
	}

	wantI, err := IntersectionEstimate(a, b)
	if err != nil {
		t.Fatal(err)
	}
	gotI, err := IntersectionEstimateInto(scratch, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if gotI != wantI {
		t.Fatalf("IntersectionEstimateInto %v != IntersectionEstimate %v", gotI, wantI)
	}
}

func TestPairSwapFreezesEpoch(t *testing.T) {
	p, err := NewPair(128)
	if err != nil {
		t.Fatal(err)
	}
	for i := uint64(0); i < 300; i++ {
		p.Active().Add(i)
	}
	epochEst := p.Active().Estimate()

	p.Swap()
	if got := p.Shadow().Estimate(); got != epochEst {
		t.Fatalf("shadow estimate %v != frozen epoch %v", got, epochEst)
	}
	if got := p.Active().Estimate(); got != 0 {
		t.Fatalf("new active must start empty, estimate %v", got)
	}

	// The next epoch accumulates independently of the frozen one.
	for i := uint64(1000); i < 1100; i++ {
		p.Active().Add(i)
	}
	if got := p.Shadow().Estimate(); got != epochEst {
		t.Fatalf("recording into active disturbed the shadow: %v != %v", got, epochEst)
	}

	p.Reset()
	if p.Active().Estimate() != 0 || p.Shadow().Estimate() != 0 {
		t.Fatal("Reset must clear both sides")
	}
}

func TestPairOfValidation(t *testing.T) {
	if _, err := PairOf(MustNew(64), MustNew(128)); err == nil {
		t.Fatal("PairOf across bucket counts must fail")
	}
	if _, err := PairOf(nil, MustNew(64)); err == nil {
		t.Fatal("PairOf(nil, ...) must fail")
	}
	p, err := PairOf(MustNew(64), MustNew(64))
	if err != nil {
		t.Fatal(err)
	}
	p.Active().Add(7)
	if p.Active().Adds() != 1 {
		t.Fatal("assembled pair not recording")
	}
}

func TestNewSlab(t *testing.T) {
	sketches, err := NewSlab(8, 64)
	if err != nil {
		t.Fatal(err)
	}
	if len(sketches) != 8 {
		t.Fatalf("slab size %d, want 8", len(sketches))
	}
	// Sketches must be independent despite the shared backing.
	for i := uint64(0); i < 100; i++ {
		sketches[0].Add(i)
	}
	for i := 1; i < len(sketches); i++ {
		if sketches[i].Estimate() != 0 {
			t.Fatalf("sketch %d polluted by writes to sketch 0", i)
		}
	}
	// A slab sketch must behave exactly like a New one.
	ref := MustNew(64)
	for i := uint64(0); i < 100; i++ {
		ref.Add(i)
	}
	if sketches[0].Estimate() != ref.Estimate() {
		t.Fatalf("slab sketch estimate %v != New sketch %v", sketches[0].Estimate(), ref.Estimate())
	}
	if _, err := NewSlab(4, 17); err == nil {
		t.Fatal("NewSlab with bad bucket count must fail")
	}
	if _, err := NewSlab(-1, 64); err == nil {
		t.Fatal("NewSlab with negative count must fail")
	}
}

func TestEmptySketchEstimateFastPath(t *testing.T) {
	s := MustNew(1024)
	if got := s.Estimate(); got != 0 {
		t.Fatalf("empty sketch estimate %v, want 0", got)
	}
	s.Add(42)
	if got := s.Estimate(); got <= 0 {
		t.Fatalf("non-empty sketch estimate %v, want > 0", got)
	}
	s.Reset()
	if got := s.Estimate(); got != 0 {
		t.Fatalf("reset sketch estimate %v, want 0", got)
	}
}

func TestMergeIntoAllocFree(t *testing.T) {
	a, b, dst := MustNew(1024), MustNew(1024), MustNew(1024)
	for i := uint64(0); i < 100; i++ {
		a.Add(i)
		b.Add(i + 50)
	}
	allocs := testing.AllocsPerRun(100, func() {
		if _, err := IntersectionEstimateInto(dst, a, b); err != nil {
			t.Fatal(err)
		}
	})
	if allocs != 0 {
		t.Fatalf("IntersectionEstimateInto allocates %v per call, want 0", allocs)
	}
}
