// Package loglog implements the Durand–Flajolet LogLog cardinality sketch
// with stochastic averaging and max-merge, the O(log log n) counting
// primitive the paper's set-union pushback technique is built on (Section II,
// references [2] and [3]).
//
// A sketch estimates the number of distinct 64-bit items added to it. Two
// sketches built with the same parameters can be merged bucket-wise by max,
// yielding a sketch of the union of the two item sets; the paper exploits
// this to compute |Si ∪ Dj| across routers without exchanging packet lists.
package loglog

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// Errors returned by the package.
var (
	// ErrBucketCount is returned when the requested bucket count is not a
	// power of two or is out of the supported range.
	ErrBucketCount = errors.New("loglog: bucket count must be a power of two in [16, 65536]")
	// ErrIncompatible is returned when merging sketches with different
	// parameters.
	ErrIncompatible = errors.New("loglog: sketches have different bucket counts")
)

// DefaultBuckets is the default number of buckets (m). With m = 1024 the
// standard error of the LogLog estimate is roughly 1.30/sqrt(m) ≈ 4%.
const DefaultBuckets = 1024

// Sketch is a LogLog cardinality estimator. The zero value is not usable;
// use New.
type Sketch struct {
	m       int  // number of buckets, power of two
	p       uint // log2(m): number of hash bits used for bucket selection
	buckets []uint8
	adds    uint64
}

// New returns a sketch with m buckets. m must be a power of two between 16
// and 65536.
func New(m int) (*Sketch, error) {
	if m < 16 || m > 65536 || m&(m-1) != 0 {
		return nil, fmt.Errorf("%w: got %d", ErrBucketCount, m)
	}
	return &Sketch{
		m:       m,
		p:       uint(bits.TrailingZeros(uint(m))),
		buckets: make([]uint8, m),
	}, nil
}

// MustNew is New for known-good parameters; it panics on error and is meant
// for package-level defaults and tests.
func MustNew(m int) *Sketch {
	s, err := New(m)
	if err != nil {
		panic(err)
	}
	return s
}

// Buckets reports the sketch's bucket count m.
func (s *Sketch) Buckets() int { return s.m }

// Adds reports how many items (not necessarily distinct) have been added.
func (s *Sketch) Adds() uint64 { return s.adds }

// Add records one item, identified by a 64-bit hash. Items must already be
// well-mixed (the packet-identity hashes the traffic-matrix layer feeds in
// are); Add applies an additional avalanche step defensively.
func (s *Sketch) Add(item uint64) {
	s.adds++
	h := mix64(item)
	// The low p bits pick the bucket (stochastic averaging); the rank is
	// the position of the first 1 bit in the remaining bits, counted from 1.
	bucket := h & uint64(s.m-1)
	rest := h >> s.p
	rank := uint8(1)
	if rest == 0 {
		rank = uint8(64 - s.p + 1)
	} else {
		rank = uint8(bits.TrailingZeros64(rest)) + 1
	}
	if rank > s.buckets[bucket] {
		s.buckets[bucket] = rank
	}
}

// Estimate returns the estimated number of distinct items added. It applies
// the Durand–Flajolet LogLog estimator with small-range linear counting to
// stay accurate for sparse sketches.
func (s *Sketch) Estimate() float64 {
	// An untouched sketch has every bucket at zero; linear counting would
	// return exactly 0, so skip the bucket scan. This makes per-epoch
	// estimation cheap on large domains where most routers are idle.
	if s.adds == 0 {
		return 0
	}
	sum := 0.0
	zero := 0
	for _, b := range s.buckets {
		sum += float64(b)
		if b == 0 {
			zero++
		}
	}
	m := float64(s.m)
	raw := alpha(s.m) * m * math.Exp2(sum/m)
	// Linear counting for the sparse regime where LogLog under-estimates.
	if zero > 0 && raw < 2.5*m {
		return m * math.Log(m/float64(zero))
	}
	return raw
}

// Merge folds other into s bucket-wise by max, so that s becomes a sketch of
// the union of both item sets. It fails if the sketches are incompatible.
func (s *Sketch) Merge(other *Sketch) error {
	if other == nil || other.m != s.m {
		return ErrIncompatible
	}
	for i, b := range other.buckets {
		if b > s.buckets[i] {
			s.buckets[i] = b
		}
	}
	s.adds += other.adds
	return nil
}

// Clone returns an independent copy of the sketch.
func (s *Sketch) Clone() *Sketch {
	cp := &Sketch{m: s.m, p: s.p, adds: s.adds, buckets: make([]uint8, s.m)}
	copy(cp.buckets, s.buckets)
	return cp
}

// CopyFrom overwrites s with other's contents without allocating. It is the
// steady-state replacement for Clone when the caller owns reusable storage.
func (s *Sketch) CopyFrom(other *Sketch) error {
	if other == nil || other.m != s.m {
		return ErrIncompatible
	}
	copy(s.buckets, other.buckets)
	s.adds = other.adds
	return nil
}

// MergeInto sets dst to the bucket-wise max union of a and b without touching
// either input and without allocating: dst is caller-owned storage, typically
// a scratch sketch reused across many union computations.
func MergeInto(dst, a, b *Sketch) error {
	if dst == nil || a == nil || b == nil || a.m != dst.m || b.m != dst.m {
		return ErrIncompatible
	}
	db, ab, bb := dst.buckets, a.buckets, b.buckets
	for i := range db {
		av, bv := ab[i], bb[i]
		if bv > av {
			av = bv
		}
		db[i] = av
	}
	dst.adds = a.adds + b.adds
	return nil
}

// Reset clears the sketch for reuse in the next measurement epoch.
func (s *Sketch) Reset() {
	for i := range s.buckets {
		s.buckets[i] = 0
	}
	s.adds = 0
}

// UnionEstimate estimates |A ∪ B| without modifying either sketch.
func UnionEstimate(a, b *Sketch) (float64, error) {
	if a == nil || b == nil || a.m != b.m {
		return 0, ErrIncompatible
	}
	u := a.Clone()
	if err := u.Merge(b); err != nil {
		return 0, err
	}
	return u.Estimate(), nil
}

// UnionEstimateInto estimates |A ∪ B| like UnionEstimate but builds the union
// in the caller-owned scratch sketch instead of cloning, so repeated matrix
// computations allocate nothing. The scratch contents are overwritten.
func UnionEstimateInto(scratch, a, b *Sketch) (float64, error) {
	if err := MergeInto(scratch, a, b); err != nil {
		return 0, err
	}
	return scratch.Estimate(), nil
}

// IntersectionEstimate estimates |A ∩ B| by inclusion–exclusion,
// |A| + |B| − |A ∪ B|, clamped at zero. This is exactly the transformation
// the paper uses to turn the traffic-matrix intersection into a union
// computation (Section II).
func IntersectionEstimate(a, b *Sketch) (float64, error) {
	union, err := UnionEstimate(a, b)
	if err != nil {
		return 0, err
	}
	est := a.Estimate() + b.Estimate() - union
	if est < 0 {
		est = 0
	}
	return est, nil
}

// IntersectionEstimateInto is IntersectionEstimate computed through a
// caller-owned scratch sketch: no allocation per call.
func IntersectionEstimateInto(scratch, a, b *Sketch) (float64, error) {
	union, err := UnionEstimateInto(scratch, a, b)
	if err != nil {
		return 0, err
	}
	est := a.Estimate() + b.Estimate() - union
	if est < 0 {
		est = 0
	}
	return est, nil
}

// RelativeStandardError returns the theoretical standard error of a LogLog
// sketch with m buckets (≈1.30/sqrt(m)).
func RelativeStandardError(m int) float64 {
	if m <= 0 {
		return math.Inf(1)
	}
	return 1.30 / math.Sqrt(float64(m))
}

// alpha returns the bias-correction constant for m buckets. The asymptotic
// LogLog constant is 0.39701; for the bucket counts used here the asymptote
// is accurate to well under the sketch's own standard error.
func alpha(m int) float64 {
	switch {
	case m <= 16:
		return 0.379
	case m <= 32:
		return 0.389
	case m <= 64:
		return 0.394
	default:
		return 0.39701
	}
}

// mix64 is the SplitMix64 finaliser, used to avalanche item identifiers so
// bucket selection and rank bits are independent even for sequential IDs.
func mix64(x uint64) uint64 {
	x ^= x >> 30
	x *= 0xbf58476d1ce4e5b9
	x ^= x >> 27
	x *= 0x94d049bb133111eb
	x ^= x >> 31
	return x
}
