package loglog

import "fmt"

// SketchState is the dynamic state of one sketch. The parameters (bucket
// count, hash split) are rebuild-covered; only the bucket contents and the
// add counter travel in a snapshot.
type SketchState struct {
	Buckets []uint8
	Adds    uint64
}

// CheckpointState captures the sketch's dynamic state.
func (s *Sketch) CheckpointState() SketchState {
	st := SketchState{Buckets: make([]uint8, len(s.buckets)), Adds: s.adds}
	copy(st.Buckets, s.buckets)
	return st
}

// RestoreState overlays captured dynamic state onto a rebuilt sketch of the
// same geometry.
func (s *Sketch) RestoreState(st SketchState) error {
	if len(st.Buckets) != len(s.buckets) {
		return fmt.Errorf("loglog: restore bucket count %d does not match rebuilt sketch %d",
			len(st.Buckets), len(s.buckets))
	}
	copy(s.buckets, st.Buckets)
	s.adds = st.Adds
	return nil
}

// PairState is the dynamic state of a double-buffered pair. Capturing the
// active and shadow halves by role (rather than by backing-slab position)
// makes the physical orientation — which slab slot is active after an odd or
// even number of swaps — irrelevant: the halves are only ever reached through
// Active and Shadow, so overlaying by role restores identical behaviour.
type PairState struct {
	Active SketchState
	Shadow SketchState
}

// CheckpointState captures both halves of the pair.
func (p *Pair) CheckpointState() PairState {
	return PairState{Active: p.active.CheckpointState(), Shadow: p.shadow.CheckpointState()}
}

// RestoreState overlays captured state onto a rebuilt pair of the same
// geometry.
func (p *Pair) RestoreState(st PairState) error {
	if err := p.active.RestoreState(st.Active); err != nil {
		return err
	}
	return p.shadow.RestoreState(st.Shadow)
}

// CheckpointTypes lists this package's structs that carry snapshotted state.
var CheckpointTypes = []any{
	Sketch{},
	Pair{},
}
