package loglog

import "math/bits"

// This file holds the epoch-oriented allocation machinery: double-buffered
// sketch pairs and slab allocation. Together they let a measurement layer run
// with zero steady-state allocation — the pair swap replaces the per-epoch
// Clone-and-Reset dance, and the slab collapses the O(routers) sketch
// constructions into a constant number of backing arrays.

// Pair is a double-buffered pair of sketches for epoch-based measurement.
// Packets of the current epoch are recorded into Active; Swap freezes the
// epoch into Shadow (and clears the new Active for the next epoch) so the
// frozen data can be read at leisure while recording continues — without
// cloning anything. The zero value is not usable; use NewPair or PairOf.
type Pair struct {
	active, shadow *Sketch
}

// NewPair returns a pair of freshly allocated sketches with m buckets each.
func NewPair(m int) (Pair, error) {
	a, err := New(m)
	if err != nil {
		return Pair{}, err
	}
	b, err := New(m)
	if err != nil {
		return Pair{}, err
	}
	return Pair{active: a, shadow: b}, nil
}

// PairOf assembles a pair from two existing compatible sketches (typically
// slab-allocated). Both must be non-nil with equal bucket counts.
func PairOf(active, shadow *Sketch) (Pair, error) {
	if active == nil || shadow == nil || active.m != shadow.m {
		return Pair{}, ErrIncompatible
	}
	return Pair{active: active, shadow: shadow}, nil
}

// Active returns the sketch recording the current epoch.
func (p *Pair) Active() *Sketch { return p.active }

// Shadow returns the sketch holding the previous, frozen epoch.
func (p *Pair) Shadow() *Sketch { return p.shadow }

// Swap rotates the buffers at an epoch boundary: the just-recorded epoch
// becomes the frozen Shadow, and the new Active (last epoch's shadow) is
// reset so it starts the next epoch empty. Swap never allocates.
func (p *Pair) Swap() {
	p.active, p.shadow = p.shadow, p.active
	p.active.Reset()
}

// Reset clears both sides of the pair.
func (p *Pair) Reset() {
	p.active.Reset()
	p.shadow.Reset()
}

// NewSlab allocates n sketches with m buckets each backed by just two arrays
// (one []Sketch, one shared bucket slab), so creating the per-router counter
// banks of a large domain costs O(1) allocations instead of O(n). The
// returned sketches are independent: their bucket windows do not overlap.
func NewSlab(n, m int) ([]Sketch, error) {
	if n < 0 {
		return nil, ErrBucketCount
	}
	if _, err := New(m); err != nil {
		return nil, err
	}
	sketches := make([]Sketch, n)
	backing := make([]uint8, n*m)
	p := uint(bits.TrailingZeros(uint(m)))
	for i := range sketches {
		sketches[i] = Sketch{
			m:       m,
			p:       p,
			buckets: backing[i*m : (i+1)*m : (i+1)*m],
		}
	}
	return sketches, nil
}
