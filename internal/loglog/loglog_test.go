package loglog

import (
	"errors"
	"math"
	"testing"
	"testing/quick"
)

func TestNewValidation(t *testing.T) {
	tests := []struct {
		name    string
		m       int
		wantErr bool
	}{
		{name: "too small", m: 8, wantErr: true},
		{name: "not power of two", m: 1000, wantErr: true},
		{name: "too large", m: 1 << 20, wantErr: true},
		{name: "minimum", m: 16, wantErr: false},
		{name: "default", m: DefaultBuckets, wantErr: false},
		{name: "maximum", m: 65536, wantErr: false},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s, err := New(tt.m)
			if tt.wantErr {
				if !errors.Is(err, ErrBucketCount) {
					t.Fatalf("want ErrBucketCount, got %v", err)
				}
				return
			}
			if err != nil {
				t.Fatalf("New(%d): %v", tt.m, err)
			}
			if s.Buckets() != tt.m {
				t.Fatalf("Buckets() = %d, want %d", s.Buckets(), tt.m)
			}
		})
	}
}

func TestMustNewPanicsOnBadInput(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("MustNew(7) did not panic")
		}
	}()
	MustNew(7)
}

func TestEstimateAccuracy(t *testing.T) {
	tests := []struct {
		name      string
		n         int
		tolerance float64 // relative error allowed
	}{
		{name: "small 100", n: 100, tolerance: 0.15},
		{name: "medium 10k", n: 10000, tolerance: 0.10},
		{name: "large 200k", n: 200000, tolerance: 0.10},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := MustNew(DefaultBuckets)
			for i := 0; i < tt.n; i++ {
				s.Add(uint64(i) * 0x9e3779b97f4a7c15)
			}
			est := s.Estimate()
			relErr := math.Abs(est-float64(tt.n)) / float64(tt.n)
			if relErr > tt.tolerance {
				t.Fatalf("n=%d estimate=%.0f relative error %.3f > %.3f", tt.n, est, relErr, tt.tolerance)
			}
		})
	}
}

func TestEstimateIgnoresDuplicates(t *testing.T) {
	s := MustNew(DefaultBuckets)
	for rep := 0; rep < 50; rep++ {
		for i := 0; i < 1000; i++ {
			s.Add(uint64(i))
		}
	}
	est := s.Estimate()
	if math.Abs(est-1000)/1000 > 0.15 {
		t.Fatalf("estimate %.0f drifted despite duplicates (want ~1000)", est)
	}
	if s.Adds() != 50000 {
		t.Fatalf("Adds() = %d, want 50000", s.Adds())
	}
}

func TestEmptySketchEstimatesZero(t *testing.T) {
	s := MustNew(64)
	if est := s.Estimate(); est != 0 {
		t.Fatalf("empty sketch estimate = %v, want 0", est)
	}
}

func TestMergeEqualsUnion(t *testing.T) {
	a, b := MustNew(DefaultBuckets), MustNew(DefaultBuckets)
	// Two overlapping sets: [0,6000) and [4000,10000) → union 10000.
	for i := 0; i < 6000; i++ {
		a.Add(uint64(i))
	}
	for i := 4000; i < 10000; i++ {
		b.Add(uint64(i))
	}
	union, err := UnionEstimate(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if math.Abs(union-10000)/10000 > 0.10 {
		t.Fatalf("union estimate %.0f, want ~10000", union)
	}
	// Merge must be idempotent with respect to the union estimate.
	merged := a.Clone()
	if err := merged.Merge(b); err != nil {
		t.Fatal(err)
	}
	if math.Abs(merged.Estimate()-union) > 1e-9 {
		t.Fatal("Merge and UnionEstimate disagree")
	}
	// UnionEstimate must not mutate its inputs.
	if math.Abs(a.Estimate()-6000)/6000 > 0.12 {
		t.Fatalf("UnionEstimate mutated input a: %.0f", a.Estimate())
	}
}

func TestIntersectionEstimate(t *testing.T) {
	a, b := MustNew(4096), MustNew(4096)
	for i := 0; i < 6000; i++ {
		a.Add(uint64(i))
	}
	for i := 4000; i < 10000; i++ {
		b.Add(uint64(i))
	}
	inter, err := IntersectionEstimate(a, b)
	if err != nil {
		t.Fatal(err)
	}
	// True intersection is 2000; inclusion-exclusion amplifies sketch
	// noise so allow a generous band.
	if inter < 1000 || inter > 3000 {
		t.Fatalf("intersection estimate %.0f, want ~2000", inter)
	}
}

func TestIntersectionOfDisjointSetsNearZero(t *testing.T) {
	a, b := MustNew(4096), MustNew(4096)
	for i := 0; i < 5000; i++ {
		a.Add(uint64(i))
		b.Add(uint64(i + 1000000))
	}
	inter, err := IntersectionEstimate(a, b)
	if err != nil {
		t.Fatal(err)
	}
	if inter > 600 {
		t.Fatalf("disjoint intersection estimate %.0f, want near 0", inter)
	}
}

func TestMergeIncompatible(t *testing.T) {
	a, b := MustNew(64), MustNew(128)
	if err := a.Merge(b); !errors.Is(err, ErrIncompatible) {
		t.Fatalf("want ErrIncompatible, got %v", err)
	}
	if err := a.Merge(nil); !errors.Is(err, ErrIncompatible) {
		t.Fatalf("merge nil: want ErrIncompatible, got %v", err)
	}
	if _, err := UnionEstimate(a, b); !errors.Is(err, ErrIncompatible) {
		t.Fatalf("union: want ErrIncompatible, got %v", err)
	}
	if _, err := IntersectionEstimate(a, nil); !errors.Is(err, ErrIncompatible) {
		t.Fatalf("intersection: want ErrIncompatible, got %v", err)
	}
}

func TestReset(t *testing.T) {
	s := MustNew(64)
	for i := 0; i < 1000; i++ {
		s.Add(uint64(i))
	}
	s.Reset()
	if s.Estimate() != 0 || s.Adds() != 0 {
		t.Fatal("Reset did not clear the sketch")
	}
}

func TestCloneIndependence(t *testing.T) {
	s := MustNew(64)
	for i := 0; i < 100; i++ {
		s.Add(uint64(i))
	}
	c := s.Clone()
	for i := 100; i < 10000; i++ {
		c.Add(uint64(i))
	}
	if s.Estimate() >= c.Estimate() {
		t.Fatal("clone mutation leaked into original")
	}
}

func TestRelativeStandardError(t *testing.T) {
	if got := RelativeStandardError(1024); math.Abs(got-1.30/32) > 1e-9 {
		t.Fatalf("RSE(1024) = %v", got)
	}
	if !math.IsInf(RelativeStandardError(0), 1) {
		t.Fatal("RSE(0) should be +Inf")
	}
}

// TestMergeCommutativeProperty checks a sketch algebra invariant: merging in
// either order yields identical estimates.
func TestMergeCommutativeProperty(t *testing.T) {
	prop := func(xs, ys []uint64) bool {
		a1, b1 := MustNew(256), MustNew(256)
		a2, b2 := MustNew(256), MustNew(256)
		for _, x := range xs {
			a1.Add(x)
			a2.Add(x)
		}
		for _, y := range ys {
			b1.Add(y)
			b2.Add(y)
		}
		if err := a1.Merge(b1); err != nil {
			return false
		}
		if err := b2.Merge(a2); err != nil {
			return false
		}
		return math.Abs(a1.Estimate()-b2.Estimate()) < 1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

// TestUnionUpperBoundProperty checks that a union estimate is never wildly
// below either operand's estimate (monotonicity up to exact arithmetic).
func TestUnionUpperBoundProperty(t *testing.T) {
	prop := func(xs, ys []uint64) bool {
		a, b := MustNew(256), MustNew(256)
		for _, x := range xs {
			a.Add(x)
		}
		for _, y := range ys {
			b.Add(y)
		}
		union, err := UnionEstimate(a, b)
		if err != nil {
			return false
		}
		// Bucket-wise max can only grow each bucket, so the union
		// estimate is >= each operand's estimate exactly.
		return union >= a.Estimate()-1e-9 && union >= b.Estimate()-1e-9
	}
	if err := quick.Check(prop, &quick.Config{MaxCount: 100}); err != nil {
		t.Fatal(err)
	}
}

func TestSequentialIDsEstimateWell(t *testing.T) {
	// Packet IDs in the simulator are sequential integers; the internal
	// avalanche step must keep the estimate accurate for such inputs.
	s := MustNew(DefaultBuckets)
	const n = 50000
	for i := 1; i <= n; i++ {
		s.Add(uint64(i))
	}
	est := s.Estimate()
	if math.Abs(est-n)/n > 0.10 {
		t.Fatalf("sequential-ID estimate %.0f, want ~%d", est, n)
	}
}
