// Package pool provides the mutex-guarded free list the engine's recycled
// objects (traffic sources, defenders, topology arenas, schedulers) share.
//
// It is deliberately not sync.Pool: the garbage collector empties a
// sync.Pool between runs, which defeats the point of keeping warmed-up
// objects alive from one simulation run to the next. At a handful of
// get/put pairs per run the mutex cost is irrelevant, and a bounded LIFO
// list keeps reuse deterministic-enough while capping retained memory.
package pool

import "sync"

// DefaultCap bounds a FreeList whose Cap field is left zero.
const DefaultCap = 1024

// FreeList is a mutex-guarded LIFO free list of *T. The zero value is ready
// to use. Objects are stored as-is: callers are responsible for fully
// resetting an object either on Put or on reuse after Get, so that pooling
// can never leak state between owners.
type FreeList[T any] struct {
	// Cap bounds the list; Put drops objects beyond it (they fall to the
	// garbage collector). Zero means DefaultCap.
	Cap int

	mu   sync.Mutex
	free []*T
}

// Get pops the most recently Put object, or returns nil when the list is
// empty.
func (p *FreeList[T]) Get() *T {
	p.mu.Lock()
	defer p.mu.Unlock()
	if n := len(p.free); n > 0 {
		x := p.free[n-1]
		p.free[n-1] = nil
		p.free = p.free[:n-1]
		return x
	}
	return nil
}

// Put returns an object to the list, dropping it when the list is full.
func (p *FreeList[T]) Put(x *T) {
	limit := p.Cap
	if limit <= 0 {
		limit = DefaultCap
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if len(p.free) < limit {
		p.free = append(p.free, x)
	}
}
