// Package experiment assembles full MAFIC scenarios — topology, workload,
// measurement layer, pushback detection and per-ATR defence — runs them on
// the discrete-event engine, and computes the metrics the paper reports. It
// also contains the parameter sweeps that regenerate every figure of the
// evaluation section.
package experiment

import (
	"errors"
	"fmt"

	"mafic/internal/core"
	"mafic/internal/metrics"
	"mafic/internal/pushback"
	"mafic/internal/sim"
	"mafic/internal/topology"
	"mafic/internal/traffic"
	"mafic/internal/trafficmatrix"
)

// ErrScenario is returned for invalid scenario configurations.
var ErrScenario = errors.New("experiment: invalid scenario")

// DefenseKind selects which defence (if any) runs at the ATRs.
type DefenseKind int

// Defence choices.
const (
	// DefenseMAFIC runs the adaptive MAFIC defender (the paper's
	// contribution).
	DefenseMAFIC DefenseKind = iota + 1
	// DefenseBaseline runs the proportional dropper from the authors'
	// earlier pushback work, the paper's implicit baseline.
	DefenseBaseline
	// DefenseNone runs no dropping at all (undefended reference).
	DefenseNone
)

// String implements fmt.Stringer.
func (k DefenseKind) String() string {
	switch k {
	case DefenseMAFIC:
		return "mafic"
	case DefenseBaseline:
		return "proportional"
	case DefenseNone:
		return "none"
	default:
		return "unknown"
	}
}

// RateScale documents how the paper's packet rates map onto the simulated
// rates: the paper's default R = 10⁶ packets/s per attack flow is simulated
// as R/RateScale so a full parameter sweep finishes in seconds. Ratios
// between series (100 kpps : 500 kpps : 1 Mpps) are preserved exactly.
const RateScale = 200.0

// Scenario is one complete experiment configuration.
type Scenario struct {
	// Name labels the scenario in reports.
	Name string
	// Seed drives every random choice in the run.
	Seed int64
	// Duration is the total simulated time.
	Duration sim.Time

	// Topology configures the domain (paper parameter N lives here).
	Topology topology.Config
	// Workload configures the traffic mix (V_t, Γ, R).
	Workload traffic.WorkloadSpec
	// MAFIC configures the defenders (P_d, probe window).
	MAFIC core.Config
	// Defense selects MAFIC, the proportional baseline, or nothing.
	Defense DefenseKind
	// BaselineDropProbability is the proportional dropper's probability;
	// zero means "same as MAFIC.DropProbability".
	BaselineDropProbability float64

	// Monitor configures the set-union counting measurement epochs.
	Monitor trafficmatrix.MonitorConfig
	// Pushback configures victim detection and ATR identification.
	Pushback pushback.Config
	// DetectionFallback activates the defence on every ingress router
	// this long after the attack starts if the pushback layer has not
	// triggered by then. Zero disables the fallback.
	DetectionFallback sim.Time

	// Faults is the scenario's failure model: scheduled link flaps and
	// router crash windows plus a lossy control plane. The zero value
	// injects nothing and leaves every fault-free run bit-identical.
	Faults FaultSpec

	// BinWidth is the victim bandwidth time-series bin width.
	BinWidth sim.Time
	// ReductionWindow is the measurement window for the traffic
	// reduction rate β on either side of the activation instant.
	ReductionWindow sim.Time

	// Scheduler selects the event-queue backend. The zero value is the
	// calendar queue; Backend: sim.BackendHeap is the escape hatch the
	// invariance tests use to prove both backends dispatch identically,
	// mirroring Monitor.FreshBuffers.
	Scheduler sim.SchedulerConfig
}

// DefaultScenario returns the paper's default configuration (Table II):
// P_d = 90%, R = 10⁶ pkt/s (scaled by RateScale), V_t = 50 flows, Γ = 95%,
// N = 40 routers.
func DefaultScenario() Scenario {
	topo := topology.DefaultConfig()
	work := traffic.DefaultWorkloadSpec()
	work.AttackRate = 1e6 / RateScale
	work.LegitRate = 250
	work.AttackStart = 600 * sim.Millisecond

	mafic := core.DefaultConfig()

	// Detection builds four epochs (400 ms) of per-router baseline before
	// it may fire, so the legitimate flows' slow-start ramp never looks
	// like an attack; once raised, pushback stays in force for the rest
	// of the run (the victim-side load necessarily collapses as soon as
	// the ATRs drop the flood, so a victim-side withdrawal test would
	// oscillate).
	pb := pushback.DefaultConfig()
	pb.MinHistoryEpochs = 4
	pb.DisableWithdraw = true

	return Scenario{
		Name:              "table2-defaults",
		Seed:              1,
		Duration:          3 * sim.Second,
		Topology:          topo,
		Workload:          work,
		MAFIC:             mafic,
		Defense:           DefenseMAFIC,
		Monitor:           trafficmatrix.MonitorConfig{Epoch: 100 * sim.Millisecond},
		Pushback:          pb,
		DetectionFallback: 400 * sim.Millisecond,
		BinWidth:          50 * sim.Millisecond,
		ReductionWindow:   100 * sim.Millisecond,
	}
}

// Harden returns a copy of s with the robustness hardening switched on: the
// defenders gain probing memory and idle-gap re-probing (core.HardenedConfig)
// and the pushback coordinator gains cross-epoch ATR hysteresis
// (pushback.HardenedConfig). Scenario-specific tuning of every other knob is
// preserved.
func Harden(s Scenario) Scenario {
	hc := core.HardenedConfig()
	s.MAFIC.ReprobeAfterIdle = hc.ReprobeAfterIdle
	s.MAFIC.CondemnProbes = hc.CondemnProbes
	s.MAFIC.ProbeMemoryCapacity = hc.ProbeMemoryCapacity
	hp := pushback.HardenedConfig()
	s.Pushback.ATRRise = hp.ATRRise
	s.Pushback.ATRDecay = hp.ATRDecay
	s.Pushback.StaleEpochs = hp.StaleEpochs
	s.Pushback.RefireBackoffEpochs = hp.RefireBackoffEpochs
	return s
}

// Validate reports configuration problems before an expensive run.
func (s Scenario) Validate() error {
	if s.Duration <= 0 {
		return fmt.Errorf("%w: duration must be positive", ErrScenario)
	}
	if s.Defense < DefenseMAFIC || s.Defense > DefenseNone {
		return fmt.Errorf("%w: unknown defence kind %d", ErrScenario, s.Defense)
	}
	if err := s.Topology.Validate(); err != nil {
		return fmt.Errorf("%w: topology: %v", ErrScenario, err)
	}
	if err := s.Workload.Validate(); err != nil {
		return fmt.Errorf("%w: workload: %v", ErrScenario, err)
	}
	if err := s.Monitor.Validate(); err != nil {
		return fmt.Errorf("%w: monitor: %v", ErrScenario, err)
	}
	if err := s.Pushback.Validate(); err != nil {
		return fmt.Errorf("%w: pushback: %v", ErrScenario, err)
	}
	if s.Defense == DefenseMAFIC {
		if err := s.MAFIC.Validate(); err != nil {
			return fmt.Errorf("%w: mafic: %v", ErrScenario, err)
		}
	}
	if s.Defense == DefenseBaseline {
		// Zero means "inherit MAFIC.DropProbability"; anything else must
		// be a probability.
		if s.BaselineDropProbability < 0 || s.BaselineDropProbability > 1 {
			return fmt.Errorf("%w: baseline drop probability %v outside [0,1]",
				ErrScenario, s.BaselineDropProbability)
		}
	}
	if err := s.Faults.Validate(s.Topology.NumRouters); err != nil {
		return err
	}
	if s.Workload.AttackStart >= s.Duration {
		return fmt.Errorf("%w: attack starts after the simulation ends", ErrScenario)
	}
	if s.Workload.FlashCrowdFlows > 0 && s.Workload.FlashCrowdStart >= s.Duration {
		return fmt.Errorf("%w: flash crowd starts after the simulation ends", ErrScenario)
	}
	if s.Workload.ExtraVictimShare > 0 && s.Topology.ExtraVictims == 0 {
		return fmt.Errorf("%w: extra-victim share %v needs topology extra victims",
			ErrScenario, s.Workload.ExtraVictimShare)
	}
	if s.Workload.CoremeltShare > 0 && s.Topology.BystanderHosts == 0 {
		return fmt.Errorf("%w: coremelt share %v needs topology bystander hosts",
			ErrScenario, s.Workload.CoremeltShare)
	}
	return nil
}

// Result summarises one scenario run with the paper's metrics.
type Result struct {
	// Name echoes the scenario name.
	Name string `json:"name"`
	// Pd, Volume, TCPShare, AttackRate and Routers echo the headline
	// parameters so sweep outputs are self-describing.
	Pd         float64 `json:"pd"`
	Volume     int     `json:"volume"`
	TCPShare   float64 `json:"tcpShare"`
	AttackRate float64 `json:"attackRate"`
	Routers    int     `json:"routers"`
	Defense    string  `json:"defense"`

	// Activated reports whether the defence was ever switched on, when,
	// and whether the pushback detector (rather than the fallback) did it.
	Activated          bool    `json:"activated"`
	ActivationSeconds  float64 `json:"activationSeconds"`
	DetectedByPushback bool    `json:"detectedByPushback"`
	ATRCount           int     `json:"atrCount"`

	// The paper's headline metrics (fractions in [0,1]).
	Accuracy           float64 `json:"accuracy"`
	FalsePositiveRate  float64 `json:"falsePositiveRate"`
	FalseNegativeRate  float64 `json:"falseNegativeRate"`
	LegitimateDropRate float64 `json:"legitimateDropRate"`
	TrafficReduction   float64 `json:"trafficReduction"`

	// Flow-level outcomes.
	FlowsProbed         int `json:"flowsProbed"`
	LegitFlowsCondemned int `json:"legitFlowsCondemned"`
	AttackFlowsForgiven int `json:"attackFlowsForgiven"`

	// Raw counters and the victim bandwidth time series.
	Counts metrics.Counts           `json:"counts"`
	Series []metrics.BandwidthPoint `json:"series,omitempty"`

	// DefenseStats aggregates the per-ATR MAFIC counters.
	DefenseStats core.Stats `json:"defenseStats"`

	// EventsProcessed counts discrete events executed by the run.
	EventsProcessed uint64 `json:"eventsProcessed"`

	// RouteEntries and RouteBytes report the resident routing state at the
	// end of the run: demand-driven routing materializes next-hop columns
	// only for destinations the workload actually used, so these measure
	// how much of the domain's reachability the scenario paid for.
	RouteEntries int   `json:"routeEntries"`
	RouteBytes   int64 `json:"routeBytes"`
}
