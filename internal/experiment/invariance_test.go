package experiment

import (
	"reflect"
	"testing"

	"mafic/internal/topology"
)

// TestBufferReuseInvariance runs every registered scenario (quick mode) down
// both refactor paths — pooled epoch-report buffers + a shared topology arena
// versus fresh buffers + fresh builds — and requires bit-identical results.
// This is the guarantee that makes the zero-alloc pipeline safe: buffer reuse
// can never leak state between epochs or between sweep points.
func TestBufferReuseInvariance(t *testing.T) {
	// One arena deliberately shared across every scenario in the catalog,
	// mimicking a sweep worker that rebuilds wildly different topologies
	// back to back.
	arena := topology.NewArena()

	for _, e := range Entries() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			pooled := Quick(e.Build())
			fresh := Quick(e.Build())
			fresh.Monitor.FreshBuffers = true

			gotPooled, err := runWith(pooled, arena)
			if err != nil {
				t.Fatalf("pooled run: %v", err)
			}
			gotFresh, err := runWith(fresh, nil)
			if err != nil {
				t.Fatalf("fresh run: %v", err)
			}

			// Every metric, counter and time-series bin must match
			// exactly — tolerances would hide pooling leaks.
			if !reflect.DeepEqual(gotPooled, gotFresh) {
				t.Errorf("pooled and fresh runs diverge")
				if gotPooled.Counts != gotFresh.Counts {
					t.Errorf("counts: pooled %+v, fresh %+v", gotPooled.Counts, gotFresh.Counts)
				}
				if gotPooled.EventsProcessed != gotFresh.EventsProcessed {
					t.Errorf("events: pooled %d, fresh %d", gotPooled.EventsProcessed, gotFresh.EventsProcessed)
				}
				if gotPooled.Accuracy != gotFresh.Accuracy {
					t.Errorf("accuracy: pooled %v, fresh %v", gotPooled.Accuracy, gotFresh.Accuracy)
				}
				if gotPooled.ATRCount != gotFresh.ATRCount {
					t.Errorf("ATRs: pooled %d, fresh %d", gotPooled.ATRCount, gotFresh.ATRCount)
				}
			}
		})
	}
}
