package experiment

import (
	"reflect"
	"testing"

	"mafic/internal/netsim"
	"mafic/internal/sim"
	"mafic/internal/topology"
)

// oracleMaxRouters bounds the domain size used when an equivalence test must
// run a quadratic oracle — eager all-pairs routing, dense adjacency rows, an
// every-router monitor — against the default path. The oracles are O(nodes²)
// by design (that is why they were replaced), so at stress-50k scale they
// would need tens of gigabytes; capping the router count while preserving the
// scenario's chord density keeps the comparison honest and laptop-sized.
const oracleMaxRouters = 5000

// oracleScale caps a quick scenario at oracleMaxRouters routers, scaling the
// extra-chord count proportionally so path shapes stay representative.
func oracleScale(s Scenario) Scenario {
	if s.Topology.NumRouters <= oracleMaxRouters {
		return s
	}
	s.Topology.ExtraChords = s.Topology.ExtraChords * oracleMaxRouters / s.Topology.NumRouters
	s.Topology.NumRouters = oracleMaxRouters
	return s
}

// TestAdjacencyModeInvariance runs every registered scenario (quick mode,
// stress scenarios capped at the oracle scale) with the default sparse
// adjacency rows and with the historical dense rows, under both routing
// modes, and requires bit-identical results. This is the system-level
// guarantee behind the sparse representation: both layouts answer LinkBetween
// identically and iterate neighbours in the same ascending order, so BFS
// tie-breaking — and therefore every forwarding decision, measurement and
// verdict — cannot tell them apart, and no golden fixture moved when sparse
// became the default.
func TestAdjacencyModeInvariance(t *testing.T) {
	for _, e := range Entries() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			for _, routing := range []struct {
				name string
				mode topology.RoutingMode
			}{{"lazy", topology.RoutingLazy}, {"eager", topology.RoutingEager}} {
				sparse := oracleScale(Quick(e.Build()))
				sparse.Topology.Routing = routing.mode
				dense := sparse
				dense.Topology.Adjacency = netsim.AdjacencyDense

				gotSparse, err := Run(sparse)
				if err != nil {
					t.Fatalf("%s sparse run: %v", routing.name, err)
				}
				gotDense, err := Run(dense)
				if err != nil {
					t.Fatalf("%s dense run: %v", routing.name, err)
				}
				if !reflect.DeepEqual(gotSparse, gotDense) {
					t.Errorf("%s: sparse and dense adjacency runs diverge", routing.name)
					if gotSparse.Counts != gotDense.Counts {
						t.Errorf("counts: sparse %+v, dense %+v", gotSparse.Counts, gotDense.Counts)
					}
					if gotSparse.EventsProcessed != gotDense.EventsProcessed {
						t.Errorf("events: sparse %d, dense %d", gotSparse.EventsProcessed, gotDense.EventsProcessed)
					}
					if gotSparse.Accuracy != gotDense.Accuracy {
						t.Errorf("accuracy: sparse %v, dense %v", gotSparse.Accuracy, gotDense.Accuracy)
					}
				}
			}
		})
	}
}

// TestMonitoredSetInvariance runs every registered scenario with the default
// monitored-only traffic matrix and with the historical every-router monitor,
// and requires bit-identical results: a counter on a router with no attached
// host can never record a packet (see the trafficmatrix package comment), so
// instrumenting only the host-adjacent routers changes nothing an epoch
// report, the pushback coordinator, or any golden fixture can observe.
func TestMonitoredSetInvariance(t *testing.T) {
	for _, e := range Entries() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			monitored := oracleScale(Quick(e.Build()))
			all := monitored
			all.Monitor.MonitorAll = true

			gotMonitored, err := Run(monitored)
			if err != nil {
				t.Fatalf("monitored run: %v", err)
			}
			gotAll, err := Run(all)
			if err != nil {
				t.Fatalf("monitor-all run: %v", err)
			}
			if !reflect.DeepEqual(gotMonitored, gotAll) {
				t.Errorf("monitored-only and every-router runs diverge")
				if gotMonitored.Counts != gotAll.Counts {
					t.Errorf("counts: monitored %+v, all %+v", gotMonitored.Counts, gotAll.Counts)
				}
				if gotMonitored.EventsProcessed != gotAll.EventsProcessed {
					t.Errorf("events: monitored %d, all %d", gotMonitored.EventsProcessed, gotAll.EventsProcessed)
				}
				if gotMonitored.Accuracy != gotAll.Accuracy {
					t.Errorf("accuracy: monitored %v, all %v", gotMonitored.Accuracy, gotAll.Accuracy)
				}
			}
		})
	}
}

// TestSchedulerBackendInvariance runs every registered scenario (quick mode,
// stress-1k included) on the default calendar-queue scheduler and on the
// 4-ary-heap escape hatch and requires bit-identical results. This is the
// system-level guarantee behind the scheduler swap: both backends dispatch
// events in exactly the same (time, sequence) order, so no golden fixture
// can tell them apart.
func TestSchedulerBackendInvariance(t *testing.T) {
	for _, e := range Entries() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			calendar := Quick(e.Build())
			heap := Quick(e.Build())
			heap.Scheduler = sim.SchedulerConfig{Backend: sim.BackendHeap}

			gotCalendar, err := Run(calendar)
			if err != nil {
				t.Fatalf("calendar run: %v", err)
			}
			gotHeap, err := Run(heap)
			if err != nil {
				t.Fatalf("heap run: %v", err)
			}
			if !reflect.DeepEqual(gotCalendar, gotHeap) {
				t.Errorf("calendar and heap runs diverge")
				if gotCalendar.Counts != gotHeap.Counts {
					t.Errorf("counts: calendar %+v, heap %+v", gotCalendar.Counts, gotHeap.Counts)
				}
				if gotCalendar.EventsProcessed != gotHeap.EventsProcessed {
					t.Errorf("events: calendar %d, heap %d", gotCalendar.EventsProcessed, gotHeap.EventsProcessed)
				}
				if gotCalendar.Accuracy != gotHeap.Accuracy {
					t.Errorf("accuracy: calendar %v, heap %v", gotCalendar.Accuracy, gotHeap.Accuracy)
				}
			}
		})
	}
}

// TestHardenedBufferReuseInvariance repeats the pooled-vs-fresh proof with
// the robustness hardening switched on across the whole catalog: the probing
// memory and the ATR hysteresis tables are recycled through the same pools,
// so they too must never leak state between runs. Bit-identical results or
// the hardened zero-alloc path is unsound.
func TestHardenedBufferReuseInvariance(t *testing.T) {
	arena := topology.NewArena()

	for _, e := range Entries() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			pooled := Harden(Quick(e.Build()))
			fresh := Harden(Quick(e.Build()))
			fresh.Monitor.FreshBuffers = true

			gotPooled, err := runWith(pooled, arena)
			if err != nil {
				t.Fatalf("pooled run: %v", err)
			}
			gotFresh, err := runWith(fresh, nil)
			if err != nil {
				t.Fatalf("fresh run: %v", err)
			}
			if !reflect.DeepEqual(gotPooled, gotFresh) {
				t.Errorf("hardened pooled and fresh runs diverge")
				if gotPooled.Counts != gotFresh.Counts {
					t.Errorf("counts: pooled %+v, fresh %+v", gotPooled.Counts, gotFresh.Counts)
				}
				if gotPooled.Accuracy != gotFresh.Accuracy {
					t.Errorf("accuracy: pooled %v, fresh %v", gotPooled.Accuracy, gotFresh.Accuracy)
				}
				if gotPooled.ATRCount != gotFresh.ATRCount {
					t.Errorf("ATRs: pooled %d, fresh %d", gotPooled.ATRCount, gotFresh.ATRCount)
				}
			}
		})
	}
}

// TestBufferReuseInvariance runs every registered scenario (quick mode) down
// both refactor paths — pooled epoch-report buffers + a shared topology arena
// versus fresh buffers + fresh builds — and requires bit-identical results.
// This is the guarantee that makes the zero-alloc pipeline safe: buffer reuse
// can never leak state between epochs or between sweep points.
func TestBufferReuseInvariance(t *testing.T) {
	// One arena deliberately shared across every scenario in the catalog,
	// mimicking a sweep worker that rebuilds wildly different topologies
	// back to back.
	arena := topology.NewArena()

	for _, e := range Entries() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			pooled := Quick(e.Build())
			fresh := Quick(e.Build())
			fresh.Monitor.FreshBuffers = true

			gotPooled, err := runWith(pooled, arena)
			if err != nil {
				t.Fatalf("pooled run: %v", err)
			}
			gotFresh, err := runWith(fresh, nil)
			if err != nil {
				t.Fatalf("fresh run: %v", err)
			}

			// Every metric, counter and time-series bin must match
			// exactly — tolerances would hide pooling leaks.
			if !reflect.DeepEqual(gotPooled, gotFresh) {
				t.Errorf("pooled and fresh runs diverge")
				if gotPooled.Counts != gotFresh.Counts {
					t.Errorf("counts: pooled %+v, fresh %+v", gotPooled.Counts, gotFresh.Counts)
				}
				if gotPooled.EventsProcessed != gotFresh.EventsProcessed {
					t.Errorf("events: pooled %d, fresh %d", gotPooled.EventsProcessed, gotFresh.EventsProcessed)
				}
				if gotPooled.Accuracy != gotFresh.Accuracy {
					t.Errorf("accuracy: pooled %v, fresh %v", gotPooled.Accuracy, gotFresh.Accuracy)
				}
				if gotPooled.ATRCount != gotFresh.ATRCount {
					t.Errorf("ATRs: pooled %d, fresh %d", gotPooled.ATRCount, gotFresh.ATRCount)
				}
			}
		})
	}
}
