package experiment

import (
	"reflect"
	"testing"

	"mafic/internal/sim"
	"mafic/internal/topology"
)

// TestSchedulerBackendInvariance runs every registered scenario (quick mode,
// stress-1k included) on the default calendar-queue scheduler and on the
// 4-ary-heap escape hatch and requires bit-identical results. This is the
// system-level guarantee behind the scheduler swap: both backends dispatch
// events in exactly the same (time, sequence) order, so no golden fixture
// can tell them apart.
func TestSchedulerBackendInvariance(t *testing.T) {
	for _, e := range Entries() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			calendar := Quick(e.Build())
			heap := Quick(e.Build())
			heap.Scheduler = sim.SchedulerConfig{Backend: sim.BackendHeap}

			gotCalendar, err := Run(calendar)
			if err != nil {
				t.Fatalf("calendar run: %v", err)
			}
			gotHeap, err := Run(heap)
			if err != nil {
				t.Fatalf("heap run: %v", err)
			}
			if !reflect.DeepEqual(gotCalendar, gotHeap) {
				t.Errorf("calendar and heap runs diverge")
				if gotCalendar.Counts != gotHeap.Counts {
					t.Errorf("counts: calendar %+v, heap %+v", gotCalendar.Counts, gotHeap.Counts)
				}
				if gotCalendar.EventsProcessed != gotHeap.EventsProcessed {
					t.Errorf("events: calendar %d, heap %d", gotCalendar.EventsProcessed, gotHeap.EventsProcessed)
				}
				if gotCalendar.Accuracy != gotHeap.Accuracy {
					t.Errorf("accuracy: calendar %v, heap %v", gotCalendar.Accuracy, gotHeap.Accuracy)
				}
			}
		})
	}
}

// TestHardenedBufferReuseInvariance repeats the pooled-vs-fresh proof with
// the robustness hardening switched on across the whole catalog: the probing
// memory and the ATR hysteresis tables are recycled through the same pools,
// so they too must never leak state between runs. Bit-identical results or
// the hardened zero-alloc path is unsound.
func TestHardenedBufferReuseInvariance(t *testing.T) {
	arena := topology.NewArena()

	for _, e := range Entries() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			pooled := Harden(Quick(e.Build()))
			fresh := Harden(Quick(e.Build()))
			fresh.Monitor.FreshBuffers = true

			gotPooled, err := runWith(pooled, arena)
			if err != nil {
				t.Fatalf("pooled run: %v", err)
			}
			gotFresh, err := runWith(fresh, nil)
			if err != nil {
				t.Fatalf("fresh run: %v", err)
			}
			if !reflect.DeepEqual(gotPooled, gotFresh) {
				t.Errorf("hardened pooled and fresh runs diverge")
				if gotPooled.Counts != gotFresh.Counts {
					t.Errorf("counts: pooled %+v, fresh %+v", gotPooled.Counts, gotFresh.Counts)
				}
				if gotPooled.Accuracy != gotFresh.Accuracy {
					t.Errorf("accuracy: pooled %v, fresh %v", gotPooled.Accuracy, gotFresh.Accuracy)
				}
				if gotPooled.ATRCount != gotFresh.ATRCount {
					t.Errorf("ATRs: pooled %d, fresh %d", gotPooled.ATRCount, gotFresh.ATRCount)
				}
			}
		})
	}
}

// TestBufferReuseInvariance runs every registered scenario (quick mode) down
// both refactor paths — pooled epoch-report buffers + a shared topology arena
// versus fresh buffers + fresh builds — and requires bit-identical results.
// This is the guarantee that makes the zero-alloc pipeline safe: buffer reuse
// can never leak state between epochs or between sweep points.
func TestBufferReuseInvariance(t *testing.T) {
	// One arena deliberately shared across every scenario in the catalog,
	// mimicking a sweep worker that rebuilds wildly different topologies
	// back to back.
	arena := topology.NewArena()

	for _, e := range Entries() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			pooled := Quick(e.Build())
			fresh := Quick(e.Build())
			fresh.Monitor.FreshBuffers = true

			gotPooled, err := runWith(pooled, arena)
			if err != nil {
				t.Fatalf("pooled run: %v", err)
			}
			gotFresh, err := runWith(fresh, nil)
			if err != nil {
				t.Fatalf("fresh run: %v", err)
			}

			// Every metric, counter and time-series bin must match
			// exactly — tolerances would hide pooling leaks.
			if !reflect.DeepEqual(gotPooled, gotFresh) {
				t.Errorf("pooled and fresh runs diverge")
				if gotPooled.Counts != gotFresh.Counts {
					t.Errorf("counts: pooled %+v, fresh %+v", gotPooled.Counts, gotFresh.Counts)
				}
				if gotPooled.EventsProcessed != gotFresh.EventsProcessed {
					t.Errorf("events: pooled %d, fresh %d", gotPooled.EventsProcessed, gotFresh.EventsProcessed)
				}
				if gotPooled.Accuracy != gotFresh.Accuracy {
					t.Errorf("accuracy: pooled %v, fresh %v", gotPooled.Accuracy, gotFresh.Accuracy)
				}
				if gotPooled.ATRCount != gotFresh.ATRCount {
					t.Errorf("ATRs: pooled %d, fresh %d", gotPooled.ATRCount, gotFresh.ATRCount)
				}
			}
		})
	}
}
