package experiment

import (
	"reflect"
	"testing"

	"mafic/internal/topology"
)

// stripRouteStats zeroes the fields that legitimately differ between routing
// modes: eager routing resides O(routers × nodes) entries, demand-driven
// routing a few columns. Everything else — every metric, counter, series bin
// and event count — must be bit-identical.
func stripRouteStats(r Result) Result {
	r.RouteEntries = 0
	r.RouteBytes = 0
	return r
}

// TestRoutingModeEquivalence runs every registered scenario (quick mode,
// stress scenarios included) under demand-driven lazy routing and under the
// historical eager all-pairs install, and requires bit-identical results.
// This is the system-level guarantee behind the two-level routing subsystem:
// both modes make identical forwarding decisions (same BFS, same ascending
// tie-break), so no golden fixture moved when lazy became the default.
func TestRoutingModeEquivalence(t *testing.T) {
	for _, e := range Entries() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			// The eager oracle resides O(routers × nodes) entries, so
			// stress scenarios are capped at the oracle scale (stress-50k
			// would need ~20 GB of route rows).
			lazy := oracleScale(Quick(e.Build()))
			// Topology faults are stripped: eager routing installs its
			// next hops once and (documented limitation) never
			// re-converges around a dead link or router, while lazy
			// routing re-snapshots on every TopoVersion bump — under
			// churn the two modes legitimately forward differently. The
			// lossy control plane is routing-independent and stays.
			lazy.Faults.LinkFlaps = nil
			lazy.Faults.RouterCrashes = nil
			eager := lazy
			eager.Topology.Routing = topology.RoutingEager

			gotLazy, err := Run(lazy)
			if err != nil {
				t.Fatalf("lazy run: %v", err)
			}
			gotEager, err := Run(eager)
			if err != nil {
				t.Fatalf("eager run: %v", err)
			}

			if gotLazy.RouteEntries >= gotEager.RouteEntries {
				t.Errorf("lazy routing resides %d entries, eager %d — demand-driven saved nothing",
					gotLazy.RouteEntries, gotEager.RouteEntries)
			}
			if !reflect.DeepEqual(stripRouteStats(gotLazy), stripRouteStats(gotEager)) {
				t.Errorf("lazy and eager runs diverge")
				if gotLazy.Counts != gotEager.Counts {
					t.Errorf("counts: lazy %+v, eager %+v", gotLazy.Counts, gotEager.Counts)
				}
				if gotLazy.EventsProcessed != gotEager.EventsProcessed {
					t.Errorf("events: lazy %d, eager %d", gotLazy.EventsProcessed, gotEager.EventsProcessed)
				}
				if gotLazy.Accuracy != gotEager.Accuracy {
					t.Errorf("accuracy: lazy %v, eager %v", gotLazy.Accuracy, gotEager.Accuracy)
				}
				if gotLazy.ATRCount != gotEager.ATRCount {
					t.Errorf("ATRs: lazy %d, eager %d", gotLazy.ATRCount, gotEager.ATRCount)
				}
			}
		})
	}
}
