package experiment

import (
	"errors"
	"testing"

	"mafic/internal/sim"
)

func TestFaultSpecEnabled(t *testing.T) {
	if (FaultSpec{}).Enabled() {
		t.Fatal("zero fault spec reports enabled")
	}
	cases := []FaultSpec{
		{LinkFlaps: []LinkFlap{{RouterB: 1, DownFor: sim.Millisecond}}},
		{RouterCrashes: []RouterCrash{{Router: 1, CrashAt: sim.Millisecond}}},
		{ReportLoss: 0.1},
		{ReportDelayProb: 0.1, ReportDelay: sim.Millisecond},
	}
	for i, f := range cases {
		if !f.Enabled() {
			t.Errorf("case %d: spec with a fault reports disabled", i)
		}
	}
}

func TestFaultSpecValidate(t *testing.T) {
	good := FaultSpec{
		LinkFlaps: []LinkFlap{{RouterA: 10, RouterB: 11, Start: 800 * sim.Millisecond,
			DownFor: 150 * sim.Millisecond, Period: 400 * sim.Millisecond, Count: 3}},
		RouterCrashes:   []RouterCrash{{Router: 5, CrashAt: 700 * sim.Millisecond, RestoreAt: 1400 * sim.Millisecond}},
		ReportLoss:      0.2,
		ReportDelayProb: 0.1,
		ReportDelay:     20 * sim.Millisecond,
	}
	if err := good.Validate(16); err != nil {
		t.Fatalf("valid spec rejected: %v", err)
	}
	if err := (FaultSpec{}).Validate(2); err != nil {
		t.Fatalf("zero spec must validate: %v", err)
	}
	// A crash with no restore is a permanent failure, which is legal.
	perm := FaultSpec{RouterCrashes: []RouterCrash{{Router: 1, CrashAt: sim.Second}}}
	if err := perm.Validate(4); err != nil {
		t.Fatalf("permanent crash rejected: %v", err)
	}

	flap := func(mut func(*LinkFlap)) FaultSpec {
		f := LinkFlap{RouterA: 1, RouterB: 2, Start: sim.Millisecond, DownFor: sim.Millisecond}
		mut(&f)
		return FaultSpec{LinkFlaps: []LinkFlap{f}}
	}
	crash := func(mut func(*RouterCrash)) FaultSpec {
		c := RouterCrash{Router: 1, CrashAt: sim.Millisecond}
		mut(&c)
		return FaultSpec{RouterCrashes: []RouterCrash{c}}
	}
	tests := []struct {
		name string
		spec FaultSpec
	}{
		{"flap router A negative", flap(func(f *LinkFlap) { f.RouterA = -1 })},
		{"flap router B beyond domain", flap(func(f *LinkFlap) { f.RouterB = 16 })},
		{"flap self-loop", flap(func(f *LinkFlap) { f.RouterB = f.RouterA })},
		{"flap negative start", flap(func(f *LinkFlap) { f.Start = -sim.Millisecond })},
		{"flap zero outage", flap(func(f *LinkFlap) { f.DownFor = 0 })},
		{"flap negative count", flap(func(f *LinkFlap) { f.Count = -1 })},
		{"flap period not above outage", flap(func(f *LinkFlap) { f.Count = 2; f.Period = f.DownFor })},
		{"crash router beyond domain", crash(func(c *RouterCrash) { c.Router = 99 })},
		{"crash negative time", crash(func(c *RouterCrash) { c.CrashAt = -sim.Second })},
		{"restore before crash", crash(func(c *RouterCrash) { c.RestoreAt = c.CrashAt })},
		{"negative report loss", FaultSpec{ReportLoss: -0.1}},
		{"report loss above one", FaultSpec{ReportLoss: 1.5}},
		{"negative delay probability", FaultSpec{ReportDelayProb: -0.1, ReportDelay: sim.Millisecond}},
		{"delay probability above one", FaultSpec{ReportDelayProb: 2, ReportDelay: sim.Millisecond}},
		{"negative report delay", FaultSpec{ReportDelay: -sim.Millisecond}},
		{"delay probability without delay", FaultSpec{ReportDelayProb: 0.5}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			if err := tt.spec.Validate(16); !errors.Is(err, ErrScenario) {
				t.Fatalf("want ErrScenario, got %v", err)
			}
		})
	}
}

// TestScenarioValidateChecksFaults verifies fault validation is wired into
// Scenario.Validate against the scenario's own router count.
func TestScenarioValidateChecksFaults(t *testing.T) {
	s := DefaultScenario()
	s.Faults.RouterCrashes = []RouterCrash{{Router: s.Topology.NumRouters, CrashAt: sim.Second}}
	if err := s.Validate(); !errors.Is(err, ErrScenario) {
		t.Fatalf("crash beyond the domain passed Validate: %v", err)
	}
	s = DefaultScenario()
	s.Faults.ReportLoss = 2
	if err := s.Validate(); !errors.Is(err, ErrScenario) {
		t.Fatalf("impossible report loss passed Validate: %v", err)
	}
}

// TestRunRejectsFlapOnUnconnectedRouters verifies the build-time check: a
// flap schedule naming two routers with no link between them fails the run
// instead of silently flapping nothing.
func TestRunRejectsFlapOnUnconnectedRouters(t *testing.T) {
	s := DefaultScenario()
	s.Topology.NumRouters = 8
	s.Topology.ExtraChords = 0 // pure ring: only consecutive routers connect
	s.Topology.BystanderHosts = 0
	s.Workload.TotalFlows = 4
	s.Faults.LinkFlaps = []LinkFlap{{RouterA: 2, RouterB: 5,
		Start: sim.Millisecond, DownFor: sim.Millisecond}}
	if _, err := Run(s); !errors.Is(err, ErrScenario) {
		t.Fatalf("flap on unconnected pair (2,5) did not fail the run: %v", err)
	}
}

// TestChaosScenariosRun executes the chaos catalog entries in quick mode and
// checks the fault layer actually bites: churn drops packets (flap-core,
// partition-heal) and the defence still activates everywhere.
func TestChaosScenariosRun(t *testing.T) {
	for _, name := range []string{"flap-core", "partition-heal"} {
		name := name
		t.Run(name, func(t *testing.T) {
			t.Parallel()
			e, ok := LookupScenario(name)
			if !ok {
				t.Fatalf("chaos scenario %q not registered", name)
			}
			s := Quick(e.Build())
			if !s.Faults.Enabled() {
				t.Fatalf("%s carries no faults", name)
			}
			res, err := Run(s)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if res.Counts.FaultDrops == 0 {
				t.Errorf("%s dropped no packets to churn — the fault schedule never bit", name)
			}
			if !res.Activated {
				t.Errorf("%s never activated the defence", name)
			}
		})
	}
}

// TestFaultlessRunsBitIdenticalWithFaultLayer pins the oracle discipline: a
// scenario with the zero FaultSpec must be bit-identical to the same scenario
// carrying an explicitly empty spec — the fault layer draws nothing and
// schedules nothing when disabled.
func TestFaultlessRunsBitIdenticalWithFaultLayer(t *testing.T) {
	base := Quick(DefaultScenario())
	with := base
	with.Faults = FaultSpec{LinkFlaps: []LinkFlap{}, RouterCrashes: []RouterCrash{}}

	resBase, err := Run(base)
	if err != nil {
		t.Fatalf("base run: %v", err)
	}
	resWith, err := Run(with)
	if err != nil {
		t.Fatalf("empty-spec run: %v", err)
	}
	if resBase.Counts != resWith.Counts || resBase.EventsProcessed != resWith.EventsProcessed ||
		resBase.Accuracy != resWith.Accuracy {
		t.Fatal("empty fault spec changed the run")
	}
	if resBase.Counts.FaultDrops != 0 {
		t.Fatalf("fault-free run recorded %d fault drops", resBase.Counts.FaultDrops)
	}
}
