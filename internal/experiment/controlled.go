package experiment

import (
	"encoding/json"
	"errors"
	"fmt"

	"mafic/internal/checkpoint"
	"mafic/internal/sim"
	"mafic/internal/topology"
)

// ErrInterrupted reports that a controlled run was interrupted through
// ControlOptions.Interrupt before reaching its scenario duration. When a Save
// sink is configured and the run had made any progress, a final snapshot was
// handed to it first, so the run can be resumed later with ResumeControlled.
var ErrInterrupted = errors.New("experiment: run interrupted")

// ErrSnapshot marks resume failures whose cause is the snapshot itself —
// undecodable bytes, an embedded scenario that no longer validates, or
// restore-time divergence from the rebuilt world. Callers holding several
// snapshots (the serve recovery path) use it to fall back to an older one;
// errors past the restore phase are genuine run failures and are not wrapped.
var ErrSnapshot = errors.New("experiment: snapshot unusable")

// ControlOptions shapes a controlled (long-running, supervisable) run.
type ControlOptions struct {
	// CheckpointEvery takes a snapshot at every multiple of this virtual
	// time inside (0, Duration). Zero disables periodic checkpoints.
	// Checkpoints require a Save sink.
	CheckpointEvery sim.Time
	// Save receives each encoded snapshot. An error aborts the run.
	Save func(at sim.Time, data []byte) error
	// Interrupt, when it becomes receivable (normally by closing the
	// channel), pauses the run at the next checkpoint boundary: a final
	// snapshot is saved (if Save is set and the clock has advanced) and the
	// run returns ErrInterrupted. A nil channel never interrupts. Interrupt
	// latency is bounded by the checkpoint interval — with no checkpoints
	// configured the run is a single uninterruptible segment.
	Interrupt <-chan struct{}
}

// RunControlled executes one scenario under the given control surface. With
// zero options it is exactly Run; with a checkpoint interval it is the
// service-mode run loop: snapshot periodically, pause on interrupt, resume
// later bit-identically (snapshots are pure reads, pinned by the
// kill-and-resume suite).
func RunControlled(s Scenario, opts ControlOptions) (Result, error) {
	if err := s.Validate(); err != nil {
		return Result{}, err
	}
	if opts.CheckpointEvery < 0 {
		return Result{}, fmt.Errorf("%w: checkpoint interval must not be negative", ErrScenario)
	}
	arena := arenaPool.Get()
	if arena == nil {
		arena = topology.NewArena()
	}
	defer arenaPool.Put(arena)
	sched := getScheduler(s.Scheduler)
	defer putScheduler(sched)
	b, err := buildRun(s, arena, sched)
	if err != nil {
		return Result{}, err
	}
	return controlLoop(b, opts)
}

// ResumeControlled decodes a snapshot, rebuilds its embedded scenario
// deterministically, overlays the captured dynamic state and continues the
// run under the given control surface. Periodic checkpoints resume on the
// original schedule (the next multiple of CheckpointEvery after the snapshot
// time). Failures caused by the snapshot itself are wrapped in ErrSnapshot.
func ResumeControlled(data []byte, opts ControlOptions) (Result, error) {
	snap, err := checkpoint.Decode(data)
	if err != nil {
		return Result{}, fmt.Errorf("%w: %w", ErrSnapshot, err)
	}
	var s Scenario
	if err := json.Unmarshal(snap.Scenario, &s); err != nil {
		return Result{}, fmt.Errorf("%w: decode snapshot scenario: %w", ErrSnapshot, err)
	}
	if err := s.Validate(); err != nil {
		return Result{}, fmt.Errorf("%w: %w", ErrSnapshot, err)
	}
	if opts.CheckpointEvery < 0 {
		return Result{}, fmt.Errorf("%w: checkpoint interval must not be negative", ErrScenario)
	}
	arena := arenaPool.Get()
	if arena == nil {
		arena = topology.NewArena()
	}
	defer arenaPool.Put(arena)
	sched := getScheduler(s.Scheduler)
	defer putScheduler(sched)
	b, err := buildRun(s, arena, sched)
	if err != nil {
		return Result{}, err
	}
	w := b.world()
	if err := checkpoint.Restore(w, snap); err != nil {
		b.abort()
		return Result{}, fmt.Errorf("%w: %w", ErrSnapshot, err)
	}
	b.result.Activated = w.Flags.Activated
	b.result.ActivationSeconds = w.Flags.ActivationSeconds
	b.result.DetectedByPushback = w.Flags.DetectedByPushback
	b.result.ATRCount = int(w.Flags.ATRCount)
	return controlLoop(b, opts)
}

// interrupted reports whether the control surface has asked the run to stop.
func interrupted(ch <-chan struct{}) bool {
	select {
	case <-ch:
		return true
	default:
		return false
	}
}

// controlLoop advances a built (or rebuilt-and-restored) run to its scenario
// duration in checkpoint-bounded segments, saving a snapshot after each
// segment and checking for interruption between them. It owns the built
// run's lifecycle: every return path either finishes or aborts it.
func controlLoop(b *builtRun, opts ControlOptions) (Result, error) {
	s := b.s
	sched := b.sched
	for {
		if opts.Interrupt != nil && interrupted(opts.Interrupt) {
			// Pause at the current event boundary. If the run has made any
			// progress and there is somewhere to save it, take a final
			// snapshot so the interruption loses nothing.
			if opts.Save != nil && sched.Now() > 0 {
				data, err := b.snapshot()
				if err != nil {
					b.abort()
					return Result{}, err
				}
				if err := opts.Save(sched.Now(), data); err != nil {
					b.abort()
					return Result{}, fmt.Errorf("save final snapshot at %v: %w", sched.Now(), err)
				}
			}
			b.abort()
			return Result{}, fmt.Errorf("%w at t=%v", ErrInterrupted, sched.Now())
		}
		next := s.Duration
		if opts.CheckpointEvery > 0 && opts.Save != nil {
			if t := (sched.Now()/opts.CheckpointEvery + 1) * opts.CheckpointEvery; t < s.Duration {
				next = t
			}
		}
		if err := sched.RunUntil(next); err != nil {
			b.abort()
			return Result{}, fmt.Errorf("run: %w", err)
		}
		if next >= s.Duration {
			return b.finish()
		}
		data, err := b.snapshot()
		if err != nil {
			b.abort()
			return Result{}, err
		}
		if err := opts.Save(next, data); err != nil {
			b.abort()
			return Result{}, fmt.Errorf("save checkpoint at %v: %w", next, err)
		}
	}
}
