package experiment

import (
	"fmt"

	"mafic/internal/baseline"
	"mafic/internal/core"
	"mafic/internal/flowtable"
	"mafic/internal/metrics"
	"mafic/internal/netsim"
	"mafic/internal/pool"
	"mafic/internal/pushback"
	"mafic/internal/sim"
	"mafic/internal/topology"
	"mafic/internal/traffic"
	"mafic/internal/trafficmatrix"
)

// defense abstracts over the MAFIC defender and the proportional baseline so
// the run loop can activate either uniformly.
type defense interface {
	Activate(victim netsim.IP)
	Deactivate()
}

// resourcePoolCap bounds the run-scoped engine-object pools below; beyond
// it released objects fall to the garbage collector.
const resourcePoolCap = 64

// arenaPool recycles topology arenas across sequential Run calls, so
// repeated standalone runs reuse topology-construction backing the same way
// RunMany's per-worker arenas do. Arena reuse is bit-invariant (the
// invariance suite pins it), so pooling cannot change results.
var arenaPool = pool.FreeList[topology.Arena]{Cap: resourcePoolCap}

// schedPools recycles schedulers, one pool per queue backend. A recycled
// scheduler is Reset before reuse, which keeps its event arena and queue
// geometry warm; dispatch order does not depend on either, so results are
// unaffected.
var schedPools = [2]pool.FreeList[sim.Scheduler]{
	{Cap: resourcePoolCap},
	{Cap: resourcePoolCap},
}

func getScheduler(cfg sim.SchedulerConfig) *sim.Scheduler {
	if sched := schedPools[cfg.Backend].Get(); sched != nil {
		return sched
	}
	return sim.NewSchedulerWith(cfg)
}

func putScheduler(sched *sim.Scheduler) {
	sched.Reset()
	schedPools[sched.Backend()].Put(sched)
}

// runScratch holds the run-scoped lookup tables runWith rebuilds for every
// scenario: the per-defender dispatch maps and the ground-truth label sets.
// Pooling them removes the last ROADMAP-named construction-time allocations
// (the per-defender map headers) from the sweep hot path — cleared maps keep
// their buckets, so a steady-state run allocates no headers at all.
type runScratch struct {
	defByRouter   map[netsim.NodeID]defense
	maficByRouter map[netsim.NodeID]*core.Defender
	ingressIDs    []netsim.NodeID
	legitLabels   map[uint64]bool
	attackLabels  map[uint64]bool
}

var scratchPool = pool.FreeList[runScratch]{Cap: resourcePoolCap}

func getScratch() *runScratch {
	s := scratchPool.Get()
	if s == nil {
		return &runScratch{
			defByRouter:   make(map[netsim.NodeID]defense),
			maficByRouter: make(map[netsim.NodeID]*core.Defender),
			legitLabels:   make(map[uint64]bool),
			attackLabels:  make(map[uint64]bool),
		}
	}
	clear(s.defByRouter)
	clear(s.maficByRouter)
	clear(s.legitLabels)
	clear(s.attackLabels)
	s.ingressIDs = s.ingressIDs[:0]
	return s
}

// Run executes one scenario and returns its metrics.
func Run(s Scenario) (Result, error) {
	arena := arenaPool.Get()
	if arena == nil {
		arena = topology.NewArena()
	}
	defer arenaPool.Put(arena)
	return runWith(s, arena)
}

// runWith executes one scenario, building its topology through the given
// arena when one is supplied. Sweep workers (RunMany) pass a per-worker arena
// so consecutive points reuse the topology-construction backing arrays; the
// result is bit-identical either way (the golden invariance tests pin this).
func runWith(s Scenario, arena *topology.Arena) (Result, error) {
	if err := s.Validate(); err != nil {
		return Result{}, err
	}
	if arena == nil {
		arena = topology.NewArena()
	}
	rng := sim.NewRNG(s.Seed)
	sched := getScheduler(s.Scheduler)
	defer putScheduler(sched)

	domain, err := arena.Build(s.Topology, sched, rng.Fork())
	if err != nil {
		return Result{}, fmt.Errorf("build topology: %w", err)
	}
	workload, err := traffic.BuildWorkload(s.Workload, domain, rng.Fork())
	if err != nil {
		return Result{}, fmt.Errorf("build workload: %w", err)
	}
	if err := installFaults(s.Faults, domain, sched); err != nil {
		return Result{}, err
	}

	collector := metrics.NewCollector(s.BinWidth)
	collector.ReserveSeries(s.Duration)
	collector.InstallHooks(domain.Net, domain.Victim.ID())
	for _, ing := range domain.Ingress {
		collector.TapRouter(ing, domain.VictimIP())
	}

	// Measurement layer (set-union counting) on every router. The monitor
	// is created before the defence filters so counters observe arrivals
	// before any dropping, mirroring the NS-2 setup where LogLogCounter
	// sits at the head of each link.
	var coordinator *pushback.Coordinator
	result := Result{
		Name:       s.Name,
		Pd:         s.MAFIC.DropProbability,
		Volume:     s.Workload.TotalFlows,
		TCPShare:   s.Workload.TCPShare,
		AttackRate: s.Workload.AttackRate,
		Routers:    s.Topology.NumRouters,
		Defense:    s.Defense.String(),
	}

	// Per-ingress defences, dispatched through pooled run-scoped tables.
	scratch := getScratch()
	defer scratchPool.Put(scratch)
	defByRouter := scratch.defByRouter
	maficByRouter := scratch.maficByRouter
	switch s.Defense {
	case DefenseMAFIC:
		for _, ing := range domain.Ingress {
			d, derr := core.NewDefender(s.MAFIC, ing, rng.Fork())
			if derr != nil {
				return Result{}, fmt.Errorf("defender on %s: %w", ing.Name(), derr)
			}
			d.SetDropObserver(collector.ObserveMAFICDrop)
			defByRouter[ing.ID()] = d
			maficByRouter[ing.ID()] = d
		}
	case DefenseBaseline:
		p := s.BaselineDropProbability
		if p <= 0 {
			p = s.MAFIC.DropProbability
		}
		for _, ing := range domain.Ingress {
			d, derr := baseline.NewDropper(p, ing, rng.Fork())
			if derr != nil {
				return Result{}, fmt.Errorf("baseline on %s: %w", ing.Name(), derr)
			}
			d.SetDropObserver(collector.ObserveBaselineDrop)
			defByRouter[ing.ID()] = d
		}
	case DefenseNone:
		// No defence: the run measures the undefended system.
	}

	activate := func(now sim.Time, routers []netsim.NodeID, byPushback bool) {
		if len(routers) == 0 {
			return
		}
		if _, already := collector.Activated(); !already {
			collector.MarkActivation(now)
			result.Activated = true
			result.ActivationSeconds = now.Seconds()
			result.DetectedByPushback = byPushback
		}
		for _, id := range routers {
			if d, ok := defByRouter[id]; ok {
				d.Activate(domain.VictimIP())
			}
		}
		result.ATRCount = len(routers)
	}

	ingressIDs := scratch.ingressIDs
	for _, ing := range domain.Ingress {
		ingressIDs = append(ingressIDs, ing.ID())
	}
	scratch.ingressIDs = ingressIDs

	pbCfg := s.Pushback
	pbCfg.Eligible = ingressIDs
	coordinator = pushback.NewCoordinator(pbCfg,
		func(req pushback.Request) {
			atrs := make([]netsim.NodeID, 0, len(req.ATRs))
			for _, a := range req.ATRs {
				atrs = append(atrs, a.Router)
			}
			activate(sched.Now(), atrs, true)
		},
		func(netsim.NodeID) {
			for _, d := range defByRouter {
				d.Deactivate()
			}
		})

	// The fault spec's control-plane knobs ride into the monitor config so
	// a chaos scenario declares its whole failure model in one place; when
	// they are zero the config is untouched and the monitor forks no RNG.
	monCfg := s.Monitor
	if s.Faults.ReportLoss > 0 {
		monCfg.ReportLoss = s.Faults.ReportLoss
	}
	if s.Faults.ReportDelayProb > 0 {
		monCfg.ReportDelayProb = s.Faults.ReportDelayProb
		monCfg.ReportDelay = s.Faults.ReportDelay
	}
	monitor, err := trafficmatrix.NewMonitor(domain.Net, monCfg, coordinator.HandleReport)
	if err != nil {
		coordinator.Release()
		return Result{}, fmt.Errorf("traffic monitor: %w", err)
	}

	// The defence filters attach after the taps and counters so drops are
	// observed by both measurement layers.
	if s.Defense != DefenseNone {
		for _, ing := range domain.Ingress {
			switch s.Defense {
			case DefenseMAFIC:
				ing.AttachFilter(maficByRouter[ing.ID()])
			case DefenseBaseline:
				d, ok := defByRouter[ing.ID()].(*baseline.Dropper)
				if ok {
					ing.AttachFilter(d)
				}
			}
		}
	}

	monitor.Start()
	workload.StartAll(s.Workload, rng.Fork())

	// Fallback activation covers scenarios where the detection layer is
	// intentionally mistuned or the attack is too small to detect.
	if s.DetectionFallback > 0 && s.Defense != DefenseNone {
		at := s.Workload.AttackStart + s.DetectionFallback
		sched.ScheduleAt(at, func(now sim.Time) {
			if _, already := collector.Activated(); already {
				return
			}
			activate(now, ingressIDs, false)
		})
	}

	if err := sched.RunUntil(s.Duration); err != nil {
		// The deferred putScheduler resets the scheduler, so no event can
		// fire after this point and the pooled objects are safe to recycle
		// even though the run aborted.
		monitor.Release()
		coordinator.Release()
		workload.Release()
		return Result{}, fmt.Errorf("run: %w", err)
	}
	monitor.Stop()
	workload.StopAll()

	// Headline metrics.
	result.Accuracy = collector.Accuracy()
	result.FalsePositiveRate = collector.FalsePositiveRate()
	result.FalseNegativeRate = collector.FalseNegativeRate()
	result.LegitimateDropRate = collector.LegitimateDropRate()
	result.TrafficReduction = collector.TrafficReduction(s.ReductionWindow)
	result.Counts = collector.Counts()
	result.Series = collector.Series()
	result.EventsProcessed = sched.Processed()

	// Flow-level outcomes from the defenders' tables.
	if s.Defense == DefenseMAFIC {
		legitLabels := scratch.legitLabels
		attackLabels := scratch.attackLabels
		for _, f := range workload.Legitimate {
			legitLabels[f.Label().Hash()] = true
		}
		for _, f := range workload.Attack {
			attackLabels[f.Label().Hash()] = true
		}
		for _, d := range maficByRouter {
			st := d.Stats()
			result.DefenseStats.Examined += st.Examined
			result.DefenseStats.Forwarded += st.Forwarded
			result.DefenseStats.Dropped += st.Dropped
			result.DefenseStats.DroppedIllegal += st.DroppedIllegal
			result.DefenseStats.DroppedPDT += st.DroppedPDT
			result.DefenseStats.DroppedProbing += st.DroppedProbing
			result.DefenseStats.ProbesSent += st.ProbesSent
			result.DefenseStats.FlowsProbed += st.FlowsProbed
			result.DefenseStats.FlowsNice += st.FlowsNice
			result.DefenseStats.FlowsCondemned += st.FlowsCondemned
			result.DefenseStats.FlowsIllegal += st.FlowsIllegal
			result.DefenseStats.FlowsReprobed += st.FlowsReprobed
			result.DefenseStats.FlowsRepeatCondemned += st.FlowsRepeatCondemned

			d.Tables().Range(func(hash uint64, state flowtable.State) {
				switch {
				case state == flowtable.StatePermanentDrop && legitLabels[hash]:
					result.LegitFlowsCondemned++
				case state == flowtable.StateNice && attackLabels[hash]:
					result.AttackFlowsForgiven++
				}
			})
			d.Release()
		}
		result.FlowsProbed = int(result.DefenseStats.FlowsProbed)
	}
	// Routing is demand-driven: the resident route state at the end of the
	// run is exactly the set of destinations the scenario's traffic used.
	result.RouteEntries, result.RouteBytes = domain.Net.RouteStats()

	// All metrics are extracted; pooled engine objects can go back to
	// their pools for the next run (or the next sweep worker) to reuse.
	monitor.Release()
	coordinator.Release()
	workload.Release()
	return result, nil
}
