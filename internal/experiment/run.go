package experiment

import (
	"encoding/json"
	"fmt"

	"mafic/internal/baseline"
	"mafic/internal/checkpoint"
	"mafic/internal/core"
	"mafic/internal/flowtable"
	"mafic/internal/metrics"
	"mafic/internal/netsim"
	"mafic/internal/pool"
	"mafic/internal/pushback"
	"mafic/internal/sim"
	"mafic/internal/topology"
	"mafic/internal/traffic"
	"mafic/internal/trafficmatrix"
)

// defense abstracts over the MAFIC defender and the proportional baseline so
// the run loop can activate either uniformly.
type defense interface {
	Activate(victim netsim.IP)
	Deactivate()
}

// resourcePoolCap bounds the run-scoped engine-object pools below; beyond
// it released objects fall to the garbage collector.
const resourcePoolCap = 64

// arenaPool recycles topology arenas across sequential Run calls, so
// repeated standalone runs reuse topology-construction backing the same way
// RunMany's per-worker arenas do. Arena reuse is bit-invariant (the
// invariance suite pins it), so pooling cannot change results.
var arenaPool = pool.FreeList[topology.Arena]{Cap: resourcePoolCap}

// schedPools recycles schedulers, one pool per queue backend. A recycled
// scheduler is Reset before reuse, which keeps its event arena and queue
// geometry warm; dispatch order does not depend on either, so results are
// unaffected.
var schedPools = [2]pool.FreeList[sim.Scheduler]{
	{Cap: resourcePoolCap},
	{Cap: resourcePoolCap},
}

func getScheduler(cfg sim.SchedulerConfig) *sim.Scheduler {
	if sched := schedPools[cfg.Backend].Get(); sched != nil {
		return sched
	}
	return sim.NewSchedulerWith(cfg)
}

func putScheduler(sched *sim.Scheduler) {
	sched.Reset()
	schedPools[sched.Backend()].Put(sched)
}

// runScratch holds the run-scoped lookup tables buildRun rebuilds for every
// scenario: the per-defender dispatch maps and the ground-truth label sets.
// Pooling them removes the last ROADMAP-named construction-time allocations
// (the per-defender map headers) from the sweep hot path — cleared maps keep
// their buckets, so a steady-state run allocates no headers at all.
type runScratch struct {
	defByRouter   map[netsim.NodeID]defense
	maficByRouter map[netsim.NodeID]*core.Defender
	ingressIDs    []netsim.NodeID
	legitLabels   map[uint64]bool
	attackLabels  map[uint64]bool
	mafic         []*core.Defender
	droppers      []*baseline.Dropper
}

var scratchPool = pool.FreeList[runScratch]{Cap: resourcePoolCap}

func getScratch() *runScratch {
	s := scratchPool.Get()
	if s == nil {
		return &runScratch{
			defByRouter:   make(map[netsim.NodeID]defense),
			maficByRouter: make(map[netsim.NodeID]*core.Defender),
			legitLabels:   make(map[uint64]bool),
			attackLabels:  make(map[uint64]bool),
		}
	}
	clear(s.defByRouter)
	clear(s.maficByRouter)
	clear(s.legitLabels)
	clear(s.attackLabels)
	s.ingressIDs = s.ingressIDs[:0]
	s.mafic = s.mafic[:0]
	s.droppers = s.droppers[:0]
	return s
}

// builtRun is a fully built scenario that has not finished running yet: the
// checkpoint layer snapshots and restores between buildRun and finish.
type builtRun struct {
	s           Scenario
	sched       *sim.Scheduler
	rng         *sim.RNG
	domain      *topology.Domain
	workload    *traffic.Workload
	collector   *metrics.Collector
	coordinator *pushback.Coordinator
	monitor     *trafficmatrix.Monitor
	scratch     *runScratch
	// buildSeq is the scheduler sequence number at the build/run boundary;
	// see checkpoint.World.
	buildSeq uint64
	result   Result
}

// Run executes one scenario and returns its metrics.
func Run(s Scenario) (Result, error) {
	arena := arenaPool.Get()
	if arena == nil {
		arena = topology.NewArena()
	}
	defer arenaPool.Put(arena)
	return runWith(s, arena)
}

// runWith executes one scenario, building its topology through the given
// arena when one is supplied. Sweep workers (RunMany) pass a per-worker arena
// so consecutive points reuse the topology-construction backing arrays; the
// result is bit-identical either way (the golden invariance tests pin this).
func runWith(s Scenario, arena *topology.Arena) (Result, error) {
	if err := s.Validate(); err != nil {
		return Result{}, err
	}
	sched := getScheduler(s.Scheduler)
	defer putScheduler(sched)
	b, err := buildRun(s, arena, sched)
	if err != nil {
		return Result{}, err
	}
	if err := sched.RunUntil(s.Duration); err != nil {
		// The deferred putScheduler resets the scheduler, so no event can
		// fire after this point and the pooled objects are safe to recycle
		// even though the run aborted.
		b.abort()
		return Result{}, fmt.Errorf("run: %w", err)
	}
	return b.finish()
}

// RunWithCheckpoints executes one scenario, pausing at each of the given
// virtual times (which must be ascending and inside (0, Duration)) to take a
// snapshot and hand its encoded bytes to save. The run's result is
// bit-identical to an uninterrupted Run: a snapshot is a pure read.
func RunWithCheckpoints(s Scenario, times []sim.Time, save func(at sim.Time, data []byte) error) (Result, error) {
	if err := s.Validate(); err != nil {
		return Result{}, err
	}
	for i, t := range times {
		if t <= 0 || t >= s.Duration {
			return Result{}, fmt.Errorf("%w: checkpoint time %v outside (0, %v)", ErrScenario, t, s.Duration)
		}
		if i > 0 && t <= times[i-1] {
			return Result{}, fmt.Errorf("%w: checkpoint times must be strictly ascending", ErrScenario)
		}
	}
	arena := arenaPool.Get()
	if arena == nil {
		arena = topology.NewArena()
	}
	defer arenaPool.Put(arena)
	sched := getScheduler(s.Scheduler)
	defer putScheduler(sched)
	b, err := buildRun(s, arena, sched)
	if err != nil {
		return Result{}, err
	}
	for _, t := range times {
		if err := sched.RunUntil(t); err != nil {
			b.abort()
			return Result{}, fmt.Errorf("run: %w", err)
		}
		data, err := b.snapshot()
		if err != nil {
			b.abort()
			return Result{}, err
		}
		if err := save(t, data); err != nil {
			b.abort()
			return Result{}, fmt.Errorf("save checkpoint at %v: %w", t, err)
		}
	}
	if err := sched.RunUntil(s.Duration); err != nil {
		b.abort()
		return Result{}, fmt.Errorf("run: %w", err)
	}
	return b.finish()
}

// RunFromSnapshot decodes a snapshot, rebuilds its scenario deterministically,
// overlays the captured state and runs the remainder of the scenario. The
// returned result is bit-identical to the uninterrupted run's (the
// crash-recovery suite pins this for every catalog scenario). It is
// ResumeControlled without a control surface: no further checkpoints, no
// interruption.
func RunFromSnapshot(data []byte) (Result, error) {
	return ResumeControlled(data, ControlOptions{})
}

// world assembles the checkpoint bridge over the built run.
func (b *builtRun) world() *checkpoint.World {
	return &checkpoint.World{
		Sched:       b.sched,
		RNG:         b.rng,
		Net:         b.domain.Net,
		Workload:    b.workload,
		Monitor:     b.monitor,
		Coordinator: b.coordinator,
		Collector:   b.collector,
		MAFIC:       b.scratch.mafic,
		Baseline:    b.scratch.droppers,
		BuildSeq:    b.buildSeq,
		Flags: checkpoint.RunFlags{
			Activated:          b.result.Activated,
			ActivationSeconds:  b.result.ActivationSeconds,
			DetectedByPushback: b.result.DetectedByPushback,
			ATRCount:           int64(b.result.ATRCount),
		},
	}
}

// snapshot captures and encodes the run's current state.
func (b *builtRun) snapshot() ([]byte, error) {
	scenarioJSON, err := json.Marshal(b.s)
	if err != nil {
		return nil, fmt.Errorf("encode scenario: %w", err)
	}
	snap, err := checkpoint.Capture(b.world(), scenarioJSON)
	if err != nil {
		return nil, err
	}
	return checkpoint.Encode(snap), nil
}

// buildRun constructs every component of a scenario run — topology, workload,
// faults, measurement, detection, defence — schedules the build-time events,
// and records the build/run sequence boundary. It does not advance the clock.
func buildRun(s Scenario, arena *topology.Arena, sched *sim.Scheduler) (*builtRun, error) {
	if arena == nil {
		arena = topology.NewArena()
	}
	rng := sim.NewRNG(s.Seed)

	domain, err := arena.Build(s.Topology, sched, rng.Fork())
	if err != nil {
		return nil, fmt.Errorf("build topology: %w", err)
	}
	workload, err := traffic.BuildWorkload(s.Workload, domain, rng.Fork())
	if err != nil {
		return nil, fmt.Errorf("build workload: %w", err)
	}
	if err := installFaults(s.Faults, domain, sched); err != nil {
		return nil, err
	}

	collector := metrics.NewCollector(s.BinWidth)
	collector.ReserveSeries(s.Duration)
	collector.InstallHooks(domain.Net, domain.Victim.ID())
	for _, ing := range domain.Ingress {
		collector.TapRouter(ing, domain.VictimIP())
	}

	b := &builtRun{
		s:         s,
		sched:     sched,
		rng:       rng,
		domain:    domain,
		workload:  workload,
		collector: collector,
		result: Result{
			Name:       s.Name,
			Pd:         s.MAFIC.DropProbability,
			Volume:     s.Workload.TotalFlows,
			TCPShare:   s.Workload.TCPShare,
			AttackRate: s.Workload.AttackRate,
			Routers:    s.Topology.NumRouters,
			Defense:    s.Defense.String(),
		},
	}

	// Per-ingress defences, dispatched through pooled run-scoped tables.
	scratch := getScratch()
	b.scratch = scratch
	defByRouter := scratch.defByRouter
	maficByRouter := scratch.maficByRouter
	switch s.Defense {
	case DefenseMAFIC:
		for _, ing := range domain.Ingress {
			d, derr := core.NewDefender(s.MAFIC, ing, rng.Fork())
			if derr != nil {
				scratchPool.Put(scratch)
				return nil, fmt.Errorf("defender on %s: %w", ing.Name(), derr)
			}
			d.SetDropObserver(collector.ObserveMAFICDrop)
			defByRouter[ing.ID()] = d
			maficByRouter[ing.ID()] = d
			scratch.mafic = append(scratch.mafic, d)
		}
	case DefenseBaseline:
		p := s.BaselineDropProbability
		if p <= 0 {
			p = s.MAFIC.DropProbability
		}
		for _, ing := range domain.Ingress {
			d, derr := baseline.NewDropper(p, ing, rng.Fork())
			if derr != nil {
				scratchPool.Put(scratch)
				return nil, fmt.Errorf("baseline on %s: %w", ing.Name(), derr)
			}
			d.SetDropObserver(collector.ObserveBaselineDrop)
			defByRouter[ing.ID()] = d
			scratch.droppers = append(scratch.droppers, d)
		}
	case DefenseNone:
		// No defence: the run measures the undefended system.
	}

	activate := func(now sim.Time, routers []netsim.NodeID, byPushback bool) {
		if len(routers) == 0 {
			return
		}
		if _, already := collector.Activated(); !already {
			collector.MarkActivation(now)
			b.result.Activated = true
			b.result.ActivationSeconds = now.Seconds()
			b.result.DetectedByPushback = byPushback
		}
		for _, id := range routers {
			if d, ok := defByRouter[id]; ok {
				d.Activate(domain.VictimIP())
			}
		}
		b.result.ATRCount = len(routers)
	}

	ingressIDs := scratch.ingressIDs
	for _, ing := range domain.Ingress {
		ingressIDs = append(ingressIDs, ing.ID())
	}
	scratch.ingressIDs = ingressIDs

	pbCfg := s.Pushback
	pbCfg.Eligible = ingressIDs
	b.coordinator = pushback.NewCoordinator(pbCfg,
		func(req pushback.Request) {
			atrs := make([]netsim.NodeID, 0, len(req.ATRs))
			for _, a := range req.ATRs {
				atrs = append(atrs, a.Router)
			}
			activate(sched.Now(), atrs, true)
		},
		func(netsim.NodeID) {
			for _, d := range defByRouter {
				d.Deactivate()
			}
		})

	// The fault spec's control-plane knobs ride into the monitor config so
	// a chaos scenario declares its whole failure model in one place; when
	// they are zero the config is untouched and the monitor forks no RNG.
	monCfg := s.Monitor
	if s.Faults.ReportLoss > 0 {
		monCfg.ReportLoss = s.Faults.ReportLoss
	}
	if s.Faults.ReportDelayProb > 0 {
		monCfg.ReportDelayProb = s.Faults.ReportDelayProb
		monCfg.ReportDelay = s.Faults.ReportDelay
	}
	b.monitor, err = trafficmatrix.NewMonitor(domain.Net, monCfg, b.coordinator.HandleReport)
	if err != nil {
		b.coordinator.Release()
		scratchPool.Put(scratch)
		return nil, fmt.Errorf("traffic monitor: %w", err)
	}

	// The defence filters attach after the taps and counters so drops are
	// observed by both measurement layers.
	if s.Defense != DefenseNone {
		for _, ing := range domain.Ingress {
			switch s.Defense {
			case DefenseMAFIC:
				ing.AttachFilter(maficByRouter[ing.ID()])
			case DefenseBaseline:
				d, ok := defByRouter[ing.ID()].(*baseline.Dropper)
				if ok {
					ing.AttachFilter(d)
				}
			}
		}
	}

	b.monitor.Start()
	workload.StartAll(s.Workload, rng.Fork())

	// Fallback activation covers scenarios where the detection layer is
	// intentionally mistuned or the attack is too small to detect.
	if s.DetectionFallback > 0 && s.Defense != DefenseNone {
		at := s.Workload.AttackStart + s.DetectionFallback
		sched.ScheduleAt(at, func(now sim.Time) {
			if _, already := collector.Activated(); already {
				return
			}
			activate(now, ingressIDs, false)
		})
	}

	b.buildSeq = sched.Seq()
	return b, nil
}

// abort releases the built run's pooled components after a failed run. The
// caller is responsible for resetting the scheduler (the Run family does it
// through the deferred putScheduler), which guarantees no released object can
// be dispatched to afterwards.
func (b *builtRun) abort() {
	b.monitor.Release()
	b.coordinator.Release()
	b.workload.Release()
	scratchPool.Put(b.scratch)
}

// finish stops the measurement and traffic layers, extracts every metric into
// the result, and releases the pooled engine objects.
func (b *builtRun) finish() (Result, error) {
	s := b.s
	b.monitor.Stop()
	b.workload.StopAll()

	// Headline metrics.
	collector := b.collector
	b.result.Accuracy = collector.Accuracy()
	b.result.FalsePositiveRate = collector.FalsePositiveRate()
	b.result.FalseNegativeRate = collector.FalseNegativeRate()
	b.result.LegitimateDropRate = collector.LegitimateDropRate()
	b.result.TrafficReduction = collector.TrafficReduction(s.ReductionWindow)
	b.result.Counts = collector.Counts()
	b.result.Series = collector.Series()
	b.result.EventsProcessed = b.sched.Processed()

	// Flow-level outcomes from the defenders' tables.
	if s.Defense == DefenseMAFIC {
		legitLabels := b.scratch.legitLabels
		attackLabels := b.scratch.attackLabels
		for _, f := range b.workload.Legitimate {
			legitLabels[f.Label().Hash()] = true
		}
		for _, f := range b.workload.Attack {
			attackLabels[f.Label().Hash()] = true
		}
		for _, d := range b.scratch.mafic {
			st := d.Stats()
			b.result.DefenseStats.Examined += st.Examined
			b.result.DefenseStats.Forwarded += st.Forwarded
			b.result.DefenseStats.Dropped += st.Dropped
			b.result.DefenseStats.DroppedIllegal += st.DroppedIllegal
			b.result.DefenseStats.DroppedPDT += st.DroppedPDT
			b.result.DefenseStats.DroppedProbing += st.DroppedProbing
			b.result.DefenseStats.ProbesSent += st.ProbesSent
			b.result.DefenseStats.FlowsProbed += st.FlowsProbed
			b.result.DefenseStats.FlowsNice += st.FlowsNice
			b.result.DefenseStats.FlowsCondemned += st.FlowsCondemned
			b.result.DefenseStats.FlowsIllegal += st.FlowsIllegal
			b.result.DefenseStats.FlowsReprobed += st.FlowsReprobed
			b.result.DefenseStats.FlowsRepeatCondemned += st.FlowsRepeatCondemned

			d.Tables().Range(func(hash uint64, state flowtable.State) {
				switch {
				case state == flowtable.StatePermanentDrop && legitLabels[hash]:
					b.result.LegitFlowsCondemned++
				case state == flowtable.StateNice && attackLabels[hash]:
					b.result.AttackFlowsForgiven++
				}
			})
			d.Release()
		}
		b.result.FlowsProbed = int(b.result.DefenseStats.FlowsProbed)
	}
	// Routing is demand-driven: the resident route state at the end of the
	// run is exactly the set of destinations the scenario's traffic used.
	b.result.RouteEntries, b.result.RouteBytes = b.domain.Net.RouteStats()

	// All metrics are extracted; pooled engine objects can go back to
	// their pools for the next run (or the next sweep worker) to reuse.
	b.monitor.Release()
	b.coordinator.Release()
	b.workload.Release()
	scratchPool.Put(b.scratch)
	return b.result, nil
}
