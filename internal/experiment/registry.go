package experiment

import (
	"fmt"
	"sort"
	"sync"

	"mafic/internal/sim"
	"mafic/internal/topology"
)

// Entry is one named, self-describing scenario in the registry. Build must
// return a fresh Scenario on every call so callers can mutate the result
// freely.
type Entry struct {
	// Name is the registry key, used by `maficsim -scenario <name>`.
	Name string
	// Description is a one-line summary of the adversary strategy the
	// scenario exercises.
	Description string
	// Build constructs the scenario with its default knobs and seed.
	Build func() Scenario
}

var (
	registryMu sync.RWMutex
	registry   = make(map[string]Entry)
)

// Register adds a scenario to the registry. It fails on empty names, nil
// builders, and duplicates, so every registered name is runnable.
func Register(e Entry) error {
	if e.Name == "" {
		return fmt.Errorf("%w: scenario name must not be empty", ErrScenario)
	}
	if e.Build == nil {
		return fmt.Errorf("%w: scenario %q has no builder", ErrScenario, e.Name)
	}
	registryMu.Lock()
	defer registryMu.Unlock()
	if _, dup := registry[e.Name]; dup {
		return fmt.Errorf("%w: scenario %q registered twice", ErrScenario, e.Name)
	}
	registry[e.Name] = e
	return nil
}

// MustRegister is Register for known-good entries; it panics on error and is
// meant for package-level catalogs.
func MustRegister(e Entry) {
	if err := Register(e); err != nil {
		panic(err)
	}
}

// LookupScenario returns the registered entry for name.
func LookupScenario(name string) (Entry, bool) {
	registryMu.RLock()
	defer registryMu.RUnlock()
	e, ok := registry[name]
	return e, ok
}

// ScenarioNames returns every registered name in sorted order.
func ScenarioNames() []string {
	registryMu.RLock()
	defer registryMu.RUnlock()
	names := make([]string, 0, len(registry))
	for name := range registry {
		names = append(names, name)
	}
	sort.Strings(names)
	return names
}

// Entries returns every registered entry sorted by name.
func Entries() []Entry {
	registryMu.RLock()
	defer registryMu.RUnlock()
	out := make([]Entry, 0, len(registry))
	for _, e := range registry {
		out = append(out, e)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Name < out[j].Name })
	return out
}

// stressScaleRouters marks the boundary between ordinary scenarios and
// scale proofs: at or above this router count the domain size IS the point
// of the scenario, so Quick keeps it and shrinks only time and traffic.
const stressScaleRouters = 600

// Quick returns a scaled-down copy of s that exercises the same pipeline —
// same adversary strategy, same detection and defence path — in a fraction
// of the events. Tests and golden-run fixtures use it so the whole catalog
// re-runs quickly. Stress-class scenarios (router count at or above
// stressScaleRouters) keep their full domain: their quick variant still
// builds and measures a 1000-router network, only the simulated time and
// flow volume shrink.
func Quick(s Scenario) Scenario {
	switch {
	case s.Topology.NumRouters >= stressScaleRouters:
		// Keep the router graph; trim the host population.
		s.Topology.BystanderHosts = 16
	case s.Topology.Style == topology.StyleTransitStub:
		s.Topology.NumRouters = 18
		s.Topology.TransitRouters = 3
		s.Topology.BystanderHosts = 8
	default:
		s.Topology.NumRouters = 16
		s.Topology.ExtraChords = 4
		s.Topology.BystanderHosts = 8
	}
	if s.Workload.TotalFlows > 30 {
		s.Workload.TotalFlows = 30
	}
	if s.Workload.FlashCrowdFlows > 12 {
		s.Workload.FlashCrowdFlows = 12
	}
	if s.Duration > 2*sim.Second {
		s.Duration = 2 * sim.Second
	}
	if s.DetectionFallback > 300*sim.Millisecond {
		s.DetectionFallback = 300 * sim.Millisecond
	}
	return s
}

// builtin assembles a catalog entry whose scenario starts from the paper's
// Table II defaults and applies the given twist.
func builtin(name, description string, twist func(*Scenario)) Entry {
	return Entry{
		Name:        name,
		Description: description,
		Build: func() Scenario {
			s := DefaultScenario()
			s.Name = name
			if twist != nil {
				twist(&s)
			}
			return s
		},
	}
}

// The built-in catalog: the paper's default operating point plus the
// adversarial workloads the paper never tried. Every entry runs through the
// same Run/RunMany path and emits the same Result metrics, so any of them is
// one `-scenario <name>` away from a reproducible, benchmarkable run.
func init() {
	MustRegister(builtin("table2",
		"paper Table II defaults: single pulsing flood, Pd=90%, Vt=50, Γ=95%, N=40",
		nil))

	MustRegister(builtin("multi-victim",
		"simultaneous floods on the primary victim and two extra victims behind their own last-hop routers",
		func(s *Scenario) {
			s.Topology.ExtraVictims = 2
			s.Workload.TotalFlows = 60
			s.Workload.TCPShare = 0.80
			s.Workload.ExtraVictimShare = 0.4
		}))

	MustRegister(builtin("rolling-pulse",
		"rotating source groups hand the flooding baton every 150 ms, shifting the hot routers between epochs",
		func(s *Scenario) {
			s.Workload.TotalFlows = 60
			s.Workload.TCPShare = 0.80
			s.Workload.AttackGroups = 3
			s.Workload.AttackRotationPeriod = 150 * sim.Millisecond
			// Each group floods one third of the time; triple the peak
			// rate so the time-averaged volume matches the default flood.
			s.Workload.AttackRate *= 3
		}))

	MustRegister(builtin("flash-crowd",
		"legitimate TCP flash crowd (no spoofing) arrives with the attack — tests discrimination, not detection",
		func(s *Scenario) {
			s.Workload.FlashCrowdFlows = 25
			s.Workload.FlashCrowdStart = s.Workload.AttackStart
			s.Workload.FlashCrowdWindow = 150 * sim.Millisecond
			s.Workload.FlashCrowdRate = s.Workload.LegitRate
		}))

	MustRegister(builtin("rate-mix",
		"heterogeneous attack: per-flow rates span 0.05×–3× R, hiding slow floods behind loud ones",
		func(s *Scenario) {
			s.Workload.TotalFlows = 60
			s.Workload.TCPShare = 0.80
			s.Workload.AttackRateMix = []float64{0.05, 0.25, 1, 3}
		}))

	MustRegister(builtin("shrew",
		"low-rate shrew pulses tuned to the TCP minimum RTO: 80 ms bursts once per second",
		func(s *Scenario) {
			s.Workload.AttackPulsePeriod = 1 * sim.Second
			s.Workload.AttackDutyCycle = 0.08
			s.Workload.TotalFlows = 60
			s.Workload.TCPShare = 0.80
		}))

	MustRegister(builtin("carpet-bombing",
		"carpet bombing: the flood is spread across eight small victims behind their own routers, so no single |D_j| spikes hard",
		func(s *Scenario) {
			s.Topology.ExtraVictims = 8
			s.Workload.TotalFlows = 70
			s.Workload.TCPShare = 0.70
			s.Workload.ExtraVictimShare = 0.75
		}))

	MustRegister(builtin("coremelt",
		"coremelt-style: most attack flows cross the transit core toward bystander hosts, congesting the victim's links without ever addressing the victim",
		func(s *Scenario) {
			s.Topology = topology.DefaultTransitStubConfig()
			s.Workload.TotalFlows = 60
			s.Workload.TCPShare = 0.80
			s.Workload.CoremeltShare = 0.6
		}))

	MustRegister(builtin("flash-overlap",
		"flash crowd arrives 700 ms after the attack, meeting an already-active defender at first sight — worst case for probing collateral",
		func(s *Scenario) {
			s.Workload.FlashCrowdFlows = 25
			s.Workload.FlashCrowdStart = s.Workload.AttackStart + 700*sim.Millisecond
			s.Workload.FlashCrowdWindow = 150 * sim.Millisecond
			s.Workload.FlashCrowdRate = s.Workload.LegitRate
		}))

	MustRegister(builtin("transit-stub",
		"default flood on a transit-stub domain: a meshed transit core with stub chains, not the intra-AS ring",
		func(s *Scenario) {
			s.Topology = topology.DefaultTransitStubConfig()
		}))

	MustRegister(builtin("multihomed-victim",
		"victim is dual-homed, splitting its inbound flood across two last-hop routers",
		func(s *Scenario) {
			s.Topology.MultiHomedVictim = true
		}))

	MustRegister(builtin("stress-5k",
		"scale proof: 5000-router ring with 1500 chords, 40 ingress routers, three simultaneous victims — demand-driven two-level routing materializes only the few dozen active destination columns instead of the ~33M-entry all-pairs install",
		func(s *Scenario) {
			s.Topology.NumRouters = 5000
			s.Topology.NumIngress = 40
			// Chord density matches stress-1k (0.3 chords per router):
			// shortest paths stay tens of hops, so per-packet event
			// counts grow slowly while the domain is 125x the paper's.
			s.Topology.ExtraChords = 1500
			s.Topology.BystanderHosts = 32
			s.Topology.ExtraVictims = 2
			s.Workload.TotalFlows = 80
			s.Workload.TCPShare = 0.80
			s.Workload.ExtraVictimShare = 0.3
		}))

	MustRegister(builtin("stress-50k",
		"scale proof: 50000-router ring with 15000 chords, 40 ingress routers, three simultaneous victims — sparse adjacency rows and the monitored-only traffic matrix keep per-router state O(nodes+links), where the dense adjacency alone would need ~20 GB and the monitor would rotate 200k sketches per epoch",
		func(s *Scenario) {
			s.Topology.NumRouters = 50000
			s.Topology.NumIngress = 40
			// Chord density matches stress-1k/5k (0.3 chords per router):
			// shortest paths stay bounded while the domain is 1250x the
			// paper's.
			s.Topology.ExtraChords = 15000
			s.Topology.BystanderHosts = 32
			s.Topology.ExtraVictims = 2
			s.Workload.TotalFlows = 80
			s.Workload.TCPShare = 0.80
			s.Workload.ExtraVictimShare = 0.3
		}))

	// Chaos scenarios: the same floods with the fault layer switched on.
	// Fault indices are chosen so the failed elements sit on loaded
	// ingress-to-victim paths and stay transit (never ingress, never the
	// last hop) in both the full 40-router domain and the 16-router quick
	// variant, so the golden fixtures and the full runs churn the same
	// roles: links 1-2 and 8-9 carry the seed-1 shortest paths from the
	// third and ninth ingress routers, and router 7 is the chord hub most
	// ingress paths funnel through.
	MustRegister(builtin("flap-core",
		"chaos: two loaded transit ring links flap repeatedly during the flood (150 ms outages every 400 ms); lazy routing re-converges around every flap while detection and defence keep running",
		func(s *Scenario) {
			s.Faults.LinkFlaps = []LinkFlap{
				{RouterA: 1, RouterB: 2, Start: 800 * sim.Millisecond,
					DownFor: 150 * sim.Millisecond, Period: 400 * sim.Millisecond, Count: 3},
				{RouterA: 8, RouterB: 9, Start: 1000 * sim.Millisecond,
					DownFor: 150 * sim.Millisecond, Period: 400 * sim.Millisecond, Count: 2},
			}
		}))

	MustRegister(builtin("partition-heal",
		"chaos: the transit chord hub crashes at 700 ms — cutting every ingress path through it mid-defence — and rejoins at 1.4 s; routing heals both ways and the defence survives the churn",
		func(s *Scenario) {
			s.Faults.RouterCrashes = []RouterCrash{
				{Router: 7, CrashAt: 700 * sim.Millisecond, RestoreAt: 1400 * sim.Millisecond},
			}
		}))

	MustRegister(builtin("lossy-control",
		"chaos: the stress-5k flood under a degraded control plane — 20% of epoch reports lost and 10% delayed 20 ms — with the coordinator's staleness timeout and re-fire backoff absorbing the gaps",
		func(s *Scenario) {
			s.Topology.NumRouters = 5000
			s.Topology.NumIngress = 40
			s.Topology.ExtraChords = 1500
			s.Topology.BystanderHosts = 32
			s.Topology.ExtraVictims = 2
			s.Workload.TotalFlows = 80
			s.Workload.TCPShare = 0.80
			s.Workload.ExtraVictimShare = 0.3
			s.Faults.ReportLoss = 0.2
			s.Faults.ReportDelayProb = 0.1
			s.Faults.ReportDelay = 20 * sim.Millisecond
			s.Pushback.StaleEpochs = 4
			s.Pushback.RefireBackoffEpochs = 2
		}))

	MustRegister(builtin("stress-1k",
		"scale proof: 1000-router ring with 300 chords, 40 ingress routers, three simultaneous victims — exercises the topology arena and zero-alloc epoch pipeline at 25x the paper's domain size",
		func(s *Scenario) {
			s.Topology.NumRouters = 1000
			s.Topology.NumIngress = 40
			// Dense chording keeps shortest paths short (tens of hops at
			// most) so per-packet event counts stay bounded while the
			// measurement layer still runs 1000 counters per epoch.
			s.Topology.ExtraChords = 300
			s.Topology.BystanderHosts = 32
			s.Topology.ExtraVictims = 2
			s.Workload.TotalFlows = 80
			s.Workload.TCPShare = 0.80
			s.Workload.ExtraVictimShare = 0.3
		}))
}
