package experiment

import (
	"runtime"
	"sync"
	"sync/atomic"

	"mafic/internal/topology"
)

// RunMany executes every scenario and returns the results in input order.
// workers caps the number of scenarios in flight at once; zero means
// GOMAXPROCS, one forces strictly serial execution.
//
// Parallel execution is bit-identical to serial execution: each scenario run
// owns its scheduler and derives every random stream from the scenario seed
// alone, so runs share no mutable state. The first error in input order is
// returned regardless of completion order, keeping failures deterministic
// too.
func RunMany(scenarios []Scenario, workers int) ([]Result, error) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(scenarios) {
		workers = len(scenarios)
	}
	results := make([]Result, len(scenarios))
	errs := make([]error, len(scenarios))

	if workers <= 1 {
		// One arena serves every point: consecutive builds reuse the
		// topology backing arrays (each domain dies with its run).
		arena := topology.NewArena()
		for i := range scenarios {
			if results[i], errs[i] = runWith(scenarios[i], arena); errs[i] != nil {
				return nil, errs[i]
			}
		}
		return results, nil
	}

	var next atomic.Int64
	var failed atomic.Bool
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			// Arenas are single-owner: one per worker, reused across
			// every point the worker claims.
			arena := topology.NewArena()
			for {
				// Fail fast like the serial path: once any point has
				// errored, stop claiming new work (in-flight points
				// finish; the first error by index is still reported).
				if failed.Load() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(scenarios) {
					return
				}
				if results[i], errs[i] = runWith(scenarios[i], arena); errs[i] != nil {
					failed.Store(true)
				}
			}
		}()
	}
	wg.Wait()

	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return results, nil
}

// runPoints runs a figure sweep's scenarios under the options' worker cap.
func runPoints(opts SweepOptions, scenarios []Scenario) ([]Result, error) {
	return RunMany(scenarios, opts.Workers)
}
