package experiment

import (
	"errors"
	"testing"
)

func TestSearchGridEnumerationDeterministic(t *testing.T) {
	spec := DefaultSearchSpec()
	grid := spec.Grid()
	perFault := len(spec.Shapes) * len(spec.RateMixes) * len(spec.VictimSpreads)
	if want := len(spec.FaultShapes) * perFault; len(grid) != want {
		t.Fatalf("grid has %d points, want %d", len(grid), want)
	}
	// Nested order: fault shapes outermost, then attack shapes, mixes and
	// spreads — and Index must equal the enumeration position, because it
	// offsets the seed.
	for i, p := range grid {
		if p.Index != i {
			t.Fatalf("point %d carries index %d", i, p.Index)
		}
		fi := i / perFault
		si := i / (len(spec.RateMixes) * len(spec.VictimSpreads)) % len(spec.Shapes)
		mi := i / len(spec.VictimSpreads) % len(spec.RateMixes)
		vi := i % len(spec.VictimSpreads)
		if p.Fault.Name != spec.FaultShapes[fi].Name ||
			p.Shape.Name != spec.Shapes[si].Name || p.Mix.Name != spec.RateMixes[mi].Name ||
			p.Spread != spec.VictimSpreads[vi] {
			t.Fatalf("point %d out of order: %s/%s/%s/%v", i, p.Fault.Name, p.Shape.Name, p.Mix.Name, p.Spread)
		}
	}
	// An unset fault axis behaves as a single fault-free environment, so
	// pre-fault specs keep their historical point order and seeds.
	spec.FaultShapes = nil
	if got := len(spec.Grid()); got != perFault {
		t.Fatalf("fault-free grid has %d points, want %d", got, perFault)
	}
	for _, p := range spec.Grid() {
		if p.Fault.Name != "none" || p.Fault.Faults.Enabled() {
			t.Fatalf("point %d in a fault-free grid carries fault %q", p.Index, p.Fault.Name)
		}
	}
}

func TestSearchPointScenarioSeeding(t *testing.T) {
	spec := DefaultSearchSpec()
	spec.Seed = 42
	grid := spec.Grid()
	for _, p := range []SearchPoint{grid[0], grid[len(grid)-1]} {
		s := spec.scenario(spec.Defences[0], p, true)
		if s.Seed != spec.Seed+int64(p.Index) {
			t.Fatalf("point %d seeded %d, want %d", p.Index, s.Seed, spec.Seed+int64(p.Index))
		}
		if err := s.Validate(); err != nil {
			t.Fatalf("point %d scenario invalid: %v", p.Index, err)
		}
	}
}

// TestSearchSerialParallelIdentical is the harness's core determinism claim:
// the same spec and seed produce a bit-identical report whether the grid runs
// on one worker or many — so a worst case found on a laptop reproduces on CI.
func TestSearchSerialParallelIdentical(t *testing.T) {
	spec := QuickSearchSpec()
	opts := SearchOptions{Quick: true}

	opts.Workers = 1
	serial, err := Search(spec, opts)
	if err != nil {
		t.Fatalf("serial search: %v", err)
	}
	opts.Workers = 4
	parallel, err := Search(spec, opts)
	if err != nil {
		t.Fatalf("parallel search: %v", err)
	}
	if !serial.Equal(parallel) {
		t.Fatal("serial and parallel search reports diverge")
	}

	// Same seed, second run: same report, same worst case.
	again, err := Search(spec, SearchOptions{Quick: true})
	if err != nil {
		t.Fatalf("repeat search: %v", err)
	}
	if !serial.Equal(again) {
		t.Fatal("repeated search with the same seed diverges")
	}
	for i := range serial.Defences {
		if serial.Defences[i].WorstAccuracy.Name != again.Defences[i].WorstAccuracy.Name {
			t.Fatalf("defence %q worst case moved between identical runs",
				serial.Defences[i].Defence)
		}
	}
}

func TestSearchReportShape(t *testing.T) {
	spec := QuickSearchSpec()
	report, err := Search(spec, SearchOptions{Quick: true})
	if err != nil {
		t.Fatalf("search: %v", err)
	}
	if report.GridSize != len(spec.Grid()) {
		t.Fatalf("grid size %d, want %d", report.GridSize, len(spec.Grid()))
	}
	if len(report.Defences) != len(spec.Defences) {
		t.Fatalf("defences %d, want %d", len(report.Defences), len(spec.Defences))
	}
	for _, d := range report.Defences {
		if len(d.Points) != report.GridSize {
			t.Fatalf("defence %q has %d points, want %d", d.Defence, len(d.Points), report.GridSize)
		}
		worstSeen := false
		for _, p := range d.Points {
			if p.Accuracy < 0 || p.Accuracy > 1 {
				t.Fatalf("point %q accuracy %v outside [0,1]", p.Name, p.Accuracy)
			}
			if p == d.WorstAccuracy {
				worstSeen = true
			}
		}
		if !worstSeen {
			t.Fatalf("defence %q worst-accuracy point is not one of its grid points", d.Defence)
		}
		if d.MeanAccuracy < d.WorstAccuracy.Accuracy {
			t.Fatalf("defence %q mean %v below worst %v", d.Defence, d.MeanAccuracy, d.WorstAccuracy.Accuracy)
		}
		if len(d.ByFault) != len(spec.FaultShapes) {
			t.Fatalf("defence %q has %d fault outcomes, want %d", d.Defence, len(d.ByFault), len(spec.FaultShapes))
		}
		for i, f := range d.ByFault {
			if f.Fault != spec.FaultShapes[i].Name {
				t.Fatalf("fault outcome %d is %q, want %q", i, f.Fault, spec.FaultShapes[i].Name)
			}
			if f.WorstAccuracy.Fault != f.Fault {
				t.Fatalf("fault %q worst case comes from fault %q", f.Fault, f.WorstAccuracy.Fault)
			}
			if f.MeanAccuracy < f.WorstAccuracy.Accuracy {
				t.Fatalf("fault %q mean %v below worst %v", f.Fault, f.MeanAccuracy, f.WorstAccuracy.Accuracy)
			}
		}
	}
}

func TestSearchRejectsDegenerateSpecs(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*SearchSpec)
	}{
		{"no shapes", func(s *SearchSpec) { s.Shapes = nil }},
		{"no rate mixes", func(s *SearchSpec) { s.RateMixes = nil }},
		{"no victim spreads", func(s *SearchSpec) { s.VictimSpreads = nil }},
		{"no defences", func(s *SearchSpec) { s.Defences = nil }},
		{"invalid base", func(s *SearchSpec) { s.Base.Workload.TotalFlows = 0 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			spec := QuickSearchSpec()
			tt.mutate(&spec)
			if _, err := Search(spec, SearchOptions{Quick: true}); !errors.Is(err, ErrScenario) {
				t.Fatalf("want ErrScenario, got %v", err)
			}
		})
	}
}
