package experiment

import (
	"encoding/json"
	"flag"
	"math"
	"os"
	"path/filepath"
	"testing"
)

// updateGolden rewrites the pinned fixtures instead of comparing against
// them: `go test ./internal/experiment -run TestGoldenScenarios -update`.
// Re-pin deliberately, in the PR that intentionally changes scenario
// behaviour, never to silence a diff you cannot explain.
var updateGolden = flag.Bool("update", false, "rewrite the golden scenario fixtures in testdata/")

// goldenMetrics is the subset of Result each fixture pins. Raw counters and
// the bandwidth series are deliberately excluded: they shift with any engine
// change, while these headline numbers are what the paper reports and what a
// refactor must not silently move.
type goldenMetrics struct {
	Name                string  `json:"name"`
	Seed                int64   `json:"seed"`
	Activated           bool    `json:"activated"`
	DetectedByPushback  bool    `json:"detectedByPushback"`
	ATRCount            int     `json:"atrCount"`
	ActivationSeconds   float64 `json:"activationSeconds"`
	Accuracy            float64 `json:"accuracy"`
	FalsePositiveRate   float64 `json:"falsePositiveRate"`
	FalseNegativeRate   float64 `json:"falseNegativeRate"`
	LegitimateDropRate  float64 `json:"legitimateDropRate"`
	TrafficReduction    float64 `json:"trafficReduction"`
	FlowsProbed         int     `json:"flowsProbed"`
	LegitFlowsCondemned int     `json:"legitFlowsCondemned"`
	AttackFlowsForgiven int     `json:"attackFlowsForgiven"`
	EventsProcessed     uint64  `json:"eventsProcessed"`
}

func goldenFromResult(seed int64, res Result) goldenMetrics {
	return goldenMetrics{
		Name:                res.Name,
		Seed:                seed,
		Activated:           res.Activated,
		DetectedByPushback:  res.DetectedByPushback,
		ATRCount:            res.ATRCount,
		ActivationSeconds:   res.ActivationSeconds,
		Accuracy:            res.Accuracy,
		FalsePositiveRate:   res.FalsePositiveRate,
		FalseNegativeRate:   res.FalseNegativeRate,
		LegitimateDropRate:  res.LegitimateDropRate,
		TrafficReduction:    res.TrafficReduction,
		FlowsProbed:         res.FlowsProbed,
		LegitFlowsCondemned: res.LegitFlowsCondemned,
		AttackFlowsForgiven: res.AttackFlowsForgiven,
		EventsProcessed:     res.EventsProcessed,
	}
}

// Comparison tolerances. A fixed-seed run is bit-reproducible on the same
// code, so the tolerances only need to absorb benign engine changes (event
// ordering, float summation order), not hide real regressions.
const (
	rateTol       = 0.02 // absolute, on metrics that are fractions in [0,1]
	activationTol = 0.06 // seconds; one monitor epoch of slack
	eventsRelTol  = 0.25 // relative, on the processed-event count
)

// intTol allows small flow-count drift: ±2 flows or 25%, whichever is larger.
func intTol(golden int) int {
	tol := golden / 4
	if tol < 2 {
		tol = 2
	}
	return tol
}

func checkRate(t *testing.T, metric string, got, want float64) {
	t.Helper()
	if math.Abs(got-want) > rateTol {
		t.Errorf("%s = %.4f, golden %.4f (tolerance %.2f)", metric, got, want, rateTol)
	}
}

func checkCount(t *testing.T, metric string, got, want int) {
	t.Helper()
	if d := got - want; d > intTol(want) || -d > intTol(want) {
		t.Errorf("%s = %d, golden %d (tolerance %d)", metric, got, want, intTol(want))
	}
}

// TestGoldenScenarios re-runs every registered scenario in quick mode with
// its pinned seed and compares the paper's headline metrics against the
// committed fixtures, so engine refactors cannot silently shift the numbers.
func TestGoldenScenarios(t *testing.T) {
	for _, e := range Entries() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			s := Quick(e.Build())
			res, err := Run(s)
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			got := goldenFromResult(s.Seed, res)
			path := filepath.Join("testdata", e.Name+".golden.json")

			if *updateGolden {
				data, err := json.MarshalIndent(got, "", "  ")
				if err != nil {
					t.Fatal(err)
				}
				if err := os.WriteFile(path, append(data, '\n'), 0o644); err != nil {
					t.Fatal(err)
				}
				t.Logf("rewrote %s", path)
				return
			}

			data, err := os.ReadFile(path)
			if err != nil {
				t.Fatalf("missing fixture (generate with `go test -run TestGoldenScenarios -update`): %v", err)
			}
			var want goldenMetrics
			if err := json.Unmarshal(data, &want); err != nil {
				t.Fatalf("corrupt fixture %s: %v", path, err)
			}

			if want.Seed != s.Seed {
				t.Fatalf("fixture pinned seed %d but scenario uses %d", want.Seed, s.Seed)
			}
			if got.Activated != want.Activated {
				t.Errorf("Activated = %v, golden %v", got.Activated, want.Activated)
			}
			if got.DetectedByPushback != want.DetectedByPushback {
				t.Errorf("DetectedByPushback = %v, golden %v", got.DetectedByPushback, want.DetectedByPushback)
			}
			if got.ATRCount != want.ATRCount {
				t.Errorf("ATRCount = %d, golden %d", got.ATRCount, want.ATRCount)
			}
			if math.Abs(got.ActivationSeconds-want.ActivationSeconds) > activationTol {
				t.Errorf("ActivationSeconds = %.3f, golden %.3f (tolerance %.2f)",
					got.ActivationSeconds, want.ActivationSeconds, activationTol)
			}
			checkRate(t, "Accuracy", got.Accuracy, want.Accuracy)
			checkRate(t, "FalsePositiveRate", got.FalsePositiveRate, want.FalsePositiveRate)
			checkRate(t, "FalseNegativeRate", got.FalseNegativeRate, want.FalseNegativeRate)
			checkRate(t, "LegitimateDropRate", got.LegitimateDropRate, want.LegitimateDropRate)
			checkRate(t, "TrafficReduction", got.TrafficReduction, want.TrafficReduction)
			checkCount(t, "FlowsProbed", got.FlowsProbed, want.FlowsProbed)
			checkCount(t, "LegitFlowsCondemned", got.LegitFlowsCondemned, want.LegitFlowsCondemned)
			checkCount(t, "AttackFlowsForgiven", got.AttackFlowsForgiven, want.AttackFlowsForgiven)
			if want.EventsProcessed > 0 {
				rel := math.Abs(float64(got.EventsProcessed)-float64(want.EventsProcessed)) / float64(want.EventsProcessed)
				if rel > eventsRelTol {
					t.Errorf("EventsProcessed = %d, golden %d (drift %.0f%% > %.0f%%)",
						got.EventsProcessed, want.EventsProcessed, rel*100, eventsRelTol*100)
				}
			}
		})
	}
}

// TestGoldenFixturesCoverCatalog fails when a scenario is registered without
// a fixture or a fixture is left behind after a scenario is renamed.
func TestGoldenFixturesCoverCatalog(t *testing.T) {
	if *updateGolden {
		t.Skip("updating fixtures")
	}
	files, err := filepath.Glob(filepath.Join("testdata", "*.golden.json"))
	if err != nil {
		t.Fatal(err)
	}
	onDisk := map[string]bool{}
	for _, f := range files {
		name := filepath.Base(f)
		onDisk[name[:len(name)-len(".golden.json")]] = true
	}
	for _, name := range ScenarioNames() {
		if !onDisk[name] {
			t.Errorf("scenario %q has no golden fixture", name)
		}
		delete(onDisk, name)
	}
	for name := range onDisk {
		t.Errorf("fixture %q matches no registered scenario", name)
	}
	if len(files) == 0 {
		t.Fatal("no fixtures in testdata/ — generate with `go test -run TestGoldenScenarios -update`")
	}
}
