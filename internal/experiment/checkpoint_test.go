package experiment

import (
	"bytes"
	"errors"
	"reflect"
	"testing"

	"mafic/internal/checkpoint"
	"mafic/internal/sim"
)

// snapshotMidRun runs s with one checkpoint at the given virtual time and
// returns the encoded snapshot plus the (complete) run's result.
func snapshotMidRun(t *testing.T, s Scenario, at sim.Time) ([]byte, Result) {
	t.Helper()
	var data []byte
	res, err := RunWithCheckpoints(s, []sim.Time{at}, func(_ sim.Time, d []byte) error {
		data = d
		return nil
	})
	if err != nil {
		t.Fatalf("checkpointed run: %v", err)
	}
	if len(data) == 0 {
		t.Fatal("checkpoint callback never fired")
	}
	return data, res
}

// diffResults reports the usual headline fields when two results diverge.
func diffResults(t *testing.T, label string, want, got Result) {
	t.Helper()
	t.Errorf("%s: results diverge", label)
	if want.Counts != got.Counts {
		t.Errorf("counts: want %+v, got %+v", want.Counts, got.Counts)
	}
	if want.EventsProcessed != got.EventsProcessed {
		t.Errorf("events: want %d, got %d", want.EventsProcessed, got.EventsProcessed)
	}
	if want.Accuracy != got.Accuracy {
		t.Errorf("accuracy: want %v, got %v", want.Accuracy, got.Accuracy)
	}
	if want.ATRCount != got.ATRCount {
		t.Errorf("ATRs: want %d, got %d", want.ATRCount, got.ATRCount)
	}
}

// TestKillAndResumeEquivalence is the crash-recovery guarantee, proven over
// the whole catalog (chaos scenarios included): every scenario is snapshotted
// mid-run, the snapshot is decoded into a freshly rebuilt world, and the
// resumed run must produce a Result bit-identical to the uninterrupted run.
// It also pins that taking a checkpoint is a pure read — the checkpointed
// run's own result must match the plain run exactly.
func TestKillAndResumeEquivalence(t *testing.T) {
	for _, e := range Entries() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			s := Quick(e.Build())
			want, err := Run(s)
			if err != nil {
				t.Fatalf("uninterrupted run: %v", err)
			}
			data, chk := snapshotMidRun(t, s, s.Duration/2)
			if !reflect.DeepEqual(want, chk) {
				diffResults(t, "checkpointing perturbed the run", want, chk)
			}
			got, err := RunFromSnapshot(data)
			if err != nil {
				t.Fatalf("resume: %v", err)
			}
			if !reflect.DeepEqual(want, got) {
				diffResults(t, "kill-and-resume", want, got)
			}
		})
	}
}

// TestCheckpointUnderActiveFaults snapshots the chaos scenarios inside their
// fault windows — while a flapped link is down (flap-core) and while the
// crashed chord hub is away (partition-heal) — and requires the resumed run
// to reproduce the uninterrupted one exactly: fault drops, activation
// timing, and the TopoVersion-driven route re-convergence all travel through
// the snapshot.
func TestCheckpointUnderActiveFaults(t *testing.T) {
	// 850 ms is inside flap-core's first outage (800–950 ms) and inside
	// partition-heal's crash window (700–1400 ms).
	const midFault = 850 * sim.Millisecond
	for _, name := range []string{"flap-core", "partition-heal"} {
		name := name
		t.Run(name, func(t *testing.T) {
			e, ok := LookupScenario(name)
			if !ok {
				t.Fatalf("scenario %q not registered", name)
			}
			s := Quick(e.Build())
			want, err := Run(s)
			if err != nil {
				t.Fatalf("uninterrupted run: %v", err)
			}
			if want.Counts.FaultDrops == 0 {
				t.Fatalf("scenario %s produced no fault drops; the snapshot window misses the fault", name)
			}
			data, _ := snapshotMidRun(t, s, midFault)
			got, err := RunFromSnapshot(data)
			if err != nil {
				t.Fatalf("resume: %v", err)
			}
			if !reflect.DeepEqual(want, got) {
				diffResults(t, "mid-fault kill-and-resume", want, got)
			}
			if got.Counts.FaultDrops != want.Counts.FaultDrops {
				t.Errorf("fault drops: want %d, got %d", want.Counts.FaultDrops, got.Counts.FaultDrops)
			}
			if got.Activated != want.Activated || got.ActivationSeconds != want.ActivationSeconds {
				t.Errorf("activation: want (%v, %v), got (%v, %v)",
					want.Activated, want.ActivationSeconds, got.Activated, got.ActivationSeconds)
			}
		})
	}
}

// TestRestoreThenReuseInvariance pins that a restore leaves the pooled engine
// objects healthy: after a RunFromSnapshot, running a different catalog
// scenario on the same pools must still be bit-identical to its reference
// run. A restore that leaked state into a pooled scheduler, arena or scratch
// table would surface here.
func TestRestoreThenReuseInvariance(t *testing.T) {
	entries := Entries()
	if len(entries) < 2 {
		t.Skip("need at least two catalog scenarios")
	}
	// Two structurally different scenarios: the first catalog entry and the
	// partition-heal chaos run.
	a := Quick(entries[0].Build())
	ph, ok := LookupScenario("partition-heal")
	if !ok {
		t.Fatal("partition-heal not registered")
	}
	b := Quick(ph.Build())

	want, err := Run(b)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}
	data, _ := snapshotMidRun(t, a, a.Duration/2)
	if _, err := RunFromSnapshot(data); err != nil {
		t.Fatalf("resume: %v", err)
	}
	got, err := Run(b)
	if err != nil {
		t.Fatalf("post-restore run: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		diffResults(t, "pooled objects after restore", want, got)
	}
}

// TestCheckpointRoundTripStability pins the wire format: encode → decode →
// encode must be byte-identical, so a snapshot file can be copied, inspected
// and re-saved without drift.
func TestCheckpointRoundTripStability(t *testing.T) {
	e := Entries()[0]
	s := Quick(e.Build())
	data, _ := snapshotMidRun(t, s, s.Duration/2)
	snap, err := checkpoint.Decode(data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	again := checkpoint.Encode(snap)
	if !bytes.Equal(data, again) {
		t.Fatalf("re-encoded snapshot differs: %d bytes vs %d", len(data), len(again))
	}
}

// TestCheckpointTimeValidation pins the harness-level input checks.
func TestCheckpointTimeValidation(t *testing.T) {
	s := Quick(Entries()[0].Build())
	noSave := func(sim.Time, []byte) error { return nil }
	if _, err := RunWithCheckpoints(s, []sim.Time{0}, noSave); !errors.Is(err, ErrScenario) {
		t.Errorf("t=0 accepted: %v", err)
	}
	if _, err := RunWithCheckpoints(s, []sim.Time{s.Duration}, noSave); !errors.Is(err, ErrScenario) {
		t.Errorf("t=Duration accepted: %v", err)
	}
	if _, err := RunWithCheckpoints(s, []sim.Time{s.Duration / 2, s.Duration / 4}, noSave); !errors.Is(err, ErrScenario) {
		t.Errorf("descending times accepted: %v", err)
	}
}

// TestSnapshotDecodeRejectsCorruption walks a real snapshot and verifies the
// decoder survives systematic damage — truncation at every section boundary
// region and bit flips across the header — returning clean errors.
func TestSnapshotDecodeRejectsCorruption(t *testing.T) {
	s := Quick(Entries()[0].Build())
	data, _ := snapshotMidRun(t, s, s.Duration/2)

	for cut := 0; cut < len(data); cut += 97 {
		if _, err := checkpoint.Decode(data[:cut]); err == nil {
			t.Fatalf("truncation to %d bytes decoded cleanly", cut)
		}
	}
	for i := 0; i < len(data) && i < 64; i++ {
		mut := append([]byte(nil), data...)
		mut[i] ^= 0x5a
		// A flipped byte may still decode (e.g. inside the scenario JSON);
		// the requirement is no panic and no unbounded allocation.
		_, _ = checkpoint.Decode(mut)
	}
}
