package experiment

import (
	"fmt"

	"mafic/internal/netsim"
	"mafic/internal/sim"
	"mafic/internal/topology"
)

// This file is the declarative fault-injection layer: a Scenario carries a
// FaultSpec describing link flaps, router crash/restore windows and a lossy
// control plane, and runWith compiles it into scheduled events on the same
// deterministic event queue as the workload. Faults are therefore seeded and
// reproducible: the same scenario produces the same churn under Run and
// RunMany, serial or parallel. With the zero FaultSpec no event is scheduled
// and no RNG is forked, so every fault-free run is bit-identical to a build
// without this layer at all.

// LinkFlap schedules a periodic outage of the duplex link between two routers:
// both simplex directions go down together at Start and every Period after it,
// each outage lasting DownFor.
type LinkFlap struct {
	// RouterA and RouterB are indices into the domain's router slice
	// (topology build order), not NodeIDs, so a flap schedule is meaningful
	// before the topology exists and survives the Quick scale-down as long
	// as the indices stay inside the smaller domain.
	RouterA int `json:"routerA"`
	RouterB int `json:"routerB"`
	// Start is when the first outage begins.
	Start sim.Time `json:"start"`
	// DownFor is the length of each outage.
	DownFor sim.Time `json:"downFor"`
	// Period is the time between consecutive outage starts; required when
	// Count is greater than one, and must exceed DownFor so the link is up
	// between flaps.
	Period sim.Time `json:"period,omitempty"`
	// Count is the number of outages; zero means one.
	Count int `json:"count,omitempty"`
}

// RouterCrash schedules a whole-router failure window: at CrashAt the router
// stops forwarding, measuring and defending; at RestoreAt it rejoins the
// domain. A zero RestoreAt means the router never comes back.
type RouterCrash struct {
	// Router is an index into the domain's router slice, as in LinkFlap.
	Router int `json:"router"`
	// CrashAt is when the router fails.
	CrashAt sim.Time `json:"crashAt"`
	// RestoreAt, when positive, is when the router rejoins; it must be
	// after CrashAt.
	RestoreAt sim.Time `json:"restoreAt,omitempty"`
}

// FaultSpec is a scenario's complete failure model. The zero value injects
// nothing and costs nothing.
type FaultSpec struct {
	// LinkFlaps are the scheduled duplex-link outages.
	LinkFlaps []LinkFlap `json:"linkFlaps,omitempty"`
	// RouterCrashes are the scheduled router failure windows.
	RouterCrashes []RouterCrash `json:"routerCrashes,omitempty"`
	// ReportLoss is the probability that a finished measurement epoch's
	// report is lost on the control plane (trafficmatrix
	// MonitorConfig.ReportLoss).
	ReportLoss float64 `json:"reportLoss,omitempty"`
	// ReportDelayProb and ReportDelay delay surviving reports with the
	// given probability by the given time (MonitorConfig.ReportDelayProb /
	// ReportDelay).
	ReportDelayProb float64  `json:"reportDelayProb,omitempty"`
	ReportDelay     sim.Time `json:"reportDelay,omitempty"`
}

// Enabled reports whether the spec injects any fault at all.
func (f FaultSpec) Enabled() bool {
	return len(f.LinkFlaps) > 0 || len(f.RouterCrashes) > 0 ||
		f.ReportLoss > 0 || f.ReportDelayProb > 0
}

// Validate reports specification problems against a domain of the given
// router count. Link existence cannot be checked here — chords are random —
// so runWith rejects flaps naming unconnected router pairs at build time.
func (f FaultSpec) Validate(routers int) error {
	for i, fl := range f.LinkFlaps {
		if fl.RouterA < 0 || fl.RouterA >= routers || fl.RouterB < 0 || fl.RouterB >= routers {
			return fmt.Errorf("%w: link flap %d references router pair (%d,%d) outside the %d-router domain",
				ErrScenario, i, fl.RouterA, fl.RouterB, routers)
		}
		if fl.RouterA == fl.RouterB {
			return fmt.Errorf("%w: link flap %d connects router %d to itself", ErrScenario, i, fl.RouterA)
		}
		if fl.Start < 0 {
			return fmt.Errorf("%w: link flap %d starts at negative time %v", ErrScenario, i, fl.Start)
		}
		if fl.DownFor <= 0 {
			return fmt.Errorf("%w: link flap %d outage length %v must be positive", ErrScenario, i, fl.DownFor)
		}
		if fl.Count < 0 {
			return fmt.Errorf("%w: link flap %d has negative count %d", ErrScenario, i, fl.Count)
		}
		if fl.Count > 1 && fl.Period <= fl.DownFor {
			return fmt.Errorf("%w: link flap %d period %v must exceed outage length %v",
				ErrScenario, i, fl.Period, fl.DownFor)
		}
	}
	for i, rc := range f.RouterCrashes {
		if rc.Router < 0 || rc.Router >= routers {
			return fmt.Errorf("%w: router crash %d references router %d outside the %d-router domain",
				ErrScenario, i, rc.Router, routers)
		}
		if rc.CrashAt < 0 {
			return fmt.Errorf("%w: router crash %d at negative time %v", ErrScenario, i, rc.CrashAt)
		}
		if rc.RestoreAt != 0 && rc.RestoreAt <= rc.CrashAt {
			return fmt.Errorf("%w: router crash %d restores at %v, not after the crash at %v",
				ErrScenario, i, rc.RestoreAt, rc.CrashAt)
		}
	}
	if f.ReportLoss < 0 || f.ReportLoss > 1 {
		return fmt.Errorf("%w: report loss %v outside [0,1]", ErrScenario, f.ReportLoss)
	}
	if f.ReportDelayProb < 0 || f.ReportDelayProb > 1 {
		return fmt.Errorf("%w: report delay probability %v outside [0,1]", ErrScenario, f.ReportDelayProb)
	}
	if f.ReportDelay < 0 {
		return fmt.Errorf("%w: report delay %v must not be negative", ErrScenario, f.ReportDelay)
	}
	if f.ReportDelayProb > 0 && f.ReportDelay <= 0 {
		return fmt.Errorf("%w: report delay probability %v needs a positive report delay",
			ErrScenario, f.ReportDelayProb)
	}
	return nil
}

// installFaults compiles the spec's topology faults into scheduled events.
// The flapped link is resolved once, at build time, so a flap naming two
// unconnected routers fails the run up front instead of silently flapping
// nothing.
func installFaults(f FaultSpec, d *topology.Domain, sched *sim.Scheduler) error {
	net := d.Net
	for i, fl := range f.LinkFlaps {
		a, b := d.Routers[fl.RouterA].ID(), d.Routers[fl.RouterB].ID()
		fwd, rev := net.LinkBetween(a, b), net.LinkBetween(b, a)
		if fwd == nil && rev == nil {
			return fmt.Errorf("%w: link flap %d: no link between routers %d and %d",
				ErrScenario, i, fl.RouterA, fl.RouterB)
		}
		count := fl.Count
		if count == 0 {
			count = 1
		}
		for k := 0; k < count; k++ {
			downAt := fl.Start + sim.Time(k)*fl.Period
			sched.ScheduleAt(downAt, func(sim.Time) {
				setPairDown(fwd, rev, true)
			})
			sched.ScheduleAt(downAt+fl.DownFor, func(sim.Time) {
				setPairDown(fwd, rev, false)
			})
		}
	}
	for _, rc := range f.RouterCrashes {
		id := d.Routers[rc.Router].ID()
		sched.ScheduleAt(rc.CrashAt, func(sim.Time) {
			_ = net.FailRouter(id)
		})
		if rc.RestoreAt > 0 {
			sched.ScheduleAt(rc.RestoreAt, func(sim.Time) {
				_ = net.RestoreRouter(id)
			})
		}
	}
	return nil
}

// setPairDown flips both simplex directions of a duplex link together; either
// may be nil when the pair is connected one way only.
func setPairDown(fwd, rev *netsim.Link, down bool) {
	if fwd != nil {
		fwd.SetDown(down)
	}
	if rev != nil {
		rev.SetDown(down)
	}
}
