package experiment

import (
	"errors"
	"testing"

	"mafic/internal/sim"
)

// quickScenario returns a scaled-down scenario that still exercises the full
// pipeline (detection, probing, classification) but runs in well under a
// second of wall time.
func quickScenario() Scenario {
	s := DefaultScenario()
	s.Topology.NumRouters = 16
	s.Topology.ExtraChords = 4
	s.Topology.BystanderHosts = 8
	s.Workload.TotalFlows = 20
	s.Duration = 1800 * sim.Millisecond
	s.Workload.AttackStart = 600 * sim.Millisecond
	s.DetectionFallback = 300 * sim.Millisecond
	return s
}

func TestDefaultScenarioValidates(t *testing.T) {
	if err := DefaultScenario().Validate(); err != nil {
		t.Fatalf("default scenario invalid: %v", err)
	}
}

func TestScenarioValidateErrors(t *testing.T) {
	tests := []struct {
		name   string
		mutate func(*Scenario)
	}{
		{name: "zero duration", mutate: func(s *Scenario) { s.Duration = 0 }},
		{name: "bad defense", mutate: func(s *Scenario) { s.Defense = DefenseKind(99) }},
		{name: "bad workload", mutate: func(s *Scenario) { s.Workload.TotalFlows = 0 }},
		{name: "bad mafic", mutate: func(s *Scenario) { s.MAFIC.DropProbability = 2 }},
		{name: "attack after end", mutate: func(s *Scenario) { s.Workload.AttackStart = s.Duration + sim.Second }},
		{name: "bad topology", mutate: func(s *Scenario) { s.Topology.NumRouters = 1 }},
		{name: "bad topology style", mutate: func(s *Scenario) { s.Topology.Style = 99 }},
		{name: "bad monitor epoch", mutate: func(s *Scenario) { s.Monitor.Epoch = -sim.Second }},
		{name: "bad monitor buckets", mutate: func(s *Scenario) { s.Monitor.Buckets = 100 }},
		{name: "bad pushback share", mutate: func(s *Scenario) { s.Pushback.ATRShare = 2 }},
		{name: "bad pushback history", mutate: func(s *Scenario) { s.Pushback.HistoryFactor = -1 }},
		{name: "baseline probability above one", mutate: func(s *Scenario) {
			s.Defense = DefenseBaseline
			s.BaselineDropProbability = 1.5
		}},
		{name: "baseline probability negative", mutate: func(s *Scenario) {
			s.Defense = DefenseBaseline
			s.BaselineDropProbability = -0.2
		}},
		{name: "flash crowd after end", mutate: func(s *Scenario) {
			s.Workload.FlashCrowdFlows = 10
			s.Workload.FlashCrowdStart = s.Duration + sim.Second
		}},
		{name: "extra victim share without extra victims", mutate: func(s *Scenario) {
			s.Workload.ExtraVictimShare = 0.4
			s.Topology.ExtraVictims = 0
		}},
		{name: "coremelt share without bystanders", mutate: func(s *Scenario) {
			s.Workload.CoremeltShare = 0.5
			s.Topology.BystanderHosts = 0
		}},
		{name: "bad coremelt share", mutate: func(s *Scenario) {
			s.Workload.CoremeltShare = 1.2
		}},
		{name: "hardened knob negative", mutate: func(s *Scenario) {
			s.MAFIC.CondemnProbes = -1
		}},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			s := DefaultScenario()
			tt.mutate(&s)
			if err := s.Validate(); !errors.Is(err, ErrScenario) {
				t.Fatalf("want ErrScenario, got %v", err)
			}
		})
	}
}

func TestDefenseKindString(t *testing.T) {
	tests := []struct {
		kind DefenseKind
		want string
	}{
		{DefenseMAFIC, "mafic"},
		{DefenseBaseline, "proportional"},
		{DefenseNone, "none"},
		{DefenseKind(42), "unknown"},
	}
	for _, tt := range tests {
		if got := tt.kind.String(); got != tt.want {
			t.Fatalf("DefenseKind(%d) = %q, want %q", tt.kind, got, tt.want)
		}
	}
}

func TestRunMAFICScenario(t *testing.T) {
	res, err := Run(quickScenario())
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if !res.Activated {
		t.Fatal("defense never activated")
	}
	if res.Accuracy < 0.90 {
		t.Fatalf("accuracy = %.3f, want >= 0.90", res.Accuracy)
	}
	if res.FalseNegativeRate > 0.10 {
		t.Fatalf("θn = %.3f, want <= 0.10", res.FalseNegativeRate)
	}
	if res.FalsePositiveRate > 0.02 {
		t.Fatalf("θp = %.3f, want <= 0.02", res.FalsePositiveRate)
	}
	if res.LegitimateDropRate > 0.20 {
		t.Fatalf("Lr = %.3f, want <= 0.20", res.LegitimateDropRate)
	}
	if res.TrafficReduction < 0.5 {
		t.Fatalf("β = %.3f, want >= 0.5", res.TrafficReduction)
	}
	if res.DefenseStats.FlowsProbed == 0 || res.DefenseStats.FlowsCondemned == 0 {
		t.Fatal("no flows were probed or condemned")
	}
	if res.Counts.ATRAttackPost == 0 {
		t.Fatal("no attack packets observed post-activation")
	}
	if len(res.Series) == 0 {
		t.Fatal("victim bandwidth series empty")
	}
	if res.EventsProcessed == 0 {
		t.Fatal("no events processed")
	}
}

func TestRunIsDeterministic(t *testing.T) {
	s := quickScenario()
	a, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if a.Accuracy != b.Accuracy || a.Counts != b.Counts || a.EventsProcessed != b.EventsProcessed {
		t.Fatal("identical scenarios produced different results")
	}
	s.Seed = 999
	c, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if c.Counts == a.Counts {
		t.Fatal("different seeds produced identical raw counts")
	}
}

func TestRunBaselineHasMoreCollateralDamage(t *testing.T) {
	s := quickScenario()
	maficRes, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	s.Defense = DefenseBaseline
	baseRes, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	// The proportional dropper keeps dropping legitimate packets for the
	// whole run, so its collateral damage must clearly exceed MAFIC's.
	if baseRes.LegitimateDropRate <= maficRes.LegitimateDropRate {
		t.Fatalf("baseline Lr (%.3f) should exceed MAFIC Lr (%.3f)",
			baseRes.LegitimateDropRate, maficRes.LegitimateDropRate)
	}
	if baseRes.FalsePositiveRate <= maficRes.FalsePositiveRate {
		t.Fatalf("baseline θp (%.4f) should exceed MAFIC θp (%.4f)",
			baseRes.FalsePositiveRate, maficRes.FalsePositiveRate)
	}
}

func TestRunWithoutDefense(t *testing.T) {
	s := quickScenario()
	s.Defense = DefenseNone
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if res.Accuracy != 0 {
		t.Fatal("undefended run should drop nothing")
	}
	if res.Counts.DropAttack != 0 || res.Counts.DropLegitProbing != 0 {
		t.Fatal("undefended run recorded defense drops")
	}
}

func TestRunDetectionIdentifiesAttackIngress(t *testing.T) {
	res, err := Run(quickScenario())
	if err != nil {
		t.Fatal(err)
	}
	if !res.DetectedByPushback {
		t.Fatal("the default attack should be detected by the pushback layer, not the fallback")
	}
	if res.ATRCount == 0 {
		t.Fatal("no ATRs identified")
	}
	if res.ActivationSeconds <= quickScenario().Workload.AttackStart.Seconds() {
		t.Fatal("activation should happen after the attack starts")
	}
}

func TestRunFallbackActivation(t *testing.T) {
	s := quickScenario()
	// Cripple detection so only the scheduled fallback can activate.
	s.Pushback.HistoryFactor = 1000
	s.Pushback.AbsoluteThreshold = 0
	s.Pushback.RelativeFactor = 0
	res, err := Run(s)
	if err != nil {
		t.Fatal(err)
	}
	if !res.Activated || res.DetectedByPushback {
		t.Fatal("fallback should have activated the defense")
	}
	if res.Accuracy < 0.85 {
		t.Fatalf("accuracy via fallback = %.3f, want >= 0.85", res.Accuracy)
	}
}

func TestRunInvalidScenario(t *testing.T) {
	s := quickScenario()
	s.Duration = 0
	if _, err := Run(s); !errors.Is(err, ErrScenario) {
		t.Fatalf("want ErrScenario, got %v", err)
	}
}

func TestGenerateQuickFigures(t *testing.T) {
	// Generating every figure in Quick mode is the closest thing to an
	// end-to-end test of the whole harness. Keep the base scenario small
	// so the full set stays fast.
	base := quickScenario()
	opts := SweepOptions{Quick: true, Seed: 7, Base: &base}
	for _, id := range AllFigureIDs() {
		id := id
		t.Run(string(id), func(t *testing.T) {
			fig, err := Generate(id, opts)
			if err != nil {
				t.Fatalf("Generate(%s): %v", id, err)
			}
			if len(fig.Series) == 0 {
				t.Fatal("figure has no series")
			}
			for _, s := range fig.Series {
				if len(s.Points) == 0 {
					t.Fatalf("series %q has no points", s.Label)
				}
			}
			if fig.ID == "" || fig.Title == "" || fig.XLabel == "" || fig.YLabel == "" {
				t.Fatal("figure metadata incomplete")
			}
		})
	}
}

func TestGenerateUnknownFigure(t *testing.T) {
	if _, err := Generate(FigureID("nope"), SweepOptions{Quick: true}); !errors.Is(err, ErrScenario) {
		t.Fatalf("want ErrScenario, got %v", err)
	}
}

func TestFig3aAccuracyShape(t *testing.T) {
	base := quickScenario()
	fig, err := Fig3a(SweepOptions{Quick: true, Base: &base})
	if err != nil {
		t.Fatal(err)
	}
	// The paper reports accuracy consistently above 99%; with the scaled
	// simulation we accept anything above 90% but require every point to
	// be high and the Pd=90% series to dominate the Pd=70% series on
	// average.
	means := map[string]float64{}
	for _, s := range fig.Series {
		sum := 0.0
		for _, p := range s.Points {
			if p.Y < 90 {
				t.Fatalf("series %s point %v has accuracy %.2f%% < 90%%", s.Label, p.X, p.Y)
			}
			sum += p.Y
		}
		means[s.Label] = sum / float64(len(s.Points))
	}
	if means["Pd=90%"] < means["Pd=70%"] {
		t.Fatalf("Pd=90%% accuracy (%.2f) should not be below Pd=70%% (%.2f)",
			means["Pd=90%"], means["Pd=70%"])
	}
}
