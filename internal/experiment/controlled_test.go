package experiment

import (
	"errors"
	"reflect"
	"testing"

	"mafic/internal/sim"
)

// TestRunControlledMatchesRun pins that the controlled run loop — periodic
// snapshots included — produces a Result bit-identical to a plain Run, and
// that the checkpoint schedule lands on ascending multiples of the interval.
func TestRunControlledMatchesRun(t *testing.T) {
	s := Quick(Entries()[0].Build())
	want, err := Run(s)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	every := s.Duration / 5
	var times []sim.Time
	var last []byte
	got, err := RunControlled(s, ControlOptions{
		CheckpointEvery: every,
		Save: func(at sim.Time, data []byte) error {
			times = append(times, at)
			last = append(last[:0], data...)
			return nil
		},
	})
	if err != nil {
		t.Fatalf("controlled run: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		diffResults(t, "controlled vs plain", want, got)
	}
	if len(times) == 0 {
		t.Fatal("no checkpoints were taken")
	}
	for i, at := range times {
		if at != sim.Time(i+1)*every {
			t.Errorf("checkpoint %d at %v, want %v", i, at, sim.Time(i+1)*every)
		}
		if at <= 0 || at >= s.Duration {
			t.Errorf("checkpoint %d at %v outside (0, %v)", i, at, s.Duration)
		}
	}

	// The last periodic snapshot must resume to the same result.
	resumed, err := ResumeControlled(last, ControlOptions{})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !reflect.DeepEqual(want, resumed) {
		diffResults(t, "resume of last periodic snapshot", want, resumed)
	}
}

// TestRunControlledInterruptSavesFinalSnapshot drives the drain path: the
// interrupt fires mid-run, the loop takes one final snapshot at the pause
// point, returns ErrInterrupted, and the saved snapshot resumes to a result
// bit-identical to the uninterrupted run.
func TestRunControlledInterruptSavesFinalSnapshot(t *testing.T) {
	s := Quick(Entries()[0].Build())
	want, err := Run(s)
	if err != nil {
		t.Fatalf("reference run: %v", err)
	}

	interrupt := make(chan struct{})
	var saves []sim.Time
	var last []byte
	_, err = RunControlled(s, ControlOptions{
		CheckpointEvery: s.Duration / 10,
		Interrupt:       interrupt,
		Save: func(at sim.Time, data []byte) error {
			saves = append(saves, at)
			last = append(last[:0], data...)
			if len(saves) == 2 {
				close(interrupt) // seen at the top of the next loop iteration
			}
			return nil
		},
	})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("want ErrInterrupted, got %v", err)
	}
	// Two periodic snapshots plus the final pause snapshot, taken at the
	// same virtual time the second checkpoint paused at.
	if len(saves) != 3 {
		t.Fatalf("saves %v, want 2 periodic + 1 final", saves)
	}
	if saves[2] != saves[1] {
		t.Errorf("final snapshot at %v, want the pause point %v", saves[2], saves[1])
	}

	resumed, err := ResumeControlled(last, ControlOptions{})
	if err != nil {
		t.Fatalf("resume after interrupt: %v", err)
	}
	if !reflect.DeepEqual(want, resumed) {
		diffResults(t, "interrupt-resume", want, resumed)
	}

	// The interrupted run released its pooled objects cleanly: a fresh run
	// on the same pools must still match the reference.
	again, err := Run(s)
	if err != nil {
		t.Fatalf("run after interrupt: %v", err)
	}
	if !reflect.DeepEqual(want, again) {
		diffResults(t, "pooled objects after interrupt", want, again)
	}
}

// TestRunControlledInterruptBeforeStart pins that an interrupt delivered
// before the clock advances returns ErrInterrupted without inventing a
// snapshot — there is no progress to save, the job simply restarts later.
func TestRunControlledInterruptBeforeStart(t *testing.T) {
	s := Quick(Entries()[0].Build())
	interrupt := make(chan struct{})
	close(interrupt)
	saves := 0
	_, err := RunControlled(s, ControlOptions{
		CheckpointEvery: s.Duration / 4,
		Interrupt:       interrupt,
		Save:            func(sim.Time, []byte) error { saves++; return nil },
	})
	if !errors.Is(err, ErrInterrupted) {
		t.Fatalf("want ErrInterrupted, got %v", err)
	}
	if saves != 0 {
		t.Errorf("%d snapshots saved for a run that never started", saves)
	}
}

// TestResumeControlledCheckpointScheduleContinues pins that a resumed run
// keeps checkpointing on the original schedule: the next snapshot lands on
// the first multiple of the interval after the snapshot time.
func TestResumeControlledCheckpointScheduleContinues(t *testing.T) {
	s := Quick(Entries()[0].Build())
	every := s.Duration / 8
	data, want := snapshotMidRun(t, s, s.Duration/2)

	var times []sim.Time
	got, err := ResumeControlled(data, ControlOptions{
		CheckpointEvery: every,
		Save: func(at sim.Time, data []byte) error {
			times = append(times, at)
			return nil
		},
	})
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !reflect.DeepEqual(want, got) {
		diffResults(t, "resume with checkpoints", want, got)
	}
	if len(times) == 0 {
		t.Fatal("resumed run took no checkpoints")
	}
	first := (s.Duration/2/every + 1) * every
	if times[0] != first {
		t.Errorf("first post-resume checkpoint at %v, want %v", times[0], first)
	}
	for _, at := range times {
		if at <= s.Duration/2 || at >= s.Duration {
			t.Errorf("post-resume checkpoint at %v outside (%v, %v)", at, s.Duration/2, s.Duration)
		}
	}
}

// TestResumeControlledClassifiesSnapshotErrors pins the ErrSnapshot contract
// the serve recovery fallback depends on: garbage and truncation are the
// snapshot's fault, so they must carry the sentinel.
func TestResumeControlledClassifiesSnapshotErrors(t *testing.T) {
	if _, err := ResumeControlled([]byte("not a snapshot"), ControlOptions{}); !errors.Is(err, ErrSnapshot) {
		t.Errorf("garbage: want ErrSnapshot, got %v", err)
	}
	s := Quick(Entries()[0].Build())
	data, _ := snapshotMidRun(t, s, s.Duration/2)
	if _, err := ResumeControlled(data[:len(data)/2], ControlOptions{}); !errors.Is(err, ErrSnapshot) {
		t.Errorf("truncation: want ErrSnapshot, got %v", err)
	}
	if _, err := ResumeControlled(data, ControlOptions{CheckpointEvery: -1}); !errors.Is(err, ErrScenario) {
		t.Errorf("negative interval: want ErrScenario, got %v", err)
	}
}

// TestRunControlledRejectsNegativeInterval pins option validation.
func TestRunControlledRejectsNegativeInterval(t *testing.T) {
	s := Quick(Entries()[0].Build())
	if _, err := RunControlled(s, ControlOptions{CheckpointEvery: -1}); !errors.Is(err, ErrScenario) {
		t.Errorf("want ErrScenario, got %v", err)
	}
}
