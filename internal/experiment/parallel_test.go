package experiment

import (
	"reflect"
	"testing"

	"mafic/internal/sim"
)

// parallelTestBase is a scaled-down scenario so determinism tests stay fast.
func parallelTestBase() Scenario {
	s := DefaultScenario()
	s.Topology.NumRouters = 12
	s.Topology.BystanderHosts = 4
	s.Workload.TotalFlows = 16
	s.Duration = 1200 * sim.Millisecond
	s.Workload.AttackStart = 500 * sim.Millisecond
	s.DetectionFallback = 300 * sim.Millisecond
	return s
}

// TestRunManySerialParallelIdentical is the determinism contract of the sweep
// worker pool: for a fixed seed, running the same scenarios serially and
// across workers must produce byte-identical results in the same order.
func TestRunManySerialParallelIdentical(t *testing.T) {
	var scenarios []Scenario
	for i, flows := range []int{8, 12, 16, 20} {
		s := parallelTestBase()
		s.Workload.TotalFlows = flows
		s.Seed = int64(100 + i)
		scenarios = append(scenarios, s)
	}

	serial, err := RunMany(scenarios, 1)
	if err != nil {
		t.Fatalf("serial: %v", err)
	}
	parallel, err := RunMany(scenarios, 4)
	if err != nil {
		t.Fatalf("parallel: %v", err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("result count differs: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if !reflect.DeepEqual(serial[i], parallel[i]) {
			t.Fatalf("result %d (%s) differs between serial and parallel runs:\nserial:   %+v\nparallel: %+v",
				i, scenarios[i].Name, serial[i], parallel[i])
		}
	}
}

// TestFigureSerialParallelIdentical checks the same property end-to-end
// through a figure generator.
func TestFigureSerialParallelIdentical(t *testing.T) {
	base := parallelTestBase()

	serialOpts := SweepOptions{Quick: true, Seed: 11, Base: &base, Workers: 1}
	parallelOpts := SweepOptions{Quick: true, Seed: 11, Base: &base, Workers: 8}

	serial, err := Fig3a(serialOpts)
	if err != nil {
		t.Fatalf("serial figure: %v", err)
	}
	parallel, err := Fig3a(parallelOpts)
	if err != nil {
		t.Fatalf("parallel figure: %v", err)
	}
	if !reflect.DeepEqual(serial, parallel) {
		t.Fatalf("figure differs between serial and parallel sweeps:\nserial:   %+v\nparallel: %+v", serial, parallel)
	}
}
