package experiment

import (
	"fmt"

	"mafic/internal/sim"
)

// Point is one (x, y) sample of a figure series.
type Point struct {
	X float64 `json:"x"`
	Y float64 `json:"y"`
}

// Series is one labelled curve of a figure.
type Series struct {
	Label  string  `json:"label"`
	Points []Point `json:"points"`
}

// Figure is the regenerated data behind one figure panel of the paper.
type Figure struct {
	ID     string   `json:"id"`
	Title  string   `json:"title"`
	XLabel string   `json:"xLabel"`
	YLabel string   `json:"yLabel"`
	Series []Series `json:"series"`
}

// SweepOptions controls the resolution of the parameter sweeps so the same
// generators serve both the full CLI reproduction and the quick benchmarks.
type SweepOptions struct {
	// Quick reduces the number of sweep points and the simulated time so
	// a figure regenerates in a fraction of the full cost.
	Quick bool
	// Seed is the base seed; every run derives its own seed from it so
	// sweep points are independent but reproducible.
	Seed int64
	// Base overrides the base scenario. Nil means DefaultScenario.
	Base *Scenario
	// Workers caps how many sweep points run concurrently. Zero means
	// GOMAXPROCS, one forces serial execution. Results are identical
	// either way; see RunMany.
	Workers int
}

// base returns the scenario every sweep point starts from.
func (o SweepOptions) base() Scenario {
	if o.Base != nil {
		return *o.Base
	}
	s := DefaultScenario()
	if o.Quick {
		s.Duration = 1800 * sim.Millisecond
		s.Workload.AttackStart = 600 * sim.Millisecond
		s.DetectionFallback = 300 * sim.Millisecond
	}
	if o.Seed != 0 {
		s.Seed = o.Seed
	}
	return s
}

// volumes returns the traffic-volume sweep (x axis of most figures).
func (o SweepOptions) volumes() []int {
	if o.Quick {
		return []int{20, 60, 100}
	}
	return []int{10, 30, 50, 70, 90, 110}
}

// tcpShares returns the Γ sweep used by Figures 5(b) and 6(b).
func (o SweepOptions) tcpShares() []float64 {
	if o.Quick {
		return []float64{0.35, 0.65, 0.95}
	}
	return []float64{0.10, 0.25, 0.40, 0.55, 0.70, 0.85, 0.95}
}

// domainSizes returns the N sweep used by Figures 5(c) and 6(c).
func (o SweepOptions) domainSizes() []int {
	if o.Quick {
		return []int{20, 60, 120}
	}
	return []int{20, 40, 80, 120, 160}
}

// dropProbabilities are the P_d series used throughout the evaluation.
var dropProbabilities = []float64{0.70, 0.80, 0.90}

// attackRates maps the paper's R legend values (packets/s) to their labels;
// simulated rates are the legend value divided by RateScale.
var attackRates = []struct {
	label string
	pps   float64
}{
	{label: "R=100k", pps: 1e5},
	{label: "R=500k", pps: 5e5},
	{label: "R=1M", pps: 1e6},
}

// sweepJob is one sweep point waiting to run: a fully configured scenario
// (seed offset already applied) plus the series index and x value its result
// lands on.
type sweepJob struct {
	series   int
	x        float64
	scenario Scenario
}

// withSeedOffset shifts the scenario's seed, keeping sweep points independent
// but reproducible.
func withSeedOffset(s Scenario, offset int64) Scenario {
	s.Seed += offset
	return s
}

// runSweep executes every job — in parallel when the options allow — and
// assembles the labelled series in deterministic order, extracting each
// point's y value with pick.
func runSweep(opts SweepOptions, labels []string, jobs []sweepJob, pick func(Result) float64) ([]Series, error) {
	scenarios := make([]Scenario, len(jobs))
	for i, j := range jobs {
		scenarios[i] = j.scenario
	}
	results, err := runPoints(opts, scenarios)
	if err != nil {
		return nil, err
	}
	out := make([]Series, len(labels))
	for i, label := range labels {
		out[i] = Series{Label: label}
	}
	for i, j := range jobs {
		out[j.series].Points = append(out[j.series].Points, Point{X: j.x, Y: pick(results[i])})
	}
	return out, nil
}

// sweepVolumesByPd produces one series per P_d over the traffic-volume sweep,
// extracting the y value with pick.
func sweepVolumesByPd(opts SweepOptions, pick func(Result) float64) ([]Series, error) {
	var labels []string
	var jobs []sweepJob
	for pi, pd := range dropProbabilities {
		labels = append(labels, fmt.Sprintf("Pd=%.0f%%", pd*100))
		for i, vt := range opts.volumes() {
			s := opts.base()
			s.Name = fmt.Sprintf("pd%.0f-vt%d", pd*100, vt)
			s.MAFIC.DropProbability = pd
			s.Workload.TotalFlows = vt
			jobs = append(jobs, sweepJob{
				series:   pi,
				x:        float64(vt),
				scenario: withSeedOffset(s, int64(i)+int64(pd*1000)),
			})
		}
	}
	return runSweep(opts, labels, jobs, pick)
}

// Fig3a regenerates Figure 3(a): attack-packet dropping accuracy versus
// traffic volume for P_d ∈ {70, 80, 90}%.
func Fig3a(opts SweepOptions) (Figure, error) {
	series, err := sweepVolumesByPd(opts, func(r Result) float64 { return r.Accuracy * 100 })
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "fig3a",
		Title:  "Attack packet dropping accuracy vs. traffic volume (by Pd)",
		XLabel: "Total Traffic Volume (No. of Flows)",
		YLabel: "Attacking Packets Dropping Accuracy (%)",
		Series: series,
	}, nil
}

// Fig3b regenerates Figure 3(b): dropping accuracy versus traffic volume for
// source rates R ∈ {100k, 500k, 1M} packets/s.
func Fig3b(opts SweepOptions) (Figure, error) {
	var labels []string
	var jobs []sweepJob
	for ri, r := range attackRates {
		labels = append(labels, r.label)
		for i, vt := range opts.volumes() {
			s := opts.base()
			s.Name = fmt.Sprintf("%s-vt%d", r.label, vt)
			s.Workload.AttackRate = r.pps / RateScale
			s.Workload.TotalFlows = vt
			jobs = append(jobs, sweepJob{
				series:   ri,
				x:        float64(vt),
				scenario: withSeedOffset(s, int64(i)+int64(ri)*100),
			})
		}
	}
	out, err := runSweep(opts, labels, jobs, func(r Result) float64 { return r.Accuracy * 100 })
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "fig3b",
		Title:  "Attack packet dropping accuracy vs. traffic volume (by source rate)",
		XLabel: "Total Traffic Volume (No. of Flows)",
		YLabel: "Attacking Packets Dropping Accuracy (%)",
		Series: out,
	}, nil
}

// Fig4a regenerates Figure 4(a): traffic reduction rate versus traffic
// volume for P_d ∈ {70, 80, 90}%.
func Fig4a(opts SweepOptions) (Figure, error) {
	series, err := sweepVolumesByPd(opts, func(r Result) float64 { return r.TrafficReduction * 100 })
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "fig4a",
		Title:  "Traffic reduction rate vs. traffic volume (by Pd)",
		XLabel: "Total Traffic Volume (No. of Flows)",
		YLabel: "Traffic Reduction Rate (%)",
		Series: series,
	}, nil
}

// Fig4b regenerates Figure 4(b): the victim-side flow bandwidth over time
// for V_t ∈ {10, 30, 50} flows, showing the cutoff when MAFIC triggers and
// the recovery of legitimate bandwidth afterwards.
func Fig4b(opts SweepOptions) (Figure, error) {
	volumes := []int{10, 30, 50}
	scenarios := make([]Scenario, len(volumes))
	for i, vt := range volumes {
		s := opts.base()
		s.Name = fmt.Sprintf("timeline-vt%d", vt)
		s.Workload.TotalFlows = vt
		// The paper plots seconds 1..3 with the attack already raging;
		// keep the full timeline here.
		scenarios[i] = withSeedOffset(s, int64(i)*17)
	}
	results, err := runPoints(opts, scenarios)
	if err != nil {
		return Figure{}, err
	}
	var out []Series
	for i, vt := range volumes {
		series := Series{Label: fmt.Sprintf("Vt=%d", vt)}
		for _, bin := range results[i].Series {
			rate := float64(bin.Total()) / scenarios[i].BinWidth.Seconds()
			series.Points = append(series.Points, Point{X: bin.Time.Seconds(), Y: rate})
		}
		out = append(out, series)
	}
	return Figure{
		ID:     "fig4b",
		Title:  "Victim flow bandwidth over time (by number of flows)",
		XLabel: "Time (second)",
		YLabel: "Flow Bandwidth (packets/s at victim)",
		Series: out,
	}, nil
}

// Fig5a regenerates Figure 5(a): false positive rate versus traffic volume
// for P_d ∈ {70, 80, 90}%.
func Fig5a(opts SweepOptions) (Figure, error) {
	series, err := sweepVolumesByPd(opts, func(r Result) float64 { return r.FalsePositiveRate * 100 })
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "fig5a",
		Title:  "False positive rate vs. traffic volume (by Pd)",
		XLabel: "Total Traffic Volume (No. of Flows)",
		YLabel: "False Positive Rate (%)",
		Series: series,
	}, nil
}

// sweepTCPShareByVolume produces one series per traffic volume over the Γ
// sweep, extracting the y value with pick.
func sweepTCPShareByVolume(opts SweepOptions, pick func(Result) float64) ([]Series, error) {
	var labels []string
	var jobs []sweepJob
	for vi, vt := range []int{30, 70, 100} {
		labels = append(labels, fmt.Sprintf("Vt=%d", vt))
		for i, share := range opts.tcpShares() {
			s := opts.base()
			s.Name = fmt.Sprintf("vt%d-tcp%.0f", vt, share*100)
			s.Workload.TotalFlows = vt
			s.Workload.TCPShare = share
			jobs = append(jobs, sweepJob{
				series:   vi,
				x:        share * 100,
				scenario: withSeedOffset(s, int64(vi)*1000+int64(i)),
			})
		}
	}
	return runSweep(opts, labels, jobs, pick)
}

// Fig5b regenerates Figure 5(b): false positive rate versus percentage of
// TCP traffic for V_t ∈ {30, 70, 100}.
func Fig5b(opts SweepOptions) (Figure, error) {
	series, err := sweepTCPShareByVolume(opts, func(r Result) float64 { return r.FalsePositiveRate * 100 })
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "fig5b",
		Title:  "False positive rate vs. percentage of TCP traffic (by Vt)",
		XLabel: "Percentage of TCP Traffic (%)",
		YLabel: "False Positive Rate (%)",
		Series: series,
	}, nil
}

// sweepDomainSizeByTCP produces one series per TCP share over the domain
// size sweep, extracting the y value with pick.
func sweepDomainSizeByTCP(opts SweepOptions, pick func(Result) float64) ([]Series, error) {
	var labels []string
	var jobs []sweepJob
	for ti, share := range []float64{0.95, 0.75, 0.55, 0.35} {
		labels = append(labels, fmt.Sprintf("TCP=%.0f%%", share*100))
		for i, n := range opts.domainSizes() {
			s := opts.base()
			s.Name = fmt.Sprintf("n%d-tcp%.0f", n, share*100)
			s.Topology.NumRouters = n
			s.Workload.TCPShare = share
			jobs = append(jobs, sweepJob{
				series:   ti,
				x:        float64(n),
				scenario: withSeedOffset(s, int64(ti)*1000+int64(i)),
			})
		}
	}
	return runSweep(opts, labels, jobs, pick)
}

// Fig5c regenerates Figure 5(c): false positive rate versus domain size for
// TCP shares from 35% to 95%.
func Fig5c(opts SweepOptions) (Figure, error) {
	series, err := sweepDomainSizeByTCP(opts, func(r Result) float64 { return r.FalsePositiveRate * 100 })
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "fig5c",
		Title:  "False positive rate vs. domain size (by TCP share)",
		XLabel: "Domain Size (No. of Routers)",
		YLabel: "False Positive Rate (%)",
		Series: series,
	}, nil
}

// Fig6a regenerates Figure 6(a): false negative rate versus traffic volume
// for P_d ∈ {70, 80, 90}%.
func Fig6a(opts SweepOptions) (Figure, error) {
	series, err := sweepVolumesByPd(opts, func(r Result) float64 { return r.FalseNegativeRate * 100 })
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "fig6a",
		Title:  "False negative rate vs. traffic volume (by Pd)",
		XLabel: "Total Traffic Volume (No. of Flows)",
		YLabel: "False Negative Rate (%)",
		Series: series,
	}, nil
}

// Fig6b regenerates Figure 6(b): false negative rate versus percentage of
// TCP traffic for V_t ∈ {30, 70, 100}.
func Fig6b(opts SweepOptions) (Figure, error) {
	series, err := sweepTCPShareByVolume(opts, func(r Result) float64 { return r.FalseNegativeRate * 100 })
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "fig6b",
		Title:  "False negative rate vs. percentage of TCP traffic (by Vt)",
		XLabel: "Percentage of TCP Traffic (%)",
		YLabel: "False Negative Rate (%)",
		Series: series,
	}, nil
}

// Fig6c regenerates Figure 6(c): false negative rate versus domain size for
// TCP shares from 35% to 95%.
func Fig6c(opts SweepOptions) (Figure, error) {
	series, err := sweepDomainSizeByTCP(opts, func(r Result) float64 { return r.FalseNegativeRate * 100 })
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "fig6c",
		Title:  "False negative rate vs. domain size (by TCP share)",
		XLabel: "Domain Size (No. of Routers)",
		YLabel: "False Negative Rate (%)",
		Series: series,
	}, nil
}

// Fig7 regenerates Figure 7: legitimate-packet dropping rate L_r versus
// traffic volume for P_d ∈ {70, 80, 90}%.
func Fig7(opts SweepOptions) (Figure, error) {
	series, err := sweepVolumesByPd(opts, func(r Result) float64 { return r.LegitimateDropRate * 100 })
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "fig7",
		Title:  "Legitimate packet dropping rate vs. traffic volume (by Pd)",
		XLabel: "Total Traffic Volume (No. of Flows)",
		YLabel: "Legitimate Packet Dropping Rate (%)",
		Series: series,
	}, nil
}

// AblationBaseline compares MAFIC against the proportional dropper (the
// design point the paper argues against): collateral damage and traffic
// reduction at the default operating point.
func AblationBaseline(opts SweepOptions) (Figure, error) {
	var labels []string
	var jobs []sweepJob
	configs := []struct {
		label   string
		defense DefenseKind
	}{
		{label: "MAFIC", defense: DefenseMAFIC},
		{label: "Proportional", defense: DefenseBaseline},
	}
	for ci, cfg := range configs {
		labels = append(labels, cfg.label)
		for i, vt := range opts.volumes() {
			s := opts.base()
			s.Name = fmt.Sprintf("ablation-%s-vt%d", cfg.label, vt)
			s.Defense = cfg.defense
			s.Workload.TotalFlows = vt
			jobs = append(jobs, sweepJob{
				series:   ci,
				x:        float64(vt),
				scenario: withSeedOffset(s, int64(ci)*1000+int64(i)),
			})
		}
	}
	out, err := runSweep(opts, labels, jobs, func(r Result) float64 { return r.LegitimateDropRate * 100 })
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "ablation-baseline",
		Title:  "Collateral damage: MAFIC vs. proportional dropping",
		XLabel: "Total Traffic Volume (No. of Flows)",
		YLabel: "Legitimate Packet Dropping Rate (%)",
		Series: out,
	}, nil
}

// AblationProbeWindow varies the probing window (1×, 2×, 4× RTT) to expose
// the accuracy / collateral-damage trade-off behind the paper's 2×RTT
// choice.
func AblationProbeWindow(opts SweepOptions) (Figure, error) {
	var labels []string
	var jobs []sweepJob
	for wi, windows := range []float64{1, 2, 4} {
		labels = append(labels, fmt.Sprintf("%vxRTT", windows))
		for i, vt := range opts.volumes() {
			s := opts.base()
			s.Name = fmt.Sprintf("window%v-vt%d", windows, vt)
			s.MAFIC.ProbeWindowRTTs = windows
			s.Workload.TotalFlows = vt
			jobs = append(jobs, sweepJob{
				series:   wi,
				x:        float64(vt),
				scenario: withSeedOffset(s, int64(wi)*1000+int64(i)),
			})
		}
	}
	out, err := runSweep(opts, labels, jobs, func(r Result) float64 { return r.LegitimateDropRate * 100 })
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "ablation-probe-window",
		Title:  "Probing window length vs. collateral damage",
		XLabel: "Total Traffic Volume (No. of Flows)",
		YLabel: "Legitimate Packet Dropping Rate (%)",
		Series: out,
	}, nil
}

// AblationPulsingAttack compares MAFIC's effectiveness against a constant
// flood and against a shrew-style on-off (pulsing) attack of the same peak
// rate. The paper's related work (HAWK, ref [11]) motivates this extension:
// pulsing attackers deliberately mimic a responsive source by going silent,
// which inflates the false-negative rate of any probe-and-watch scheme.
func AblationPulsingAttack(opts SweepOptions) (Figure, error) {
	var labels []string
	var jobs []sweepJob
	modes := []struct {
		label  string
		period sim.Time
		duty   float64
	}{
		{label: "constant flood", period: 0, duty: 0},
		{label: "pulsing 20% duty", period: sim.Second, duty: 0.2},
		{label: "pulsing 50% duty", period: sim.Second, duty: 0.5},
	}
	for mi, mode := range modes {
		labels = append(labels, mode.label)
		for i, vt := range opts.volumes() {
			s := opts.base()
			s.Name = fmt.Sprintf("pulsing-%d-vt%d", mi, vt)
			s.Workload.TotalFlows = vt
			s.Workload.AttackPulsePeriod = mode.period
			s.Workload.AttackDutyCycle = mode.duty
			jobs = append(jobs, sweepJob{
				series:   mi,
				x:        float64(vt),
				scenario: withSeedOffset(s, int64(mi)*1000+int64(i)),
			})
		}
	}
	out, err := runSweep(opts, labels, jobs, func(r Result) float64 { return r.FalseNegativeRate * 100 })
	if err != nil {
		return Figure{}, err
	}
	return Figure{
		ID:     "ablation-pulsing",
		Title:  "False negatives under constant vs. pulsing (shrew-style) attacks",
		XLabel: "Total Traffic Volume (No. of Flows)",
		YLabel: "False Negative Rate (%)",
		Series: out,
	}, nil
}

// FigureID identifies one reproducible figure.
type FigureID string

// The reproducible figure identifiers.
const (
	FigureF3a             FigureID = "3a"
	FigureF3b             FigureID = "3b"
	FigureF4a             FigureID = "4a"
	FigureF4b             FigureID = "4b"
	FigureF5a             FigureID = "5a"
	FigureF5b             FigureID = "5b"
	FigureF5c             FigureID = "5c"
	FigureF6a             FigureID = "6a"
	FigureF6b             FigureID = "6b"
	FigureF6c             FigureID = "6c"
	FigureF7              FigureID = "7"
	FigureAblationBase    FigureID = "ablation-baseline"
	FigureAblationProbe   FigureID = "ablation-probe"
	FigureAblationPulsing FigureID = "ablation-pulsing"
)

// AllFigureIDs lists every reproducible figure in presentation order.
func AllFigureIDs() []FigureID {
	return []FigureID{
		FigureF3a, FigureF3b, FigureF4a, FigureF4b,
		FigureF5a, FigureF5b, FigureF5c,
		FigureF6a, FigureF6b, FigureF6c, FigureF7,
		FigureAblationBase, FigureAblationProbe, FigureAblationPulsing,
	}
}

// Generate produces the named figure.
func Generate(id FigureID, opts SweepOptions) (Figure, error) {
	switch id {
	case FigureF3a:
		return Fig3a(opts)
	case FigureF3b:
		return Fig3b(opts)
	case FigureF4a:
		return Fig4a(opts)
	case FigureF4b:
		return Fig4b(opts)
	case FigureF5a:
		return Fig5a(opts)
	case FigureF5b:
		return Fig5b(opts)
	case FigureF5c:
		return Fig5c(opts)
	case FigureF6a:
		return Fig6a(opts)
	case FigureF6b:
		return Fig6b(opts)
	case FigureF6c:
		return Fig6c(opts)
	case FigureF7:
		return Fig7(opts)
	case FigureAblationBase:
		return AblationBaseline(opts)
	case FigureAblationProbe:
		return AblationProbeWindow(opts)
	case FigureAblationPulsing:
		return AblationPulsingAttack(opts)
	default:
		return Figure{}, fmt.Errorf("%w: unknown figure %q", ErrScenario, id)
	}
}
