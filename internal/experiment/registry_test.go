package experiment

import (
	"errors"
	"testing"
)

func TestRegistryCatalogSize(t *testing.T) {
	// The catalog must offer the paper's default operating point plus at
	// least five adversarial workloads.
	entries := Entries()
	if len(entries) < 6 {
		t.Fatalf("catalog has %d scenarios, want >= 6", len(entries))
	}
	for _, name := range []string{"table2", "carpet-bombing", "coremelt", "flash-overlap"} {
		if _, ok := LookupScenario(name); !ok {
			t.Fatalf("%s scenario missing from the catalog", name)
		}
	}
}

func TestRegistryEntriesBuildAndValidate(t *testing.T) {
	for _, e := range Entries() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			if e.Description == "" {
				t.Fatal("entry has no description")
			}
			s := e.Build()
			if s.Name != e.Name {
				t.Fatalf("scenario name %q != registry name %q", s.Name, e.Name)
			}
			if err := s.Validate(); err != nil {
				t.Fatalf("full scenario invalid: %v", err)
			}
			if err := Quick(s).Validate(); err != nil {
				t.Fatalf("quick scenario invalid: %v", err)
			}
		})
	}
}

func TestRegistryBuildReturnsFreshScenarios(t *testing.T) {
	e, ok := LookupScenario("rolling-pulse")
	if !ok {
		t.Fatal("rolling-pulse missing")
	}
	a := e.Build()
	a.Workload.TotalFlows = 1
	a.Workload.AttackRateMix = append(a.Workload.AttackRateMix, 99)
	b := e.Build()
	if b.Workload.TotalFlows == 1 {
		t.Fatal("Build returned a shared scenario: mutation leaked")
	}
	for _, m := range b.Workload.AttackRateMix {
		if m == 99 {
			t.Fatal("Build returned a shared rate mix slice")
		}
	}
}

func TestRegistryNamesSorted(t *testing.T) {
	names := ScenarioNames()
	for i := 1; i < len(names); i++ {
		if names[i-1] >= names[i] {
			t.Fatalf("names not sorted or not unique: %q then %q", names[i-1], names[i])
		}
	}
	if len(names) != len(Entries()) {
		t.Fatal("ScenarioNames and Entries disagree")
	}
}

func TestRegisterRejectsBadEntries(t *testing.T) {
	if err := Register(Entry{Name: "", Build: DefaultScenario}); !errors.Is(err, ErrScenario) {
		t.Fatalf("empty name: want ErrScenario, got %v", err)
	}
	if err := Register(Entry{Name: "no-builder"}); !errors.Is(err, ErrScenario) {
		t.Fatalf("nil builder: want ErrScenario, got %v", err)
	}
	if err := Register(Entry{Name: "table2", Build: DefaultScenario}); !errors.Is(err, ErrScenario) {
		t.Fatalf("duplicate: want ErrScenario, got %v", err)
	}
}

func TestQuickScenarioRunsEveryEntry(t *testing.T) {
	for _, e := range Entries() {
		e := e
		t.Run(e.Name, func(t *testing.T) {
			t.Parallel()
			res, err := Run(Quick(e.Build()))
			if err != nil {
				t.Fatalf("Run: %v", err)
			}
			if !res.Activated {
				t.Fatal("defense never activated")
			}
			if res.EventsProcessed == 0 {
				t.Fatal("no events processed")
			}
			if res.Counts.ATRAttackPost == 0 {
				t.Fatal("no attack packets observed post-activation")
			}
		})
	}
}
