package experiment

import (
	"fmt"
	"math"
	"slices"

	"mafic/internal/sim"
)

// This file is the adversary-search harness: maficbench for robustness
// instead of speed. A SearchSpec spans a deterministic grid of attack shapes
// (rotation period, group count, pulse duty cycle), per-flow rate mixes and
// victim spreads, runs every point under every defence configuration through
// the same RunMany worker pool the figure sweeps use, and reports the
// worst-case accuracy and collateral point per defence — so a config's
// robustness claim is "here is the best attack the grid found against it",
// not "here is one scenario it happens to win".

// AttackShape describes the temporal structure of the attack at one grid
// point. The zero value (no groups, no pulse) is a constant-rate flood.
type AttackShape struct {
	// Name labels the shape in reports.
	Name string `json:"name"`
	// Groups, when greater than one, makes the attack a rolling pulse with
	// this many rotation groups; RotationPeriod is the slot length. The
	// per-flow peak rate is multiplied by Groups so the time-averaged
	// volume matches the constant flood (as the catalog's rolling-pulse
	// scenario does).
	Groups int `json:"groups,omitempty"`
	// RotationPeriod is the rolling pulse's slot length.
	RotationPeriod sim.Time `json:"rotationPeriod,omitempty"`
	// PulsePeriod, when positive (and Groups <= 1), makes every attack
	// flow an on-off pulse with this cycle length.
	PulsePeriod sim.Time `json:"pulsePeriod,omitempty"`
	// DutyCycle is the flooding fraction of each pulse period.
	DutyCycle float64 `json:"dutyCycle,omitempty"`
}

// FaultShape names one failure model under search: the same attack grid is
// re-run under each shape, so a defence's worst case is reported per fault
// environment, not just under ideal conditions.
type FaultShape struct {
	// Name labels the shape in reports.
	Name string `json:"name"`
	// Faults is the failure model applied to every grid point under this
	// shape. The zero value is the fault-free environment.
	Faults FaultSpec `json:"faults,omitempty"`
}

// RateMix names one per-flow rate multiplier pattern.
type RateMix struct {
	// Name labels the mix in reports.
	Name string `json:"name"`
	// Multipliers is applied round-robin across attack flows; empty keeps
	// the uniform rate.
	Multipliers []float64 `json:"multipliers,omitempty"`
}

// DefenceVariant is one defence configuration under search, expressed as a
// transform over the base scenario so variants compose with scenario-specific
// tuning.
type DefenceVariant struct {
	// Name labels the defence in reports.
	Name string
	// Apply rewrites the scenario to use this defence configuration. A nil
	// Apply keeps the scenario unchanged.
	Apply func(Scenario) Scenario
}

// SearchSpec is the full grid: every combination of shape × rate mix ×
// victim spread is materialised as a scenario and run once per defence
// variant.
type SearchSpec struct {
	// Base is the scenario every grid point starts from. Its topology must
	// provide extra victims if any VictimSpread is positive.
	Base Scenario
	// Seed is folded with the point index into each point's scenario seed,
	// so the whole grid is reproducible from one number.
	Seed int64
	// Shapes, RateMixes and VictimSpreads are the grid axes.
	Shapes        []AttackShape
	RateMixes     []RateMix
	VictimSpreads []float64
	// FaultShapes is the failure-model axis; empty means a single
	// fault-free environment, keeping pre-fault specs unchanged.
	FaultShapes []FaultShape
	// Defences are the configurations being compared.
	Defences []DefenceVariant
}

// faultAxis normalises the failure-model axis: an unset axis is the single
// fault-free environment.
func (spec SearchSpec) faultAxis() []FaultShape {
	if len(spec.FaultShapes) == 0 {
		return []FaultShape{{Name: "none"}}
	}
	return spec.FaultShapes
}

// SearchPoint is one cell of the attack grid, before a defence is applied.
type SearchPoint struct {
	// Index is the point's position in enumeration order; it also offsets
	// the point's seed from the spec seed.
	Index int
	// Shape, Mix, Spread and Fault are the point's coordinates.
	Shape  AttackShape
	Mix    RateMix
	Spread float64
	Fault  FaultShape
}

// Grid enumerates the spec's attack points in deterministic nested order:
// fault shapes outermost (so a single-fault spec keeps the historical point
// order), then attack shapes, rate mixes and victim spreads.
func (spec SearchSpec) Grid() []SearchPoint {
	faults := spec.faultAxis()
	points := make([]SearchPoint, 0,
		len(faults)*len(spec.Shapes)*len(spec.RateMixes)*len(spec.VictimSpreads))
	for _, fault := range faults {
		for _, shape := range spec.Shapes {
			for _, mix := range spec.RateMixes {
				for _, spread := range spec.VictimSpreads {
					points = append(points, SearchPoint{
						Index:  len(points),
						Shape:  shape,
						Mix:    mix,
						Spread: spread,
						Fault:  fault,
					})
				}
			}
		}
	}
	return points
}

// scenario materialises one grid point under one defence variant.
func (spec SearchSpec) scenario(def DefenceVariant, p SearchPoint, quick bool) Scenario {
	s := spec.Base
	s.Name = fmt.Sprintf("%s/%s/%s/%s/spread%.2f",
		def.Name, p.Fault.Name, p.Shape.Name, p.Mix.Name, p.Spread)
	s.Seed = spec.Seed + int64(p.Index)
	s.Faults = p.Fault.Faults

	w := &s.Workload
	w.AttackGroups, w.AttackRotationPeriod = 0, 0
	w.AttackPulsePeriod, w.AttackDutyCycle = 0, 0
	switch {
	case p.Shape.Groups > 1:
		w.AttackGroups = p.Shape.Groups
		w.AttackRotationPeriod = p.Shape.RotationPeriod
		// Peak × Groups keeps the time-averaged volume equal to the
		// constant flood, so accuracy is compared at equal attack mass.
		w.AttackRate *= float64(p.Shape.Groups)
	case p.Shape.PulsePeriod > 0:
		w.AttackPulsePeriod = p.Shape.PulsePeriod
		w.AttackDutyCycle = p.Shape.DutyCycle
	}
	w.AttackRateMix = p.Mix.Multipliers
	w.ExtraVictimShare = p.Spread

	if def.Apply != nil {
		s = def.Apply(s)
	}
	if quick {
		s = Quick(s)
	}
	return s
}

// PointOutcome is one (defence, attack point) result with the metrics the
// worst-case selection ranks on.
type PointOutcome struct {
	Name   string  `json:"name"`
	Seed   int64   `json:"seed"`
	Shape  string  `json:"shape"`
	Mix    string  `json:"mix"`
	Spread float64 `json:"victimSpread"`
	Fault  string  `json:"fault,omitempty"`

	Accuracy           float64 `json:"accuracy"`
	LegitimateDropRate float64 `json:"legitimateDropRate"`
	FalsePositiveRate  float64 `json:"falsePositiveRate"`

	Activated          bool `json:"activated"`
	DetectedByPushback bool `json:"detectedByPushback"`
	ATRCount           int  `json:"atrCount"`
	FlowsReprobed      int  `json:"flowsReprobed,omitempty"`
	LegitCondemned     int  `json:"legitFlowsCondemned"`
	AttackForgiven     int  `json:"attackFlowsForgiven"`
}

// DefenceOutcome aggregates one defence variant across the whole grid.
type DefenceOutcome struct {
	Defence string `json:"defence"`
	// WorstAccuracy is the grid point with the lowest attacking-packet
	// dropping accuracy — the best attack the grid found.
	WorstAccuracy PointOutcome `json:"worstAccuracy"`
	// WorstCollateral is the grid point with the highest legitimate packet
	// drop rate.
	WorstCollateral PointOutcome `json:"worstCollateral"`
	// MeanAccuracy averages accuracy over the grid.
	MeanAccuracy float64 `json:"meanAccuracy"`
	// ByFault breaks the worst case down per failure model, in the fault
	// axis's order — the robustness claim under churn, not just in the
	// fault-free environment.
	ByFault []FaultOutcome `json:"byFault,omitempty"`
	// Points holds every grid point's outcome in enumeration order.
	Points []PointOutcome `json:"points"`
}

// FaultOutcome aggregates one defence variant over the grid points sharing a
// failure model.
type FaultOutcome struct {
	Fault string `json:"fault"`
	// WorstAccuracy is the lowest-accuracy point under this failure model.
	WorstAccuracy PointOutcome `json:"worstAccuracy"`
	// MeanAccuracy averages accuracy over this failure model's points.
	MeanAccuracy float64 `json:"meanAccuracy"`
}

// SearchReport is the harness's JSON-serialisable output.
type SearchReport struct {
	Quick    bool             `json:"quick"`
	Seed     int64            `json:"seed"`
	GridSize int              `json:"gridSize"`
	Defences []DefenceOutcome `json:"defences"`
}

// SearchOptions tunes a Search run.
type SearchOptions struct {
	// Quick runs every point through the same scaled-down transform the
	// golden tests pin, turning the full grid into a seconds-long smoke.
	Quick bool
	// Workers caps concurrent runs as in RunMany; zero means GOMAXPROCS.
	Workers int
}

// DefaultSearchSpec returns the standard robustness grid: six attack shapes
// (constant, three rolling-pulse variants, shrew, fast pulse) × two rate
// mixes × two victim spreads, evaluated against the paper-faithful and
// hardened defences. 24 attack points, 48 runs.
func DefaultSearchSpec() SearchSpec {
	base := DefaultScenario()
	base.Topology.ExtraVictims = 2
	base.Workload.TotalFlows = 60
	base.Workload.TCPShare = 0.80
	return SearchSpec{
		Base: base,
		Seed: 1,
		Shapes: []AttackShape{
			{Name: "constant"},
			{Name: "rolling-150ms-3g", Groups: 3, RotationPeriod: 150 * sim.Millisecond},
			{Name: "rolling-60ms-3g", Groups: 3, RotationPeriod: 60 * sim.Millisecond},
			{Name: "rolling-300ms-2g", Groups: 2, RotationPeriod: 300 * sim.Millisecond},
			{Name: "shrew-1s-8pct", PulsePeriod: 1 * sim.Second, DutyCycle: 0.08},
			{Name: "pulse-400ms-25pct", PulsePeriod: 400 * sim.Millisecond, DutyCycle: 0.25},
		},
		RateMixes: []RateMix{
			{Name: "uniform"},
			{Name: "mixed", Multipliers: []float64{0.05, 0.25, 1, 3}},
		},
		VictimSpreads: []float64{0, 0.4},
		// The failure-model axis re-runs the whole attack grid under
		// churn: loaded transit-link flaps mid-attack and a 20%-lossy
		// control plane (link 1-2 carries a seed-1 ingress path and both
		// endpoints stay transit routers in the full 40-router domain and
		// the 16-router quick variant alike).
		FaultShapes: []FaultShape{
			{Name: "none"},
			{Name: "link-flaps", Faults: FaultSpec{LinkFlaps: []LinkFlap{
				{RouterA: 1, RouterB: 2, Start: 800 * sim.Millisecond,
					DownFor: 150 * sim.Millisecond, Period: 400 * sim.Millisecond, Count: 3},
			}}},
			{Name: "lossy-20pct", Faults: FaultSpec{ReportLoss: 0.2}},
		},
		Defences: []DefenceVariant{
			{Name: "paper"},
			{Name: "hardened", Apply: Harden},
		},
	}
}

// QuickSearchSpec returns the tiny smoke grid `make search-smoke` runs: three
// shapes, uniform rates, no victim spread — six quick-mode runs.
func QuickSearchSpec() SearchSpec {
	spec := DefaultSearchSpec()
	spec.Shapes = []AttackShape{
		spec.Shapes[0], // constant
		spec.Shapes[1], // rolling-150ms-3g
		spec.Shapes[4], // shrew
	}
	spec.RateMixes = spec.RateMixes[:1]
	spec.VictimSpreads = []float64{0}
	spec.FaultShapes = []FaultShape{
		spec.FaultShapes[0], // none
		spec.FaultShapes[1], // link-flaps
	}
	return spec
}

// Search runs the full grid under every defence variant and folds the results
// into per-defence worst cases. Point seeds, enumeration order and worst-case
// tie-breaks are all deterministic, and RunMany's parallel execution is
// bit-identical to serial, so the same spec and seed always produce the same
// report regardless of worker count.
func Search(spec SearchSpec, opts SearchOptions) (SearchReport, error) {
	if len(spec.Shapes) == 0 || len(spec.RateMixes) == 0 || len(spec.VictimSpreads) == 0 {
		return SearchReport{}, fmt.Errorf("%w: search grid has an empty axis", ErrScenario)
	}
	if len(spec.Defences) == 0 {
		return SearchReport{}, fmt.Errorf("%w: search needs at least one defence variant", ErrScenario)
	}
	points := spec.Grid()

	scenarios := make([]Scenario, 0, len(spec.Defences)*len(points))
	for _, def := range spec.Defences {
		for _, p := range points {
			s := spec.scenario(def, p, opts.Quick)
			if err := s.Validate(); err != nil {
				return SearchReport{}, fmt.Errorf("point %q: %w", s.Name, err)
			}
			scenarios = append(scenarios, s)
		}
	}

	results, err := RunMany(scenarios, opts.Workers)
	if err != nil {
		return SearchReport{}, err
	}

	report := SearchReport{
		Quick:    opts.Quick,
		Seed:     spec.Seed,
		GridSize: len(points),
		Defences: make([]DefenceOutcome, 0, len(spec.Defences)),
	}
	for di, def := range spec.Defences {
		outcome := DefenceOutcome{
			Defence: def.Name,
			Points:  make([]PointOutcome, 0, len(points)),
		}
		sum := 0.0
		for pi, p := range points {
			res := results[di*len(points)+pi]
			po := PointOutcome{
				Name:               res.Name,
				Seed:               spec.Seed + int64(p.Index),
				Shape:              p.Shape.Name,
				Mix:                p.Mix.Name,
				Spread:             p.Spread,
				Fault:              p.Fault.Name,
				Accuracy:           res.Accuracy,
				LegitimateDropRate: res.LegitimateDropRate,
				FalsePositiveRate:  res.FalsePositiveRate,
				Activated:          res.Activated,
				DetectedByPushback: res.DetectedByPushback,
				ATRCount:           res.ATRCount,
				FlowsReprobed:      int(res.DefenseStats.FlowsReprobed),
				LegitCondemned:     res.LegitFlowsCondemned,
				AttackForgiven:     res.AttackFlowsForgiven,
			}
			outcome.Points = append(outcome.Points, po)
			sum += po.Accuracy
			// Strict comparisons keep the earliest point on ties, so the
			// worst case is deterministic across runs and worker counts.
			if pi == 0 || po.Accuracy < outcome.WorstAccuracy.Accuracy {
				outcome.WorstAccuracy = po
			}
			if pi == 0 || po.LegitimateDropRate > outcome.WorstCollateral.LegitimateDropRate {
				outcome.WorstCollateral = po
			}
		}
		outcome.MeanAccuracy = sum / float64(len(points))
		for _, fault := range spec.faultAxis() {
			fo := FaultOutcome{Fault: fault.Name}
			n, faultSum := 0, 0.0
			for _, po := range outcome.Points {
				if po.Fault != fault.Name {
					continue
				}
				if n == 0 || po.Accuracy < fo.WorstAccuracy.Accuracy {
					fo.WorstAccuracy = po
				}
				faultSum += po.Accuracy
				n++
			}
			if n > 0 {
				fo.MeanAccuracy = faultSum / float64(n)
				outcome.ByFault = append(outcome.ByFault, fo)
			}
		}
		report.Defences = append(report.Defences, outcome)
	}
	return report, nil
}

// Equal reports whether two search reports are identical up to floating-point
// representation — the determinism the harness tests pin.
func (r SearchReport) Equal(o SearchReport) bool {
	if r.Quick != o.Quick || r.Seed != o.Seed || r.GridSize != o.GridSize ||
		len(r.Defences) != len(o.Defences) {
		return false
	}
	for i := range r.Defences {
		a, b := r.Defences[i], o.Defences[i]
		if a.Defence != b.Defence ||
			a.WorstAccuracy != b.WorstAccuracy ||
			a.WorstCollateral != b.WorstCollateral ||
			!floatEqual(a.MeanAccuracy, b.MeanAccuracy) ||
			!slices.Equal(a.Points, b.Points) ||
			len(a.ByFault) != len(b.ByFault) {
			return false
		}
		for j := range a.ByFault {
			fa, fb := a.ByFault[j], b.ByFault[j]
			if fa.Fault != fb.Fault ||
				fa.WorstAccuracy != fb.WorstAccuracy ||
				!floatEqual(fa.MeanAccuracy, fb.MeanAccuracy) {
				return false
			}
		}
	}
	return true
}

// floatEqual tolerates the last-ulp wiggle a different summation order could
// introduce (none is expected: folding is always serial).
func floatEqual(a, b float64) bool {
	return a == b || math.Abs(a-b) <= 1e-12*math.Max(math.Abs(a), math.Abs(b))
}
