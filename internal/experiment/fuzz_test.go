package experiment

import (
	"testing"

	"mafic/internal/checkpoint"
	"mafic/internal/sim"
)

// FuzzSnapshotDecode lives in this package (not internal/checkpoint) because
// seeding the corpus with real snapshots needs the experiment build path, and
// checkpoint cannot import experiment. The decoder's contract under fuzzing:
// arbitrary, truncated or bit-flipped input returns a clean error — never a
// panic, and never an allocation larger than the input could justify (the
// reader's count() bounds every preallocation by the remaining payload).
func FuzzSnapshotDecode(f *testing.F) {
	for _, name := range []string{"table2", "flap-core"} {
		e, ok := LookupScenario(name)
		if !ok {
			continue
		}
		s := Quick(e.Build())
		var data []byte
		if _, err := RunWithCheckpoints(s, []sim.Time{s.Duration / 2}, func(_ sim.Time, d []byte) error {
			data = d
			return nil
		}); err != nil {
			f.Fatalf("seed snapshot for %s: %v", name, err)
		}
		f.Add(data)
		f.Add(data[:len(data)/2])
		f.Add(data[:len(data)/3])
		flipped := append([]byte(nil), data...)
		flipped[len(flipped)/2] ^= 0xff
		f.Add(flipped)
	}
	f.Add([]byte{})
	f.Add([]byte("MAFICSNP"))
	f.Add([]byte("MAFICSNP\x01\x00\x00\x00"))

	f.Fuzz(func(t *testing.T, data []byte) {
		snap, err := checkpoint.Decode(data)
		if err != nil {
			return
		}
		// A successfully decoded snapshot must survive a re-encode cycle:
		// Encode must not panic on it and its output must decode cleanly.
		if _, err := checkpoint.Decode(checkpoint.Encode(snap)); err != nil {
			t.Fatalf("re-encoded snapshot fails to decode: %v", err)
		}
	})
}
