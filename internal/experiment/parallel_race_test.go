package experiment

import (
	"testing"
)

// TestRunManyParallelAdversarialScenarios drives the parallel sweep path
// over the new adversarial workloads — notably the multi-victim flood, whose
// runs carry the most shared-looking state (extra victim servers, split
// attack targets) — with more workers than scenarios would strictly need.
// Under `go test -race` this is the regression net for data races in
// RunMany; in any mode it pins serial/parallel bit-identity for the catalog.
func TestRunManyParallelAdversarialScenarios(t *testing.T) {
	var scenarios []Scenario
	// The chaos scenarios ride along so fault schedules and the lossy
	// control plane are proven bit-identical between serial and parallel
	// execution too.
	for _, name := range []string{"multi-victim", "multi-victim", "rolling-pulse", "flash-crowd", "multihomed-victim", "transit-stub", "flap-core", "partition-heal", "lossy-control"} {
		e, ok := LookupScenario(name)
		if !ok {
			t.Fatalf("scenario %q not registered", name)
		}
		s := Quick(e.Build())
		s.Seed = int64(len(scenarios) + 1) // distinct seeds, including for the duplicated entry
		scenarios = append(scenarios, s)
	}

	serial, err := RunMany(scenarios, 1)
	if err != nil {
		t.Fatalf("serial RunMany: %v", err)
	}
	parallel, err := RunMany(scenarios, 4)
	if err != nil {
		t.Fatalf("parallel RunMany: %v", err)
	}
	if len(serial) != len(parallel) {
		t.Fatalf("result lengths differ: %d vs %d", len(serial), len(parallel))
	}
	for i := range serial {
		if serial[i].Counts != parallel[i].Counts {
			t.Errorf("scenario %d (%s): serial and parallel raw counts differ", i, serial[i].Name)
		}
		if serial[i].EventsProcessed != parallel[i].EventsProcessed {
			t.Errorf("scenario %d (%s): serial and parallel event counts differ", i, serial[i].Name)
		}
		if serial[i].Accuracy != parallel[i].Accuracy {
			t.Errorf("scenario %d (%s): serial and parallel accuracy differ", i, serial[i].Name)
		}
	}
}

// TestRunManyParallelFirstErrorDeterministic checks the failure contract on
// the parallel path: the first error in input order is reported even when a
// later worker fails first in wall-clock time.
func TestRunManyParallelFirstErrorDeterministic(t *testing.T) {
	e, ok := LookupScenario("multi-victim")
	if !ok {
		t.Fatal("multi-victim not registered")
	}
	good := Quick(e.Build())
	bad := good
	bad.Duration = 0 // fails validation
	scenarios := []Scenario{good, bad, good, bad}
	if _, err := RunMany(scenarios, 4); err == nil {
		t.Fatal("RunMany should surface the validation error")
	}
}
