package checkpoint

import (
	"fmt"

	"mafic/internal/baseline"
	"mafic/internal/core"
	"mafic/internal/flowtable"
	"mafic/internal/loglog"
	"mafic/internal/metrics"
	"mafic/internal/netsim"
	"mafic/internal/traffic"
	"mafic/internal/trafficmatrix"
)

// Encode serializes a snapshot into the sectioned wire format.
func Encode(snap *Snapshot) []byte {
	w := &writer{b: make([]byte, 0, 4096)}
	w.b = append(w.b, snapshotMagic[:]...)
	w.u32(SnapshotVersion)

	w.section(secScenario, func(w *writer) { w.bytes(snap.Scenario) })

	w.section(secClock, func(w *writer) {
		w.u64(snap.BuildSeq)
		w.time(snap.Now)
		w.u64(snap.NextSeq)
		w.u64(snap.Processed)
	})

	w.section(secRNG, func(w *writer) {
		w.u32(uint32(len(snap.Streams)))
		for _, st := range snap.Streams {
			w.i64(st.Seed)
			w.u64(st.Draws)
		}
	})

	w.section(secEvents, func(w *writer) {
		w.u32(uint32(len(snap.Events)))
		for i := range snap.Events {
			encodeEvent(w, &snap.Events[i])
		}
	})

	w.section(secProbeRecs, func(w *writer) {
		w.u32(uint32(len(snap.ProbeRecs)))
		for _, pr := range snap.ProbeRecs {
			w.u32(pr.Def)
			w.boolean(pr.State.Live)
			w.u64(pr.State.EntryHash)
			encodeLabel(w, pr.State.Label)
			w.i64(int64(pr.State.Proto))
			w.i64(pr.State.Seq)
		}
	})

	w.section(secLinks, func(w *writer) {
		w.u32(uint32(len(snap.Links)))
		for _, l := range snap.Links {
			w.time(l.NextFree)
			w.i64(l.Queued)
			w.boolean(l.Down)
			w.u64(l.Sent)
			w.u64(l.Dropped)
			w.u64(l.FaultDrops)
		}
	})

	w.section(secNodes, func(w *writer) {
		w.u32(uint32(len(snap.Nodes)))
		for _, n := range snap.Nodes {
			w.i64(int64(n.ID))
			w.boolean(n.Router)
			if n.Router {
				w.boolean(n.R.Down)
				w.u64(n.R.Forwarded)
				w.u64(n.R.Dropped)
				w.u64(n.R.FaultDrops)
			} else {
				w.u64(n.H.Received)
				w.u64(n.H.Sent)
			}
		}
	})

	w.section(secNetwork, func(w *writer) {
		w.u64(snap.Network.NextPktID)
		w.u64(snap.Network.TopoVersion)
		w.u64(snap.Network.FaultDrops)
		w.u32(uint32(len(snap.Network.RouteDests)))
		for _, d := range snap.Network.RouteDests {
			w.i64(int64(d))
		}
	})

	w.section(secMonitor, func(w *writer) {
		w.i64(snap.Monitor.EpochIndex)
		w.time(snap.Monitor.EpochStart)
		w.boolean(snap.Monitor.Stop)
		w.boolean(snap.Monitor.Running)
		w.u32(uint32(len(snap.Monitor.Counters)))
		for i := range snap.Monitor.Counters {
			c := &snap.Monitor.Counters[i]
			encodePair(w, c.Source)
			encodePair(w, c.Dest)
			w.u64(c.SourcePkts)
			w.u64(c.DestPkts)
			w.u64(c.Transit)
		}
	})

	w.section(secCoordinator, func(w *writer) {
		st := &snap.Coordinator
		w.u32(uint32(len(st.History)))
		for _, v := range st.History {
			w.f64(v)
		}
		w.u32(uint32(len(st.HistoryOK)))
		for _, v := range st.HistoryOK {
			w.boolean(v)
		}
		w.i64(st.HistorySeen)
		w.u32(uint32(len(st.ATRScore)))
		for _, v := range st.ATRScore {
			w.f64(v)
		}
		w.u32(uint32(len(st.IdentifiedATR)))
		for _, v := range st.IdentifiedATR {
			w.boolean(v)
		}
		w.i64(st.Identified)
		w.boolean(st.Active)
		w.i64(int64(st.ActiveVictim))
		w.f64(st.TriggerLoad)
		w.i64(st.CalmEpochs)
		w.i64(st.RequestsFired)
		w.i64(st.LastEpoch)
		w.i64(st.LastFireEpoch)
		w.boolean(st.PendingRefire)
	})

	w.section(secCollector, func(w *writer) {
		st := &snap.Collector
		w.boolean(st.Activated)
		w.time(st.ActivationAt)
		encodeCounts(w, st.Counts)
		w.u32(uint32(len(st.Bins)))
		for _, b := range st.Bins {
			w.time(b.Time)
			w.u64(b.LegitPackets)
			w.u64(b.AttackPackets)
			w.u64(b.Bytes)
		}
	})

	w.section(secDefenders, func(w *writer) {
		w.u8(snap.DefKind)
		switch snap.DefKind {
		case DefMAFIC:
			w.u32(uint32(len(snap.Defenders)))
			for i := range snap.Defenders {
				encodeDefender(w, &snap.Defenders[i])
			}
		case DefBaseline:
			w.u32(uint32(len(snap.Droppers)))
			for _, d := range snap.Droppers {
				w.boolean(d.Active)
				w.u32(uint32(d.VictimIP))
				w.u64(d.Stats.Examined)
				w.u64(d.Stats.Dropped)
				w.u64(d.Stats.Forwarded)
			}
		}
	})

	w.section(secFlows, func(w *writer) {
		w.u32(uint32(len(snap.Flows)))
		for _, f := range snap.Flows {
			w.u8(uint8(f.Kind))
			w.boolean(f.Running)
			w.boolean(f.InBurst)
			w.f64(f.Cwnd)
			w.f64(f.Ssthresh)
			w.i64(f.Seq)
			w.i64(f.LastAcked)
			w.i64(f.DupAcks)
			w.time(f.LastAckAt)
			w.u64(f.Sent)
			w.u64(f.Acked)
			w.u64(f.Timeouts)
			w.u64(f.FastRetx)
			w.u64(f.ProbeSeen)
			w.u64(f.Bursts)
		}
	})

	w.section(secVictims, func(w *writer) {
		w.u32(uint32(len(snap.Victims)))
		for _, v := range snap.Victims {
			w.u64(v.Received)
			w.u64(v.ReceivedBad)
			w.u64(v.ReceivedGood)
			w.u64(v.AcksGenerated)
		}
	})

	w.section(secFlags, func(w *writer) {
		w.boolean(snap.Flags.Activated)
		w.f64(snap.Flags.ActivationSeconds)
		w.boolean(snap.Flags.DetectedByPushback)
		w.i64(snap.Flags.ATRCount)
	})

	return w.b
}

func encodeLabel(w *writer, l netsim.FlowLabel) {
	w.u32(uint32(l.SrcIP))
	w.u32(uint32(l.DstIP))
	w.u16(l.SrcPort)
	w.u16(l.DstPort)
}

func encodeSketch(w *writer, s loglog.SketchState) {
	w.bytes(s.Buckets)
	w.u64(s.Adds)
}

func encodePair(w *writer, p loglog.PairState) {
	encodeSketch(w, p.Active)
	encodeSketch(w, p.Shadow)
}

func encodeCounts(w *writer, c metrics.Counts) {
	w.u64(c.ATRLegitPre)
	w.u64(c.ATRLegitPost)
	w.u64(c.ATRAttackPre)
	w.u64(c.ATRAttackPost)
	w.u64(c.DropLegitProbing)
	w.u64(c.DropLegitPDT)
	w.u64(c.DropLegitIllegal)
	w.u64(c.DropAttack)
	w.u64(c.DropAttackPDT)
	w.u64(c.VictimLegitPre)
	w.u64(c.VictimLegit)
	w.u64(c.VictimAttackPre)
	w.u64(c.VictimAttack)
	w.u64(c.QueueDrops)
	w.u64(c.FaultDrops)
}

func encodeDefender(w *writer, d *core.DefenderState) {
	w.boolean(d.Active)
	w.u32(uint32(d.VictimIP))
	w.u64(d.Stats.Examined)
	w.u64(d.Stats.Forwarded)
	w.u64(d.Stats.Dropped)
	w.u64(d.Stats.DroppedIllegal)
	w.u64(d.Stats.DroppedPDT)
	w.u64(d.Stats.DroppedProbing)
	w.u64(d.Stats.ProbesSent)
	w.u64(d.Stats.FlowsProbed)
	w.u64(d.Stats.FlowsNice)
	w.u64(d.Stats.FlowsCondemned)
	w.u64(d.Stats.FlowsIllegal)
	w.u64(d.Stats.FlowsReprobed)
	w.u64(d.Stats.FlowsRepeatCondemned)
	w.u64(d.ProbeSeqs)
	w.u32(uint32(len(d.ProbeMemory)))
	for _, pm := range d.ProbeMemory {
		w.u64(pm.LabelHash)
		w.u16(pm.Count)
	}
	w.u32(uint32(len(d.Tables.Entries)))
	for i := range d.Tables.Entries {
		e := &d.Tables.Entries[i]
		w.u64(e.LabelHash)
		w.i64(int64(e.State))
		w.u32(e.Gen)
		w.time(e.FirstSeen)
		w.time(e.LastSeen)
		w.time(e.ProbeStart)
		w.time(e.ProbeDeadline)
		w.i64(int64(e.BaselineCount))
		w.i64(int64(e.ResponseCount))
		w.u64(e.Packets)
		w.u64(e.Dropped)
	}
	w.u64(d.Tables.Evictions)
	w.u32(uint32(len(d.Tables.Transitions)))
	for _, t := range d.Tables.Transitions {
		w.u64(t)
	}
}

func encodeEvent(w *writer, ev *EventState) {
	w.time(ev.At)
	w.u64(ev.Seq)
	w.u8(ev.Kind)
	switch ev.Kind {
	case EvBuild, EvMonitorTick:
	case EvLinkTx, EvFlowSend, EvFlowPhase, EvFlowEnd:
		w.u32(ev.Index)
	case EvLinkArrive:
		w.u32(ev.Index)
		p := &ev.Packet
		w.u64(p.ID)
		encodeLabel(w, p.Label)
		w.u32(uint32(p.Kind))
		w.u32(uint32(p.Proto))
		w.i64(p.Seq)
		w.i64(p.Size)
		w.i64(p.SentAt)
		w.i64(p.Hops)
		w.i64(p.FlowID)
		w.boolean(p.Malicious)
	case EvMonitorLate:
		rep := &ev.Report
		w.i64(rep.Epoch)
		w.time(rep.Start)
		w.time(rep.End)
		w.u32(uint32(len(rep.Routers)))
		for _, id := range rep.Routers {
			w.i64(int64(id))
		}
		w.u32(uint32(len(rep.SourceEst)))
		for _, v := range rep.SourceEst {
			w.f64(v)
		}
		w.u32(uint32(len(rep.DestEst)))
		for _, v := range rep.DestEst {
			w.f64(v)
		}
		w.u32(uint32(len(rep.Matrix)))
		for _, c := range rep.Matrix {
			w.i64(int64(c.Source))
			w.i64(int64(c.Dest))
			w.f64(c.Packets)
		}
	case EvProbeSend, EvWindowEnd:
		w.u32(ev.Index)
		w.u32(ev.Probe)
	}
}

// Decode parses an encoded snapshot, validating every length against the
// input before trusting it. Arbitrary input yields a wrapped ErrCorrupt,
// never a panic.
func Decode(data []byte) (*Snapshot, error) {
	r := &reader{b: data}
	magic := r.take(len(snapshotMagic))
	if r.err != nil {
		return nil, r.err
	}
	if string(magic) != string(snapshotMagic[:]) {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := r.u32(); r.err == nil && v != SnapshotVersion {
		return nil, fmt.Errorf("%w: snapshot version %d, this build reads %d", ErrCorrupt, v, SnapshotVersion)
	}
	if r.err != nil {
		return nil, r.err
	}

	snap := &Snapshot{}
	seen := make(map[uint8]bool)
	for r.remaining() > 0 {
		kind := r.u8()
		payload := r.take(int(r.u32()))
		if r.err != nil {
			return nil, r.err
		}
		if seen[kind] {
			return nil, fmt.Errorf("%w: duplicate section %d", ErrCorrupt, kind)
		}
		seen[kind] = true
		sr := &reader{b: payload}
		decodeSection(sr, kind, snap)
		if sr.err != nil {
			return nil, fmt.Errorf("section %d: %w", kind, sr.err)
		}
		if sr.remaining() != 0 {
			return nil, fmt.Errorf("%w: section %d has %d trailing bytes", ErrCorrupt, kind, sr.remaining())
		}
	}
	for _, k := range []uint8{
		secScenario, secClock, secRNG, secEvents, secProbeRecs, secLinks,
		secNodes, secNetwork, secMonitor, secCoordinator, secCollector,
		secDefenders, secFlows, secVictims, secFlags,
	} {
		if !seen[k] {
			return nil, fmt.Errorf("%w: missing section %d", ErrCorrupt, k)
		}
	}
	return snap, nil
}

func decodeSection(r *reader, kind uint8, snap *Snapshot) {
	switch kind {
	case secScenario:
		snap.Scenario = r.bytes()

	case secClock:
		snap.BuildSeq = r.u64()
		snap.Now = r.time()
		snap.NextSeq = r.u64()
		snap.Processed = r.u64()

	case secRNG:
		n := r.count(16)
		snap.Streams = make([]StreamState, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			snap.Streams = append(snap.Streams, StreamState{Seed: r.i64(), Draws: r.u64()})
		}

	case secEvents:
		n := r.count(17)
		snap.Events = make([]EventState, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			snap.Events = append(snap.Events, decodeEvent(r))
		}

	case secProbeRecs:
		n := r.count(41)
		snap.ProbeRecs = make([]ProbeRec, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			pr := ProbeRec{Def: r.u32()}
			pr.State.Live = r.boolean()
			pr.State.EntryHash = r.u64()
			pr.State.Label = decodeLabel(r)
			pr.State.Proto = netsim.Protocol(r.i64())
			pr.State.Seq = r.i64()
			snap.ProbeRecs = append(snap.ProbeRecs, pr)
		}

	case secLinks:
		n := r.count(41)
		snap.Links = make([]netsim.LinkState, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			snap.Links = append(snap.Links, netsim.LinkState{
				NextFree:   r.time(),
				Queued:     r.i64(),
				Down:       r.boolean(),
				Sent:       r.u64(),
				Dropped:    r.u64(),
				FaultDrops: r.u64(),
			})
		}

	case secNodes:
		n := r.count(25)
		snap.Nodes = make([]NodeState, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			ns := NodeState{ID: netsim.NodeID(r.i64()), Router: r.boolean()}
			if ns.Router {
				ns.R = netsim.RouterState{
					Down:       r.boolean(),
					Forwarded:  r.u64(),
					Dropped:    r.u64(),
					FaultDrops: r.u64(),
				}
			} else {
				ns.H = netsim.HostState{Received: r.u64(), Sent: r.u64()}
			}
			snap.Nodes = append(snap.Nodes, ns)
		}

	case secNetwork:
		snap.Network.NextPktID = r.u64()
		snap.Network.TopoVersion = r.u64()
		snap.Network.FaultDrops = r.u64()
		n := r.count(8)
		snap.Network.RouteDests = make([]netsim.NodeID, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			snap.Network.RouteDests = append(snap.Network.RouteDests, netsim.NodeID(r.i64()))
		}

	case secMonitor:
		snap.Monitor.EpochIndex = r.i64()
		snap.Monitor.EpochStart = r.time()
		snap.Monitor.Stop = r.boolean()
		snap.Monitor.Running = r.boolean()
		n := r.count(72)
		snap.Monitor.Counters = make([]trafficmatrix.CounterState, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			snap.Monitor.Counters = append(snap.Monitor.Counters, trafficmatrix.CounterState{
				Source:     decodePair(r),
				Dest:       decodePair(r),
				SourcePkts: r.u64(),
				DestPkts:   r.u64(),
				Transit:    r.u64(),
			})
		}

	case secCoordinator:
		st := &snap.Coordinator
		st.History = decodeF64s(r)
		st.HistoryOK = decodeBools(r)
		st.HistorySeen = r.i64()
		st.ATRScore = decodeF64s(r)
		st.IdentifiedATR = decodeBools(r)
		st.Identified = r.i64()
		st.Active = r.boolean()
		st.ActiveVictim = netsim.NodeID(r.i64())
		st.TriggerLoad = r.f64()
		st.CalmEpochs = r.i64()
		st.RequestsFired = r.i64()
		st.LastEpoch = r.i64()
		st.LastFireEpoch = r.i64()
		st.PendingRefire = r.boolean()

	case secCollector:
		st := &snap.Collector
		st.Activated = r.boolean()
		st.ActivationAt = r.time()
		st.Counts = decodeCounts(r)
		n := r.count(32)
		st.Bins = make([]metrics.BandwidthPoint, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			st.Bins = append(st.Bins, metrics.BandwidthPoint{
				Time:          r.time(),
				LegitPackets:  r.u64(),
				AttackPackets: r.u64(),
				Bytes:         r.u64(),
			})
		}

	case secDefenders:
		snap.DefKind = r.u8()
		switch snap.DefKind {
		case DefNone:
		case DefMAFIC:
			n := r.count(145)
			snap.Defenders = make([]core.DefenderState, 0, n)
			for i := 0; i < n && r.err == nil; i++ {
				snap.Defenders = append(snap.Defenders, decodeDefender(r))
			}
		case DefBaseline:
			n := r.count(29)
			snap.Droppers = make([]baseline.DropperState, 0, n)
			for i := 0; i < n && r.err == nil; i++ {
				d := baseline.DropperState{Active: r.boolean(), VictimIP: netsim.IP(r.u32())}
				d.Stats.Examined = r.u64()
				d.Stats.Dropped = r.u64()
				d.Stats.Forwarded = r.u64()
				snap.Droppers = append(snap.Droppers, d)
			}
		default:
			r.fail("unknown defender kind %d", snap.DefKind)
		}

	case secFlows:
		n := r.count(99)
		snap.Flows = make([]traffic.FlowState, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			snap.Flows = append(snap.Flows, traffic.FlowState{
				Kind:      traffic.FlowKind(r.u8()),
				Running:   r.boolean(),
				InBurst:   r.boolean(),
				Cwnd:      r.f64(),
				Ssthresh:  r.f64(),
				Seq:       r.i64(),
				LastAcked: r.i64(),
				DupAcks:   r.i64(),
				LastAckAt: r.time(),
				Sent:      r.u64(),
				Acked:     r.u64(),
				Timeouts:  r.u64(),
				FastRetx:  r.u64(),
				ProbeSeen: r.u64(),
				Bursts:    r.u64(),
			})
		}

	case secVictims:
		n := r.count(32)
		snap.Victims = make([]traffic.VictimServerState, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			snap.Victims = append(snap.Victims, traffic.VictimServerState{
				Received:      r.u64(),
				ReceivedBad:   r.u64(),
				ReceivedGood:  r.u64(),
				AcksGenerated: r.u64(),
			})
		}

	case secFlags:
		snap.Flags.Activated = r.boolean()
		snap.Flags.ActivationSeconds = r.f64()
		snap.Flags.DetectedByPushback = r.boolean()
		snap.Flags.ATRCount = r.i64()

	default:
		r.fail("unknown section kind %d", kind)
	}
}

func decodeLabel(r *reader) netsim.FlowLabel {
	return netsim.FlowLabel{
		SrcIP:   netsim.IP(r.u32()),
		DstIP:   netsim.IP(r.u32()),
		SrcPort: r.u16(),
		DstPort: r.u16(),
	}
}

func decodeSketch(r *reader) loglog.SketchState {
	return loglog.SketchState{Buckets: r.bytes(), Adds: r.u64()}
}

func decodePair(r *reader) loglog.PairState {
	return loglog.PairState{Active: decodeSketch(r), Shadow: decodeSketch(r)}
}

func decodeF64s(r *reader) []float64 {
	n := r.count(8)
	out := make([]float64, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, r.f64())
	}
	return out
}

func decodeBools(r *reader) []bool {
	n := r.count(1)
	out := make([]bool, 0, n)
	for i := 0; i < n && r.err == nil; i++ {
		out = append(out, r.boolean())
	}
	return out
}

func decodeCounts(r *reader) metrics.Counts {
	return metrics.Counts{
		ATRLegitPre:      r.u64(),
		ATRLegitPost:     r.u64(),
		ATRAttackPre:     r.u64(),
		ATRAttackPost:    r.u64(),
		DropLegitProbing: r.u64(),
		DropLegitPDT:     r.u64(),
		DropLegitIllegal: r.u64(),
		DropAttack:       r.u64(),
		DropAttackPDT:    r.u64(),
		VictimLegitPre:   r.u64(),
		VictimLegit:      r.u64(),
		VictimAttackPre:  r.u64(),
		VictimAttack:     r.u64(),
		QueueDrops:       r.u64(),
		FaultDrops:       r.u64(),
	}
}

func decodeDefender(r *reader) core.DefenderState {
	d := core.DefenderState{}
	d.Active = r.boolean()
	d.VictimIP = netsim.IP(r.u32())
	d.Stats.Examined = r.u64()
	d.Stats.Forwarded = r.u64()
	d.Stats.Dropped = r.u64()
	d.Stats.DroppedIllegal = r.u64()
	d.Stats.DroppedPDT = r.u64()
	d.Stats.DroppedProbing = r.u64()
	d.Stats.ProbesSent = r.u64()
	d.Stats.FlowsProbed = r.u64()
	d.Stats.FlowsNice = r.u64()
	d.Stats.FlowsCondemned = r.u64()
	d.Stats.FlowsIllegal = r.u64()
	d.Stats.FlowsReprobed = r.u64()
	d.Stats.FlowsRepeatCondemned = r.u64()
	d.ProbeSeqs = r.u64()
	n := r.count(10)
	if n > 0 {
		d.ProbeMemory = make([]core.ProbeMemoryEntry, 0, n)
	}
	for i := 0; i < n && r.err == nil; i++ {
		d.ProbeMemory = append(d.ProbeMemory, core.ProbeMemoryEntry{LabelHash: r.u64(), Count: r.u16()})
	}
	n = r.count(84)
	if n > 0 {
		d.Tables.Entries = make([]flowtable.Entry, 0, n)
	}
	for i := 0; i < n && r.err == nil; i++ {
		d.Tables.Entries = append(d.Tables.Entries, flowtable.Entry{
			LabelHash:     r.u64(),
			State:         flowtable.State(r.i64()),
			Gen:           r.u32(),
			FirstSeen:     r.time(),
			LastSeen:      r.time(),
			ProbeStart:    r.time(),
			ProbeDeadline: r.time(),
			BaselineCount: int(r.i64()),
			ResponseCount: int(r.i64()),
			Packets:       r.u64(),
			Dropped:       r.u64(),
		})
	}
	d.Tables.Evictions = r.u64()
	tn := r.count(8)
	if r.err == nil && tn != len(d.Tables.Transitions) {
		r.fail("transition table has %d counters, expected %d", tn, len(d.Tables.Transitions))
	}
	for i := 0; i < len(d.Tables.Transitions) && r.err == nil; i++ {
		d.Tables.Transitions[i] = r.u64()
	}
	return d
}

func decodeEvent(r *reader) EventState {
	ev := EventState{At: r.time(), Seq: r.u64(), Kind: r.u8()}
	switch ev.Kind {
	case EvBuild, EvMonitorTick:
	case EvLinkTx, EvFlowSend, EvFlowPhase, EvFlowEnd:
		ev.Index = r.u32()
	case EvLinkArrive:
		ev.Index = r.u32()
		ev.Packet.ID = r.u64()
		ev.Packet.Label = decodeLabel(r)
		ev.Packet.Kind = int32(r.u32())
		ev.Packet.Proto = int32(r.u32())
		ev.Packet.Seq = r.i64()
		ev.Packet.Size = r.i64()
		ev.Packet.SentAt = r.i64()
		ev.Packet.Hops = r.i64()
		ev.Packet.FlowID = r.i64()
		ev.Packet.Malicious = r.boolean()
	case EvMonitorLate:
		ev.Report.Epoch = r.i64()
		ev.Report.Start = r.time()
		ev.Report.End = r.time()
		n := r.count(8)
		ev.Report.Routers = make([]netsim.NodeID, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			ev.Report.Routers = append(ev.Report.Routers, netsim.NodeID(r.i64()))
		}
		ev.Report.SourceEst = decodeF64s(r)
		ev.Report.DestEst = decodeF64s(r)
		n = r.count(24)
		ev.Report.Matrix = make([]trafficmatrix.Cell, 0, n)
		for i := 0; i < n && r.err == nil; i++ {
			ev.Report.Matrix = append(ev.Report.Matrix, trafficmatrix.Cell{
				Source:  netsim.NodeID(r.i64()),
				Dest:    netsim.NodeID(r.i64()),
				Packets: r.f64(),
			})
		}
	case EvProbeSend, EvWindowEnd:
		ev.Index = r.u32()
		ev.Probe = r.u32()
	default:
		r.fail("unknown event kind %d", ev.Kind)
	}
	return ev
}
