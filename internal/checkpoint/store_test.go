package checkpoint

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"mafic/internal/sim"
)

// syntheticSnapshot builds a structurally valid encoded snapshot whose
// scenario payload carries a marker, so store tests can tell snapshots apart
// without building a real simulation (the experiment package owns those
// tests; this package cannot import it).
func syntheticSnapshot(marker string, at sim.Time) []byte {
	return Encode(&Snapshot{Scenario: []byte(marker), Now: at})
}

func listSnapFiles(t *testing.T, dir string) []string {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("read store dir: %v", err)
	}
	var names []string
	for _, e := range entries {
		names = append(names, e.Name())
	}
	return names
}

func TestStoreSaveRotatesOldest(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, 3)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 1; i <= 5; i++ {
		at := sim.Time(i) * 100 * sim.Millisecond
		if err := st.Save(at, syntheticSnapshot("snap", at)); err != nil {
			t.Fatalf("save %d: %v", i, err)
		}
	}
	if st.Count() != 3 {
		t.Fatalf("count after rotation: got %d, want 3", st.Count())
	}
	snaps := st.Snapshots()
	for i, want := range []uint64{3, 4, 5} {
		if snaps[i].Seq != want {
			t.Errorf("snapshot %d: seq %d, want %d", i, snaps[i].Seq, want)
		}
	}
	if files := listSnapFiles(t, dir); len(files) != 3 {
		t.Errorf("files on disk: %v, want exactly the 3 newest", files)
	}
}

func TestStoreReopenContinuesSequence(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, 4)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 1; i <= 2; i++ {
		at := sim.Time(i) * sim.Millisecond
		if err := st.Save(at, syntheticSnapshot("snap", at)); err != nil {
			t.Fatalf("save: %v", err)
		}
	}
	st2, err := OpenStore(dir, 4)
	if err != nil {
		t.Fatalf("reopen: %v", err)
	}
	if st2.Count() != 2 {
		t.Fatalf("reopened count: got %d, want 2", st2.Count())
	}
	if err := st2.Save(3*sim.Millisecond, syntheticSnapshot("snap", 3*sim.Millisecond)); err != nil {
		t.Fatalf("save after reopen: %v", err)
	}
	snaps := st2.Snapshots()
	if got := snaps[len(snaps)-1].Seq; got != 3 {
		t.Errorf("sequence did not continue across reopen: got %d, want 3", got)
	}
}

func TestStoreLatestValidFallsBackPastTruncation(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, 4)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	older := syntheticSnapshot("older", 100*sim.Millisecond)
	if err := st.Save(100*sim.Millisecond, older); err != nil {
		t.Fatalf("save older: %v", err)
	}
	newer := syntheticSnapshot("newer", 200*sim.Millisecond)
	if err := st.Save(200*sim.Millisecond, newer); err != nil {
		t.Fatalf("save newer: %v", err)
	}
	// Tear the newest file in place, as a crash mid-write would have before
	// the atomic-rename discipline existed.
	newest := st.Snapshots()[1]
	if err := os.WriteFile(filepath.Join(dir, newest.Name), newer[:len(newer)/2], 0o644); err != nil {
		t.Fatalf("truncate: %v", err)
	}

	data, info, skipped, err := st.LatestValid()
	if err != nil {
		t.Fatalf("LatestValid: %v", err)
	}
	if !bytes.Equal(data, older) {
		t.Error("fallback did not return the older valid snapshot")
	}
	if info.Seq != 1 {
		t.Errorf("fallback info: seq %d, want 1", info.Seq)
	}
	if len(skipped) != 1 || skipped[0].Seq != newest.Seq {
		t.Errorf("skipped list %v, want just the torn newest snapshot", skipped)
	}
}

func TestStoreLatestValidFallsBackPastBitFlip(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, 4)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	older := syntheticSnapshot("older", 100*sim.Millisecond)
	if err := st.Save(100*sim.Millisecond, older); err != nil {
		t.Fatalf("save older: %v", err)
	}
	newer := syntheticSnapshot("newer", 200*sim.Millisecond)
	if err := st.Save(200*sim.Millisecond, newer); err != nil {
		t.Fatalf("save newer: %v", err)
	}
	// Flip a byte of the version field — the same corruption family the
	// FuzzSnapshotDecode corpus exercises; Decode must reject it cleanly.
	flipped := append([]byte(nil), newer...)
	flipped[8] ^= 0xff
	newest := st.Snapshots()[1]
	if err := os.WriteFile(filepath.Join(dir, newest.Name), flipped, 0o644); err != nil {
		t.Fatalf("flip: %v", err)
	}

	data, info, skipped, err := st.LatestValid()
	if err != nil {
		t.Fatalf("LatestValid: %v", err)
	}
	if !bytes.Equal(data, older) || info.Seq != 1 {
		t.Error("fallback did not land on the older valid snapshot")
	}
	if len(skipped) != 1 {
		t.Errorf("skipped %d snapshots, want 1", len(skipped))
	}
}

func TestStoreLatestValidAllCorrupt(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, 4)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 1; i <= 2; i++ {
		at := sim.Time(i) * sim.Millisecond
		if err := st.Save(at, syntheticSnapshot("snap", at)); err != nil {
			t.Fatalf("save: %v", err)
		}
	}
	for _, info := range st.Snapshots() {
		if err := os.WriteFile(filepath.Join(dir, info.Name), []byte("garbage"), 0o644); err != nil {
			t.Fatalf("corrupt: %v", err)
		}
	}
	_, _, skipped, err := st.LatestValid()
	if !errors.Is(err, ErrNoSnapshot) {
		t.Fatalf("want ErrNoSnapshot, got %v", err)
	}
	if len(skipped) != 2 {
		t.Errorf("skipped %d snapshots, want 2", len(skipped))
	}
}

func TestStoreRemoveAdvancesFallback(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, 4)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	older := syntheticSnapshot("older", sim.Millisecond)
	st.Save(sim.Millisecond, older)
	newer := syntheticSnapshot("newer", 2*sim.Millisecond)
	st.Save(2*sim.Millisecond, newer)

	_, info, _, err := st.LatestValid()
	if err != nil || info.Seq != 2 {
		t.Fatalf("LatestValid before remove: %v %v", info, err)
	}
	if err := st.Remove(info); err != nil {
		t.Fatalf("remove: %v", err)
	}
	data, info, _, err := st.LatestValid()
	if err != nil {
		t.Fatalf("LatestValid after remove: %v", err)
	}
	if info.Seq != 1 || !bytes.Equal(data, older) {
		t.Error("remove did not advance the fallback to the older snapshot")
	}
}

func TestStoreOpenIgnoresForeignFilesAndCleansTemps(t *testing.T) {
	dir := t.TempDir()
	for _, name := range []string{"job.json", "result.json", "notes.txt"} {
		if err := os.WriteFile(filepath.Join(dir, name), []byte("{}"), 0o644); err != nil {
			t.Fatalf("seed %s: %v", name, err)
		}
	}
	// A leftover from an atomic write interrupted by a crash.
	tmpName := "00000007-5.snap.tmp-1234"
	if err := os.WriteFile(filepath.Join(dir, tmpName), []byte("partial"), 0o644); err != nil {
		t.Fatalf("seed temp: %v", err)
	}
	st, err := OpenStore(dir, 3)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	if st.Count() != 0 {
		t.Errorf("foreign files were indexed as snapshots: %v", st.Snapshots())
	}
	for _, name := range listSnapFiles(t, dir) {
		if strings.Contains(name, ".tmp-") {
			t.Errorf("leftover temp file %s survived OpenStore", name)
		}
	}
}

func TestStoreClear(t *testing.T) {
	dir := t.TempDir()
	st, err := OpenStore(dir, 3)
	if err != nil {
		t.Fatalf("open: %v", err)
	}
	for i := 1; i <= 3; i++ {
		at := sim.Time(i) * sim.Millisecond
		if err := st.Save(at, syntheticSnapshot("snap", at)); err != nil {
			t.Fatalf("save: %v", err)
		}
	}
	if err := st.Clear(); err != nil {
		t.Fatalf("clear: %v", err)
	}
	if st.Count() != 0 {
		t.Errorf("count after clear: %d", st.Count())
	}
	for _, name := range listSnapFiles(t, dir) {
		if strings.HasSuffix(name, snapSuffix) {
			t.Errorf("snapshot %s survived Clear", name)
		}
	}
	// Sequence numbers keep counting so names never collide with history.
	if err := st.Save(4*sim.Millisecond, syntheticSnapshot("snap", 4*sim.Millisecond)); err != nil {
		t.Fatalf("save after clear: %v", err)
	}
	if got := st.Snapshots()[0].Seq; got != 4 {
		t.Errorf("sequence restarted after Clear: got %d, want 4", got)
	}
}

func TestWriteFileAtomicReplacesWholeFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "target.json")
	if err := WriteFileAtomic(path, []byte("first version, quite long"), 0o644); err != nil {
		t.Fatalf("first write: %v", err)
	}
	if err := WriteFileAtomic(path, []byte("second"), 0o600); err != nil {
		t.Fatalf("second write: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	if string(got) != "second" {
		t.Errorf("content %q, want %q — the old tail must not survive", got, "second")
	}
	for _, name := range listSnapFiles(t, dir) {
		if strings.Contains(name, ".tmp-") {
			t.Errorf("temp file %s leaked", name)
		}
	}
}
