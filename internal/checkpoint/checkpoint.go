package checkpoint

import (
	"fmt"
	"sort"

	"mafic/internal/baseline"
	"mafic/internal/core"
	"mafic/internal/metrics"
	"mafic/internal/netsim"
	"mafic/internal/pushback"
	"mafic/internal/sim"
	"mafic/internal/traffic"
	"mafic/internal/trafficmatrix"
)

// World is the bridge between the experiment run loop and the checkpoint
// layer: every live component of a built run, plus the build/run sequence
// boundary. The experiment package fills it in (avoiding an import cycle —
// this package knows the stateful engine packages, the experiment package
// knows this one).
type World struct {
	Sched       *sim.Scheduler
	RNG         *sim.RNG // the run's root stream; the fork registry hangs off it
	Net         *netsim.Network
	Workload    *traffic.Workload
	Monitor     *trafficmatrix.Monitor
	Coordinator *pushback.Coordinator
	Collector   *metrics.Collector
	// MAFIC and Baseline list the per-ingress defenders in ascending
	// ingress order; at most one of them is non-empty.
	MAFIC    []*core.Defender
	Baseline []*baseline.Dropper
	// BuildSeq is the scheduler sequence number recorded immediately after
	// the build completed, before the first RunUntil: events with a lower
	// sequence number were created by the deterministic rebuild, events at
	// or above it were scheduled at runtime and travel in the snapshot.
	BuildSeq uint64
	// Flags carries the run-level bookkeeping the activation callback has
	// written into the result so far.
	Flags RunFlags
}

// RunFlags is the run-level activation bookkeeping that lives in the result
// struct rather than in any engine component.
type RunFlags struct {
	Activated          bool
	ActivationSeconds  float64
	DetectedByPushback bool
	ATRCount           int64
}

// Event kinds. EvBuild marks a still-pending build-time event (the rebuild
// recreates it; the restore merely keeps it); every other kind is a
// runtime-scheduled event re-inserted explicitly. The runtime kinds form a
// closed set — Capture fails loudly on an unrecognised handler rather than
// silently dropping an event.
const (
	EvBuild uint8 = iota + 1
	EvLinkTx
	EvLinkArrive
	EvFlowSend
	EvFlowPhase
	EvFlowEnd
	EvMonitorTick
	EvMonitorLate
	EvProbeSend
	EvWindowEnd
)

// EventState is one pending event in a snapshot.
type EventState struct {
	At   sim.Time
	Seq  uint64
	Kind uint8
	// Index identifies the handler owner by kind: the link index (in
	// Network.ForEachLink order) for link events, the flow index (in
	// Workload.Flows order) for flow events, the defender index (ascending
	// ingress order) for probe-cycle events.
	Index uint32
	// Probe is the probe-record table index for EvProbeSend / EvWindowEnd;
	// the two events of one probe cycle share one record.
	Probe uint32
	// Packet is the in-flight payload of an EvLinkArrive event.
	Packet netsim.PacketState
	// Report is the owned payload of an EvMonitorLate delayed report.
	Report trafficmatrix.EpochReportState
}

// ProbeRec is one entry of the deduplicated probe-record table.
type ProbeRec struct {
	Def   uint32
	State core.ProbeRecordState
}

// StreamState is the position of one RNG stream.
type StreamState struct {
	Seed  int64
	Draws uint64
}

// NodeState is the per-node dynamic state, exactly one of Router/Host valid.
type NodeState struct {
	ID     netsim.NodeID
	Router bool
	R      netsim.RouterState
	H      netsim.HostState
}

// Defender kinds in a snapshot.
const (
	DefNone     uint8 = 0
	DefMAFIC    uint8 = 1
	DefBaseline uint8 = 2
)

// Snapshot is the decoded in-memory form of one checkpoint: the scenario
// (JSON, so a resume can rebuild the run from nothing but the snapshot file)
// plus every piece of dynamic state the rebuild does not reproduce.
type Snapshot struct {
	Scenario []byte

	BuildSeq  uint64
	Now       sim.Time
	NextSeq   uint64
	Processed uint64

	Streams []StreamState

	Events    []EventState
	ProbeRecs []ProbeRec

	Links   []netsim.LinkState
	Nodes   []NodeState
	Network netsim.NetworkState

	Monitor     trafficmatrix.MonitorState
	Coordinator pushback.CoordinatorState
	Collector   metrics.CollectorState

	DefKind   uint8
	Defenders []core.DefenderState
	Droppers  []baseline.DropperState

	Flows   []traffic.FlowState
	Victims []traffic.VictimServerState

	Flags RunFlags
}

// CheckpointTypes lists this package's own snapshot-carrying structs; the
// coverage guard watches them like every engine package's, so the wire format
// cannot silently drift from the in-memory snapshot layout.
var CheckpointTypes = []any{
	Snapshot{},
	EventState{},
	ProbeRec{},
	StreamState{},
	NodeState{},
	RunFlags{},
	World{},
}

// handlerRole classifies a scheduled handler identity during capture.
type handlerRole struct {
	kind  uint8 // the EvFlowSend/EvFlowPhase/... base kind, or EvLinkTx / EvMonitorTick for the dual-role owners
	index uint32
}

// Capture walks the live run and assembles a Snapshot. scenarioJSON is the
// serialized Scenario the resume path will rebuild from. The run must be
// paused at an event boundary (between RunUntil calls); Capture only reads.
func Capture(w *World, scenarioJSON []byte) (*Snapshot, error) {
	snap := &Snapshot{
		Scenario:  scenarioJSON,
		BuildSeq:  w.BuildSeq,
		Now:       w.Sched.Now(),
		NextSeq:   w.Sched.Seq(),
		Processed: w.Sched.Processed(),
		Flags:     w.Flags,
	}

	for i := 0; i < w.RNG.StreamCount(); i++ {
		seed, draws := w.RNG.StreamState(i)
		snap.Streams = append(snap.Streams, StreamState{Seed: seed, Draws: draws})
	}

	// Handler identity registry: every object runtime events can dispatch
	// through, keyed by the exact interface value the scheduler holds.
	handlers := make(map[any]handlerRole)
	links := make([]*netsim.Link, 0, w.Net.LinkTotal())
	w.Net.ForEachLink(func(l *netsim.Link) {
		handlers[l] = handlerRole{kind: EvLinkTx, index: uint32(len(links))}
		links = append(links, l)
	})
	for i, f := range w.Workload.Flows {
		if h := traffic.SendHandler(f); h != nil {
			handlers[h] = handlerRole{kind: EvFlowSend, index: uint32(i)}
		}
		if ph, eh := traffic.PhaseHandlers(f); ph != nil {
			handlers[ph] = handlerRole{kind: EvFlowPhase, index: uint32(i)}
			handlers[eh] = handlerRole{kind: EvFlowEnd, index: uint32(i)}
		}
	}
	if w.Monitor != nil {
		handlers[w.Monitor] = handlerRole{kind: EvMonitorTick}
	}
	for i, d := range w.MAFIC {
		ps, we := d.ProbeHandlers()
		handlers[ps] = handlerRole{kind: EvProbeSend, index: uint32(i)}
		handlers[we] = handlerRole{kind: EvWindowEnd, index: uint32(i)}
	}

	probeIdx := make(map[any]uint32)
	var captureErr error
	w.Sched.ForEachPending(func(ev sim.PendingEvent) {
		if captureErr != nil {
			return
		}
		if ev.Seq < w.BuildSeq {
			snap.Events = append(snap.Events, EventState{At: ev.At, Seq: ev.Seq, Kind: EvBuild})
			return
		}
		if ev.Closure {
			captureErr = fmt.Errorf("checkpoint: runtime event %d at %v dispatches a closure and cannot be captured", ev.Seq, ev.At)
			return
		}
		var key any = ev.H
		if key == nil {
			key = ev.ArgH
		}
		role, ok := handlers[key]
		if !ok {
			captureErr = fmt.Errorf("checkpoint: runtime event %d at %v has unrecognised handler %T", ev.Seq, ev.At, key)
			return
		}
		st := EventState{At: ev.At, Seq: ev.Seq, Kind: role.kind, Index: role.index}
		switch role.kind {
		case EvLinkTx:
			if ev.ArgH != nil {
				// The link's ArgHandler face: a propagated packet arriving.
				st.Kind = EvLinkArrive
				pkt, ok := ev.Arg.(*netsim.Packet)
				if !ok {
					captureErr = fmt.Errorf("checkpoint: link arrival event %d carries %T, not a packet", ev.Seq, ev.Arg)
					return
				}
				st.Packet = netsim.CapturePacket(pkt)
			}
		case EvMonitorTick:
			if ev.ArgH != nil {
				st.Kind = EvMonitorLate
				rep, err := w.Monitor.CaptureEpochReport(ev.Arg)
				if err != nil {
					captureErr = err
					return
				}
				st.Report = rep
			}
		case EvProbeSend, EvWindowEnd:
			idx, seen := probeIdx[ev.Arg]
			if !seen {
				rec, err := w.MAFIC[role.index].CaptureProbeRecord(ev.Arg)
				if err != nil {
					captureErr = err
					return
				}
				idx = uint32(len(snap.ProbeRecs))
				snap.ProbeRecs = append(snap.ProbeRecs, ProbeRec{Def: role.index, State: rec})
				probeIdx[ev.Arg] = idx
			}
			st.Probe = idx
		}
		snap.Events = append(snap.Events, st)
	})
	if captureErr != nil {
		return nil, captureErr
	}
	sort.Slice(snap.Events, func(i, j int) bool { return snap.Events[i].Seq < snap.Events[j].Seq })

	for _, l := range links {
		snap.Links = append(snap.Links, l.CheckpointState())
	}
	w.Net.ForEachNode(func(id netsim.NodeID, r *netsim.Router, h *netsim.Host) {
		ns := NodeState{ID: id}
		if r != nil {
			ns.Router = true
			ns.R = r.CheckpointState()
		} else {
			ns.H = h.CheckpointState()
		}
		snap.Nodes = append(snap.Nodes, ns)
	})
	snap.Network = w.Net.CheckpointState()

	if w.Monitor != nil {
		snap.Monitor = w.Monitor.CheckpointState()
	}
	if w.Coordinator != nil {
		snap.Coordinator = w.Coordinator.CheckpointState()
	}
	if w.Collector != nil {
		snap.Collector = w.Collector.CheckpointState()
	}

	switch {
	case len(w.MAFIC) > 0:
		snap.DefKind = DefMAFIC
		for _, d := range w.MAFIC {
			snap.Defenders = append(snap.Defenders, d.CheckpointState())
		}
	case len(w.Baseline) > 0:
		snap.DefKind = DefBaseline
		for _, d := range w.Baseline {
			snap.Droppers = append(snap.Droppers, d.CheckpointState())
		}
	}

	for _, f := range w.Workload.Flows {
		fs, err := traffic.CaptureFlowState(f)
		if err != nil {
			return nil, err
		}
		snap.Flows = append(snap.Flows, fs)
	}
	snap.Victims = append(snap.Victims, w.Workload.Victim.CheckpointState())
	for _, v := range w.Workload.ExtraServers {
		snap.Victims = append(snap.Victims, v.CheckpointState())
	}

	return snap, nil
}

// Restore overlays a snapshot onto a freshly rebuilt world. The rebuild must
// have followed the exact build path of the original run (same scenario, same
// RNG fork order, same build-time event sequence) — Restore verifies the
// build boundary and the RNG stream layout and fails loudly on divergence.
// After Restore returns, resuming the scheduler continues the simulation
// bit-identically to the uninterrupted run.
func Restore(w *World, snap *Snapshot) error {
	if w.BuildSeq != snap.BuildSeq {
		return fmt.Errorf("checkpoint: rebuild scheduled %d build events, snapshot recorded %d — the builds diverged",
			w.BuildSeq, snap.BuildSeq)
	}
	if got, want := w.RNG.StreamCount(), len(snap.Streams); got != want {
		return fmt.Errorf("checkpoint: rebuild created %d rng streams, snapshot recorded %d", got, want)
	}
	for i, st := range snap.Streams {
		if err := w.RNG.FastForwardStream(i, st.Seed, st.Draws); err != nil {
			return err
		}
	}

	links := make([]*netsim.Link, 0, w.Net.LinkTotal())
	w.Net.ForEachLink(func(l *netsim.Link) { links = append(links, l) })
	if len(links) != len(snap.Links) {
		return fmt.Errorf("checkpoint: rebuild has %d links, snapshot recorded %d", len(links), len(snap.Links))
	}
	for i, l := range links {
		l.RestoreState(snap.Links[i])
	}
	var nodeErr error
	nodeAt := 0
	w.Net.ForEachNode(func(id netsim.NodeID, r *netsim.Router, h *netsim.Host) {
		if nodeErr != nil {
			return
		}
		if nodeAt >= len(snap.Nodes) {
			nodeErr = fmt.Errorf("checkpoint: rebuild has more nodes than the snapshot's %d", len(snap.Nodes))
			return
		}
		ns := snap.Nodes[nodeAt]
		nodeAt++
		if ns.ID != id || ns.Router != (r != nil) {
			nodeErr = fmt.Errorf("checkpoint: node %d of the rebuild (%d, router=%v) does not match the snapshot (%d, router=%v)",
				nodeAt-1, id, r != nil, ns.ID, ns.Router)
			return
		}
		if r != nil {
			r.RestoreState(ns.R)
		} else {
			h.RestoreState(ns.H)
		}
	})
	if nodeErr != nil {
		return nodeErr
	}
	if nodeAt != len(snap.Nodes) {
		return fmt.Errorf("checkpoint: snapshot has %d nodes, rebuild has %d", len(snap.Nodes), nodeAt)
	}
	if err := w.Net.RestoreState(snap.Network); err != nil {
		return err
	}

	if w.Monitor != nil {
		if err := w.Monitor.RestoreState(snap.Monitor); err != nil {
			return err
		}
	}
	if w.Coordinator != nil {
		if err := w.Coordinator.RestoreState(snap.Coordinator); err != nil {
			return err
		}
	}
	if w.Collector != nil {
		if err := w.Collector.RestoreState(snap.Collector); err != nil {
			return err
		}
	}

	switch snap.DefKind {
	case DefMAFIC:
		if len(w.MAFIC) != len(snap.Defenders) {
			return fmt.Errorf("checkpoint: rebuild has %d MAFIC defenders, snapshot recorded %d",
				len(w.MAFIC), len(snap.Defenders))
		}
		for i, d := range w.MAFIC {
			if err := d.RestoreState(snap.Defenders[i]); err != nil {
				return err
			}
		}
	case DefBaseline:
		if len(w.Baseline) != len(snap.Droppers) {
			return fmt.Errorf("checkpoint: rebuild has %d baseline droppers, snapshot recorded %d",
				len(w.Baseline), len(snap.Droppers))
		}
		for i, d := range w.Baseline {
			d.RestoreState(snap.Droppers[i])
		}
	}

	if len(w.Workload.Flows) != len(snap.Flows) {
		return fmt.Errorf("checkpoint: rebuild has %d flows, snapshot recorded %d",
			len(w.Workload.Flows), len(snap.Flows))
	}
	for i, f := range w.Workload.Flows {
		if err := traffic.RestoreFlowState(f, snap.Flows[i]); err != nil {
			return err
		}
	}
	if want := 1 + len(w.Workload.ExtraServers); want != len(snap.Victims) {
		return fmt.Errorf("checkpoint: rebuild has %d victim servers, snapshot recorded %d", want, len(snap.Victims))
	}
	w.Workload.Victim.RestoreState(snap.Victims[0])
	for i, v := range w.Workload.ExtraServers {
		v.RestoreState(snap.Victims[1+i])
	}

	// Probe records are re-bound against the already-restored flow tables.
	probeRecs := make([]any, len(snap.ProbeRecs))
	for i, pr := range snap.ProbeRecs {
		if int(pr.Def) >= len(w.MAFIC) {
			return fmt.Errorf("checkpoint: probe record %d names defender %d of %d", i, pr.Def, len(w.MAFIC))
		}
		rec, err := w.MAFIC[pr.Def].RestoreProbeRecord(pr.State)
		if err != nil {
			return err
		}
		probeRecs[i] = rec
	}

	// Event reconciliation: cancel the rebuilt build-time events the
	// original run had already consumed, land the clock, then re-insert the
	// runtime events in sequence order.
	keep := make(map[uint64]bool, len(snap.Events))
	for _, ev := range snap.Events {
		if ev.Kind == EvBuild {
			keep[ev.Seq] = true
		}
	}
	w.Sched.ReconcilePending(snap.BuildSeq, func(seq uint64) bool { return keep[seq] })
	w.Sched.RestoreClock(snap.Now, snap.NextSeq, snap.Processed)

	for i := range snap.Events {
		ev := &snap.Events[i]
		if ev.Kind == EvBuild {
			continue
		}
		switch ev.Kind {
		case EvLinkTx, EvLinkArrive:
			if int(ev.Index) >= len(links) {
				return fmt.Errorf("checkpoint: event %d names link %d of %d", ev.Seq, ev.Index, len(links))
			}
			l := links[ev.Index]
			if ev.Kind == EvLinkTx {
				w.Sched.RestoreEvent(ev.At, ev.Seq, nil, nil, nil, l)
			} else {
				w.Sched.RestoreEvent(ev.At, ev.Seq, nil, l, w.Net.RestorePacket(ev.Packet), nil)
			}
		case EvFlowSend, EvFlowPhase, EvFlowEnd:
			if int(ev.Index) >= len(w.Workload.Flows) {
				return fmt.Errorf("checkpoint: event %d names flow %d of %d", ev.Seq, ev.Index, len(w.Workload.Flows))
			}
			f := w.Workload.Flows[ev.Index]
			switch ev.Kind {
			case EvFlowSend:
				h := traffic.SendHandler(f)
				traffic.SetSendEvent(f, w.Sched.RestoreEvent(ev.At, ev.Seq, nil, nil, nil, h))
			case EvFlowPhase:
				ph, _ := traffic.PhaseHandlers(f)
				if ph == nil {
					return fmt.Errorf("checkpoint: event %d schedules a phase on flow %d, which has none", ev.Seq, ev.Index)
				}
				traffic.SetPhaseEvent(f, w.Sched.RestoreEvent(ev.At, ev.Seq, nil, nil, nil, ph))
			default:
				_, eh := traffic.PhaseHandlers(f)
				if eh == nil {
					return fmt.Errorf("checkpoint: event %d schedules a phase end on flow %d, which has none", ev.Seq, ev.Index)
				}
				w.Sched.RestoreEvent(ev.At, ev.Seq, nil, nil, nil, eh)
			}
		case EvMonitorTick:
			w.Sched.RestoreEvent(ev.At, ev.Seq, nil, nil, nil, w.Monitor)
		case EvMonitorLate:
			w.Sched.RestoreEvent(ev.At, ev.Seq, nil, w.Monitor, w.Monitor.RestoreEpochReport(ev.Report), nil)
		case EvProbeSend, EvWindowEnd:
			if int(ev.Index) >= len(w.MAFIC) {
				return fmt.Errorf("checkpoint: event %d names defender %d of %d", ev.Seq, ev.Index, len(w.MAFIC))
			}
			if int(ev.Probe) >= len(probeRecs) {
				return fmt.Errorf("checkpoint: event %d names probe record %d of %d", ev.Seq, ev.Probe, len(probeRecs))
			}
			ps, we := w.MAFIC[ev.Index].ProbeHandlers()
			ah := ps
			if ev.Kind == EvWindowEnd {
				ah = we
			}
			w.Sched.RestoreEvent(ev.At, ev.Seq, nil, ah, probeRecs[ev.Probe], nil)
		default:
			return fmt.Errorf("checkpoint: unknown event kind %d", ev.Kind)
		}
	}
	w.Flags = snap.Flags
	return nil
}
