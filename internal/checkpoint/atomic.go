package checkpoint

import (
	"os"
	"path/filepath"
)

// WriteFileAtomic writes data to path so that a crash at any instant leaves
// either the old file or the complete new one — never a torn mixture. The
// data lands in a same-directory temp file first, is fsynced, and is then
// renamed over the target; finally the directory itself is synced so the
// rename survives a power loss. Every snapshot writer (the serve snapshot
// store, maficsim's -checkpoint flags, job manifests) goes through this
// helper.
func WriteFileAtomic(path string, data []byte, perm os.FileMode) error {
	dir := filepath.Dir(path)
	tmp, err := os.CreateTemp(dir, filepath.Base(path)+".tmp-*")
	if err != nil {
		return err
	}
	tmpName := tmp.Name()
	defer func() {
		if tmpName != "" {
			os.Remove(tmpName)
		}
	}()
	if _, err := tmp.Write(data); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Sync(); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Chmod(perm); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	if err := os.Rename(tmpName, path); err != nil {
		return err
	}
	tmpName = ""
	// Sync the directory so the rename is durable. Some filesystems reject
	// fsync on directories; the write itself is already atomic, so that is
	// tolerated rather than failed.
	if d, err := os.Open(dir); err == nil {
		_ = d.Sync()
		d.Close()
	}
	return nil
}
