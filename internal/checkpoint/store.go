package checkpoint

import (
	"errors"
	"fmt"
	"os"
	"path/filepath"
	"sort"
	"strconv"
	"strings"

	"mafic/internal/sim"
)

// ErrNoSnapshot is returned by LatestValid when a store holds no snapshot
// that decodes cleanly (including when it holds no snapshots at all).
var ErrNoSnapshot = errors.New("checkpoint: no valid snapshot in store")

// SnapInfo describes one snapshot file in a Store.
type SnapInfo struct {
	// Name is the file name within the store directory.
	Name string
	// Seq is the monotonically increasing write sequence; it keeps
	// ordering unambiguous even when two snapshots carry the same virtual
	// time (a drain snapshot taken right after a scheduled one does).
	Seq uint64
	// At is the simulation time the snapshot was taken at.
	At sim.Time
}

// Store is a rotated on-disk snapshot store for one long-running job: every
// Save writes a new snapshot file atomically (temp + fsync + rename) and the
// oldest files beyond the keep bound are deleted. Files are plain snapshot
// wire format, so any stored file can also be fed to `maficsim -resume`.
//
// A Store is owned by a single job runner at a time; it is not safe for
// concurrent use.
type Store struct {
	dir     string
	keep    int
	snaps   []SnapInfo // ascending by Seq
	nextSeq uint64
}

const snapSuffix = ".snap"

func snapFileName(seq uint64, at sim.Time) string {
	return fmt.Sprintf("%08d-%d%s", seq, int64(at), snapSuffix)
}

// parseSnapName inverts snapFileName; ok is false for any other file.
func parseSnapName(name string) (SnapInfo, bool) {
	base, found := strings.CutSuffix(name, snapSuffix)
	if !found {
		return SnapInfo{}, false
	}
	seqStr, atStr, found := strings.Cut(base, "-")
	if !found {
		return SnapInfo{}, false
	}
	seq, err := strconv.ParseUint(seqStr, 10, 64)
	if err != nil {
		return SnapInfo{}, false
	}
	at, err := strconv.ParseInt(atStr, 10, 64)
	if err != nil || at < 0 {
		return SnapInfo{}, false
	}
	return SnapInfo{Name: name, Seq: seq, At: sim.Time(at)}, true
}

// OpenStore opens (creating if needed) the snapshot store rooted at dir,
// keeping at most keep snapshots per rotation (values below 1 are treated as
// 1). Leftover temp files from an interrupted atomic write are removed;
// snapshot files are indexed by name only — corruption is detected lazily by
// LatestValid, so opening a store over damaged files never fails.
func OpenStore(dir string, keep int) (*Store, error) {
	if keep < 1 {
		keep = 1
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("open snapshot store: %w", err)
	}
	st := &Store{dir: dir, keep: keep, nextSeq: 1}
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, fmt.Errorf("open snapshot store: %w", err)
	}
	for _, e := range entries {
		if e.IsDir() {
			continue
		}
		name := e.Name()
		if strings.Contains(name, ".tmp-") {
			// A crash mid-WriteFileAtomic leaves only the temp file; the
			// real snapshot set is untouched, so the leftover is garbage.
			os.Remove(filepath.Join(dir, name))
			continue
		}
		info, ok := parseSnapName(name)
		if !ok {
			continue
		}
		st.snaps = append(st.snaps, info)
		if info.Seq >= st.nextSeq {
			st.nextSeq = info.Seq + 1
		}
	}
	sort.Slice(st.snaps, func(i, j int) bool { return st.snaps[i].Seq < st.snaps[j].Seq })
	return st, nil
}

// Dir returns the store's root directory.
func (st *Store) Dir() string { return st.dir }

// Count returns the number of snapshot files currently tracked.
func (st *Store) Count() int { return len(st.snaps) }

// Snapshots returns the tracked snapshots in ascending write order.
func (st *Store) Snapshots() []SnapInfo {
	return append([]SnapInfo(nil), st.snaps...)
}

// Save writes one snapshot atomically and rotates out the oldest files
// beyond the keep bound. A crash during Save can never damage an existing
// snapshot: the new file appears only via rename, and rotation deletes old
// files only after the new one is durable.
func (st *Store) Save(at sim.Time, data []byte) error {
	info := SnapInfo{Seq: st.nextSeq, At: at}
	info.Name = snapFileName(info.Seq, at)
	if err := WriteFileAtomic(filepath.Join(st.dir, info.Name), data, 0o644); err != nil {
		return fmt.Errorf("save snapshot: %w", err)
	}
	st.nextSeq++
	st.snaps = append(st.snaps, info)
	for len(st.snaps) > st.keep {
		old := st.snaps[0]
		st.snaps = append(st.snaps[:0], st.snaps[1:]...)
		if err := os.Remove(filepath.Join(st.dir, old.Name)); err != nil && !os.IsNotExist(err) {
			return fmt.Errorf("rotate snapshot store: %w", err)
		}
	}
	return nil
}

// Load reads the raw bytes of one tracked snapshot.
func (st *Store) Load(info SnapInfo) ([]byte, error) {
	return os.ReadFile(filepath.Join(st.dir, info.Name))
}

// Remove deletes one tracked snapshot, typically after it failed to restore
// and recovery wants the next LatestValid call to fall back past it.
func (st *Store) Remove(info SnapInfo) error {
	for i := range st.snaps {
		if st.snaps[i].Seq == info.Seq {
			st.snaps = append(st.snaps[:i], st.snaps[i+1:]...)
			break
		}
	}
	if err := os.Remove(filepath.Join(st.dir, info.Name)); err != nil && !os.IsNotExist(err) {
		return err
	}
	return nil
}

// Clear deletes every tracked snapshot (a completed job has no further use
// for them). The write sequence keeps counting up, so names never collide.
func (st *Store) Clear() error {
	var firstErr error
	for _, info := range st.snaps {
		if err := os.Remove(filepath.Join(st.dir, info.Name)); err != nil && !os.IsNotExist(err) && firstErr == nil {
			firstErr = err
		}
	}
	st.snaps = st.snaps[:0]
	return firstErr
}

// LatestValid returns the newest snapshot that decodes cleanly, walking
// backwards past unreadable or corrupt files. The skipped list names every
// newer snapshot that was rejected (a torn write that slipped past the
// atomic-rename discipline, a bit flip, a truncation) so callers can log the
// fallback loudly. When nothing validates it returns ErrNoSnapshot; the
// skipped list is still populated.
func (st *Store) LatestValid() (data []byte, info SnapInfo, skipped []SnapInfo, err error) {
	for i := len(st.snaps) - 1; i >= 0; i-- {
		in := st.snaps[i]
		b, rerr := os.ReadFile(filepath.Join(st.dir, in.Name))
		if rerr == nil {
			if _, derr := Decode(b); derr == nil {
				return b, in, skipped, nil
			}
		}
		skipped = append(skipped, in)
	}
	return nil, SnapInfo{}, skipped, ErrNoSnapshot
}
