package checkpoint

import (
	"fmt"
	"reflect"
	"sort"
	"strings"
	"testing"

	"mafic/internal/baseline"
	"mafic/internal/core"
	"mafic/internal/flowtable"
	"mafic/internal/loglog"
	"mafic/internal/metrics"
	"mafic/internal/netsim"
	"mafic/internal/pushback"
	"mafic/internal/sim"
	"mafic/internal/topology"
	"mafic/internal/traffic"
	"mafic/internal/trafficmatrix"
)

// manifestVersion pins the wire-format version this manifest was written
// against. Changing any snapshotted struct forces an edit here, and the guard
// requires the two versions to move together: you cannot grow a watched
// struct without consciously deciding whether the snapshot layout changed.
const manifestVersion uint32 = 1

// watchedPackages collects every package's checkpoint-watched types.
var watchedPackages = []struct {
	name  string
	types []any
}{
	{"sim", sim.CheckpointTypes},
	{"netsim", netsim.CheckpointTypes},
	{"loglog", loglog.CheckpointTypes},
	{"flowtable", flowtable.CheckpointTypes},
	{"core", core.CheckpointTypes},
	{"trafficmatrix", trafficmatrix.CheckpointTypes},
	{"pushback", pushback.CheckpointTypes},
	{"metrics", metrics.CheckpointTypes},
	{"traffic", traffic.CheckpointTypes},
	{"baseline", baseline.CheckpointTypes},
	{"topology", topology.CheckpointTypes},
	{"checkpoint", CheckpointTypes},
}

// fieldManifest pins the exact field list of every watched struct. A field
// added, removed or renamed anywhere in the live-state surface fails the
// guard until this manifest — and, when the snapshot layout is affected,
// SnapshotVersion — is updated deliberately. The test failure message prints
// the corrected entry to paste here.
var fieldManifest = map[string][]string{
	"baseline.Dropper":          {"active", "observer", "probability", "rng", "router", "stats", "victimIP"},
	"baseline.Stats":            {"Dropped", "Examined", "Forwarded"},
	"checkpoint.EventState":     {"At", "Index", "Kind", "Packet", "Probe", "Report", "Seq"},
	"checkpoint.NodeState":      {"H", "ID", "R", "Router"},
	"checkpoint.ProbeRec":       {"Def", "State"},
	"checkpoint.RunFlags":       {"ATRCount", "Activated", "ActivationSeconds", "DetectedByPushback"},
	"checkpoint.Snapshot":       {"BuildSeq", "Collector", "Coordinator", "DefKind", "Defenders", "Droppers", "Events", "Flags", "Flows", "Links", "Monitor", "Network", "NextSeq", "Nodes", "Now", "ProbeRecs", "Processed", "Scenario", "Streams", "Victims"},
	"checkpoint.StreamState":    {"Draws", "Seed"},
	"checkpoint.World":          {"Baseline", "BuildSeq", "Collector", "Coordinator", "Flags", "MAFIC", "Monitor", "Net", "RNG", "Sched", "Workload"},
	"core.Defender":             {"active", "cfg", "observer", "probeChunks", "probeFree", "probeMemory", "probeSend", "probeSeqs", "rng", "router", "stats", "tables", "victimIP", "windowEnd"},
	"core.Stats":                {"Dropped", "DroppedIllegal", "DroppedPDT", "DroppedProbing", "Examined", "FlowsCondemned", "FlowsIllegal", "FlowsNice", "FlowsProbed", "FlowsRepeatCondemned", "FlowsReprobed", "Forwarded", "ProbesSent"},
	"core.probeRecord":          {"entry", "gen", "label", "next", "proto", "seq"},
	"flowtable.Entry":           {"BaselineCount", "Dropped", "FirstSeen", "Gen", "LabelHash", "LastSeen", "Packets", "ProbeDeadline", "ProbeStart", "ResponseCount", "State"},
	"flowtable.Tables":          {"capacity", "evictions", "free", "nft", "pdt", "sft", "slab", "transitions"},
	"loglog.Pair":               {"active", "shadow"},
	"loglog.Sketch":             {"adds", "buckets", "m", "p"},
	"metrics.BandwidthPoint":    {"AttackPackets", "Bytes", "LegitPackets", "Time"},
	"metrics.Collector":         {"activated", "activationAt", "atrAttackPost", "atrAttackPre", "atrLegitPost", "atrLegitPre", "binWidth", "bins", "dropAttack", "dropAttackPDT", "dropLegitIllegal", "dropLegitPDT", "dropLegitProbing", "faultDrops", "queueDrops", "tap", "victimAttackPost", "victimAttackPre", "victimLegitPost", "victimLegitPre"},
	"metrics.Counts":            {"ATRAttackPost", "ATRAttackPre", "ATRLegitPost", "ATRLegitPre", "DropAttack", "DropAttackPDT", "DropLegitIllegal", "DropLegitPDT", "DropLegitProbing", "FaultDrops", "QueueDrops", "VictimAttack", "VictimAttackPre", "VictimLegit", "VictimLegitPre"},
	"netsim.Host":               {"accessRouter", "defaultHandler", "homeCount", "homeLinks", "homeRouters", "id", "ips", "nHandlers", "name", "net", "received", "sent"},
	"netsim.Link":               {"cfg", "down", "dropped", "faultDrops", "from", "net", "nextFree", "queued", "sent", "to"},
	"netsim.Network":            {"adj", "adjEntrySlab", "adjMode", "adjSlab", "colEntries", "colsMaterialized", "downLinks", "downRouters", "faultDrops", "filterSlab", "handlers", "hooks", "hostSlab", "hostUsed", "hosts", "ipOwner", "ipSlab", "linkSlab", "linkUsed", "links", "nextNodeID", "nextPktID", "nodes", "pktFree", "resolver", "rng", "routeCols", "routeSlab", "routerSlab", "routerUsed", "routers", "scheduler", "sizeHint", "sparse", "topoVersion"},
	"netsim.Packet":             {"FlowID", "Hops", "ID", "Kind", "Label", "Malicious", "Proto", "SentAt", "Seq", "Size", "dstNode", "dstNodeOK", "flowHash", "freed", "hashOK", "pooled"},
	"netsim.Router":             {"down", "dropped", "faultDrops", "filters", "forwarded", "id", "name", "net", "routeCount", "routes"},
	"pushback.ATR":              {"Packets", "Router", "Share"},
	"pushback.Coordinator":      {"active", "activeVictim", "atrScore", "calmEpochs", "cellScratch", "cfg", "eligible", "history", "historyAlpha", "historyOK", "historySeen", "identified", "identifiedATR", "lastEpoch", "lastFireEpoch", "onPushback", "onWithdraw", "pendingRefire", "requestsFired", "shareScratch", "triggerLoad"},
	"pushback.Request":          {"ATRs", "Epoch", "VictimLoad", "VictimRouter"},
	"sim.RNG":                   {"cs", "r", "reg"},
	"sim.Scheduler":             {"backend", "cal", "events", "freeHead", "heap", "now", "processed", "seq", "stopped"},
	"sim.countingSource":        {"draws", "seed", "src"},
	"sim.event":                 {"ah", "arg", "at", "fn", "gen", "h", "nextFree", "seq", "state"},
	"topology.Arena":            {"bystanders", "clients", "extraVictims", "ingress", "ingressOf", "lazy", "names", "route", "routers", "victimHomes", "zombies"},
	"topology.Domain":           {"Bystanders", "Clients", "ExtraVictims", "Ingress", "LastHop", "Net", "Routers", "Victim", "VictimHomes", "Zombies", "ingressOf"},
	"topology.lazyRouter":       {"carved", "colFree", "handed", "net", "rs", "seenVersion", "width"},
	"topology.nameCache":        {"bystanders", "clients", "routers", "victims", "zombies"},
	"topology.routeScratch":     {"offsets", "parents", "queue", "routerList", "targets"},
	"traffic.AttackSource":      {"cbr"},
	"traffic.CBRSource":         {"cfg", "host", "id", "label", "labelHash", "malicious", "net", "proto", "rng", "running", "sendEvent", "sent", "seq"},
	"traffic.PulsingSource":     {"bursts", "cfg", "end", "host", "id", "inBurst", "label", "labelHash", "net", "phase", "phaseEvent", "rng", "running", "sendEvent", "sent", "seq"},
	"traffic.RotatingSource":    {"cfg", "end", "host", "id", "inSlot", "label", "labelHash", "net", "phase", "phaseEvent", "rng", "running", "sendEvent", "sent", "seq", "slots"},
	"traffic.TCPSource":         {"acked", "cfg", "cwnd", "dupAcks", "fastRetx", "host", "id", "label", "labelHash", "lastAckAt", "lastAcked", "net", "packetSize", "probeSeen", "reverseFn", "running", "sendEvent", "sent", "seq", "ssthresh", "timeouts"},
	"traffic.VictimServer":      {"ackSize", "acksGenerated", "host", "net", "received", "receivedBad", "receivedGood"},
	"traffic.Workload":          {"Attack", "ExtraServers", "Flash", "Flows", "Legitimate", "Victim"},
	"traffic.pulseEnd":          {"s"},
	"traffic.pulsePhase":        {"s"},
	"traffic.rotateEnd":         {"s"},
	"traffic.rotatePhase":       {"s"},
	"trafficmatrix.Cell":        {"Dest", "Packets", "Source"},
	"trafficmatrix.Counter":     {"buckets", "dest", "destPkts", "router", "source", "sourcePkts", "transit"},
	"trafficmatrix.EpochReport": {"DestEst", "End", "Epoch", "Matrix", "Routers", "SourceEst", "Start"},
	"trafficmatrix.Monitor":     {"buckets", "counterSlab", "counters", "ctrlRNG", "delayProb", "dstEst", "epoch", "epochIndex", "epochStart", "fresh", "matrix", "nbScratch", "onReport", "reportDelay", "reportLoss", "routerIDs", "running", "sched", "scratch", "sketchSlab", "srcEst", "stop"},
}

// TestStateCoverageGuard fails whenever a watched struct's field set drifts
// from the pinned manifest, forcing every new piece of live state through an
// explicit decision: serialize it, prove it rebuild-covered, or exempt it.
func TestStateCoverageGuard(t *testing.T) {
	if manifestVersion != SnapshotVersion {
		t.Fatalf("manifest written for snapshot version %d, code is at %d — re-audit the manifest after a format change",
			manifestVersion, SnapshotVersion)
	}
	seen := make(map[string]bool)
	for _, p := range watchedPackages {
		if len(p.types) == 0 {
			t.Errorf("package %s registers no checkpoint types", p.name)
		}
		for _, v := range p.types {
			rt := reflect.TypeOf(v)
			if rt.Kind() != reflect.Struct {
				t.Errorf("%s: CheckpointTypes entry %v is not a struct", p.name, rt)
				continue
			}
			key := p.name + "." + rt.Name()
			if seen[key] {
				t.Errorf("duplicate watched type %s", key)
				continue
			}
			seen[key] = true
			got := make([]string, 0, rt.NumField())
			for i := 0; i < rt.NumField(); i++ {
				got = append(got, rt.Field(i).Name)
			}
			sort.Strings(got)
			want, ok := fieldManifest[key]
			if !ok {
				t.Errorf("unpinned type %s — decide snapshot coverage for every field, bump SnapshotVersion if the wire format changed, then add:\n\t%s",
					key, manifestEntry(key, got))
				continue
			}
			want = append([]string(nil), want...)
			sort.Strings(want)
			if !reflect.DeepEqual(got, want) {
				t.Errorf("fields of %s drifted from the manifest.\n  pinned: %v\n  actual: %v\nDecide snapshot coverage for the changed fields, bump SnapshotVersion if the wire format changed, then update the entry to:\n\t%s",
					key, want, got, manifestEntry(key, got))
			}
		}
	}
	for key := range fieldManifest {
		if !seen[key] {
			t.Errorf("manifest pins %s but no package registers it — remove the stale entry", key)
		}
	}
}

func manifestEntry(key string, fields []string) string {
	quoted := make([]string, len(fields))
	for i, f := range fields {
		quoted[i] = fmt.Sprintf("%q", f)
	}
	return fmt.Sprintf("%q: {%s},", key, strings.Join(quoted, ", "))
}
