// Package checkpoint serializes the live state of a running simulation into
// a self-describing binary snapshot and restores it into a freshly built
// world, such that the resumed run is bit-identical to one that was never
// interrupted.
//
// # Design: deterministic rebuild + dynamic-state overlay
//
// A snapshot does not try to serialize every object graph edge. The engine is
// deliberately deterministic — a Scenario's seed fully determines its outcome
// — so the restore path first *rebuilds* the scenario through the exact same
// construction path as the original run (same topology, same RNG fork order,
// same build-time event sequence numbers), then *overlays* the dynamic state
// the snapshot captured: clocks, counters, flow tables, sketches, pushback
// hysteresis, in-flight packets and the pending event queue. Rebuilding
// reproduces every pointer topology for free; the overlay only carries plain
// values.
//
// Pending events are the delicate part. Events scheduled during construction
// ("build events", sequence numbers below World.BuildSeq) are recreated by
// the rebuild itself; the restore cancels the ones the original run had
// already consumed (sim.Scheduler.ReconcilePending) and leaves the rest.
// Events scheduled while the simulation was running ("runtime events") are
// captured by classifying their handlers against a closed registry — link
// transmit/arrive, flow send/phase/end, monitor ticks, probe timers — and
// re-inserted with their original timestamps and sequence numbers
// (sim.Scheduler.RestoreEvent) against the rebuilt objects. An event whose
// handler cannot be classified fails the capture loudly rather than
// producing a snapshot that cannot resume.
//
// RNG streams are restored by fast-forward: the rebuild recreates every
// stream with its original seed (verified), then each stream replays draws
// until it reaches the checkpointed draw count (sim.RNG.FastForwardStream).
//
// # Wire format
//
// A snapshot is a little-endian byte stream: the magic "MAFICSNP", a u32
// SnapshotVersion, then a sequence of sections, each (kind u8 | length u32 |
// payload). Every section appears exactly once; unknown or duplicate
// sections, truncations and trailing bytes are decode errors. The scenario
// itself travels as a JSON blob inside the snapshot, so a snapshot file is
// fully self-describing: Decode + the experiment package's rebuild are all
// that is needed to resume. Encode(Decode(b)) is byte-identical, pinned by
// test, so snapshot files can be copied and inspected without drift.
//
// # Coverage guard
//
// Every stateful engine package exports a CheckpointTypes list, and the
// guard test in this package reflects over each listed struct's fields
// against a pinned manifest. Adding a field anywhere in the live-state
// surface fails the guard until the manifest — and, when the wire format is
// affected, SnapshotVersion — is updated deliberately. New state cannot
// silently miss the snapshot.
//
// The experiment package owns the harness entry points: RunWithCheckpoints
// pauses a run at requested virtual times and hands each encoded snapshot to
// a save callback; RunFromSnapshot decodes, rebuilds, overlays and runs to
// completion.
package checkpoint
