package checkpoint

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"mafic/internal/sim"
)

// The snapshot wire format is a self-describing sectioned binary layout:
//
//	magic "MAFICSNP" | version u32 | section*
//	section := kind u8 | length u32 | payload
//
// Every multi-byte integer is little-endian; floats travel as their IEEE-754
// bit patterns. The decoder is deliberately paranoid — every length is
// checked against the remaining bytes before it is trusted, and slice
// preallocation is bounded by what the payload could possibly hold — so
// truncated, bit-flipped or adversarial inputs fail with a clean error
// instead of panicking or allocating unboundedly. The fuzz target in the
// experiment package drives exactly that property.

// Magic and version of the snapshot format.
var snapshotMagic = [8]byte{'M', 'A', 'F', 'I', 'C', 'S', 'N', 'P'}

// SnapshotVersion is the current wire-format version. Bump it whenever a
// section's layout changes; the coverage guard test forces a bump whenever a
// snapshotted struct grows a field.
const SnapshotVersion uint32 = 1

// ErrCorrupt is wrapped by every decode error.
var ErrCorrupt = errors.New("checkpoint: corrupt snapshot")

// Section kinds.
const (
	secScenario    uint8 = 1
	secClock       uint8 = 2
	secRNG         uint8 = 3
	secEvents      uint8 = 4
	secProbeRecs   uint8 = 5
	secLinks       uint8 = 6
	secNodes       uint8 = 7
	secNetwork     uint8 = 8
	secMonitor     uint8 = 9
	secCoordinator uint8 = 10
	secCollector   uint8 = 11
	secDefenders   uint8 = 12
	secFlows       uint8 = 13
	secVictims     uint8 = 14
	secFlags       uint8 = 15
)

// writer accumulates the encoded snapshot.
type writer struct {
	b []byte
}

func (w *writer) u8(v uint8)    { w.b = append(w.b, v) }
func (w *writer) boolean(v bool) {
	if v {
		w.u8(1)
	} else {
		w.u8(0)
	}
}
func (w *writer) u16(v uint16) { w.b = binary.LittleEndian.AppendUint16(w.b, v) }
func (w *writer) u32(v uint32) { w.b = binary.LittleEndian.AppendUint32(w.b, v) }
func (w *writer) u64(v uint64) { w.b = binary.LittleEndian.AppendUint64(w.b, v) }
func (w *writer) i64(v int64)  { w.u64(uint64(v)) }
func (w *writer) f64(v float64) {
	w.u64(math.Float64bits(v))
}
func (w *writer) time(v sim.Time) { w.i64(int64(v)) }
func (w *writer) bytes(v []byte) {
	w.u32(uint32(len(v)))
	w.b = append(w.b, v...)
}

// section writes a completed section: the payload built by fn, prefixed with
// its kind and length.
func (w *writer) section(kind uint8, fn func(*writer)) {
	w.u8(kind)
	lenAt := len(w.b)
	w.u32(0) // patched below
	fn(w)
	binary.LittleEndian.PutUint32(w.b[lenAt:], uint32(len(w.b)-lenAt-4))
}

// reader consumes an encoded snapshot with a sticky error: after the first
// failure every further read returns zero values, so decode paths need no
// per-read error plumbing.
type reader struct {
	b   []byte
	off int
	err error
}

func (r *reader) fail(format string, args ...any) {
	if r.err == nil {
		r.err = fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
	}
}

func (r *reader) remaining() int { return len(r.b) - r.off }

func (r *reader) take(n int) []byte {
	if r.err != nil {
		return nil
	}
	if n < 0 || n > r.remaining() {
		r.fail("need %d bytes at offset %d, have %d", n, r.off, r.remaining())
		return nil
	}
	out := r.b[r.off : r.off+n]
	r.off += n
	return out
}

func (r *reader) u8() uint8 {
	b := r.take(1)
	if b == nil {
		return 0
	}
	return b[0]
}

func (r *reader) boolean() bool { return r.u8() != 0 }

func (r *reader) u16() uint16 {
	b := r.take(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

func (r *reader) u32() uint32 {
	b := r.take(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

func (r *reader) u64() uint64 {
	b := r.take(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

func (r *reader) i64() int64      { return int64(r.u64()) }
func (r *reader) f64() float64    { return math.Float64frombits(r.u64()) }
func (r *reader) time() sim.Time  { return sim.Time(r.i64()) }

func (r *reader) bytes() []byte {
	n := int(r.u32())
	b := r.take(n)
	if b == nil {
		return nil
	}
	return append([]byte(nil), b...)
}

// count reads a u32 element count and verifies the payload could actually
// hold that many elements of at least minElemSize bytes, bounding any
// preallocation by the real input size.
func (r *reader) count(minElemSize int) int {
	n := int(r.u32())
	if r.err != nil {
		return 0
	}
	if n < 0 || (minElemSize > 0 && n > r.remaining()/minElemSize) {
		r.fail("element count %d exceeds remaining %d bytes", n, r.remaining())
		return 0
	}
	return n
}
