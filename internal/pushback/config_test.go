package pushback

import (
	"errors"
	"testing"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	if err := (Config{}).Validate(); err != nil {
		t.Fatalf("zero config must be valid (all defaults): %v", err)
	}
	if err := HardenedConfig().Validate(); err != nil {
		t.Fatalf("hardened config invalid: %v", err)
	}
	tests := []struct {
		name   string
		mutate func(*Config)
	}{
		{"negative absolute threshold", func(c *Config) { c.AbsoluteThreshold = -1 }},
		{"negative relative factor", func(c *Config) { c.RelativeFactor = -0.5 }},
		{"negative history factor", func(c *Config) { c.HistoryFactor = -2 }},
		{"negative history epochs", func(c *Config) { c.MinHistoryEpochs = -1 }},
		{"negative min victim load", func(c *Config) { c.MinVictimLoad = -10 }},
		{"ATR share above one", func(c *Config) { c.ATRShare = 1.5 }},
		{"negative ATR share", func(c *Config) { c.ATRShare = -0.1 }},
		{"negative max ATRs", func(c *Config) { c.MaxATRs = -1 }},
		{"withdraw factor above one", func(c *Config) { c.WithdrawFactor = 2 }},
		{"negative withdraw epochs", func(c *Config) { c.WithdrawEpochs = -1 }},
		{"negative ATR rise", func(c *Config) { c.ATRRise = -0.1 }},
		{"ATR rise above one", func(c *Config) { c.ATRRise = 1.5 }},
		{"negative ATR decay", func(c *Config) { c.ATRDecay = -0.1 }},
		{"ATR decay above one", func(c *Config) { c.ATRDecay = 1.1 }},
		{"negative stale epochs", func(c *Config) { c.StaleEpochs = -1 }},
		{"negative refire backoff", func(c *Config) { c.RefireBackoffEpochs = -2 }},
	}
	for _, tt := range tests {
		t.Run(tt.name, func(t *testing.T) {
			cfg := DefaultConfig()
			tt.mutate(&cfg)
			if err := cfg.Validate(); !errors.Is(err, ErrConfig) {
				t.Fatalf("want ErrConfig, got %v", err)
			}
		})
	}
}
