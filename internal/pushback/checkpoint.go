package pushback

import (
	"fmt"

	"mafic/internal/netsim"
)

// CoordinatorState is the coordinator's dynamic state: the learned |D_j|
// baselines, the ATR hysteresis tables and the pushback activation record.
// Config, callbacks and the eligibility map are rebuild-covered; cellScratch
// and shareScratch are per-epoch scratch whose content is dead between
// epochs (shareScratch only needs its length to track atrScore).
type CoordinatorState struct {
	History       []float64
	HistoryOK     []bool
	HistorySeen   int64
	ATRScore      []float64
	IdentifiedATR []bool
	Identified    int64
	Active        bool
	ActiveVictim  netsim.NodeID
	TriggerLoad   float64
	CalmEpochs    int64
	RequestsFired int64
	LastEpoch     int64
	LastFireEpoch int64
	PendingRefire bool
}

// CheckpointState captures the coordinator's dynamic state.
func (c *Coordinator) CheckpointState() CoordinatorState {
	return CoordinatorState{
		History:       append([]float64(nil), c.history...),
		HistoryOK:     append([]bool(nil), c.historyOK...),
		HistorySeen:   int64(c.historySeen),
		ATRScore:      append([]float64(nil), c.atrScore...),
		IdentifiedATR: append([]bool(nil), c.identifiedATR...),
		Identified:    int64(c.identified),
		Active:        c.active,
		ActiveVictim:  c.activeVictim,
		TriggerLoad:   c.triggerLoad,
		CalmEpochs:    int64(c.calmEpochs),
		RequestsFired: int64(c.requestsFired),
		LastEpoch:     int64(c.lastEpoch),
		LastFireEpoch: int64(c.lastFireEpoch),
		PendingRefire: c.pendingRefire,
	}
}

// RestoreState overlays captured dynamic state onto a rebuilt coordinator.
// The dense tables keep their pooled backing (append into the truncated
// slices), preserving the zero-alloc discipline across a restore.
func (c *Coordinator) RestoreState(st CoordinatorState) error {
	if len(st.History) != len(st.HistoryOK) {
		return fmt.Errorf("pushback: restore history tables disagree: %d loads, %d flags",
			len(st.History), len(st.HistoryOK))
	}
	if len(st.ATRScore) != len(st.IdentifiedATR) {
		return fmt.Errorf("pushback: restore hysteresis tables disagree: %d scores, %d flags",
			len(st.ATRScore), len(st.IdentifiedATR))
	}
	c.history = append(c.history[:0], st.History...)
	c.historyOK = append(c.historyOK[:0], st.HistoryOK...)
	c.historySeen = int(st.HistorySeen)
	c.atrScore = append(c.atrScore[:0], st.ATRScore...)
	c.identifiedATR = append(c.identifiedATR[:0], st.IdentifiedATR...)
	c.shareScratch = c.shareScratch[:0]
	for range st.ATRScore {
		c.shareScratch = append(c.shareScratch, 0)
	}
	c.identified = int(st.Identified)
	c.active = st.Active
	c.activeVictim = st.ActiveVictim
	c.triggerLoad = st.TriggerLoad
	c.calmEpochs = int(st.CalmEpochs)
	c.requestsFired = int(st.RequestsFired)
	c.lastEpoch = int(st.LastEpoch)
	c.lastFireEpoch = int(st.LastFireEpoch)
	c.pendingRefire = st.PendingRefire
	return nil
}

// CheckpointTypes lists this package's structs that carry snapshotted state.
var CheckpointTypes = []any{
	Coordinator{},
	ATR{},
	Request{},
}
