package pushback

import (
	"math"
	"testing"

	"mafic/internal/netsim"
	"mafic/internal/trafficmatrix"
)

// TestGapDecayMatchesQuietEpochs pins the dark-epoch semantics: a coordinator
// that misses k reports must end up with the same hysteresis scores as one
// that received k explicit quiet epochs — the scores decay through the
// outage, they do not freeze at their pre-outage values.
func TestGapDecayMatchesQuietEpochs(t *testing.T) {
	cfg := Config{
		AbsoluteThreshold: 10, MinVictimLoad: 1, ATRShare: 0.1,
		ATRRise: 0.5, ATRDecay: 0.85, DisableWithdraw: true,
	}
	trigger := report(1, map[netsim.NodeID]float64{1: 100},
		[]trafficmatrix.Cell{{Source: 2, Dest: 1, Packets: 50}})
	quiet := func(epoch int) trafficmatrix.EpochReport {
		return report(epoch, map[netsim.NodeID]float64{1: 100}, nil)
	}

	steady := NewCoordinator(cfg, nil, nil)
	steady.HandleReport(trigger)
	for e := 2; e <= 5; e++ {
		steady.HandleReport(quiet(e))
	}

	gapped := NewCoordinator(cfg, nil, nil)
	gapped.HandleReport(trigger)
	gapped.HandleReport(quiet(5)) // epochs 2-4 lost

	if !steady.Active() || !gapped.Active() {
		t.Fatalf("setup: both coordinators must be active (steady=%v gapped=%v)", steady.Active(), gapped.Active())
	}
	s, g := steady.atrScore[2], gapped.atrScore[2]
	if s <= 0 || g <= 0 {
		t.Fatalf("scores vanished (steady=%v gapped=%v)", s, g)
	}
	if math.Abs(s-g) > 1e-12 {
		t.Fatalf("gap decay diverges from quiet epochs: steady=%v gapped=%v", s, g)
	}
	// Identification stays sticky through the outage: decayed, not dropped.
	if gapped.IdentifiedATRs() != 1 {
		t.Fatalf("identified set = %d after outage, want 1 (sticky)", gapped.IdentifiedATRs())
	}
}

// TestStaleGapResetsBaselines verifies the staleness timeout: after an outage
// of at least StaleEpochs missing reports, the learned |D_j| baselines are
// discarded, so the first post-outage report cannot be judged against a world
// that no longer exists.
func TestStaleGapResetsBaselines(t *testing.T) {
	base := Config{HistoryFactor: 1.5, MinHistoryEpochs: 2, MinVictimLoad: 1, ATRShare: 0}
	calm := func(epoch int) trafficmatrix.EpochReport {
		return report(epoch, map[netsim.NodeID]float64{1: 100}, nil)
	}
	hot := func(epoch int) trafficmatrix.EpochReport {
		return report(epoch, map[netsim.NodeID]float64{1: 600},
			[]trafficmatrix.Cell{{Source: 2, Dest: 1, Packets: 500}})
	}

	// Control: baselines survive the gap, so the post-outage spike fires
	// against the pre-outage baseline.
	control := NewCoordinator(base, nil, nil)
	for e := 1; e <= 3; e++ {
		control.HandleReport(calm(e))
	}
	control.HandleReport(hot(10))
	if !control.Active() {
		t.Fatal("control (no staleness timeout) should fire on the post-outage spike")
	}

	// With the timeout, the same sequence relearns instead of firing.
	stale := base
	stale.StaleEpochs = 3
	c := NewCoordinator(stale, nil, nil)
	for e := 1; e <= 3; e++ {
		c.HandleReport(calm(e))
	}
	c.HandleReport(hot(10)) // gap of 6 epochs >= StaleEpochs
	if c.Active() {
		t.Fatal("stale baselines were not reset: detector fired on relearning data")
	}
	// After the minimum history re-accumulates at the new level, a steady
	// load is normal again — no spurious firing.
	c.HandleReport(hot(11))
	c.HandleReport(hot(12))
	c.HandleReport(hot(13))
	if c.Active() {
		t.Fatal("detector fired on a steady post-outage load after relearning")
	}
}

// TestRefireBackoffDefersGrownSet verifies hysteresis re-fires respect the
// backoff: a newly identified router is still (eventually) reported, but the
// re-issued request waits out RefireBackoffEpochs instead of firing the
// moment the set grows.
func TestRefireBackoffDefersGrownSet(t *testing.T) {
	mk := func(backoff int) (*Coordinator, *[]Request) {
		var fired []Request
		c := NewCoordinator(Config{
			AbsoluteThreshold: 10, MinVictimLoad: 1, ATRShare: 0.3,
			ATRRise: 1, ATRDecay: 0.85, DisableWithdraw: true,
			RefireBackoffEpochs: backoff,
		}, func(r Request) { fired = append(fired, r) }, nil)
		return c, &fired
	}
	one := []trafficmatrix.Cell{{Source: 2, Dest: 1, Packets: 50}}
	two := []trafficmatrix.Cell{
		{Source: 2, Dest: 1, Packets: 50},
		{Source: 3, Dest: 1, Packets: 40},
	}
	load := map[netsim.NodeID]float64{1: 100}

	// Without backoff the grown set re-fires immediately at epoch 2.
	eager, eagerFired := mk(0)
	eager.HandleReport(report(1, load, one))
	eager.HandleReport(report(2, load, two))
	if len(*eagerFired) != 2 {
		t.Fatalf("no-backoff control fired %d requests, want 2", len(*eagerFired))
	}

	c, fired := mk(3)
	c.HandleReport(report(1, load, one)) // initial detection fires
	c.HandleReport(report(2, load, two)) // source 3 crosses: grown, deferred
	c.HandleReport(report(3, load, two)) // still inside the backoff window
	if len(*fired) != 1 {
		t.Fatalf("backoff coordinator fired %d requests before the window elapsed, want 1", len(*fired))
	}
	c.HandleReport(report(4, load, two)) // epoch 4 - lastFire 1 >= 3: re-fire
	if len(*fired) != 2 {
		t.Fatalf("backoff coordinator fired %d requests after the window, want 2", len(*fired))
	}
	refire := (*fired)[1]
	found := false
	for _, a := range refire.ATRs {
		if a.Router == 3 {
			found = true
		}
	}
	if !found {
		t.Fatalf("deferred re-fire lost the newly identified router: %+v", refire.ATRs)
	}
}

// TestLateReportIgnored verifies a report overtaken on a delayed control
// channel (epoch at or before one already processed) is dropped instead of
// rolling the detector's view backwards.
func TestLateReportIgnored(t *testing.T) {
	fired := 0
	c := NewCoordinator(Config{AbsoluteThreshold: 10, MinVictimLoad: 1, ATRShare: 0},
		func(Request) { fired++ }, nil)

	c.HandleReport(report(2, map[netsim.NodeID]float64{1: 5}, nil))
	// A delayed epoch-1 report arrives after epoch 2 was processed; its
	// load would trigger detection if acted upon.
	c.HandleReport(report(1, map[netsim.NodeID]float64{1: 500},
		[]trafficmatrix.Cell{{Source: 2, Dest: 1, Packets: 400}}))
	if fired != 0 || c.Active() {
		t.Fatalf("late report was acted upon (fired=%d active=%v)", fired, c.Active())
	}
	// Fresh epochs keep working.
	c.HandleReport(report(3, map[netsim.NodeID]float64{1: 500},
		[]trafficmatrix.Cell{{Source: 2, Dest: 1, Packets: 400}}))
	if fired != 1 || !c.Active() {
		t.Fatalf("current report after a late one did not fire (fired=%d active=%v)", fired, c.Active())
	}
}

// TestCoordinatorReuseClearsLossyState verifies the pooled-reuse hygiene of
// the new control-channel fields: a recycled coordinator starts with no last
// epoch, no pending re-fire and no fire history.
func TestCoordinatorReuseClearsLossyState(t *testing.T) {
	c := NewCoordinator(Config{
		AbsoluteThreshold: 10, MinVictimLoad: 1, ATRShare: 0.3,
		ATRRise: 1, DisableWithdraw: true, RefireBackoffEpochs: 5, StaleEpochs: 2,
	}, nil, nil)
	c.HandleReport(report(7, map[netsim.NodeID]float64{1: 100},
		[]trafficmatrix.Cell{{Source: 2, Dest: 1, Packets: 50}}))
	c.HandleReport(report(8, map[netsim.NodeID]float64{1: 100}, []trafficmatrix.Cell{
		{Source: 2, Dest: 1, Packets: 50},
		{Source: 3, Dest: 1, Packets: 40},
	}))
	if c.lastEpoch != 8 || c.lastFireEpoch != 7 || !c.pendingRefire {
		t.Fatalf("setup: unexpected channel state (last=%d fire=%d pending=%v)",
			c.lastEpoch, c.lastFireEpoch, c.pendingRefire)
	}
	c.Release()

	c2 := NewCoordinator(Config{AbsoluteThreshold: 10, MinVictimLoad: 1}, nil, nil)
	defer c2.Release()
	if c2.lastEpoch != 0 || c2.lastFireEpoch != 0 || c2.pendingRefire {
		t.Fatalf("recycled coordinator kept channel state (last=%d fire=%d pending=%v)",
			c2.lastEpoch, c2.lastFireEpoch, c2.pendingRefire)
	}
	// In particular, an early-epoch report must not be mistaken for a late
	// duplicate of the previous owner's stream.
	c2.HandleReport(report(1, map[netsim.NodeID]float64{1: 500}, nil))
	if !c2.Active() {
		t.Fatal("recycled coordinator ignored epoch 1 as stale")
	}
}
