package pushback

import (
	"sort"
	"testing"

	"mafic/internal/netsim"
	"mafic/internal/trafficmatrix"
)

// report builds a synthetic epoch report: dests maps router -> |D_j|,
// cells lists a_ij entries. The map is flattened into the report's dense
// NodeID-indexed tables.
func report(epoch int, dests map[netsim.NodeID]float64, cells []trafficmatrix.Cell) trafficmatrix.EpochReport {
	ids := make([]netsim.NodeID, 0, len(dests))
	maxID := netsim.NodeID(-1)
	for id := range dests {
		ids = append(ids, id)
		if id > maxID {
			maxID = id
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	dense := make([]float64, maxID+1)
	for id, v := range dests {
		dense[id] = v
	}
	return trafficmatrix.EpochReport{
		Epoch:   epoch,
		Routers: ids,
		DestEst: dense,
		Matrix:  cells,
	}
}

func TestDetectsVictimByRelativeLoad(t *testing.T) {
	var got *Request
	c := NewCoordinator(Config{RelativeFactor: 4, ATRShare: 0.05}, func(r Request) { got = &r }, nil)

	dests := map[netsim.NodeID]float64{1: 100, 2: 120, 3: 2000}
	cells := []trafficmatrix.Cell{
		{Source: 10, Dest: 3, Packets: 1500},
		{Source: 11, Dest: 3, Packets: 400},
		{Source: 12, Dest: 3, Packets: 20}, // below 5% share
	}
	c.HandleReport(report(1, dests, cells))

	if got == nil {
		t.Fatal("expected a pushback request")
	}
	if got.VictimRouter != 3 {
		t.Fatalf("victim = %d, want 3", got.VictimRouter)
	}
	if len(got.ATRs) != 2 {
		t.Fatalf("ATRs = %d, want 2 (the 20-packet source is below share)", len(got.ATRs))
	}
	if got.ATRs[0].Router != 10 || got.ATRs[1].Router != 11 {
		t.Fatalf("ATR ranking wrong: %+v", got.ATRs)
	}
	if got.ATRs[0].Share < 0.7 {
		t.Fatalf("top ATR share = %v, want > 0.7", got.ATRs[0].Share)
	}
	if !c.Active() || c.ActiveVictim() != 3 || c.Requests() != 1 {
		t.Fatal("coordinator state after trigger is wrong")
	}
}

func TestNoTriggerOnBalancedLoad(t *testing.T) {
	fired := false
	c := NewCoordinator(Config{RelativeFactor: 4, ATRShare: 0.05}, func(Request) { fired = true }, nil)
	dests := map[netsim.NodeID]float64{1: 100, 2: 110, 3: 120, 4: 130}
	c.HandleReport(report(1, dests, nil))
	if fired || c.Active() {
		t.Fatal("balanced load must not trigger pushback")
	}
}

func TestAbsoluteThreshold(t *testing.T) {
	fired := 0
	c := NewCoordinator(Config{AbsoluteThreshold: 500, ATRShare: 0.01}, func(Request) { fired++ }, nil)
	c.HandleReport(report(1, map[netsim.NodeID]float64{1: 300}, nil))
	if fired != 0 {
		t.Fatal("below absolute threshold must not trigger")
	}
	c.HandleReport(report(2, map[netsim.NodeID]float64{1: 600}, nil))
	if fired != 1 {
		t.Fatal("above absolute threshold must trigger")
	}
}

func TestEligibleRestriction(t *testing.T) {
	var got *Request
	cfg := Config{AbsoluteThreshold: 100, ATRShare: 0.01, Eligible: []netsim.NodeID{11}}
	c := NewCoordinator(cfg, func(r Request) { got = &r }, nil)
	dests := map[netsim.NodeID]float64{3: 1000}
	cells := []trafficmatrix.Cell{
		{Source: 10, Dest: 3, Packets: 700},
		{Source: 11, Dest: 3, Packets: 250},
	}
	c.HandleReport(report(1, dests, cells))
	if got == nil {
		t.Fatal("expected trigger")
	}
	if len(got.ATRs) != 1 || got.ATRs[0].Router != 11 {
		t.Fatalf("eligibility filter failed: %+v", got.ATRs)
	}
}

func TestMaxATRsCap(t *testing.T) {
	var got *Request
	cfg := Config{AbsoluteThreshold: 100, ATRShare: 0.01, MaxATRs: 1}
	c := NewCoordinator(cfg, func(r Request) { got = &r }, nil)
	dests := map[netsim.NodeID]float64{3: 1000}
	cells := []trafficmatrix.Cell{
		{Source: 10, Dest: 3, Packets: 700},
		{Source: 11, Dest: 3, Packets: 250},
	}
	c.HandleReport(report(1, dests, cells))
	if got == nil || len(got.ATRs) != 1 {
		t.Fatalf("MaxATRs cap not applied: %+v", got)
	}
	if got.ATRs[0].Router != 10 {
		t.Fatal("cap should keep the largest contributor")
	}
}

func TestVictimNotListedAsATR(t *testing.T) {
	var got *Request
	c := NewCoordinator(Config{AbsoluteThreshold: 100, ATRShare: 0.01}, func(r Request) { got = &r }, nil)
	dests := map[netsim.NodeID]float64{3: 1000}
	cells := []trafficmatrix.Cell{
		{Source: 3, Dest: 3, Packets: 900}, // locally generated, ignore
		{Source: 10, Dest: 3, Packets: 400},
	}
	c.HandleReport(report(1, dests, cells))
	if got == nil {
		t.Fatal("expected trigger")
	}
	for _, a := range got.ATRs {
		if a.Router == 3 {
			t.Fatal("victim router must never be its own ATR")
		}
	}
}

func TestWithdrawAfterCalmEpochs(t *testing.T) {
	withdrawn := netsim.NoNode
	cfg := Config{AbsoluteThreshold: 500, ATRShare: 0.01, WithdrawFactor: 0.5, WithdrawEpochs: 2}
	c := NewCoordinator(cfg, nil, func(v netsim.NodeID) { withdrawn = v })

	c.HandleReport(report(1, map[netsim.NodeID]float64{7: 1000}, nil))
	if !c.Active() {
		t.Fatal("should be active after trigger")
	}
	// Load stays high: no withdrawal.
	c.HandleReport(report(2, map[netsim.NodeID]float64{7: 900}, nil))
	if !c.Active() {
		t.Fatal("must stay active while load is high")
	}
	// Two calm epochs in a row withdraw the request.
	c.HandleReport(report(3, map[netsim.NodeID]float64{7: 100}, nil))
	if !c.Active() {
		t.Fatal("one calm epoch must not withdraw yet")
	}
	c.HandleReport(report(4, map[netsim.NodeID]float64{7: 100}, nil))
	if c.Active() {
		t.Fatal("should have withdrawn after two calm epochs")
	}
	if withdrawn != 7 {
		t.Fatalf("withdraw callback got %d, want 7", withdrawn)
	}
}

func TestCalmStreakResetsOnRecurringAttack(t *testing.T) {
	cfg := Config{AbsoluteThreshold: 500, ATRShare: 0.01, WithdrawFactor: 0.5, WithdrawEpochs: 2}
	c := NewCoordinator(cfg, nil, nil)
	c.HandleReport(report(1, map[netsim.NodeID]float64{7: 1000}, nil))
	c.HandleReport(report(2, map[netsim.NodeID]float64{7: 100}, nil))  // calm 1
	c.HandleReport(report(3, map[netsim.NodeID]float64{7: 1000}, nil)) // attack resumes
	c.HandleReport(report(4, map[netsim.NodeID]float64{7: 100}, nil))  // calm 1 again
	if !c.Active() {
		t.Fatal("calm streak should have been reset by the recurring attack")
	}
}

func TestNoRetriggerWhileActive(t *testing.T) {
	fired := 0
	cfg := Config{AbsoluteThreshold: 500, ATRShare: 0.01}
	c := NewCoordinator(cfg, func(Request) { fired++ }, nil)
	for epoch := 1; epoch <= 5; epoch++ {
		c.HandleReport(report(epoch, map[netsim.NodeID]float64{7: 1000}, nil))
	}
	if fired != 1 {
		t.Fatalf("pushback fired %d times for one sustained attack, want 1", fired)
	}
}

func TestEmptyReportIsIgnored(t *testing.T) {
	c := NewCoordinator(DefaultConfig(), nil, nil)
	c.HandleReport(report(1, map[netsim.NodeID]float64{}, nil))
	if c.Active() {
		t.Fatal("empty report should not trigger")
	}
}

func TestDefaultConfigSane(t *testing.T) {
	cfg := DefaultConfig()
	if cfg.HistoryFactor <= 1 {
		t.Fatal("history factor must exceed 1")
	}
	if cfg.ATRShare <= 0 || cfg.ATRShare >= 1 {
		t.Fatal("ATR share must be a fraction")
	}
	if cfg.MinVictimLoad <= 0 {
		t.Fatal("minimum victim load must be positive")
	}
}

func TestHistoryBasedDetection(t *testing.T) {
	var got *Request
	cfg := Config{HistoryFactor: 1.5, MinHistoryEpochs: 2, MinVictimLoad: 50, ATRShare: 0.05}
	c := NewCoordinator(cfg, func(r Request) { got = &r }, nil)

	// Two quiet epochs build the baseline (~1000 pkt/epoch at router 9).
	c.HandleReport(report(1, map[netsim.NodeID]float64{9: 1000, 2: 200}, nil))
	c.HandleReport(report(2, map[netsim.NodeID]float64{9: 1050, 2: 210}, nil))
	if got != nil {
		t.Fatal("steady load must not trigger the history test")
	}
	// A modest fluctuation stays below 1.5x the baseline.
	c.HandleReport(report(3, map[netsim.NodeID]float64{9: 1200, 2: 200}, nil))
	if got != nil {
		t.Fatal("small fluctuation must not trigger")
	}
	// The attack roughly doubles the victim's load.
	cells := []trafficmatrix.Cell{{Source: 4, Dest: 9, Packets: 1500}}
	c.HandleReport(report(4, map[netsim.NodeID]float64{9: 2600, 2: 210}, cells))
	if got == nil {
		t.Fatal("history test should have triggered on the surge")
	}
	if got.VictimRouter != 9 || len(got.ATRs) != 1 || got.ATRs[0].Router != 4 {
		t.Fatalf("unexpected request: %+v", got)
	}
}

// TestHysteresisIdentifiesRotatingGroups walks the rolling-pulse hole the
// hysteresis closes: groups that flood in different epochs must all end up
// identified, an identified router must stay identified while its sources
// are silent, and withdrawal must reset the whole identified set.
func TestHysteresisIdentifiesRotatingGroups(t *testing.T) {
	var last *Request
	cfg := Config{
		AbsoluteThreshold: 500, ATRShare: 0.1,
		ATRRise: 0.5, ATRDecay: 0.85,
		WithdrawFactor: 0.5, WithdrawEpochs: 2,
		Eligible: []netsim.NodeID{10, 11},
	}
	c := NewCoordinator(cfg, func(r Request) { last = &r }, nil)

	dests := map[netsim.NodeID]float64{3: 1000}

	// Epoch 1: group A (router 10) floods and triggers pushback.
	c.HandleReport(report(1, dests, []trafficmatrix.Cell{{Source: 10, Dest: 3, Packets: 900}}))
	if last == nil || len(last.ATRs) != 1 || last.ATRs[0].Router != 10 {
		t.Fatalf("trigger request wrong: %+v", last)
	}
	if c.IdentifiedATRs() != 1 {
		t.Fatalf("identified = %d after trigger, want 1", c.IdentifiedATRs())
	}

	// Epoch 2: the baton passes to group B (router 11); router 10 goes
	// quiet. The grown set must be re-issued with BOTH routers, the quiet
	// one ranked first on its decayed score.
	last = nil
	c.HandleReport(report(2, dests, []trafficmatrix.Cell{{Source: 11, Dest: 3, Packets: 900}}))
	if last == nil {
		t.Fatal("newly contributing router must re-fire the request")
	}
	if len(last.ATRs) != 2 || last.ATRs[0].Router != 10 || last.ATRs[1].Router != 11 {
		t.Fatalf("grown set wrong: %+v", last.ATRs)
	}
	if last.ATRs[0].Share <= last.ATRs[1].Share {
		t.Fatalf("decayed score %v should still outrank fresh score %v",
			last.ATRs[0].Share, last.ATRs[1].Share)
	}
	if c.IdentifiedATRs() != 2 || c.Requests() != 2 {
		t.Fatalf("identified=%d requests=%d, want 2/2", c.IdentifiedATRs(), c.Requests())
	}

	// Epochs 3..20: only group B keeps flooding. Router 10's score decays
	// below ATRShare, an ineligible router 12 joins the flood — neither
	// may change the identified set or fire another request.
	last = nil
	for epoch := 3; epoch <= 20; epoch++ {
		c.HandleReport(report(epoch, dests, []trafficmatrix.Cell{
			{Source: 11, Dest: 3, Packets: 900},
			{Source: 12, Dest: 3, Packets: 900},
		}))
	}
	if last != nil {
		t.Fatalf("no new eligible router, yet a request fired: %+v", last)
	}
	if c.IdentifiedATRs() != 2 || c.Requests() != 2 {
		t.Fatalf("identification must be sticky: identified=%d requests=%d, want 2/2",
			c.IdentifiedATRs(), c.Requests())
	}

	// The attack stops: withdrawal resets the hysteresis state so a later
	// attack starts identification from scratch.
	c.HandleReport(report(21, map[netsim.NodeID]float64{3: 100}, nil))
	c.HandleReport(report(22, map[netsim.NodeID]float64{3: 100}, nil))
	if c.Active() {
		t.Fatal("should have withdrawn after two calm epochs")
	}
	if c.IdentifiedATRs() != 0 {
		t.Fatalf("withdrawal left %d identified ATRs, want 0", c.IdentifiedATRs())
	}
}

// TestHysteresisDisabledReproducesPaper pins the default: with ATRRise zero
// a rotating attack gets exactly the paper's one-shot identification — one
// request naming only the triggering epoch's contributors.
func TestHysteresisDisabledReproducesPaper(t *testing.T) {
	fired := 0
	var last *Request
	cfg := Config{AbsoluteThreshold: 500, ATRShare: 0.1, DisableWithdraw: true}
	c := NewCoordinator(cfg, func(r Request) { fired++; last = &r }, nil)

	dests := map[netsim.NodeID]float64{3: 1000}
	c.HandleReport(report(1, dests, []trafficmatrix.Cell{{Source: 10, Dest: 3, Packets: 900}}))
	for epoch := 2; epoch <= 10; epoch++ {
		c.HandleReport(report(epoch, dests, []trafficmatrix.Cell{{Source: 11, Dest: 3, Packets: 900}}))
	}
	if fired != 1 {
		t.Fatalf("paper identification fired %d requests, want the one-shot", fired)
	}
	if len(last.ATRs) != 1 || last.ATRs[0].Router != 10 {
		t.Fatalf("one-shot set wrong: %+v", last.ATRs)
	}
	if c.IdentifiedATRs() != 0 {
		t.Fatal("hysteresis set must stay empty with ATRRise disabled")
	}
}

func TestHistoryMinimumLoadGuard(t *testing.T) {
	fired := false
	cfg := Config{HistoryFactor: 1.5, MinHistoryEpochs: 2, MinVictimLoad: 500, ATRShare: 0.05}
	c := NewCoordinator(cfg, func(Request) { fired = true }, nil)
	c.HandleReport(report(1, map[netsim.NodeID]float64{9: 10}, nil))
	c.HandleReport(report(2, map[netsim.NodeID]float64{9: 10}, nil))
	c.HandleReport(report(3, map[netsim.NodeID]float64{9: 100}, nil))
	if fired {
		t.Fatal("surge on a nearly idle router must not trigger below MinVictimLoad")
	}
}

func TestHistoryFrozenDuringAttack(t *testing.T) {
	withdrawals := 0
	cfg := Config{HistoryFactor: 1.5, MinHistoryEpochs: 2, MinVictimLoad: 50, ATRShare: 0.05,
		WithdrawFactor: 0.6, WithdrawEpochs: 2}
	c := NewCoordinator(cfg, nil, func(netsim.NodeID) { withdrawals++ })
	c.HandleReport(report(1, map[netsim.NodeID]float64{9: 1000}, nil))
	c.HandleReport(report(2, map[netsim.NodeID]float64{9: 1000}, nil))
	// Attack epochs: the victim's baseline must not absorb the attack, so
	// after the attack subsides the coordinator withdraws.
	for epoch := 3; epoch <= 6; epoch++ {
		c.HandleReport(report(epoch, map[netsim.NodeID]float64{9: 5000}, nil))
	}
	if !c.Active() {
		t.Fatal("attack should have triggered")
	}
	c.HandleReport(report(7, map[netsim.NodeID]float64{9: 1000}, nil))
	c.HandleReport(report(8, map[netsim.NodeID]float64{9: 1000}, nil))
	if c.Active() || withdrawals != 1 {
		t.Fatalf("pushback should withdraw once traffic returns to baseline (active=%v withdrawals=%d)",
			c.Active(), withdrawals)
	}
}
