package pushback

import (
	"testing"

	"mafic/internal/netsim"
	"mafic/internal/trafficmatrix"
)

// TestHandleReportSteadyStateZeroAlloc pins the detector's per-epoch cost at
// zero allocations once its dense history tables have grown: epoch reports
// stream through detection and baseline maintenance without heap traffic as
// long as no pushback request fires.
func TestHandleReportSteadyStateZeroAlloc(t *testing.T) {
	c := NewCoordinator(Config{HistoryFactor: 1e12, MinVictimLoad: 1e12}, nil, nil)

	routers := []netsim.NodeID{0, 1, 2, 3, 4, 5, 6, 7}
	dest := []float64{40, 35, 60, 20, 15, 80, 5, 50}
	src := []float64{30, 30, 30, 30, 30, 30, 30, 30}
	r := trafficmatrix.EpochReport{
		Routers:   routers,
		DestEst:   dest,
		SourceEst: src,
		Matrix: []trafficmatrix.Cell{
			{Source: 0, Dest: 5, Packets: 25},
			{Source: 1, Dest: 5, Packets: 30},
		},
	}

	// First report grows the history tables.
	r.Epoch = 1
	c.HandleReport(r)

	epoch := 1
	allocs := testing.AllocsPerRun(50, func() {
		epoch++
		r.Epoch = epoch
		c.HandleReport(r)
	})
	if allocs != 0 {
		t.Fatalf("HandleReport allocates %v per epoch in steady state, want 0", allocs)
	}
	if c.Active() {
		t.Fatal("thresholds were set impossible; nothing should trigger")
	}
}

// TestHysteresisSteadyStateZeroAlloc extends the per-epoch pin to hardened
// configurations: with ATR hysteresis enabled and pushback active, an epoch
// that identifies nothing new — the common case — folds shares into the
// score tables without heap traffic. Only set growth and request re-issue
// may allocate, and both are rare.
func TestHysteresisSteadyStateZeroAlloc(t *testing.T) {
	cfg := Config{
		AbsoluteThreshold: 500, ATRShare: 0.1,
		ATRRise: 0.5, ATRDecay: 0.85,
		DisableWithdraw: true,
	}
	c := NewCoordinator(cfg, nil, nil)

	r := trafficmatrix.EpochReport{
		Routers: []netsim.NodeID{0, 1, 2, 3},
		DestEst: []float64{10, 20, 30, 1000},
		Matrix: []trafficmatrix.Cell{
			{Source: 0, Dest: 3, Packets: 500},
			{Source: 1, Dest: 3, Packets: 400},
		},
	}

	// First report triggers pushback and grows the score tables; a second
	// warms the steady hysteresis path.
	r.Epoch = 1
	c.HandleReport(r)
	r.Epoch = 2
	c.HandleReport(r)
	if !c.Active() || c.IdentifiedATRs() == 0 {
		t.Fatalf("setup: active=%v identified=%d", c.Active(), c.IdentifiedATRs())
	}

	epoch := 2
	allocs := testing.AllocsPerRun(50, func() {
		epoch++
		r.Epoch = epoch
		c.HandleReport(r)
	})
	if allocs != 0 {
		t.Fatalf("steady hysteresis epoch allocates %v, want 0", allocs)
	}

	// Pool hygiene: a recycled coordinator must not inherit the old run's
	// identified set or scores.
	c.Release()
	c2 := NewCoordinator(cfg, nil, nil)
	if c2.Active() || c2.IdentifiedATRs() != 0 {
		t.Fatalf("recycled coordinator leaked hysteresis state (active=%v identified=%d)",
			c2.Active(), c2.IdentifiedATRs())
	}
}

// TestCoordinatorReuseZeroAlloc pins the construction-time win of the
// coordinator pool: once one released coordinator exists, a NewCoordinator/
// Release cycle with the same eligibility set allocates nothing — the
// history tables, ranking scratch and eligibility map are all recycled.
func TestCoordinatorReuseZeroAlloc(t *testing.T) {
	eligible := []netsim.NodeID{1, 3, 5, 7}
	cfg := Config{HistoryFactor: 1.5, Eligible: eligible}
	report := trafficmatrix.EpochReport{
		Epoch:     1,
		Routers:   []netsim.NodeID{0, 1, 2, 3},
		DestEst:   []float64{10, 20, 30, 40},
		SourceEst: []float64{5, 5, 5, 5},
	}

	// Warm the pool (and grow the recycled tables once).
	c := NewCoordinator(cfg, nil, nil)
	c.HandleReport(report)
	c.Release()

	allocs := testing.AllocsPerRun(50, func() {
		c := NewCoordinator(cfg, nil, nil)
		c.HandleReport(report)
		c.Release()
	})
	if allocs != 0 {
		t.Fatalf("pooled NewCoordinator/Release cycle allocates %v, want 0", allocs)
	}
}

// TestCoordinatorReuseLeaksNoState verifies a recycled coordinator starts
// from scratch: no history, no active pushback, no stale eligibility.
func TestCoordinatorReuseLeaksNoState(t *testing.T) {
	fired := 0
	c := NewCoordinator(Config{AbsoluteThreshold: 10, MinVictimLoad: 1, ATRShare: 0},
		func(Request) { fired++ }, nil)
	report := trafficmatrix.EpochReport{
		Epoch:     1,
		Routers:   []netsim.NodeID{0, 1},
		DestEst:   []float64{5, 500},
		SourceEst: []float64{5, 5},
		Matrix:    []trafficmatrix.Cell{{Source: 0, Dest: 1, Packets: 400}},
	}
	c.HandleReport(report)
	if fired != 1 || !c.Active() {
		t.Fatalf("setup detection did not fire (fired=%d active=%v)", fired, c.Active())
	}
	c.Release()

	// The recycled coordinator must neither remember the old victim nor
	// keep the old eligibility; router 0 (ineligible before) must rank.
	c2 := NewCoordinator(Config{AbsoluteThreshold: 10, MinVictimLoad: 1, ATRShare: 0},
		func(req Request) {
			if len(req.ATRs) == 0 {
				t.Error("recycled coordinator kept a stale eligibility set")
			}
		}, nil)
	if c2.Active() || c2.Requests() != 0 {
		t.Fatalf("recycled coordinator leaked activation state (active=%v requests=%d)",
			c2.Active(), c2.Requests())
	}
	c2.HandleReport(report)
	if !c2.Active() {
		t.Fatal("recycled coordinator failed to detect")
	}
}
