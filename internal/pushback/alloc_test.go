package pushback

import (
	"testing"

	"mafic/internal/netsim"
	"mafic/internal/trafficmatrix"
)

// TestHandleReportSteadyStateZeroAlloc pins the detector's per-epoch cost at
// zero allocations once its dense history tables have grown: epoch reports
// stream through detection and baseline maintenance without heap traffic as
// long as no pushback request fires.
func TestHandleReportSteadyStateZeroAlloc(t *testing.T) {
	c := NewCoordinator(Config{HistoryFactor: 1e12, MinVictimLoad: 1e12}, nil, nil)

	routers := []netsim.NodeID{0, 1, 2, 3, 4, 5, 6, 7}
	dest := []float64{40, 35, 60, 20, 15, 80, 5, 50}
	src := []float64{30, 30, 30, 30, 30, 30, 30, 30}
	r := trafficmatrix.EpochReport{
		Routers:   routers,
		DestEst:   dest,
		SourceEst: src,
		Matrix: []trafficmatrix.Cell{
			{Source: 0, Dest: 5, Packets: 25},
			{Source: 1, Dest: 5, Packets: 30},
		},
	}

	// First report grows the history tables.
	r.Epoch = 1
	c.HandleReport(r)

	epoch := 1
	allocs := testing.AllocsPerRun(50, func() {
		epoch++
		r.Epoch = epoch
		c.HandleReport(r)
	})
	if allocs != 0 {
		t.Fatalf("HandleReport allocates %v per epoch in steady state, want 0", allocs)
	}
	if c.Active() {
		t.Fatal("thresholds were set impossible; nothing should trigger")
	}
}
