// Package pushback implements victim detection and attack-transit-router
// (ATR) identification on top of the set-union counting traffic matrix, i.e.
// the decision layer from the paper's Section II: when a last-hop router's
// |D_j| becomes abnormally high, the routers contributing the largest a_ij
// toward it are flagged as ATRs and told to start adaptive dropping.
//
// # ATR hysteresis
//
// The paper identifies ATRs once, from the single epoch that crossed the
// detection threshold. A pulsed or rotating attacker exploits that: only the
// groups flooding during the triggering epoch are identified, and the groups
// that were quiet keep an unpoliced path to the victim forever after.
//
// Setting Config.ATRRise enables cross-epoch hysteresis. While pushback is in
// force the coordinator keeps, per eligible router, an exponentially weighted
// score of its contribution share toward the protected victim:
//
//	score' = max(ATRDecay·score, ATRRise·share + (1−ATRRise)·score)
//
// A router that contributes grows its score with weight ATRRise; a router
// that goes quiet keeps ATRDecay of its score per epoch instead of being
// forgotten outright. When a router's score reaches Config.ATRShare it is
// added to the identified set and the pushback request is re-issued with the
// grown set — so an aggregate identified during one flooding slot stays
// identified through the slots its sources spend silent, and late-arriving
// groups are picked up the moment they start contributing. Identification is
// sticky: scores decay, but a router once reported is never silently
// un-reported (withdrawal resets everything). Both knobs default to zero,
// which reproduces the paper's one-shot identification exactly.
package pushback

import (
	"errors"
	"fmt"
	"slices"

	"mafic/internal/netsim"
	"mafic/internal/pool"
	"mafic/internal/trafficmatrix"
)

// ATR describes one identified attack-transit router and its estimated
// contribution to the victim's traffic.
type ATR struct {
	// Router is the identified ingress router.
	Router netsim.NodeID
	// Packets is the estimated number of distinct packets it injected
	// toward the victim during the triggering epoch (a_ij).
	Packets float64
	// Share is Packets divided by the victim's |D_j| estimate.
	Share float64
}

// Request is the pushback instruction delivered to the defence layer when an
// attack is detected.
type Request struct {
	// Epoch is the measurement epoch that triggered the request.
	Epoch int
	// VictimRouter is the last-hop router in front of the victim.
	VictimRouter netsim.NodeID
	// VictimLoad is the |D_j| estimate that crossed the threshold.
	VictimLoad float64
	// ATRs lists the identified attack-transit routers, largest
	// contributor first.
	ATRs []ATR
}

// Config tunes the detector.
type Config struct {
	// AbsoluteThreshold is the |D_j| estimate (distinct packets per
	// epoch) above which a router is considered under attack. Zero
	// disables the absolute test.
	AbsoluteThreshold float64
	// RelativeFactor triggers when a router's |D_j| exceeds this multiple
	// of the mean |D_j| across all routers with traffic. Zero disables
	// the relative test.
	RelativeFactor float64
	// HistoryFactor triggers when a router's |D_j| exceeds this multiple
	// of its own exponentially weighted moving average over previous
	// epochs. Zero disables the history test. This is the primary test
	// used by the experiments: a flooding attack shows up as a sudden
	// departure from the router's own baseline.
	HistoryFactor float64
	// MinHistoryEpochs is how many epochs of history are required before
	// the history test may fire. Zero means 2.
	MinHistoryEpochs int
	// MinVictimLoad is the minimum |D_j| (distinct packets per epoch)
	// required for any trigger, guarding against firing on noise over a
	// nearly idle router.
	MinVictimLoad float64
	// ATRShare is the minimum fraction of the victim's |D_j| an ingress
	// router must contribute to be flagged as an ATR.
	ATRShare float64
	// MaxATRs caps how many ATRs a single request may identify; zero
	// means no cap.
	MaxATRs int
	// WithdrawFactor controls withdrawal hysteresis: pushback is
	// withdrawn when the victim's load falls below
	// WithdrawFactor × the triggering threshold. Zero means 0.5.
	WithdrawFactor float64
	// WithdrawEpochs is how many consecutive calm epochs are required
	// before withdrawing. Zero means 2.
	WithdrawEpochs int
	// DisableWithdraw keeps pushback in force once raised. The victim's
	// measured load drops as soon as the ATRs start dropping, so a
	// victim-side withdrawal test oscillates; experiments that want the
	// defence to stay up for the whole run set this.
	DisableWithdraw bool
	// ATRRise, when positive, enables cross-epoch ATR hysteresis (see the
	// package doc): it is the EWMA weight given to a router's current
	// contribution share when its ATR score rises. Zero disables
	// hysteresis and reproduces the paper's one-shot identification.
	ATRRise float64
	// ATRDecay is the fraction of a router's ATR score retained through an
	// epoch in which the router contributes nothing — the memory that
	// keeps a rotating attacker's quiet groups identified. Only meaningful
	// with ATRRise > 0; zero selects the default 0.85.
	ATRDecay float64
	// StaleEpochs, when positive, is the staleness timeout for a lossy
	// control channel: when the gap between consecutively delivered epoch
	// reports reaches StaleEpochs missing epochs, the per-router |D_j|
	// baselines are considered stale and are relearned from scratch —
	// detection thresholds computed against a pre-outage baseline would
	// otherwise fire (or fail to fire) against a world that no longer
	// exists. Zero keeps baselines through gaps of any length.
	StaleEpochs int
	// RefireBackoffEpochs, when positive, rate-limits hysteresis re-fires:
	// a grown identified set is re-issued only once at least this many
	// epochs have passed since the previous request, so pushback does not
	// thrash the defence layer when churn makes identification flap. The
	// grown set is never lost — it fires as soon as the backoff allows.
	// Zero re-fires immediately (the historical behaviour).
	RefireBackoffEpochs int
	// Eligible restricts ATR identification to the given routers
	// (typically the domain's ingress routers). Empty means any router
	// may be identified.
	Eligible []netsim.NodeID
}

// ErrConfig is returned by Validate for inconsistent detector settings.
var ErrConfig = errors.New("pushback: invalid config")

// Validate reports configuration problems. Zero values are legal for every
// tunable (they select a default or disable a test); Validate rejects values
// that are outright contradictory.
func (c Config) Validate() error {
	if c.AbsoluteThreshold < 0 {
		return fmt.Errorf("%w: absolute threshold %v", ErrConfig, c.AbsoluteThreshold)
	}
	if c.RelativeFactor < 0 {
		return fmt.Errorf("%w: relative factor %v", ErrConfig, c.RelativeFactor)
	}
	if c.HistoryFactor < 0 {
		return fmt.Errorf("%w: history factor %v", ErrConfig, c.HistoryFactor)
	}
	if c.MinHistoryEpochs < 0 {
		return fmt.Errorf("%w: min history epochs %d", ErrConfig, c.MinHistoryEpochs)
	}
	if c.MinVictimLoad < 0 {
		return fmt.Errorf("%w: min victim load %v", ErrConfig, c.MinVictimLoad)
	}
	if c.ATRShare < 0 || c.ATRShare > 1 {
		return fmt.Errorf("%w: ATR share %v outside [0,1]", ErrConfig, c.ATRShare)
	}
	if c.MaxATRs < 0 {
		return fmt.Errorf("%w: max ATRs %d", ErrConfig, c.MaxATRs)
	}
	if c.WithdrawFactor < 0 || c.WithdrawFactor > 1 {
		return fmt.Errorf("%w: withdraw factor %v outside [0,1]", ErrConfig, c.WithdrawFactor)
	}
	if c.WithdrawEpochs < 0 {
		return fmt.Errorf("%w: withdraw epochs %d", ErrConfig, c.WithdrawEpochs)
	}
	if c.ATRRise < 0 || c.ATRRise > 1 {
		return fmt.Errorf("%w: ATR rise %v outside [0,1]", ErrConfig, c.ATRRise)
	}
	if c.ATRDecay < 0 || c.ATRDecay > 1 {
		return fmt.Errorf("%w: ATR decay %v outside [0,1]", ErrConfig, c.ATRDecay)
	}
	if c.StaleEpochs < 0 {
		return fmt.Errorf("%w: stale epochs %d", ErrConfig, c.StaleEpochs)
	}
	if c.RefireBackoffEpochs < 0 {
		return fmt.Errorf("%w: refire backoff epochs %d", ErrConfig, c.RefireBackoffEpochs)
	}
	return nil
}

// DefaultConfig returns detector settings that work for the scenario scale
// used in this repository's experiments.
func DefaultConfig() Config {
	return Config{
		AbsoluteThreshold: 0,
		RelativeFactor:    0,
		HistoryFactor:     1.5,
		MinHistoryEpochs:  2,
		MinVictimLoad:     50,
		ATRShare:          0.02,
		WithdrawFactor:    0.5,
		WithdrawEpochs:    2,
	}
}

// HardenedConfig returns DefaultConfig with cross-epoch ATR hysteresis
// enabled: contribution shares fold into the ATR scores with weight 0.5 and
// quiet routers keep 85% of their score per epoch, so a rotating attacker's
// currently-silent groups stay identified and newly flooding groups are
// reported within an epoch or two of their first slot.
func HardenedConfig() Config {
	c := DefaultConfig()
	c.ATRRise = 0.5
	c.ATRDecay = 0.85
	c.StaleEpochs = 4
	c.RefireBackoffEpochs = 2
	return c
}

// Coordinator consumes traffic-matrix epoch reports and raises/withdraws
// pushback requests.
type Coordinator struct {
	cfg Config

	onPushback func(Request)
	onWithdraw func(victim netsim.NodeID)

	eligible map[netsim.NodeID]bool

	// history keeps an EWMA of each router's |D_j| across epochs for the
	// history-based test. Both tables are dense, NodeID-indexed, and grown
	// on first use, so steady-state epoch processing allocates nothing.
	history      []float64
	historyOK    []bool
	historySeen  int
	historyAlpha float64

	// cellScratch is the reusable buffer behind ATR ranking.
	cellScratch []trafficmatrix.Cell

	// Hysteresis state (Config.ATRRise > 0 only). atrScore is the EWMA
	// contribution share of each router toward the active victim,
	// identifiedATR marks routers already reported in a request, and
	// shareScratch is the per-epoch dense share buffer. All three are
	// dense, NodeID-indexed, grown together, and reused across epochs so
	// a steady-state epoch with no new identification allocates nothing.
	atrScore      []float64
	identifiedATR []bool
	shareScratch  []float64
	identified    int

	active        bool
	activeVictim  netsim.NodeID
	triggerLoad   float64
	calmEpochs    int
	requestsFired int

	// Lossy-control-channel state: the last epoch whose report was
	// processed (0 before the first numbered report), the epoch of the last
	// request issued, and whether a grown identified set is waiting out the
	// re-fire backoff.
	lastEpoch     int
	lastFireEpoch int
	pendingRefire bool
}

// coordinatorPool recycles released coordinators across runs, keeping their
// grown history tables, ranking scratch and eligibility map; see Release.
var coordinatorPool = pool.FreeList[Coordinator]{Cap: 256}

// NewCoordinator creates a coordinator. onPushback fires when an attack is
// detected; onWithdraw fires when the victim's load subsides. Either callback
// may be nil. The object comes from the package pool when a released
// coordinator is available, so sweep-scale construction allocates nothing in
// steady state.
func NewCoordinator(cfg Config, onPushback func(Request), onWithdraw func(victim netsim.NodeID)) *Coordinator {
	if cfg.WithdrawFactor <= 0 {
		cfg.WithdrawFactor = 0.5
	}
	if cfg.WithdrawEpochs <= 0 {
		cfg.WithdrawEpochs = 2
	}
	c := coordinatorPool.Get()
	if c == nil {
		c = &Coordinator{}
	}
	eligible := c.eligible
	if len(cfg.Eligible) > 0 {
		if eligible == nil {
			eligible = make(map[netsim.NodeID]bool, len(cfg.Eligible))
		}
		for _, id := range cfg.Eligible {
			eligible[id] = true
		}
	} else {
		eligible = nil
	}
	if cfg.MinHistoryEpochs <= 0 {
		cfg.MinHistoryEpochs = 2
	}
	if cfg.ATRRise > 0 && cfg.ATRDecay <= 0 {
		cfg.ATRDecay = 0.85
	}
	// Full reinitialisation over the recycled backing: truncated (not
	// dropped) tables keep their capacity, and growHistory / growScores
	// write every appended slot, so no state can leak between owners.
	*c = Coordinator{
		cfg:           cfg,
		onPushback:    onPushback,
		onWithdraw:    onWithdraw,
		eligible:      eligible,
		history:       c.history[:0],
		historyOK:     c.historyOK[:0],
		cellScratch:   c.cellScratch[:0],
		atrScore:      c.atrScore[:0],
		identifiedATR: c.identifiedATR[:0],
		shareScratch:  c.shareScratch[:0],
		historyAlpha:  0.5,
	}
	return c
}

// Release returns the coordinator to the package pool for reuse by a later
// run. Call it only once no further epoch report can arrive, and do not use
// the coordinator again: its callbacks are dropped and its tables are handed
// to the next owner.
func (c *Coordinator) Release() {
	c.onPushback = nil
	c.onWithdraw = nil
	c.cfg = Config{}
	clear(c.eligible) // keep the map header and buckets for the next owner
	coordinatorPool.Put(c)
}

// Active reports whether a pushback request is currently in force.
func (c *Coordinator) Active() bool { return c.active }

// ActiveVictim reports the router currently protected, valid while Active.
func (c *Coordinator) ActiveVictim() netsim.NodeID { return c.activeVictim }

// Requests reports how many pushback requests have been raised so far.
func (c *Coordinator) Requests() int { return c.requestsFired }

// IdentifiedATRs reports the size of the hysteresis identified set; zero
// unless ATRRise is enabled and pushback is active.
func (c *Coordinator) IdentifiedATRs() int { return c.identified }

// HandleReport is wired as the traffic-matrix monitor's epoch callback. On a
// lossy control channel reports may be missing (numbering gaps) or delivered
// late (epoch at or before one already processed); gaps decay — rather than
// freeze — the hysteresis state and, past the staleness timeout, reset the
// learned baselines, while late duplicates are ignored outright.
func (c *Coordinator) HandleReport(report trafficmatrix.EpochReport) {
	if report.Epoch > 0 {
		if c.lastEpoch > 0 {
			if report.Epoch <= c.lastEpoch {
				// A delayed report overtaken by newer ones: its epoch was
				// already accounted (as a gap or a delivery). Acting on it
				// would roll the detector's view of the world backwards.
				return
			}
			if gap := report.Epoch - c.lastEpoch - 1; gap > 0 {
				c.noteReportGap(gap)
			}
		}
		c.lastEpoch = report.Epoch
	}
	victim, load, threshold, found := c.detectVictim(report)
	c.updateHistory(report, found, victim)
	if c.active {
		c.updateATRScores(report)
		c.maybeWithdraw(found, victim, load)
		return
	}
	if !found {
		return
	}
	req := Request{
		Epoch:        report.Epoch,
		VictimRouter: victim,
		VictimLoad:   load,
		ATRs:         c.identifyATRs(report, victim, load),
	}
	c.active = true
	c.activeVictim = victim
	c.triggerLoad = threshold
	c.calmEpochs = 0
	c.requestsFired++
	c.lastFireEpoch = report.Epoch
	c.seedATRScores(req.ATRs)
	if c.onPushback != nil {
		c.onPushback(req)
	}
}

// noteReportGap accounts gap epochs whose reports never arrived. The ATR
// scores decay through the dark epochs exactly as if the routers had
// contributed nothing (identification stays sticky — scores decay, reported
// routers are not un-reported), and once the outage reaches the staleness
// timeout the |D_j| baselines are dropped for relearning.
func (c *Coordinator) noteReportGap(gap int) {
	if c.cfg.ATRRise > 0 {
		decay := 1.0
		for e := 0; e < gap; e++ {
			decay *= c.cfg.ATRDecay
		}
		for i := range c.atrScore {
			c.atrScore[i] *= decay
		}
	}
	if c.cfg.StaleEpochs > 0 && gap >= c.cfg.StaleEpochs {
		for i := range c.history {
			c.history[i] = 0
			c.historyOK[i] = false
		}
		c.historySeen = 0
	}
}

// seedATRScores initialises the hysteresis state from the triggering epoch's
// identified set. No-op unless hysteresis is enabled.
func (c *Coordinator) seedATRScores(atrs []ATR) {
	if c.cfg.ATRRise <= 0 {
		return
	}
	for _, a := range atrs {
		c.growScores(a.Router)
		c.atrScore[a.Router] = a.Share
		c.identifiedATR[a.Router] = true
		c.identified++
	}
}

// growScores sizes the dense hysteresis tables to cover id.
func (c *Coordinator) growScores(id netsim.NodeID) {
	for int(id) >= len(c.atrScore) {
		c.atrScore = append(c.atrScore, 0)
		c.identifiedATR = append(c.identifiedATR, false)
		c.shareScratch = append(c.shareScratch, 0)
	}
}

// updateATRScores runs one hysteresis step while pushback is active: fold the
// epoch's contribution shares into the per-router scores and, if any eligible
// router's score crossed ATRShare for the first time, re-issue the pushback
// request with the grown identified set. Epochs that identify nothing new
// allocate nothing.
func (c *Coordinator) updateATRScores(report trafficmatrix.EpochReport) {
	if c.cfg.ATRRise <= 0 {
		return
	}
	load := report.DestEstimate(c.activeVictim)
	c.cellScratch = report.AppendTopSources(c.cellScratch[:0], c.activeVictim)
	for i := range c.shareScratch {
		c.shareScratch[i] = 0
	}
	for _, cell := range c.cellScratch {
		if cell.Source == c.activeVictim {
			continue
		}
		c.growScores(cell.Source)
		if load > 0 {
			c.shareScratch[cell.Source] = cell.Packets / load
		}
	}
	rise, decay := c.cfg.ATRRise, c.cfg.ATRDecay
	grew := false
	for i := range c.atrScore {
		score := rise*c.shareScratch[i] + (1-rise)*c.atrScore[i]
		if floor := decay * c.atrScore[i]; floor > score {
			score = floor
		}
		c.atrScore[i] = score
		if score < c.cfg.ATRShare || c.identifiedATR[i] {
			continue
		}
		id := netsim.NodeID(i)
		if c.eligible != nil && !c.eligible[id] {
			continue
		}
		if c.cfg.MaxATRs > 0 && c.identified >= c.cfg.MaxATRs {
			continue
		}
		c.identifiedATR[i] = true
		c.identified++
		grew = true
	}
	if grew {
		c.pendingRefire = true
	}
	if c.pendingRefire && c.refireAllowed(report.Epoch) {
		c.pendingRefire = false
		c.lastFireEpoch = report.Epoch
		c.fireIdentifiedSet(report.Epoch, load)
	}
}

// refireAllowed applies the re-fire backoff: with no backoff configured (or
// unnumbered reports, as hand-built tests use) re-fires are immediate.
func (c *Coordinator) refireAllowed(epoch int) bool {
	if c.cfg.RefireBackoffEpochs <= 0 || epoch <= 0 || c.lastFireEpoch <= 0 {
		return true
	}
	return epoch-c.lastFireEpoch >= c.cfg.RefireBackoffEpochs
}

// fireIdentifiedSet re-issues the pushback request carrying the full
// identified set, largest current score first. Packets is reconstructed from
// the score and the victim's current load, so it is an EWMA estimate rather
// than a single-epoch a_ij.
func (c *Coordinator) fireIdentifiedSet(epoch int, load float64) {
	atrs := make([]ATR, 0, c.identified)
	for i, ok := range c.identifiedATR {
		if !ok {
			continue
		}
		score := c.atrScore[i]
		atrs = append(atrs, ATR{Router: netsim.NodeID(i), Packets: score * load, Share: score})
	}
	slices.SortFunc(atrs, func(a, b ATR) int {
		switch {
		case a.Share > b.Share:
			return -1
		case a.Share < b.Share:
			return 1
		default:
			return int(a.Router - b.Router)
		}
	})
	c.requestsFired++
	if c.onPushback != nil {
		c.onPushback(Request{
			Epoch:        epoch,
			VictimRouter: c.activeVictim,
			VictimLoad:   load,
			ATRs:         atrs,
		})
	}
}

// detectVictim applies the absolute and relative load tests and returns the
// most-loaded router that crossed a threshold.
func (c *Coordinator) detectVictim(report trafficmatrix.EpochReport) (victim netsim.NodeID, load, threshold float64, found bool) {
	var (
		sum   float64
		count int
		maxID netsim.NodeID = netsim.NoNode
		maxDj float64
	)
	for _, id := range report.Routers {
		dj := report.DestEstimate(id)
		if dj <= 0 {
			continue
		}
		sum += dj
		count++
		if dj > maxDj {
			maxDj = dj
			maxID = id
		}
	}
	if maxID == netsim.NoNode || maxDj < c.cfg.MinVictimLoad {
		return maxID, maxDj, 0, false
	}
	if c.cfg.AbsoluteThreshold > 0 && maxDj >= c.cfg.AbsoluteThreshold {
		return maxID, maxDj, c.cfg.AbsoluteThreshold, true
	}
	if c.cfg.RelativeFactor > 0 && count > 1 {
		mean := (sum - maxDj) / float64(count-1)
		if mean > 0 && maxDj >= c.cfg.RelativeFactor*mean {
			return maxID, maxDj, c.cfg.RelativeFactor * mean, true
		}
	}
	if c.cfg.HistoryFactor > 0 && c.historySeen >= c.cfg.MinHistoryEpochs {
		if baselineLoad, ok := c.baseline(maxID); ok && baselineLoad > 0 {
			threshold := c.cfg.HistoryFactor * baselineLoad
			if maxDj >= threshold {
				return maxID, maxDj, threshold, true
			}
		}
	}
	return maxID, maxDj, 0, false
}

// baseline returns the EWMA |D_j| baseline for a router, if one exists yet.
func (c *Coordinator) baseline(id netsim.NodeID) (float64, bool) {
	if id < 0 || int(id) >= len(c.history) || !c.historyOK[id] {
		return 0, false
	}
	return c.history[id], true
}

// growHistory sizes the dense baseline tables to cover id.
func (c *Coordinator) growHistory(id netsim.NodeID) {
	for int(id) >= len(c.history) {
		c.history = append(c.history, 0)
		c.historyOK = append(c.historyOK, false)
	}
}

// updateHistory folds the epoch's loads into the per-router EWMA baselines.
// While an attack is detected (or pushback is active) the victim's baseline
// is frozen so the attack itself does not become the new normal.
func (c *Coordinator) updateHistory(report trafficmatrix.EpochReport, found bool, victim netsim.NodeID) {
	c.historySeen++
	for _, id := range report.Routers {
		c.growHistory(id)
		if (found && id == victim) || (c.active && id == c.activeVictim) {
			continue
		}
		dj := report.DestEstimate(id)
		if !c.historyOK[id] {
			c.history[id] = dj
			c.historyOK[id] = true
			continue
		}
		c.history[id] = c.historyAlpha*dj + (1-c.historyAlpha)*c.history[id]
	}
}

// identifyATRs ranks source routers by their estimated contribution a_ij to
// the victim and keeps those above the configured share.
func (c *Coordinator) identifyATRs(report trafficmatrix.EpochReport, victim netsim.NodeID, victimLoad float64) []ATR {
	c.cellScratch = report.AppendTopSources(c.cellScratch[:0], victim)
	cells := c.cellScratch
	atrs := make([]ATR, 0, len(cells))
	for _, cell := range cells {
		if c.eligible != nil && !c.eligible[cell.Source] {
			continue
		}
		if cell.Source == victim {
			continue
		}
		share := 0.0
		if victimLoad > 0 {
			share = cell.Packets / victimLoad
		}
		if share < c.cfg.ATRShare {
			continue
		}
		atrs = append(atrs, ATR{Router: cell.Source, Packets: cell.Packets, Share: share})
		if c.cfg.MaxATRs > 0 && len(atrs) >= c.cfg.MaxATRs {
			break
		}
	}
	slices.SortFunc(atrs, func(a, b ATR) int {
		switch {
		case a.Packets > b.Packets:
			return -1
		case a.Packets < b.Packets:
			return 1
		default:
			return 0
		}
	})
	return atrs
}

// maybeWithdraw tracks calm epochs while pushback is active and withdraws
// once the victim's load stays low long enough.
func (c *Coordinator) maybeWithdraw(found bool, victim netsim.NodeID, load float64) {
	if c.cfg.DisableWithdraw {
		return
	}
	calm := !found || victim != c.activeVictim || load < c.cfg.WithdrawFactor*c.triggerLoad
	if !calm {
		c.calmEpochs = 0
		return
	}
	c.calmEpochs++
	if c.calmEpochs < c.cfg.WithdrawEpochs {
		return
	}
	c.active = false
	c.calmEpochs = 0
	c.resetATRScores()
	if c.onWithdraw != nil {
		c.onWithdraw(c.activeVictim)
	}
}

// resetATRScores clears the hysteresis state when pushback is withdrawn, so a
// later attack starts identification from scratch.
func (c *Coordinator) resetATRScores() {
	for i := range c.atrScore {
		c.atrScore[i] = 0
		c.identifiedATR[i] = false
		c.shareScratch[i] = 0
	}
	c.identified = 0
	c.pendingRefire = false
}
