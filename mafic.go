// Package mafic is a Go reproduction of MAFIC — MAlicious Flow
// Identification and Cutoff (Chen, Kwok, Hwang; IEEE ICDCS Workshops 2005):
// adaptive packet dropping at attack-transit routers that probes flow
// sources with duplicated ACKs and permanently cuts off the flows that do
// not back off, pushing a DDoS attack away from its victim while sparing
// legitimate TCP traffic.
//
// The package is a façade over the building blocks in internal/: the
// discrete-event network simulator that replaces NS-2, the Durand–Flajolet
// set-union counting layer used for victim detection and ATR identification,
// the MAFIC defender itself, the proportional-dropping baseline, and the
// experiment harness that regenerates every figure of the paper's
// evaluation.
//
// Three entry points cover most uses:
//
//   - NewDefender attaches a MAFIC engine to a router of a simulated
//     topology (see internal/topology and internal/netsim) — use this when
//     composing custom simulations.
//   - Simulate runs a complete scenario (topology + workload + detection +
//     defence) and returns the paper's metrics.
//   - GenerateFigure reproduces a specific figure panel from the paper.
package mafic

import (
	"mafic/internal/core"
	"mafic/internal/experiment"
	"mafic/internal/netsim"
	"mafic/internal/sim"
)

// Core defender types, re-exported for downstream use.
type (
	// Config tunes a MAFIC defender (P_d, probing window, thresholds).
	Config = core.Config
	// Defender is the per-ATR MAFIC engine; it implements the simulator's
	// packet-filter interface.
	Defender = core.Defender
	// Stats aggregates a defender's packet- and flow-level counters.
	Stats = core.Stats
	// DropReason explains an individual packet drop.
	DropReason = core.DropReason
)

// Scenario and figure-reproduction types.
type (
	// Scenario is a complete experiment configuration: topology, traffic
	// mix, detection and defence settings.
	Scenario = experiment.Scenario
	// Result carries the metrics of one scenario run (α, β, θp, θn, L_r).
	Result = experiment.Result
	// Figure is the regenerated data behind one figure of the paper.
	Figure = experiment.Figure
	// FigureID names one reproducible figure (e.g. "3a", "7").
	FigureID = experiment.FigureID
	// SweepOptions controls the resolution of figure parameter sweeps.
	SweepOptions = experiment.SweepOptions
	// DefenseKind selects MAFIC, the proportional baseline, or no defence.
	DefenseKind = experiment.DefenseKind
	// ScenarioEntry is one named scenario in the adversarial workload
	// catalog (see Scenarios).
	ScenarioEntry = experiment.Entry
)

// Defence selection for Scenario.Defense.
const (
	DefenseMAFIC    = experiment.DefenseMAFIC
	DefenseBaseline = experiment.DefenseBaseline
	DefenseNone     = experiment.DefenseNone
)

// Drop reasons reported to drop observers.
const (
	DropIllegalSource = core.DropIllegalSource
	DropPermanent     = core.DropPermanent
	DropProbing       = core.DropProbing
)

// RateScale documents how the paper's packet rates map onto simulated rates;
// see the experiment package for details.
const RateScale = experiment.RateScale

// DefaultConfig returns the paper's default MAFIC parameters (Table II):
// P_d = 90% and a probing window of 2×RTT.
func DefaultConfig() Config { return core.DefaultConfig() }

// NewDefender creates a MAFIC defender bound to a router of a simulated
// network. Pass a nil RNG to derive one from the router's network.
func NewDefender(cfg Config, router *netsim.Router, rng *sim.RNG) (*Defender, error) {
	return core.NewDefender(cfg, router, rng)
}

// DefaultScenario returns the paper's default operating point (Table II):
// P_d = 90%, V_t = 50 flows, Γ = 95% TCP, R = 10⁶ pkt/s (scaled), N = 40
// routers.
func DefaultScenario() Scenario { return experiment.DefaultScenario() }

// Simulate runs one scenario end to end — topology construction, workload
// generation, set-union counting detection, ATR identification, and adaptive
// dropping — and returns its metrics.
func Simulate(s Scenario) (Result, error) { return experiment.Run(s) }

// Scenarios returns the registered scenario catalog — the paper's Table II
// default plus the adversarial workloads (multi-victim floods, rolling
// pulses, flash crowds, heterogeneous rate mixes, shrew pulses, alternative
// topologies) — sorted by name.
func Scenarios() []ScenarioEntry { return experiment.Entries() }

// LookupScenario returns the catalog entry registered under name.
func LookupScenario(name string) (ScenarioEntry, bool) { return experiment.LookupScenario(name) }

// QuickScenario returns a scaled-down copy of a scenario that exercises the
// same pipeline in a fraction of the events; the golden-run regression tests
// pin exactly these variants.
func QuickScenario(s Scenario) Scenario { return experiment.Quick(s) }

// GenerateFigure regenerates the named figure panel of the paper's
// evaluation (for example "3a" for the accuracy-versus-volume plot).
func GenerateFigure(id FigureID, opts SweepOptions) (Figure, error) {
	return experiment.Generate(id, opts)
}

// AllFigures lists every reproducible figure identifier in presentation
// order.
func AllFigures() []FigureID { return experiment.AllFigureIDs() }
