// Benchmarks that regenerate the data behind every table and figure of the
// paper's evaluation section (Section V). Each benchmark runs the
// corresponding parameter sweep in its reduced "quick" form so the whole
// suite finishes in minutes; the cmd/maficfig tool runs the full sweeps.
//
//	go test -bench=. -benchmem
package mafic

import (
	"testing"

	"mafic/internal/experiment"
	"mafic/internal/sim"
)

// benchBase is the scaled-down base scenario shared by the figure
// benchmarks: the full pipeline (detection, probing, classification) on a
// smaller domain and a shorter timeline.
func benchBase() experiment.Scenario {
	s := experiment.DefaultScenario()
	s.Topology.NumRouters = 20
	s.Topology.ExtraChords = 5
	s.Topology.BystanderHosts = 8
	s.Workload.TotalFlows = 30
	s.Duration = 1800 * sim.Millisecond
	s.Workload.AttackStart = 600 * sim.Millisecond
	s.DetectionFallback = 300 * sim.Millisecond
	return s
}

func benchOpts() experiment.SweepOptions {
	base := benchBase()
	return experiment.SweepOptions{Quick: true, Seed: 1, Base: &base}
}

// benchFigure runs one figure generator per iteration and fails the
// benchmark if the sweep breaks.
func benchFigure(b *testing.B, id experiment.FigureID) {
	b.Helper()
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		fig, err := experiment.Generate(id, benchOpts())
		if err != nil {
			b.Fatalf("figure %s: %v", id, err)
		}
		if len(fig.Series) == 0 {
			b.Fatalf("figure %s produced no series", id)
		}
	}
}

// BenchmarkTable2Defaults reproduces the paper's Table II default operating
// point (one full scenario run per iteration).
func BenchmarkTable2Defaults(b *testing.B) {
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		res, err := experiment.Run(benchBase())
		if err != nil {
			b.Fatal(err)
		}
		if !res.Activated {
			b.Fatal("defense never activated")
		}
	}
}

// benchRegistryScenario runs the quick variant of a registered scenario, one
// full build-measure-defend cycle per iteration, after one untimed warm-up
// run so the pooled engine's steady state is what gets measured (mirroring
// cmd/maficbench's scenarioBench).
func benchRegistryScenario(b *testing.B, name string) {
	b.Helper()
	e, ok := experiment.LookupScenario(name)
	if !ok {
		b.Fatalf("%s scenario not registered", name)
	}
	s := experiment.Quick(e.Build())
	if _, err := experiment.Run(s); err != nil {
		b.Fatal(err)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res, err := experiment.Run(s)
		if err != nil {
			b.Fatal(err)
		}
		if !res.Activated {
			b.Fatal("defense never activated")
		}
	}
}

// BenchmarkStress1k runs the 1000-router multi-victim scale scenario: 25x
// the paper's domain size per iteration.
func BenchmarkStress1k(b *testing.B) { benchRegistryScenario(b, "stress-1k") }

// BenchmarkStress5k runs the 5000-router scale scenario: demand-driven
// routing keeps the build phase out of the way, so one iteration is a full
// build-measure-defend cycle at 125x the paper's domain size.
func BenchmarkStress5k(b *testing.B) { benchRegistryScenario(b, "stress-5k") }

// BenchmarkStress50k runs the 50000-router scale scenario: sparse adjacency
// rows and the monitored-only traffic matrix keep the build O(nodes+links),
// so one iteration is a full build-measure-defend cycle at 1250x the paper's
// domain size.
func BenchmarkStress50k(b *testing.B) { benchRegistryScenario(b, "stress-50k") }

// BenchmarkFig3aAccuracyVsVolumeByPd regenerates Figure 3(a).
func BenchmarkFig3aAccuracyVsVolumeByPd(b *testing.B) { benchFigure(b, experiment.FigureF3a) }

// BenchmarkFig3bAccuracyVsVolumeByRate regenerates Figure 3(b).
func BenchmarkFig3bAccuracyVsVolumeByRate(b *testing.B) { benchFigure(b, experiment.FigureF3b) }

// BenchmarkFig4aTrafficReductionByPd regenerates Figure 4(a).
func BenchmarkFig4aTrafficReductionByPd(b *testing.B) { benchFigure(b, experiment.FigureF4a) }

// BenchmarkFig4bFlowBandwidthTimeline regenerates Figure 4(b).
func BenchmarkFig4bFlowBandwidthTimeline(b *testing.B) { benchFigure(b, experiment.FigureF4b) }

// BenchmarkFig5aFalsePositiveByPd regenerates Figure 5(a).
func BenchmarkFig5aFalsePositiveByPd(b *testing.B) { benchFigure(b, experiment.FigureF5a) }

// BenchmarkFig5bFalsePositiveByTCPShare regenerates Figure 5(b).
func BenchmarkFig5bFalsePositiveByTCPShare(b *testing.B) { benchFigure(b, experiment.FigureF5b) }

// BenchmarkFig5cFalsePositiveByDomainSize regenerates Figure 5(c).
func BenchmarkFig5cFalsePositiveByDomainSize(b *testing.B) { benchFigure(b, experiment.FigureF5c) }

// BenchmarkFig6aFalseNegativeByPd regenerates Figure 6(a).
func BenchmarkFig6aFalseNegativeByPd(b *testing.B) { benchFigure(b, experiment.FigureF6a) }

// BenchmarkFig6bFalseNegativeByTCPShare regenerates Figure 6(b).
func BenchmarkFig6bFalseNegativeByTCPShare(b *testing.B) { benchFigure(b, experiment.FigureF6b) }

// BenchmarkFig6cFalseNegativeByDomainSize regenerates Figure 6(c).
func BenchmarkFig6cFalseNegativeByDomainSize(b *testing.B) { benchFigure(b, experiment.FigureF6c) }

// BenchmarkFig7LegitimateDropRateByPd regenerates Figure 7.
func BenchmarkFig7LegitimateDropRateByPd(b *testing.B) { benchFigure(b, experiment.FigureF7) }

// BenchmarkAblationBaselineComparison regenerates the MAFIC-vs-proportional
// ablation called out in DESIGN.md.
func BenchmarkAblationBaselineComparison(b *testing.B) {
	benchFigure(b, experiment.FigureAblationBase)
}

// BenchmarkAblationProbeWindow regenerates the probing-window ablation.
func BenchmarkAblationProbeWindow(b *testing.B) { benchFigure(b, experiment.FigureAblationProbe) }

// BenchmarkAblationPulsingAttack regenerates the constant-vs-pulsing attack
// ablation (shrew-style evasion).
func BenchmarkAblationPulsingAttack(b *testing.B) {
	benchFigure(b, experiment.FigureAblationPulsing)
}

// BenchmarkDefenderHandle measures the per-packet cost of the MAFIC decision
// path in isolation (the router fast path the algorithm adds).
func BenchmarkDefenderHandle(b *testing.B) {
	s := benchBase()
	s.Duration = sim.Second
	res, err := experiment.Run(s)
	if err != nil {
		b.Fatal(err)
	}
	// The per-packet cost is already exercised inside Run; here we report
	// the cost per simulated event as a throughput proxy.
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		r, err := experiment.Run(s)
		if err != nil {
			b.Fatal(err)
		}
		res = r
	}
	b.ReportMetric(float64(res.EventsProcessed), "events/run")
}
