// DDoS pushback walkthrough: build the domain and defence by hand from the
// building blocks (rather than through the scenario runner) and narrate the
// full pipeline of the paper's Figure 1 — set-union counting at every
// router, victim detection, ATR identification, and MAFIC cutoff — while an
// attack with spoofed sources rages against the victim.
//
//	go run ./examples/ddos_pushback
package main

import (
	"fmt"
	"log"
	"sort"

	"mafic"
	"mafic/internal/netsim"
	"mafic/internal/pushback"
	"mafic/internal/sim"
	"mafic/internal/topology"
	"mafic/internal/traffic"
	"mafic/internal/trafficmatrix"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	rng := sim.NewRNG(2025)
	sched := sim.NewScheduler()

	// 1. Build the protected domain: 24 routers, ingress edges, a victim
	//    server behind the last-hop router.
	topoCfg := topology.DefaultConfig()
	topoCfg.NumRouters = 24
	domain, err := topology.Build(topoCfg, sched, rng.Fork())
	if err != nil {
		return fmt.Errorf("build domain: %w", err)
	}
	fmt.Printf("domain: %d routers, %d ingress, victim %s behind %s\n",
		len(domain.Routers), len(domain.Ingress), domain.VictimIP(), domain.LastHop.Name())

	// 2. Generate the traffic mix: 40 flows, 90% legitimate TCP, the rest
	//    zombies flooding at 5000 pkt/s with spoofed sources.
	spec := traffic.DefaultWorkloadSpec()
	spec.TotalFlows = 40
	spec.TCPShare = 0.90
	spec.AttackStart = 600 * sim.Millisecond
	workload, err := traffic.BuildWorkload(spec, domain, rng.Fork())
	if err != nil {
		return fmt.Errorf("build workload: %w", err)
	}
	fmt.Printf("workload: %d legitimate flows, %d attack flows\n",
		len(workload.Legitimate), len(workload.Attack))

	// 3. Attach a MAFIC defender to every ingress router; they stay
	//    dormant until the pushback request arrives.
	defenders := make(map[netsim.NodeID]*mafic.Defender, len(domain.Ingress))
	for _, ing := range domain.Ingress {
		d, derr := mafic.NewDefender(mafic.DefaultConfig(), ing, nil)
		if derr != nil {
			return derr
		}
		ing.AttachFilter(d)
		defenders[ing.ID()] = d
	}

	// 4. Set-union counting measurement layer plus the pushback
	//    coordinator that detects the victim and identifies ATRs.
	pbCfg := pushback.DefaultConfig()
	pbCfg.MinHistoryEpochs = 4
	pbCfg.DisableWithdraw = true
	for _, ing := range domain.Ingress {
		pbCfg.Eligible = append(pbCfg.Eligible, ing.ID())
	}
	coordinator := pushback.NewCoordinator(pbCfg, func(req pushback.Request) {
		fmt.Printf("t=%.2fs  PUSHBACK: victim router %d overloaded (|Dj|≈%.0f pkt/epoch), %d ATRs identified\n",
			sched.Now().Seconds(), req.VictimRouter, req.VictimLoad, len(req.ATRs))
		sort.Slice(req.ATRs, func(i, j int) bool { return req.ATRs[i].Packets > req.ATRs[j].Packets })
		for _, atr := range req.ATRs {
			fmt.Printf("          ATR router %d carries ≈%.0f pkt/epoch (%.0f%% of victim load)\n",
				atr.Router, atr.Packets, atr.Share*100)
			if d, ok := defenders[atr.Router]; ok {
				d.Activate(domain.VictimIP())
			}
		}
	}, nil)
	monitor, err := trafficmatrix.NewMonitor(domain.Net, trafficmatrix.MonitorConfig{
		Epoch: 100 * sim.Millisecond,
	}, coordinator.HandleReport)
	if err != nil {
		return fmt.Errorf("monitor: %w", err)
	}
	monitor.Start()

	// 5. Run the attack scenario for three simulated seconds.
	workload.StartAll(spec, rng.Fork())
	if err := sched.RunUntil(3 * sim.Second); err != nil {
		return fmt.Errorf("run: %w", err)
	}

	// 6. Report what happened at each activated ATR.
	fmt.Println("\nper-ATR outcome:")
	var totalNice, totalCondemned, totalIllegal uint64
	for id, d := range defenders {
		if !d.Active() {
			continue
		}
		st := d.Stats()
		totalNice += st.FlowsNice
		totalCondemned += st.FlowsCondemned
		totalIllegal += st.FlowsIllegal
		fmt.Printf("  router %-3d examined=%-6d dropped=%-6d probes=%-3d flows nice=%d condemned=%d illegal=%d\n",
			id, st.Examined, st.Dropped, st.ProbesSent, st.FlowsNice, st.FlowsCondemned, st.FlowsIllegal)
	}
	fmt.Printf("\nflows classified nice=%d condemned=%d illegal-source=%d; victim received %d packets (%d attack)\n",
		totalNice, totalCondemned, totalIllegal, workload.Victim.Received(), workload.Victim.ReceivedMalicious())
	legitSent, attackSent := workload.PacketsSent()
	fmt.Printf("traffic sent: legitimate=%d attack=%d packets\n", legitSent, attackSent)
	return nil
}
